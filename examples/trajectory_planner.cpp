// End-to-end application: the paper's motivating use case.
//
// 1. Formulate the trajectory-planning MPC QP (2D vehicle, acceleration
//    box, dynamics constraints).
// 2. Solve it numerically with the interior-point method (every Newton
//    step is the KKT LDL' solve).
// 3. Generate the CVXGEN-style ldlsolve() kernel for the same problem,
//    compile it through the Nymble-like flow, and report the hardware
//    schedule with and without automatic FCS-FMA insertion.
//
//   ./build/examples/trajectory_planner [horizon]
#include <cstdio>
#include <cstdlib>

#include "frontend/parser.hpp"
#include "hls/fma_insert.hpp"
#include "hls/schedule.hpp"
#include "solver/solvers.hpp"

int main(int argc, char** argv) {
  using namespace csfma;
  const int horizon = argc > 1 ? std::atoi(argv[1]) : 8;

  // ---- plan a trajectory: drive from rest at the origin to (8, 3) ----
  const double x0[4] = {0.0, 0.0, 1.0, 0.0};
  const double xref[4] = {8.0, 3.0, 0.0, 0.0};
  MpcProblem p = build_mpc(horizon, x0, xref);
  IpmResult r = solve_qp(p);
  std::printf("MPC horizon %d: %s after %d Newton steps, objective %.4f\n",
              horizon, r.converged ? "converged" : "NOT converged",
              r.newton_steps, r.objective);
  std::printf("%4s | %8s %8s | %8s %8s | %8s %8s\n", "t", "px", "py", "vx",
              "vy", "ax", "ay");
  for (int t = 0; t < horizon; ++t) {
    std::printf("%4d | %8.3f %8.3f | %8.3f %8.3f | %8.3f %8.3f\n", t + 1,
                r.z[(size_t)(6 * t + 2)], r.z[(size_t)(6 * t + 3)],
                r.z[(size_t)(6 * t + 4)], r.z[(size_t)(6 * t + 5)],
                r.z[(size_t)(6 * t + 0)], r.z[(size_t)(6 * t + 1)]);
  }

  // ---- generate + compile the hardware kernel for this solver ----
  BenchmarkSolver s = make_benchmark_solver("user", horizon);
  KernelInfo k = parse_kernel(s.ldlsolve_src);
  OperatorLibrary lib = OperatorLibrary::for_device(virtex6());
  const int base = schedule_asap(k.graph, lib).length;
  Cdfg fused = k.graph;
  FmaInsertStats st = insert_fma_units(fused, lib, FmaStyle::Fcs);
  const int opt = schedule_asap(fused, lib).length;
  std::printf("\nldlsolve() kernel: KKT dim %d, %d L-nonzeros, %d statements\n",
              s.problem.nk, s.sym.nnz(), k.statements);
  std::printf("hardware schedule @200 MHz: discrete %d cycles, FCS-FMA %d "
              "cycles (%.1f%% faster, %d FMAs inserted)\n",
              base, opt, 100.0 * (base - opt) / base, st.fma_inserted);
  std::printf("per interior-point iteration that saves %.2f us on-chip.\n",
              (base - opt) * 5e-3);
  return 0;
}
