// Accuracy exploration of the carry-save formats: run the Sec. IV-B
// recurrence at increasing depth and watch the error of each number system
// grow relative to the 75b golden — the analysis behind Fig 14, exposed
// as an API walk-through.
//
//   ./build/examples/accuracy_explorer [runs]
#include <array>
#include <cstdio>
#include <cstdlib>

#include "common/rng.hpp"
#include "fma/fcs_fma.hpp"
#include "fma/pcs_fma.hpp"

namespace {

using namespace csfma;

struct Chains {
  PFloat f64, f68, golden;
  PFloat pcs, fcs;
};

Chains run_to_depth(Rng& rng, int depth) {
  const double b1 = rng.next_double(1.0, 32.0) * (rng.next_bool() ? 1 : -1);
  const double b2 = rng.next_double(0.001, 1.0) * (rng.next_bool() ? 1 : -1);
  std::array<double, 3> x0{};
  for (auto& x : x0) x = rng.next_double(-1.0, 1.0);

  auto discrete = [&](const FloatFormat& fmt) {
    PFloat B1 = PFloat::from_double(fmt, b1), B2 = PFloat::from_double(fmt, b2);
    PFloat x3 = PFloat::from_double(fmt, x0[0]);
    PFloat x2 = PFloat::from_double(fmt, x0[1]);
    PFloat x1 = PFloat::from_double(fmt, x0[2]);
    for (int i = 3; i <= depth; ++i) {
      PFloat t = PFloat::add(PFloat::mul(B2, x2, fmt, Round::NearestEven), x3,
                             fmt, Round::NearestEven);
      PFloat x = PFloat::add(PFloat::mul(B1, x1, fmt, Round::NearestEven), t,
                             fmt, Round::NearestEven);
      x3 = x2; x2 = x1; x1 = x;
    }
    return x1;
  };

  Chains c;
  c.f64 = discrete(kBinary64);
  c.f68 = discrete(kBinary68);
  c.golden = discrete(kBinary75);

  PFloat B1 = PFloat::from_double(kBinary64, b1);
  PFloat B2 = PFloat::from_double(kBinary64, b2);
  {
    PcsFma u;
    PcsOperand x3 = ieee_to_pcs(PFloat::from_double(kBinary64, x0[0]));
    PcsOperand x2 = ieee_to_pcs(PFloat::from_double(kBinary64, x0[1]));
    PcsOperand x1 = ieee_to_pcs(PFloat::from_double(kBinary64, x0[2]));
    for (int i = 3; i <= depth; ++i) {
      PcsOperand t = u.fma(x3, B2, x2);
      PcsOperand x = u.fma(t, B1, x1);
      x3 = x2; x2 = x1; x1 = x;
    }
    c.pcs = pcs_to_ieee(x1, kBinary64, Round::HalfAwayFromZero);
  }
  {
    FcsFma u;
    FcsOperand x3 = ieee_to_fcs(PFloat::from_double(kBinary64, x0[0]));
    FcsOperand x2 = ieee_to_fcs(PFloat::from_double(kBinary64, x0[1]));
    FcsOperand x1 = ieee_to_fcs(PFloat::from_double(kBinary64, x0[2]));
    for (int i = 3; i <= depth; ++i) {
      FcsOperand t = u.fma(x3, B2, x2);
      FcsOperand x = u.fma(t, B1, x1);
      x3 = x2; x2 = x1; x1 = x;
    }
    c.fcs = fcs_to_ieee(x1, kBinary64, Round::HalfAwayFromZero);
  }
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const int runs = argc > 1 ? std::atoi(argv[1]) : 20;
  std::printf("mean |error| of x[depth] vs 75b golden, in binary64 ulps "
              "(%d runs)\n\n", runs);
  std::printf("%6s | %10s | %10s | %10s | %10s\n", "depth", "64b", "68b",
              "PCS chain", "FCS chain");
  std::printf("%.*s\n", 60, "--------------------------------------------------"
                            "----------");
  for (int depth : {10, 20, 35, 50, 80}) {
    double e64 = 0, e68 = 0, ep = 0, ef = 0;
    Rng rng(2026);
    for (int i = 0; i < runs; ++i) {
      Chains c = run_to_depth(rng, depth);
      e64 += PFloat::ulp_error(c.f64, c.golden, 52);
      e68 += PFloat::ulp_error(c.f68, c.golden, 52);
      ep += PFloat::ulp_error(c.pcs, c.golden, 52);
      ef += PFloat::ulp_error(c.fcs, c.golden, 52);
    }
    std::printf("%6d | %10.3f | %10.3f | %10.3f | %10.3f\n", depth, e64 / runs,
                e68 / runs, ep / runs, ef / runs);
  }
  std::printf("\nthe CS chains round once per readout instead of twice per\n"
              "multiply-add, so their error grows markedly slower than 64b.\n");
  return 0;
}
