// Accuracy exploration of the carry-save formats: run the Sec. IV-B
// recurrence at increasing depth and watch the error of each number system
// grow relative to the 75b golden — the analysis behind Fig 14, exposed
// as an API walk-through for the engine layer:
//
//   * recurrence_inputs()     draws the shared workload coefficients,
//   * RecurrenceChainSource   unrolls them into chained multiply-adds,
//   * SimEngine::run_chained  streams them through an FmaUnit, keeping
//                             CS operands (deferred-rounding tails)
//                             between the links of each chain.
//
// The discrete 64/68/75b runs stay explicit loops: those are operand
// FORMATS of the two-rounding pipeline, not FmaUnit architectures.
//
//   ./build/examples/accuracy_explorer [runs]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "energy/workload.hpp"
#include "engine/sim_engine.hpp"

namespace {

using namespace csfma;

/// Final x[depth] of every run's recurrence through `kind`, chained
/// natively by the engine (one chain per engine shard).
std::vector<PFloat> chain_finals(UnitKind kind,
                                 const std::vector<RecurrenceInputs>& inputs,
                                 int depth) {
  RecurrenceChainSource src(inputs, depth);
  EngineConfig cfg;
  cfg.unit = kind;
  cfg.shard_ops = src.ops_per_chain();
  cfg.rm = Round::HalfAwayFromZero;  // the CS units' deferred readout rule
  SimEngine engine(cfg);
  BatchResult r = engine.run_chained(src);
  const std::uint64_t opc = src.ops_per_chain();
  std::vector<PFloat> finals;
  finals.reserve(inputs.size());
  for (std::size_t run = 0; run < inputs.size(); ++run)
    finals.push_back(r.results[(run + 1) * (std::size_t)opc - 1]);
  return finals;
}

/// The same recurrence through the discrete pipeline at format `fmt`
/// (a rounding per multiply and per add — the CoreGen baseline).
PFloat discrete(const RecurrenceInputs& in, const FloatFormat& fmt,
                int depth) {
  PFloat b1 = PFloat::from_double(fmt, in.b1.to_double());
  PFloat b2 = PFloat::from_double(fmt, in.b2.to_double());
  PFloat x3 = PFloat::from_double(fmt, in.x[0].to_double());
  PFloat x2 = PFloat::from_double(fmt, in.x[1].to_double());
  PFloat x1 = PFloat::from_double(fmt, in.x[2].to_double());
  for (int i = 3; i <= depth; ++i) {
    PFloat t = PFloat::add(PFloat::mul(b2, x2, fmt, Round::NearestEven), x3,
                           fmt, Round::NearestEven);
    PFloat x = PFloat::add(PFloat::mul(b1, x1, fmt, Round::NearestEven), t,
                           fmt, Round::NearestEven);
    x3 = x2;
    x2 = x1;
    x1 = x;
  }
  return x1;
}

}  // namespace

int main(int argc, char** argv) {
  const int runs = argc > 1 ? std::atoi(argv[1]) : 20;
  const std::vector<RecurrenceInputs> inputs = recurrence_inputs(2026, runs);

  std::printf("mean |error| of x[depth] vs 75b golden, in binary64 ulps "
              "(%d runs)\n\n", runs);
  std::printf("%6s | %10s | %10s | %10s | %10s\n", "depth", "64b", "68b",
              "PCS chain", "FCS chain");
  std::printf("%.*s\n", 60, "--------------------------------------------------"
                            "----------");
  for (int depth : {10, 20, 35, 50, 80}) {
    const std::vector<PFloat> pcs = chain_finals(UnitKind::Pcs, inputs, depth);
    const std::vector<PFloat> fcs = chain_finals(UnitKind::Fcs, inputs, depth);
    double e64 = 0, e68 = 0, ep = 0, ef = 0;
    for (int i = 0; i < runs; ++i) {
      const RecurrenceInputs& in = inputs[(std::size_t)i];
      PFloat golden = discrete(in, kBinary75, depth);
      e64 += PFloat::ulp_error(discrete(in, kBinary64, depth), golden, 52);
      e68 += PFloat::ulp_error(discrete(in, kBinary68, depth), golden, 52);
      ep += PFloat::ulp_error(pcs[(std::size_t)i], golden, 52);
      ef += PFloat::ulp_error(fcs[(std::size_t)i], golden, 52);
    }
    std::printf("%6d | %10.3f | %10.3f | %10.3f | %10.3f\n", depth, e64 / runs,
                e68 / runs, ep / runs, ef / runs);
  }
  std::printf("\nthe CS chains round once per readout instead of twice per\n"
              "multiply-add, so their error grows markedly slower than 64b.\n");
  return 0;
}
