// Quickstart: fused multiply-add chains in carry-save format.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Shows the three levels of the library:
//   1. a single fused a + b*c through the PCS-FMA with IEEE boundaries,
//   2. a chain that stays in carry-save format between units (the paper's
//      deferred-rounding trick),
//   3. the exact-value introspection used to reason about accuracy.
#include <cstdio>

#include "fma/fcs_fma.hpp"
#include "fma/pcs_fma.hpp"

int main() {
  using namespace csfma;

  // ---- 1. One fused operation, IEEE in / IEEE out ----
  PcsFma pcs;
  PFloat a = PFloat::from_double(kBinary64, 0.1);
  PFloat b = PFloat::from_double(kBinary64, 10.0);
  PFloat c = PFloat::from_double(kBinary64, 0.2);
  PFloat r = pcs.fma_ieee(a, b, c, Round::HalfAwayFromZero);
  std::printf("PCS-FMA: 0.1 + 10*0.2 = %.17g\n", r.to_double());

  // ---- 2. A chain with deferred rounding: recover the rounding error of
  //         a square, which a discrete mul+add pipeline cannot see ----
  const double x = 1.0 + 0x1p-30;
  PFloat fx = PFloat::from_double(kBinary64, x);
  PFloat sq = PFloat::mul(fx, fx, kBinary64, Round::NearestEven);
  // residual = x*x - round(x*x), computed fused:
  PFloat residual = pcs.fma_ieee(sq.negated(), fx, fx, Round::HalfAwayFromZero);
  std::printf("rounding error of x*x recovered: %.17g (discrete pipeline: 0)\n",
              residual.to_double());

  // ---- 3. Chained FMAs stay in the 192-bit PCS operand format; only the
  //         final readout rounds.  Compare against double precision. ----
  // Horner evaluation of p(t) = ((t + 1)t + 1)t + 1 at t close to -1:
  const double t = -1.0 + 0x1p-27;
  PFloat ft = PFloat::from_double(kBinary64, t);
  PFloat one = PFloat::from_double(kBinary64, 1.0);
  PcsOperand acc = ieee_to_pcs(one);  // acc = 1
  for (int i = 0; i < 3; ++i) {
    // acc = 1 + t * acc   (A = 1, B = t, C = acc: C stays in carry-save)
    acc = pcs.fma(ieee_to_pcs(one), ft, acc);
  }
  double fused = pcs_to_ieee(acc, kBinary64, Round::HalfAwayFromZero).to_double();
  double plain = 1.0;
  for (int i = 0; i < 3; ++i) plain = 1.0 + t * plain;
  std::printf("Horner near the root: fused=%.17g plain=%.17g\n", fused, plain);

  // ---- FCS: same API, 3-cycle unit for Virtex-6+ ----
  FcsFma fcs;
  PFloat rf = fcs.fma_ieee(a, b, c, Round::HalfAwayFromZero);
  std::printf("FCS-FMA: 0.1 + 10*0.2 = %.17g\n", rf.to_double());
  std::printf("exact operand value introspection: %s\n",
              ieee_to_fcs(rf).exact_value().to_string().c_str());
  return 0;
}
