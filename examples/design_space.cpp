// Architecture exploration — the activity in the paper's title, as an API
// walk-through: sweep the FMA design space (discrete, classic fused, PCS
// geometries, FCS with both selectors) and print the latency / area /
// operand-width / accuracy trade-offs on one table.
//
//   ./build/examples/design_space
#include <cstdio>

#include "common/rng.hpp"
#include "fma/fcs_fma.hpp"
#include "fma/pcs_config.hpp"
#include "fpga/architectures.hpp"

namespace {

using namespace csfma;

/// Mean accuracy of 5000 random fused ops vs the correctly rounded result.
template <typename F>
double mean_ulp(F&& op) {
  Rng rng(6060);
  double sum = 0;
  int n = 0;
  for (int i = 0; i < 5000; ++i) {
    PFloat a = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-20, 20));
    PFloat b = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-20, 20));
    PFloat c = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-20, 20));
    PFloat ref = PFloat::fma(b, c, a, kBinary64, Round::HalfAwayFromZero);
    if (!ref.is_normal()) continue;
    sum += PFloat::ulp_error(op(a, b, c), ref, 52);
    ++n;
  }
  return sum / n;
}

}  // namespace

int main() {
  const Device dev = virtex6();
  auto t1 = table1_reports(dev, 200.0);
  auto report = [&t1](const char* arch) -> const SynthesisReport& {
    static SynthesisReport none;
    for (const auto& r : t1)
      if (r.arch == arch) return r;
    return none;
  };

  std::printf("Design space — one multiply-add, %s @ 200 MHz target\n\n",
              dev.name.c_str());
  std::printf("%-22s | %8s | %6s | %6s | %4s | %9s\n", "design", "MA [ns]",
              "cycles", "LUTs", "DSPs", "mean ulp");
  std::printf("%.*s\n", 72, "--------------------------------------------------"
                            "----------------------");

  {
    const auto& r = report("Xilinx CoreGen");
    double ulp = mean_ulp([](const PFloat& a, const PFloat& b, const PFloat& c) {
      return PFloat::add(PFloat::mul(b, c, kBinary64, Round::NearestEven), a,
                         kBinary64, Round::NearestEven);
    });
    std::printf("%-22s | %8.2f | %6d | %6d | %4d | %9.4f\n", "discrete mul+add",
                r.min_ma_time_ns(), r.cycles, r.luts, r.dsps, ulp);
  }
  {
    const auto& r = report("PCS-FMA");
    GenPcsFma unit(kPaperPcs);
    double ulp = mean_ulp([&](const PFloat& a, const PFloat& b, const PFloat& c) {
      return unit.fma_ieee(a, b, c, Round::HalfAwayFromZero);
    });
    std::printf("%-22s | %8.2f | %6d | %6d | %4d | %9.4f\n",
                "PCS-FMA 55/11 (paper)", r.min_ma_time_ns(), r.cycles, r.luts,
                r.dsps, ulp);
  }
  for (PcsConfig cfg : {kPcs56g14, PcsConfig{44, 11}, PcsConfig{33, 11},
                        PcsConfig{22, 11}}) {
    GenPcsFma unit(cfg);
    double ulp = mean_ulp([&](const PFloat& a, const PFloat& b, const PFloat& c) {
      return unit.fma_ieee(a, b, c, Round::HalfAwayFromZero);
    });
    char name[32];
    std::snprintf(name, sizeof name, "PCS-FMA %d/%d", cfg.block, cfg.group);
    std::printf("%-22s | %8s | %6s | %6s | %4s | %9.4f   (%db operands)\n",
                name, "~", "~", "~", "~", ulp, cfg.operand_bits());
  }
  {
    const auto& r = report("FCS-FMA");
    FcsFma unit;
    double ulp = mean_ulp([&](const PFloat& a, const PFloat& b, const PFloat& c) {
      return unit.fma_ieee(a, b, c, Round::HalfAwayFromZero);
    });
    std::printf("%-22s | %8.2f | %6d | %6d | %4d | %9.4f\n", "FCS-FMA (LZA)",
                r.min_ma_time_ns(), r.cycles, r.luts, r.dsps, ulp);
  }
  {
    SynthesisReport r = synthesize("fcs-zd", build_fcs_fma_zd(dev), dev, 200.0);
    FcsFma unit(nullptr, FcsSelect::ZeroDetect);
    double ulp = mean_ulp([&](const PFloat& a, const PFloat& b, const PFloat& c) {
      return unit.fma_ieee(a, b, c, Round::HalfAwayFromZero);
    });
    std::printf("%-22s | %8.2f | %6d | %6d | %4d | %9.4f\n", "FCS-FMA (ZD)",
                r.min_ma_time_ns(), r.cycles, r.luts, r.dsps, ulp);
  }
  std::printf("\nsmaller PCS geometries shrink operands below the 192b paper\n"
              "format at the cost of sub-double accuracy — the knob Sec. V\n"
              "proposes exploring.\n");
  return 0;
}
