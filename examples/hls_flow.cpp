// The Nymble-like HLS flow on the paper's Listing 1:
// parse a kernel, schedule it with CoreGen operators, run the automatic
// P/FCS-FMA insertion pass, and show the transformed datapath and the
// schedule it achieves — Fig 12's three stages, observable.
//
//   ./build/examples/hls_flow                  # built-in Listing 1
//   ./build/examples/hls_flow my.kernel        # your own kernel file
//   ./build/examples/hls_flow --dot [file]     # emit Graphviz instead
#include <cstdio>
#include <fstream>
#include <sstream>

#include "frontend/parser.hpp"
#include "hls/fma_insert.hpp"
#include "hls/interp.hpp"
#include "hls/schedule.hpp"

namespace {

const char* kListing1 = R"(
kernel listing1 {
  input double a; input double b; input double c; input double d;
  input double e; input double f; input double g;
  input double h; input double i; input double k;
  var double x[4];
  output double out;
  x[1] = a*b + c*d;
  x[2] = e*f + g*x[1];
  x[3] = h*i + k*x[2];
  out = x[3];
}
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace csfma;
  std::string src = kListing1;
  bool emit_dot = false;
  if (argc > 1 && std::string(argv[1]) == "--dot") {
    emit_dot = true;
    --argc;
    ++argv;
  }
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    src = ss.str();
  }

  KernelInfo k = parse_kernel(src);
  OperatorLibrary lib = OperatorLibrary::for_device(virtex6());
  if (emit_dot) {
    Cdfg g = k.graph;
    insert_fma_units(g, lib, FmaStyle::Fcs);
    std::printf("%s", g.to_dot(k.name).c_str());
    return 0;
  }
  std::printf("== kernel '%s': %d statements ==\n%s\n", k.name.c_str(),
              k.statements, k.graph.to_string().c_str());
  {
    Schedule sched = schedule_asap(k.graph, lib);
    std::printf("scheduled with discrete CoreGen operators:\n%s\n",
                schedule_report(k.graph, lib, sched).c_str());
  }

  for (FmaStyle style : {FmaStyle::Pcs, FmaStyle::Fcs}) {
    Cdfg g = k.graph;
    FmaInsertStats st = insert_fma_units(g, lib, style);
    const char* name = style == FmaStyle::Pcs ? "PCS" : "FCS";
    std::printf("== after %s-FMA insertion (%d fused, %d conversions elided, "
                "%d rounds) ==\n%s",
                name, st.fma_inserted, st.conversions_elided, st.rounds,
                g.to_string().c_str());
    Schedule sched = schedule_asap(g, lib);
    std::printf("%s\n", schedule_report(g, lib, sched).c_str());

    // Both datapaths compute the same function.
    std::map<std::string, double> in;
    double v = 1.0;
    for (const char* n : {"a", "b", "c", "d", "e", "f", "g", "h", "i", "k"}) {
      in[n] = v;
      v += 0.25;
    }
    if (k.name == "listing1") {
      std::printf("check: baseline out=%.17g, %s out=%.17g\n\n",
                  Evaluator(k.graph).run(in).at("out"), name,
                  Evaluator(g).run(in).at("out"));
    }
  }
  return 0;
}
