#!/usr/bin/env bash
# Regenerate every table, figure, ablation and extension experiment.
# All artifacts of one invocation land in a single timestamped directory:
#
#   results/<UTC timestamp>/
#     reports/   csfma-report-v1 JSON per experiment (check_report.py)
#     bench/     BENCH_<name>.json host-perf baselines (bench_compare.py)
#
# so successive runs accumulate side by side and
#   python3 scripts/bench_compare.py --trend results
# prints the performance history across them.
set -euo pipefail
cd "$(dirname "$0")/.."

# Reuse an already-configured tree as-is (passing -G against a cache
# configured with another generator is a hard CMake error); otherwise
# prefer Ninja when available, falling back to CMake's default generator
# (the seed hard-coded -G Ninja and failed on make-only hosts).
if [[ -f build/CMakeCache.txt ]]; then
  cmake -B build
elif command -v ninja >/dev/null 2>&1; then
  cmake -B build -G Ninja
else
  cmake -B build
fi
cmake --build build -j

echo "=================== tests ==================="
ctest --test-dir build --output-on-failure

benches=(table1_synthesis fig13_latency table2_energy fig14_accuracy fig15_hls
         ablation_carry_spacing ablation_rounding_width ablation_hls_elision
         ablation_zd_vs_lza ablation_block_size ablation_reassoc
         ext_dot_product ext_ldlfactor ext_dot_hls ext_dsp_kernels)

# Fail up front, with the full list, if the build produced no binary for
# any requested bench (e.g. a stale build directory from an older tree).
missing=()
for b in "${benches[@]}" engine_throughput micro_units micro_flow; do
  [[ -x "./build/bench/$b" ]] || missing+=("$b")
done
if ((${#missing[@]})); then
  echo "error: missing bench binaries (re-run cmake on a clean build dir):" >&2
  printf '  ./build/bench/%s\n' "${missing[@]}" >&2
  exit 1
fi

outdir="results/$(date -u +%Y%m%dT%H%M%SZ)"
mkdir -p "$outdir/reports" "$outdir/bench"
echo "collecting artifacts under $outdir/"

for b in "${benches[@]}"; do
  echo; echo "=================== $b ==================="
  "./build/bench/$b" --json "$outdir/reports/$b.json" \
                     --bench-out "$outdir/bench/BENCH_$b.json"
done

echo; echo "=================== engine throughput ==================="
./build/bench/engine_throughput 200000 4 \
    --json "$outdir/reports/engine_throughput.json" \
    --bench-out "$outdir/bench/BENCH_engine_throughput.json"

echo; echo "=================== microbenchmarks ==================="
./build/bench/micro_units --bench-out "$outdir/bench/BENCH_micro_units.json" \
    --benchmark_min_time=0.05
./build/bench/micro_flow --bench-out "$outdir/bench/BENCH_micro_flow.json" \
    --benchmark_min_time=0.05

echo; echo "=================== validation ==================="
python3 scripts/check_report.py "$outdir"/reports/*.json \
                                "$outdir"/bench/BENCH_*.json

echo
echo "artifacts in $outdir/ — compare against an earlier run with"
echo "  python3 scripts/bench_compare.py <old>/bench/BENCH_x.json $outdir/bench/BENCH_x.json"
echo "or see the history with"
echo "  python3 scripts/bench_compare.py --trend results"
