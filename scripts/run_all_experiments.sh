#!/usr/bin/env bash
# Regenerate every table, figure, ablation and extension experiment.
set -euo pipefail
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
echo "=================== tests ==================="
ctest --test-dir build --output-on-failure
for b in table1_synthesis fig13_latency table2_energy fig14_accuracy fig15_hls \
         ablation_carry_spacing ablation_rounding_width ablation_hls_elision \
         ablation_zd_vs_lza ablation_block_size ablation_reassoc \
         ext_dot_product ext_ldlfactor ext_dot_hls ext_dsp_kernels; do
  echo; echo "=================== $b ==================="
  "./build/bench/$b"
done
echo; echo "=================== microbenchmarks ==================="
./build/bench/micro_units --benchmark_min_time=0.05
./build/bench/micro_flow --benchmark_min_time=0.05
