#!/usr/bin/env bash
# Regenerate every table, figure, ablation and extension experiment.
# JSON reports (csfma-report-v1) land in reports/; validate them with
# scripts/check_report.py.
set -euo pipefail
cd "$(dirname "$0")/.."

# Prefer Ninja when available, otherwise fall back to CMake's default
# generator (the seed hard-coded -G Ninja and failed on make-only hosts).
if command -v ninja >/dev/null 2>&1; then
  cmake -B build -G Ninja
else
  cmake -B build
fi
cmake --build build -j

echo "=================== tests ==================="
ctest --test-dir build --output-on-failure

benches=(table1_synthesis fig13_latency table2_energy fig14_accuracy fig15_hls
         ablation_carry_spacing ablation_rounding_width ablation_hls_elision
         ablation_zd_vs_lza ablation_block_size ablation_reassoc
         ext_dot_product ext_ldlfactor ext_dot_hls ext_dsp_kernels)

# Fail up front, with the full list, if the build produced no binary for
# any requested bench (e.g. a stale build directory from an older tree).
missing=()
for b in "${benches[@]}" micro_units micro_flow; do
  [[ -x "./build/bench/$b" ]] || missing+=("$b")
done
if ((${#missing[@]})); then
  echo "error: missing bench binaries (re-run cmake on a clean build dir):" >&2
  printf '  ./build/bench/%s\n' "${missing[@]}" >&2
  exit 1
fi

mkdir -p reports
for b in "${benches[@]}"; do
  echo; echo "=================== $b ==================="
  "./build/bench/$b" --json "reports/$b.json"
done
echo; echo "=================== microbenchmarks ==================="
./build/bench/micro_units --benchmark_min_time=0.05
./build/bench/micro_flow --benchmark_min_time=0.05
echo; echo "reports written to reports/ (validate: python3 scripts/check_report.py reports/*.json)"
