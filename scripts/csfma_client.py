#!/usr/bin/env python3
"""Stdlib JSON-lines client for the csfma_serve daemon.

Speaks proto version 1 of the protocol in docs/service.md over any
transport the daemon offers: a spawned child process on stdin/stdout, a
Unix stream socket, or TCP.  The importable surface is the CsfmaClient
class (construction via CsfmaClient.spawn / .connect / .connect_tcp;
requests via .submit / .sweep / .status / .cancel / .shutdown); the CLI
below is a thin wrapper over it.

  csfma_client.py submit --serve BIN --mode batch --unit pcs --ops 100000 --seed 1
      spawn a daemon, run one job, print the result reply as JSON

  csfma_client.py sweep --serve BIN --units pcs,fcs --seeds 1,2 --ops 20000
      run a server-side sweep, print per-point summaries + the digest

  csfma_client.py stats --serve BIN            (or --socket/--tcp)
      fetch the live metrics snapshot (`stats` request) and print it

  csfma_client.py selftest --serve BIN [--transport stdio|socket|tcp|both|all]
      the end-to-end conformance suite CI runs: cache-hit byte-identity,
      cooperative cancel, malformed-input replies, proto-version gating,
      1-vs-4-worker determinism, backpressure busy errors, cache
      persistence across a daemon restart, sweep replay byte-identity,
      trace-context echo (trace_id and parent_span), live stats, and
      structured-log determinism.
      Exit 0 iff every check passes.

No third-party imports; python3 stdlib only.
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import subprocess
import sys
import tempfile
import time

#: The protocol generation this client speaks.  Sent in every request;
#: the daemon answers any other value with an `unsupported_version` error
#: and every reply carries the daemon's own proto for the client to check.
PROTO = 1


class ProtocolError(RuntimeError):
    """The daemon violated the JSON-lines protocol (or crashed)."""


class _StdioTransport:
    """Daemon as a child process; requests on stdin, replies on stdout."""

    def __init__(self, argv):
        self.proc = subprocess.Popen(
            argv,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )

    def send_line(self, line):
        try:
            self.proc.stdin.write(line + "\n")
            self.proc.stdin.flush()
        except BrokenPipeError:
            raise ProtocolError("daemon closed stdin (crashed?)")

    def recv_line(self):
        line = self.proc.stdout.readline()
        if line == "":
            rc = self.proc.poll()
            raise ProtocolError(f"daemon EOF (exit status {rc})")
        return line.rstrip("\n")

    def close(self):
        if self.proc.stdin and not self.proc.stdin.closed:
            self.proc.stdin.close()
        rc = self.proc.wait(timeout=60)
        self.proc.stdout.close()
        return rc


class _SocketTransport:
    """Connection to a listening daemon: Unix path or (host, port)."""

    def __init__(self, addr, timeout_s=300.0):
        if isinstance(addr, tuple):
            self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        else:
            self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.settimeout(timeout_s)
        self.sock.connect(addr)
        self.rfile = self.sock.makefile("r", encoding="utf-8")

    def send_line(self, line):
        try:
            self.sock.sendall((line + "\n").encode("utf-8"))
        except (BrokenPipeError, ConnectionResetError):
            raise ProtocolError("daemon closed the socket (crashed?)")

    def recv_line(self):
        line = self.rfile.readline()
        if line == "":
            raise ProtocolError("daemon EOF on socket")
        return line.rstrip("\n")

    def close(self):
        try:
            self.sock.shutdown(socket.SHUT_WR)
        except OSError:
            pass
        # Drain whatever the daemon still sends (the final "bye").
        try:
            while self.rfile.readline():
                pass
        except OSError:
            pass
        self.rfile.close()
        self.sock.close()
        return 0


def _report_bytes(raw_line):
    """The raw report object out of a reply line carrying `"report":`.

    Splices the substring after the marker so byte-identity checks are
    immune to the reply envelope (id, elapsed_s, cache verdict).
    """
    marker = '"report":'
    idx = raw_line.find(marker)
    if idx < 0:
        raise ProtocolError(f"no report in reply: {raw_line!r}")
    return raw_line[idx + len(marker):-1]


class Result:
    """One finished submit: the terminal reply plus everything en route."""

    def __init__(self, accepted, terminal, raw_terminal, progress):
        self.accepted = accepted        # parsed "accepted" reply
        self.terminal = terminal        # parsed "result"/"cancelled"/"error"
        self.raw_terminal = raw_terminal  # exact daemon bytes (str)
        self.progress = progress        # parsed "progress" events, in order

    @property
    def job(self):
        return self.accepted["job"]

    @property
    def report_bytes(self):
        return _report_bytes(self.raw_terminal)


class SweepResult:
    """One finished sweep: ordered point lines plus the terminal summary."""

    def __init__(self, accepted, points, raw_points, done, raw_done,
                 progress):
        self.accepted = accepted      # parsed "accepted" (carries "points")
        self.points = points          # parsed "sweep_point" lines, in order
        self.raw_points = raw_points  # exact daemon bytes per point (str)
        self.done = done              # parsed "sweep_done" summary
        self.raw_done = raw_done      # exact daemon bytes of the summary
        self.progress = progress      # parsed "progress" events, in order

    @property
    def job(self):
        return self.accepted["job"]

    @property
    def digest(self):
        return self.done["digest"]

    def point_report_bytes(self, index):
        return _report_bytes(self.raw_points[index])


class CsfmaClient:
    """Synchronous proto-1 driver on top of any line transport."""

    def __init__(self, transport):
        self.t = transport
        self._next_id = 0

    # -- construction -----------------------------------------------------

    @classmethod
    def spawn(cls, serve_binary, workers=2, cache=64, progress_interval=0.5,
              max_pending=None, cache_file=None, extra_args=()):
        """Spawn a private daemon on stdin/stdout."""
        argv = [serve_binary,
                "--workers", str(workers),
                "--job-cache", str(cache),
                "--progress-interval", str(progress_interval)]
        if max_pending is not None:
            argv += ["--max-pending", str(max_pending)]
        if cache_file is not None:
            argv += ["--cache-file", str(cache_file)]
        argv += list(extra_args)
        return cls(_StdioTransport(argv))

    @classmethod
    def connect(cls, socket_path, timeout_s=300.0):
        """Connect to a daemon listening on --socket PATH."""
        return cls(_SocketTransport(socket_path, timeout_s))

    @classmethod
    def connect_tcp(cls, host, port, timeout_s=300.0):
        """Connect to a daemon listening on --tcp HOST:PORT."""
        return cls(_SocketTransport((host, int(port)), timeout_s))

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def close(self):
        return self.t.close()

    # -- raw line layer ---------------------------------------------------

    def _send(self, obj):
        self.t.send_line(json.dumps(obj))

    def _recv(self):
        raw = self.t.recv_line()
        try:
            msg = json.loads(raw)
        except json.JSONDecodeError as e:
            raise ProtocolError(f"daemon emitted malformed JSON: {raw!r}: {e}")
        if not isinstance(msg, dict) or "type" not in msg:
            raise ProtocolError(f"daemon reply has no type: {raw!r}")
        if msg.get("proto") != PROTO:
            raise ProtocolError(
                f"daemon speaks proto {msg.get('proto')!r}, "
                f"this client wants {PROTO}: {raw!r}")
        return msg, raw

    def _rid(self):
        self._next_id += 1
        return f"c{self._next_id}"

    # -- requests ---------------------------------------------------------

    def submit_async(self, params):
        """Send a submit; return the parsed accepted (or error) reply.

        A `trace_id` or `parent_span` entry in `params` goes out on the
        wire like any other field; the daemon echoes both on every reply
        and progress event of this request (the same holds for sweep()).
        """
        req = dict(params)
        req["type"] = "submit"
        req["proto"] = PROTO
        req.setdefault("id", self._rid())
        self._send(req)
        msg, raw = self._recv()
        return msg, raw

    def wait(self, job):
        """Collect events until `job`'s terminal reply; return it + progress."""
        progress = []
        while True:
            msg, raw = self._recv()
            if msg["type"] == "progress":
                if msg["job"] == job:
                    progress.append(msg)
                continue
            if msg.get("job") == job:
                return msg, raw, progress
            # Terminal reply for some other in-flight job: not ours to
            # consume in this simple synchronous client.
            raise ProtocolError(f"unexpected interleaved reply: {raw!r}")

    def submit(self, **params):
        """Submit and block for the terminal reply (result/cancelled)."""
        acc, raw_acc = self.submit_async(params)
        if acc["type"] == "error":
            return Result(acc, acc, raw_acc, [])
        terminal, raw, progress = self.wait(acc["job"])
        return Result(acc, terminal, raw, progress)

    def sweep(self, **params):
        """Run a server-side sweep and block for its sweep_done summary."""
        req = dict(params)
        req["type"] = "sweep"
        req["proto"] = PROTO
        req.setdefault("id", self._rid())
        self._send(req)
        acc, raw_acc = self._recv()
        if acc["type"] == "error":
            return SweepResult(acc, [], [], acc, raw_acc, [])
        job = acc["job"]
        points, raw_points, progress = [], [], []
        while True:
            msg, raw = self._recv()
            if msg["type"] == "progress":
                if msg["job"] == job:
                    progress.append(msg)
                continue
            if msg["type"] == "sweep_point" and msg["job"] == job:
                if msg["index"] != len(points):
                    raise ProtocolError(
                        f"sweep point out of order: got index {msg['index']}, "
                        f"expected {len(points)}")
                points.append(msg)
                raw_points.append(raw)
                continue
            if msg.get("job") == job:  # sweep_done / cancelled / error
                return SweepResult(acc, points, raw_points, msg, raw,
                                   progress)
            raise ProtocolError(f"unexpected interleaved reply: {raw!r}")

    def cancel(self, job, trace_id=None):
        req = {"type": "cancel", "proto": PROTO, "id": self._rid(),
               "job": job}
        if trace_id is not None:
            req["trace_id"] = trace_id
        self._send(req)
        msg, _ = self._recv()
        return msg

    def status(self, trace_id=None):
        req = {"type": "status", "proto": PROTO, "id": self._rid()}
        if trace_id is not None:
            req["trace_id"] = trace_id
        self._send(req)
        msg, _ = self._recv()
        return msg

    def stats(self, trace_id=None, parent_span=None):
        """Fetch the live metrics snapshot (answered inline, never queued).

        Progress events from jobs still in flight may interleave; they are
        skipped, so this is safe to call while work is running.
        """
        req = {"type": "stats", "proto": PROTO, "id": self._rid()}
        if trace_id is not None:
            req["trace_id"] = trace_id
        if parent_span is not None:
            req["parent_span"] = parent_span
        self._send(req)
        msg, _ = self._recv()
        while msg["type"] == "progress":
            msg, _ = self._recv()
        return msg

    def shutdown(self, trace_id=None):
        req = {"type": "shutdown", "proto": PROTO, "id": self._rid()}
        if trace_id is not None:
            req["trace_id"] = trace_id
        self._send(req)
        msg, _ = self._recv()
        return msg

    def send_raw(self, text):
        """Send a raw (possibly malformed) line; return the parsed reply."""
        self.t.send_line(text)
        msg, _ = self._recv()
        return msg


#: Backward-compatible alias; new code should import CsfmaClient.
Client = CsfmaClient


# -- daemon spawning helpers (selftest + CLI) -----------------------------


def _spawn_listening(serve, args, ready):
    """Start a listening daemon; wait for `ready()` truthy or die trying."""
    proc = subprocess.Popen([serve] + args, stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    deadline = time.time() + 30
    while True:
        r = ready()
        if r:
            return proc, r
        if time.time() > deadline or proc.poll() is not None:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
            return None, None
        time.sleep(0.05)


def _read_port_file(path):
    try:
        with open(path) as f:
            text = f.read().strip()
        return int(text) if text else None
    except (OSError, ValueError):
        return None


# -- selftest ------------------------------------------------------------


class Check:
    def __init__(self):
        self.failures = []

    def ok(self, cond, what):
        tag = "ok" if cond else "FAIL"
        print(f"  [{tag}] {what}")
        if not cond:
            self.failures.append(what)


BATCH = dict(mode="batch", unit="pcs", ops=20000, seed=11)
SWEEP = dict(mode="batch", unit=["pcs", "fcs"], seed=[11, 12], ops=20000)


def selftest_session(check, client):
    """Protocol conformance against one live session (any transport)."""
    # 1. Determinism + cache: identical sequential submits; the second must
    #    be served from the LRU cache and the report must be byte-identical.
    r1 = client.submit(**BATCH)
    r2 = client.submit(**BATCH)
    check.ok(r1.terminal["type"] == "result", "first submit completes")
    check.ok(r1.terminal["cache"] == "miss", "first submit is a cache miss")
    check.ok(r2.terminal["cache"] == "hit", "second identical submit is a cache hit")
    check.ok(r1.accepted["cache_key"] == r2.accepted["cache_key"],
             "identical submits share a cache key")
    check.ok(r1.report_bytes == r2.report_bytes,
             "cache hit replays byte-identical report")
    check.ok(len(r1.progress) >= 1, "job streamed progress events")
    if r1.progress:
        last = r1.progress[-1]
        check.ok(last["ops_done"] == last["ops_total"] == BATCH["ops"],
                 "final progress event reports 100%")
    check.ok(r1.accepted.get("proto") == PROTO and
             r1.terminal.get("proto") == PROTO,
             "replies carry proto version 1")

    # 2. Cooperative cancel: a job big enough to still be running when the
    #    cancel lands; expect cancel_ok then a clean `cancelled` terminal
    #    reply, and a daemon that still answers afterwards.
    big = dict(mode="batch", unit="pcs", ops=200_000_000, seed=3,
               shard_ops=4096)
    acc, _ = client.submit_async(big)
    check.ok(acc["type"] == "accepted", "long job accepted")
    ack = client.cancel(acc["job"])
    # The ack can arrive after progress lines already in flight.
    while ack["type"] == "progress":
        ack, _ = client._recv()
    check.ok(ack["type"] == "cancel_ok", f"cancel acknowledged ({ack['type']})")
    terminal, _, _ = client.wait(acc["job"])
    check.ok(terminal["type"] == "cancelled", "cancelled terminal reply")
    check.ok(terminal["ops_done"] < big["ops"],
             "cancel stopped the job before completion")
    st = client.status()
    check.ok(st["type"] == "status", "daemon alive after cancel")
    states = {j["job"]: j["state"] for j in st["jobs"]}
    check.ok(states.get(acc["job"]) == "cancelled",
             "status shows job cancelled")

    # 3. Typed errors for malformed input — and the daemon survives them.
    e = client.send_raw("this is not json")
    check.ok(e["type"] == "error" and e["code"] == "parse_error",
             "malformed line gets parse_error")
    e = client.send_raw('{"type":"frobnicate"}')
    check.ok(e["type"] == "error" and e["code"] == "unknown_type",
             "unknown request type gets unknown_type")
    e = client.send_raw('{"type":"submit","mode":"batch","unit":"pcs","seed":1}')
    check.ok(e["type"] == "error" and e["code"] == "bad_request",
             "missing field gets bad_request")
    e = client.send_raw('{"type":"status","proto":99,"id":"v"}')
    check.ok(e["type"] == "error" and e["code"] == "unsupported_version",
             "wrong proto version gets unsupported_version")
    e = client.cancel("job-99999")
    check.ok(e["type"] == "error" and e["code"] == "unknown_job",
             "cancel of unknown job gets unknown_job")
    check.ok(client.status()["type"] == "status",
             "daemon alive after error barrage")

    # 4. Server-side sweep: 4 points, streamed in index order, summarized
    #    with a digest; a repeat sweep is all cache hits with the same
    #    digest and byte-identical point payloads.
    s1 = client.sweep(**SWEEP)
    check.ok(s1.accepted["type"] == "accepted" and s1.accepted["points"] == 4,
             "sweep accepted with 4 points")
    check.ok(s1.done["type"] == "sweep_done", "sweep completes")
    check.ok(len(s1.points) == 4, "every sweep point streamed")
    check.ok([p["params"]["unit"] for p in s1.points] ==
             ["pcs", "pcs", "fcs", "fcs"],
             "points follow the fixed expansion order")
    s2 = client.sweep(**SWEEP)
    check.ok(s2.done["cache_hits"] == 4 and s2.done["cache_misses"] == 0,
             "repeat sweep is all cache hits")
    check.ok(s1.digest == s2.digest, "repeat sweep digest matches")
    check.ok(all(s1.point_report_bytes(i) == s2.point_report_bytes(i)
                 for i in range(4)),
             "repeat sweep point payloads byte-identical")
    # A sweep point result is the same bytes a plain submit produces
    # (cache-deduplicated both ways: this submit is a hit).
    r = client.submit(**BATCH)
    check.ok(r.terminal["cache"] == "hit" and
             r.report_bytes == s1.point_report_bytes(0),
             "sweep point deduplicates against plain submits")

    # 5. trace_id propagation: a client-supplied trace_id comes back on
    #    every reply and event of its request — accepted, progress, result
    #    for a submit; accepted, sweep_point, sweep_done for a sweep.
    fresh = dict(mode="batch", unit="pcs", ops=20000, seed=41)
    r = client.submit(trace_id="tr-submit", **fresh)
    check.ok(r.accepted.get("trace_id") == "tr-submit",
             "trace_id echoed on accepted reply")
    check.ok(r.terminal.get("trace_id") == "tr-submit",
             "trace_id echoed on result reply")
    check.ok(len(r.progress) >= 1 and
             all(p.get("trace_id") == "tr-submit" for p in r.progress),
             "trace_id echoed on every progress event")
    s = client.sweep(trace_id="tr-sweep", **SWEEP)
    check.ok(s.accepted.get("trace_id") == "tr-sweep" and
             s.done.get("trace_id") == "tr-sweep",
             "trace_id echoed on sweep accepted and sweep_done")
    check.ok(all(p.get("trace_id") == "tr-sweep" for p in s.points),
             "trace_id echoed on every sweep_point line")
    e = client.send_raw('{"type":"status","proto":99,"trace_id":"tr-bad"}')
    check.ok(e.get("trace_id") == "tr-bad",
             "trace_id echoed even on error replies")

    # 6. Live stats: answered inline with the metrics snapshot and
    #    per-request-type/per-outcome latency percentiles.  The submits
    #    above must already show up in the request-latency histograms.
    st = client.stats(trace_id="tr-stats")
    check.ok(st["type"] == "stats" and st.get("proto") == PROTO,
             "stats reply is typed and carries proto 1")
    check.ok(st.get("trace_id") == "tr-stats",
             "trace_id echoed on stats reply")
    check.ok(isinstance(st.get("uptime_s"), float) and st["uptime_s"] >= 0,
             "stats reports daemon uptime")
    metrics = st.get("metrics", {})
    check.ok(all(k in metrics for k in ("counters", "gauges", "histograms")),
             "stats embeds the full metrics snapshot")
    hists = metrics.get("histograms", {})
    lat = {k: v for k, v in hists.items()
           if k.startswith("service.latency_ms.")}
    ok_count = sum(v.get("count", 0)
                   for k, v in lat.items() if k.endswith(".ok"))
    hit_count = hists.get("service.latency_ms.submit.cache_hit",
                          {}).get("count", 0)
    check.ok(ok_count >= 1 and hit_count >= 1,
             "request-latency histograms count completed requests")
    pct = st.get("percentiles", {})
    check.ok(all(set(v) >= {"count", "p50", "p90", "p99"}
                 for v in pct.values()) and
             set(pct) == set(hists),
             "stats reports p50/p90/p99 for every histogram")
    check.ok(all(0 <= v["p50"] <= v["p90"] <= v["p99"]
                 for v in pct.values() if v["count"] > 0),
             "percentiles are ordered p50 <= p90 <= p99")

    # 7. parent_span propagation: the second half of the trace context.
    #    A caller-supplied parent_span rides next to the trace_id on every
    #    reply of its request — this is how csfma_explore hangs each
    #    daemon-side req-N span tree under its own chunk spans — while
    #    requests without one get no parent_span key at all (legacy
    #    clients see byte-identical replies).
    fresh = dict(mode="batch", unit="pcs", ops=20000, seed=42)
    r = client.submit(trace_id="tr-ps", parent_span="chunk-7", **fresh)
    check.ok(r.accepted.get("parent_span") == "chunk-7",
             "parent_span echoed on accepted reply")
    check.ok(r.terminal.get("parent_span") == "chunk-7",
             "parent_span echoed on result reply")
    check.ok(all(p.get("parent_span") == "chunk-7" for p in r.progress),
             "parent_span echoed on every progress event")
    s = client.sweep(trace_id="tr-ps", parent_span="chunk-8", **SWEEP)
    check.ok(s.accepted.get("parent_span") == "chunk-8" and
             s.done.get("parent_span") == "chunk-8",
             "parent_span echoed on sweep accepted and sweep_done")
    check.ok(all(p.get("parent_span") == "chunk-8" for p in s.points),
             "parent_span echoed on every sweep_point line")
    st = client.stats(trace_id="tr-ps", parent_span="conn-3")
    check.ok(st.get("parent_span") == "conn-3",
             "parent_span echoed on stats reply")
    e = client.send_raw('{"type":"status","proto":99,"trace_id":"tr-ps",'
                        '"parent_span":"chunk-9"}')
    check.ok(e.get("parent_span") == "chunk-9",
             "parent_span echoed even on version-gated error replies")
    e = client.send_raw('{"type":"status","proto":1,"id":"q",'
                        '"parent_span":7}')
    check.ok(e["type"] == "error" and e["code"] == "bad_request",
             "non-string parent_span gets bad_request")
    check.ok("parent_span" not in client.status(),
             "requests without a parent_span get no parent_span key")


def selftest_stdio(check, serve):
    print("stdio transport:")
    with CsfmaClient.spawn(serve, workers=2, progress_interval=0.05) as client:
        selftest_session(check, client)
        bye = client.shutdown()
        check.ok(bye["type"] == "bye", "shutdown answers bye")
        check.ok(bye.get("proto") == PROTO, "bye carries proto version 1")
    # Worker-count determinism through the service path: independent
    # daemons (cache off, so both actually simulate) must produce
    # byte-identical reports for the same request.
    print("worker determinism:")
    reports = []
    for workers in (1, 4):
        with CsfmaClient.spawn(serve, workers=workers, cache=0) as client:
            r = client.submit(**BATCH)
            check.ok(r.terminal.get("cache") == "miss",
                     f"cache disabled under --workers {workers}")
            reports.append(r.report_bytes)
            client.shutdown()
    check.ok(reports[0] == reports[1],
             "1-worker and 4-worker reports byte-identical")


def selftest_socket(check, serve):
    print("socket transport:")
    tmp = tempfile.mkdtemp(prefix="csfma_serve.")
    path = os.path.join(tmp, "sock")
    proc, _ = _spawn_listening(
        serve, ["--workers", "2", "--progress-interval", "0.05",
                "--socket", path],
        lambda: os.path.exists(path))
    if proc is None:
        check.ok(False, "socket daemon came up")
        os.rmdir(tmp)
        return
    try:
        with CsfmaClient.connect(path) as client:
            selftest_session(check, client)
        # A fresh connection shares the daemon-wide cache: instant hit.
        with CsfmaClient.connect(path) as client:
            r = client.submit(**BATCH)
            check.ok(r.terminal.get("cache") == "hit",
                     "cache shared across connections")
            bye = client.shutdown()
            check.ok(bye["type"] == "bye", "socket shutdown answers bye")
        rc = proc.wait(timeout=60)
        check.ok(rc == 0, f"daemon exit status 0 (got {rc})")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        if os.path.exists(path):
            os.unlink(path)
        os.rmdir(tmp)


def selftest_tcp(check, serve):
    print("tcp transport:")
    tmp = tempfile.mkdtemp(prefix="csfma_serve.")
    port_file = os.path.join(tmp, "port")
    proc, port = _spawn_listening(
        serve, ["--workers", "2", "--progress-interval", "0.05",
                "--tcp", "127.0.0.1:0", "--port-file", port_file],
        lambda: _read_port_file(port_file))
    if proc is None:
        check.ok(False, "tcp daemon came up")
        os.rmdir(tmp)
        return
    try:
        with CsfmaClient.connect_tcp("127.0.0.1", port) as client:
            selftest_session(check, client)
        # Two concurrent connections: each its own session, one shared
        # cache; a hit on connection B for work done on connection A.
        a = CsfmaClient.connect_tcp("127.0.0.1", port)
        b = CsfmaClient.connect_tcp("127.0.0.1", port)
        try:
            fresh = dict(mode="batch", unit="classic", ops=20000, seed=21)
            ra = a.submit(**fresh)
            rb = b.submit(**fresh)
            check.ok(ra.terminal["cache"] == "miss" and
                     rb.terminal["cache"] == "hit",
                     "cache shared across concurrent TCP connections")
            check.ok(ra.report_bytes == rb.report_bytes,
                     "cross-connection replay byte-identical")
        finally:
            a.close()
        bye = b.shutdown()
        check.ok(bye["type"] == "bye", "tcp shutdown answers bye")
        b.close()
        rc = proc.wait(timeout=60)
        check.ok(rc == 0, f"daemon exit status 0 (got {rc})")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        if os.path.exists(port_file):
            os.unlink(port_file)
        os.rmdir(tmp)


def selftest_backpressure(check, serve):
    """A saturated pending queue must answer typed busy errors, not hang."""
    print("backpressure:")
    big = dict(mode="batch", unit="pcs", ops=200_000_000, shard_ops=4096)
    with CsfmaClient.spawn(serve, workers=1, cache=0, max_pending=1,
                           progress_interval=5.0) as client:
        acc1, _ = client.submit_async(dict(big, seed=101))
        check.ok(acc1["type"] == "accepted", "first submission accepted")
        # Wait until job 1 occupies the lone worker (the pending queue only
        # counts queued-not-running jobs, and the pop races the next submit).
        deadline = time.time() + 30
        while time.time() < deadline:
            st = client.status()
            while st["type"] == "progress":
                st, _ = client._recv()
            states = {j["job"]: j["state"] for j in st["jobs"]}
            if states.get(acc1.get("job")) == "running":
                break
            time.sleep(0.05)
        acc2, _ = client.submit_async(dict(big, seed=102))  # queued
        while acc2["type"] == "progress":
            acc2, _ = client._recv()
        acc3, _ = client.submit_async(dict(big, seed=103))  # over the bound
        while acc3["type"] == "progress":
            acc3, _ = client._recv()
        check.ok(acc2["type"] == "accepted",
                 "submission filling the queue accepted")
        check.ok(acc3["type"] == "error" and acc3["code"] == "busy",
                 "submission beyond the bound gets typed busy error")
        for acc in (acc1, acc2):
            if acc["type"] != "accepted":
                continue
            ack = client.cancel(acc["job"])
            while ack["type"] == "progress":
                ack, _ = client._recv()
            terminal, _, _ = client.wait(acc["job"])
            check.ok(terminal["type"] == "cancelled",
                     f"{acc['job']} drains after busy rejection")
        bye = client.shutdown()
        check.ok(bye["type"] == "bye", "daemon healthy after backpressure")


def selftest_persistence(check, serve):
    """Cache survives a daemon restart: byte-identical replay from disk."""
    print("cache persistence:")
    tmp = tempfile.mkdtemp(prefix="csfma_journal.")
    journal = os.path.join(tmp, "cache.journal")
    try:
        with CsfmaClient.spawn(serve, cache_file=journal) as client:
            r1 = client.submit(**BATCH)
            check.ok(r1.terminal["cache"] == "miss",
                     "fresh journal starts cold")
            s1 = client.sweep(**SWEEP)
            check.ok(s1.done["type"] == "sweep_done", "sweep completes")
            client.shutdown()
        check.ok(os.path.exists(journal), "journal written at shutdown")
        with CsfmaClient.spawn(serve, cache_file=journal) as client:
            r2 = client.submit(**BATCH)
            check.ok(r2.terminal["cache"] == "hit",
                     "restarted daemon replays from the journal")
            check.ok(r1.report_bytes == r2.report_bytes,
                     "persisted replay byte-identical")
            s2 = client.sweep(**SWEEP)
            check.ok(s2.done["cache_hits"] == s1.done["points"] and
                     s2.done["cache_misses"] == 0,
                     "restarted sweep is all cache hits")
            check.ok(s1.digest == s2.digest,
                     "sweep digest identical across restart")
            client.shutdown()
        # Truncation tolerance: a torn trailing record must not take the
        # good records (or the daemon) down with it.
        with open(journal, "ab") as f:
            f.write(b"0123456789abcdef 999 0123456789abcdef {\"torn")
        with CsfmaClient.spawn(serve, cache_file=journal) as client:
            r3 = client.submit(**BATCH)
            check.ok(r3.terminal["cache"] == "hit" and
                     r3.report_bytes == r1.report_bytes,
                     "torn journal tail skipped, good records kept")
            client.shutdown()
    finally:
        for name in os.listdir(tmp):
            os.unlink(os.path.join(tmp, name))
        os.rmdir(tmp)


def _log_projection(path):
    """The deterministic projection of a csfma-log-v1 file (docs/FORMATS.md).

    Drops each line's "t" member (wall-clock timestamps and latencies) and
    every slow_request/slow_point line (whether a request or sweep point is
    "slow" is a timing fact); what remains is scheduling-independent for a
    synchronously driven request sequence.
    """
    out = []
    with open(path, encoding="utf-8") as f:
        for line in f:
            entry = json.loads(line)
            if entry.get("kind") in ("slow_request", "slow_point"):
                continue
            entry.pop("t", None)
            out.append(json.dumps(entry, sort_keys=True))
    return "\n".join(out)


def selftest_logging(check, serve):
    """--log-file determinism: for one synchronously driven request
    sequence, the deterministic projection of the structured log must be
    byte-identical whether the daemon runs 1 worker or 4."""
    print("structured log:")
    tmp = tempfile.mkdtemp(prefix="csfma_log.")
    projections = []
    try:
        for workers in (1, 4):
            path = os.path.join(tmp, f"serve-w{workers}.log")
            with CsfmaClient.spawn(serve, workers=workers,
                                   extra_args=["--log-file", path]) as client:
                client.submit(**BATCH)
                client.submit(**BATCH)     # cache hit
                client.sweep(**SWEEP)
                client.status()
                client.stats()
                client.shutdown()
            check.ok(os.path.exists(path),
                     f"--log-file written under --workers {workers}")
            kinds = [json.loads(l)["kind"]
                     for l in open(path, encoding="utf-8")]
            check.ok(kinds.count("request_begin") == 6 and
                     kinds.count("request_end") == 6,
                     f"every request logged begin+end (--workers {workers})")
            check.ok(kinds[0] == "conn_accept" and kinds[-1] == "conn_close",
                     f"log brackets the connection (--workers {workers})")
            projections.append(_log_projection(path))
    finally:
        for name in os.listdir(tmp):
            os.unlink(os.path.join(tmp, name))
        os.rmdir(tmp)
    check.ok(projections[0] == projections[1],
             "deterministic log projection byte-identical across "
             "1 vs 4 workers")


def cmd_selftest(args):
    check = Check()
    transports = {
        "stdio": ("stdio",),
        "socket": ("socket",),
        "tcp": ("tcp",),
        "both": ("stdio", "socket"),
        "all": ("stdio", "socket", "tcp"),
    }[args.transport]
    if "stdio" in transports:
        selftest_stdio(check, args.serve)
    if "socket" in transports:
        selftest_socket(check, args.serve)
    if "tcp" in transports:
        selftest_tcp(check, args.serve)
    selftest_backpressure(check, args.serve)
    selftest_persistence(check, args.serve)
    selftest_logging(check, args.serve)
    if check.failures:
        print(f"\n{len(check.failures)} check(s) FAILED:", file=sys.stderr)
        for f in check.failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nall service checks passed")
    return 0


def _make_client(args, workers=2):
    if getattr(args, "socket", None):
        return CsfmaClient.connect(args.socket)
    if getattr(args, "tcp", None):
        host, _, port = args.tcp.rpartition(":")
        return CsfmaClient.connect_tcp(host or "127.0.0.1", port)
    return CsfmaClient.spawn(args.serve, workers=workers)


def cmd_submit(args):
    params = dict(mode=args.mode, unit=args.unit, seed=args.seed)
    if args.mode == "chained":
        params.update(chains=args.chains, depth=args.depth)
    else:
        params.update(ops=args.ops)
    if args.rounding:
        params["rounding"] = args.rounding
    if args.threads:
        params["threads"] = args.threads
    spawned = not (args.socket or args.tcp)
    with _make_client(args, workers=args.threads or 2) as client:
        r = client.submit(**params)
        print(r.raw_terminal)
        if spawned:
            client.shutdown()
    return 0 if r.terminal["type"] == "result" else 1


def cmd_sweep(args):
    csv = lambda s: [x for x in s.split(",") if x]
    # Sweep axes reuse the submit field names; each takes a scalar or array.
    params = dict(mode=args.mode,
                  unit=csv(args.units),
                  seed=[int(x) for x in csv(args.seeds)])
    if args.roundings:
        params["rounding"] = csv(args.roundings)
    if args.mode == "chained":
        params["chains"] = [int(x) for x in csv(args.chains)]
        params["depth"] = [int(x) for x in csv(args.depths)]
    else:
        params["ops"] = [int(x) for x in csv(args.ops)]
    spawned = not (args.socket or args.tcp)
    with _make_client(args) as client:
        s = client.sweep(**params)
        if s.done["type"] != "sweep_done":
            print(json.dumps(s.done))
            return 1
        if args.transcript:
            # Raw daemon bytes, the input check_report.py --check-sweep
            # validates (including the digest recomputation).
            with open(args.transcript, "w", encoding="utf-8") as f:
                for raw in s.raw_points:
                    f.write(raw + "\n")
                f.write(s.raw_done + "\n")
        for p in s.points:
            print(json.dumps({"index": p["index"], "cache": p["cache"],
                              "cache_key": p["cache_key"],
                              "params": p["params"]}))
        print(json.dumps(s.done))
        if spawned:
            client.shutdown()
    return 0


def cmd_stats(args):
    spawned = not (args.socket or args.tcp)
    with _make_client(args) as client:
        st = client.stats()
        print(json.dumps(st, indent=2 if args.pretty else None,
                         sort_keys=True))
        if spawned:
            client.shutdown()
    return 0 if st["type"] == "stats" else 1


def main(argv=None):
    p = argparse.ArgumentParser(description=__doc__,
                                formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = p.add_subparsers(dest="cmd", required=True)

    st = sub.add_parser("selftest", help="end-to-end protocol conformance")
    st.add_argument("--serve", required=True, help="path to csfma_serve")
    st.add_argument("--transport",
                    choices=("stdio", "socket", "tcp", "both", "all"),
                    default="all")
    st.set_defaults(fn=cmd_selftest)

    def common_connect(sp):
        sp.add_argument("--serve", help="path to csfma_serve (spawn mode)")
        sp.add_argument("--socket", help="connect to a --socket daemon")
        sp.add_argument("--tcp", help="connect to a --tcp daemon (HOST:PORT)")

    sm = sub.add_parser("submit", help="run one job and print the result")
    common_connect(sm)
    sm.add_argument("--mode", choices=("batch", "stream", "chained"),
                    default="batch")
    sm.add_argument("--unit", default="pcs")
    sm.add_argument("--rounding", default=None)
    sm.add_argument("--ops", type=int, default=100000)
    sm.add_argument("--chains", type=int, default=1024)
    sm.add_argument("--depth", type=int, default=18)
    sm.add_argument("--seed", type=int, default=1)
    sm.add_argument("--threads", type=int, default=0)
    sm.set_defaults(fn=cmd_submit)

    sw = sub.add_parser("sweep", help="run a server-side parameter sweep")
    common_connect(sw)
    sw.add_argument("--mode", choices=("batch", "stream", "chained"),
                    default="batch")
    sw.add_argument("--units", default="pcs", help="comma-separated")
    sw.add_argument("--roundings", default=None, help="comma-separated")
    sw.add_argument("--seeds", default="1", help="comma-separated")
    sw.add_argument("--ops", default="100000", help="comma-separated")
    sw.add_argument("--chains", default="1024", help="comma-separated")
    sw.add_argument("--depths", default="18", help="comma-separated")
    sw.add_argument("--transcript",
                    help="write the raw sweep_point/sweep_done lines here "
                         "(input for check_report.py --check-sweep)")
    sw.set_defaults(fn=cmd_sweep)

    sg = sub.add_parser("stats", help="fetch the live metrics snapshot")
    common_connect(sg)
    sg.add_argument("--pretty", action="store_true",
                    help="indent the JSON output")
    sg.set_defaults(fn=cmd_stats)

    args = p.parse_args(argv)
    if args.cmd in ("submit", "sweep", "stats") and not (
            args.serve or args.socket or args.tcp):
        p.error(f"{args.cmd} needs --serve, --socket or --tcp")
    try:
        return args.fn(args)
    except ProtocolError as e:
        print(f"csfma_client: protocol violation: {e}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
