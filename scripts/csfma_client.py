#!/usr/bin/env python3
"""Stdlib JSON-lines client for the csfma_serve daemon.

Speaks the protocol of docs/service.md over either transport the daemon
offers: a spawned child process on stdin/stdout, or a Unix stream socket.
Used three ways:

  csfma_client.py submit --serve BIN --mode batch --unit pcs --ops 100000 --seed 1
      spawn a daemon, run one job, print the result reply as JSON

  csfma_client.py selftest --serve BIN [--transport stdio|socket|both]
      the end-to-end protocol conformance suite CI runs: cache-hit
      byte-identity, cooperative cancel, malformed-input replies, and
      1-vs-4-worker result determinism.  Exit 0 iff every check passes.

  from csfma_client import Client   (library use from tests)

No third-party imports; python3 stdlib only.
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import subprocess
import sys
import tempfile
import time


class ProtocolError(RuntimeError):
    """The daemon violated the JSON-lines protocol (or crashed)."""


class _StdioTransport:
    """Daemon as a child process; requests on stdin, replies on stdout."""

    def __init__(self, argv):
        self.proc = subprocess.Popen(
            argv,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )

    def send_line(self, line):
        try:
            self.proc.stdin.write(line + "\n")
            self.proc.stdin.flush()
        except BrokenPipeError:
            raise ProtocolError("daemon closed stdin (crashed?)")

    def recv_line(self):
        line = self.proc.stdout.readline()
        if line == "":
            rc = self.proc.poll()
            raise ProtocolError(f"daemon EOF (exit status {rc})")
        return line.rstrip("\n")

    def close(self):
        if self.proc.stdin and not self.proc.stdin.closed:
            self.proc.stdin.close()
        rc = self.proc.wait(timeout=60)
        self.proc.stdout.close()
        return rc


class _SocketTransport:
    """Connection to a daemon already listening on --socket PATH."""

    def __init__(self, path, timeout_s=300.0):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.settimeout(timeout_s)
        self.sock.connect(path)
        self.rfile = self.sock.makefile("r", encoding="utf-8")

    def send_line(self, line):
        try:
            self.sock.sendall((line + "\n").encode("utf-8"))
        except (BrokenPipeError, ConnectionResetError):
            raise ProtocolError("daemon closed the socket (crashed?)")

    def recv_line(self):
        line = self.rfile.readline()
        if line == "":
            raise ProtocolError("daemon EOF on socket")
        return line.rstrip("\n")

    def close(self):
        try:
            self.sock.shutdown(socket.SHUT_WR)
        except OSError:
            pass
        # Drain whatever the daemon still sends (the final "bye").
        try:
            while self.rfile.readline():
                pass
        except OSError:
            pass
        self.rfile.close()
        self.sock.close()
        return 0


class Result:
    """One finished submit: the terminal reply plus everything en route."""

    def __init__(self, accepted, terminal, raw_terminal, progress):
        self.accepted = accepted        # parsed "accepted" reply
        self.terminal = terminal        # parsed "result"/"cancelled"/"error"
        self.raw_terminal = raw_terminal  # exact daemon bytes (str)
        self.progress = progress        # parsed "progress" events, in order

    @property
    def job(self):
        return self.accepted["job"]

    @property
    def report_bytes(self):
        """The raw report object out of a "result" line.

        Splices the substring after `"report":` so byte-identity checks
        are immune to the reply envelope (id, elapsed_s, cache verdict).
        """
        marker = '"report":'
        idx = self.raw_terminal.find(marker)
        if idx < 0:
            raise ProtocolError(f"no report in reply: {self.raw_terminal!r}")
        return self.raw_terminal[idx + len(marker):-1]


class Client:
    """Synchronous protocol driver on top of either transport."""

    def __init__(self, transport):
        self.t = transport
        self._next_id = 0

    # -- construction -----------------------------------------------------

    @classmethod
    def spawn(cls, serve_binary, workers=2, cache=64, progress_interval=0.5,
              extra_args=()):
        argv = [serve_binary,
                "--workers", str(workers),
                "--job-cache", str(cache),
                "--progress-interval", str(progress_interval)]
        argv += list(extra_args)
        return cls(_StdioTransport(argv))

    @classmethod
    def connect(cls, socket_path, timeout_s=300.0):
        return cls(_SocketTransport(socket_path, timeout_s))

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def close(self):
        return self.t.close()

    # -- raw line layer ---------------------------------------------------

    def _send(self, obj):
        self.t.send_line(json.dumps(obj))

    def _recv(self):
        raw = self.t.recv_line()
        try:
            msg = json.loads(raw)
        except json.JSONDecodeError as e:
            raise ProtocolError(f"daemon emitted malformed JSON: {raw!r}: {e}")
        if not isinstance(msg, dict) or "type" not in msg:
            raise ProtocolError(f"daemon reply has no type: {raw!r}")
        return msg, raw

    def _rid(self):
        self._next_id += 1
        return f"c{self._next_id}"

    # -- requests ---------------------------------------------------------

    def submit_async(self, params):
        """Send a submit; return the parsed accepted (or error) reply."""
        req = dict(params)
        req["type"] = "submit"
        req.setdefault("id", self._rid())
        self._send(req)
        msg, raw = self._recv()
        return msg, raw

    def wait(self, job):
        """Collect events until `job`'s terminal reply; return it + progress."""
        progress = []
        while True:
            msg, raw = self._recv()
            if msg["type"] == "progress":
                if msg["job"] == job:
                    progress.append(msg)
                continue
            if msg.get("job") == job:
                return msg, raw, progress
            # Terminal reply for some other in-flight job: not ours to
            # consume in this simple synchronous client.
            raise ProtocolError(f"unexpected interleaved reply: {raw!r}")

    def submit(self, **params):
        """Submit and block for the terminal reply (result/cancelled)."""
        acc, raw_acc = self.submit_async(params)
        if acc["type"] == "error":
            return Result(acc, acc, raw_acc, [])
        terminal, raw, progress = self.wait(acc["job"])
        return Result(acc, terminal, raw, progress)

    def cancel(self, job):
        self._send({"type": "cancel", "id": self._rid(), "job": job})
        msg, _ = self._recv()
        return msg

    def status(self):
        self._send({"type": "status", "id": self._rid()})
        msg, _ = self._recv()
        return msg

    def shutdown(self):
        self._send({"type": "shutdown", "id": self._rid()})
        msg, _ = self._recv()
        return msg

    def send_raw(self, text):
        """Send a raw (possibly malformed) line; return the parsed reply."""
        self.t.send_line(text)
        msg, _ = self._recv()
        return msg


# -- selftest ------------------------------------------------------------


class Check:
    def __init__(self):
        self.failures = []

    def ok(self, cond, what):
        tag = "ok" if cond else "FAIL"
        print(f"  [{tag}] {what}")
        if not cond:
            self.failures.append(what)


BATCH = dict(mode="batch", unit="pcs", ops=20000, seed=11)


def selftest_session(check, client):
    """Protocol conformance against one live session (any transport)."""
    # 1. Determinism + cache: identical sequential submits; the second must
    #    be served from the LRU cache and the report must be byte-identical.
    r1 = client.submit(**BATCH)
    r2 = client.submit(**BATCH)
    check.ok(r1.terminal["type"] == "result", "first submit completes")
    check.ok(r1.terminal["cache"] == "miss", "first submit is a cache miss")
    check.ok(r2.terminal["cache"] == "hit", "second identical submit is a cache hit")
    check.ok(r1.accepted["cache_key"] == r2.accepted["cache_key"],
             "identical submits share a cache key")
    check.ok(r1.report_bytes == r2.report_bytes,
             "cache hit replays byte-identical report")
    check.ok(len(r1.progress) >= 1, "job streamed progress events")
    if r1.progress:
        last = r1.progress[-1]
        check.ok(last["ops_done"] == last["ops_total"] == BATCH["ops"],
                 "final progress event reports 100%")

    # 2. Cooperative cancel: a job big enough to still be running when the
    #    cancel lands; expect cancel_ok then a clean `cancelled` terminal
    #    reply, and a daemon that still answers afterwards.
    big = dict(mode="batch", unit="pcs", ops=200_000_000, seed=3,
               shard_ops=4096)
    acc, _ = client.submit_async(big)
    check.ok(acc["type"] == "accepted", "long job accepted")
    ack = client.cancel(acc["job"])
    # The ack can arrive after progress lines already in flight.
    while ack["type"] == "progress":
        ack, _ = client._recv()
    check.ok(ack["type"] == "cancel_ok", f"cancel acknowledged ({ack['type']})")
    terminal, _, _ = client.wait(acc["job"])
    check.ok(terminal["type"] == "cancelled", "cancelled terminal reply")
    check.ok(terminal["ops_done"] < big["ops"],
             "cancel stopped the job before completion")
    st = client.status()
    check.ok(st["type"] == "status", "daemon alive after cancel")
    states = {j["job"]: j["state"] for j in st["jobs"]}
    check.ok(states.get(acc["job"]) == "cancelled",
             "status shows job cancelled")

    # 3. Typed errors for malformed input — and the daemon survives them.
    e = client.send_raw("this is not json")
    check.ok(e["type"] == "error" and e["code"] == "parse_error",
             "malformed line gets parse_error")
    e = client.send_raw('{"type":"frobnicate"}')
    check.ok(e["type"] == "error" and e["code"] == "unknown_type",
             "unknown request type gets unknown_type")
    e = client.send_raw('{"type":"submit","mode":"batch","unit":"pcs","seed":1}')
    check.ok(e["type"] == "error" and e["code"] == "bad_request",
             "missing field gets bad_request")
    e = client.cancel("job-99999")
    check.ok(e["type"] == "error" and e["code"] == "unknown_job",
             "cancel of unknown job gets unknown_job")
    check.ok(client.status()["type"] == "status",
             "daemon alive after error barrage")


def selftest_stdio(check, serve):
    print("stdio transport:")
    with Client.spawn(serve, workers=2, progress_interval=0.05) as client:
        selftest_session(check, client)
        bye = client.shutdown()
        check.ok(bye["type"] == "bye", "shutdown answers bye")
    # 4. Worker-count determinism through the service path: independent
    #    daemons (cache off, so both actually simulate) must produce
    #    byte-identical reports for the same request.
    print("worker determinism:")
    reports = []
    for workers in (1, 4):
        with Client.spawn(serve, workers=workers, cache=0) as client:
            r = client.submit(**BATCH)
            check.ok(r.terminal.get("cache") == "miss",
                     f"cache disabled under --workers {workers}")
            reports.append(r.report_bytes)
            client.shutdown()
    check.ok(reports[0] == reports[1],
             "1-worker and 4-worker reports byte-identical")


def selftest_socket(check, serve):
    print("socket transport:")
    tmp = tempfile.mkdtemp(prefix="csfma_serve.")
    path = os.path.join(tmp, "sock")
    proc = subprocess.Popen(
        [serve, "--workers", "2", "--progress-interval", "0.05",
         "--socket", path],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    try:
        deadline = time.time() + 30
        while not os.path.exists(path):
            if time.time() > deadline or proc.poll() is not None:
                check.ok(False, "socket daemon came up")
                return
            time.sleep(0.05)
        with Client.connect(path) as client:
            selftest_session(check, client)
        # A fresh connection shares the daemon-wide cache: instant hit.
        with Client.connect(path) as client:
            r = client.submit(**BATCH)
            check.ok(r.terminal.get("cache") == "hit",
                     "cache shared across connections")
            bye = client.shutdown()
            check.ok(bye["type"] == "bye", "socket shutdown answers bye")
        rc = proc.wait(timeout=60)
        check.ok(rc == 0, f"daemon exit status 0 (got {rc})")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        if os.path.exists(path):
            os.unlink(path)
        os.rmdir(tmp)


def cmd_selftest(args):
    check = Check()
    if args.transport in ("stdio", "both"):
        selftest_stdio(check, args.serve)
    if args.transport in ("socket", "both"):
        selftest_socket(check, args.serve)
    if check.failures:
        print(f"\n{len(check.failures)} check(s) FAILED:", file=sys.stderr)
        for f in check.failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nall service checks passed")
    return 0


def cmd_submit(args):
    params = dict(mode=args.mode, unit=args.unit, seed=args.seed)
    if args.mode == "chained":
        params.update(chains=args.chains, depth=args.depth)
    else:
        params.update(ops=args.ops)
    if args.rounding:
        params["rounding"] = args.rounding
    if args.threads:
        params["threads"] = args.threads
    if args.socket:
        client = Client.connect(args.socket)
    else:
        client = Client.spawn(args.serve, workers=args.threads or 2)
    with client:
        r = client.submit(**params)
        print(r.raw_terminal)
        if not args.socket:
            client.shutdown()
    return 0 if r.terminal["type"] == "result" else 1


def main(argv=None):
    p = argparse.ArgumentParser(description=__doc__,
                                formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = p.add_subparsers(dest="cmd", required=True)

    st = sub.add_parser("selftest", help="end-to-end protocol conformance")
    st.add_argument("--serve", required=True, help="path to csfma_serve")
    st.add_argument("--transport", choices=("stdio", "socket", "both"),
                    default="both")
    st.set_defaults(fn=cmd_selftest)

    sm = sub.add_parser("submit", help="run one job and print the result")
    sm.add_argument("--serve", help="path to csfma_serve (spawn mode)")
    sm.add_argument("--socket", help="connect to an existing daemon instead")
    sm.add_argument("--mode", choices=("batch", "stream", "chained"),
                    default="batch")
    sm.add_argument("--unit", default="pcs")
    sm.add_argument("--rounding", default=None)
    sm.add_argument("--ops", type=int, default=100000)
    sm.add_argument("--chains", type=int, default=1024)
    sm.add_argument("--depth", type=int, default=18)
    sm.add_argument("--seed", type=int, default=1)
    sm.add_argument("--threads", type=int, default=0)
    sm.set_defaults(fn=cmd_submit)

    args = p.parse_args(argv)
    if args.cmd == "submit" and not (args.serve or args.socket):
        p.error("submit needs --serve or --socket")
    try:
        return args.fn(args)
    except ProtocolError as e:
        print(f"csfma_client: protocol violation: {e}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
