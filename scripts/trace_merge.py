#!/usr/bin/env python3
"""Merge an exploration's fleet traces into one timeline (stdlib only).

Usage:
  trace_merge.py --fleettrace fleet.json --out merged.json \
      --summary summary.json d0.trace.json [d1.trace.json ...]

Joins the csfma-fleettrace-v1 artifact `csfma_explore --fleettrace`
writes (explorer-side spans: the exploration root, one `conn-<d>` span
per daemon connection, one `chunk-<n>` span per sweep chunk, plus the
recorded per-daemon clock-offset estimates) with each daemon's
`csfma_serve --trace-out` chrome://tracing file into:

  --out      one offset-aligned chrome://tracing timeline.  The explorer
             owns pid 0; daemon `d` (the d-th positional trace file,
             matching `--daemon` order) gets its own pid lane `d + 1`
             with every timestamp shifted by that daemon's mean clock
             offset, so server spans line up under the explorer chunk
             spans that caused them.  Load it in chrome://tracing or
             Perfetto.

  --summary  a csfma-fleetmerge-v1 summary: span counts per daemon,
             per-chunk point and request-tree counts, and the
             orphan-span list — server spans carrying this exploration's
             trace id whose recorded parent is not an explorer span.
             All arrays are order-normalized (chunks by ordinal, orphans
             lexicographically), and the "daemons" member comes last:
             everything before it is the deterministic projection,
             byte-identical across daemon counts, worker counts and
             point arrival orders.  `check_report.py --check-fleettrace`
             validates the summary; `--compare-fleettrace` diffs two
             projections.

Daemon events that do not carry this exploration's trace id (other
clients' traffic, server housekeeping) still appear in the merged
timeline — they are real daemon activity — but are excluded from the
summary and the orphan check.
"""
import argparse
import json
import re
import sys

FLEETTRACE_SCHEMA = "csfma-fleettrace-v1"
FLEETMERGE_SCHEMA = "csfma-fleetmerge-v1"
CHUNK_ID = re.compile(r"^chunk-(\d+)$")


def die(msg):
    print(f"trace_merge: {msg}", file=sys.stderr)
    sys.exit(1)


def load_json(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"{path}: cannot load: {e}")


def load_fleettrace(path):
    ft = load_json(path)
    if not isinstance(ft, dict) or ft.get("format") != FLEETTRACE_SCHEMA:
        die(f"{path}: not a {FLEETTRACE_SCHEMA} artifact")
    for key in ("trace_id", "spans", "daemons"):
        if key not in ft:
            die(f"{path}: missing member '{key}'")
    return ft


def explorer_events(ft):
    """The explorer's own spans as chrome trace X events on pid 0."""
    events = [{"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
               "args": {"name": "csfma_explore"}}]
    for span in ft["spans"]:
        args = {"kind": span["kind"]}
        for key in ("daemon", "addr", "base", "points"):
            if key in span:
                args[key] = span[key]
        if span.get("parent"):
            args["parent"] = span["parent"]
        events.append({
            "name": span["id"], "cat": "explore", "ph": "X",
            "ts": span["t0_us"], "dur": span["t1_us"] - span["t0_us"],
            "pid": 0, "tid": span["daemon"] + 1 if "daemon" in span else 0,
            "args": args,
        })
    return events


def daemon_events(path, index, addr, offset_us):
    """One daemon's trace events, shifted onto the explorer clock."""
    trace = load_json(path)
    raw = trace.get("traceEvents")
    if not isinstance(raw, list):
        die(f"{path}: no traceEvents array — not a --trace-out file?")
    shift = round(offset_us)
    events = [{"name": "process_name", "ph": "M", "pid": index + 1,
               "tid": 0, "args": {"name": f"daemon {index} ({addr})"}}]
    for e in raw:
        if e.get("ph") == "M":
            continue  # replaced by the lane name above
        out = dict(e)
        out["pid"] = index + 1
        if "ts" in out:
            out["ts"] = out["ts"] + shift
        events.append(out)
    return events


def in_trace_spans(path, trace_id):
    """This exploration's spans out of one daemon's --trace-out file."""
    trace = load_json(path)
    spans = []
    for e in trace.get("traceEvents", []):
        args = e.get("args")
        if isinstance(args, dict) and args.get("trace") == trace_id:
            spans.append(e)
    return spans


def build_summary(ft, trace_paths):
    trace_id = ft["trace_id"]
    explorer_ids = {span["id"] for span in ft["spans"]}

    chunks = {}  # ordinal -> {"id", "points", "req_trees" set}
    for span in ft["spans"]:
        m = CHUNK_ID.match(span["id"])
        if span.get("kind") == "chunk" and m:
            chunks[int(m.group(1))] = {"id": span["id"],
                                       "points": span.get("points", 0),
                                       "trees": set()}

    daemons = []
    orphans = []
    for index, path in enumerate(trace_paths):
        meta = ft["daemons"][index] if index < len(ft["daemons"]) else {}
        spans = in_trace_spans(path, trace_id)
        reqs = set()
        for e in spans:
            args = e["args"]
            req = args.get("req", "")
            reqs.add(req)
            parent = args.get("parent", "")
            if parent not in explorer_ids:
                orphans.append({"daemon": index, "name": e.get("name", ""),
                                "req": req, "parent": parent})
            m = CHUNK_ID.match(parent)
            if m and int(m.group(1)) in chunks:
                chunks[int(m.group(1))]["trees"].add((index, req))
        daemons.append({"index": index, "addr": meta.get("addr", ""),
                        "spans": len(spans), "reqs": len(reqs)})

    chunk_list = [{"id": c["id"], "points": c["points"],
                   "req_trees": len(c["trees"])}
                  for _, c in sorted(chunks.items())]
    orphans.sort(key=lambda o: (o["daemon"], o["req"], o["name"],
                                o["parent"]))
    # "daemons" last: everything before it is the deterministic
    # projection (mirrors the frontier report's trailing "timing").
    return {
        "format": FLEETMERGE_SCHEMA,
        "trace_id": trace_id,
        "chunks": chunk_list,
        "orphans": orphans,
        "totals": {"chunks": len(chunk_list),
                   "points": sum(c["points"] for c in chunk_list),
                   "req_trees": sum(c["req_trees"] for c in chunk_list)},
        "daemons": daemons,
    }


def main(argv):
    ap = argparse.ArgumentParser(
        prog="trace_merge.py", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--fleettrace", required=True,
                    help="csfma-fleettrace-v1 artifact from csfma_explore")
    ap.add_argument("--out", help="merged chrome://tracing timeline")
    ap.add_argument("--summary", help="csfma-fleetmerge-v1 summary")
    ap.add_argument("traces", nargs="+", metavar="TRACE",
                    help="daemon --trace-out files, in --daemon order")
    args = ap.parse_args(argv)

    ft = load_fleettrace(args.fleettrace)
    if len(args.traces) != len(ft["daemons"]):
        die(f"{len(args.traces)} trace file(s) for "
            f"{len(ft['daemons'])} daemon(s) in {args.fleettrace}")

    if args.out:
        events = explorer_events(ft)
        for index, path in enumerate(args.traces):
            meta = ft["daemons"][index]
            offset = meta.get("clock_offset_us", {}).get("mean", 0.0)
            events.extend(daemon_events(path, index, meta.get("addr", ""),
                                        offset))
        # Stable order: metadata first, then by (ts, pid, tid, name).
        events.sort(key=lambda e: (e.get("ph") != "M", e.get("ts", 0),
                                   e.get("pid", 0), e.get("tid", 0),
                                   e.get("name", "")))
        merged = {"displayTimeUnit": "ms", "traceEvents": events}
        with open(args.out, "w", encoding="utf-8") as f:
            json.dump(merged, f, separators=(",", ":"))
            f.write("\n")

    summary = build_summary(ft, args.traces)
    if args.summary:
        with open(args.summary, "w", encoding="utf-8") as f:
            json.dump(summary, f, separators=(",", ":"))
            f.write("\n")

    t = summary["totals"]
    print(f"{args.fleettrace}: merged {len(args.traces)} daemon lane(s); "
          f"{t['chunks']} chunk(s), {t['points']} point(s), "
          f"{t['req_trees']} request tree(s), "
          f"{len(summary['orphans'])} orphan span(s)")
    if summary["orphans"]:
        for o in summary["orphans"][:10]:
            print(f"  orphan: daemon {o['daemon']} {o['req'] or '?'} "
                  f"span {o['name']!r} parent {o['parent']!r}",
                  file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main(sys.argv[1:])
