#!/usr/bin/env python3
"""Validate csfma-report-v1 JSON reports (stdlib only).

Usage:
  check_report.py report.json [more.json ...]
      Validate each report against the schema; exit non-zero on the
      first violation.

  check_report.py --compare-metrics a.json b.json
      Additionally assert the deterministic sections ("metrics",
      "tables" and "sections" — the latter carries event logs and
      activity snapshots) of two reports are identical.  This is the CI
      gate for the engine determinism contract: the same seed run with
      different worker thread counts must export identical deterministic
      metrics and byte-identical event logs.  "meta" and "timing" are
      exempt (thread count and wall clock live there) — see
      docs/observability.md.

  check_report.py --check-vcd waveform.vcd [more.vcd ...]
      Validate VCD well-formedness instead: header structure, balanced
      scopes, declared ids, monotone timestamps, and value tokens that
      fit their declared widths (the files SignalTap writes, see
      docs/observability.md).

  check_report.py --check-journal cache.journal [more ...]
      Validate a csfma-journal-v1 cache-persistence file (the format
      csfma_serve --cache-file writes, docs/service.md): magic header,
      per-record key/length/FNV-1a checksum integrity.  A truncated or
      corrupt trailing record FAILS the check — the daemon skips such
      tails at recovery, but a checked-in or published journal must be
      whole.

  check_report.py --check-sweep transcript.jsonl [more ...]
      Validate a sweep transcript (the JSON lines a `sweep` request
      streams back; csfma_client.py sweep --transcript writes one):
      proto versioning, sweep_point lines in index order, each embedded
      csfma-report-v1 payload schema-valid, hit/miss counts consistent,
      and the sweep_done digest matching an independent FNV-1a
      recomputation over the point payload bytes.

  check_report.py --check-frontier frontier.json [more ...]
      Validate a csfma-frontier-v1 exploration report (what
      csfma_explore --out writes, docs/dse.md): the declared config
      space re-expanded and matched point-for-point in index order,
      every point's canonical cache key and the replay digest
      recomputed, the Pareto frontier (membership, eviction log,
      rejected count) replayed from the points, sensitivity medians
      recomputed, and coverage counts cross-checked against the space.

  check_report.py --compare-frontier a.json b.json
      Assert the deterministic projections of two frontier reports —
      all bytes before the trailing "timing" member — are identical.
      This is the CI gate for the exploration determinism contract:
      any daemon count, worker count, and point arrival order must
      produce byte-identical reports (docs/dse.md).

  check_report.py --check-log serve.log [more ...]
      Validate a csfma-log-v1 structured server log (the file
      csfma_serve --log-file appends, docs/FORMATS.md): every line a
      JSON object with a known "kind", "seq" strictly increasing,
      timestamps under "t" non-decreasing, every request_begin paired
      with exactly one request_end for the same (conn, req) carrying a
      known outcome, and connection lifecycle lines well-formed.

  check_report.py --check-fleettrace summary.json [more ...]
      Validate a csfma-fleetmerge-v1 fleet-trace summary (what
      scripts/trace_merge.py --summary writes from a csfma_explore
      --fleettrace artifact plus the daemons' --trace-out files): zero
      orphan spans, exactly one server request tree per sweep chunk,
      order-normalized chunk/orphan arrays, consistent totals, and the
      trailing "daemons" member so the deterministic projection is a
      byte prefix (docs/FORMATS.md).

  check_report.py --compare-fleettrace a.json b.json
      Assert the deterministic projections of two fleet-trace summaries
      — all bytes before the trailing "daemons" member — are identical.
      CI gate for the fleet-tracing determinism contract: any daemon
      count, worker count, and chunk arrival order over the same config
      space must produce the same chunks, totals, and (empty) orphan
      list.
"""
import json
import math
import re
import sys

SCHEMA = "csfma-report-v1"

EVENT_KINDS = {
    "misround_vs_ieee",
    "cancellation",
    "lza_mispredict",
    "zero_detect_late",
    "subnormal_flush",
}

HEX64 = re.compile(r"^0x[0-9a-f]{16}$")


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    sys.exit(1)


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check_scalar_or_histogram(path, section, name, v):
    where = f'{section}["{name}"]'
    if v is None:  # non-finite doubles render as null
        return
    if is_number(v):
        if isinstance(v, float) and not math.isfinite(v):
            fail(path, f"{where}: non-finite number survived serialization")
        return
    if not isinstance(v, dict):
        fail(path, f"{where}: expected number, null or histogram object")
    for key in ("bounds", "counts", "count", "sum"):
        if key not in v:
            fail(path, f"{where}: histogram missing key '{key}'")
    bounds, counts = v["bounds"], v["counts"]
    if not isinstance(bounds, list) or not all(is_number(b) for b in bounds):
        fail(path, f"{where}: histogram bounds must be a number array")
    if bounds != sorted(bounds):
        fail(path, f"{where}: histogram bounds must be ascending")
    if not isinstance(counts, list) or len(counts) != len(bounds) + 1:
        fail(path, f"{where}: expected len(bounds)+1 buckets "
                   f"(got {len(counts)} for {len(bounds)} bounds)")
    if not all(isinstance(c, int) and c >= 0 for c in counts):
        fail(path, f"{where}: bucket counts must be non-negative integers")
    if sum(counts) != v["count"]:
        fail(path, f"{where}: bucket counts sum to {sum(counts)}, "
                   f"count says {v['count']}")


def check_event_log(path, name, sec):
    """Validate a numerical event-log section (EventLog::to_json)."""
    where = f'sections["{name}"]'
    if not isinstance(sec, dict):
        fail(path, f"{where}: must be an object")
    for key in ("capacity", "raised", "dropped", "events"):
        if key not in sec:
            fail(path, f"{where}: missing key '{key}'")
    for key in ("capacity", "raised", "dropped"):
        if not isinstance(sec[key], int) or sec[key] < 0:
            fail(path, f"{where}: '{key}' must be a non-negative integer")
    events = sec["events"]
    if not isinstance(events, list):
        fail(path, f"{where}: 'events' must be an array")
    if len(events) > sec["capacity"]:
        fail(path, f"{where}: {len(events)} events exceed capacity "
                   f"{sec['capacity']}")
    if sec["dropped"] != sec["raised"] - len(events):
        fail(path, f"{where}: dropped={sec['dropped']} but raised - stored "
                   f"= {sec['raised'] - len(events)}")
    for i, e in enumerate(events):
        ew = f"{where} event {i}"
        if not isinstance(e, dict):
            fail(path, f"{ew}: must be an object")
        if e.get("kind") not in EVENT_KINDS:
            fail(path, f'{ew}: unknown kind {e.get("kind")!r}')
        if not isinstance(e.get("op"), int) or e["op"] < 0:
            fail(path, f"{ew}: 'op' must be a non-negative integer")
        for operand in ("a", "b", "c"):
            if not isinstance(e.get(operand), str) or \
                    not HEX64.match(e[operand]):
                fail(path, f"{ew}: '{operand}' must be a 0x-prefixed "
                           f"16-digit hex string")
        if not isinstance(e.get("detail"), int):
            fail(path, f"{ew}: 'detail' must be an integer")


def check_stage_activity(path, sec):
    """Validate the per-stage attribution section: for every architecture
    the stage toggles must sum exactly to the unit's total."""
    where = 'sections["stage_activity"]'
    if not isinstance(sec, dict):
        fail(path, f"{where}: must be an object")
    for arch, a in sec.items():
        aw = f'{where}["{arch}"]'
        if not isinstance(a, dict):
            fail(path, f"{aw}: must be an object")
        for key in ("total_toggles", "ops", "stages"):
            if key not in a:
                fail(path, f"{aw}: missing key '{key}'")
        if not isinstance(a["stages"], dict) or not a["stages"]:
            fail(path, f"{aw}: 'stages' must be a non-empty object")
        for stage, t in a["stages"].items():
            if not isinstance(t, int) or t < 0:
                fail(path, f'{aw}: stage "{stage}" toggles must be a '
                           f"non-negative integer")
        total = sum(a["stages"].values())
        if total != a["total_toggles"]:
            fail(path, f"{aw}: stage toggles sum to {total}, "
                       f"total_toggles says {a['total_toggles']}")


def check_bench_host_perf(path, sec):
    """Validate the host-performance section the bench harness attaches
    (BenchHarness::attach, bench/harness.cpp).  All values here are
    Timing-class — wall-clock measurements — so this section is exempt
    from --compare-metrics (see compare_metrics below)."""
    where = 'sections["bench_host_perf"]'
    if not isinstance(sec, dict):
        fail(path, f"{where}: must be an object")
    for key in ("host", "hw_counters", "reps", "warmup", "phases",
                "profiler"):
        if key not in sec:
            fail(path, f"{where}: missing key '{key}'")
    if not isinstance(sec["host"], str) or not sec["host"]:
        fail(path, f"{where}: 'host' must be a non-empty string")
    if not isinstance(sec["hw_counters"], bool):
        fail(path, f"{where}: 'hw_counters' must be a bool")
    for key in ("reps", "warmup"):
        if not isinstance(sec[key], int) or sec[key] < 0:
            fail(path, f"{where}: '{key}' must be a non-negative integer")
    phases = sec["phases"]
    if not isinstance(phases, dict) or not phases:
        fail(path, f"{where}: 'phases' must be a non-empty object")
    stat_keys = ("median_s", "mad_s", "mean_s", "min_s", "max_s")
    for name, p in phases.items():
        pw = f'{where} phase "{name}"'
        if not isinstance(p, dict):
            fail(path, f"{pw}: must be an object")
        for key in stat_keys + ("kept", "rejected", "ops_per_rep",
                                "ops_per_sec", "samples_s"):
            if key not in p:
                fail(path, f"{pw}: missing key '{key}'")
        for key in stat_keys:
            if not is_number(p[key]) or p[key] < 0:
                fail(path, f"{pw}: '{key}' must be a non-negative number")
        if p["min_s"] > p["median_s"] or p["median_s"] > p["max_s"]:
            fail(path, f"{pw}: min <= median <= max violated")
        for key in ("kept", "rejected", "ops_per_rep"):
            if not isinstance(p[key], int) or p[key] < 0:
                fail(path, f"{pw}: '{key}' must be a non-negative integer")
        if p["kept"] < 1:
            fail(path, f"{pw}: outlier rejection must keep >= 1 sample")
        samples = p["samples_s"]
        if not isinstance(samples, list) or \
                not all(is_number(x) for x in samples):
            fail(path, f"{pw}: 'samples_s' must be a number array")
        if len(samples) != p["kept"] + p["rejected"]:
            fail(path, f"{pw}: {len(samples)} samples but kept + rejected "
                       f"= {p['kept'] + p['rejected']}")
    prof = sec["profiler"]
    if not isinstance(prof, dict) or "scopes" not in prof or \
            "hw_counters" not in prof:
        fail(path, f"{where}: 'profiler' must have 'hw_counters' and "
                   f"'scopes'")
    for name, s in prof["scopes"].items():
        sw = f'{where} profiler scope "{name}"'
        for key in ("calls", "items", "wall_ns", "cpu_ns", "cycles",
                    "instructions", "cache_misses"):
            if not isinstance(s.get(key), int) or s[key] < 0:
                fail(path, f"{sw}: '{key}' must be a non-negative integer")
        if s["calls"] < 1:
            fail(path, f"{sw}: recorded scope must have calls >= 1")
        if not sec["hw_counters"] and \
                (s["cycles"] or s["instructions"] or s["cache_misses"]):
            fail(path, f"{sw}: hardware counts present but hw_counters "
                       f"is false")


def check_vcd(path):
    """Validate VCD well-formedness (the files SignalTap/VcdWriter write)."""
    try:
        with open(path) as f:
            text = f.read()
    except OSError as e:
        fail(path, f"cannot load: {e}")
    lines = text.splitlines()
    if not any(line.startswith("$timescale") for line in lines):
        fail(path, "missing $timescale")
    if "$enddefinitions $end" not in lines:
        fail(path, "missing $enddefinitions $end")
    header_end = lines.index("$enddefinitions $end")

    depth = 0
    widths = {}  # id code -> declared width
    var_re = re.compile(r"^\$var wire (\d+) (\S+) (\S+)( \[\d+:0\])? \$end$")
    for i, line in enumerate(lines[:header_end]):
        if line.startswith("$scope "):
            depth += 1
        elif line == "$upscope $end":
            depth -= 1
            if depth < 0:
                fail(path, f"line {i + 1}: $upscope without open $scope")
        elif line.startswith("$var "):
            m = var_re.match(line)
            if not m:
                fail(path, f"line {i + 1}: malformed $var: {line!r}")
            width, code = int(m.group(1)), m.group(2)
            if width < 1:
                fail(path, f"line {i + 1}: width must be >= 1")
            if code in widths:
                fail(path, f"line {i + 1}: duplicate id code {code!r}")
            widths[code] = width
    if depth != 0:
        fail(path, f"{depth} unclosed $scope block(s)")
    if not widths:
        fail(path, "no $var declarations")

    in_dump = False
    last_time = -1
    nchanges = 0
    for i, line in enumerate(lines[header_end + 1:], start=header_end + 2):
        if line == "$dumpvars":
            in_dump = True
            continue
        if line == "$end" and in_dump:
            in_dump = False
            continue
        if line.startswith("#"):
            t = int(line[1:])
            if t <= last_time:
                fail(path, f"line {i}: non-monotone timestamp #{t}")
            last_time = t
            continue
        if line.startswith("b"):  # vector: "b<bits> <id>"
            try:
                token, code = line.split(" ")
            except ValueError:
                fail(path, f"line {i}: malformed vector change: {line!r}")
            bits = token[1:]
            if not bits or any(ch not in "01x" for ch in bits):
                fail(path, f"line {i}: bad vector token {token!r}")
            if code not in widths:
                fail(path, f"line {i}: undeclared id {code!r}")
            if bits not in ("x",) and len(bits) > widths[code]:
                fail(path, f"line {i}: {len(bits)} bits on a "
                           f"{widths[code]}-bit wire")
        else:  # scalar: "<0|1|x><id>"
            if line[0] not in "01x":
                fail(path, f"line {i}: unrecognized line {line!r}")
            if line[1:] not in widths:
                fail(path, f"line {i}: undeclared id {line[1:]!r}")
        nchanges += 1
    if last_time < 0:
        fail(path, "no timestamps after the header")
    print(f"{path}: OK ({len(widths)} signals, {nchanges} value changes, "
          f"end time #{last_time})")


def check_report(path):
    try:
        with open(path) as f:
            r = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"cannot load: {e}")
    check_report_obj(path, r)
    nmetrics = len(r["metrics"])
    print(f"{path}: OK ({r['bench']}, {nmetrics} metrics, "
          f"{len(r['timing'])} timing entries, {len(r['tables'])} tables)")
    return r


def check_report_obj(path, r):
    """Validate one csfma-report-v1 document already parsed from JSON."""
    if not isinstance(r, dict):
        fail(path, "top level must be an object")
    if r.get("schema") != SCHEMA:
        fail(path, f'schema is {r.get("schema")!r}, expected "{SCHEMA}"')
    if not isinstance(r.get("bench"), str) or not r["bench"]:
        fail(path, '"bench" must be a non-empty string')

    meta = r.get("meta")
    if not isinstance(meta, dict):
        fail(path, '"meta" must be an object')
    for k, v in meta.items():
        if not isinstance(v, str):
            fail(path, f'meta["{k}"] must be a string (got {type(v).__name__})')
    if "git" not in meta:
        fail(path, 'meta must record "git" provenance')

    for section in ("metrics", "timing"):
        vals = r.get(section)
        if not isinstance(vals, dict):
            fail(path, f'"{section}" must be an object')
        for name, v in vals.items():
            check_scalar_or_histogram(path, section, name, v)

    tables = r.get("tables")
    if not isinstance(tables, dict):
        fail(path, '"tables" must be an object')
    for name, t in tables.items():
        if not isinstance(t, dict) or "columns" not in t or "rows" not in t:
            fail(path, f'tables["{name}"] must have "columns" and "rows"')
        ncols = len(t["columns"])
        for i, row in enumerate(t["rows"]):
            if not isinstance(row, list) or len(row) != ncols:
                fail(path, f'tables["{name}"] row {i}: expected {ncols} cells')

    sections = r.get("sections")
    if not isinstance(sections, dict):
        fail(path, '"sections" must be an object')
    for name, sec in sections.items():
        if name == "events" or name.startswith("events."):
            check_event_log(path, name, sec)
        elif name == "stage_activity":
            check_stage_activity(path, sec)
        elif name == "bench_host_perf":
            check_bench_host_perf(path, sec)
    return r


PROTO = 1
JOURNAL_MAGIC = b"csfma-journal-v1"
KEY16 = re.compile(r"^[0-9a-f]{16}$")


def fnv1a64(data, h=0xCBF29CE484222325):
    """FNV-1a 64 over bytes — must match fnv1a64() in service/protocol.cpp."""
    for byte in data:
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


def check_journal(path):
    """Validate a csfma-journal-v1 file; any torn/corrupt record fails."""
    try:
        with open(path, "rb") as f:
            data = f.read()
    except OSError as e:
        fail(path, f"cannot load: {e}")

    pos = 0

    def next_line():
        nonlocal pos
        nl = data.find(b"\n", pos)
        if nl < 0:
            return None  # a record without its newline is a torn append
        line = data[pos:nl]
        pos = nl + 1
        return line

    header = next_line()
    if header is None:
        fail(path, "truncated before the end of the magic header")
    if header != JOURNAL_MAGIC:
        fail(path, f"bad magic header {header!r}, "
                   f"expected {JOURNAL_MAGIC.decode()!r}")

    records, keys = 0, set()
    while pos < len(data):
        record_no = records + 1
        line = next_line()
        if line is None:
            fail(path, f"record {record_no}: truncated trailing record "
                       f"({len(data) - pos} byte(s) without a newline)")
        # "<key16> <len> <fnv16> <payload>" — mirror parse_record() in
        # service/persist.cpp, but strict: any violation is fatal here.
        parts = line.split(b" ", 3)
        if len(parts) != 4:
            fail(path, f"record {record_no}: expected 4 space-separated "
                       f"fields, got {len(parts)}")
        key, len_s, sum_s, payload = parts
        if not KEY16.match(key.decode("ascii", "replace")):
            fail(path, f"record {record_no}: key {key!r} is not 16 hex digits")
        if not len_s.isdigit():
            fail(path, f"record {record_no}: length {len_s!r} not decimal")
        if not KEY16.match(sum_s.decode("ascii", "replace")):
            fail(path, f"record {record_no}: checksum {sum_s!r} is not "
                       f"16 hex digits")
        if int(len_s) != len(payload):
            fail(path, f"record {record_no}: declared length {int(len_s)} "
                       f"but payload is {len(payload)} byte(s) — torn or "
                       f"overwritten record")
        if f"{fnv1a64(payload):016x}".encode() != sum_s:
            fail(path, f"record {record_no}: FNV-1a checksum mismatch")
        records += 1
        keys.add(key)
    if records == 0:
        print(f"{path}: OK (empty journal)")
    else:
        print(f"{path}: OK ({records} record(s), {len(keys)} distinct "
              f"key(s))")


def _report_bytes(raw_line):
    """The exact report-payload bytes out of a line carrying `"report":`.

    The daemon emits the payload as the last member before the closing
    brace (sweep.cpp sweep_point_line), so the splice is unambiguous.
    """
    marker = '"report":'
    idx = raw_line.find(marker)
    if idx < 0:
        return None
    return raw_line[idx + len(marker):-1]


def check_sweep(path):
    """Validate one sweep transcript: ordering, schema, digest replay."""
    try:
        with open(path, encoding="utf-8") as f:
            raw_lines = f.read().splitlines()
    except OSError as e:
        fail(path, f"cannot load: {e}")

    npoints_declared = None
    points_seen = 0
    digest = 0xCBF29CE484222325  # kSweepDigestSeed (sweep.hpp)
    done = None
    for lineno, raw in enumerate(raw_lines, start=1):
        if not raw.strip():
            continue
        where = f"line {lineno}"
        if done is not None:
            fail(path, f"{where}: content after the sweep_done summary")
        try:
            msg = json.loads(raw)
        except json.JSONDecodeError as e:
            fail(path, f"{where}: malformed JSON: {e}")
        if not isinstance(msg, dict) or "type" not in msg:
            fail(path, f"{where}: not a typed reply object")
        if msg.get("proto") != PROTO:
            fail(path, f'{where}: proto is {msg.get("proto")!r}, '
                       f"expected {PROTO}")
        t = msg["type"]
        if t == "progress":
            continue  # heartbeats may interleave; not part of the contract
        if t == "accepted":
            if not isinstance(msg.get("points"), int) or msg["points"] < 1:
                fail(path, f"{where}: sweep acceptance must declare a "
                           f"positive point count")
            npoints_declared = msg["points"]
            continue
        if t == "sweep_point":
            if msg.get("index") != points_seen:
                fail(path, f'{where}: point index {msg.get("index")!r}, '
                           f"expected {points_seen} (index order is the "
                           f"contract)")
            if npoints_declared is None:
                npoints_declared = msg.get("points")
            if msg.get("points") != npoints_declared:
                fail(path, f'{where}: point count {msg.get("points")!r} '
                           f"disagrees with {npoints_declared}")
            if msg.get("cache") not in ("hit", "miss"):
                fail(path, f'{where}: cache must be "hit" or "miss"')
            if not isinstance(msg.get("cache_key"), str) or \
                    not KEY16.match(msg["cache_key"]):
                fail(path, f"{where}: cache_key must be 16 hex digits")
            params = msg.get("params")
            if not isinstance(params, dict):
                fail(path, f"{where}: missing params object")
            for k in ("mode", "unit", "rounding", "seed"):
                if k not in params:
                    fail(path, f"{where}: params missing '{k}'")
            payload = _report_bytes(raw)
            if payload is None:
                fail(path, f"{where}: sweep_point without a report payload")
            check_report_obj(f"{path}:{lineno} report", msg.get("report"))
            digest = fnv1a64(payload.encode("utf-8"), digest)
            points_seen += 1
            continue
        if t == "sweep_done":
            done = msg
            continue
        fail(path, f"{where}: unexpected reply type {t!r} in a sweep "
                   f"transcript")

    if done is None:
        fail(path, "no sweep_done summary — truncated transcript")
    if done.get("points") != points_seen:
        fail(path, f'sweep_done says {done.get("points")!r} points but '
                   f"{points_seen} were streamed")
    if npoints_declared is not None and points_seen != npoints_declared:
        fail(path, f"{points_seen} point(s) streamed of {npoints_declared} "
                   f"declared")
    hits, misses = done.get("cache_hits"), done.get("cache_misses")
    if not isinstance(hits, int) or not isinstance(misses, int) or \
            hits + misses != points_seen:
        fail(path, f"cache_hits ({hits!r}) + cache_misses ({misses!r}) "
                   f"must equal the point count {points_seen}")
    if done.get("digest") != f"{digest:016x}":
        fail(path, f'digest {done.get("digest")!r} does not match the '
                   f"recomputed FNV-1a over point payloads "
                   f"({digest:016x}) — payload bytes drifted")
    print(f"{path}: OK ({points_seen} point(s), {hits} hit(s), "
          f"{misses} miss(es), digest {done['digest']})")


FRONTIER_SCHEMA = "csfma-frontier-v1"
FRONTIER_AXES = ("unit", "rounding", "seed", "block", "group", "rwidth",
                 "select", "depth", "ops")
POINT_METRICS = ("delay_ns", "cycles", "fmax_mhz", "luts", "dsps",
                 "toggles_per_op", "energy_nj")
OBJECTIVES = ("delay_ns", "luts", "dsps", "energy_nj")


def _expand_space(space):
    """Re-expand the declared config space in canonical index order.

    Mirrors build_chunks() + expand_sweep() (tools/csfma_explore.cpp,
    service/sweep.cpp): unit > rounding > seed > block > group > rwidth >
    select > depth > ops nesting, pcs requiring block % group == 0, and
    rwidth resolved (0 means one block) in the emitted axis values.
    """
    out = []
    for unit in space["unit"]:
        for rm in space["rounding"]:
            for seed in space["seed"]:
                for block in space["block"]:
                    for group in space["group"]:
                        if unit == "pcs" and block % group != 0:
                            continue
                        for rwidth in space["rwidth"]:
                            for select in space["select"]:
                                for depth in space["depth"]:
                                    for ops in space["ops"]:
                                        out.append({
                                            "unit": unit, "rounding": rm,
                                            "seed": seed, "block": block,
                                            "group": group,
                                            "rwidth": rwidth if rwidth > 0
                                            else block,
                                            "select": select, "depth": depth,
                                            "ops": ops,
                                        })
    return out


def _model_key(p):
    """Canonical cache key of a model point — mirrors canonical_key()
    (service/protocol.cpp); the report carries rwidth already resolved."""
    canon = ("mode=model&unit={unit}&rm={rounding}&seed={seed}"
             "&block={block}&group={group}&rwidth={rwidth}"
             "&select={select}&depth={depth}&ops={ops}").format(**p)
    return f"{fnv1a64(canon.encode('ascii')):016x}"


def _objectives(p):
    return tuple(float(p[m]) for m in OBJECTIVES)


def _dominates(a, b):
    """a dominates b: no worse in every objective, strictly better in one
    — mirrors dominates() in dse/frontier.cpp."""
    if any(x > y for x, y in zip(a, b)):
        return False
    return any(x < y for x, y in zip(a, b))


def _replay_frontier(points):
    """Replay the Pareto frontier in index order — mirrors
    ParetoFrontier::insert (dse/frontier.cpp) including the
    lexicographic-key tie-break and the eviction log order."""
    members = []  # [(key, objectives)] in insertion order
    evictions = []
    rejected = 0
    for p in points:
        key, obj = p["key"], _objectives(p)
        beaten = any(_dominates(qo, obj) or (qo == obj and qk <= key)
                     for qk, qo in members)
        if beaten:
            rejected += 1
            continue
        for qk, qo in members:
            if _dominates(obj, qo):
                evictions.append({"evicted": qk, "by": key,
                                  "reason": "dominated"})
            elif qo == obj:
                evictions.append({"evicted": qk, "by": key, "reason": "tie"})
        members = [(qk, qo) for qk, qo in members
                   if not _dominates(obj, qo) and qo != obj]
        members.append((key, obj))
    return members, evictions, rejected


def _median(v):
    if not v:
        return 0.0
    v = sorted(v)
    mid = len(v) // 2
    return v[mid] if len(v) % 2 else 0.5 * (v[mid - 1] + v[mid])


def _value_less_key(value):
    """Sort key matching value_less() in dse/sensitivity.cpp: numeric when
    the value parses as an integer, lexicographic otherwise."""
    try:
        return (0, int(value), value)
    except ValueError:
        return (1, 0, value)


def _axis_sensitivity(points):
    """Recompute per-knob sensitivity — mirrors axis_sensitivity()
    (dse/sensitivity.cpp): group by all-other-axes context, order along
    the varying axis, median of adjacent |deltas| per objective."""
    out = {}
    for axis in FRONTIER_AXES:
        groups = {}
        for p in points:
            ctx = "&".join(f"{a}={p[a]}" for a in sorted(FRONTIER_AXES)
                           if a != axis)
            groups.setdefault(ctx, []).append((str(p[axis]), _objectives(p)))
        deltas = [[], [], [], []]
        for ctx in sorted(groups):
            g = sorted(groups[ctx], key=lambda e: _value_less_key(e[0]))
            for prev, cur in zip(g, g[1:]):
                if prev[0] == cur[0]:
                    continue  # duplicate config
                for i in range(4):
                    deltas[i].append(abs(cur[1][i] - prev[1][i]))
        out[axis] = {"pairs": len(deltas[0]),
                     **{m: _median(deltas[i])
                        for i, m in enumerate(OBJECTIVES)}}
    return out


def check_frontier(path):
    """Validate one csfma-frontier-v1 report end to end (docs/dse.md)."""
    try:
        with open(path, encoding="utf-8") as f:
            r = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"cannot load: {e}")
    if not isinstance(r, dict):
        fail(path, "top level must be a JSON object")
    if r.get("format") != FRONTIER_SCHEMA:
        fail(path, f'format is {r.get("format")!r}, '
                   f"expected {FRONTIER_SCHEMA!r}")
    for key in ("tool", "space", "points", "frontier", "evictions",
                "rejected", "sensitivity", "coverage", "digest", "timing"):
        if key not in r:
            fail(path, f"missing top-level member '{key}'")
    if list(r)[-1] != "timing":
        fail(path, '"timing" must be the last member — the deterministic '
                   "projection is everything before it")

    # --- the config space, re-expanded ---------------------------------
    space = r["space"]
    for axis in FRONTIER_AXES:
        v = space.get(axis)
        if not isinstance(v, list) or not v:
            fail(path, f'space["{axis}"] must be a non-empty array')
    expanded = _expand_space(space)
    if space.get("points") != len(expanded):
        fail(path, f'space declares {space.get("points")!r} points but the '
                   f"axes expand to {len(expanded)}")

    # --- points: index order, axis values, canonical keys --------------
    points = r["points"]
    if not isinstance(points, list) or len(points) != len(expanded):
        fail(path, f"expected {len(expanded)} points, got "
                   f"{len(points) if isinstance(points, list) else points!r}")
    digest = 0xCBF29CE484222325  # kSweepDigestSeed (service/sweep.hpp)
    for i, (p, want) in enumerate(zip(points, expanded)):
        where = f"points[{i}]"
        if p.get("index") != i:
            fail(path, f'{where}: index {p.get("index")!r}, expected {i} '
                       f"(canonical index order is the contract)")
        for axis in FRONTIER_AXES:
            if p.get(axis) != want[axis]:
                fail(path, f'{where}: {axis} is {p.get(axis)!r}, the '
                           f"expansion says {want[axis]!r}")
        key = p.get("key")
        if not isinstance(key, str) or not KEY16.match(key):
            fail(path, f"{where}: key must be 16 hex digits")
        if key != _model_key(want):
            fail(path, f"{where}: key {key} does not match the canonical "
                       f"key recomputation {_model_key(want)}")
        for m in POINT_METRICS:
            if not is_number(p.get(m)) or not math.isfinite(p[m]):
                fail(path, f"{where}: metric '{m}' must be a finite number")
        digest = fnv1a64(key.encode("ascii"), digest)
    if r["digest"] != f"{digest:016x}":
        fail(path, f'digest {r["digest"]!r} does not match the FNV-1a fold '
                   f"over point keys in index order ({digest:016x})")

    # --- frontier, eviction log and rejected count, replayed -----------
    members, evictions, rejected = _replay_frontier(points)
    want_frontier = sorted(
        ({"key": k, **dict(zip(OBJECTIVES, obj))} for k, obj in members),
        key=lambda e: e["key"])
    if r["frontier"] != want_frontier:
        fail(path, f'frontier has {len(r["frontier"])} member(s) and the '
                   f"replay produces {len(want_frontier)} — membership or "
                   f"objectives drifted from the point set")
    if r["evictions"] != evictions:
        fail(path, f'eviction log ({len(r["evictions"])} entries) does not '
                   f"match the index-order replay ({len(evictions)})")
    if r["rejected"] != rejected:
        fail(path, f'rejected is {r["rejected"]!r}, replay says {rejected}')

    # --- sensitivity, recomputed ---------------------------------------
    if r["sensitivity"] != _axis_sensitivity(points):
        fail(path, "sensitivity statistics do not match the recomputation "
                   "from the point set")

    # --- coverage vs the space -----------------------------------------
    cov = r["coverage"]
    if cov.get("points") != len(expanded):
        fail(path, f'coverage.points is {cov.get("points")!r}, space has '
                   f"{len(expanded)}")
    if cov.get("done") != len(points):
        fail(path, f'coverage.done is {cov.get("done")!r} but the report '
                   f"carries {len(points)} point(s)")
    want_axes = {}
    for want in expanded:
        for axis in FRONTIER_AXES:
            per = want_axes.setdefault(axis, {})
            per[str(want[axis])] = per.get(str(want[axis]), 0) + 1
    for axis in FRONTIER_AXES:
        got = cov["axes"].get(axis)
        if got is None:
            fail(path, f"coverage.axes missing axis '{axis}'")
        if {k: v["expected"] for k, v in got.items()} != want_axes[axis]:
            fail(path, f"coverage.axes[{axis!r}]: expected counts disagree "
                       f"with the space expansion")
        for value, c in got.items():
            if not (0 <= c["failed"] <= c["done"] <= c["expected"]):
                fail(path, f"coverage.axes[{axis!r}][{value!r}]: "
                           f"failed <= done <= expected violated")

    print(f"{path}: OK ({len(points)} point(s), "
          f'{len(r["frontier"])} on the frontier, '
          f"{len(evictions)} eviction(s), digest {r['digest']})")
    return r


def _frontier_projection(path):
    """The deterministic projection: all bytes before the trailing
    "timing" member (docs/dse.md, "Determinism contract")."""
    with open(path, "rb") as f:
        raw = f.read()
    marker = b',"timing":'
    idx = raw.rfind(marker)
    if idx < 0:
        fail(path, "no timing member — not a frontier report?")
    return raw[:idx]


def compare_frontier(path_a, path_b):
    a, b = _frontier_projection(path_a), _frontier_projection(path_b)
    if a != b:
        n = min(len(a), len(b))
        at = next((i for i in range(n) if a[i] != b[i]), n)
        ctx_a = a[max(0, at - 40):at + 40].decode("utf-8", "replace")
        ctx_b = b[max(0, at - 40):at + 40].decode("utf-8", "replace")
        print(f"DETERMINISM VIOLATION: projections diverge at byte {at}:\n"
              f"  {path_a}: ...{ctx_a}...\n"
              f"  {path_b}: ...{ctx_b}...", file=sys.stderr)
        sys.exit(1)
    print(f"{path_a} vs {path_b}: deterministic projections identical "
          f"({len(a)} byte(s); timing exempt)")


LOG_KINDS = {
    "conn_accept", "conn_close", "request_begin", "request_end",
    "reject", "cancel", "journal_compact", "journal_load",
    "slow_request", "slow_point",
}
LOG_OUTCOMES = {"ok", "cache_hit", "busy", "cancelled", "error"}
LOG_CLOSE_WHY = {"eof", "read_error", "idle_timeout", "shutdown",
                 "dead_peer"}


def check_log(path):
    """Validate one csfma-log-v1 structured server log (docs/FORMATS.md)."""
    try:
        with open(path, encoding="utf-8") as f:
            raw_lines = f.read().splitlines()
    except OSError as e:
        fail(path, f"cannot load: {e}")

    last_seq = 0
    last_ts = None
    open_reqs = {}   # (conn, req) -> begin line number
    ended = set()    # (conn, req) already closed by a request_end
    counts = {}
    for lineno, raw in enumerate(raw_lines, start=1):
        if not raw.strip():
            continue
        where = f"line {lineno}"
        try:
            entry = json.loads(raw)
        except json.JSONDecodeError as e:
            fail(path, f"{where}: malformed JSON: {e}")
        if not isinstance(entry, dict):
            fail(path, f"{where}: not a JSON object")
        kind = entry.get("kind")
        if kind not in LOG_KINDS:
            fail(path, f"{where}: unknown kind {kind!r}")
        counts[kind] = counts.get(kind, 0) + 1
        seq = entry.get("seq")
        if not isinstance(seq, int) or seq <= last_seq:
            fail(path, f"{where}: seq {seq!r} not strictly increasing "
                       f"(previous {last_seq})")
        last_seq = seq
        t = entry.get("t")
        if not isinstance(t, dict) or not is_number(t.get("ts_ms")):
            fail(path, f'{where}: missing timing object "t" with '
                       f"numeric ts_ms")
        if last_ts is not None and t["ts_ms"] < last_ts:
            fail(path, f'{where}: ts_ms {t["ts_ms"]} went backwards '
                       f"(previous {last_ts})")
        last_ts = t["ts_ms"]

        if kind in ("conn_accept", "conn_close", "request_begin",
                    "request_end", "reject", "cancel", "slow_request",
                    "slow_point"):
            if not isinstance(entry.get("conn"), str):
                fail(path, f"{where}: {kind} without a conn string")
        if kind == "conn_close" and entry.get("why") not in LOG_CLOSE_WHY:
            fail(path, f'{where}: conn_close why {entry.get("why")!r} '
                       f"not one of {sorted(LOG_CLOSE_WHY)}")
        if kind in ("request_begin", "request_end", "slow_request"):
            if not isinstance(entry.get("req"), str) or \
                    not isinstance(entry.get("type"), str):
                fail(path, f"{where}: {kind} needs req and type strings")
        if kind in ("request_begin", "request_end"):
            # Trace context is optional (omitted for legacy clients) but
            # must be a string when present.
            for key in ("trace_id", "parent_span"):
                if key in entry and not isinstance(entry[key], str):
                    fail(path, f"{where}: {kind} '{key}' must be a string")
        if kind == "journal_load":
            for key in ("records", "bytes_skipped"):
                if not isinstance(entry.get(key), int) or entry[key] < 0:
                    fail(path, f"{where}: journal_load '{key}' must be a "
                               f"non-negative integer")
            if entry.get("torn") not in (0, 1):
                fail(path, f"{where}: journal_load 'torn' must be 0 or 1")
        if kind == "slow_point":
            for key in ("req", "job"):
                if not isinstance(entry.get(key), str):
                    fail(path, f"{where}: slow_point needs a '{key}' string")
            if not isinstance(entry.get("index"), int) or \
                    entry["index"] < 0:
                fail(path, f"{where}: slow_point 'index' must be a "
                           f"non-negative integer")
            if not isinstance(entry.get("params"), dict):
                fail(path, f"{where}: slow_point needs a params object")
            if not is_number(t.get("latency_ms")) or t["latency_ms"] < 0:
                fail(path, f"{where}: slow_point needs non-negative "
                           f"t.latency_ms")
        if kind == "request_begin":
            key = (entry["conn"], entry["req"])
            if key in open_reqs or key in ended:
                fail(path, f'{where}: duplicate request_begin for '
                           f"{key[1]} on {key[0]}")
            open_reqs[key] = lineno
        if kind == "request_end":
            key = (entry["conn"], entry["req"])
            if key not in open_reqs:
                fail(path, f'{where}: request_end for {key[1]} on '
                           f"{key[0]} without a matching request_begin")
            del open_reqs[key]
            ended.add(key)
            if entry.get("outcome") not in LOG_OUTCOMES:
                fail(path, f'{where}: outcome {entry.get("outcome")!r} '
                           f"not one of {sorted(LOG_OUTCOMES)}")
            if not is_number(t.get("latency_ms")) or t["latency_ms"] < 0:
                fail(path, f"{where}: request_end needs non-negative "
                           f"t.latency_ms")

    if open_reqs:
        dangling = ", ".join(f"{req} on {conn} (line {ln})"
                             for (conn, req), ln in sorted(open_reqs.items()))
        fail(path, f"request_begin without request_end: {dangling}")
    print(f"{path}: OK ({sum(counts.values())} line(s): " +
          ", ".join(f"{k}={v}" for k, v in sorted(counts.items())) + ")")


FLEETMERGE_SCHEMA = "csfma-fleetmerge-v1"
TRACE_ID = re.compile(r"^explore-[0-9a-f]{16}$")


def check_fleettrace(path):
    """Validate a csfma-fleetmerge-v1 summary (what trace_merge.py
    --summary writes, docs/FORMATS.md): zero orphan spans, exactly one
    server request tree per sweep chunk, order-normalized arrays, totals
    consistent, and the trailing "daemons" member so the deterministic
    projection is a byte prefix."""
    try:
        with open(path, encoding="utf-8") as f:
            s = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"cannot load: {e}")
    if not isinstance(s, dict):
        fail(path, "top level must be a JSON object")
    if s.get("format") != FLEETMERGE_SCHEMA:
        fail(path, f'format is {s.get("format")!r}, '
                   f"expected {FLEETMERGE_SCHEMA!r}")
    for key in ("trace_id", "chunks", "orphans", "totals", "daemons"):
        if key not in s:
            fail(path, f"missing top-level member '{key}'")
    if list(s)[-1] != "daemons":
        fail(path, '"daemons" must be the last member — the deterministic '
                   "projection is everything before it")
    if not isinstance(s["trace_id"], str) or not TRACE_ID.match(s["trace_id"]):
        fail(path, f'trace_id {s["trace_id"]!r} must look like '
                   f"explore-<16 hex digits>")

    chunks = s["chunks"]
    if not isinstance(chunks, list) or not chunks:
        fail(path, '"chunks" must be a non-empty array')
    for i, c in enumerate(chunks):
        where = f"chunks[{i}]"
        if c.get("id") != f"chunk-{i}":
            fail(path, f'{where}: id {c.get("id")!r}, expected "chunk-{i}" '
                       f"(ordinal order is the contract)")
        if not isinstance(c.get("points"), int) or c["points"] < 1:
            fail(path, f"{where}: points must be a positive integer")
        if c.get("req_trees") != 1:
            fail(path, f'{where}: req_trees is {c.get("req_trees")!r} — '
                       f"each chunk must map to exactly one server "
                       f"request tree")

    orphans = s["orphans"]
    if not isinstance(orphans, list):
        fail(path, '"orphans" must be an array')
    if orphans:
        listed = "; ".join(
            f'daemon {o.get("daemon")} {o.get("req") or "?"} span '
            f'{o.get("name")!r} parent {o.get("parent")!r}'
            for o in orphans[:10])
        fail(path, f"{len(orphans)} orphan span(s) — server spans whose "
                   f"parent is not an explorer span: {listed}")

    totals = s["totals"]
    want = {"chunks": len(chunks),
            "points": sum(c["points"] for c in chunks),
            "req_trees": sum(c["req_trees"] for c in chunks)}
    if totals != want:
        fail(path, f"totals {totals!r} disagree with the chunk list "
                   f"({want!r})")

    daemons = s["daemons"]
    if not isinstance(daemons, list) or not daemons:
        fail(path, '"daemons" must be a non-empty array')
    for i, d in enumerate(daemons):
        where = f"daemons[{i}]"
        if d.get("index") != i:
            fail(path, f'{where}: index {d.get("index")!r}, expected {i}')
        for key in ("spans", "reqs"):
            if not isinstance(d.get(key), int) or d[key] < 0:
                fail(path, f"{where}: '{key}' must be a non-negative "
                           f"integer")
        if d["spans"] < d["reqs"]:
            fail(path, f'{where}: {d["spans"]} span(s) for {d["reqs"]} '
                       f"request(s) — every request tree has at least "
                       f"one span")
        if d["reqs"] < 1:
            fail(path, f"{where}: a connected daemon must have served at "
                       f"least the stats handshake")
    print(f'{path}: OK ({want["chunks"]} chunk(s), {want["points"]} '
          f"point(s), {len(daemons)} daemon(s), 0 orphans)")


def _fleetmerge_projection(path):
    """The deterministic projection: all bytes before the trailing
    "daemons" member (per-daemon span counts vary with the fleet
    layout; the chunk/orphan/totals prefix must not)."""
    with open(path, "rb") as f:
        raw = f.read()
    marker = b',"daemons":'
    idx = raw.rfind(marker)
    if idx < 0:
        fail(path, "no daemons member — not a fleet-merge summary?")
    return raw[:idx]


def compare_fleettrace(path_a, path_b):
    a, b = _fleetmerge_projection(path_a), _fleetmerge_projection(path_b)
    if a != b:
        n = min(len(a), len(b))
        at = next((i for i in range(n) if a[i] != b[i]), n)
        ctx_a = a[max(0, at - 40):at + 40].decode("utf-8", "replace")
        ctx_b = b[max(0, at - 40):at + 40].decode("utf-8", "replace")
        print(f"DETERMINISM VIOLATION: projections diverge at byte {at}:\n"
              f"  {path_a}: ...{ctx_a}...\n"
              f"  {path_b}: ...{ctx_b}...", file=sys.stderr)
        sys.exit(1)
    print(f"{path_a} vs {path_b}: deterministic projections identical "
          f"({len(a)} byte(s); per-daemon counts exempt)")


# Sections that carry Timing-class (wall-clock) data and are therefore
# exempt from the determinism comparison, like "timing" itself.
TIMING_SECTIONS = {"bench_host_perf"}


def compare_metrics(path_a, path_b, a, b):
    ok = True
    for section in ("metrics", "tables", "sections"):
        sa = {k: v for k, v in a[section].items()
              if section != "sections" or k not in TIMING_SECTIONS}
        sb = {k: v for k, v in b[section].items()
              if section != "sections" or k not in TIMING_SECTIONS}
        if sa != sb:
            ok = False
            keys = sorted(set(sa) | set(sb))
            for k in keys:
                va, vb = sa.get(k), sb.get(k)
                if va != vb:
                    print(f'DETERMINISM VIOLATION: {section}["{k}"]: '
                          f"{path_a} has {va!r}, {path_b} has {vb!r}",
                          file=sys.stderr)
    if not ok:
        sys.exit(1)
    print(f"{path_a} vs {path_b}: deterministic sections identical "
          f"(timing-class sections exempt)")


def main(argv):
    if len(argv) >= 1 and argv[0] == "--check-vcd":
        if len(argv) < 2:
            fail("usage", "--check-vcd needs at least one VCD path")
        for path in argv[1:]:
            check_vcd(path)
        return
    if len(argv) >= 1 and argv[0] == "--check-journal":
        if len(argv) < 2:
            fail("usage", "--check-journal needs at least one journal path")
        for path in argv[1:]:
            check_journal(path)
        return
    if len(argv) >= 1 and argv[0] == "--check-log":
        if len(argv) < 2:
            fail("usage", "--check-log needs at least one log path")
        for path in argv[1:]:
            check_log(path)
        return
    if len(argv) >= 1 and argv[0] == "--check-fleettrace":
        if len(argv) < 2:
            fail("usage", "--check-fleettrace needs at least one summary "
                          "path")
        for path in argv[1:]:
            check_fleettrace(path)
        return
    if len(argv) >= 1 and argv[0] == "--compare-fleettrace":
        if len(argv) != 3:
            fail("usage", "--compare-fleettrace needs exactly two summary "
                          "paths")
        check_fleettrace(argv[1])
        check_fleettrace(argv[2])
        compare_fleettrace(argv[1], argv[2])
        return
    if len(argv) >= 1 and argv[0] == "--check-sweep":
        if len(argv) < 2:
            fail("usage", "--check-sweep needs at least one transcript path")
        for path in argv[1:]:
            check_sweep(path)
        return
    if len(argv) >= 1 and argv[0] == "--check-frontier":
        if len(argv) < 2:
            fail("usage", "--check-frontier needs at least one report path")
        for path in argv[1:]:
            check_frontier(path)
        return
    if len(argv) >= 1 and argv[0] == "--compare-frontier":
        if len(argv) != 3:
            fail("usage", "--compare-frontier needs exactly two report "
                          "paths")
        check_frontier(argv[1])
        check_frontier(argv[2])
        compare_frontier(argv[1], argv[2])
        return
    if len(argv) >= 1 and argv[0] == "--compare-metrics":
        if len(argv) != 3:
            fail("usage", "--compare-metrics needs exactly two report paths")
        a = check_report(argv[1])
        b = check_report(argv[2])
        compare_metrics(argv[1], argv[2], a, b)
        return
    if not argv:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    for path in argv:
        check_report(path)


if __name__ == "__main__":
    main(sys.argv[1:])
