#!/usr/bin/env python3
"""Validate csfma-report-v1 JSON reports (stdlib only).

Usage:
  check_report.py report.json [more.json ...]
      Validate each report against the schema; exit non-zero on the
      first violation.

  check_report.py --compare-metrics a.json b.json
      Additionally assert the deterministic sections ("metrics" and
      "tables") of two reports are identical.  This is the CI gate for
      the engine determinism contract: the same seed run with different
      worker thread counts must export identical deterministic metrics.
      "meta" and "timing" are exempt (thread count and wall clock live
      there) — see docs/observability.md.
"""
import json
import math
import sys

SCHEMA = "csfma-report-v1"


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    sys.exit(1)


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check_scalar_or_histogram(path, section, name, v):
    where = f'{section}["{name}"]'
    if v is None:  # non-finite doubles render as null
        return
    if is_number(v):
        if isinstance(v, float) and not math.isfinite(v):
            fail(path, f"{where}: non-finite number survived serialization")
        return
    if not isinstance(v, dict):
        fail(path, f"{where}: expected number, null or histogram object")
    for key in ("bounds", "counts", "count", "sum"):
        if key not in v:
            fail(path, f"{where}: histogram missing key '{key}'")
    bounds, counts = v["bounds"], v["counts"]
    if not isinstance(bounds, list) or not all(is_number(b) for b in bounds):
        fail(path, f"{where}: histogram bounds must be a number array")
    if bounds != sorted(bounds):
        fail(path, f"{where}: histogram bounds must be ascending")
    if not isinstance(counts, list) or len(counts) != len(bounds) + 1:
        fail(path, f"{where}: expected len(bounds)+1 buckets "
                   f"(got {len(counts)} for {len(bounds)} bounds)")
    if not all(isinstance(c, int) and c >= 0 for c in counts):
        fail(path, f"{where}: bucket counts must be non-negative integers")
    if sum(counts) != v["count"]:
        fail(path, f"{where}: bucket counts sum to {sum(counts)}, "
                   f"count says {v['count']}")


def check_report(path):
    try:
        with open(path) as f:
            r = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"cannot load: {e}")
    if not isinstance(r, dict):
        fail(path, "top level must be an object")
    if r.get("schema") != SCHEMA:
        fail(path, f'schema is {r.get("schema")!r}, expected "{SCHEMA}"')
    if not isinstance(r.get("bench"), str) or not r["bench"]:
        fail(path, '"bench" must be a non-empty string')

    meta = r.get("meta")
    if not isinstance(meta, dict):
        fail(path, '"meta" must be an object')
    for k, v in meta.items():
        if not isinstance(v, str):
            fail(path, f'meta["{k}"] must be a string (got {type(v).__name__})')
    if "git" not in meta:
        fail(path, 'meta must record "git" provenance')

    for section in ("metrics", "timing"):
        vals = r.get(section)
        if not isinstance(vals, dict):
            fail(path, f'"{section}" must be an object')
        for name, v in vals.items():
            check_scalar_or_histogram(path, section, name, v)

    tables = r.get("tables")
    if not isinstance(tables, dict):
        fail(path, '"tables" must be an object')
    for name, t in tables.items():
        if not isinstance(t, dict) or "columns" not in t or "rows" not in t:
            fail(path, f'tables["{name}"] must have "columns" and "rows"')
        ncols = len(t["columns"])
        for i, row in enumerate(t["rows"]):
            if not isinstance(row, list) or len(row) != ncols:
                fail(path, f'tables["{name}"] row {i}: expected {ncols} cells')

    if not isinstance(r.get("sections"), dict):
        fail(path, '"sections" must be an object')

    nmetrics = len(r["metrics"])
    print(f"{path}: OK ({r['bench']}, {nmetrics} metrics, "
          f"{len(r['timing'])} timing entries, {len(tables)} tables)")
    return r


def compare_metrics(path_a, path_b, a, b):
    ok = True
    for section in ("metrics", "tables"):
        if a[section] != b[section]:
            ok = False
            keys = sorted(set(a[section]) | set(b[section]))
            for k in keys:
                va, vb = a[section].get(k), b[section].get(k)
                if va != vb:
                    print(f'DETERMINISM VIOLATION: {section}["{k}"]: '
                          f"{path_a} has {va!r}, {path_b} has {vb!r}",
                          file=sys.stderr)
    if not ok:
        sys.exit(1)
    print(f"{path_a} vs {path_b}: deterministic sections identical")


def main(argv):
    if len(argv) >= 1 and argv[0] == "--compare-metrics":
        if len(argv) != 3:
            fail("usage", "--compare-metrics needs exactly two report paths")
        a = check_report(argv[1])
        b = check_report(argv[2])
        compare_metrics(argv[1], argv[2], a, b)
        return
    if not argv:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    for path in argv:
        check_report(path)


if __name__ == "__main__":
    main(sys.argv[1:])
