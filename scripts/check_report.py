#!/usr/bin/env python3
"""Validate csfma-report-v1 JSON reports (stdlib only).

Usage:
  check_report.py report.json [more.json ...]
      Validate each report against the schema; exit non-zero on the
      first violation.

  check_report.py --compare-metrics a.json b.json
      Additionally assert the deterministic sections ("metrics",
      "tables" and "sections" — the latter carries event logs and
      activity snapshots) of two reports are identical.  This is the CI
      gate for the engine determinism contract: the same seed run with
      different worker thread counts must export identical deterministic
      metrics and byte-identical event logs.  "meta" and "timing" are
      exempt (thread count and wall clock live there) — see
      docs/observability.md.

  check_report.py --check-vcd waveform.vcd [more.vcd ...]
      Validate VCD well-formedness instead: header structure, balanced
      scopes, declared ids, monotone timestamps, and value tokens that
      fit their declared widths (the files SignalTap writes, see
      docs/observability.md).
"""
import json
import math
import re
import sys

SCHEMA = "csfma-report-v1"

EVENT_KINDS = {
    "misround_vs_ieee",
    "cancellation",
    "lza_mispredict",
    "zero_detect_late",
    "subnormal_flush",
}

HEX64 = re.compile(r"^0x[0-9a-f]{16}$")


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    sys.exit(1)


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check_scalar_or_histogram(path, section, name, v):
    where = f'{section}["{name}"]'
    if v is None:  # non-finite doubles render as null
        return
    if is_number(v):
        if isinstance(v, float) and not math.isfinite(v):
            fail(path, f"{where}: non-finite number survived serialization")
        return
    if not isinstance(v, dict):
        fail(path, f"{where}: expected number, null or histogram object")
    for key in ("bounds", "counts", "count", "sum"):
        if key not in v:
            fail(path, f"{where}: histogram missing key '{key}'")
    bounds, counts = v["bounds"], v["counts"]
    if not isinstance(bounds, list) or not all(is_number(b) for b in bounds):
        fail(path, f"{where}: histogram bounds must be a number array")
    if bounds != sorted(bounds):
        fail(path, f"{where}: histogram bounds must be ascending")
    if not isinstance(counts, list) or len(counts) != len(bounds) + 1:
        fail(path, f"{where}: expected len(bounds)+1 buckets "
                   f"(got {len(counts)} for {len(bounds)} bounds)")
    if not all(isinstance(c, int) and c >= 0 for c in counts):
        fail(path, f"{where}: bucket counts must be non-negative integers")
    if sum(counts) != v["count"]:
        fail(path, f"{where}: bucket counts sum to {sum(counts)}, "
                   f"count says {v['count']}")


def check_event_log(path, name, sec):
    """Validate a numerical event-log section (EventLog::to_json)."""
    where = f'sections["{name}"]'
    if not isinstance(sec, dict):
        fail(path, f"{where}: must be an object")
    for key in ("capacity", "raised", "dropped", "events"):
        if key not in sec:
            fail(path, f"{where}: missing key '{key}'")
    for key in ("capacity", "raised", "dropped"):
        if not isinstance(sec[key], int) or sec[key] < 0:
            fail(path, f"{where}: '{key}' must be a non-negative integer")
    events = sec["events"]
    if not isinstance(events, list):
        fail(path, f"{where}: 'events' must be an array")
    if len(events) > sec["capacity"]:
        fail(path, f"{where}: {len(events)} events exceed capacity "
                   f"{sec['capacity']}")
    if sec["dropped"] != sec["raised"] - len(events):
        fail(path, f"{where}: dropped={sec['dropped']} but raised - stored "
                   f"= {sec['raised'] - len(events)}")
    for i, e in enumerate(events):
        ew = f"{where} event {i}"
        if not isinstance(e, dict):
            fail(path, f"{ew}: must be an object")
        if e.get("kind") not in EVENT_KINDS:
            fail(path, f'{ew}: unknown kind {e.get("kind")!r}')
        if not isinstance(e.get("op"), int) or e["op"] < 0:
            fail(path, f"{ew}: 'op' must be a non-negative integer")
        for operand in ("a", "b", "c"):
            if not isinstance(e.get(operand), str) or \
                    not HEX64.match(e[operand]):
                fail(path, f"{ew}: '{operand}' must be a 0x-prefixed "
                           f"16-digit hex string")
        if not isinstance(e.get("detail"), int):
            fail(path, f"{ew}: 'detail' must be an integer")


def check_stage_activity(path, sec):
    """Validate the per-stage attribution section: for every architecture
    the stage toggles must sum exactly to the unit's total."""
    where = 'sections["stage_activity"]'
    if not isinstance(sec, dict):
        fail(path, f"{where}: must be an object")
    for arch, a in sec.items():
        aw = f'{where}["{arch}"]'
        if not isinstance(a, dict):
            fail(path, f"{aw}: must be an object")
        for key in ("total_toggles", "ops", "stages"):
            if key not in a:
                fail(path, f"{aw}: missing key '{key}'")
        if not isinstance(a["stages"], dict) or not a["stages"]:
            fail(path, f"{aw}: 'stages' must be a non-empty object")
        for stage, t in a["stages"].items():
            if not isinstance(t, int) or t < 0:
                fail(path, f'{aw}: stage "{stage}" toggles must be a '
                           f"non-negative integer")
        total = sum(a["stages"].values())
        if total != a["total_toggles"]:
            fail(path, f"{aw}: stage toggles sum to {total}, "
                       f"total_toggles says {a['total_toggles']}")


def check_bench_host_perf(path, sec):
    """Validate the host-performance section the bench harness attaches
    (BenchHarness::attach, bench/harness.cpp).  All values here are
    Timing-class — wall-clock measurements — so this section is exempt
    from --compare-metrics (see compare_metrics below)."""
    where = 'sections["bench_host_perf"]'
    if not isinstance(sec, dict):
        fail(path, f"{where}: must be an object")
    for key in ("host", "hw_counters", "reps", "warmup", "phases",
                "profiler"):
        if key not in sec:
            fail(path, f"{where}: missing key '{key}'")
    if not isinstance(sec["host"], str) or not sec["host"]:
        fail(path, f"{where}: 'host' must be a non-empty string")
    if not isinstance(sec["hw_counters"], bool):
        fail(path, f"{where}: 'hw_counters' must be a bool")
    for key in ("reps", "warmup"):
        if not isinstance(sec[key], int) or sec[key] < 0:
            fail(path, f"{where}: '{key}' must be a non-negative integer")
    phases = sec["phases"]
    if not isinstance(phases, dict) or not phases:
        fail(path, f"{where}: 'phases' must be a non-empty object")
    stat_keys = ("median_s", "mad_s", "mean_s", "min_s", "max_s")
    for name, p in phases.items():
        pw = f'{where} phase "{name}"'
        if not isinstance(p, dict):
            fail(path, f"{pw}: must be an object")
        for key in stat_keys + ("kept", "rejected", "ops_per_rep",
                                "ops_per_sec", "samples_s"):
            if key not in p:
                fail(path, f"{pw}: missing key '{key}'")
        for key in stat_keys:
            if not is_number(p[key]) or p[key] < 0:
                fail(path, f"{pw}: '{key}' must be a non-negative number")
        if p["min_s"] > p["median_s"] or p["median_s"] > p["max_s"]:
            fail(path, f"{pw}: min <= median <= max violated")
        for key in ("kept", "rejected", "ops_per_rep"):
            if not isinstance(p[key], int) or p[key] < 0:
                fail(path, f"{pw}: '{key}' must be a non-negative integer")
        if p["kept"] < 1:
            fail(path, f"{pw}: outlier rejection must keep >= 1 sample")
        samples = p["samples_s"]
        if not isinstance(samples, list) or \
                not all(is_number(x) for x in samples):
            fail(path, f"{pw}: 'samples_s' must be a number array")
        if len(samples) != p["kept"] + p["rejected"]:
            fail(path, f"{pw}: {len(samples)} samples but kept + rejected "
                       f"= {p['kept'] + p['rejected']}")
    prof = sec["profiler"]
    if not isinstance(prof, dict) or "scopes" not in prof or \
            "hw_counters" not in prof:
        fail(path, f"{where}: 'profiler' must have 'hw_counters' and "
                   f"'scopes'")
    for name, s in prof["scopes"].items():
        sw = f'{where} profiler scope "{name}"'
        for key in ("calls", "items", "wall_ns", "cpu_ns", "cycles",
                    "instructions", "cache_misses"):
            if not isinstance(s.get(key), int) or s[key] < 0:
                fail(path, f"{sw}: '{key}' must be a non-negative integer")
        if s["calls"] < 1:
            fail(path, f"{sw}: recorded scope must have calls >= 1")
        if not sec["hw_counters"] and \
                (s["cycles"] or s["instructions"] or s["cache_misses"]):
            fail(path, f"{sw}: hardware counts present but hw_counters "
                       f"is false")


def check_vcd(path):
    """Validate VCD well-formedness (the files SignalTap/VcdWriter write)."""
    try:
        with open(path) as f:
            text = f.read()
    except OSError as e:
        fail(path, f"cannot load: {e}")
    lines = text.splitlines()
    if not any(line.startswith("$timescale") for line in lines):
        fail(path, "missing $timescale")
    if "$enddefinitions $end" not in lines:
        fail(path, "missing $enddefinitions $end")
    header_end = lines.index("$enddefinitions $end")

    depth = 0
    widths = {}  # id code -> declared width
    var_re = re.compile(r"^\$var wire (\d+) (\S+) (\S+)( \[\d+:0\])? \$end$")
    for i, line in enumerate(lines[:header_end]):
        if line.startswith("$scope "):
            depth += 1
        elif line == "$upscope $end":
            depth -= 1
            if depth < 0:
                fail(path, f"line {i + 1}: $upscope without open $scope")
        elif line.startswith("$var "):
            m = var_re.match(line)
            if not m:
                fail(path, f"line {i + 1}: malformed $var: {line!r}")
            width, code = int(m.group(1)), m.group(2)
            if width < 1:
                fail(path, f"line {i + 1}: width must be >= 1")
            if code in widths:
                fail(path, f"line {i + 1}: duplicate id code {code!r}")
            widths[code] = width
    if depth != 0:
        fail(path, f"{depth} unclosed $scope block(s)")
    if not widths:
        fail(path, "no $var declarations")

    in_dump = False
    last_time = -1
    nchanges = 0
    for i, line in enumerate(lines[header_end + 1:], start=header_end + 2):
        if line == "$dumpvars":
            in_dump = True
            continue
        if line == "$end" and in_dump:
            in_dump = False
            continue
        if line.startswith("#"):
            t = int(line[1:])
            if t <= last_time:
                fail(path, f"line {i}: non-monotone timestamp #{t}")
            last_time = t
            continue
        if line.startswith("b"):  # vector: "b<bits> <id>"
            try:
                token, code = line.split(" ")
            except ValueError:
                fail(path, f"line {i}: malformed vector change: {line!r}")
            bits = token[1:]
            if not bits or any(ch not in "01x" for ch in bits):
                fail(path, f"line {i}: bad vector token {token!r}")
            if code not in widths:
                fail(path, f"line {i}: undeclared id {code!r}")
            if bits not in ("x",) and len(bits) > widths[code]:
                fail(path, f"line {i}: {len(bits)} bits on a "
                           f"{widths[code]}-bit wire")
        else:  # scalar: "<0|1|x><id>"
            if line[0] not in "01x":
                fail(path, f"line {i}: unrecognized line {line!r}")
            if line[1:] not in widths:
                fail(path, f"line {i}: undeclared id {line[1:]!r}")
        nchanges += 1
    if last_time < 0:
        fail(path, "no timestamps after the header")
    print(f"{path}: OK ({len(widths)} signals, {nchanges} value changes, "
          f"end time #{last_time})")


def check_report(path):
    try:
        with open(path) as f:
            r = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"cannot load: {e}")
    if not isinstance(r, dict):
        fail(path, "top level must be an object")
    if r.get("schema") != SCHEMA:
        fail(path, f'schema is {r.get("schema")!r}, expected "{SCHEMA}"')
    if not isinstance(r.get("bench"), str) or not r["bench"]:
        fail(path, '"bench" must be a non-empty string')

    meta = r.get("meta")
    if not isinstance(meta, dict):
        fail(path, '"meta" must be an object')
    for k, v in meta.items():
        if not isinstance(v, str):
            fail(path, f'meta["{k}"] must be a string (got {type(v).__name__})')
    if "git" not in meta:
        fail(path, 'meta must record "git" provenance')

    for section in ("metrics", "timing"):
        vals = r.get(section)
        if not isinstance(vals, dict):
            fail(path, f'"{section}" must be an object')
        for name, v in vals.items():
            check_scalar_or_histogram(path, section, name, v)

    tables = r.get("tables")
    if not isinstance(tables, dict):
        fail(path, '"tables" must be an object')
    for name, t in tables.items():
        if not isinstance(t, dict) or "columns" not in t or "rows" not in t:
            fail(path, f'tables["{name}"] must have "columns" and "rows"')
        ncols = len(t["columns"])
        for i, row in enumerate(t["rows"]):
            if not isinstance(row, list) or len(row) != ncols:
                fail(path, f'tables["{name}"] row {i}: expected {ncols} cells')

    sections = r.get("sections")
    if not isinstance(sections, dict):
        fail(path, '"sections" must be an object')
    for name, sec in sections.items():
        if name == "events" or name.startswith("events."):
            check_event_log(path, name, sec)
        elif name == "stage_activity":
            check_stage_activity(path, sec)
        elif name == "bench_host_perf":
            check_bench_host_perf(path, sec)

    nmetrics = len(r["metrics"])
    print(f"{path}: OK ({r['bench']}, {nmetrics} metrics, "
          f"{len(r['timing'])} timing entries, {len(tables)} tables)")
    return r


# Sections that carry Timing-class (wall-clock) data and are therefore
# exempt from the determinism comparison, like "timing" itself.
TIMING_SECTIONS = {"bench_host_perf"}


def compare_metrics(path_a, path_b, a, b):
    ok = True
    for section in ("metrics", "tables", "sections"):
        sa = {k: v for k, v in a[section].items()
              if section != "sections" or k not in TIMING_SECTIONS}
        sb = {k: v for k, v in b[section].items()
              if section != "sections" or k not in TIMING_SECTIONS}
        if sa != sb:
            ok = False
            keys = sorted(set(sa) | set(sb))
            for k in keys:
                va, vb = sa.get(k), sb.get(k)
                if va != vb:
                    print(f'DETERMINISM VIOLATION: {section}["{k}"]: '
                          f"{path_a} has {va!r}, {path_b} has {vb!r}",
                          file=sys.stderr)
    if not ok:
        sys.exit(1)
    print(f"{path_a} vs {path_b}: deterministic sections identical "
          f"(timing-class sections exempt)")


def main(argv):
    if len(argv) >= 1 and argv[0] == "--check-vcd":
        if len(argv) < 2:
            fail("usage", "--check-vcd needs at least one VCD path")
        for path in argv[1:]:
            check_vcd(path)
        return
    if len(argv) >= 1 and argv[0] == "--compare-metrics":
        if len(argv) != 3:
            fail("usage", "--compare-metrics needs exactly two report paths")
        a = check_report(argv[1])
        b = check_report(argv[2])
        compare_metrics(argv[1], argv[2], a, b)
        return
    if not argv:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    for path in argv:
        check_report(path)


if __name__ == "__main__":
    main(sys.argv[1:])
