#!/usr/bin/env python3
"""Live ASCII dashboard for running csfma_serve daemons.

Polls the `stats` request (docs/service.md#observability) over a Unix
socket or TCP and renders the metrics snapshot as a terminal dashboard:
uptime, request counters by type, queue depth, cache hit rate, and the
per-request-type/per-outcome latency distribution with p50/p90/p99.

  service_top.py --socket /tmp/csfma.sock            refresh every 2s
  service_top.py --tcp 127.0.0.1:7421 --interval 5
  service_top.py --socket PATH --once                one snapshot, no UI
                                                     (the CI smoke mode)

Repeat --socket/--tcp to watch a whole explorer fleet: with more than
one address the dashboard switches to a fleet panel, one row per daemon
(up, queue depth with sparkline, cache hit rate, sweep points, p99
latency — the same health signals csfma_explore polls into its frontier
report), so a degraded member stands out at a glance.  A daemon that
stops answering shows as "down" without taking the panel out.

  service_top.py --tcp 127.0.0.1:7421 --tcp 127.0.0.1:7422

Percentiles are recomputed client-side from the raw histogram buckets —
the same fixed-bucket interpolation MetricsRegistry uses — so the numbers
shown here cross-check the daemon's own `percentiles` rendering; a
mismatch beyond float formatting is a bug.  python3 stdlib only.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from csfma_client import CsfmaClient, ProtocolError  # noqa: E402


def percentile(bounds, counts, q):
    """Mirror of HistogramSnapshot::percentile (src/telemetry/metrics.cpp).

    Smallest bucket whose cumulative count reaches q*total, linearly
    interpolated inside the bucket; the overflow bucket saturates at the
    last finite bound; an empty histogram reports 0.
    """
    total = sum(counts)
    if total == 0:
        return 0.0
    if not q >= 0.0:  # NaN and negatives alike, mirroring the C++ clamp
        q = 0.0
    q = min(q, 1.0)
    rank = q * total
    cum = 0
    for i, in_bucket in enumerate(counts):
        if in_bucket == 0:
            continue
        if cum + in_bucket >= rank:
            if i >= len(bounds):
                return bounds[-1] if bounds else 0.0
            lo = 0.0 if i == 0 else bounds[i - 1]
            hi = bounds[i]
            frac = max((rank - cum) / in_bucket, 0.0)
            return lo + (hi - lo) * frac
        cum += in_bucket
    return bounds[-1] if bounds else 0.0


def _fmt_ms(v):
    return f"{v:8.2f}" if v < 1000 else f"{v:8.0f}"


SPARK_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(samples, width=24):
    """The last `width` samples as unicode block characters, scaled to the
    window's max (a flat zero line renders as spaces)."""
    window = list(samples)[-width:]
    if not window:
        return ""
    peak = max(window)
    if peak <= 0:
        return " " * len(window)
    out = []
    for v in window:
        idx = int(round(v / peak * (len(SPARK_BLOCKS) - 1)))
        out.append(SPARK_BLOCKS[max(0, min(idx, len(SPARK_BLOCKS) - 1))])
    return "".join(out)


def read_frontier_snapshot(path):
    """Best-effort parse of a csfma_explore snapshot file; None if absent
    or mid-write garbage (snapshots are atomic-renamed, so a parse error
    just means we raced the very first write)."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError):
        return None


def render(st, depth_history=None, points_per_s=None, frontier=None):
    """One dashboard frame (a list of lines) from a parsed stats reply."""
    m = st.get("metrics", {})
    counters = {k: v["value"] for k, v in m.get("counters", {}).items()}
    gauges = {k: v["value"] for k, v in m.get("gauges", {}).items()}
    hists = m.get("histograms", {})

    lines = []
    up = st.get("uptime_s", 0.0)
    depth_line = (f"csfma_serve  up {up:10.1f}s   "
                  f"queue depth {gauges.get('service.queue.depth', 0):.0f}")
    if depth_history:
        depth_line += f"  [{sparkline(depth_history)}]"
    lines.append(depth_line)

    reqs = {k.rsplit(".", 1)[1]: int(v) for k, v in counters.items()
            if k.startswith("service.requests.")}
    total = int(counters.get("service.requests", 0))
    lines.append("requests: total %d   %s" % (
        total, "  ".join(f"{k}={v}" for k, v in sorted(reqs.items()))))

    hits = counters.get("service.cache.hits", 0)
    misses = counters.get("service.cache.misses", 0)
    rate = 100.0 * hits / (hits + misses) if hits + misses else 0.0
    lines.append(f"cache: {hits:.0f} hit / {misses:.0f} miss "
                 f"({rate:.1f}% hit rate)   conns: "
                 f"accepted={counters.get('service.conn.accepted', 0):.0f} "
                 f"idle_closed={counters.get('service.conn.idle_closed', 0):.0f} "
                 f"dead_peer={counters.get('service.conn.dead_peer', 0):.0f}")

    # Sweep / exploration panel: live fan-out telemetry (the counters exist
    # once the daemon has served any request; a daemon that never swept
    # shows zeros, which is itself informative during an exploration run).
    sw_active = gauges.get("service.sweep.active")
    sw_points = counters.get("service.sweep.points")
    if sw_active is not None or sw_points is not None:
        rate = f"{points_per_s:.1f}/s" if points_per_s is not None else "-"
        sweep_line = (f"sweeps: active={sw_active or 0:.0f} "
                      f"points={sw_points or 0:.0f} "
                      f"cached={counters.get('service.sweep.points_cached', 0):.0f} "
                      f"rate={rate}")
        if frontier is not None:
            sweep_line += (f"   frontier: {len(frontier.get('frontier', []))} "
                           f"of {frontier.get('points_done', 0)} pts")
        lines.append(sweep_line)

    lines.append("")
    lines.append(f"{'latency (ms)':28s} {'count':>7s} {'p50':>8s} "
                 f"{'p90':>8s} {'p99':>8s}")
    rows = [(k, v) for k, v in sorted(hists.items())
            if k.startswith("service.latency_ms.") or
            k == "service.queue_wait_ms"]
    for name, h in rows:
        label = name.replace("service.latency_ms.", "").replace(
            "service.queue_wait_ms", "queue_wait")
        cnt = h.get("count", 0)
        b, c = h.get("bounds", []), h.get("counts", [])
        lines.append(f"{label:28s} {cnt:7d} {_fmt_ms(percentile(b, c, 0.5))} "
                     f"{_fmt_ms(percentile(b, c, 0.9))} "
                     f"{_fmt_ms(percentile(b, c, 0.99))}")
    if not rows:
        lines.append("  (no requests finished yet)")
    return lines


def _connect_addr(kind, addr):
    if kind == "socket":
        return CsfmaClient.connect(addr)
    host, _, port = addr.rpartition(":")
    return CsfmaClient.connect_tcp(host or "127.0.0.1", port)


def _daemon_health(st):
    """The fleet-panel signals out of one parsed stats reply — the same
    ones csfma_explore folds into its frontier report's health section."""
    m = st.get("metrics", {})
    counters = {k: v["value"] for k, v in m.get("counters", {}).items()}
    gauges = {k: v["value"] for k, v in m.get("gauges", {}).items()}
    hists = m.get("histograms", {})
    hits = counters.get("service.cache.hits", 0)
    misses = counters.get("service.cache.misses", 0)
    p99 = 0.0
    for name, h in hists.items():
        if name.startswith("service.latency_ms.") and h.get("count", 0):
            p99 = max(p99, percentile(h["bounds"], h["counts"], 0.99))
    return {
        "up_s": st.get("uptime_s", 0.0),
        "depth": gauges.get("service.queue.depth", 0.0),
        "hit_rate": 100.0 * hits / (hits + misses) if hits + misses else 0.0,
        "reqs": int(counters.get("service.requests", 0)),
        "points": int(counters.get("service.sweep.points", 0)),
        "p99_ms": p99,
    }


def render_fleet(addrs, states, depth_histories):
    """The multi-daemon panel: one row per fleet member, None = down."""
    lines = [f"csfma fleet: {len(addrs)} daemon(s)", ""]
    lines.append(f"{'daemon':24s} {'up':>8s} {'depth':>6s} {'hit%':>6s} "
                 f"{'reqs':>7s} {'points':>8s} {'p99 ms':>8s}  depth history")
    for i, (kind, addr) in enumerate(addrs):
        label = f"[{i}] {addr}"
        st = states[i]
        if st is None:
            lines.append(f"{label:24s} {'down':>8s}")
            continue
        h = _daemon_health(st)
        lines.append(f"{label:24s} {h['up_s']:7.1f}s {h['depth']:6.0f} "
                     f"{h['hit_rate']:6.1f} {h['reqs']:7d} {h['points']:8d} "
                     f"{_fmt_ms(h['p99_ms'])}  "
                     f"[{sparkline(depth_histories[i])}]")
    return lines


def run_fleet(args, addrs):
    """Poll every daemon each tick; a dead member degrades to a 'down' row
    (its connection is retried on the next tick) instead of ending the
    dashboard."""
    clients = [None] * len(addrs)
    depth_histories = [[] for _ in addrs]
    try:
        while True:
            states = []
            for i, (kind, addr) in enumerate(addrs):
                st = None
                try:
                    if clients[i] is None:
                        clients[i] = _connect_addr(kind, addr)
                    st = clients[i].stats()
                    if st.get("type") != "stats":
                        st = None
                except (OSError, ProtocolError):
                    if clients[i] is not None:
                        try:
                            clients[i].close()
                        except (OSError, ProtocolError):
                            pass
                    clients[i] = None
                    st = None
                states.append(st)
                if st is not None:
                    m = st.get("metrics", {}).get("gauges", {})
                    depth_histories[i].append(
                        m.get("service.queue.depth", {}).get("value", 0.0))
                    del depth_histories[i][:-24]
            frame = "\n".join(render_fleet(addrs, states, depth_histories))
            if args.once:
                print(frame)
                return 0 if all(s is not None for s in states) else 1
            sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    finally:
        for c in clients:
            if c is not None:
                try:
                    c.close()
                except (OSError, ProtocolError):
                    pass


def main(argv=None):
    p = argparse.ArgumentParser(description=__doc__,
                                formatter_class=argparse.RawDescriptionHelpFormatter)
    p.add_argument("--socket", action="append", default=[],
                   help="daemon Unix socket path (repeat for a fleet)")
    p.add_argument("--tcp", action="append", default=[],
                   help="daemon TCP address HOST:PORT (repeat for a fleet)")
    p.add_argument("--interval", type=float, default=2.0,
                   help="refresh period in seconds (default 2)")
    p.add_argument("--once", action="store_true",
                   help="print one snapshot and exit (CI smoke mode)")
    p.add_argument("--frontier-snapshot", metavar="PATH",
                   help="csfma_explore snapshot file to fold into the sweep "
                        "panel (frontier size / points covered)")
    args = p.parse_args(argv)
    addrs = [("socket", s) for s in args.socket] + \
            [("tcp", t) for t in args.tcp]
    if not addrs:
        p.error("at least one --socket or --tcp is required")
    if len(addrs) > 1:
        return run_fleet(args, addrs)

    depth_history = []
    prev_points = None
    prev_t = None
    try:
        with _connect_addr(*addrs[0]) as client:
            while True:
                st = client.stats()
                if st.get("type") != "stats":
                    print(f"service_top: unexpected reply: {json.dumps(st)}",
                          file=sys.stderr)
                    return 1
                m = st.get("metrics", {})
                gauges = m.get("gauges", {})
                depth_history.append(
                    gauges.get("service.queue.depth", {}).get("value", 0.0))
                del depth_history[:-64]
                now = time.monotonic()
                points = m.get("counters", {}).get(
                    "service.sweep.points", {}).get("value")
                rate = None
                if (points is not None and prev_points is not None
                        and now > prev_t):
                    rate = max(points - prev_points, 0) / (now - prev_t)
                prev_points, prev_t = points, now
                frontier = (read_frontier_snapshot(args.frontier_snapshot)
                            if args.frontier_snapshot else None)
                frame = "\n".join(
                    render(st, depth_history, rate, frontier))
                if args.once:
                    print(frame)
                    return 0
                # Clear + home, then the frame: a flicker-free poor man's top.
                sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
                sys.stdout.flush()
                time.sleep(args.interval)
    except ProtocolError as e:
        print(f"service_top: {e}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
