#!/usr/bin/env python3
"""Render the per-stage activity attribution of a csfma-report-v1 JSON
(the "stage_activity" section table2_energy --json emits) as an ASCII
heatmap and, optionally, a CSV matrix.  Stdlib only.

Usage:
  activity_heatmap.py report.json [--csv out.csv]

The heatmap shows toggles per operation for each (architecture, stage)
cell, shaded against the hottest cell; stages are the pipeline-stage
labels of the probe naming scheme (docs/observability.md).  The CSV is
an architectures x stages matrix of toggles/op with a trailing total
column, ready for plotting.
"""
import csv
import json
import sys

SHADES = " .:-=+*#%@"


def fail(msg):
    print(f"activity_heatmap: {msg}", file=sys.stderr)
    sys.exit(1)


def load_stage_activity(path):
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")
    sec = report.get("sections", {}).get("stage_activity")
    if not isinstance(sec, dict) or not sec:
        fail(f"{path} has no 'stage_activity' section "
             f"(generate it with: table2_energy --json {path})")
    return report.get("bench", "?"), sec


def toggles_per_op(arch):
    ops = arch.get("ops", 0) or 1
    return {stage: t / ops for stage, t in arch.get("stages", {}).items()}


def main(argv):
    csv_path = None
    if "--csv" in argv:
        i = argv.index("--csv")
        if i + 1 >= len(argv):
            fail("--csv needs a path")
        csv_path = argv[i + 1]
        del argv[i:i + 2]
    if len(argv) != 1:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    bench, sec = load_stage_activity(argv[0])

    stages = sorted({s for a in sec.values() for s in a.get("stages", {})})
    rows = {name: toggles_per_op(a) for name, a in sec.items()}
    hottest = max((v for r in rows.values() for v in r.values()), default=0.0)

    namew = max(len(n) for n in sec)
    cellw = max(10, max(len(s) for s in stages) + 2)
    print(f"per-stage switching activity (toggles/op) — {bench}")
    print(" " * namew + "".join(s.rjust(cellw) for s in stages) +
          "total".rjust(cellw))
    for name, r in rows.items():
        cells = []
        for s in stages:
            v = r.get(s)
            if v is None:
                cells.append("-".rjust(cellw))
                continue
            shade = SHADES[min(len(SHADES) - 1,
                               int(v / hottest * (len(SHADES) - 1) + 0.5))] \
                if hottest > 0 else SHADES[0]
            cells.append(f"{v:8.1f} {shade}".rjust(cellw))
        total = sum(r.values())
        print(name.ljust(namew) + "".join(cells) + f"{total:9.1f}".rjust(cellw))
    print(f"\nshade scale: '{SHADES}' from 0 to the hottest cell "
          f"({hottest:.1f} toggles/op)")

    if csv_path:
        with open(csv_path, "w", newline="") as f:
            w = csv.writer(f)
            w.writerow(["arch"] + stages + ["total"])
            for name, r in rows.items():
                w.writerow([name] + [f"{r.get(s, 0.0):.6f}" for s in stages] +
                           [f"{sum(r.values()):.6f}"])
        print(f"wrote {csv_path}")


if __name__ == "__main__":
    main(sys.argv[1:])
