#!/usr/bin/env python3
"""End-to-end resume test for csfma_explore (docs/dse.md, "Resume").

Exploration must be resumable purely through the daemons' journaled result
caches (csfma_serve --cache-file):

  1. a full run against a journal-backed daemon, then a rerun against a
     RESTARTED daemon, must re-simulate nothing (fresh == 0) and reproduce
     the identical report bytes (timing section excluded);
  2. a driver killed mid-run loses nothing the daemon already finished: a
     rerun serves those points from the restored cache and converges to
     the same deterministic projection and frontier digest.

stdlib-only; spawns real daemons on ephemeral TCP ports.  Used by ctest
(explore_resume_py) and runnable by hand:

  explore_resume_test.py --serve build/tools/csfma_serve \\
                         --explore build/tools/csfma_explore
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

SPACE = ["--unit", "pcs,fcs", "--block", "33:62:3", "--group", "11",
         "--rwidth", "0,11", "--select", "lza,zd", "--depth", "2:12:2"]


def fail(msg):
    print(f"explore_resume_test: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


class Daemon:
    """One csfma_serve on an ephemeral TCP port with a journaled cache."""

    def __init__(self, serve, workdir, name, journal):
        self.port_file = os.path.join(workdir, f"{name}.port")
        # The cache must hold the whole space: resume lives in the journal,
        # and a cache smaller than the space evicts restored entries before
        # the rerun can hit them (docs/dse.md, "Resume").
        self.proc = subprocess.Popen(
            [serve, "--tcp", "127.0.0.1:0", "--port-file", self.port_file,
             "--workers", "2", "--job-cache", "4096",
             "--cache-file", journal],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        for _ in range(200):
            if os.path.exists(self.port_file) and \
                    os.path.getsize(self.port_file) > 0:
                break
            time.sleep(0.05)
        else:
            fail(f"daemon {name} never published its port")
        with open(self.port_file) as f:
            self.port = int(f.read().strip())

    def stop(self):
        self.proc.terminate()
        try:
            self.proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait()


def run_explore(explore, daemons, out, extra=()):
    """Full run; returns the parsed explore_done line."""
    argv = [explore, "--out", out, *SPACE, *extra]
    for d in daemons:
        argv += ["--daemon", f"127.0.0.1:{d.port}"]
    res = subprocess.run(argv, capture_output=True, text=True, timeout=300)
    if res.returncode != 0:
        fail(f"csfma_explore exited {res.returncode}: {res.stderr.strip()}")
    done = [json.loads(l) for l in res.stdout.splitlines()
            if l.startswith('{"type":"explore_done"')]
    if len(done) != 1:
        fail("expected exactly one explore_done line")
    return done[0]


def projection(path):
    """Deterministic projection: the report bytes before the timing member."""
    with open(path, "rb") as f:
        raw = f.read()
    marker = b',"timing":'
    if marker not in raw:
        fail(f"{path}: no timing member")
    return raw[:raw.rindex(marker)]


def digest_of(path):
    with open(path) as f:
        return json.load(f)["digest"]


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--serve", required=True)
    ap.add_argument("--explore", required=True)
    args = ap.parse_args()

    with tempfile.TemporaryDirectory(prefix="csfma-explore-resume.") as tmp:
        journal = os.path.join(tmp, "cache.journal")
        ref = os.path.join(tmp, "ref.json")
        resumed = os.path.join(tmp, "resumed.json")

        # --- full run, then rerun against a restarted daemon -------------
        d = Daemon(args.serve, tmp, "d1", journal)
        done = run_explore(args.explore, [d], ref)
        d.stop()
        if done["cached"] != 0:
            fail(f"first run expected a cold cache, got {done['cached']} hits")
        total = done["points"]

        d = Daemon(args.serve, tmp, "d2", journal)
        done = run_explore(args.explore, [d], resumed)
        d.stop()
        if done["fresh"] != 0:
            fail(f"resumed run re-simulated {done['fresh']} cached points")
        if done["cached"] != total:
            fail(f"resumed run served {done['cached']}/{total} from cache")
        if projection(ref) != projection(resumed):
            fail("resumed report projection differs from the reference")
        if digest_of(ref) != digest_of(resumed):
            fail("resumed frontier digest differs")
        print(f"resume-after-restart: {total} points, 0 re-simulated, "
              f"digest {digest_of(ref)}")

        # --- driver killed mid-run, journal carries the progress ---------
        journal2 = os.path.join(tmp, "cache2.journal")
        killed_out = os.path.join(tmp, "killed.json")
        final = os.path.join(tmp, "final.json")
        d = Daemon(args.serve, tmp, "d3", journal2)
        argv = [args.explore, "--out", killed_out,
                "--daemon", f"127.0.0.1:{d.port}",
                "--progress-interval", "0.02", *SPACE]
        proc = subprocess.Popen(argv, stdout=subprocess.PIPE, text=True)
        try:
            for line in proc.stdout:
                ev = json.loads(line)
                if ev.get("type") == "explore_progress" and \
                        0 < ev["points_done"] < total:
                    break
            else:
                fail("driver finished before it could be killed mid-run")
            proc.send_signal(signal.SIGKILL)
        finally:
            proc.wait()
        if os.path.exists(killed_out):
            fail("killed driver must not have written a final report")
        time.sleep(1.0)  # let the daemon drain the in-flight sweep
        d.stop()  # journal now holds the completed points

        d = Daemon(args.serve, tmp, "d4", journal2)
        done = run_explore(args.explore, [d], final)
        d.stop()
        if done["cached"] == 0:
            fail("rerun after mid-run kill found nothing in the journal")
        if projection(ref) != projection(final):
            fail("post-kill rerun projection differs from the reference")
        if digest_of(ref) != digest_of(final):
            fail("post-kill rerun frontier digest differs")
        print(f"resume-after-kill: {done['cached']}/{total} from journal, "
              f"digest matches")

    print("explore_resume_test: OK")


if __name__ == "__main__":
    main()
