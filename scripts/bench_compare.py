#!/usr/bin/env python3
"""Compare bench host-performance baselines (stdlib only).

The bench harness (bench/harness.cpp) writes one BENCH_<name>.json per
bench run: a csfma-report-v1 document whose sections.bench_host_perf
carries robust per-phase host timings (median of N reps with MAD-based
outlier rejection).  This tool diffs a fresh run against a stored
baseline and gates on regression:

  bench_compare.py baseline.json current.json
      Per-phase comparison with noise-aware thresholds.  Exit codes are
      distinct per failure class so CI can react differently to each:
        0  every phase within noise / thresholds (warnings allowed)
        1  at least one phase regressed beyond the fail threshold
        2  usage error or malformed input file
        3  structural mismatch (different bench, phases added/removed)
        4  host fingerprints differ and --require-same-host was given

  bench_compare.py --trend <dir> [--bench <name>]
      Print a trend table over every BENCH_*.json found in <dir>
      (historical snapshots, e.g. CI artifacts collected over time).

Thresholds (override with --fail-pct / --warn-pct):
  * FAIL when the median slows down by more than 15%.  The robustness
    against run-to-run noise comes from the measurement itself (median
    of N reps after MAD outlier rejection), so the fail gate is a hard
    threshold — a 20% regression always trips it.
  * WARN above 5% or above the phase's own noise band (4 x the scaled
    MAD as a fraction of the median), whichever is larger — small
    deltas inside a phase's natural scatter stay quiet.  A phase whose
    noise band exceeds the fail threshold is flagged noisy: grow its
    per-rep work or reps rather than widening the gate.
  * New/removed phases are structural FAILs: the bench changed shape.

  --history DIR derives per-phase thresholds from accumulated trend
  history instead (the same BENCH_*.json snapshots --trend reads).  For
  each phase with at least 4 same-bench, same-host snapshots the
  run-to-run scatter of the medians (4 x scaled MAD, as % of the
  history median) sets the gate: fail at twice the scatter, warn at the
  scatter itself, both clamped into [5%, --fail-pct] — history can
  tighten the gate on a stable phase, never loosen it beyond the global
  threshold on a noisy one.  Phases with thin history (fewer than 4
  snapshots, or none after the host filter) keep the global thresholds.
  Derived gates are marked with '*' in the table.

Host fingerprints: timings from different machines are not comparable.
The fingerprint is "nodename/machine" (uname); when baseline and current
disagree, the note names the field(s) that differ and the comparison
downgrades to structure-only (phases must match; timings are reported but
never gated).  --force-cross-host gates timings anyway;
--require-same-host turns the mismatch itself into a failure (exit 4).
"""
import argparse
import glob
import json
import os
import sys

FAIL_PCT = 15.0
WARN_PCT = 5.0
NOISE_MADS = 4.0  # noise band = NOISE_MADS * scaled MAD / baseline median
MAD_SCALE = 1.4826  # scaled-MAD consistency constant for a normal dist.
MIN_HISTORY = 4     # snapshots below which --history falls back to global
DERIVED_FLOOR_PCT = 5.0  # derived gates never tighten below this

EXIT_OK = 0
EXIT_PERF = 1        # timing regression beyond the fail threshold
EXIT_USAGE = 2       # bad arguments / malformed input
EXIT_STRUCTURAL = 3  # bench or phase-set mismatch
EXIT_HOST = 4        # fingerprint mismatch under --require-same-host


def die(msg):
    print(f"bench_compare: {msg}", file=sys.stderr)
    sys.exit(EXIT_USAGE)


def fingerprint_fields(host):
    """Split a "nodename/machine" fingerprint into its named fields."""
    if isinstance(host, str) and "/" in host:
        nodename, machine = host.split("/", 1)
        return {"nodename": nodename, "machine": machine}
    return {"fingerprint": host}


def fingerprint_diff(base_host, cur_host):
    """Human-readable list of fingerprint fields that differ."""
    a, b = fingerprint_fields(base_host), fingerprint_fields(cur_host)
    diffs = []
    for field in sorted(set(a) | set(b)):
        if a.get(field) != b.get(field):
            diffs.append(f"{field} ('{a.get(field)}' vs '{b.get(field)}')")
    return diffs


def load_perf(path):
    """Load a BENCH_*.json and return (bench, bench_host_perf section,
    report meta).  Meta carries the engine backend and the worker-clamp
    record (harness.cpp write_baseline)."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"{path}: cannot load: {e}")
    if doc.get("schema") != "csfma-report-v1":
        die(f"{path}: not a csfma-report-v1 document")
    sec = doc.get("sections", {}).get("bench_host_perf")
    if not isinstance(sec, dict) or not isinstance(sec.get("phases"), dict):
        die(f"{path}: missing sections.bench_host_perf.phases")
    meta = doc.get("meta", {})
    if not isinstance(meta, dict):
        meta = {}
    return doc.get("bench", "?"), sec, meta


def noise_pct(phase):
    """Measurement-noise band for a phase, as % of its median."""
    med = phase.get("median_s", 0.0)
    mad = phase.get("mad_s", 0.0)
    if not med or med <= 0.0:
        return 0.0
    return 100.0 * NOISE_MADS * MAD_SCALE * mad / med


def _median(values):
    v = sorted(values)
    mid = len(v) // 2
    return v[mid] if len(v) % 2 else 0.5 * (v[mid - 1] + v[mid])


def derive_thresholds(directory, bench, host, fail_pct):
    """Per-phase (warn, fail) gates from accumulated trend history.

    Only snapshots of the same bench from the same host fingerprint
    count — cross-host history says nothing about this machine's
    scatter.  A phase needs MIN_HISTORY usable medians; the gate is the
    observed run-to-run scatter (NOISE_MADS x scaled MAD of the
    medians, as % of their median), warn at 1x and fail at 2x, both
    clamped into [DERIVED_FLOOR_PCT, fail_pct].
    """
    paths = sorted(glob.glob(os.path.join(directory, "**", "BENCH_*.json"),
                             recursive=True))
    medians = {}  # phase -> [median_s]
    for path in paths:
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError):
            continue  # foreign files may share the directory
        if doc.get("schema") != "csfma-report-v1" or \
                doc.get("bench") != bench:
            continue
        sec = doc.get("sections", {}).get("bench_host_perf")
        if not isinstance(sec, dict) or sec.get("host") != host or \
                not isinstance(sec.get("phases"), dict):
            continue
        for name, p in sec["phases"].items():
            med = p.get("median_s", 0.0)
            if med and med > 0.0:
                medians.setdefault(name, []).append(med)

    derived = {}
    for name, meds in medians.items():
        if len(meds) < MIN_HISTORY:
            continue
        hist_med = _median(meds)
        if hist_med <= 0.0:
            continue
        mad = _median([abs(m - hist_med) for m in meds])
        band = 100.0 * NOISE_MADS * MAD_SCALE * mad / hist_med
        fail = min(max(2.0 * band, DERIVED_FLOOR_PCT), fail_pct)
        warn = min(max(band, DERIVED_FLOOR_PCT / 2.0), fail)
        derived[name] = {"warn": warn, "fail": fail, "n": len(meds)}
    return derived


def compare(baseline_path, current_path, fail_pct, warn_pct,
            force_cross_host=False, require_same_host=False,
            history_dir=None):
    bench_a, base, meta_a = load_perf(baseline_path)
    bench_b, cur, meta_b = load_perf(current_path)
    if bench_a != bench_b:
        print(f"FAIL: bench mismatch: baseline is '{bench_a}', "
              f"current is '{bench_b}'", file=sys.stderr)
        return EXIT_STRUCTURAL
    # Comparing across engine backends is a different-datapath comparison,
    # not a regression measurement — flag it as structural.  Baselines
    # predating the backend knob carry no meta and compare as before.
    be_a, be_b = meta_a.get("backend"), meta_b.get("backend")
    if be_a is not None and be_b is not None and be_a != be_b:
        print(f"FAIL: backend mismatch: baseline ran '{be_a}', "
              f"current ran '{be_b}'", file=sys.stderr)
        return EXIT_STRUCTURAL

    cross_host = base.get("host") != cur.get("host")
    gate_timings = not cross_host or force_cross_host
    if cross_host:
        mode = "forced" if force_cross_host else "structure-only"
        diffs = fingerprint_diff(base.get("host"), cur.get("host"))
        print(f"NOTE: host fingerprint differs in "
              f"{', '.join(diffs)}; timing gate: {mode}")

    derived = {}
    if history_dir is not None:
        derived = derive_thresholds(history_dir, bench_a, base.get("host"),
                                    fail_pct)
        if derived:
            print(f"NOTE: thresholds derived from history for "
                  f"{len(derived)} phase(s) under {history_dir} "
                  f"(fallback: global {fail_pct:.0f}%)")
        else:
            print(f"NOTE: history under {history_dir} too thin "
                  f"(< {MIN_HISTORY} same-host snapshots per phase); "
                  f"using global thresholds")

    base_phases = base["phases"]
    cur_phases = cur["phases"]
    structural = []
    failures = []
    warnings = []

    missing = sorted(set(base_phases) - set(cur_phases))
    added = sorted(set(cur_phases) - set(base_phases))
    for name in missing:
        structural.append(f"phase '{name}' present in baseline but not in "
                          f"current run")
    for name in added:
        structural.append(f"phase '{name}' present in current run but not "
                          f"in baseline (regenerate the baseline)")

    print(f"bench: {bench_a}")
    print(f"{'phase':<24} {'baseline':>12} {'current':>12} {'delta':>8} "
          f"{'noise':>7} {'gate':>7}  verdict")
    for name in sorted(set(base_phases) & set(cur_phases)):
        b, c = base_phases[name], cur_phases[name]
        bm, cm = b.get("median_s", 0.0), c.get("median_s", 0.0)
        if not bm or bm <= 0.0:
            print(f"{name:<24} {'-':>12} {'-':>12} {'-':>8} {'-':>7} "
                  f"{'-':>7}  skip (zero baseline median)")
            continue
        d = derived.get(name)
        p_fail = d["fail"] if d else fail_pct
        p_warn = d["warn"] if d else warn_pct
        gate = f"{p_fail:.1f}%*" if d else f"{p_fail:.0f}%"
        delta_pct = 100.0 * (cm - bm) / bm
        band = max(noise_pct(b), noise_pct(c))
        verdict = "ok"
        if gate_timings and delta_pct > p_fail:
            verdict = "FAIL"
            src = f"derived from {d['n']} snapshot(s)" if d else "global"
            failures.append(f"phase '{name}': median regressed "
                            f"{delta_pct:+.1f}% "
                            f"(fail threshold {p_fail:.1f}% {src}, "
                            f"noise band {band:.1f}%)")
        elif gate_timings and delta_pct > max(p_warn, band):
            verdict = "warn"
            warnings.append(f"phase '{name}': median slower by "
                            f"{delta_pct:+.1f}% (within fail threshold)")
        elif delta_pct < -p_warn:
            verdict = "improved"
        if band > p_fail:
            warnings.append(f"phase '{name}': noise band {band:.1f}% "
                            f"exceeds the fail threshold — phase too "
                            f"short or reps too few to gate reliably")
        print(f"{name:<24} {bm:>11.6f}s {cm:>11.6f}s {delta_pct:>+7.1f}% "
              f"{band:>6.1f}% {gate:>7}  {verdict}")

    for w in warnings:
        print(f"WARN: {w}")
    for f_ in structural + failures:
        print(f"FAIL: {f_}", file=sys.stderr)
    if cross_host and require_same_host:
        diffs = fingerprint_diff(base.get("host"), cur.get("host"))
        print(f"FAIL: --require-same-host: fingerprint differs in "
              f"{', '.join(diffs)}", file=sys.stderr)
        return EXIT_HOST
    if structural:
        return EXIT_STRUCTURAL
    if failures:
        return EXIT_PERF
    print(f"{current_path}: no regression vs {baseline_path} "
          f"({len(warnings)} warning(s))")
    return EXIT_OK


def trend(directory, bench_filter):
    paths = sorted(glob.glob(os.path.join(directory, "**", "BENCH_*.json"),
                             recursive=True))
    if not paths:
        die(f"no BENCH_*.json under {directory}")
    # bench -> phase -> [(label, backend, median, mad)]
    series = {}
    for path in paths:
        bench, sec, meta = load_perf(path)
        if bench_filter and bench != bench_filter:
            continue
        label = os.path.relpath(path, directory)
        # Engine backend of the snapshot (harness meta); snapshots from
        # before the scalar|sliced knob print "-".  Clamped worker
        # requests are flagged so an oversubscribed row reads as such.
        backend = meta.get("backend", "-")
        if meta.get("workers_clamped") == "true":
            backend += " (clamped)"
        for name, p in sec["phases"].items():
            series.setdefault(bench, {}).setdefault(name, []).append(
                (label, backend, p.get("median_s", 0.0),
                 p.get("mad_s", 0.0)))
    if not series:
        die(f"no matching benches under {directory}")
    for bench in sorted(series):
        print(f"== {bench} ==")
        for phase in sorted(series[bench]):
            rows = series[bench][phase]
            print(f"  {phase}:")
            first = rows[0][2]
            for label, backend, med, mad in rows:
                rel = f"{100.0 * (med - first) / first:+6.1f}%" \
                    if first > 0 else "     -"
                print(f"    {label:<40} {backend:<10} {med:>11.6f}s "
                      f"(mad {mad:.6f}s) {rel}")
    return 0


def main(argv):
    ap = argparse.ArgumentParser(
        prog="bench_compare.py",
        description="Diff bench host-perf baselines; gate on regression.")
    ap.add_argument("baseline", nargs="?", help="baseline BENCH_*.json")
    ap.add_argument("current", nargs="?", help="current BENCH_*.json")
    ap.add_argument("--fail-pct", type=float, default=FAIL_PCT,
                    help=f"median regression %% that fails "
                         f"(default {FAIL_PCT:.0f})")
    ap.add_argument("--warn-pct", type=float, default=WARN_PCT,
                    help=f"median regression %% that warns "
                         f"(default {WARN_PCT:.0f})")
    ap.add_argument("--force-cross-host", action="store_true",
                    help="gate timings even if host fingerprints differ")
    ap.add_argument("--require-same-host", action="store_true",
                    help="fail (exit 4) when host fingerprints differ "
                         "instead of downgrading to structure-only")
    ap.add_argument("--history", metavar="DIR",
                    help="derive per-phase thresholds from BENCH_*.json "
                         "trend history in DIR (same bench and host; "
                         f"needs >= {MIN_HISTORY} snapshots per phase, "
                         "falls back to the global thresholds)")
    ap.add_argument("--trend", metavar="DIR",
                    help="print a trend table over BENCH_*.json in DIR")
    ap.add_argument("--bench", help="with --trend: restrict to one bench")
    args = ap.parse_args(argv)

    if args.trend:
        if args.baseline or args.current:
            die("--trend takes no positional arguments")
        if args.history:
            die("--history applies to comparisons, not --trend")
        return trend(args.trend, args.bench)
    if args.history and not os.path.isdir(args.history):
        die(f"--history: {args.history} is not a directory")
    if not args.baseline or not args.current:
        ap.print_usage(sys.stderr)
        return 2
    if args.warn_pct > args.fail_pct:
        die("--warn-pct must not exceed --fail-pct")
    if args.force_cross_host and args.require_same_host:
        die("--force-cross-host and --require-same-host are exclusive")
    return compare(args.baseline, args.current, args.fail_pct,
                   args.warn_pct, args.force_cross_host,
                   args.require_same_host, args.history)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
