// JsonValue / json_parse: the request side of the service protocol.
// Emission is telemetry/json.hpp's job; these tests pin down acceptance —
// what parses, what is rejected, and the canonical-order object storage the
// cache-key canonicalization relies on.
#include "service/json_value.hpp"

#include <gtest/gtest.h>

#include <string>

namespace csfma {
namespace {

JsonValue parse_ok(const std::string& text) {
  JsonValue v;
  JsonParseError err;
  EXPECT_TRUE(json_parse(text, &v, &err))
      << text << " -> byte " << err.pos << ": " << err.message;
  return v;
}

std::string parse_fail(const std::string& text) {
  JsonValue v;
  JsonParseError err;
  EXPECT_FALSE(json_parse(text, &v, &err)) << text;
  return err.message;
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse_ok("null").is_null());
  EXPECT_TRUE(parse_ok("true").as_bool());
  EXPECT_FALSE(parse_ok("false").as_bool());
  EXPECT_EQ(parse_ok("42").as_int(), 42);
  EXPECT_EQ(parse_ok("-7").as_int(), -7);
  EXPECT_EQ(parse_ok("0").as_int(), 0);
  EXPECT_EQ(parse_ok("\"hi\"").as_string(), "hi");
  EXPECT_DOUBLE_EQ(parse_ok("2.5").as_number(), 2.5);
  EXPECT_DOUBLE_EQ(parse_ok("1e3").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(parse_ok("-0.125").as_number(), -0.125);
}

TEST(JsonParse, IntegralVersusDouble) {
  // Written-integral stays Int (exact 64-bit); '.' or exponent => Double.
  EXPECT_TRUE(parse_ok("9007199254740993").is_int());  // > 2^53, exact
  EXPECT_EQ(parse_ok("9007199254740993").as_int(), 9007199254740993LL);
  EXPECT_FALSE(parse_ok("1.0").is_int());
  EXPECT_TRUE(parse_ok("1.0").is_number());
  EXPECT_FALSE(parse_ok("1e2").is_int());
  // Out-of-int64-range integrals degrade to double rather than failing.
  EXPECT_FALSE(parse_ok("99999999999999999999").is_int());
  EXPECT_TRUE(parse_ok("99999999999999999999").is_number());
}

TEST(JsonParse, Strings) {
  EXPECT_EQ(parse_ok(R"("a\"b")").as_string(), "a\"b");
  EXPECT_EQ(parse_ok(R"("a\\b")").as_string(), "a\\b");
  EXPECT_EQ(parse_ok(R"("a\nb\tc")").as_string(), "a\nb\tc");
  // \uXXXX escapes re-encode as UTF-8 (1-, 2- and 3-byte forms).
  EXPECT_EQ(parse_ok("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(parse_ok("\"\\u00e9\"").as_string(), "\xc3\xa9");
  EXPECT_EQ(parse_ok("\"\\u20ac\"").as_string(), "\xe2\x82\xac");
  // Raw UTF-8 passes through untouched.
  EXPECT_EQ(parse_ok("\"\xc3\xa9\"").as_string(), "\xc3\xa9");
}

TEST(JsonParse, ArraysAndObjects) {
  JsonValue v = parse_ok(R"([1, "two", [3], {"four": 4}, null])");
  ASSERT_EQ(v.as_array().size(), 5u);
  EXPECT_EQ(v.as_array()[0].as_int(), 1);
  EXPECT_EQ(v.as_array()[1].as_string(), "two");
  EXPECT_EQ(v.as_array()[2].as_array()[0].as_int(), 3);
  EXPECT_EQ(v.as_array()[3].find("four")->as_int(), 4);
  EXPECT_TRUE(v.as_array()[4].is_null());
  EXPECT_EQ(parse_ok("[]").as_array().size(), 0u);
  EXPECT_EQ(parse_ok("{}").as_object().size(), 0u);
}

TEST(JsonParse, ObjectMemberOrderIsCanonical) {
  // The sorted-map storage: member order in the input is irrelevant.
  JsonValue a = parse_ok(R"({"b": 2, "a": 1})");
  JsonValue b = parse_ok(R"({"a": 1, "b": 2})");
  auto keys = [](const JsonValue& v) {
    std::string out;
    for (const auto& [k, _] : v.as_object()) out += k;
    return out;
  };
  EXPECT_EQ(keys(a), "ab");
  EXPECT_EQ(keys(a), keys(b));
}

TEST(JsonParse, FindOnMissingOrNonObject) {
  JsonValue v = parse_ok(R"({"x": 1})");
  EXPECT_NE(v.find("x"), nullptr);
  EXPECT_EQ(v.find("y"), nullptr);
  EXPECT_EQ(parse_ok("[1]").find("x"), nullptr);
}

TEST(JsonParse, Rejections) {
  parse_fail("");
  parse_fail("   ");
  parse_fail("{");
  parse_fail("}");
  parse_fail("[1,]");
  parse_fail("{\"a\":}");
  parse_fail("{\"a\" 1}");
  parse_fail("{'a': 1}");       // single quotes
  parse_fail("nul");            // truncated literal
  parse_fail("TRUE");           // wrong case
  parse_fail("01");             // leading zero
  parse_fail("+1");             // leading plus
  parse_fail("1.");             // bare trailing dot
  parse_fail(".5");             // bare leading dot
  parse_fail("\"unterminated");
  parse_fail("\"bad \\x escape\"");
  parse_fail("{} trailing");    // trailing garbage
  parse_fail("1 2");
  parse_fail(R"({"dup": 1, "dup": 2})");  // duplicate keys are an error
  parse_fail(R"("\ud800")");    // lone surrogate
}

TEST(JsonParse, DepthCapStopsHostileNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  parse_fail(deep);
  // ...but reasonable nesting is fine.
  std::string ok = "[[[[[[[[[[1]]]]]]]]]]";
  EXPECT_TRUE(parse_ok(ok).is_array());
}

TEST(JsonParse, ErrorsCarryBytePositions) {
  JsonValue v;
  JsonParseError err;
  ASSERT_FALSE(json_parse("{\"a\": bad}", &v, &err));
  EXPECT_EQ(err.pos, 6u);
  ASSERT_FALSE(json_parse("[1, 2, x]", &v, &err));
  EXPECT_EQ(err.pos, 7u);
}

}  // namespace
}  // namespace csfma
