// ResultCache: LRU memoization of rendered reports, with hit/miss/eviction
// counters in the metrics registry.
#include "service/cache.hpp"

#include <gtest/gtest.h>

#include <string>

namespace csfma {
namespace {

TEST(ResultCache, MissThenHitReturnsOriginalBytes) {
  ResultCache cache(4);
  EXPECT_FALSE(cache.get("k1").has_value());
  cache.put("k1", "payload-one");
  auto hit = cache.get("k1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "payload-one");
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCache, PutRefreshesExistingKey) {
  ResultCache cache(4);
  cache.put("k", "old");
  cache.put("k", "new");
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(*cache.get("k"), "new");
}

TEST(ResultCache, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  cache.put("a", "A");
  cache.put("b", "B");
  ASSERT_TRUE(cache.get("a").has_value());  // promote "a"
  cache.put("c", "C");                      // evicts "b", the LRU entry
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.get("a").has_value());
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_TRUE(cache.get("c").has_value());
}

TEST(ResultCache, ZeroCapacityDisablesMemoization) {
  ResultCache cache(0);
  cache.put("k", "payload");
  EXPECT_FALSE(cache.get("k").has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCache, CountsLandInMetrics) {
  MetricsRegistry metrics;
  ResultCache cache(1, &metrics);
  cache.get("k");           // miss
  cache.put("k", "v");      // insertion
  cache.get("k");           // hit
  cache.put("k2", "v2");    // insertion + eviction of "k"
  cache.get("k");           // miss (evicted)
  EXPECT_EQ(metrics.counter("service.cache.hits", Stability::Timing).value(), 1u);
  EXPECT_EQ(metrics.counter("service.cache.misses", Stability::Timing).value(), 2u);
  EXPECT_EQ(metrics.counter("service.cache.insertions", Stability::Timing).value(), 2u);
  EXPECT_EQ(metrics.counter("service.cache.evictions", Stability::Timing).value(), 1u);
}

}  // namespace
}  // namespace csfma
