// Server-side sweeps: deterministic expansion order, renderer goldens,
// the payload digest, and the session-level execution contract (streamed
// points, cache dedup, repeat-sweep byte identity, cancellation at point
// boundaries).
#include "service/sweep.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <vector>

#include "service/json_value.hpp"
#include "service/session.hpp"

namespace csfma {
namespace {

SweepRequest sweep_of(const std::string& line) {
  ParseOutcome out = parse_request_line(line);
  EXPECT_TRUE(out.ok) << line << " -> " << out.message;
  return std::get<SweepRequest>(out.request.op);
}

TEST(Sweep, ExpansionOrderIsTheDocumentedNesting) {
  // unit outermost, then rounding, seed, ops — the index contract.
  SweepRequest req = sweep_of(
      R"({"type":"sweep","unit":["pcs","fcs"],"seed":[1,2],)"
      R"("ops":[100,200]})");
  const std::vector<SweepPoint> points = expand_sweep(req);
  ASSERT_EQ(points.size(), 8u);
  const char* want[][3] = {
      {"pcs", "1", "100"}, {"pcs", "1", "200"}, {"pcs", "2", "100"},
      {"pcs", "2", "200"}, {"fcs", "1", "100"}, {"fcs", "1", "200"},
      {"fcs", "2", "100"}, {"fcs", "2", "200"},
  };
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].index, i);
    EXPECT_STREQ(to_string(points[i].req.unit), want[i][0]) << i;
    EXPECT_EQ(std::to_string(points[i].req.seed), want[i][1]) << i;
    EXPECT_EQ(std::to_string(points[i].req.ops), want[i][2]) << i;
  }
}

TEST(Sweep, ChainedExpansionVariesChainsThenDepth) {
  SweepRequest req = sweep_of(
      R"({"type":"sweep","mode":"chained","unit":"classic","seed":1,)"
      R"("chains":[4,8],"depth":[6,10]})");
  const std::vector<SweepPoint> points = expand_sweep(req);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].req.chains, 4u);
  EXPECT_EQ(points[0].req.depth, 6);
  EXPECT_EQ(points[1].req.chains, 4u);
  EXPECT_EQ(points[1].req.depth, 10);
  EXPECT_EQ(points[3].req.chains, 8u);
  EXPECT_EQ(points[3].req.depth, 10);
}

TEST(Sweep, ModelExpansionCrossesTheDesignKnobAxes) {
  // Model nesting: unit > rm > seed > block > group > rwidth > select >
  // depth > ops — the explorer's global point indices depend on it.
  SweepRequest req = sweep_of(
      R"({"type":"sweep","mode":"model","unit":"fcs","seed":1,)"
      R"("block":[29,33],"group":11,"rwidth":[0,11],)"
      R"("select":["lza","zd"],"depth":8})");
  const std::vector<SweepPoint> points = expand_sweep(req);
  ASSERT_EQ(points.size(), 8u);
  // block varies slowest of the three; select fastest.
  const int want_block[] = {29, 29, 29, 29, 33, 33, 33, 33};
  const int want_rwidth[] = {0, 0, 11, 11, 0, 0, 11, 11};
  const dse::BlockSelect want_select[] = {
      dse::BlockSelect::Lza, dse::BlockSelect::Zd,
      dse::BlockSelect::Lza, dse::BlockSelect::Zd,
      dse::BlockSelect::Lza, dse::BlockSelect::Zd,
      dse::BlockSelect::Lza, dse::BlockSelect::Zd,
  };
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].index, i);
    EXPECT_EQ(points[i].req.mode, SimMode::Model);
    EXPECT_EQ(points[i].req.block, want_block[i]) << i;
    EXPECT_EQ(points[i].req.rwidth, want_rwidth[i]) << i;
    EXPECT_EQ(points[i].req.select, want_select[i]) << i;
    EXPECT_EQ(points[i].req.depth, 8);
  }
}

TEST(Sweep, ExpandedPointsShareTheBaseGeometry) {
  SweepRequest req = sweep_of(
      R"({"type":"sweep","unit":"pcs","seed":1,"ops":100,)"
      R"("shard_ops":256,"threads":2,"emin":-3,"emax":3})");
  const std::vector<SweepPoint> points = expand_sweep(req);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].req.shard_ops, 256u);
  EXPECT_EQ(points[0].req.threads, 2);
  EXPECT_EQ(points[0].req.emin, -3);
  EXPECT_EQ(points[0].req.emax, 3);
}

TEST(Sweep, DigestIsChainedFnvOverPayloads) {
  std::uint64_t d = kSweepDigestSeed;
  d = fold_sweep_digest(d, "payload-a");
  d = fold_sweep_digest(d, "payload-b");
  EXPECT_EQ(d, fnv1a64("payload-apayload-b"));
  EXPECT_NE(d, fold_sweep_digest(fold_sweep_digest(kSweepDigestSeed,
                                                   "payload-b"),
                                 "payload-a"))
      << "digest must be order-sensitive";
}

TEST(Sweep, ReplyGoldens) {
  EXPECT_EQ(sweep_accepted_reply("s1", "job-2", 6),
            R"({"type":"accepted","proto":1,"id":"s1","job":"job-2",)"
            R"("points":6})");
  SubmitRequest p;
  p.unit = UnitKind::Fcs;
  p.seed = 9;
  p.ops = 100;
  EXPECT_EQ(
      sweep_point_line("job-2", 3, 6, true, "00ff00ff00ff00ff", p,
                       R"({"schema":"csfma-report-v1"})"),
      R"({"type":"sweep_point","proto":1,"job":"job-2","index":3,)"
      R"("points":6,"cache":"hit","cache_key":"00ff00ff00ff00ff",)"
      R"("params":{"mode":"batch","unit":"fcs","rounding":"nearest-even",)"
      R"("seed":9,"ops":100,"emin":-8,"emax":8,"shard_ops":8192},)"
      R"("report":{"schema":"csfma-report-v1"}})");
  EXPECT_EQ(sweep_done_reply("s1", "job-2", 6, 4, 2, 0.5, 0xdeadbeefULL),
            R"({"type":"sweep_done","proto":1,"id":"s1","job":"job-2",)"
            R"("points":6,"cache_hits":4,"cache_misses":2,"elapsed_s":0.5,)"
            R"("digest":"00000000deadbeef"})");
}

// ---- session-level execution ------------------------------------------

class LineSink {
 public:
  ServiceSession::WriteFn fn() {
    return [this](const std::string& line) {
      std::lock_guard<std::mutex> lock(mu_);
      lines_.push_back(line);
    };
  }

  std::vector<std::string> lines() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lines_;
  }

  std::vector<JsonValue> of_type(const std::string& type) const {
    std::vector<JsonValue> out;
    for (const std::string& line : lines()) {
      JsonValue v;
      JsonParseError err;
      EXPECT_TRUE(json_parse(line, &v, &err)) << line;
      if (const JsonValue* t = v.find("type");
          t != nullptr && t->as_string() == type)
        out.push_back(std::move(v));
    }
    return out;
  }

  /// Raw sweep_point lines in emission order, for byte comparisons.
  std::vector<std::string> raw_points() const {
    std::vector<std::string> out;
    for (const std::string& line : lines())
      if (line.find("\"type\":\"sweep_point\"") != std::string::npos)
        out.push_back(line);
    return out;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::string> lines_;
};

const char* kSmallSweep =
    R"({"type":"sweep","id":"s1","unit":["pcs","fcs"],"seed":[5,6],)"
    R"("ops":400,"shard_ops":128})";

TEST(SweepSession, StreamsEveryPointThenSummarizes) {
  LineSink sink;
  ServiceConfig cfg;
  ServiceSession session(cfg, sink.fn());
  session.handle_line(kSmallSweep);
  session.wait_idle();

  auto accepted = sink.of_type("accepted");
  ASSERT_EQ(accepted.size(), 1u);
  EXPECT_EQ(accepted[0].find("points")->as_int(), 4);

  auto points = sink.of_type("sweep_point");
  ASSERT_EQ(points.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(points[i].find("index")->as_int(), i);
    EXPECT_EQ(points[i].find("job")->as_string(), "job-1");
    EXPECT_EQ(points[i].find("cache")->as_string(), "miss");
    const JsonValue* report = points[i].find("report");
    ASSERT_NE(report, nullptr) << "point " << i;
    EXPECT_EQ(report->find("schema")->as_string(), "csfma-report-v1");
  }
  // Expansion order: unit outermost.
  EXPECT_EQ(points[0].find("params")->find("unit")->as_string(), "pcs");
  EXPECT_EQ(points[3].find("params")->find("unit")->as_string(), "fcs");

  auto done = sink.of_type("sweep_done");
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].find("id")->as_string(), "s1");
  EXPECT_EQ(done[0].find("points")->as_int(), 4);
  EXPECT_EQ(done[0].find("cache_hits")->as_int(), 0);
  EXPECT_EQ(done[0].find("cache_misses")->as_int(), 4);
  EXPECT_EQ(done[0].find("digest")->as_string().size(), 16u);
  EXPECT_EQ(session.jobs_completed(), 1u);
}

TEST(SweepSession, RepeatSweepReplaysByteIdenticallyFromCache) {
  LineSink sink;
  ServiceConfig cfg;
  ServiceSession session(cfg, sink.fn());
  session.handle_line(kSmallSweep);
  session.wait_idle();
  std::string again = kSmallSweep;
  again.replace(again.find("s1"), 2, "s2");
  session.handle_line(again);
  session.wait_idle();

  auto done = sink.of_type("sweep_done");
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[1].find("cache_hits")->as_int(), 4);
  EXPECT_EQ(done[1].find("cache_misses")->as_int(), 0);
  EXPECT_EQ(done[0].find("digest")->as_string(),
            done[1].find("digest")->as_string());

  // Byte identity point by point: strip only the job id (job-1 vs job-2),
  // everything else — including the spliced report — must match exactly.
  const auto raw = sink.raw_points();
  ASSERT_EQ(raw.size(), 8u);
  auto normalized = [](std::string s) {
    const std::size_t at = s.find("\"job\":\"job-");
    s.erase(at, s.find('"', at + 8 + 1) - at);
    const std::size_t cache = s.find("\"cache\":\"");
    s.erase(cache, s.find('"', cache + 9) - cache);
    return s;
  };
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(normalized(raw[i]), normalized(raw[i + 4])) << "point " << i;
}

TEST(SweepSession, SweepDeduplicatesAgainstPlainSubmits) {
  LineSink sink;
  ServiceConfig cfg;
  ServiceSession session(cfg, sink.fn());
  // The first sweep point is exactly this submit, so the sweep starts
  // with one hit; the remaining three points are fresh.
  session.handle_line(
      R"({"type":"submit","id":"pre","unit":"pcs","seed":5,"ops":400,)"
      R"("shard_ops":128})");
  session.wait_idle();
  session.handle_line(kSmallSweep);
  session.wait_idle();
  auto done = sink.of_type("sweep_done");
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].find("cache_hits")->as_int(), 1);
  EXPECT_EQ(done[0].find("cache_misses")->as_int(), 3);
}

TEST(SweepSession, StatusReportsPointProgress) {
  LineSink sink;
  ServiceConfig cfg;
  ServiceSession session(cfg, sink.fn());
  session.handle_line(kSmallSweep);
  session.wait_idle();
  session.handle_line(R"({"type":"status","id":"st","job":"job-1"})");
  auto status = sink.of_type("status");
  ASSERT_EQ(status.size(), 1u);
  const auto& jobs = status[0].find("jobs")->as_array();
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].find("state")->as_string(), "done");
  EXPECT_EQ(jobs[0].find("points_done")->as_int(), 4);
  EXPECT_EQ(jobs[0].find("points_total")->as_int(), 4);
}

TEST(SweepSession, CancelStopsAtAPointBoundary) {
  LineSink sink;
  ServiceConfig cfg;
  cfg.workers = 1;
  ServiceSession session(cfg, sink.fn());
  // Points big enough that the cancel lands while the sweep is running.
  session.handle_line(
      R"({"type":"sweep","id":"big","unit":["pcs","fcs"],"seed":1,)"
      R"("ops":400000000,"shard_ops":4096})");
  session.handle_line(R"({"type":"cancel","id":"c","job":"job-1"})");
  session.wait_idle();

  EXPECT_EQ(sink.of_type("cancel_ok").size(), 1u);
  auto cancelled = sink.of_type("cancelled");
  ASSERT_EQ(cancelled.size(), 1u);
  EXPECT_EQ(cancelled[0].find("job")->as_string(), "job-1");
  // No summary for a cancelled sweep, and never all the points.
  EXPECT_EQ(sink.of_type("sweep_done").size(), 0u);
  EXPECT_LT(sink.of_type("sweep_point").size(), 2u);
  EXPECT_EQ(session.jobs_cancelled(), 1u);
}

}  // namespace
}  // namespace csfma
