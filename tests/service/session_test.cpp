// ServiceSession: the scheduler end of the tentpole contract — submit /
// progress / result round trips, byte-identical cache replay, cooperative
// cancellation that never leaks partial results, and worker-count
// determinism of the rendered payload.
#include "service/session.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/json_value.hpp"
#include "service/log.hpp"

namespace csfma {
namespace {

/// Thread-safe collector for the session's serialized reply stream.
class LineSink {
 public:
  ServiceSession::WriteFn fn() {
    return [this](const std::string& line) {
      std::lock_guard<std::mutex> lock(mu_);
      lines_.push_back(line);
    };
  }

  std::vector<std::string> lines() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lines_;
  }

  /// Parse every line (all must be valid JSON objects) and return those
  /// whose "type" matches.
  std::vector<JsonValue> of_type(const std::string& type) const {
    std::vector<JsonValue> out;
    for (const std::string& line : lines()) {
      JsonValue v;
      JsonParseError err;
      EXPECT_TRUE(json_parse(line, &v, &err)) << line;
      if (const JsonValue* t = v.find("type");
          t != nullptr && t->as_string() == type)
        out.push_back(std::move(v));
    }
    return out;
  }

  /// Raw line of the first "result" reply for `job`, for byte comparisons.
  std::string raw_result(const std::string& job) const {
    for (const std::string& line : lines()) {
      JsonValue v;
      JsonParseError err;
      if (!json_parse(line, &v, &err)) continue;
      const JsonValue* t = v.find("type");
      const JsonValue* j = v.find("job");
      if (t != nullptr && t->as_string() == "result" && j != nullptr &&
          j->as_string() == job)
        return line;
    }
    return "";
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::string> lines_;
};

/// The report object spliced into a result line, shorn of the reply
/// envelope (id / job / cache verdict / elapsed time).
std::string report_bytes(const std::string& result_line) {
  const std::string marker = "\"report\":";
  const std::size_t idx = result_line.find(marker);
  EXPECT_NE(idx, std::string::npos) << result_line;
  if (idx == std::string::npos) return "";
  return result_line.substr(idx + marker.size(),
                            result_line.size() - idx - marker.size() - 1);
}

const char* kSmallBatch =
    R"({"type":"submit","id":"r1","unit":"pcs","seed":11,"ops":600,)"
    R"("shard_ops":128})";

TEST(ServiceSession, SubmitRoundTrip) {
  LineSink sink;
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.progress_interval_s = 0.0;  // a progress beat per shard
  ServiceSession session(cfg, sink.fn());
  session.handle_line(kSmallBatch);
  session.wait_idle();

  auto accepted = sink.of_type("accepted");
  ASSERT_EQ(accepted.size(), 1u);
  EXPECT_EQ(accepted[0].find("id")->as_string(), "r1");
  EXPECT_EQ(accepted[0].find("job")->as_string(), "job-1");
  EXPECT_EQ(accepted[0].find("cache_key")->as_string().size(), 16u);

  auto progress = sink.of_type("progress");
  ASSERT_GE(progress.size(), 1u);  // 600/128 = 5 shards
  const JsonValue& last = progress.back();
  EXPECT_EQ(last.find("job")->as_string(), "job-1");
  EXPECT_EQ(last.find("ops_done")->as_int(), 600);
  EXPECT_EQ(last.find("ops_total")->as_int(), 600);
  EXPECT_EQ(last.find("shards_total")->as_int(), 5);

  auto results = sink.of_type("result");
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].find("id")->as_string(), "r1");
  EXPECT_EQ(results[0].find("cache")->as_string(), "miss");
  const JsonValue* report = results[0].find("report");
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(report->find("schema")->as_string(), "csfma-report-v1");
  EXPECT_EQ(report->find("meta")->find("mode")->as_string(), "batch");
  EXPECT_EQ(report->find("metrics")->find("ops")->as_int(), 600);
  EXPECT_EQ(session.jobs_completed(), 1u);
}

TEST(ServiceSession, CacheHitReplaysByteIdenticalReport) {
  LineSink sink;
  ServiceConfig cfg;
  cfg.workers = 2;
  MetricsRegistry metrics;
  cfg.metrics = &metrics;
  ServiceSession session(cfg, sink.fn());
  session.handle_line(kSmallBatch);
  session.wait_idle();
  std::string resubmit = kSmallBatch;
  resubmit.replace(resubmit.find("r1"), 2, "r2");
  session.handle_line(resubmit);
  session.wait_idle();

  auto results = sink.of_type("result");
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].find("cache")->as_string(), "miss");
  EXPECT_EQ(results[1].find("cache")->as_string(), "hit");
  EXPECT_EQ(report_bytes(sink.raw_result("job-1")),
            report_bytes(sink.raw_result("job-2")));
  EXPECT_EQ(metrics.counter("service.cache.hits", Stability::Timing).value(), 1u);
  EXPECT_EQ(metrics.counter("service.cache.misses", Stability::Timing).value(), 1u);
}

TEST(ServiceSession, WorkerAndThreadCountDoNotChangeReportBytes) {
  // The service-path determinism gate: different pool widths AND different
  // engine thread counts, byte-identical reports.  Cache off so both
  // sessions actually simulate.
  auto run = [](int workers, int threads) {
    LineSink sink;
    ServiceConfig cfg;
    cfg.workers = workers;
    cfg.cache_entries = 0;
    ServiceSession session(cfg, sink.fn());
    session.handle_line(
        R"({"type":"submit","id":"d","unit":"fcs","seed":3,"ops":900,)"
        R"("shard_ops":100,"threads":)" +
        std::to_string(threads) + "}");
    session.wait_idle();
    std::string line = sink.raw_result("job-1");
    EXPECT_NE(line, "") << "no result with workers=" << workers;
    EXPECT_NE(line.find("\"cache\":\"miss\""), std::string::npos) << line;
    return report_bytes(line);
  };
  const std::string one = run(1, 1);
  const std::string four = run(4, 4);
  EXPECT_EQ(one, four);
  EXPECT_NE(one, "");
}

TEST(ServiceSession, ChainedAndStreamJobsComplete) {
  LineSink sink;
  ServiceConfig cfg;
  cfg.workers = 2;
  ServiceSession session(cfg, sink.fn());
  session.handle_line(
      R"({"type":"submit","id":"c","mode":"chained","unit":"classic",)"
      R"("seed":5,"chains":6,"depth":10})");
  session.handle_line(
      R"({"type":"submit","id":"s","mode":"stream","unit":"discrete",)"
      R"("seed":5,"ops":500,"shard_ops":100})");
  session.wait_idle();
  auto results = sink.of_type("result");
  ASSERT_EQ(results.size(), 2u);
  for (const JsonValue& r : results) {
    const JsonValue* report = r.find("report");
    ASSERT_NE(report, nullptr);
    EXPECT_NE(report->find("metrics")->find("result_checksum"), nullptr);
  }
  EXPECT_EQ(session.jobs_completed(), 2u);
}

TEST(ServiceSession, StreamChecksumMatchesBatch) {
  // Stream reduces results to an order-independent checksum; it must equal
  // the batch checksum of the same operation set (consume order differs,
  // the simulated values do not).
  auto checksum_of = [](const std::string& mode) -> std::string {
    LineSink sink;
    ServiceConfig cfg;
    cfg.cache_entries = 0;
    ServiceSession session(cfg, sink.fn());
    session.handle_line(R"({"type":"submit","id":"x","mode":")" + mode +
                        R"(","unit":"pcs","seed":21,"ops":700,)"
                        R"("shard_ops":64,"threads":3})");
    session.wait_idle();
    // Compare the raw decimal token: the checksum is a full uint64, which
    // does not round-trip through as_int()/double.
    const std::string line = sink.raw_result("job-1");
    const std::string marker = "\"result_checksum\":";
    const std::size_t i = line.find(marker);
    EXPECT_NE(i, std::string::npos) << line;
    if (i == std::string::npos) return "";
    return line.substr(i + marker.size(),
                       line.find_first_of(",}", i + marker.size()) - i -
                           marker.size());
  };
  const std::string batch = checksum_of("batch");
  EXPECT_EQ(batch, checksum_of("stream"));
  EXPECT_NE(batch, "");
}

TEST(ServiceSession, CancelRunningJobEmitsNoResult) {
  LineSink sink;
  ServiceConfig cfg;
  cfg.workers = 1;
  ServiceSession session(cfg, sink.fn());
  // Big enough that the cancel always lands mid-run on one pool worker.
  session.handle_line(
      R"({"type":"submit","id":"big","unit":"pcs","seed":1,)"
      R"("ops":400000000,"shard_ops":4096})");
  session.handle_line(R"({"type":"cancel","id":"c1","job":"job-1"})");
  session.wait_idle();

  EXPECT_EQ(sink.of_type("cancel_ok").size(), 1u);
  auto cancelled = sink.of_type("cancelled");
  ASSERT_EQ(cancelled.size(), 1u);
  EXPECT_EQ(cancelled[0].find("job")->as_string(), "job-1");
  EXPECT_LT(cancelled[0].find("ops_done")->as_int(), 400000000);
  // The partial-results contract: no result reply, nothing cached.
  EXPECT_EQ(sink.of_type("result").size(), 0u);
  EXPECT_EQ(session.jobs_cancelled(), 1u);
  EXPECT_EQ(session.jobs_completed(), 0u);

  // A resubmit after the cancel must MISS (partial runs never memoize)
  // and run to completion.
  session.handle_line(
      R"({"type":"submit","id":"ok","unit":"pcs","seed":1,"ops":500,)"
      R"("shard_ops":128})");
  session.wait_idle();
  auto results = sink.of_type("result");
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].find("cache")->as_string(), "miss");
}

TEST(ServiceSession, CancelQueuedJobNeverRuns) {
  LineSink sink;
  ServiceConfig cfg;
  cfg.workers = 1;  // one pool thread: the second submit must queue
  ServiceSession session(cfg, sink.fn());
  session.handle_line(
      R"({"type":"submit","id":"big","unit":"pcs","seed":1,)"
      R"("ops":400000000,"shard_ops":4096})");
  session.handle_line(
      R"({"type":"submit","id":"q","unit":"pcs","seed":2,"ops":1000})");
  session.handle_line(R"({"type":"cancel","id":"c1","job":"job-2"})");
  session.handle_line(R"({"type":"cancel","id":"c2","job":"job-1"})");
  session.wait_idle();
  auto cancelled = sink.of_type("cancelled");
  ASSERT_EQ(cancelled.size(), 2u);
  // The queued job was cancelled before ever claiming a shard.
  for (const JsonValue& c : cancelled) {
    if (c.find("job")->as_string() == "job-2") {
      EXPECT_EQ(c.find("ops_done")->as_int(), 0);
    }
  }
  EXPECT_EQ(sink.of_type("result").size(), 0u);
  EXPECT_EQ(session.jobs_cancelled(), 2u);
}

TEST(ServiceSession, StatusTracksJobLifecycle) {
  LineSink sink;
  ServiceConfig cfg;
  ServiceSession session(cfg, sink.fn());
  session.handle_line(kSmallBatch);
  session.wait_idle();
  session.handle_line(R"({"type":"status","id":"st"})");
  auto status = sink.of_type("status");
  ASSERT_EQ(status.size(), 1u);
  const auto& jobs = status[0].find("jobs")->as_array();
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].find("job")->as_string(), "job-1");
  EXPECT_EQ(jobs[0].find("state")->as_string(), "done");
  EXPECT_EQ(jobs[0].find("ops_done")->as_int(), 600);

  session.handle_line(R"({"type":"status","id":"n","job":"job-77"})");
  auto errors = sink.of_type("error");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].find("code")->as_string(), "unknown_job");
}

TEST(ServiceSession, MalformedLinesGetTypedErrorsAndCount) {
  LineSink sink;
  ServiceConfig cfg;
  MetricsRegistry metrics;
  cfg.metrics = &metrics;
  ServiceSession session(cfg, sink.fn());
  session.handle_line("garbage");
  session.handle_line(R"({"type":"submit","id":"b","unit":"pcs","seed":1})");
  session.handle_line(R"({"type":"teleport"})");
  auto errors = sink.of_type("error");
  ASSERT_EQ(errors.size(), 3u);
  EXPECT_EQ(errors[0].find("code")->as_string(), "parse_error");
  EXPECT_EQ(errors[1].find("code")->as_string(), "bad_request");
  EXPECT_EQ(errors[1].find("id")->as_string(), "b");
  EXPECT_EQ(errors[2].find("code")->as_string(), "unknown_type");
  EXPECT_EQ(metrics.counter("service.errors", Stability::Timing).value(), 3u);
  EXPECT_EQ(metrics.counter("service.requests", Stability::Timing).value(), 3u);
}

TEST(ServiceSession, ShutdownRefusesNewWorkAndSaysBye) {
  LineSink sink;
  ServiceConfig cfg;
  ServiceSession session(cfg, sink.fn());
  session.handle_line(kSmallBatch);
  session.handle_line(R"({"type":"shutdown","id":"sd"})");
  EXPECT_TRUE(session.shutdown_requested());
  session.handle_line(
      R"({"type":"submit","id":"late","unit":"pcs","seed":9,"ops":100})");
  session.finish();
  session.finish();  // idempotent: exactly one bye

  auto errors = sink.of_type("error");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].find("code")->as_string(), "shutting_down");
  EXPECT_EQ(errors[0].find("id")->as_string(), "late");
  // The in-flight job still drains to a result before the bye.
  EXPECT_EQ(sink.of_type("result").size(), 1u);
  auto byes = sink.of_type("bye");
  ASSERT_EQ(byes.size(), 1u);
  EXPECT_EQ(byes[0].find("id")->as_string(), "sd");
  EXPECT_EQ(byes[0].find("jobs_completed")->as_int(), 1);
  EXPECT_EQ(sink.lines().back().find("\"type\":\"bye\""), 0u + 1u);
}

TEST(ServiceSession, FullPendingQueueAnswersBusyInsteadOfHanging) {
  LineSink sink;
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.cache_entries = 0;  // hits would bypass admission control
  cfg.max_pending = 1;
  MetricsRegistry metrics;
  cfg.metrics = &metrics;
  ServiceSession session(cfg, sink.fn());
  // Job 1 occupies the one worker for a long time.  Wait until it is
  // RUNNING (not merely queued) so the pending count is deterministic.
  session.handle_line(
      R"({"type":"submit","id":"big","unit":"pcs","seed":1,)"
      R"("ops":400000000,"shard_ops":4096})");
  for (int spin = 0; spin < 2000; ++spin) {
    session.handle_line(R"({"type":"status","id":"poll","job":"job-1"})");
    const auto lines = sink.lines();
    if (!lines.empty() &&
        lines.back().find("\"state\":\"running\"") != std::string::npos)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Job 2 fills the single pending slot; job 3 must bounce with a typed
  // busy error, not queue without bound and not block handle_line.
  session.handle_line(
      R"({"type":"submit","id":"fits","unit":"pcs","seed":2,)"
      R"("ops":400000000,"shard_ops":4096})");
  session.handle_line(
      R"({"type":"submit","id":"bounced","unit":"pcs","seed":3,"ops":100})");

  auto errors = sink.of_type("error");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].find("code")->as_string(), "busy");
  EXPECT_EQ(errors[0].find("id")->as_string(), "bounced");
  EXPECT_EQ(sink.of_type("accepted").size(), 2u);
  EXPECT_EQ(
      metrics.counter("service.jobs.rejected", Stability::Timing).value(),
      1u);

  session.handle_line(R"({"type":"cancel","id":"c1","job":"job-1"})");
  session.handle_line(R"({"type":"cancel","id":"c2","job":"job-2"})");
  session.wait_idle();
  EXPECT_EQ(session.jobs_cancelled(), 2u);

  // With the queue drained, submissions are admitted again.
  session.handle_line(
      R"({"type":"submit","id":"again","unit":"pcs","seed":3,"ops":100})");
  session.wait_idle();
  EXPECT_EQ(session.jobs_completed(), 1u);
  EXPECT_EQ(sink.of_type("error").size(), 1u);
}

TEST(ServiceSession, QueueDepthGaugeReturnsToZeroAfterDrainedBurst) {
  // The gauge must track every enqueue/dequeue — including sessions with
  // no --max-pending bound and jobs cancelled while still queued — and
  // read 0 once the burst drains.
  LineSink sink;
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.cache_entries = 0;  // hits would bypass the queue
  MetricsRegistry metrics;
  cfg.metrics = &metrics;
  ServiceSession session(cfg, sink.fn());
  Gauge& depth = metrics.gauge("service.queue.depth", Stability::Timing);
  EXPECT_TRUE(depth.is_set());
  EXPECT_EQ(depth.value(), 0.0);
  for (int seed = 1; seed <= 4; ++seed) {
    session.handle_line(
        R"({"type":"submit","id":"b","unit":"pcs","seed":)" +
        std::to_string(seed) + R"(,"ops":600,"shard_ops":128})");
  }
  session.wait_idle();
  EXPECT_EQ(sink.of_type("result").size(), 4u);
  EXPECT_EQ(depth.value(), 0.0);

  // Cancelling a still-queued job must remove it from the queue (and the
  // gauge) immediately, not leave a ghost entry until a worker pops it.
  session.handle_line(
      R"({"type":"submit","id":"big","unit":"pcs","seed":1,)"
      R"("ops":400000000,"shard_ops":4096})");
  session.handle_line(
      R"({"type":"submit","id":"q","unit":"pcs","seed":2,"ops":1000})");
  session.handle_line(R"({"type":"cancel","id":"c1","job":"job-6"})");
  session.handle_line(R"({"type":"cancel","id":"c2","job":"job-5"})");
  session.wait_idle();
  EXPECT_EQ(session.jobs_cancelled(), 2u);
  EXPECT_EQ(depth.value(), 0.0);
}

TEST(ServiceSession, StatsReplyCarriesSnapshotAndLatencyHistograms) {
  LineSink sink;
  ServiceConfig cfg;
  cfg.workers = 1;
  ServiceSession session(cfg, sink.fn());  // no registry attached: the
                                           // session's own fallback serves
  session.handle_line(kSmallBatch);
  session.wait_idle();
  std::string resubmit = kSmallBatch;
  resubmit.replace(resubmit.find("r1"), 2, "r2");
  session.handle_line(resubmit);  // cache hit, answered inline
  session.handle_line(R"({"type":"stats","id":"st"})");

  auto stats = sink.of_type("stats");
  ASSERT_EQ(stats.size(), 1u);
  const JsonValue& s = stats[0];
  EXPECT_EQ(s.find("id")->as_string(), "st");
  EXPECT_GE(s.find("uptime_s")->as_number(), 0.0);
  const JsonValue* metrics = s.find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->find("counters")
                ->find("service.requests")->find("value")->as_int(),
            3);
  const JsonValue* hists = metrics->find("histograms");
  ASSERT_NE(hists, nullptr);
  // One completed miss and one inline cache hit, each in its own
  // per-type/per-outcome latency histogram.
  const JsonValue* ok = hists->find("service.latency_ms.submit.ok");
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->find("count")->as_int(), 1);
  const JsonValue* hit = hists->find("service.latency_ms.submit.cache_hit");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->find("count")->as_int(), 1);
  const JsonValue* pct = s.find("percentiles");
  ASSERT_NE(pct, nullptr);
  const JsonValue* ok_pct = pct->find("service.latency_ms.submit.ok");
  ASSERT_NE(ok_pct, nullptr);
  EXPECT_EQ(ok_pct->find("count")->as_int(), 1);
  EXPECT_LE(ok_pct->find("p50")->as_number(),
            ok_pct->find("p99")->as_number());
}

TEST(ServiceSession, ModelSubmitRoundTripCarriesTheDesignMetrics) {
  LineSink sink;
  ServiceConfig cfg;
  cfg.workers = 1;
  ServiceSession session(cfg, sink.fn());
  session.handle_line(
      R"({"type":"submit","id":"m1","mode":"model","unit":"pcs","seed":1})");
  session.wait_idle();
  auto results = sink.of_type("result");
  ASSERT_EQ(results.size(), 1u);
  const JsonValue* rep = results[0].find("report");
  ASSERT_NE(rep, nullptr);
  const JsonValue* meta = rep->find("meta");
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->find("mode")->as_string(), "model");
  EXPECT_EQ(meta->find("rwidth")->as_string(), "55");  // resolved, not 0
  const JsonValue* metrics = rep->find("metrics");
  ASSERT_NE(metrics, nullptr);
  // The paper-geometry PCS point: the Fig 9 area and the Table II anchor.
  EXPECT_EQ(metrics->find("luts")->as_int(), 5802);
  EXPECT_EQ(metrics->find("dsps")->as_int(), 21);
  EXPECT_NEAR(metrics->find("energy_nj")->as_number(), 2.67, 1e-9);
  EXPECT_GT(metrics->find("delay_ns")->as_number(), 0.0);

  // The same design spelled with an explicit rwidth is a cache hit.
  session.handle_line(
      R"({"type":"submit","id":"m2","mode":"model","unit":"pcs","seed":1,)"
      R"("rwidth":55})");
  session.wait_idle();
  results = sink.of_type("result");
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[1].find("cache")->as_string(), "hit");
}

TEST(ServiceSession, SweepMetricsCountPointsAndActiveSweeps) {
  LineSink sink;
  ServiceConfig cfg;
  cfg.workers = 2;
  MetricsRegistry metrics;
  cfg.metrics = &metrics;
  ServiceSession session(cfg, sink.fn());
  Gauge& active = metrics.gauge("service.sweep.active", Stability::Timing);
  EXPECT_TRUE(active.is_set());
  EXPECT_EQ(active.value(), 0.0);

  session.handle_line(
      R"({"type":"sweep","id":"s1","mode":"model","unit":"pcs","seed":1,)"
      R"("rwidth":[0,55,11]})");
  session.wait_idle();
  // rwidth 0 and 55 resolve to the same design: 3 points, 1 cache hit.
  EXPECT_EQ(sink.of_type("sweep_point").size(), 3u);
  EXPECT_EQ(metrics.counter("service.sweep.points",
                            Stability::Timing).value(), 3u);
  EXPECT_EQ(metrics.counter("service.sweep.points_cached",
                            Stability::Timing).value(), 1u);
  EXPECT_EQ(active.value(), 0.0);  // returned to idle after the sweep
}

TEST(ServiceSession, StatsAsFirstRequestIsWellDefined) {
  // A stats request on a completely fresh session — empty histograms,
  // every counter zero — must answer with defined values (count 0,
  // percentiles 0.0), not NaN or garbage ranks.
  LineSink sink;
  ServiceConfig cfg;
  cfg.workers = 1;
  ServiceSession session(cfg, sink.fn());
  session.handle_line(R"({"type":"stats","id":"first"})");
  auto stats = sink.of_type("stats");
  ASSERT_EQ(stats.size(), 1u);
  const JsonValue& s = stats[0];
  EXPECT_EQ(s.find("id")->as_string(), "first");
  const JsonValue* metrics = s.find("metrics");
  ASSERT_NE(metrics, nullptr);
  // The stats request itself is the only traffic so far.
  EXPECT_EQ(metrics->find("counters")
                ->find("service.requests")->find("value")->as_int(),
            1);
  const JsonValue* pct = s.find("percentiles");
  ASSERT_NE(pct, nullptr);
  for (const auto& [name, snap] : pct->as_object()) {
    ASSERT_NE(snap.find("count"), nullptr) << name;
    if (snap.find("count")->as_int() != 0) continue;
    for (const char* q : {"p50", "p90", "p99"}) {
      const JsonValue* v = snap.find(q);
      ASSERT_NE(v, nullptr) << name;
      EXPECT_EQ(v->as_number(), 0.0) << name << " " << q;
    }
  }
}

TEST(ServiceSession, TraceIdIsEchoedOnEveryReplyAndEvent) {
  LineSink sink;
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.progress_interval_s = 0.0;  // a progress beat per shard
  ServiceSession session(cfg, sink.fn());
  std::string line = kSmallBatch;
  line.insert(1, R"("trace_id":"tr-9",)");
  session.handle_line(line);
  session.wait_idle();
  for (const char* type : {"accepted", "progress", "result"}) {
    auto replies = sink.of_type(type);
    ASSERT_GE(replies.size(), 1u) << type;
    for (const JsonValue& r : replies) {
      const JsonValue* tid = r.find("trace_id");
      ASSERT_NE(tid, nullptr) << type;
      EXPECT_EQ(tid->as_string(), "tr-9") << type;
    }
  }
  // Untraced requests carry no trace_id key at all (wire-stable replies).
  session.handle_line(R"({"type":"status","id":"st"})");
  auto status = sink.of_type("status");
  ASSERT_EQ(status.size(), 1u);
  EXPECT_EQ(status[0].find("trace_id"), nullptr);
  // Error replies echo it too, even for unparseable request types.
  session.handle_line(R"({"type":"warp","trace_id":"tr-err"})");
  auto errors = sink.of_type("error");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].find("trace_id")->as_string(), "tr-err");
}

TEST(ServiceSession, ParentSpanIsEchoedAndStampedOnServerSpans) {
  LineSink sink;
  TraceSession trace;
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.trace = &trace;
  ServiceSession session(cfg, sink.fn());
  std::string line = kSmallBatch;
  line.insert(1, R"("trace_id":"tr-9","parent_span":"chunk-2",)");
  session.handle_line(line);
  session.wait_idle();
  // The wire echo, alongside the trace id.
  for (const char* type : {"accepted", "result"}) {
    auto replies = sink.of_type(type);
    ASSERT_EQ(replies.size(), 1u) << type;
    EXPECT_EQ(replies[0].find("parent_span")->as_string(), "chunk-2") << type;
    EXPECT_EQ(replies[0].find("trace_id")->as_string(), "tr-9") << type;
  }
  // Every service-category span of the request carries the caller's trace
  // context as args, so trace_merge.py can hang the whole req-1 tree
  // under the explorer's chunk span.
  std::size_t service_spans = 0;
  for (const TraceEvent& ev : trace.events()) {
    if (ev.cat != "service") continue;
    ++service_spans;
    std::string trace_arg, parent_arg;
    for (const TraceArg& a : ev.args) {
      if (a.key == "trace") trace_arg = a.value;
      if (a.key == "parent") parent_arg = a.value;
    }
    EXPECT_EQ(trace_arg, "tr-9") << ev.name;
    EXPECT_EQ(parent_arg, "chunk-2") << ev.name;
  }
  // parse, cache-lookup, queue-wait, engine-run, render.
  EXPECT_EQ(service_spans, 5u);
  // A legacy request without the field produces spans without the args.
  session.handle_line(R"({"type":"status","id":"st"})");
  auto status = sink.of_type("status");
  ASSERT_EQ(status.size(), 1u);
  EXPECT_EQ(status[0].find("parent_span"), nullptr);
  for (const TraceEvent& ev : trace.events()) {
    if (ev.cat != "service" || ev.name != "parse") continue;
    const bool second_request =
        std::any_of(ev.args.begin(), ev.args.end(), [](const TraceArg& a) {
          return a.key == "req" && a.value == "req-2";
        });
    if (!second_request) continue;
    for (const TraceArg& a : ev.args) EXPECT_NE(a.key, "parent");
  }
}

TEST(ServiceSession, StructuredLogPairsEveryRequestBeginWithAnEnd) {
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  auto log = ServiceLog::attach(tmp);
  {
    LineSink sink;
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.log = log.get();
    cfg.conn = "test-conn";
    ServiceSession session(cfg, sink.fn());
    session.handle_line(kSmallBatch);
    session.wait_idle();
    std::string resubmit = kSmallBatch;
    resubmit.replace(resubmit.find("r1"), 2, "r2");
    session.handle_line(resubmit);          // cache_hit outcome
    session.handle_line("not json");        // error outcome
    session.handle_line(R"({"type":"shutdown","id":"sd"})");
    session.finish();
  }
  std::rewind(tmp);
  std::map<std::string, int> kinds;
  std::map<std::string, int> outcomes;
  std::int64_t last_seq = 0;
  char buf[4096];
  while (std::fgets(buf, sizeof buf, tmp) != nullptr) {
    JsonValue v;
    JsonParseError err;
    ASSERT_TRUE(json_parse(buf, &v, &err)) << buf;
    ++kinds[v.find("kind")->as_string()];
    const std::int64_t seq = v.find("seq")->as_int();
    EXPECT_GT(seq, last_seq) << "seq must increase strictly";
    last_seq = seq;
    ASSERT_NE(v.find("t"), nullptr);
    EXPECT_GE(v.find("t")->find("ts_ms")->as_number(), 0.0);
    if (v.find("kind")->as_string() == "request_end") {
      EXPECT_EQ(v.find("conn")->as_string(), "test-conn");
      ++outcomes[v.find("outcome")->as_string()];
    }
  }
  std::fclose(tmp);
  EXPECT_EQ(kinds["request_begin"], 4);
  EXPECT_EQ(kinds["request_end"], 4);
  EXPECT_EQ(outcomes["ok"], 2);  // the first submit and the shutdown
  EXPECT_EQ(outcomes["cache_hit"], 1);
  EXPECT_EQ(outcomes["error"], 1);
}

TEST(ServiceSession, SharedCacheServesSecondSession) {
  MetricsRegistry metrics;
  ResultCache shared(8, &metrics);
  auto run = [&](const char* id) {
    LineSink sink;
    ServiceConfig cfg;
    cfg.cache = &shared;
    ServiceSession session(cfg, sink.fn());
    std::string line = kSmallBatch;
    line.replace(line.find("r1"), 2, id);
    session.handle_line(line);
    session.wait_idle();
    auto results = sink.of_type("result");
    EXPECT_EQ(results.size(), 1u);
    return results.empty() ? std::string()
                           : results[0].find("cache")->as_string();
  };
  EXPECT_EQ(run("s1"), "miss");
  EXPECT_EQ(run("s2"), "hit");  // a different session, the same cache
  EXPECT_EQ(shared.size(), 1u);
}

}  // namespace
}  // namespace csfma
