// Transport layer: LineChannel framing over raw fds, Unix/TCP listeners,
// idle timeouts, and serve_connections multiplexing concurrent clients
// over one shared cache.
#include "service/transport.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "service/cache.hpp"
#include "service/log.hpp"

namespace csfma {
namespace {

class TransportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { std::signal(SIGPIPE, SIG_IGN); }
};

TEST_F(TransportTest, LineChannelFramesLinesAcrossArbitraryWrites) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  LineChannel ch(fds[0], -1);
  // Line boundaries never align with write boundaries; CRLF is accepted.
  for (const char* frag : {"hel", "lo\nwor", "ld\r\n", "tail-no-newline"})
    ASSERT_GT(::write(fds[1], frag, std::strlen(frag)), 0);
  ::close(fds[1]);

  std::string line;
  EXPECT_EQ(ch.read_line(&line), LineChannel::Read::Line);
  EXPECT_EQ(line, "hello");
  EXPECT_EQ(ch.read_line(&line), LineChannel::Read::Line);
  EXPECT_EQ(line, "world");
  // Orderly EOF delivers the unterminated trailing line once, then Eof.
  EXPECT_EQ(ch.read_line(&line), LineChannel::Read::Line);
  EXPECT_EQ(line, "tail-no-newline");
  EXPECT_EQ(ch.read_line(&line), LineChannel::Read::Eof);
  ::close(fds[0]);
}

TEST_F(TransportTest, LineChannelTimesOutOnSilence) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  LineChannel ch(fds[0], -1);
  std::string line;
  EXPECT_EQ(ch.read_line(&line, 0.05), LineChannel::Read::Timeout);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST_F(TransportTest, LineChannelWriteAppendsNewlineAndDropsDeadPeer) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  LineChannel ch(-1, fds[1]);
  EXPECT_TRUE(ch.write_line("abc"));
  char buf[8] = {};
  EXPECT_EQ(::read(fds[0], buf, sizeof buf), 4);
  EXPECT_STREQ(buf, "abc\n");
  ::close(fds[0]);
  // The peer is gone: this write fails, and later writes are dropped
  // without touching the fd again.
  EXPECT_FALSE(ch.write_line("lost"));
  EXPECT_FALSE(ch.write_line("also lost"));
  ::close(fds[1]);
}

/// Every log line of `f` (rewinding first), for lifecycle assertions.
std::vector<std::string> log_lines(std::FILE* f) {
  std::rewind(f);
  std::vector<std::string> lines;
  char buf[4096];
  while (std::fgets(buf, sizeof buf, f) != nullptr) lines.emplace_back(buf);
  return lines;
}

TEST_F(TransportTest, IdleTimeoutClosesAQuietSession) {
  int in[2], out[2];
  ASSERT_EQ(::pipe(in), 0);
  ASSERT_EQ(::pipe(out), 0);
  MetricsRegistry metrics;
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  auto log = ServiceLog::attach(tmp);
  ServiceConfig cfg;
  cfg.metrics = &metrics;
  cfg.log = log.get();
  cfg.conn = "quiet";
  LineChannel ch(in[0], out[1]);
  // Nothing ever arrives: the idle timeout must end the session (with its
  // final bye), not leave it blocked on read forever.
  const bool shutdown = run_session_on_channel(ch, cfg, /*idle=*/0.05);
  EXPECT_FALSE(shutdown);
  EXPECT_EQ(metrics.counter("service.conn.idle_closed", Stability::Timing)
                .value(),
            1u);
  EXPECT_EQ(metrics.counter("service.conn.dead_peer", Stability::Timing)
                .value(),
            0u);
  LineChannel reader(out[0], -1);
  ::close(out[1]);
  std::string line;
  ASSERT_EQ(reader.read_line(&line), LineChannel::Read::Line);
  EXPECT_NE(line.find("\"type\":\"bye\""), std::string::npos);
  // The structured log brackets the connection and records the cause.
  const auto logged = log_lines(tmp);
  ASSERT_EQ(logged.size(), 2u);
  EXPECT_NE(logged.front().find("\"kind\":\"conn_accept\""),
            std::string::npos);
  EXPECT_NE(logged.back().find("\"kind\":\"conn_close\""),
            std::string::npos);
  EXPECT_NE(logged.back().find("\"conn\":\"quiet\""), std::string::npos);
  EXPECT_NE(logged.back().find("\"why\":\"idle_timeout\""),
            std::string::npos);
  std::fclose(tmp);
  for (int fd : {in[0], in[1], out[0]}) ::close(fd);
}

TEST_F(TransportTest, DeadPeerIsCountedAndLoggedDistinctly) {
  int in[2], out[2];
  ASSERT_EQ(::pipe(in), 0);
  ASSERT_EQ(::pipe(out), 0);
  MetricsRegistry metrics;
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  auto log = ServiceLog::attach(tmp);
  ServiceConfig cfg;
  cfg.metrics = &metrics;
  cfg.log = log.get();
  cfg.conn = "vanisher";
  // The client vanishes before its reply: closing the read side of the
  // reply pipe makes the first write fail, marking the peer gone.
  ::close(out[0]);
  const char* req = "{\"type\":\"status\",\"id\":\"s\"}\n";
  ASSERT_GT(::write(in[1], req, std::strlen(req)), 0);
  ::close(in[1]);  // then EOF
  LineChannel ch(in[0], out[1]);
  const bool shutdown = run_session_on_channel(ch, cfg);
  EXPECT_FALSE(shutdown);
  EXPECT_TRUE(ch.peer_gone());
  EXPECT_EQ(metrics.counter("service.conn.dead_peer", Stability::Timing)
                .value(),
            1u);
  EXPECT_EQ(metrics.counter("service.conn.idle_closed", Stability::Timing)
                .value(),
            0u);
  const auto logged = log_lines(tmp);
  ASSERT_GE(logged.size(), 2u);
  EXPECT_NE(logged.back().find("\"kind\":\"conn_close\""),
            std::string::npos);
  EXPECT_NE(logged.back().find("\"why\":\"dead_peer\""), std::string::npos);
  std::fclose(tmp);
  for (int fd : {in[0], out[1]}) ::close(fd);
}

int connect_tcp_client(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons((std::uint16_t)port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, (const sockaddr*)&addr, sizeof addr), 0)
      << std::strerror(errno);
  return fd;
}

/// Drive one request line and collect replies until `until` appears in a
/// line's "type"; returns every line read.
std::vector<std::string> roundtrip(LineChannel& ch, const std::string& req,
                                   const std::string& until) {
  EXPECT_TRUE(ch.write_line(req));
  std::vector<std::string> lines;
  std::string line;
  while (ch.read_line(&line, 60.0) == LineChannel::Read::Line) {
    lines.push_back(line);
    if (line.find("\"type\":\"" + until + "\"") != std::string::npos) break;
  }
  return lines;
}

TEST_F(TransportTest, ListenTcpBindsEphemeralPortAndReportsIt) {
  std::string err;
  auto listener = listen_tcp("127.0.0.1:0", &err);
  ASSERT_NE(listener, nullptr) << err;
  EXPECT_GT(listener->port(), 0);
  EXPECT_NE(listener->where().find(std::to_string(listener->port())),
            std::string::npos);
}

TEST_F(TransportTest, ListenTcpRejectsGarbageSpecs) {
  std::string err;
  EXPECT_EQ(listen_tcp("no-port-here", &err), nullptr);
  EXPECT_FALSE(err.empty());
  EXPECT_EQ(listen_tcp("definitely.not.a.host.invalid:1", &err), nullptr);
}

TEST_F(TransportTest, ServeConnectionsMultiplexesClientsOverSharedCache) {
  std::string err;
  auto listener = listen_tcp("127.0.0.1:0", &err);
  ASSERT_NE(listener, nullptr) << err;
  const int port = listener->port();

  MetricsRegistry metrics;
  ResultCache cache(16, &metrics);
  ServerConfig cfg;
  cfg.session.workers = 2;
  cfg.session.metrics = &metrics;
  cfg.session.cache = &cache;
  std::thread server([&] { serve_connections(*listener, cfg); });

  const std::string submit =
      R"({"type":"submit","id":"t1","unit":"pcs","seed":11,"ops":600,)"
      R"("shard_ops":128})";

  // Two concurrent connections, each its own session.  The second run of
  // the same request — on a DIFFERENT connection — must hit the shared
  // cache and replay the first one's bytes.
  const int fd_a = connect_tcp_client(port);
  const int fd_b = connect_tcp_client(port);
  LineChannel a(fd_a, fd_a), b(fd_b, fd_b);
  const auto lines_a = roundtrip(a, submit, "result");
  const auto lines_b = roundtrip(b, submit, "result");
  ASSERT_FALSE(lines_a.empty());
  ASSERT_FALSE(lines_b.empty());
  const std::string& ra = lines_a.back();
  const std::string& rb = lines_b.back();
  EXPECT_NE(ra.find("\"cache\":\"miss\""), std::string::npos) << ra;
  EXPECT_NE(rb.find("\"cache\":\"hit\""), std::string::npos) << rb;
  const auto report = [](const std::string& s) {
    return s.substr(s.find("\"report\":"));
  };
  EXPECT_EQ(report(ra), report(rb));

  // Disconnecting one client (EOF) leaves the daemon serving the other.
  ::close(fd_a);
  const auto status_b =
      roundtrip(b, R"({"type":"status","id":"s"})", "status");
  ASSERT_FALSE(status_b.empty());

  // A shutdown from any connection stops the accept loop.
  const auto bye = roundtrip(b, R"({"type":"shutdown","id":"z"})", "bye");
  ASSERT_FALSE(bye.empty());
  EXPECT_NE(bye.back().find("\"type\":\"bye\""), std::string::npos);
  ::close(fd_b);
  server.join();

  EXPECT_EQ(metrics.counter("service.conn.accepted", Stability::Timing)
                .value(),
            2u);
  EXPECT_EQ(
      metrics.counter("service.conn.closed", Stability::Timing).value(),
      2u);
}

TEST_F(TransportTest, UnixListenerRoundTripAndCleanup) {
  const std::string path =
      std::string(::testing::TempDir()) + "transport_test.sock";
  ::unlink(path.c_str());
  std::string err;
  {
    auto listener = listen_unix(path, &err);
    ASSERT_NE(listener, nullptr) << err;
    EXPECT_EQ(listener->where(), path);

    ServerConfig cfg;
    cfg.session.workers = 1;
    std::thread server([&] { serve_connections(*listener, cfg); });

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
    ASSERT_EQ(::connect(fd, (const sockaddr*)&addr, sizeof addr), 0)
        << std::strerror(errno);
    LineChannel ch(fd, fd);
    const auto bye = roundtrip(ch, R"({"type":"shutdown","id":"q"})", "bye");
    ASSERT_FALSE(bye.empty());
    ::close(fd);
    server.join();
  }
  // Teardown removes the socket file.
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
}

}  // namespace
}  // namespace csfma
