// Protocol goldens: exact wire bytes for every request, reply and error
// type, plus the cache-key canonicalization contract — two spellings of the
// same simulation hash to the same key; result-determining differences
// never collide in these cases.
#include "service/protocol.hpp"

#include <gtest/gtest.h>

#include <string>

#include "service/json_value.hpp"

namespace csfma {
namespace {

SubmitRequest submit_of(const std::string& line) {
  ParseOutcome out = parse_request_line(line);
  EXPECT_TRUE(out.ok) << line << " -> " << out.message;
  EXPECT_TRUE(std::holds_alternative<SubmitRequest>(out.request.op)) << line;
  return std::get<SubmitRequest>(out.request.op);
}

void expect_error(const std::string& line, ServiceError code,
                  const std::string& message_fragment) {
  ParseOutcome out = parse_request_line(line);
  EXPECT_FALSE(out.ok) << line;
  EXPECT_EQ(out.code, code) << line << " -> " << out.message;
  EXPECT_NE(out.message.find(message_fragment), std::string::npos)
      << line << " -> " << out.message;
}

// ---- request parsing --------------------------------------------------

TEST(Protocol, ParsesFullBatchSubmit) {
  SubmitRequest r = submit_of(
      R"({"type":"submit","id":"r1","mode":"batch","unit":"fcs",)"
      R"("rounding":"toward-zero","seed":99,"ops":5000,"emin":-4,"emax":4,)"
      R"("shard_ops":512,"threads":3})");
  EXPECT_EQ(r.mode, SimMode::Batch);
  EXPECT_EQ(r.unit, UnitKind::Fcs);
  EXPECT_EQ(r.rm, Round::TowardZero);
  EXPECT_EQ(r.seed, 99u);
  EXPECT_EQ(r.ops, 5000u);
  EXPECT_EQ(r.emin, -4);
  EXPECT_EQ(r.emax, 4);
  EXPECT_EQ(r.shard_ops, 512u);
  EXPECT_EQ(r.threads, 3);
  EXPECT_EQ(r.total_ops(), 5000u);
}

TEST(Protocol, ParsesChainedSubmitWithDefaults) {
  SubmitRequest r = submit_of(
      R"({"type":"submit","mode":"chained","unit":"classic","seed":7,)"
      R"("chains":12})");
  EXPECT_EQ(r.mode, SimMode::Chained);
  EXPECT_EQ(r.unit, UnitKind::Classic);
  EXPECT_EQ(r.rm, Round::NearestEven);  // default
  EXPECT_EQ(r.depth, 18);               // default
  EXPECT_EQ(r.chains, 12u);
  EXPECT_EQ(r.total_ops(), 12u * 2u * 16u);  // chains * 2 * (depth - 2)
}

TEST(Protocol, ParsesStatusCancelShutdown) {
  ParseOutcome st = parse_request_line(R"({"type":"status","id":"s"})");
  ASSERT_TRUE(st.ok);
  EXPECT_EQ(st.request.id, "s");
  EXPECT_TRUE(std::holds_alternative<StatusRequest>(st.request.op));
  EXPECT_EQ(std::get<StatusRequest>(st.request.op).job, "");

  ParseOutcome stj =
      parse_request_line(R"({"type":"status","job":"job-3"})");
  ASSERT_TRUE(stj.ok);
  EXPECT_EQ(std::get<StatusRequest>(stj.request.op).job, "job-3");

  ParseOutcome ca =
      parse_request_line(R"({"type":"cancel","id":"c","job":"job-1"})");
  ASSERT_TRUE(ca.ok);
  EXPECT_EQ(std::get<CancelRequest>(ca.request.op).job, "job-1");

  ParseOutcome sd = parse_request_line(R"({"type":"shutdown"})");
  ASSERT_TRUE(sd.ok);
  EXPECT_TRUE(std::holds_alternative<ShutdownRequest>(sd.request.op));
}

TEST(Protocol, TypedParseErrors) {
  expect_error("not json at all", ServiceError::ParseError, "byte 0");
  expect_error("[1,2,3]", ServiceError::ParseError, "JSON object");
  expect_error("{}", ServiceError::BadRequest, "\"type\"");
  expect_error(R"({"type":"frobnicate"})", ServiceError::UnknownType,
               "frobnicate");
  expect_error(R"({"type":"cancel"})", ServiceError::BadRequest, "\"job\"");
}

TEST(Protocol, TypedSubmitValidation) {
  // Missing / ill-typed / out-of-range fields all name the field.
  expect_error(R"({"type":"submit","seed":1,"ops":10})",
               ServiceError::BadRequest, "\"unit\"");
  expect_error(R"({"type":"submit","unit":"pcs","ops":10})",
               ServiceError::BadRequest, "\"seed\"");
  expect_error(R"({"type":"submit","unit":"pcs","seed":1})",
               ServiceError::BadRequest, "\"ops\"");
  expect_error(R"({"type":"submit","unit":"ternary","seed":1,"ops":10})",
               ServiceError::BadRequest, "\"unit\"");
  expect_error(
      R"({"type":"submit","mode":"warp","unit":"pcs","seed":1,"ops":10})",
      ServiceError::BadRequest, "\"mode\"");
  expect_error(R"({"type":"submit","unit":"pcs","seed":-1,"ops":10})",
               ServiceError::BadRequest, "\"seed\"");
  expect_error(R"({"type":"submit","unit":"pcs","seed":1,"ops":"many"})",
               ServiceError::BadRequest, "\"ops\"");
  expect_error(R"({"type":"submit","unit":"pcs","seed":1,"ops":0})",
               ServiceError::BadRequest, "\"ops\"");
  expect_error(
      R"({"type":"submit","unit":"pcs","seed":1,"ops":10,"threads":65})",
      ServiceError::BadRequest, "\"threads\"");
  expect_error(
      R"({"type":"submit","unit":"pcs","seed":1,"ops":10,"emin":3,"emax":1})",
      ServiceError::BadRequest, "\"emin\"");
  // Mode-exclusive fields are rejected, not silently ignored.
  expect_error(
      R"({"type":"submit","unit":"pcs","seed":1,"ops":10,"chains":4})",
      ServiceError::BadRequest, "chained");
  expect_error(
      R"({"type":"submit","mode":"chained","unit":"pcs","seed":1,)"
      R"("chains":4,"ops":10})",
      ServiceError::BadRequest, "\"ops\"");
  expect_error(
      R"({"type":"submit","mode":"chained","unit":"pcs","seed":1,)"
      R"("chains":4,"depth":2})",
      ServiceError::BadRequest, "\"depth\"");
}

TEST(Protocol, ErrorOutcomeStillEchoesId) {
  ParseOutcome out = parse_request_line(
      R"({"type":"submit","id":"req-7","unit":"pcs","seed":1})");
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.id, "req-7");
}

// ---- proto versioning -------------------------------------------------

TEST(Protocol, ProtoFieldGatesVersions) {
  // Absent proto = version 1 (wire back-compat with pre-versioned
  // clients); the current version is accepted explicitly; anything else
  // is a typed error naming the version the daemon speaks.
  EXPECT_TRUE(parse_request_line(R"({"type":"status"})").ok);
  EXPECT_TRUE(parse_request_line(R"({"type":"status","proto":1})").ok);
  expect_error(R"({"type":"status","proto":2})",
               ServiceError::UnsupportedVersion, "proto 1");
  expect_error(R"({"type":"status","proto":0})",
               ServiceError::UnsupportedVersion, "proto 1");
  expect_error(R"({"type":"status","proto":"1"})",
               ServiceError::UnsupportedVersion, "proto 1");
}

TEST(Protocol, ProtoErrorStillEchoesId) {
  ParseOutcome out =
      parse_request_line(R"({"type":"status","proto":9,"id":"v1"})");
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.code, ServiceError::UnsupportedVersion);
  EXPECT_EQ(out.id, "v1");
}

// ---- trace context (trace_id + parent_span) ---------------------------

TEST(Protocol, ParentSpanRoundTrips) {
  ParseOutcome out = parse_request_line(
      R"({"type":"status","trace_id":"tr-9","parent_span":"chunk-3"})");
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.trace_id, "tr-9");
  EXPECT_EQ(out.parent_span, "chunk-3");
  EXPECT_EQ(out.request.trace_id, "tr-9");
  EXPECT_EQ(out.request.parent_span, "chunk-3");
}

TEST(Protocol, ParentSpanDefaultsEmptyForLegacyClients) {
  // Pre-fleet clients never send the field; absence means "no parent",
  // not an error, and replies must not grow a member for it.
  ParseOutcome out = parse_request_line(R"({"type":"status","id":"s"})");
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.parent_span, "");
  EXPECT_EQ(out.request.parent_span, "");
  EXPECT_EQ(status_reply("s", {}),
            R"({"type":"status","proto":1,"id":"s","jobs":[]})");
}

TEST(Protocol, ParentSpanMustBeAString) {
  expect_error(R"({"type":"status","parent_span":7})",
               ServiceError::BadRequest, "\"parent_span\"");
}

TEST(Protocol, VersionGatedErrorStillEchoesTraceContext) {
  // The proto gate runs before typed field validation, but the trace
  // context must survive it so a mixed-version fleet's error replies
  // still land under the caller's span in the merged timeline.
  ParseOutcome out = parse_request_line(
      R"({"type":"status","proto":9,"trace_id":"tr","parent_span":"ps"})");
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.code, ServiceError::UnsupportedVersion);
  EXPECT_EQ(out.trace_id, "tr");
  EXPECT_EQ(out.parent_span, "ps");
}

TEST(Protocol, RepliesEchoParentSpanAfterTraceId) {
  EXPECT_EQ(status_reply("s", {}, "tr", "ps"),
            R"({"type":"status","proto":1,"id":"s","trace_id":"tr",)"
            R"("parent_span":"ps","jobs":[]})");
  EXPECT_EQ(error_reply("e", ServiceError::BadRequest, "no", "tr", "ps"),
            R"({"type":"error","proto":1,"id":"e","trace_id":"tr",)"
            R"("parent_span":"ps","code":"bad_request","message":"no"})");
  // parent_span without a trace id is legal (the field stands alone).
  EXPECT_EQ(bye_reply("z", 0, 0, 0, "", "ps"),
            R"({"type":"bye","proto":1,"id":"z","parent_span":"ps",)"
            R"("jobs_completed":0,"jobs_cancelled":0,"jobs_failed":0})");
}

TEST(Protocol, NewErrorCodesRender) {
  EXPECT_NE(error_reply("i", ServiceError::Busy, "m").find(R"("code":"busy")"),
            std::string::npos);
  EXPECT_NE(error_reply("i", ServiceError::UnsupportedVersion, "m")
                .find(R"("code":"unsupported_version")"),
            std::string::npos);
}

// ---- hashing helpers --------------------------------------------------

TEST(Protocol, Fnv1a64ReferenceVectors) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);  // offset basis
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
  // Chaining: folding in two pieces equals hashing the concatenation.
  EXPECT_EQ(fnv1a64("bar", fnv1a64("foo")), fnv1a64("foobar"));
  EXPECT_EQ(hex16(0), "0000000000000000");
  EXPECT_EQ(hex16(0xdeadbeefULL), "00000000deadbeef");
  EXPECT_EQ(hex16(~0ULL), "ffffffffffffffff");
}

// ---- sweep parsing ----------------------------------------------------

SweepRequest sweep_of(const std::string& line) {
  ParseOutcome out = parse_request_line(line);
  EXPECT_TRUE(out.ok) << line << " -> " << out.message;
  EXPECT_TRUE(std::holds_alternative<SweepRequest>(out.request.op)) << line;
  return std::get<SweepRequest>(out.request.op);
}

TEST(Protocol, ParsesSweepAxes) {
  SweepRequest r = sweep_of(
      R"({"type":"sweep","unit":["pcs","fcs"],)"
      R"("rounding":["nearest-even","toward-zero"],)"
      R"("seed":[1,2,3],"ops":[100,200]})");
  EXPECT_EQ(r.units.size(), 2u);
  EXPECT_EQ(r.rms.size(), 2u);
  EXPECT_EQ(r.seeds.size(), 3u);
  EXPECT_EQ(r.ops.size(), 2u);
  EXPECT_EQ(r.point_count(), 2u * 2u * 3u * 2u);
}

TEST(Protocol, SweepScalarAxesAreOnePointEach) {
  // Every axis accepts the submit-style scalar spelling too.
  SweepRequest r =
      sweep_of(R"({"type":"sweep","unit":"pcs","seed":7,"ops":100})");
  EXPECT_EQ(r.units.size(), 1u);
  EXPECT_EQ(r.seeds.size(), 1u);
  EXPECT_EQ(r.point_count(), 1u);
}

TEST(Protocol, ChainedSweepUsesChainsAndDepth) {
  SweepRequest r = sweep_of(
      R"({"type":"sweep","mode":"chained","unit":"classic","seed":[1,2],)"
      R"("chains":[16,32],"depth":[8,18]})");
  EXPECT_EQ(r.mode, SimMode::Chained);
  EXPECT_EQ(r.point_count(), 1u * 2u * 2u * 2u);
}

TEST(Protocol, ParsesModelSubmitWithDesignKnobs) {
  SubmitRequest r = submit_of(
      R"({"type":"submit","mode":"model","unit":"fcs","seed":3,)"
      R"("block":33,"group":11,"rwidth":11,"select":"zd","depth":12,)"
      R"("ops":64})");
  EXPECT_EQ(r.mode, SimMode::Model);
  EXPECT_EQ(r.block, 33);
  EXPECT_EQ(r.group, 11);
  EXPECT_EQ(r.rwidth, 11);
  EXPECT_EQ(r.select, dse::BlockSelect::Zd);
  EXPECT_EQ(r.depth, 12);
  EXPECT_EQ(r.total_ops(), 64u);
  const dse::DseConfig cfg = r.model_config();
  EXPECT_EQ(cfg.unit, UnitKind::Fcs);
  EXPECT_EQ(cfg.block, 33);
  EXPECT_EQ(cfg.resolved_round_width(), 11);
  EXPECT_EQ(cfg.select, dse::BlockSelect::Zd);
}

TEST(Protocol, ModelSubmitDefaultsAreThePaperGeometry) {
  SubmitRequest r = submit_of(
      R"({"type":"submit","mode":"model","unit":"pcs","seed":1})");
  EXPECT_EQ(r.block, 55);
  EXPECT_EQ(r.group, 11);
  EXPECT_EQ(r.rwidth, 0);
  EXPECT_EQ(r.select, dse::BlockSelect::Lza);
  EXPECT_EQ(r.depth, 8);
  EXPECT_EQ(r.total_ops(), 32u);  // the default energy workload
}

TEST(Protocol, ModelSubmitValidation) {
  expect_error(
      R"({"type":"submit","mode":"model","unit":"pcs","seed":1,"block":7})",
      ServiceError::BadRequest, "\"block\"");
  expect_error(
      R"({"type":"submit","mode":"model","unit":"pcs","seed":1,)"
      R"("block":56})",
      ServiceError::BadRequest, "divide");
  expect_error(
      R"({"type":"submit","mode":"model","unit":"pcs","seed":1,)"
      R"("select":"guess"})",
      ServiceError::BadRequest, "\"select\"");
  // The design knobs belong to model mode alone.
  expect_error(
      R"({"type":"submit","unit":"pcs","seed":1,"ops":10,"block":55})",
      ServiceError::BadRequest, "model");
}

TEST(Protocol, ModelCacheKeyResolvesRoundingWidth) {
  // rwidth 0 means one block: the default spelling and the explicit
  // width are the same design and must share one cache entry.
  const std::string implicit_width =
      R"({"type":"submit","mode":"model","unit":"pcs","seed":1})";
  const std::string explicit_width =
      R"({"type":"submit","mode":"model","unit":"pcs","seed":1,)"
      R"("rwidth":55})";
  EXPECT_EQ(submit_of(implicit_width).cache_key(),
            submit_of(explicit_width).cache_key());
  // While a genuinely different width is a different design.
  const std::string narrow =
      R"({"type":"submit","mode":"model","unit":"pcs","seed":1,)"
      R"("rwidth":11})";
  EXPECT_NE(submit_of(narrow).cache_key(),
            submit_of(implicit_width).cache_key());
  // shard_ops and threads stay excluded, as in every other mode.
  const std::string sharded =
      R"({"type":"submit","mode":"model","unit":"pcs","seed":1,)"
      R"("shard_ops":64,"threads":3})";
  EXPECT_EQ(submit_of(sharded).cache_key(),
            submit_of(implicit_width).cache_key());
}

TEST(Protocol, ModelCanonicalKeyCarriesEveryDesignKnob) {
  SubmitRequest r = submit_of(
      R"({"type":"submit","mode":"model","unit":"fcs","seed":2,)"
      R"("block":29,"group":29,"rwidth":11,"select":"zd","depth":4,)"
      R"("ops":16})");
  EXPECT_EQ(r.canonical_key(),
            "mode=model&unit=fcs&rm=nearest-even&seed=2&block=29&group=29"
            "&rwidth=11&select=zd&depth=4&ops=16");
}

TEST(Protocol, ParsesModelSweepAxes) {
  SweepRequest r = sweep_of(
      R"({"type":"sweep","mode":"model","unit":["pcs","fcs"],"seed":1,)"
      R"("block":[33,55],"group":11,"rwidth":[0,11],"select":["lza","zd"],)"
      R"("depth":[4,8]})");
  EXPECT_EQ(r.mode, SimMode::Model);
  EXPECT_EQ(r.blocks.size(), 2u);
  EXPECT_EQ(r.rwidths.size(), 2u);
  EXPECT_EQ(r.selects.size(), 2u);
  EXPECT_EQ(r.ops, (std::vector<std::uint64_t>{32}));   // model default
  EXPECT_EQ(r.depths, (std::vector<int>{4, 8}));
  EXPECT_EQ(r.point_count(), 2u * 2u * 2u * 2u * 2u);
}

TEST(Protocol, ModelSweepValidation) {
  expect_error(
      R"({"type":"sweep","mode":"model","unit":"pcs","seed":1,)"
      R"("block":[7]})",
      ServiceError::BadRequest, "\"block\"");
  expect_error(
      R"({"type":"sweep","mode":"model","unit":"pcs","seed":1,)"
      R"("block":[55,56]})",
      ServiceError::BadRequest, "divide");
  expect_error(
      R"({"type":"sweep","mode":"model","unit":"pcs","seed":1,)"
      R"("chains":[4]})",
      ServiceError::BadRequest, "chained");
}

TEST(Protocol, SweepValidation) {
  expect_error(R"({"type":"sweep","seed":1,"ops":10})",
               ServiceError::BadRequest, "\"unit\"");
  expect_error(R"({"type":"sweep","unit":[],"seed":1,"ops":10})",
               ServiceError::BadRequest, "\"unit\"");
  expect_error(R"({"type":"sweep","unit":"pcs","ops":10})",
               ServiceError::BadRequest, "\"seed\"");
  expect_error(R"({"type":"sweep","unit":"pcs","seed":1})",
               ServiceError::BadRequest, "\"ops\"");
  expect_error(R"({"type":"sweep","unit":["ternary"],"seed":1,"ops":10})",
               ServiceError::BadRequest, "\"unit\"");
  expect_error(
      R"({"type":"sweep","mode":"chained","unit":"pcs","seed":1,)"
      R"("chains":4,"ops":10})",
      ServiceError::BadRequest, "\"ops\"");
  expect_error(
      R"({"type":"sweep","unit":"pcs","seed":1,"ops":10,"chains":4})",
      ServiceError::BadRequest, "chained");
}

TEST(Protocol, SweepPointCountIsBounded) {
  // kMaxSweepPoints + 1 points must be rejected before expansion.
  std::string line = R"({"type":"sweep","unit":"pcs","ops":10,"seed":[)";
  for (std::size_t i = 0; i <= kMaxSweepPoints; ++i) {
    if (i != 0) line += ',';
    line += std::to_string(i);
  }
  line += "]}";
  expect_error(line, ServiceError::BadRequest, "more than the limit");
}

// ---- cache-key canonicalization ---------------------------------------

TEST(Protocol, CacheKeyIgnoresSpelling) {
  // The canonical request, four spellings: member order shuffled,
  // whitespace added, defaults written out explicitly, threads changed
  // (thread count never affects results — engine determinism contract).
  const std::string a =
      R"({"type":"submit","unit":"pcs","seed":5,"ops":1000})";
  const std::string b =
      R"({"ops":1000,"seed":5,"unit":"pcs","type":"submit"})";
  const std::string c =
      "{ \"type\" : \"submit\" ,\t\"unit\" : \"pcs\" , \"seed\" : 5 , "
      "\"ops\" : 1000 }";
  const std::string d =
      R"({"type":"submit","mode":"batch","unit":"pcs",)"
      R"("rounding":"nearest-even","seed":5,"ops":1000,"emin":-8,"emax":8,)"
      R"("shard_ops":8192,"threads":4})";
  const std::string key = submit_of(a).cache_key();
  EXPECT_EQ(key.size(), 16u);
  EXPECT_EQ(submit_of(b).cache_key(), key);
  EXPECT_EQ(submit_of(c).cache_key(), key);
  EXPECT_EQ(submit_of(d).cache_key(), key);
  EXPECT_EQ(submit_of(b).canonical_key(), submit_of(a).canonical_key());
}

TEST(Protocol, CacheKeySeparatesResultDeterminingFields) {
  const std::string base =
      R"({"type":"submit","unit":"pcs","seed":5,"ops":1000})";
  const std::string key = submit_of(base).cache_key();
  const char* variants[] = {
      R"({"type":"submit","unit":"fcs","seed":5,"ops":1000})",
      R"({"type":"submit","unit":"pcs","seed":6,"ops":1000})",
      R"({"type":"submit","unit":"pcs","seed":5,"ops":1001})",
      R"({"type":"submit","unit":"pcs","seed":5,"ops":1000,"emax":9})",
      R"({"type":"submit","unit":"pcs","seed":5,"ops":1000,"shard_ops":64})",
      R"({"type":"submit","mode":"stream","unit":"pcs","seed":5,"ops":1000})",
      R"({"type":"submit","unit":"pcs","seed":5,"ops":1000,)"
      R"("rounding":"toward-zero"})",
  };
  for (const char* v : variants)
    EXPECT_NE(submit_of(v).cache_key(), key) << v;
}

TEST(Protocol, CanonicalKeyIsModeSpecific) {
  SubmitRequest chained = submit_of(
      R"({"type":"submit","mode":"chained","unit":"pcs","seed":5,)"
      R"("chains":8,"depth":10})");
  const std::string k = chained.canonical_key();
  // Chained keys carry chains/depth, never the batch-only geometry.
  EXPECT_NE(k.find("chains=8"), std::string::npos);
  EXPECT_NE(k.find("depth=10"), std::string::npos);
  EXPECT_EQ(k.find("emin"), std::string::npos);
  EXPECT_EQ(k.find("ops="), k.find("shard_ops=") + 6);  // only shard_ops
  EXPECT_EQ(k.find("threads"), std::string::npos);
}

// ---- reply goldens (exact bytes) --------------------------------------

TEST(Protocol, ErrorReplyGolden) {
  EXPECT_EQ(error_reply("r1", ServiceError::BadRequest, "no"),
            R"({"type":"error","proto":1,"id":"r1","code":"bad_request",)"
            R"("message":"no"})");
  // Empty id is omitted, not rendered as "".
  EXPECT_EQ(error_reply("", ServiceError::ParseError, "x"),
            R"({"type":"error","proto":1,"code":"parse_error",)"
            R"("message":"x"})");
}

TEST(Protocol, AcceptedReplyGolden) {
  EXPECT_EQ(accepted_reply("a", "job-1", "00ff00ff00ff00ff"),
            R"({"type":"accepted","proto":1,"id":"a","job":"job-1",)"
            R"("cache_key":"00ff00ff00ff00ff"})");
}

TEST(Protocol, ProgressEventGolden) {
  ProgressEvent ev;
  ev.job = "job-2";
  ev.progress.ops_done = 512;
  ev.progress.ops_total = 2048;
  ev.progress.shards_done = 1;
  ev.progress.shards_total = 4;
  ev.progress.seconds = 0.5;
  ev.progress.ops_per_sec = 1024;
  ev.progress.eta_seconds = 1.5;
  EXPECT_EQ(progress_event_line(ev),
            R"({"type":"progress","proto":1,"job":"job-2","ops_done":512,)"
            R"("ops_total":2048,"shards_done":1,"shards_total":4,)"
            R"("seconds":0.5,"ops_per_sec":1024,"eta_seconds":1.5})");
}

TEST(Protocol, ResultReplyGoldenSplicesReportVerbatim) {
  const std::string report = R"({"schema":"csfma-report-v1","bench":"x"})";
  EXPECT_EQ(result_reply("r", "job-3", true, 0.25, report),
            R"({"type":"result","proto":1,"id":"r","job":"job-3",)"
            R"("cache":"hit","elapsed_s":0.25,)"
            R"("report":{"schema":"csfma-report-v1","bench":"x"}})");
  EXPECT_NE(result_reply("r", "job-3", false, 0.25, report)
                .find(R"("cache":"miss")"),
            std::string::npos);
}

TEST(Protocol, CancelRepliesGolden) {
  EXPECT_EQ(cancel_ok_reply("c", "job-4", "running"),
            R"({"type":"cancel_ok","proto":1,"id":"c","job":"job-4",)"
            R"("state":"running"})");
  EXPECT_EQ(cancelled_reply("c", "job-4", 8192),
            R"({"type":"cancelled","proto":1,"id":"c","job":"job-4",)"
            R"("ops_done":8192})");
  EXPECT_EQ(cancelled_reply("", "job-4", 0),
            R"({"type":"cancelled","proto":1,"job":"job-4","ops_done":0})");
}

TEST(Protocol, StatusReplyGolden) {
  JobStatus j;
  j.job = "job-5";
  j.state = "running";
  j.ops_done = 10;
  j.ops_total = 100;
  j.cache_key = "deadbeefdeadbeef";
  EXPECT_EQ(status_reply("s", {j}),
            R"({"type":"status","proto":1,"id":"s","jobs":[{"job":"job-5",)"
            R"("state":"running","ops_done":10,"ops_total":100,)"
            R"("cache_key":"deadbeefdeadbeef"}]})");
  EXPECT_EQ(status_reply("s", {}),
            R"({"type":"status","proto":1,"id":"s","jobs":[]})");
}

TEST(Protocol, ByeReplyGolden) {
  EXPECT_EQ(bye_reply("z", 3, 1, 0),
            R"({"type":"bye","proto":1,"id":"z","jobs_completed":3,)"
            R"("jobs_cancelled":1,"jobs_failed":0})");
}

TEST(Protocol, EveryReplyParsesBackAsJson) {
  // The emit side must stay within what the accept side understands.
  const std::string lines[] = {
      error_reply("i", ServiceError::Internal, "boom \"quoted\"\n"),
      accepted_reply("i", "job-1", "0123456789abcdef"),
      progress_event_line({"job-1", "", "", {}}),
      result_reply("i", "job-1", false, 1.0 / 3.0, "{}"),
      cancel_ok_reply("i", "job-1", "queued"),
      cancelled_reply("i", "job-1", 1),
      status_reply("i", {{"job-1", "done", 1, 1, "k"}}),
      bye_reply("i", 0, 0, 0),
  };
  for (const std::string& line : lines) {
    JsonValue v;
    JsonParseError err;
    EXPECT_TRUE(json_parse(line, &v, &err))
        << line << " -> " << err.message;
    EXPECT_TRUE(v.is_object()) << line;
    EXPECT_NE(v.find("type"), nullptr) << line;
  }
}

}  // namespace
}  // namespace csfma
