// CacheJournal: the cache-persistence contract — append/load round trips
// reproduce the exact payload bytes, recovery stops at the first torn or
// corrupt record instead of crashing, and compaction rewrites the file to
// the live entries.
#include "service/persist.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "service/cache.hpp"
#include "service/protocol.hpp"

namespace csfma {
namespace {

/// A journal path under the test's scratch dir, deleted on destruction.
class ScratchFile {
 public:
  explicit ScratchFile(const std::string& name)
      : path_(std::string(::testing::TempDir()) + name) {
    std::remove(path_.c_str());
  }
  ~ScratchFile() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  const std::string& path() const { return path_; }

  std::string read() const {
    std::ifstream in(path_, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }

  void write(const std::string& bytes) const {
    std::ofstream out(path_, std::ios::binary);
    out << bytes;
  }

 private:
  std::string path_;
};

std::string key_of(int i) {
  return hex16(0x1000000000000000ULL + (std::uint64_t)i);
}

TEST(CacheJournal, RecordRoundTrip) {
  const std::string key = "0123456789abcdef";
  const std::string payload = R"({"schema":"csfma-report-v1","bench":"x"})";
  const std::string rec = CacheJournal::render_record(key, payload);
  ASSERT_FALSE(rec.empty());
  EXPECT_EQ(rec.back(), '\n');
  std::string k, p;
  EXPECT_TRUE(
      CacheJournal::parse_record(rec.substr(0, rec.size() - 1), &k, &p));
  EXPECT_EQ(k, key);
  EXPECT_EQ(p, payload);
}

TEST(CacheJournal, ParseRejectsEveryTruncationOfARecord) {
  const std::string rec = CacheJournal::render_record(
      "00000000000000aa", R"({"bench":"fma","metrics":{"ops":600}})");
  const std::string line = rec.substr(0, rec.size() - 1);
  std::string k, p;
  // Chop one byte at a time: no prefix of a valid record is itself valid
  // (the declared length and checksum see to that).
  for (std::size_t n = 0; n < line.size(); ++n)
    EXPECT_FALSE(CacheJournal::parse_record(line.substr(0, n), &k, &p))
        << "prefix of " << n << " bytes parsed";
  // Payload corruption flips the checksum.
  std::string flipped = line;
  flipped.back() = flipped.back() == '}' ? ']' : '}';
  EXPECT_FALSE(CacheJournal::parse_record(flipped, &k, &p));
}

TEST(CacheJournal, AppendThenLoadRestoresCache) {
  ScratchFile file("persist_roundtrip.journal");
  {
    CacheJournal journal(file.path(), nullptr);
    journal.append(key_of(1), "payload-one");
    journal.append(key_of(2), "payload-two");
  }
  CacheJournal reload(file.path(), nullptr);
  ResultCache cache(8);
  const JournalLoadStats stats = reload.load(&cache);
  EXPECT_FALSE(stats.missing);
  EXPECT_FALSE(stats.corrupt_tail);
  EXPECT_EQ(stats.records_loaded, 2u);
  EXPECT_EQ(stats.bytes_skipped, 0u);
  EXPECT_EQ(cache.get(key_of(1)), "payload-one");
  EXPECT_EQ(cache.get(key_of(2)), "payload-two");
}

TEST(CacheJournal, LoadSkipsTornTrailingRecord) {
  ScratchFile file("persist_torn.journal");
  {
    CacheJournal journal(file.path(), nullptr);
    journal.append(key_of(1), "good-payload");
  }
  // A crash mid-append leaves a record without its newline.
  const std::string whole = file.read();
  file.write(whole + "00000000000000ff 100 0123456789abcdef {\"torn");
  MetricsRegistry metrics;
  CacheJournal reload(file.path(), &metrics);
  ResultCache cache(8);
  const JournalLoadStats stats = reload.load(&cache);
  EXPECT_EQ(stats.records_loaded, 1u);
  EXPECT_TRUE(stats.corrupt_tail);
  EXPECT_GT(stats.bytes_skipped, 0u);
  EXPECT_EQ(cache.get(key_of(1)), "good-payload");
  EXPECT_EQ(metrics
                .counter("service.journal.skipped_bytes", Stability::Timing)
                .value(),
            stats.bytes_skipped);
}

TEST(CacheJournal, LoadStopsAtFirstCorruptRecord) {
  ScratchFile file("persist_corrupt.journal");
  {
    CacheJournal journal(file.path(), nullptr);
    journal.append(key_of(1), "kept");
    journal.append(key_of(2), "about-to-corrupt");
    journal.append(key_of(3), "after-the-damage");
  }
  // Flip one payload byte of the middle record: its checksum no longer
  // matches, and everything after the first bad record is suspect.
  std::string bytes = file.read();
  const std::size_t at = bytes.find("about-to-corrupt");
  ASSERT_NE(at, std::string::npos);
  bytes[at] = 'X';
  file.write(bytes);
  CacheJournal reload(file.path(), nullptr);
  ResultCache cache(8);
  const JournalLoadStats stats = reload.load(&cache);
  EXPECT_EQ(stats.records_loaded, 1u);
  EXPECT_TRUE(stats.corrupt_tail);
  EXPECT_EQ(cache.get(key_of(1)), "kept");
  EXPECT_EQ(cache.get(key_of(3)), std::nullopt);
}

TEST(CacheJournal, MissingFileAndBadMagic) {
  ScratchFile file("persist_missing.journal");
  {
    CacheJournal journal(file.path(), nullptr);
    EXPECT_TRUE(journal.load(nullptr).missing);
  }
  file.write("not-a-journal\nwhatever\n");
  CacheJournal bad(file.path(), nullptr);
  ResultCache cache(8);
  const JournalLoadStats stats = bad.load(&cache);
  EXPECT_FALSE(stats.missing);
  EXPECT_TRUE(stats.corrupt_tail);
  EXPECT_EQ(stats.records_loaded, 0u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(CacheJournal, CachePutAppendsAndCompactRewrites) {
  ScratchFile file("persist_compact.journal");
  MetricsRegistry metrics;
  CacheJournal journal(file.path(), &metrics);
  ResultCache cache(8, &metrics);
  cache.set_journal(&journal);
  cache.put(key_of(1), "one");
  cache.put(key_of(2), "two");
  cache.put(key_of(1), "one");          // unchanged refresh: no append
  cache.put(key_of(2), "two-revised");  // changed bytes: appended
  EXPECT_EQ(
      metrics.counter("service.journal.appends", Stability::Timing).value(),
      3u);

  cache.set_journal(nullptr);
  ASSERT_TRUE(journal.compact(cache.entries_oldest_first()));
  // The compacted file holds exactly the live entries, once each.
  CacheJournal reload(file.path(), nullptr);
  ResultCache fresh(8);
  const JournalLoadStats stats = reload.load(&fresh);
  EXPECT_EQ(stats.records_loaded, 2u);
  EXPECT_FALSE(stats.corrupt_tail);
  EXPECT_EQ(fresh.get(key_of(1)), "one");
  EXPECT_EQ(fresh.get(key_of(2)), "two-revised");
}

TEST(CacheJournal, AppendToExistingFileKeepsOneHeader) {
  ScratchFile file("persist_reopen.journal");
  {
    CacheJournal journal(file.path(), nullptr);
    journal.append(key_of(1), "first-run");
  }
  {
    CacheJournal journal(file.path(), nullptr);
    journal.append(key_of(2), "second-run");
  }
  const std::string bytes = file.read();
  EXPECT_EQ(bytes.find(kJournalMagic), 0u);
  EXPECT_EQ(bytes.find(kJournalMagic, 1), std::string::npos);
  CacheJournal reload(file.path(), nullptr);
  ResultCache cache(8);
  EXPECT_EQ(reload.load(&cache).records_loaded, 2u);
}

}  // namespace
}  // namespace csfma
