// ServiceLog: the csfma-log-v1 structured server log.  The contract under
// test is what makes --check-log and the client's log-determinism check
// possible: strictly increasing seq, clamped-monotonic ts_ms, every
// Deterministic field top-level and every Timing field under "t", and
// exactly one committed line per Line builder (moves included).
#include "service/log.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "service/json_value.hpp"

namespace csfma {
namespace {

std::vector<std::string> lines_of(std::FILE* f) {
  std::rewind(f);
  std::vector<std::string> lines;
  char buf[4096];
  while (std::fgets(buf, sizeof buf, f) != nullptr) {
    std::string s(buf);
    if (!s.empty() && s.back() == '\n') s.pop_back();
    lines.push_back(std::move(s));
  }
  return lines;
}

TEST(ServiceLog, SeparatesDeterministicFromTimingFields) {
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  {
    auto log = ServiceLog::attach(tmp);
    ASSERT_NE(log, nullptr);
    log->line("request_end")
        .det("conn", "c1")
        .det("req", std::string("req-1"))
        .det("id", "a")
        .det("outcome", "ok")
        .timing("latency_ms", 12.5);
    log->line("journal_compact").det("entries", (std::uint64_t)7);
  }
  const auto lines = lines_of(tmp);
  ASSERT_EQ(lines.size(), 2u);

  JsonValue v;
  JsonParseError err;
  ASSERT_TRUE(json_parse(lines[0], &v, &err)) << lines[0];
  EXPECT_EQ(v.find("kind")->as_string(), "request_end");
  EXPECT_EQ(v.find("seq")->as_int(), 1);
  EXPECT_EQ(v.find("conn")->as_string(), "c1");
  EXPECT_EQ(v.find("outcome")->as_string(), "ok");
  // Timing fields live only under "t", next to the stamped ts_ms.
  EXPECT_EQ(v.find("latency_ms"), nullptr);
  const JsonValue* t = v.find("t");
  ASSERT_NE(t, nullptr);
  EXPECT_GE(t->find("ts_ms")->as_number(), 0.0);
  EXPECT_EQ(t->find("latency_ms")->as_number(), 12.5);

  ASSERT_TRUE(json_parse(lines[1], &v, &err)) << lines[1];
  EXPECT_EQ(v.find("seq")->as_int(), 2);
  EXPECT_EQ(v.find("entries")->as_int(), 7);
  std::fclose(tmp);
}

TEST(ServiceLog, MovedFromLineCommitsExactlyOnce) {
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  {
    auto log = ServiceLog::attach(tmp);
    auto build = [&] {
      ServiceLog::Line l = log->line("cancel");
      l.det("conn", "c");
      return l;  // implicit move out of the lambda
    };
    ServiceLog::Line moved = build();
    moved.commit();
    moved.commit();  // idempotent after an explicit commit
  }                  // destructor of the moved-from temporaries: no line
  EXPECT_EQ(lines_of(tmp).size(), 1u);
  std::fclose(tmp);
}

TEST(ServiceLog, ConcurrentWritersKeepSeqAndTimestampsOrdered) {
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  {
    auto log = ServiceLog::attach(tmp);
    std::vector<std::thread> writers;
    for (int w = 0; w < 4; ++w) {
      writers.emplace_back([&log, w] {
        for (int i = 0; i < 50; ++i)
          log->line("reject").det("conn", "c" + std::to_string(w));
      });
    }
    for (auto& t : writers) t.join();
  }
  const auto lines = lines_of(tmp);
  ASSERT_EQ(lines.size(), 200u);
  // seq is assigned under the writer mutex together with the fwrite, so
  // the file order IS the seq order, gap-free, with non-decreasing ts.
  std::int64_t expect_seq = 1;
  double last_ts = 0.0;
  for (const std::string& line : lines) {
    JsonValue v;
    JsonParseError err;
    ASSERT_TRUE(json_parse(line, &v, &err)) << line;
    EXPECT_EQ(v.find("seq")->as_int(), expect_seq++);
    const double ts = v.find("t")->find("ts_ms")->as_number();
    EXPECT_GE(ts, last_ts);
    last_ts = ts;
  }
  std::fclose(tmp);
}

TEST(ServiceLog, OpenFailureReturnsNull) {
  EXPECT_EQ(ServiceLog::open("/nonexistent-dir/x/y/serve.log"), nullptr);
}

}  // namespace
}  // namespace csfma
