#!/usr/bin/env python3
"""Unit tests for scripts/bench_compare.py: pass / warn / fail exit codes
and the structural and cross-host rules, on synthetic BENCH_*.json files.
Registered with CTest (see tests/CMakeLists.txt); stdlib only."""
import copy
import json
import os
import subprocess
import sys
import tempfile
import unittest

REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
COMPARE = os.path.join(REPO, "scripts", "bench_compare.py")


def make_doc(median=1.0, mad=0.01, host="testhost/x86_64",
             phases=("alpha", "beta")):
    doc = {
        "schema": "csfma-report-v1",
        "bench": "synthetic",
        "meta": {"git": "0000000"},
        "metrics": {},
        "timing": {},
        "tables": {},
        "sections": {"bench_host_perf": {
            "host": host,
            "hw_counters": False,
            "reps": 5,
            "warmup": 1,
            "phases": {},
            "profiler": {"hw_counters": False, "scopes": {}},
        }},
    }
    for name in phases:
        doc["sections"]["bench_host_perf"]["phases"][name] = {
            "median_s": median, "mad_s": mad, "mean_s": median,
            "min_s": median - mad, "max_s": median + mad,
            "kept": 5, "rejected": 0, "ops_per_rep": 100,
            "ops_per_sec": 100.0 / median,
            "samples_s": [median] * 5,
        }
    return doc


class BenchCompareTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()

    def tearDown(self):
        self.tmp.cleanup()

    def write(self, name, doc):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w") as f:
            json.dump(doc, f)
        return path

    def run_compare(self, *args):
        return subprocess.run([sys.executable, COMPARE, *args],
                              capture_output=True, text=True)

    def test_identical_runs_pass(self):
        a = self.write("a.json", make_doc())
        b = self.write("b.json", make_doc())
        r = self.run_compare(a, b)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("no regression", r.stdout)

    def test_small_regression_warns_but_passes(self):
        a = self.write("a.json", make_doc(median=1.0, mad=0.001))
        b = self.write("b.json", make_doc(median=1.08, mad=0.001))
        r = self.run_compare(a, b)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("WARN", r.stdout)

    def test_large_regression_fails(self):
        a = self.write("a.json", make_doc(median=1.0))
        b = self.write("b.json", make_doc(median=1.2))  # +20%
        r = self.run_compare(a, b)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("FAIL", r.stderr)

    def test_noise_band_suppresses_warning(self):
        # +7% delta inside a ~12% noise band: ok, not even a warn.
        a = self.write("a.json", make_doc(median=1.0, mad=0.02))
        b = self.write("b.json", make_doc(median=1.07, mad=0.02))
        r = self.run_compare(a, b)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertNotIn("WARN", r.stdout)

    def test_noisy_phase_is_flagged(self):
        # A noise band beyond the fail threshold cannot be gated reliably:
        # the tool warns but a within-threshold delta still passes.
        a = self.write("a.json", make_doc(median=1.0, mad=0.05))
        b = self.write("b.json", make_doc(median=1.05, mad=0.05))
        r = self.run_compare(a, b)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("exceeds the fail threshold", r.stdout)

    def test_improvement_passes(self):
        a = self.write("a.json", make_doc(median=1.0))
        b = self.write("b.json", make_doc(median=0.7))
        r = self.run_compare(a, b)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("improved", r.stdout)

    def test_missing_phase_is_structural_failure(self):
        # Structural mismatches exit 3, distinct from perf regressions (1).
        a = self.write("a.json", make_doc(phases=("alpha", "beta")))
        b = self.write("b.json", make_doc(phases=("alpha",)))
        r = self.run_compare(a, b)
        self.assertEqual(r.returncode, 3, r.stdout + r.stderr)
        self.assertIn("beta", r.stderr)

    def test_added_phase_is_structural_failure(self):
        a = self.write("a.json", make_doc(phases=("alpha",)))
        b = self.write("b.json", make_doc(phases=("alpha", "gamma")))
        r = self.run_compare(a, b)
        self.assertEqual(r.returncode, 3, r.stdout + r.stderr)

    def test_structural_outranks_perf_regression(self):
        a = self.write("a.json", make_doc(median=1.0,
                                          phases=("alpha", "beta")))
        b = self.write("b.json", make_doc(median=1.5, phases=("alpha",)))
        r = self.run_compare(a, b)
        self.assertEqual(r.returncode, 3, r.stdout + r.stderr)

    def test_cross_host_is_structure_only(self):
        # A 50% regression on a DIFFERENT machine must not fail...
        a = self.write("a.json", make_doc(median=1.0, host="ci/x86_64"))
        b = self.write("b.json", make_doc(median=1.5, host="dev/aarch64"))
        r = self.run_compare(a, b)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("structure-only", r.stdout)
        # ...unless forced.
        r = self.run_compare("--force-cross-host", a, b)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)

    def test_cross_host_note_names_differing_fields(self):
        a = self.write("a.json", make_doc(host="ci/x86_64"))
        b = self.write("b.json", make_doc(host="dev/x86_64"))
        r = self.run_compare(a, b)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("nodename ('ci' vs 'dev')", r.stdout)
        self.assertNotIn("machine", r.stdout)  # machine matched

        b2 = self.write("b2.json", make_doc(host="dev/aarch64"))
        r = self.run_compare(a, b2)
        self.assertIn("nodename ('ci' vs 'dev')", r.stdout)
        self.assertIn("machine ('x86_64' vs 'aarch64')", r.stdout)

    def test_require_same_host_fails_with_exit_4(self):
        a = self.write("a.json", make_doc(host="ci/x86_64"))
        b = self.write("b.json", make_doc(host="dev/x86_64"))
        r = self.run_compare("--require-same-host", a, b)
        self.assertEqual(r.returncode, 4, r.stdout + r.stderr)
        self.assertIn("nodename", r.stderr)
        # Same fingerprint: the flag changes nothing.
        c = self.write("c.json", make_doc(host="ci/x86_64"))
        r = self.run_compare("--require-same-host", a, c)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        # Exclusive with --force-cross-host.
        r = self.run_compare("--require-same-host", "--force-cross-host",
                             a, b)
        self.assertEqual(r.returncode, 2, r.stdout + r.stderr)

    def test_cross_host_still_checks_structure(self):
        a = self.write("a.json", make_doc(host="ci/x86_64"))
        b = self.write("b.json", make_doc(host="dev/aarch64",
                                          phases=("alpha",)))
        r = self.run_compare(a, b)
        self.assertEqual(r.returncode, 3, r.stdout + r.stderr)

    def test_bench_mismatch_is_structural_failure(self):
        a = self.write("a.json", make_doc())
        other = make_doc()
        other["bench"] = "different"
        b = self.write("b.json", other)
        r = self.run_compare(a, b)
        self.assertEqual(r.returncode, 3, r.stdout + r.stderr)

    def test_malformed_file_is_usage_error(self):
        a = self.write("a.json", make_doc())
        bad = copy.deepcopy(make_doc())
        del bad["sections"]["bench_host_perf"]["phases"]
        b = self.write("b.json", bad)
        r = self.run_compare(a, b)
        self.assertEqual(r.returncode, 2, r.stdout + r.stderr)

    def test_custom_thresholds(self):
        a = self.write("a.json", make_doc(median=1.0, mad=0.001))
        b = self.write("b.json", make_doc(median=1.08, mad=0.001))
        r = self.run_compare("--fail-pct", "6", a, b)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)

    def write_history(self, medians, host="testhost/x86_64", mad=0.001):
        """One BENCH_*.json snapshot per median, under tmp/history/."""
        hist = os.path.join(self.tmp.name, "history")
        os.makedirs(hist, exist_ok=True)
        for i, med in enumerate(medians):
            self.write(os.path.join("history", f"BENCH_run{i:03}.json"),
                       make_doc(median=med, mad=mad, host=host))
        return hist

    def test_history_tightens_the_fail_gate(self):
        # Six stable snapshots (~0.1% scatter): the derived gate clamps
        # to the 5% floor, so a +8% regression — fine under the global
        # 15% gate — now fails.
        hist = self.write_history([1.0, 1.001, 0.999, 1.0, 1.001, 0.999])
        a = self.write("a.json", make_doc(median=1.0, mad=0.001))
        b = self.write("b.json", make_doc(median=1.08, mad=0.001))
        r = self.run_compare(a, b)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)  # global ok
        r = self.run_compare("--history", hist, a, b)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("derived from 6 snapshot(s)", r.stderr)
        self.assertIn("%*", r.stdout)  # derived gates are marked

    def test_history_never_loosens_beyond_global(self):
        # Wildly scattered history must not push the gate past the
        # global fail threshold: a +20% regression still fails.
        hist = self.write_history([1.0, 1.4, 0.7, 1.3, 0.8, 1.2])
        a = self.write("a.json", make_doc(median=1.0, mad=0.001))
        b = self.write("b.json", make_doc(median=1.2, mad=0.001))
        r = self.run_compare("--history", hist, a, b)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)

    def test_thin_history_falls_back_to_global(self):
        hist = self.write_history([1.0, 1.001, 0.999])  # < MIN_HISTORY
        a = self.write("a.json", make_doc(median=1.0, mad=0.001))
        b = self.write("b.json", make_doc(median=1.08, mad=0.001))
        r = self.run_compare("--history", hist, a, b)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("too thin", r.stdout)

    def test_cross_host_history_is_ignored(self):
        # Plenty of snapshots, all from another machine: fall back.
        hist = self.write_history([1.0] * 6, host="other/aarch64")
        a = self.write("a.json", make_doc(median=1.0, mad=0.001))
        b = self.write("b.json", make_doc(median=1.08, mad=0.001))
        r = self.run_compare("--history", hist, a, b)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("too thin", r.stdout)

    def test_history_excluded_from_trend_mode(self):
        r = self.run_compare("--trend", self.tmp.name, "--history",
                             self.tmp.name)
        self.assertEqual(r.returncode, 2, r.stdout + r.stderr)

    def test_trend_table(self):
        os.mkdir(os.path.join(self.tmp.name, "run1"))
        os.mkdir(os.path.join(self.tmp.name, "run2"))
        self.write(os.path.join("run1", "BENCH_synthetic.json"),
                   make_doc(median=1.0))
        self.write(os.path.join("run2", "BENCH_synthetic.json"),
                   make_doc(median=1.1))
        r = self.run_compare("--trend", self.tmp.name)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("== synthetic ==", r.stdout)
        self.assertIn("+10.0%", r.stdout)


if __name__ == "__main__":
    unittest.main()
