// Report: csfma-report-v1 schema rendering, the deterministic JSON number
// rules, the metrics/timing stability split, CSV export, and the shared
// --json/--csv/--trace CLI plumbing.
#include "telemetry/report.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "common/check.hpp"
#include "telemetry/json.hpp"

namespace csfma {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(Json, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
}

TEST(Json, DoublesRenderDeterministically) {
  EXPECT_EQ(json_double(0.5), "0.5");
  EXPECT_EQ(json_double(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_double(std::numeric_limits<double>::infinity()), "null");
  // %.17g round-trips: the parsed value is bit-identical.
  const double v = 0.1 + 0.2;
  EXPECT_EQ(std::stod(json_double(v)), v);
}

TEST(Report, EmitsSchemaBenchAndAutoGitMeta) {
  Report r("unit_test");
  r.meta("seed", (std::uint64_t)42);
  std::string j = r.to_json();
  EXPECT_NE(j.find("\"schema\":\"csfma-report-v1\""), std::string::npos);
  EXPECT_NE(j.find("\"bench\":\"unit_test\""), std::string::npos);
  EXPECT_NE(j.find("\"git\":"), std::string::npos);
  EXPECT_NE(j.find("\"seed\":\"42\""), std::string::npos);
}

TEST(Report, SplitsScalarsByStability) {
  Report r("unit_test");
  r.metric("det.value", (std::uint64_t)7);
  r.timing("wall.seconds", 0.25);
  std::string j = r.to_json();
  // "det.value" must be inside "metrics", "wall.seconds" inside "timing".
  auto metrics_at = j.find("\"metrics\":");
  auto timing_at = j.find("\"timing\":");
  ASSERT_NE(metrics_at, std::string::npos);
  ASSERT_NE(timing_at, std::string::npos);
  auto det_at = j.find("\"det.value\":7");
  auto wall_at = j.find("\"wall.seconds\":0.25");
  ASSERT_NE(det_at, std::string::npos);
  ASSERT_NE(wall_at, std::string::npos);
  EXPECT_GT(det_at, metrics_at);
  EXPECT_LT(det_at, timing_at);
  EXPECT_GT(wall_at, timing_at);
}

TEST(Report, AttachMetricsRoutesByStabilityTag) {
  MetricsRegistry reg;
  reg.counter("engine.ops").add(100);
  reg.gauge("engine.batch.seconds", Stability::Timing).set(1.5);
  reg.histogram("engine.shard.ops", {8.0, 64.0}).observe(10.0);
  reg.histogram("engine.shard.seconds", {0.1}, Stability::Timing).observe(0.05);
  Report r("unit_test");
  r.attach_metrics(reg);
  std::string j = r.to_json();
  auto timing_at = j.find("\"timing\":");
  EXPECT_LT(j.find("\"engine.ops\":100"), timing_at);
  EXPECT_LT(j.find("\"engine.shard.ops\""), timing_at);
  EXPECT_GT(j.find("\"engine.batch.seconds\""), timing_at);
  EXPECT_GT(j.find("\"engine.shard.seconds\""), timing_at);
  // Histograms render with their full shape.
  EXPECT_NE(j.find("\"bounds\":[8,64]"), std::string::npos);
  EXPECT_NE(j.find("\"counts\":[0,1,0]"), std::string::npos);
}

TEST(Report, NonFiniteMetricsRenderAsNull) {
  Report r("unit_test");
  r.metric("bad", std::nan(""));
  std::string j = r.to_json();
  EXPECT_NE(j.find("\"bad\":null"), std::string::npos);
}

TEST(Report, TablesRejectRaggedRows) {
  Report r("unit_test");
  EXPECT_THROW(
      r.table("t", {"a", "b"}, {{ReportCell("x")}}),  // 1 cell, 2 columns
      CheckError);
}

TEST(Report, CsvQuotesAndTypesCells) {
  Report r("unit_test");
  r.table("t", {"arch", "luts", "ratio"},
          {{"PCS, \"wide\"", (std::uint64_t)5832, 0.5},
           {"FCS-FMA", (std::uint64_t)4685, 1.25}});
  std::string path = testing::TempDir() + "report_test_t.csv";
  r.write_csv(path, "t");
  std::string csv = slurp(path);
  EXPECT_NE(csv.find("arch,luts,ratio\n"), std::string::npos);
  EXPECT_NE(csv.find("\"PCS, \"\"wide\"\"\",5832,0.5\n"), std::string::npos);
  EXPECT_NE(csv.find("FCS-FMA,4685,1.25\n"), std::string::npos);
  EXPECT_THROW(r.write_csv(path, "missing"), CheckError);
}

TEST(Report, WriteJsonRoundTripsThroughDisk) {
  Report r("unit_test");
  r.metric("x", (std::uint64_t)1);
  r.section("activity", "{\"total_toggles\":0}");
  std::string path = testing::TempDir() + "report_test_r.json";
  r.write_json(path);
  EXPECT_EQ(slurp(path), r.to_json() + "\n");
  EXPECT_NE(r.to_json().find("\"activity\":{\"total_toggles\":0}"),
            std::string::npos);
}

TEST(ReportCli, ExtractsFlagsAndPreservesPositionals) {
  const char* raw[] = {"bench",  "100",     "--json", "/tmp/a.json",
                       "4",      "--trace", "/tmp/t.json", "--csv",
                       "/tmp/c.csv"};
  std::vector<char*> argv;
  for (const char* a : raw) argv.push_back(const_cast<char*>(a));
  int argc = (int)argv.size();
  ReportCliArgs out = extract_report_args(argc, argv.data());
  EXPECT_EQ(out.json_path, "/tmp/a.json");
  EXPECT_EQ(out.trace_path, "/tmp/t.json");
  EXPECT_EQ(out.csv_path, "/tmp/c.csv");
  ASSERT_EQ(argc, 3);
  EXPECT_STREQ(argv[0], "bench");
  EXPECT_STREQ(argv[1], "100");
  EXPECT_STREQ(argv[2], "4");
}

TEST(ReportCli, NoFlagsLeavesArgvUntouched) {
  const char* raw[] = {"bench", "100"};
  std::vector<char*> argv;
  for (const char* a : raw) argv.push_back(const_cast<char*>(a));
  int argc = (int)argv.size();
  ReportCliArgs out = extract_report_args(argc, argv.data());
  EXPECT_TRUE(out.json_path.empty());
  EXPECT_EQ(argc, 2);
}

}  // namespace
}  // namespace csfma
