// HostProfiler / ProfScope / bench-harness statistics: the host-side
// performance observability layer (telemetry/perf.hpp, bench/harness.hpp).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "engine/sim_engine.hpp"
#include "harness.hpp"
#include "telemetry/perf.hpp"

namespace csfma {
namespace {

// ---------------------------------------------------------------- robust
// stats (the harness's warmup/repeat/outlier logic)

TEST(RobustStats, MedianOfOddAndEven) {
  EXPECT_DOUBLE_EQ(median_of({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median_of({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(median_of({}), 0.0);
}

TEST(RobustStats, MadRejectsSchedulerHiccup) {
  // Nine tight samples and one 10x outlier (a descheduled rep): the
  // outlier must not shift the median or survive rejection.
  std::vector<double> s = {1.00, 1.01, 0.99, 1.02, 0.98,
                           1.00, 1.01, 0.99, 1.00, 10.0};
  RobustStats st = robust_stats(s);
  EXPECT_EQ(st.kept, 9u);
  EXPECT_EQ(st.rejected, 1u);
  EXPECT_NEAR(st.median, 1.0, 0.02);
  EXPECT_LT(st.max, 2.0);  // recomputed on survivors only
  EXPECT_NEAR(st.mean, 1.0, 0.02);
}

TEST(RobustStats, ZeroMadKeepsEverything) {
  // All-equal samples have MAD 0: nothing is rejected (the guard against
  // rejecting the whole set).
  RobustStats st = robust_stats({2.0, 2.0, 2.0, 2.0});
  EXPECT_EQ(st.kept, 4u);
  EXPECT_EQ(st.rejected, 0u);
  EXPECT_DOUBLE_EQ(st.median, 2.0);
  EXPECT_DOUBLE_EQ(st.mad, 0.0);
}

TEST(RobustStats, InliersSurviveModerateSpread) {
  std::vector<double> s = {1.0, 1.1, 0.9, 1.05, 0.95};
  RobustStats st = robust_stats(s);
  EXPECT_EQ(st.kept, 5u);
  EXPECT_EQ(st.rejected, 0u);
}

// ------------------------------------------------------------- profiler

TEST(HostProfiler, GracefulDegradationWithoutPerfEvents) {
  // Requesting counters must never fail; on hosts without perf_event the
  // profiler runs timers-only and every scope exports zero counts.
  HostProfiler prof(/*want_hw_counters=*/true);
  EXPECT_EQ(prof.hw_enabled(), perf_events_available());
  {
    ProfScope scope(&prof, "work");
    scope.items(5);
    volatile double sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + 1.0;
    (void)sink;
  }
  auto snap = prof.snapshot();
  ASSERT_EQ(snap.count("work"), 1u);
  const ScopeStats& s = snap["work"];
  EXPECT_EQ(s.calls, 1u);
  EXPECT_EQ(s.items, 5u);
  EXPECT_GT(s.wall_ns, 0u);
  if (!perf_events_available()) {
    EXPECT_FALSE(s.hw.available);
    EXPECT_EQ(s.hw.cycles, 0u);
    EXPECT_EQ(s.hw.instructions, 0u);
    EXPECT_EQ(s.hw.cache_misses, 0u);
  }
  // The export structure is identical either way, only the flag differs.
  const std::string json = prof.to_json();
  EXPECT_NE(json.find("\"hw_counters\""), std::string::npos);
  EXPECT_NE(json.find("\"cycles\""), std::string::npos);
}

TEST(HostProfiler, NullProfilerScopeIsNoOp) {
  ProfScope scope(nullptr, "ignored");
  scope.items(123);  // must not crash or record anywhere
}

TEST(HostProfiler, MergeFoldsByName) {
  HostProfiler a(false), b(false);
  a.record("x", ScopeStats{1, 10, 100, 90, {}});
  b.record("x", ScopeStats{2, 20, 200, 180, {}});
  b.record("y", ScopeStats{1, 5, 50, 40, {}});
  a.merge_from(b);
  auto snap = a.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap["x"].calls, 3u);
  EXPECT_EQ(snap["x"].items, 30u);
  EXPECT_EQ(snap["x"].wall_ns, 300u);
  EXPECT_EQ(snap["y"].items, 5u);
}

/// Scope structure and the Deterministic fields (calls, items) of the
/// engine's per-shard profilers, merged shard-in-order, must not depend
/// on the worker thread count; only the nanosecond fields may.
TEST(HostProfiler, EngineMergeIsThreadCountInvariant) {
  auto run = [](int threads) {
    HostProfiler prof(false);
    RandomTripleSource src(42, 4000);
    EngineConfig cfg;
    cfg.unit = UnitKind::Pcs;
    cfg.threads = threads;
    cfg.shard_ops = 500;  // 8 shards
    cfg.profiler = &prof;
    SimEngine engine(cfg);
    // run_stream so the consume path is instrumented too (run_batch has
    // no consume callback and therefore no engine.consume scope).
    (void)engine.run_stream(
        src, [](std::uint64_t, const PFloat*, std::size_t) {});
    return prof.snapshot();
  };
  auto one = run(1), four = run(4);
  ASSERT_EQ(one.size(), four.size());
  for (const auto& [name, s1] : one) {
    ASSERT_EQ(four.count(name), 1u) << name;
    EXPECT_EQ(s1.calls, four[name].calls) << name;
    EXPECT_EQ(s1.items, four[name].items) << name;
  }
  // The instrumented hot paths are all present and attribute every op.
  ASSERT_EQ(one.count("engine.simulate"), 1u);
  EXPECT_EQ(one["engine.simulate"].items, 4000u);
  EXPECT_EQ(one["engine.simulate"].calls, 8u);
  EXPECT_EQ(one.count("engine.fill"), 1u);
  EXPECT_EQ(one.count("engine.consume"), 1u);
  EXPECT_EQ(one.count("engine.merge"), 1u);
}

// ------------------------------------------------------------- progress

TEST(EngineProgress, FinalBeatReportsCompletion) {
  RandomTripleSource src(7, 3000);
  EngineConfig cfg;
  cfg.unit = UnitKind::Classic;
  cfg.threads = 2;
  cfg.shard_ops = 250;  // 12 shards
  cfg.progress_interval_s = 0.0;  // beat on every shard
  std::atomic<int> beats{0};
  std::uint64_t last_ops = 0, last_shards = 0;
  bool monotone = true;
  cfg.progress = [&](const EngineProgress& p) {
    ++beats;
    if (p.ops_done < last_ops || p.shards_done < last_shards)
      monotone = false;  // callback is serialized, so plain reads are safe
    last_ops = p.ops_done;
    last_shards = p.shards_done;
    EXPECT_EQ(p.ops_total, 3000u);
    EXPECT_EQ(p.shards_total, 12u);
    EXPECT_LE(p.ops_done, p.ops_total);
  };
  SimEngine engine(cfg);
  (void)engine.run_batch(src);
  EXPECT_GE(beats.load(), 1);
  EXPECT_TRUE(monotone);
  // The forced 100% beat after the join.
  EXPECT_EQ(last_ops, 3000u);
  EXPECT_EQ(last_shards, 12u);
}

TEST(EngineProgress, LongIntervalStillEmitsFinalBeat) {
  RandomTripleSource src(9, 500);
  EngineConfig cfg;
  cfg.threads = 1;
  cfg.shard_ops = 100;
  cfg.progress_interval_s = 3600.0;  // never due during the run
  std::vector<EngineProgress> beats;
  cfg.progress = [&](const EngineProgress& p) { beats.push_back(p); };
  SimEngine engine(cfg);
  (void)engine.run_batch(src);
  ASSERT_EQ(beats.size(), 1u);  // only the forced completion beat
  EXPECT_EQ(beats.back().ops_done, 500u);
}

// -------------------------------------------------------------- harness

TEST(BenchHarness, ExtractHarnessArgsStripsFlags) {
  const char* raw[] = {"bench",     "1000",   "--reps", "9", "--warmup",
                       "2",         "--progress", "--no-hw-counters",
                       "--bench-out", "out.json", "4"};
  int argc = 11;
  std::vector<char*> argv;
  for (const char* a : raw) argv.push_back(const_cast<char*>(a));
  HarnessOptions o = extract_harness_args(argc, argv.data());
  EXPECT_EQ(o.reps, 9);
  EXPECT_EQ(o.warmup, 2);
  EXPECT_TRUE(o.progress);
  EXPECT_FALSE(o.hw_counters);
  EXPECT_EQ(o.bench_out, "out.json");
  // Positionals survive in order.
  ASSERT_EQ(argc, 3);
  EXPECT_STREQ(argv[0], "bench");
  EXPECT_STREQ(argv[1], "1000");
  EXPECT_STREQ(argv[2], "4");
}

TEST(BenchHarness, MeasureRunsWarmupPlusReps) {
  HarnessOptions o;
  o.reps = 3;
  o.warmup = 2;
  o.bench_out = "-";
  BenchHarness h("unit_test", o);
  int calls = 0;
  RobustStats st = h.measure("phase", [&] { ++calls; }, 7);
  EXPECT_EQ(calls, 5);          // 2 warmup + 3 timed
  EXPECT_EQ(st.kept + st.rejected, 3u);
  auto snap = h.profiler().snapshot();
  ASSERT_EQ(snap.count("bench.phase"), 1u);
  EXPECT_EQ(snap["bench.phase"].calls, 3u);   // timed reps only
  EXPECT_EQ(snap["bench.phase"].items, 21u);  // 3 reps x 7 ops
}

TEST(BenchHarness, AttachEmitsHostTimingAndSection) {
  HarnessOptions o;
  o.reps = 2;
  o.warmup = 0;
  o.bench_out = "-";
  BenchHarness h("unit_test", o);
  h.measure("p", [] {}, 10);
  Report report("unit_test");
  h.attach(report);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"host.p.median_s\""), std::string::npos);
  EXPECT_NE(json.find("\"host.p.ops_per_sec\""), std::string::npos);
  EXPECT_NE(json.find("\"bench_host_perf\""), std::string::npos);
  EXPECT_NE(json.find("\"samples_s\""), std::string::npos);
  EXPECT_EQ(h.write_baseline(), "");  // "-" disables the baseline
}

}  // namespace
}  // namespace csfma
