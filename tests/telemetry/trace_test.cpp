// TraceSession / TraceSpan: chrome://tracing export shape, stable event
// ordering, and the null-session zero-cost contract.
#include "telemetry/trace.hpp"

#include <gtest/gtest.h>

namespace csfma {
namespace {

TEST(Trace, CompleteAndInstantEventsRoundTrip) {
  TraceSession session;
  session.add_complete("simulate", "engine", 2, 100, 50,
                       {{"ops", "8192", true}, {"unit", "PCS-FMA", false}});
  session.add_instant("merge_done", "engine", 0);
  ASSERT_EQ(session.size(), 2u);
  auto evs = session.events();
  EXPECT_EQ(evs[0].name, "simulate");
  EXPECT_EQ(evs[0].tid, 2);
  EXPECT_EQ(evs[0].dur_us, 50u);
  EXPECT_FALSE(evs[0].instant);
  EXPECT_TRUE(evs[1].instant);
}

TEST(Trace, JsonIsChromeTraceFormatSortedByTsThenTid) {
  TraceSession session;
  // Submit out of order, as racing workers would.
  session.add_complete("late", "engine", 1, 200, 10);
  session.add_complete("early", "engine", 3, 50, 10);
  session.add_complete("tie_hi_lane", "engine", 2, 50, 10);
  std::string j = session.to_json();
  EXPECT_NE(j.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(j.find("\"traceEvents\":["), std::string::npos);
  // Sorted by (ts, tid): early(tid 3 but would sort after tie at same ts?
  // no — tid 2 < 3) => tie_hi_lane, early, late.
  EXPECT_LT(j.find("tie_hi_lane"), j.find("\"early\""));
  EXPECT_LT(j.find("\"early\""), j.find("\"late\""));
  EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos);
}

TEST(Trace, ArgsRenderAsNumbersOrStrings) {
  TraceSession session;
  {
    TraceSpan span(&session, "fill", "engine", 1);
    span.arg("ops", (std::uint64_t)8192);
    span.arg("unit", "FCS-FMA");
  }
  std::string j = session.to_json();
  EXPECT_NE(j.find("\"ops\":8192"), std::string::npos);
  EXPECT_NE(j.find("\"unit\":\"FCS-FMA\""), std::string::npos);
}

TEST(Trace, SpanRecordsItsLifetime) {
  TraceSession session;
  {
    TraceSpan span(&session, "shard", "engine", 0);
    span.arg("index", (std::uint64_t)3);
  }
  ASSERT_EQ(session.size(), 1u);
  auto evs = session.events();
  EXPECT_EQ(evs[0].name, "shard");
  ASSERT_EQ(evs[0].args.size(), 1u);
  EXPECT_EQ(evs[0].args[0].key, "index");
}

TEST(Trace, NullSessionSpanIsANoOp) {
  // The disabled path every hot loop takes: must not crash, must not
  // record, must not require a session anywhere.
  TraceSpan span(nullptr, "simulate", "engine", 7);
  span.arg("ops", (std::uint64_t)1);
  span.arg("unit", "x");
  // Destructor runs at scope exit; nothing to assert beyond "no crash".
}

TEST(Trace, CapBoundsRetainedEventsAndCountsDrops) {
  TraceSession session;
  EXPECT_EQ(session.cap(), 0u);  // unbounded by default
  session.set_cap(2);
  EXPECT_EQ(session.cap(), 2u);
  session.add_complete("a", "engine", 0, 0, 1);
  session.add_instant("b", "engine", 0);
  session.add_complete("c", "engine", 0, 2, 1);  // refused: cap reached
  session.add_instant("d", "engine", 0);         // refused too
  EXPECT_EQ(session.size(), 2u);
  EXPECT_EQ(session.dropped(), 2u);
  auto evs = session.events();
  EXPECT_EQ(evs[0].name, "a");
  EXPECT_EQ(evs[1].name, "b");
  // Raising the cap re-admits new events; the drop count is cumulative.
  session.set_cap(3);
  session.add_instant("e", "engine", 0);
  session.add_instant("f", "engine", 0);
  EXPECT_EQ(session.size(), 3u);
  EXPECT_EQ(session.dropped(), 3u);
}

TEST(Trace, TimestampsAreMonotonicWithinASession) {
  TraceSession session;
  std::uint64_t a = session.now_us();
  std::uint64_t b = session.now_us();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace csfma
