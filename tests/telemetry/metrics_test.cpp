// MetricsRegistry: counter/gauge/histogram semantics, bucket assignment,
// and — the property the whole subsystem is built around — deterministic
// merge: folding per-shard registries in shard order produces the same
// exported JSON as a single sequential registry, mirroring
// ActivityRecorder::merge_from.
#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <thread>
#include <vector>

#include "common/check.hpp"

namespace csfma {
namespace {

TEST(Metrics, CounterAddsMonotonically) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Metrics, CounterIsThreadSafe) {
  Counter c;
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w)
    workers.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.add(2);
    });
  for (auto& t : workers) t.join();
  EXPECT_EQ(c.value(), 80000u);
}

TEST(Metrics, GaugeTracksLastWriteAndSetFlag) {
  Gauge g;
  EXPECT_FALSE(g.is_set());
  g.set(1.5);
  g.set(-2.0);
  EXPECT_TRUE(g.is_set());
  EXPECT_DOUBLE_EQ(g.value(), -2.0);
}

TEST(Metrics, HistogramBucketsAreInclusiveUpperBounds) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1      -> bucket 0
  h.observe(1.0);    // == bound  -> bucket 0 (inclusive)
  h.observe(1.0001); //           -> bucket 1
  h.observe(10.0);   //           -> bucket 1
  h.observe(99.0);   //           -> bucket 2
  h.observe(100.5);  // overflow  -> bucket 3
  HistogramSnapshot s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 2u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 1u);
  EXPECT_EQ(s.count, 6u);
  EXPECT_DOUBLE_EQ(s.sum, 0.5 + 1.0 + 1.0001 + 10.0 + 99.0 + 100.5);
}

TEST(Metrics, HistogramMergeIsElementWiseAddition) {
  Histogram a({1.0, 2.0}), b({1.0, 2.0});
  a.observe(0.5);
  b.observe(1.5);
  b.observe(5.0);
  a.merge_from(b);
  HistogramSnapshot s = a.snapshot();
  EXPECT_EQ(s.counts[0], 1u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 7.0);
}

TEST(Metrics, HistogramMergeRejectsMismatchedGeometry) {
  Histogram a({1.0, 2.0}), b({1.0, 3.0});
  b.observe(0.5);
  EXPECT_THROW(a.merge_from(b), CheckError);
}

TEST(Metrics, RegistryReturnsStableFindOrCreateReferences) {
  MetricsRegistry reg;
  Counter& c1 = reg.counter("x");
  Counter& c2 = reg.counter("x");
  EXPECT_EQ(&c1, &c2);
  c1.add(3);
  EXPECT_EQ(reg.counter("x").value(), 3u);
}

TEST(Metrics, RegistryRejectsStabilityRedefinition) {
  MetricsRegistry reg;
  reg.counter("c", Stability::Deterministic);
  EXPECT_THROW(reg.counter("c", Stability::Timing), CheckError);
  reg.histogram("h", {1.0, 2.0});
  EXPECT_THROW(reg.histogram("h", {1.0, 3.0}), CheckError);
}

// The core determinism property: shard the same updates across per-shard
// registries, merge in shard order, and the exported JSON is byte-identical
// to a single registry that saw everything sequentially.  Timing entries
// participate in the merge too — they are exempt from cross-thread-count
// identity, not from merge correctness.
TEST(Metrics, ShardedMergeMatchesSequentialJson) {
  auto feed = [](MetricsRegistry& reg, int lo, int hi) {
    for (int i = lo; i < hi; ++i) {
      reg.counter("ops").add(2);
      reg.histogram("lat", {1.0, 4.0, 16.0}).observe((double)(i % 20));
    }
    reg.gauge("last", Stability::Timing).set(1.0);
  };
  MetricsRegistry sequential;
  feed(sequential, 0, 100);

  MetricsRegistry merged;
  const int cuts[] = {0, 13, 37, 64, 100};
  for (int s = 0; s + 1 < 5; ++s) {
    MetricsRegistry shard;
    feed(shard, cuts[s], cuts[s + 1]);
    merged.merge_from(shard);
  }
  // merge adds counters/buckets, so the gauge set per shard collapses and
  // counters become 4x the per-shard rate — but equal to sequential totals.
  EXPECT_EQ(merged.to_json(), sequential.to_json());
}

TEST(Metrics, MergeOrderDoesNotChangeTotals) {
  MetricsRegistry a, b, ab, ba;
  a.counter("n").add(5);
  a.histogram("h", {1.0}).observe(0.5);
  b.counter("n").add(7);
  b.histogram("h", {1.0}).observe(2.0);
  ab.merge_from(a);
  ab.merge_from(b);
  ba.merge_from(b);
  ba.merge_from(a);
  EXPECT_EQ(ab.to_json(), ba.to_json());
  EXPECT_EQ(ab.counter("n").value(), 12u);
}

TEST(Metrics, ToJsonTagsStabilityAndSortsKeys) {
  MetricsRegistry reg;
  reg.counter("b.ops").add(1);
  reg.counter("a.ops").add(2);
  reg.gauge("t.secs", Stability::Timing).set(0.25);
  std::string j = reg.to_json();
  // Sorted map order: "a.ops" before "b.ops".
  EXPECT_LT(j.find("a.ops"), j.find("b.ops"));
  EXPECT_NE(j.find("\"stability\":\"deterministic\""), std::string::npos);
  EXPECT_NE(j.find("\"stability\":\"timing\""), std::string::npos);
}

TEST(Metrics, PercentileInterpolatesInsideTheBucket) {
  Histogram h({10.0, 20.0, 40.0});
  for (int i = 0; i < 10; ++i) h.observe(5.0);   // bucket 0: (0, 10]
  for (int i = 0; i < 10; ++i) h.observe(15.0);  // bucket 1: (10, 20]
  HistogramSnapshot s = h.snapshot();
  // p50 rank = 10 -> exactly exhausts bucket 0 -> its upper bound.
  EXPECT_DOUBLE_EQ(s.percentile(0.50), 10.0);
  // p75 rank = 15 -> halfway through bucket 1 -> 10 + 0.5 * (20 - 10).
  EXPECT_DOUBLE_EQ(s.percentile(0.75), 15.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 20.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 0.0);
}

TEST(Metrics, PercentileHandlesEmptyAndOverflow) {
  Histogram h({1.0, 2.0});
  EXPECT_DOUBLE_EQ(h.snapshot().percentile(0.5), 0.0);  // empty
  h.observe(100.0);                                     // overflow bucket
  // The overflow bucket has no upper edge to interpolate toward; the
  // estimate saturates at the last finite bound.
  EXPECT_DOUBLE_EQ(h.snapshot().percentile(0.99), 2.0);
}

TEST(Metrics, PercentileClampsPathologicalQuantiles) {
  // Out-of-range quantiles clamp to [0, 1] instead of producing a
  // garbage rank; NaN — which fails every comparison — behaves as 0.
  Histogram h({10.0, 20.0});
  for (int i = 0; i < 4; ++i) h.observe(5.0);
  HistogramSnapshot s = h.snapshot();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DOUBLE_EQ(s.percentile(-3.0), s.percentile(0.0));
  EXPECT_DOUBLE_EQ(s.percentile(7.0), s.percentile(1.0));
  EXPECT_DOUBLE_EQ(s.percentile(nan), s.percentile(0.0));
  // The empty snapshot answers 0.0 for every quantile, pathological
  // included.
  HistogramSnapshot empty = Histogram({1.0}).snapshot();
  EXPECT_DOUBLE_EQ(empty.percentile(nan), 0.0);
  EXPECT_DOUBLE_EQ(empty.percentile(2.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.percentile(-1.0), 0.0);
}

TEST(Metrics, PercentileIsDeterministicAcrossMergeOrder) {
  Histogram a({1.0, 4.0, 16.0}), b({1.0, 4.0, 16.0}), c({1.0, 4.0, 16.0});
  for (int i = 0; i < 50; ++i) a.observe((double)(i % 20));
  for (int i = 50; i < 100; ++i) b.observe((double)(i % 20));
  c.merge_from(b);
  c.merge_from(a);
  Histogram seq({1.0, 4.0, 16.0});
  for (int i = 0; i < 100; ++i) seq.observe((double)(i % 20));
  EXPECT_DOUBLE_EQ(c.snapshot().percentile(0.9), seq.snapshot().percentile(0.9));
}

TEST(Metrics, PrometheusRenderingExpandsHistogramsCumulatively) {
  MetricsRegistry reg;
  reg.counter("service.requests").add(3);
  reg.gauge("queue-depth", Stability::Timing).set(2.0);
  Histogram& h = reg.histogram("lat", {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);
  std::string p = to_prometheus(reg.snapshot());
  // Names sanitized to [a-zA-Z0-9_:] with a csfma_ prefix.
  EXPECT_NE(p.find("csfma_service_requests{stability=\"deterministic\"} 3\n"),
            std::string::npos);
  EXPECT_NE(p.find("csfma_queue_depth{stability=\"timing\"} 2\n"),
            std::string::npos);
  // Buckets are cumulative and end with +Inf == _count.
  EXPECT_NE(p.find("csfma_lat_bucket{le=\"1\",stability=\"deterministic\"} 1\n"),
            std::string::npos);
  EXPECT_NE(
      p.find("csfma_lat_bucket{le=\"10\",stability=\"deterministic\"} 2\n"),
      std::string::npos);
  EXPECT_NE(
      p.find("csfma_lat_bucket{le=\"+Inf\",stability=\"deterministic\"} 3\n"),
      std::string::npos);
  EXPECT_NE(p.find("csfma_lat_count{stability=\"deterministic\"} 3\n"),
            std::string::npos);
  EXPECT_NE(p.find("# TYPE csfma_lat histogram\n"), std::string::npos);
}

TEST(Metrics, SnapshotSkipsUnsetGauges) {
  MetricsRegistry reg;
  reg.gauge("unset");
  reg.gauge("set").set(3.0);
  MetricsSnapshot s = reg.snapshot();
  EXPECT_EQ(s.gauges.count("unset"), 0u);
  ASSERT_EQ(s.gauges.count("set"), 1u);
  EXPECT_DOUBLE_EQ(s.gauges.at("set").value, 3.0);
}

}  // namespace
}  // namespace csfma
