#include "frontend/parser.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "hls/fma_insert.hpp"
#include "hls/interp.hpp"
#include "hls/schedule.hpp"

namespace csfma {
namespace {

const char* kListing1 = R"(
kernel listing1 {
  input double a; input double b; input double c; input double d;
  input double e; input double f; input double g;
  input double h; input double i; input double k;
  var double x[4];
  output double out;
  # the paper's Listing 1
  x[1] = a*b + c*d;
  x[2] = e*f + g*x[1];
  x[3] = h*i + k*x[2];
  out = x[3];
}
)";

TEST(Parser, Listing1Structure) {
  KernelInfo k = parse_kernel(kListing1);
  EXPECT_EQ(k.name, "listing1");
  EXPECT_EQ(k.statements, 4);
  EXPECT_EQ(k.graph.count(OpKind::Mul), 6);
  EXPECT_EQ(k.graph.count(OpKind::Add), 3);
  EXPECT_EQ(k.graph.count(OpKind::Input), 10);
  EXPECT_EQ(k.graph.count(OpKind::Output), 1);
}

TEST(Parser, EvaluatesCorrectly) {
  KernelInfo k = parse_kernel(kListing1);
  Evaluator ev(k.graph);
  Rng rng(150);
  for (int t = 0; t < 1000; ++t) {
    std::map<std::string, double> in;
    for (const char* n : {"a", "b", "c", "d", "e", "f", "g", "h", "i", "k"})
      in[n] = rng.next_double(-3, 3);
    double x1 = in["a"] * in["b"] + in["c"] * in["d"];
    double x2 = in["e"] * in["f"] + in["g"] * x1;
    double x3 = in["h"] * in["i"] + in["k"] * x2;
    ASSERT_EQ(ev.run(in).at("out"), x3);
  }
}

TEST(Parser, PrecedenceAndParentheses) {
  KernelInfo k = parse_kernel(R"(
kernel p {
  input double a; input double b; input double c;
  output double o1; output double o2; output double o3;
  o1 = a + b * c;
  o2 = (a + b) * c;
  o3 = -a * b - -c;
})");
  Evaluator ev(k.graph);
  auto out = ev.run({{"a", 2}, {"b", 3}, {"c", 5}});
  EXPECT_EQ(out.at("o1"), 17.0);
  EXPECT_EQ(out.at("o2"), 25.0);
  EXPECT_EQ(out.at("o3"), -1.0);
}

TEST(Parser, ArrayIndexing) {
  KernelInfo k = parse_kernel(R"(
kernel arr {
  input double v[3];
  output double s;
  s = v[0] + v[1] + v[2];
})");
  Evaluator ev(k.graph);
  auto out = ev.run({{"v[0]", 1}, {"v[1]", 2}, {"v[2]", 4}});
  EXPECT_EQ(out.at("s"), 7.0);
}

TEST(Parser, ScalarDivisionChain) {
  KernelInfo k = parse_kernel(R"(
kernel d {
  input double a; input double b;
  output double o;
  o = a / b / 2.0;
})");
  auto out = Evaluator(k.graph).run({{"a", 12}, {"b", 3}});
  EXPECT_EQ(out.at("o"), 2.0);
}

TEST(Parser, Errors) {
  // Read before assignment.
  EXPECT_THROW(parse_kernel("kernel e { var double t; output double o; o = t; }"),
               CheckError);
  // Assign to input.
  EXPECT_THROW(parse_kernel("kernel e { input double a; output double o; a = 1; o = a; }"),
               CheckError);
  // Double assignment.
  EXPECT_THROW(parse_kernel(
                   "kernel e { output double o; o = 1; o = 2; }"),
               CheckError);
  // Index out of range.
  EXPECT_THROW(parse_kernel(
                   "kernel e { input double v[2]; output double o; o = v[2]; }"),
               CheckError);
  // Unassigned output.
  EXPECT_THROW(parse_kernel("kernel e { output double o[2]; o[0] = 1; }"),
               CheckError);
  // Undeclared identifier.
  EXPECT_THROW(parse_kernel("kernel e { output double o; o = zz; }"),
               CheckError);
  // Syntax error.
  EXPECT_THROW(parse_kernel("kernel e { output double o; o = 1 + ; }"),
               CheckError);
}

TEST(Parser, ParsedKernelRunsThroughFmaPass) {
  // End-to-end mini flow: parse -> insert FMAs -> evaluate both versions.
  KernelInfo k = parse_kernel(kListing1);
  OperatorLibrary lib = OperatorLibrary::for_device(virtex6());
  Cdfg fused = k.graph;
  FmaInsertStats st = insert_fma_units(fused, lib, FmaStyle::Fcs);
  EXPECT_EQ(st.fma_inserted, 3);
  Rng rng(151);
  for (int t = 0; t < 100; ++t) {
    std::map<std::string, double> in;
    for (const char* n : {"a", "b", "c", "d", "e", "f", "g", "h", "i", "k"})
      in[n] = rng.next_double(-3, 3);
    double vb = Evaluator(k.graph).run(in).at("out");
    double vf = Evaluator(fused).run(in).at("out");
    ASSERT_NEAR(vf, vb, std::abs(vb) * 1e-12 + 1e-300);
  }
}

}  // namespace
}  // namespace csfma
