#include "frontend/lexer.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace csfma {
namespace {

TEST(Lexer, BasicTokens) {
  auto t = lex_kernel("kernel k { input double a[3]; a[0] = 1.5e-2; }");
  ASSERT_GE(t.size(), 5u);
  EXPECT_EQ(t[0].kind, Tok::KwKernel);
  EXPECT_EQ(t[1].kind, Tok::Ident);
  EXPECT_EQ(t[1].text, "k");
  EXPECT_EQ(t[2].kind, Tok::LBrace);
  EXPECT_EQ(t.back().kind, Tok::End);
}

TEST(Lexer, Numbers) {
  auto t = lex_kernel("1 2.5 3e4 0.125e-3 7.");
  ASSERT_EQ(t.size(), 6u);
  EXPECT_DOUBLE_EQ(t[0].number, 1.0);
  EXPECT_DOUBLE_EQ(t[1].number, 2.5);
  EXPECT_DOUBLE_EQ(t[2].number, 3e4);
  EXPECT_DOUBLE_EQ(t[3].number, 0.125e-3);
  EXPECT_DOUBLE_EQ(t[4].number, 7.0);
}

TEST(Lexer, CommentsAndLines) {
  auto t = lex_kernel("a # comment\nb // other\nc");
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[0].line, 1);
  EXPECT_EQ(t[1].line, 2);
  EXPECT_EQ(t[2].line, 3);
}

TEST(Lexer, OperatorsAndPunctuation) {
  auto t = lex_kernel("= + - * / ; ( ) [ ] { }");
  std::vector<Tok> want = {Tok::Assign, Tok::Plus,     Tok::Minus,
                           Tok::Star,   Tok::Slash,    Tok::Semicolon,
                           Tok::LParen, Tok::RParen,   Tok::LBracket,
                           Tok::RBracket, Tok::LBrace, Tok::RBrace,
                           Tok::End};
  ASSERT_EQ(t.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) EXPECT_EQ(t[i].kind, want[i]);
}

TEST(Lexer, RejectsUnknownCharacters) {
  EXPECT_THROW(lex_kernel("a @ b"), CheckError);
}

TEST(Lexer, SlashIsDivisionNotComment) {
  auto t = lex_kernel("a / b");
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[1].kind, Tok::Slash);
}

}  // namespace
}  // namespace csfma
