#include "cs/csa_tree.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace csfma {
namespace {

TEST(CsaTree, LevelsFormula) {
  EXPECT_EQ(csa_levels_for_rows(0), 0);
  EXPECT_EQ(csa_levels_for_rows(2), 0);
  EXPECT_EQ(csa_levels_for_rows(3), 1);
  EXPECT_EQ(csa_levels_for_rows(4), 2);
  EXPECT_EQ(csa_levels_for_rows(6), 3);
  EXPECT_EQ(csa_levels_for_rows(9), 4);
  // 53 partial products (binary64 multiplier): Dadda heights run
  // 2,3,4,6,9,13,19,28,42,63 — nine 3:2 levels reach two rows.
  EXPECT_EQ(csa_levels_for_rows(53), 9);
}

TEST(CsaTree, ReduceMatchesPlainSum) {
  Rng rng(30);
  for (int trial = 0; trial < 2000; ++trial) {
    int w = (int)rng.next_int(8, 200);
    int n = (int)rng.next_int(0, 20);
    std::vector<CsWord> rows;
    CsWord expect;
    for (int i = 0; i < n; ++i) {
      rows.push_back(rng.next_wide_bits<7>(w));
      expect = (expect + rows.back()).truncated(w);
    }
    CsaTreeStats stats;
    CsNum r = reduce_rows(w, rows, &stats);
    EXPECT_EQ(r.to_binary(), expect);
    EXPECT_EQ(stats.rows, n);
    EXPECT_EQ(stats.levels, csa_levels_for_rows(n));
  }
}

TEST(CsaTree, ReduceDegenerateCases) {
  CsNum z = reduce_rows(16, {});
  EXPECT_TRUE(z.to_binary().is_zero());
  CsNum one = reduce_rows(16, {CsWord(7ull)});
  EXPECT_EQ(one.to_binary().lo64(), 7u);
  EXPECT_TRUE(one.is_binary());
}

TEST(CsaTree, MultiplySmallExhaustive) {
  // Exhaustive 6x5-bit signed x unsigned multiply against host arithmetic.
  for (int m = -32; m < 32; ++m) {
    for (unsigned b = 0; b < 32; ++b) {
      CsNum c = CsNum::from_signed(7, m < 0, CsWord((std::uint64_t)(m < 0 ? -m : m)));
      CsNum p = multiply_cs_by_binary(c, CsWord(b), 5, 12);
      std::int64_t expect = (std::int64_t)m * (std::int64_t)b;
      std::uint64_t got = p.to_binary().lo64();
      std::uint64_t want = (std::uint64_t)expect & 0xFFF;
      EXPECT_EQ(got, want) << m << " * " << b;
    }
  }
}

TEST(CsaTree, MultiplyRedundantMultiplicand) {
  Rng rng(31);
  for (int i = 0; i < 5000; ++i) {
    int wc = (int)rng.next_int(4, 40);
    int wb = (int)rng.next_int(1, 20);
    CsNum c(wc, rng.next_wide_bits<7>(wc), rng.next_wide_bits<7>(wc));
    CsWord b = rng.next_wide_bits<7>(wb);
    int wo = wc + wb;
    CsNum p = multiply_cs_by_binary(c, b, wb, wo);
    // Reference: signed value of c times b, mod 2^wo.
    CsWord ref = (c.signed_value().truncated(wo) * b).truncated(wo);
    EXPECT_EQ(p.to_binary(), ref) << c.to_digit_string();
  }
}

TEST(CsaTree, MultiplyPaperWidths) {
  // The PCS-FMA multiplier: 110b CS multiplicand x 53b binary multiplier
  // into a 163b window (Sec. III-D).
  Rng rng(32);
  for (int i = 0; i < 500; ++i) {
    CsNum c(110, rng.next_wide_bits<7>(110), rng.next_wide_bits<7>(110));
    CsWord b = rng.next_wide_bits<7>(53) | CsWord::bit_at(52);  // implied 1
    CsaTreeStats stats;
    CsNum p = multiply_cs_by_binary(c, b, 53, 163, &stats);
    CsWord ref = (c.signed_value().truncated(163) * b).truncated(163);
    EXPECT_EQ(p.to_binary(), ref);
    // Tree height depends only on the 53 multiplier rows.
    EXPECT_EQ(stats.rows, 53);
    EXPECT_EQ(stats.levels, csa_levels_for_rows(53));
  }
}

TEST(CsaTree, TreeDepthIndependentOfMultiplicandWidth) {
  // Sec. III-D: widening C must not deepen the tree.
  CsaTreeStats narrow, wide;
  Rng rng(33);
  CsNum c54(54, rng.next_wide_bits<7>(54), CsWord());
  CsNum c110(110, rng.next_wide_bits<7>(110), CsWord());
  CsWord b = rng.next_wide_bits<7>(53) | CsWord::bit_at(52);
  multiply_cs_by_binary(c54, b, 53, 107, &narrow);
  multiply_cs_by_binary(c110, b, 53, 163, &wide);
  EXPECT_EQ(narrow.levels, wide.levels);
  EXPECT_EQ(narrow.rows, wide.rows);
}

}  // namespace
}  // namespace csfma
