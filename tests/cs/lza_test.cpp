// The LZA bound — lza_estimate <= leading_sign_run <= lza_estimate + 1 —
// is verified exhaustively for small widths and randomly at datapath widths.
// The FCS-FMA block-selection margin (Sec. III-G/H) assumes exactly this
// one-bit uncertainty.
#include "cs/lza.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace csfma {
namespace {

TEST(Lza, LeadingSignRunDefinition) {
  // 8-bit examples.
  auto lsr = [](std::uint64_t s, std::uint64_t c, int w) {
    return leading_sign_run(CsNum(w, CsWord(s), CsWord(c)));
  };
  EXPECT_EQ(lsr(0b00010101, 0, 8), 2);  // 21 needs 6 bits: 2 redundant zeros
  EXPECT_EQ(lsr(0b11110101, 0, 8), 3);  // negative, 3 redundant ones
  EXPECT_EQ(lsr(0b01111111, 0, 8), 0);  // needs the full window
  EXPECT_EQ(lsr(0b10000000, 0, 8), 0);  // most negative value
  EXPECT_EQ(lsr(0, 0, 8), 7);           // zero: one digit remains
  EXPECT_EQ(lsr(0xFF, 0, 8), 7);        // -1: one digit remains
}

TEST(Lza, LeadingSignRunAllowsWindowShrink) {
  Rng rng(60);
  for (int i = 0; i < 50000; ++i) {
    int w = (int)rng.next_int(2, 60);
    CsNum x(w, rng.next_wide_bits<7>(w) >> (int)rng.next_below((unsigned)w),
            rng.next_wide_bits<7>(w) >> (int)rng.next_below((unsigned)w));
    int run = leading_sign_run(x);
    // Shrinking the window by `run` preserves the signed value...
    EXPECT_EQ(x.windowed(w - run).signed_value(), x.signed_value());
    // ...and by run+1 does not (unless already at 1 digit).
    if (run < w - 1) {
      EXPECT_NE(x.windowed(w - run - 1).signed_value(), x.signed_value());
    }
  }
}

void exhaustive_bound(int w) {
  for (std::uint64_t s = 0; s < (1ull << w); ++s) {
    for (std::uint64_t c = 0; c < (1ull << w); ++c) {
      CsNum x(w, CsWord(s), CsWord(c));
      int est = lza_estimate(x);
      int act = leading_sign_run(x);
      ASSERT_LE(est, act) << x.to_digit_string();
      ASSERT_LE(act - est, kLzaMaxError) << x.to_digit_string();
    }
  }
}

TEST(Lza, ExhaustiveBoundW4) { exhaustive_bound(4); }
TEST(Lza, ExhaustiveBoundW7) { exhaustive_bound(7); }
TEST(Lza, ExhaustiveBoundW9) { exhaustive_bound(9); }

TEST(Lza, RandomBoundDatapathWidths) {
  Rng rng(61);
  for (int i = 0; i < 100000; ++i) {
    int w = (int)rng.next_int(30, 440);
    // Bias toward long sign runs by shifting magnitudes down.
    int sh = (int)rng.next_below((unsigned)w);
    CsWord s = rng.next_wide_bits<7>(w) >> sh;
    CsWord c = rng.next_wide_bits<7>(w) >> (int)rng.next_below((unsigned)w);
    if (rng.next_bool()) s = (~s).truncated(w);
    CsNum x(w, s, c);
    int est = lza_estimate(x);
    int act = leading_sign_run(x);
    ASSERT_LE(est, act) << w << " " << x.to_digit_string();
    ASSERT_LE(act - est, kLzaMaxError) << w << " " << x.to_digit_string();
  }
}

TEST(Lza, CancellationCase) {
  // x + (-x): the sum is zero — the LZA must report (nearly) the whole
  // window as sign run so the unit detects total cancellation (Sec. III-G
  // requires reliable all-zero detection on top of this).
  Rng rng(62);
  for (int i = 0; i < 10000; ++i) {
    int w = (int)rng.next_int(8, 60);
    CsWord v = rng.next_wide_bits<7>(w - 2);
    CsNum x(w, v, (-v).truncated(w));
    int est = lza_estimate(x);
    EXPECT_GE(est, w - 1 - kLzaMaxError);
  }
}

}  // namespace
}  // namespace csfma
