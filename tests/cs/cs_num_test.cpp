#include "cs/cs_num.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace csfma {
namespace {

std::int64_t signed_of(const CsNum& x) {
  CSFMA_CHECK(x.width() <= 63);
  std::uint64_t v = x.to_binary().lo64();
  // sign extend from width
  if (x.width() < 64 && (v >> (x.width() - 1)) & 1)
    v |= ~((std::uint64_t{1} << x.width()) - 1);
  return (std::int64_t)v;
}

CsNum random_cs(Rng& rng, int width) {
  return CsNum(width, rng.next_wide_bits<7>(width), rng.next_wide_bits<7>(width));
}

TEST(CsNum, FromBinaryRoundTrip) {
  Rng rng(20);
  for (int i = 0; i < 10000; ++i) {
    int w = (int)rng.next_int(1, 60);
    CsWord bits = rng.next_wide_bits<7>(w);
    CsNum x = CsNum::from_binary(w, bits);
    EXPECT_EQ(x.to_binary(), bits);
    EXPECT_TRUE(x.is_binary());
  }
}

TEST(CsNum, FromSignedMatchesTwosComplement) {
  Rng rng(21);
  for (int i = 0; i < 10000; ++i) {
    int w = (int)rng.next_int(2, 60);
    std::int64_t lim = (std::int64_t{1} << (w - 1)) - 1;
    std::int64_t v = rng.next_int(-lim, lim);
    CsNum x = CsNum::from_signed(w, v < 0, CsWord((std::uint64_t)(v < 0 ? -v : v)));
    EXPECT_EQ(signed_of(x), v);
    EXPECT_EQ(x.is_value_negative(), v < 0);
    EXPECT_EQ(x.is_value_zero(), v == 0);
    EXPECT_EQ(x.magnitude().lo64(), (std::uint64_t)(v < 0 ? -v : v));
  }
}

TEST(CsNum, DigitsMatchPlanes) {
  CsNum x(4, CsWord(0b1010), CsWord(0b0110));
  EXPECT_EQ(x.digit(0), 0);
  EXPECT_EQ(x.digit(1), 2);
  EXPECT_EQ(x.digit(2), 1);
  EXPECT_EQ(x.digit(3), 1);
  EXPECT_EQ(x.to_digit_string(), "1120");
}

TEST(CsNum, RedundantRepresentationsOfHalf) {
  // The paper's Sec. III-E example: decimal 0.5 as 0.0200cs or 0.0120cs
  // (here scaled to integers: 8 = 0200cs = 0120cs = 1000b in 4 digits).
  CsNum a(4, CsWord(0b0100), CsWord(0b0100));  // digits 0200 -> 2*4 = 8
  EXPECT_EQ(a.to_digit_string(), "0200");
  EXPECT_EQ(a.to_binary().lo64(), 8u);
  CsNum c(4, CsWord(0b0110), CsWord(0b0010));  // digits 0120
  EXPECT_EQ(c.to_digit_string(), "0120");
  EXPECT_EQ(c.to_binary().lo64(), 8u);
  // 0.75d example: 0220cs (= 12 = 1100b).
  CsNum b(4, CsWord(0b0110), CsWord(0b0110));
  EXPECT_EQ(b.to_digit_string(), "0220");
  EXPECT_EQ(b.to_binary().lo64(), 12u);
}

TEST(CsNum, Compress3PreservesSumModWindow) {
  Rng rng(22);
  for (int i = 0; i < 20000; ++i) {
    int w = (int)rng.next_int(1, 62);
    CsWord a = rng.next_wide_bits<7>(w);
    CsWord b = rng.next_wide_bits<7>(w);
    CsWord c = rng.next_wide_bits<7>(w);
    CsNum r = compress3(w, a, b, c);
    std::uint64_t mask = w == 64 ? ~0ull : ((1ull << w) - 1);
    EXPECT_EQ(r.to_binary().lo64(), (a.lo64() + b.lo64() + c.lo64()) & mask);
  }
}

TEST(CsNum, Compress3WideWindow) {
  Rng rng(23);
  for (int i = 0; i < 2000; ++i) {
    int w = (int)rng.next_int(100, 440);
    CsWord a = rng.next_wide_bits<7>(w);
    CsWord b = rng.next_wide_bits<7>(w);
    CsWord c = rng.next_wide_bits<7>(w);
    CsNum r = compress3(w, a, b, c);
    EXPECT_EQ(r.to_binary(), (a + b + c).truncated(w));
  }
}

TEST(CsNum, AddBinaryAndAddCs) {
  Rng rng(24);
  for (int i = 0; i < 20000; ++i) {
    int w = (int)rng.next_int(2, 62);
    CsNum a = random_cs(rng, w);
    CsNum b = random_cs(rng, w);
    CsWord k = rng.next_wide_bits<7>(w);
    std::uint64_t mask = (1ull << w) - 1;
    EXPECT_EQ(cs_add_binary(a, k).to_binary().lo64(),
              (a.to_binary().lo64() + k.lo64()) & mask);
    EXPECT_EQ(cs_add_cs(a, b).to_binary().lo64(),
              (a.to_binary().lo64() + b.to_binary().lo64()) & mask);
  }
}

TEST(CsNum, NegationIsAdditiveInverse) {
  Rng rng(25);
  for (int i = 0; i < 20000; ++i) {
    int w = (int)rng.next_int(2, 62);
    CsNum a = random_cs(rng, w);
    CsNum n = cs_negate(a);
    std::uint64_t mask = (1ull << w) - 1;
    EXPECT_EQ((a.to_binary().lo64() + n.to_binary().lo64()) & mask, 0u)
        << a.to_digit_string();
  }
}

TEST(CsNum, ShiftsMoveDigits) {
  Rng rng(26);
  for (int i = 0; i < 10000; ++i) {
    int w = (int)rng.next_int(4, 60);
    CsNum a = random_cs(rng, w);
    int s = (int)rng.next_below((unsigned)w);
    CsNum l = a.shifted_left(s);
    std::uint64_t mask = (1ull << w) - 1;
    EXPECT_EQ(l.to_binary().lo64(), (a.to_binary().lo64() << s) & mask);
    // Logical right shift moves the planes; digits shift down.
    CsNum r = a.shifted_right_logical(s);
    for (int d = 0; d + s < w; ++d) EXPECT_EQ(r.digit(d), a.digit(d + s));
  }
}

TEST(CsNum, ExtractDigits) {
  Rng rng(27);
  for (int i = 0; i < 5000; ++i) {
    int w = (int)rng.next_int(8, 60);
    CsNum a = random_cs(rng, w);
    int lo = (int)rng.next_below((unsigned)(w - 2));
    int len = 1 + (int)rng.next_below((unsigned)(w - lo - 1));
    CsNum e = a.extract_digits(lo, len);
    for (int d = 0; d < len; ++d) EXPECT_EQ(e.digit(d), a.digit(lo + d));
  }
}

TEST(CsNum, WindowedTruncates) {
  CsNum a(8, CsWord(0xF0ull), CsWord(0x0Full));
  CsNum t = a.windowed(4);
  EXPECT_EQ(t.width(), 4);
  EXPECT_EQ(t.sum().lo64(), 0u);
  EXPECT_EQ(t.carry().lo64(), 0xFull);
}

TEST(CsNum, ConstructorChecksPlanes) {
  EXPECT_THROW(CsNum(4, CsWord(0x10ull), CsWord()), CheckError);
  EXPECT_THROW(CsNum(4, CsWord(), CsWord(0x10ull)), CheckError);
  EXPECT_THROW(CsNum(0, CsWord(), CsWord()), CheckError);
}

}  // namespace
}  // namespace csfma
