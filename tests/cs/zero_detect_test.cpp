// Soundness of the block zero detector.  The ZD must NEVER skip a block
// whose removal changes the signed value — the FMA accuracy guarantee
// (Sec. III-F) rests on it.  We verify the Fig 10 rules exhaustively on
// small windows and randomly at datapath widths.
#include "cs/zero_detect.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace csfma {
namespace {

TEST(ZeroDetect, ClassifyPatterns) {
  // Fig 10's example blocks.
  auto mk = [](std::initializer_list<int> digits) {
    CsWord s, c;
    int i = (int)digits.size() - 1;
    int pos = 0;
    (void)i;
    int n = (int)digits.size();
    for (auto it = std::rbegin(digits); it != std::rend(digits); ++it, ++pos) {
      if (*it >= 1) s.set_bit(pos, true);
      if (*it == 2) c.set_bit(pos, true);
    }
    return CsNum(n, s, c);
  };
  EXPECT_EQ(classify_block(mk({0, 0, 0, 0, 0, 0, 0})), BlockPattern::AllZero);
  EXPECT_EQ(classify_block(mk({1, 1, 1, 1, 1, 1, 1})), BlockPattern::AllOnes);
  EXPECT_EQ(classify_block(mk({1, 1, 1, 1, 2, 0, 0})), BlockPattern::OnesTwoZeros);
  EXPECT_EQ(classify_block(mk({2, 0, 0, 0, 0, 0, 0})), BlockPattern::OnesTwoZeros);
  EXPECT_EQ(classify_block(mk({1, 1, 1, 1, 1, 1, 2})), BlockPattern::OnesTwoZeros);
  EXPECT_EQ(classify_block(mk({1, 1, 2, 2, 0, 0, 0})), BlockPattern::Other);
  EXPECT_EQ(classify_block(mk({0, 1, 0, 0, 0, 0, 0})), BlockPattern::Other);
  EXPECT_EQ(classify_block(mk({1, 1, 1, 0, 2, 0, 0})), BlockPattern::Other);
}

TEST(ZeroDetect, Fig10dOverflowHazardIsNotSkipped) {
  // Fig 10.d: "0000000|012..." — removing the all-0 block would flip the
  // sign of the remaining window (012cs = 100b).
  CsWord s, c;
  // 6-digit window, 3-digit blocks: digits (MSB..LSB) 0 0 0 | 0 1 2.
  s.set_bit(1, true);               // digit 1 = 1
  s.set_bit(0, true); c.set_bit(0, true);  // digit 0 = 2
  CsNum x(6, s, c);
  EXPECT_EQ(count_skippable_blocks(x, 3, 1), 0);
  EXPECT_FALSE(skip_preserves_value(x, 3, 1));
}

TEST(ZeroDetect, SkipsPlainLeadingZeros) {
  // 0 0 0 | 0 0 1 — safely skippable.
  CsWord s;
  s.set_bit(0, true);
  CsNum x(6, s, CsWord());
  EXPECT_EQ(count_skippable_blocks(x, 3, 1), 1);
  EXPECT_TRUE(skip_preserves_value(x, 3, 1));
}

TEST(ZeroDetect, SkipsSignExtensionBlocks) {
  // 1 1 1 | 1 0 1 (value -3 in 6 bits) — the leading all-1 block is
  // redundant sign extension.
  CsWord s = CsWord::mask(6) ^ CsWord::bit_at(1);
  CsNum x(6, s, CsWord());
  EXPECT_EQ(x.signed_value().sext(6), (-CsWord(3ull)));
  EXPECT_EQ(count_skippable_blocks(x, 3, 1), 1);
  EXPECT_TRUE(skip_preserves_value(x, 3, 1));
}

/// Exhaustive soundness: for every CS number of `w` digits, whatever the ZD
/// skips must preserve the signed value.
void exhaustive_soundness(int w, int block) {
  const int blocks = w / block;
  for (std::uint64_t s = 0; s < (1ull << w); ++s) {
    for (std::uint64_t c = 0; c < (1ull << w); ++c) {
      CsNum x(w, CsWord(s), CsWord(c));
      int k = count_skippable_blocks(x, block, blocks - 1);
      ASSERT_TRUE(skip_preserves_value(x, block, k))
          << x.to_digit_string() << " skipped " << k;
      // Also every intermediate skip count must be sound (iterative rule).
      for (int j = 1; j <= k; ++j)
        ASSERT_TRUE(skip_preserves_value(x, block, j)) << x.to_digit_string();
    }
  }
}

TEST(ZeroDetect, ExhaustiveSoundnessW6B3) { exhaustive_soundness(6, 3); }
TEST(ZeroDetect, ExhaustiveSoundnessW8B2) { exhaustive_soundness(8, 2); }
TEST(ZeroDetect, ExhaustiveSoundnessW9B3) { exhaustive_soundness(9, 3); }
TEST(ZeroDetect, ExhaustiveSoundnessW8B4) { exhaustive_soundness(8, 4); }

TEST(ZeroDetect, RandomSoundnessDatapathWidths) {
  // The PCS-FMA geometry: 385b window, 55-digit blocks (Sec. III-D/F).
  Rng rng(50);
  for (int i = 0; i < 20000; ++i) {
    CsNum x(385, rng.next_wide_bits<7>(385), rng.next_wide_bits<7>(385));
    int k = count_skippable_blocks(x, 55, 5);
    ASSERT_TRUE(skip_preserves_value(x, 55, k)) << x.to_digit_string();
  }
}

TEST(ZeroDetect, RandomSoundnessSparseTopBits) {
  // Random values biased toward long leading runs (the interesting region):
  // shift magnitudes down so upper blocks are mostly sign extension.
  Rng rng(51);
  for (int i = 0; i < 50000; ++i) {
    int w = 20;
    int sh = (int)rng.next_below(18);
    CsWord s = rng.next_wide_bits<7>(w) >> sh;
    CsWord c = rng.next_wide_bits<7>(w) >> sh;
    if (rng.next_bool()) s = (~s).truncated(w);  // negative-leaning values
    CsNum x(w, s, c);
    for (int block : {2, 4, 5}) {
      int k = count_skippable_blocks(x, block, w / block - 1);
      ASSERT_TRUE(skip_preserves_value(x, block, k))
          << x.to_digit_string() << " block " << block << " k " << k;
    }
  }
}

TEST(ZeroDetect, EffectivenessOnNormalizedInputs) {
  // The ZD must actually skip blocks when values are small: place a small
  // positive value in the low block and expect all leading blocks skipped.
  Rng rng(52);
  for (int i = 0; i < 2000; ++i) {
    CsWord small = rng.next_wide_bits<7>(40);  // clear top two digits of blk
    CsNum x(385, small, CsWord());
    int k = count_skippable_blocks(x, 55, 5);
    EXPECT_EQ(k, 5) << "plain small positive values must skip fully";
  }
}

TEST(ZeroDetect, AlwaysLeavesOneBlock) {
  CsNum zero = CsNum::zero(110);
  EXPECT_EQ(count_skippable_blocks(zero, 55, 1), 1);
  EXPECT_THROW(count_skippable_blocks(zero, 55, 2), CheckError);
}

}  // namespace
}  // namespace csfma
