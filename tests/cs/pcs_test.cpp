#include "cs/pcs.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace csfma {
namespace {

TEST(Pcs, CarryReducePreservesValue) {
  Rng rng(40);
  for (int i = 0; i < 10000; ++i) {
    int groups = (int)rng.next_int(1, 12);
    int group = (int)rng.next_int(2, 16);
    int w = groups * group;
    CsNum x(w, rng.next_wide_bits<7>(w), rng.next_wide_bits<7>(w));
    PcsNum p = carry_reduce(x, group);
    EXPECT_EQ(p.to_binary(), x.to_binary()) << x.to_digit_string();
  }
}

TEST(Pcs, CarryReducePaperWidths) {
  // Sec. III-E: the 385b full-CS adder output reduces to PCS with one carry
  // per 11-bit group.
  Rng rng(41);
  for (int i = 0; i < 500; ++i) {
    CsNum x(385, rng.next_wide_bits<7>(385), rng.next_wide_bits<7>(385));
    PcsNum p = carry_reduce(x, 11);
    EXPECT_EQ(p.to_binary(), x.to_binary());
    EXPECT_EQ(p.num_carry_positions(), 35);  // the paper's "35b of carries"
    // Carries sit only at multiples of 11 (and never at position 0 after a
    // reduction — no group feeds it).
    for (int b = 0; b < 385; ++b) {
      if (p.carries().bit(b)) {
        EXPECT_EQ(b % 11, 0) << b;
      }
    }
    EXPECT_FALSE(p.carries().bit(0));
  }
}

TEST(Pcs, CarryReduceAlternativeSpacings) {
  // The carry spacing alternatives of Sec. III-E: every 5th, 11th or 55th
  // bit divide the 55b block evenly.
  Rng rng(42);
  for (int group : {5, 11, 55}) {
    EXPECT_EQ(55 % group, 0);
    for (int i = 0; i < 300; ++i) {
      CsNum x(385, rng.next_wide_bits<7>(385), rng.next_wide_bits<7>(385));
      EXPECT_EQ(carry_reduce(x, group).to_binary(), x.to_binary());
    }
  }
}

TEST(Pcs, ConstructorEnforcesGrid) {
  // A carry bit off the group grid is rejected.
  EXPECT_THROW(PcsNum(22, 11, CsWord(), CsWord::bit_at(5)), CheckError);
  // On-grid carries (positions 0 and 11) are fine.
  PcsNum ok(22, 11, CsWord(), CsWord::bit_at(11) | CsWord::bit_at(0));
  EXPECT_EQ(ok.to_binary().lo64(), (1ull << 11) | 1ull);
}

TEST(Pcs, ExtractDigitsGroupAligned) {
  Rng rng(43);
  for (int i = 0; i < 2000; ++i) {
    CsNum x(110, rng.next_wide_bits<7>(110), rng.next_wide_bits<7>(110));
    PcsNum p = carry_reduce(x, 11);
    // Extract the upper 55-digit block (the result-mux granularity).
    PcsNum hi = p.extract_digits(55, 55);
    EXPECT_EQ(hi.width(), 55);
    EXPECT_EQ(hi.to_binary(), p.sum().extract(55, 55) +
                                  p.carries().extract(55, 55));
    EXPECT_THROW(p.extract_digits(7, 11), CheckError);  // off-grid
  }
}

TEST(Pcs, OperandFormatWidths) {
  // The 192b PCS-FMA operand of Sec. III-F: 110b sum + 10 carries for the
  // mantissa, 55b + 5 carries of rounding data, 12b exponent.
  PcsNum mant = PcsNum::zero(110, 11);
  PcsNum round = PcsNum::zero(55, 11);
  EXPECT_EQ(mant.num_carry_positions(), 10);
  EXPECT_EQ(round.num_carry_positions(), 5);
  EXPECT_EQ(110 + 10 + 55 + 5 + 12, 192);
}

TEST(Pcs, AssimilateMatchesBinary) {
  Rng rng(44);
  for (int i = 0; i < 2000; ++i) {
    CsNum x(55, rng.next_wide_bits<7>(55), rng.next_wide_bits<7>(55));
    PcsNum p = carry_reduce(x, 11);
    EXPECT_EQ(pcs_assimilate(p), x.to_binary());
  }
}

}  // namespace
}  // namespace csfma
