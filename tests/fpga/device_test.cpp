#include "fpga/device.hpp"

#include <gtest/gtest.h>

namespace csfma {
namespace {

TEST(Device, AdderModelReproducesPaperDatapoints) {
  // The three Virtex-6 (-1) post-layout numbers the paper publishes are the
  // calibration anchors (Sec. III-D/E) — the model must hit them exactly.
  Device v6 = virtex6();
  EXPECT_NEAR(v6.adder_delay_ns(5), 1.650, 1e-9);
  EXPECT_NEAR(v6.adder_delay_ns(11), 1.742, 1e-9);
  EXPECT_NEAR(v6.adder_delay_ns(385), 8.95, 1e-9);
}

TEST(Device, PaperCarrySpacingChoice) {
  // Sec. III-E: "the delay difference between a 5b and an 11b adder is so
  // small ... that we can choose the more area efficient 11b distribution".
  Device v6 = virtex6();
  EXPECT_LT(v6.adder_delay_ns(11) - v6.adder_delay_ns(5), 0.1);
  // And a 55b group adder would be noticeably slower.
  EXPECT_GT(v6.adder_delay_ns(55) - v6.adder_delay_ns(11), 0.5);
}

TEST(Device, AdderDelayMonotoneInWidth) {
  Device v6 = virtex6();
  double prev = 0;
  for (int n = 1; n <= 512; ++n) {
    double d = v6.adder_delay_ns(n);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(Device, FamilyOrdering) {
  // v7 faster than v6 faster than v5, and only v5 lacks the pre-adder.
  Device v5 = virtex5(), v6 = virtex6(), v7 = virtex7();
  EXPECT_GT(v5.adder_delay_ns(100), v6.adder_delay_ns(100));
  EXPECT_GT(v6.adder_delay_ns(100), v7.adder_delay_ns(100));
  EXPECT_FALSE(v5.has_preadder);
  EXPECT_TRUE(v6.has_preadder);
  EXPECT_TRUE(v7.has_preadder);
}

TEST(Device, WideAdderTooSlowFor200MHz) {
  // Sec. III-D's motivation for carry save: a single 385b adder cannot run
  // at 200 MHz (5 ns) — "about 8.95ns, which is far too slow".
  Device v6 = virtex6();
  EXPECT_GT(v6.adder_delay_ns(385), 5.0);
  // While the 11b group adder of the PCS form easily fits.
  EXPECT_LT(v6.adder_delay_ns(11), 5.0);
}

}  // namespace
}  // namespace csfma
