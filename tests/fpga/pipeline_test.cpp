#include "fpga/pipeline.hpp"

#include <gtest/gtest.h>

namespace csfma {
namespace {

TEST(Pipeline, SingleSmallComponentIsOneStage) {
  std::vector<Component> chain = {Component::atomic("a", 2.0, {10, 0})};
  PipelineResult p = pipeline_chain(chain, 5.0, 0.5);
  EXPECT_EQ(p.cycles, 1);
  EXPECT_DOUBLE_EQ(p.max_stage_ns, 2.5);
  EXPECT_NEAR(p.fmax_mhz, 400.0, 1e-9);
}

TEST(Pipeline, GreedyPacking) {
  std::vector<Component> chain = {
      Component::atomic("a", 2.0, {}),
      Component::atomic("b", 2.0, {}),
      Component::atomic("c", 2.0, {}),
  };
  // Budget 4.5-0.5 = 4.0: stages {a,b}, {c}.
  PipelineResult p = pipeline_chain(chain, 4.5, 0.5);
  EXPECT_EQ(p.cycles, 2);
  EXPECT_DOUBLE_EQ(p.max_stage_ns, 4.5);
}

TEST(Pipeline, LayeredComponentsSplit) {
  std::vector<Component> chain = {Component::layered("tree", 8, 1.0, {})};
  PipelineResult p = pipeline_chain(chain, 4.0, 0.5);
  // 8 levels, 3 per stage -> 3 stages.
  EXPECT_EQ(p.cycles, 3);
  EXPECT_LE(p.max_stage_ns, 4.0);
}

TEST(Pipeline, OversizedAtomicLimitsFmax) {
  std::vector<Component> chain = {
      Component::atomic("small", 1.0, {}),
      Component::atomic("huge", 6.0, {}),
      Component::atomic("small2", 1.0, {}),
  };
  PipelineResult p = pipeline_chain(chain, 5.0, 0.5);
  // The 6 ns block cannot be cut: fmax < target.
  EXPECT_DOUBLE_EQ(p.max_stage_ns, 6.5);
  EXPECT_LT(p.fmax_mhz, 200.0);
  EXPECT_EQ(p.cycles, 3);
}

TEST(Pipeline, ParallelComponentsIgnoredForTiming) {
  std::vector<Component> chain = {
      Component::atomic("a", 3.0, {100, 0}),
      Component::parallel("side", {500, 2}),
  };
  PipelineResult p = pipeline_chain(chain, 5.0, 0.5);
  EXPECT_EQ(p.cycles, 1);
  Area area = total_area(chain);
  EXPECT_EQ(area.luts, 600);
  EXPECT_EQ(area.dsps, 2);
}

TEST(Pipeline, StageDelaysSumToTotalPlusRegs) {
  std::vector<Component> chain = {
      Component::layered("x", 5, 1.3, {}),
      Component::atomic("y", 2.2, {}),
  };
  PipelineResult p = pipeline_chain(chain, 4.0, 0.6);
  double total = 0;
  for (double s : p.stage_delays) total += s - 0.6;
  EXPECT_NEAR(total, 5 * 1.3 + 2.2, 1e-9);
}

}  // namespace
}  // namespace csfma
