// The Table I / Fig 13 claims as properties of the structural model.
#include "fpga/architectures.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace csfma {
namespace {

std::vector<SynthesisReport> v6_table() {
  return table1_reports(virtex6(), 200.0);
}

const SynthesisReport& row(const std::vector<SynthesisReport>& t,
                           const std::string& name) {
  for (const auto& r : t)
    if (r.arch == name) return r;
  ADD_FAILURE() << "missing row " << name;
  static SynthesisReport dummy;
  return dummy;
}

TEST(Architectures, DspCountsMatchPaper) {
  auto t = v6_table();
  EXPECT_EQ(row(t, "Xilinx CoreGen").dsps, 13);
  EXPECT_EQ(row(t, "FloPoCo FPPipeline").dsps, 7);
  EXPECT_EQ(row(t, "PCS-FMA").dsps, 21);
  EXPECT_EQ(row(t, "FCS-FMA").dsps, 12);
}

TEST(Architectures, LutCountsNearPaper) {
  // Table I: 1253 / 1508 / 5832 / 4685 LUTs.  The cost functions are
  // calibrated; hold them to +-12%.
  auto t = v6_table();
  EXPECT_NEAR(row(t, "Xilinx CoreGen").luts, 1253, 0.12 * 1253);
  EXPECT_NEAR(row(t, "FloPoCo FPPipeline").luts, 1508, 0.12 * 1508);
  EXPECT_NEAR(row(t, "PCS-FMA").luts, 5832, 0.12 * 5832);
  EXPECT_NEAR(row(t, "FCS-FMA").luts, 4685, 0.12 * 4685);
}

TEST(Architectures, CyclesMatchPaper) {
  auto t = v6_table();
  EXPECT_EQ(row(t, "Xilinx CoreGen").cycles, 9);  // 5-cycle mul + 4-cycle add
  EXPECT_EQ(row(t, "FloPoCo FPPipeline").cycles, 11);
  EXPECT_EQ(row(t, "PCS-FMA").cycles, 5);
  EXPECT_EQ(row(t, "FCS-FMA").cycles, 3);
}

TEST(Architectures, FmaxNearPaper) {
  // Table I: 244 / 190 / 231 / 211 MHz; hold the model to +-10%.
  auto t = v6_table();
  EXPECT_NEAR(row(t, "Xilinx CoreGen").fmax_mhz, 244, 24);
  EXPECT_NEAR(row(t, "FloPoCo FPPipeline").fmax_mhz, 190, 19);
  EXPECT_NEAR(row(t, "PCS-FMA").fmax_mhz, 231, 23);
  EXPECT_NEAR(row(t, "FCS-FMA").fmax_mhz, 211, 21);
}

TEST(Architectures, OnlyFloPoCoMisses200MHz) {
  for (const auto& r : v6_table()) {
    if (r.arch == "FloPoCo FPPipeline") {
      EXPECT_LT(r.fmax_mhz, 200.0);
    } else {
      EXPECT_GE(r.fmax_mhz, 200.0) << r.arch;
    }
  }
}

TEST(Architectures, Fig13LatencyOrdering) {
  // Fig 13: FCS fastest, then PCS, then CoreGen, FloPoCo slowest; the new
  // units are ~1.7x and ~2.5x faster than the closest competitor.
  auto t = v6_table();
  double coregen = row(t, "Xilinx CoreGen").min_ma_time_ns();
  double flopoco = row(t, "FloPoCo FPPipeline").min_ma_time_ns();
  double pcs = row(t, "PCS-FMA").min_ma_time_ns();
  double fcs = row(t, "FCS-FMA").min_ma_time_ns();
  EXPECT_LT(fcs, pcs);
  EXPECT_LT(pcs, coregen);
  EXPECT_LT(coregen, flopoco);
  EXPECT_NEAR(coregen / pcs, 1.7, 0.35);
  EXPECT_NEAR(coregen / fcs, 2.5, 0.5);
}

TEST(Architectures, FcsRequiresPreadder) {
  // Sec. III-H: the FCS-FMA is "limited to recent FPGA architectures".
  EXPECT_THROW(build_fcs_fma(virtex5()), CheckError);
  auto v5_rows = table1_reports(virtex5(), 200.0);
  for (const auto& r : v5_rows) EXPECT_NE(r.arch, "FCS-FMA");
  EXPECT_EQ(v5_rows.size(), 3u);
}

TEST(Architectures, PcsPortsToVirtex5) {
  // The PCS-FMA is explicitly portable to older FPGAs (Sec. III).
  auto v5 = table1_reports(virtex5(), 200.0);
  const auto& pcs = row(v5, "PCS-FMA");
  EXPECT_GT(pcs.fmax_mhz, 150.0);
  EXPECT_EQ(pcs.dsps, 21);
}

TEST(Architectures, ZdVariantCostsAStage) {
  // Sec. III-F vs III-G in the timing model: the exact-ZD FCS variant puts
  // the detector on the critical path and pays a pipeline stage.
  const Device dev = virtex6();
  SynthesisReport lza = synthesize("lza", build_fcs_fma(dev), dev, 200.0);
  SynthesisReport zd = synthesize("zd", build_fcs_fma_zd(dev), dev, 200.0);
  EXPECT_EQ(zd.cycles, lza.cycles + 1);
  EXPECT_GT(zd.luts, lza.luts);
  EXPECT_EQ(zd.dsps, lza.dsps);
  EXPECT_GT(zd.min_ma_time_ns(), lza.min_ma_time_ns());
}

TEST(Architectures, Virtex7SlightlyFaster) {
  auto v6 = v6_table();
  auto v7 = table1_reports(virtex7(), 200.0);
  EXPECT_GT(row(v7, "FCS-FMA").fmax_mhz, row(v6, "FCS-FMA").fmax_mhz);
}

}  // namespace
}  // namespace csfma
