#include "fma/fcs_format.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace csfma {
namespace {

TEST(FcsFormat, GeometryMatchesPaper) {
  // Sec. III-H: 87c mantissa in three 29c blocks (reduced from 116b for
  // routability), 29c rounding data, 12b exponent; the adder window is 13
  // blocks and the result mux has 11 positions.
  EXPECT_EQ(FcsGeometry::kMantDigits, 87);
  EXPECT_EQ(FcsGeometry::kMantDigits / FcsGeometry::kBlock, 3);
  EXPECT_EQ(FcsGeometry::kTailDigits, 29);
  EXPECT_EQ(FcsGeometry::kAdderWidth, 13 * 29);
  EXPECT_EQ(FcsGeometry::kProductWidth / FcsGeometry::kBlock, 5);
  EXPECT_EQ(FcsGeometry::kAdderWidth / FcsGeometry::kBlock - 2, 11);
  // Worst case per Sec. III-H: 25c of block two + 29c of block three = 54c
  // significant digits, exceeding binary64's 53.
  EXPECT_GE(FcsGeometry::kBlock - FcsGeometry::kLzaMargin - 1 +
                FcsGeometry::kBlock,
            54);
}

TEST(FcsFormat, IeeeRoundTripExact) {
  Rng rng(75);
  for (int i = 0; i < 20000; ++i) {
    double d = rng.next_fp_in_exp_range(-900, 900);
    PFloat x = PFloat::from_double(kBinary64, d);
    FcsOperand f = ieee_to_fcs(x);
    PFloat back = fcs_to_ieee(f, kBinary64, Round::NearestEven);
    EXPECT_EQ(back.to_double(), d);
    EXPECT_DOUBLE_EQ(PFloat::ulp_error(f.exact_value(), x, 52), 0.0);
  }
}

TEST(FcsFormat, SignificandPlacement) {
  FcsOperand f = ieee_to_fcs(PFloat::from_double(kBinary64, 1.0));
  EXPECT_TRUE(f.mant().sum().bit(82));
  EXPECT_EQ(f.mant().to_binary().bit_width(), 83);
  // Digits 83..86 (sign + 3-digit LZA margin) stay clear on entry.
  for (int dgt = 83; dgt < 87; ++dgt) EXPECT_EQ(f.mant().digit(dgt), 0);
}

TEST(FcsFormat, BothPlanesAreLive) {
  // Unlike the PCS operand, every digit may carry a CS carry bit: a
  // redundant encoding must round-trip through the value semantics.
  CsWord s = CsWord(0x5ull) << 80, c = CsWord(0x3ull) << 80;
  CsNum mant(87, s, c);
  FcsOperand f(mant, CsNum::zero(29), 0, FpClass::Normal, false);
  EXPECT_EQ(f.mant().to_binary(), (s + c).truncated(87));
}

TEST(FcsFormat, DigitZeroDetection) {
  // mant_digits_all_zero is the reliable all-0 check of Sec. III-G: it
  // must be digit-level (redundant zeros do NOT count).
  FcsOperand z(CsNum::zero(87), CsNum::zero(29), 0, FpClass::Normal, false);
  EXPECT_TRUE(z.mant_digits_all_zero());
  // 1...1 + 1 wraps to value zero but digits are not zero.
  CsNum redundant(87, CsWord::mask(87), CsWord(1ull));
  EXPECT_TRUE(redundant.is_value_zero());
  FcsOperand r(redundant, CsNum::zero(29), 0, FpClass::Normal, false);
  EXPECT_FALSE(r.mant_digits_all_zero());
}

TEST(FcsFormat, RoundIncrementTies) {
  auto with_tail = [](bool negative, CsWord tsum, CsWord tcarry) {
    CsNum mant = CsNum::from_signed(87, negative, CsWord(1ull) << 82);
    return FcsOperand(mant, CsNum(29, tsum.truncated(29), tcarry.truncated(29)),
                      0, FpClass::Normal, negative);
  };
  const CsWord half = CsWord::bit_at(28);
  EXPECT_EQ(with_tail(false, half - CsWord(1ull), CsWord()).round_increment(), 0);
  EXPECT_EQ(with_tail(false, half, CsWord()).round_increment(), 1);
  EXPECT_EQ(with_tail(true, half, CsWord()).round_increment(), 0);
  // Carry-plane bits participate in the decision at digit value level.
  EXPECT_EQ(with_tail(false, half - CsWord(1ull), CsWord(1ull)).round_increment(),
            1);
}

TEST(FcsFormat, SpecialsRoundTrip) {
  EXPECT_TRUE(fcs_to_ieee(ieee_to_fcs(PFloat::nan(kBinary64)), kBinary64,
                          Round::NearestEven)
                  .is_nan());
  PFloat ninf = PFloat::inf(kBinary64, true);
  EXPECT_TRUE(PFloat::same_value(
      fcs_to_ieee(ieee_to_fcs(ninf), kBinary64, Round::NearestEven), ninf));
}

}  // namespace
}  // namespace csfma
