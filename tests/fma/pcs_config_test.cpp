// The configurable-geometry PCS-FMA (the paper's Sec. V future work).
#include "fma/pcs_config.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fma/pcs_fma.hpp"

namespace csfma {
namespace {
PcsConfig kPcs56g28() { return PcsConfig{56, 28}; }
}  // namespace
}  // namespace csfma

namespace csfma {
namespace {

TEST(PcsConfig, PaperGeometryDerivesTheFixedConstants) {
  const PcsConfig& c = kPaperPcs;
  EXPECT_EQ(c.mant_digits(), 110);
  EXPECT_EQ(c.tail_digits(), 55);
  EXPECT_EQ(c.product_width(), 163);
  EXPECT_EQ(c.adder_width(), 385);
  EXPECT_EQ(c.sig_msb_digit(), 107);
  EXPECT_EQ(c.frac_bits(), 162);
  EXPECT_EQ(c.mant_carries(), 10);
  EXPECT_EQ(c.operand_bits(), 192);
}

TEST(PcsConfig, Sec5CandidateGeometries) {
  // 56b blocks admit the 8- and 14-bit carry spacings Sec. V suggests.
  for (const PcsConfig& c : {kPcs56g8, kPcs56g14}) {
    EXPECT_NO_THROW(c.validate());
    EXPECT_EQ(c.mant_digits(), 112);
    EXPECT_GE(c.guaranteed_digits(), 53);  // still exceeds double
  }
  EXPECT_EQ(kPcs56g8.mant_carries(), 14);
  EXPECT_EQ(kPcs56g14.mant_carries(), 8);
}

TEST(PcsConfig, InvalidGeometriesRejected) {
  EXPECT_THROW((PcsConfig{55, 7}).validate(), CheckError);   // 7 !| 55
  EXPECT_THROW((PcsConfig{70, 10}).validate(), CheckError);  // window overflow
  EXPECT_THROW((PcsConfig{4, 2}).validate(), CheckError);    // too small
}

TEST(PcsConfig, PaperGeometryMatchesFixedUnitExactly) {
  // GenPcsFma at (55, 11) must be bit-identical to the hand-written unit.
  Rng rng(200);
  GenPcsFma gen(kPaperPcs);
  PcsFma fixed;
  for (int i = 0; i < 20000; ++i) {
    PFloat a = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-60, 60));
    PFloat b = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-60, 60));
    PFloat c = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-60, 60));
    PFloat rg = gen.fma_ieee(a, b, c, Round::HalfAwayFromZero);
    PFloat rf = fixed.fma_ieee(a, b, c, Round::HalfAwayFromZero);
    ASSERT_TRUE(PFloat::same_value(rg, rf))
        << a.to_string() << " " << b.to_string() << " " << c.to_string();
  }
}

TEST(PcsConfig, Block56IsCorrectlyRounded) {
  Rng rng(201);
  for (const PcsConfig& cfg : {kPcs56g8, kPcs56g14}) {
    GenPcsFma unit(cfg);
    for (int i = 0; i < 10000; ++i) {
      PFloat a = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-40, 40));
      PFloat b = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-40, 40));
      PFloat c = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-40, 40));
      PFloat got = unit.fma_ieee(a, b, c, Round::HalfAwayFromZero);
      PFloat ref = PFloat::fma(b, c, a, kBinary64, Round::HalfAwayFromZero);
      ASSERT_TRUE(PFloat::same_value(got, ref)) << i;
    }
  }
}

TEST(PcsConfig, SmallBlocksLoseAccuracyGracefully) {
  // A 22b-block geometry holds only ~41 significand bits: results are
  // still within its own guarantee, far off binary64.
  Rng rng(202);
  GenPcsFma unit(PcsConfig{22, 11});
  double mean = 0;
  int counted = 0;
  for (int i = 0; i < 5000; ++i) {
    PFloat a = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-10, 10));
    PFloat b = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-10, 10));
    PFloat c = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-10, 10));
    PFloat got = unit.fma_ieee(a, b, c, Round::HalfAwayFromZero);
    PFloat ref = PFloat::fma(b, c, a, kBinary64, Round::HalfAwayFromZero);
    if (!ref.is_normal()) continue;
    mean += PFloat::ulp_error(got, ref, 52);
    ++counted;
  }
  mean /= counted;
  // The geometry guarantees ~41 significant digits: mean error near one
  // ulp of ITS precision, i.e. ~2^(52-41) binary64 ulps (cancellation can
  // push individual cases higher).
  EXPECT_GT(mean, 64.0);
  EXPECT_LT(mean, 65536.0);
}

TEST(PcsConfig, WideGeometriesAreExactAtBinary64) {
  Rng rng(204);
  for (PcsConfig cfg : {PcsConfig{33, 11}, PcsConfig{44, 4}, kPcs56g28()}) {
    GenPcsFma unit(cfg);
    for (int i = 0; i < 5000; ++i) {
      PFloat a = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-30, 30));
      PFloat b = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-30, 30));
      PFloat c = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-30, 30));
      PFloat got = unit.fma_ieee(a, b, c, Round::HalfAwayFromZero);
      PFloat ref = PFloat::fma(b, c, a, kBinary64, Round::HalfAwayFromZero);
      ASSERT_TRUE(PFloat::same_value(got, ref)) << cfg.block << "/" << cfg.group;
    }
  }
}

TEST(PcsConfig, ChainsWorkAcrossGeometries) {
  Rng rng(203);
  for (PcsConfig cfg : {PcsConfig{44, 11}, kPaperPcs, kPcs56g8}) {
    GenPcsFma unit(cfg);
    PFloat b1 = PFloat::from_double(kBinary64, 1.5);
    GenPcsOperand acc = ieee_to_genpcs(cfg, PFloat::from_double(kBinary64, 1.0));
    // acc = 1 + 1.5*acc five times: exact in every geometry >= 30 digits.
    for (int i = 0; i < 5; ++i) {
      acc = unit.fma(ieee_to_genpcs(cfg, PFloat::from_double(kBinary64, 1.0)),
                     b1, acc);
    }
    double expect = 1.0;
    for (int i = 0; i < 5; ++i) expect = 1.0 + 1.5 * expect;
    EXPECT_EQ(genpcs_to_ieee(acc, kBinary64, Round::HalfAwayFromZero).to_double(),
              expect)
        << cfg.block << "/" << cfg.group;
  }
}

TEST(PcsConfig, OperandBitsScaleWithGeometry) {
  // The Sec. V trade-off: denser carries widen the operand.
  EXPECT_LT(PcsConfig({55, 55}).operand_bits(), kPaperPcs.operand_bits());
  EXPECT_GT(PcsConfig({55, 5}).operand_bits(), kPaperPcs.operand_bits());
  EXPECT_GT(kPcs56g8.operand_bits(), kPcs56g14.operand_bits());
}

}  // namespace
}  // namespace csfma
