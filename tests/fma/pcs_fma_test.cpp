// The PCS-FMA unit against the correctly rounded reference.
#include "fma/pcs_fma.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace csfma {
namespace {

struct RangeCase {
  const char* name;
  int emin, emax;
};

class PcsFmaSweep : public ::testing::TestWithParam<RangeCase> {};

TEST_P(PcsFmaSweep, SingleOpIsCorrectlyRounded) {
  // A single replaced multiply/add (convert in, one FMA, convert out)
  // produces the correctly rounded fused result: the 55b rounding tail
  // travels to the output conversion, which rounds once.
  const RangeCase& tc = GetParam();
  Rng rng(80 + tc.emax);
  PcsFma unit;
  for (int i = 0; i < 20000; ++i) {
    PFloat a = PFloat::from_double(kBinary64,
                                   rng.next_fp_in_exp_range(tc.emin, tc.emax));
    PFloat b = PFloat::from_double(kBinary64,
                                   rng.next_fp_in_exp_range(tc.emin, tc.emax));
    PFloat c = PFloat::from_double(kBinary64,
                                   rng.next_fp_in_exp_range(tc.emin, tc.emax));
    PFloat got = unit.fma_ieee(a, b, c, Round::HalfAwayFromZero);
    PFloat ref = PFloat::fma(b, c, a, kBinary64, Round::HalfAwayFromZero);
    ASSERT_TRUE(PFloat::same_value(got, ref))
        << a.to_string() << " + " << b.to_string() << " * " << c.to_string()
        << " got " << got.to_string() << " want " << ref.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, PcsFmaSweep,
    ::testing::Values(RangeCase{"narrow", -2, 2}, RangeCase{"mid", -40, 40},
                      RangeCase{"wide", -300, 300},
                      RangeCase{"huge", -800, 800}),
    [](const ::testing::TestParamInfo<RangeCase>& i) { return i.param.name; });

TEST(PcsFma, CancellationExact) {
  // a + b*c with a = -(b*c) exactly: fused result must be exactly zero.
  // Use 26-bit significands so the product is exactly representable.
  Rng rng(81);
  PcsFma unit;
  for (int i = 0; i < 5000; ++i) {
    auto short_sig = [&rng] {
      double m = (double)(rng.next_below(1 << 26) | (1u << 25));
      return std::ldexp(rng.next_bool() ? m : -m, (int)rng.next_int(-20, 20));
    };
    PFloat b = PFloat::from_double(kBinary64, short_sig());
    PFloat c = PFloat::from_double(kBinary64, short_sig());
    PFloat prod = PFloat::mul(b, c, kBinary64, Round::NearestEven);  // exact
    PcsOperand a = ieee_to_pcs(prod.negated());
    PcsOperand r = unit.fma(a, b, ieee_to_pcs(c));
    EXPECT_TRUE(r.is_zero()) << r.to_string();
  }
}

TEST(PcsFma, RoundingErrorRecovery) {
  // fma(c, c, -round(c*c)) recovers the exact square rounding error.
  const double cd = 1.0 + 0x1p-30;
  PcsFma unit;
  PFloat c = PFloat::from_double(kBinary64, cd);
  PFloat sq = PFloat::mul(c, c, kBinary64, Round::NearestEven);
  PFloat r = unit.fma_ieee(sq.negated(), c, c, Round::HalfAwayFromZero);
  EXPECT_EQ(r.to_double(), std::fma(cd, cd, -(cd * cd)));
}

TEST(PcsFma, ExceptionWires) {
  PcsFma unit;
  const PFloat one = PFloat::from_double(kBinary64, 1.0);
  const PFloat pz = PFloat::zero(kBinary64, false);
  const PFloat pinf = PFloat::inf(kBinary64, false);
  EXPECT_TRUE(unit.fma(ieee_to_pcs(one), PFloat::nan(kBinary64),
                       ieee_to_pcs(one))
                  .is_nan());
  EXPECT_TRUE(unit.fma(ieee_to_pcs(one), pinf, ieee_to_pcs(pz)).is_nan());
  EXPECT_TRUE(unit.fma(ieee_to_pcs(pinf), one, ieee_to_pcs(one)).is_inf());
  // inf - inf through the product path.
  PcsOperand r = unit.fma(ieee_to_pcs(pinf.negated()), one, ieee_to_pcs(pinf));
  EXPECT_TRUE(r.is_nan());
  // Ordinary inf propagation keeps the sign.
  PcsOperand s = unit.fma(ieee_to_pcs(one), one.negated(), ieee_to_pcs(pinf));
  EXPECT_TRUE(s.is_inf());
  EXPECT_TRUE(s.exc_sign());
}

TEST(PcsFma, ZeroProductPassesAThrough) {
  PcsFma unit;
  Rng rng(82);
  for (int i = 0; i < 2000; ++i) {
    PFloat a = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-50, 50));
    PcsOperand r = unit.fma(ieee_to_pcs(a), PFloat::zero(kBinary64, false),
                            ieee_to_pcs(PFloat::from_double(kBinary64, 2.0)));
    EXPECT_EQ(pcs_to_ieee(r, kBinary64, Round::NearestEven).to_double(),
              a.to_double());
  }
}

TEST(PcsFma, ResultStaysOnFormatGrid) {
  // Constructor checks guarantee grid validity; exercise a spread of
  // magnitudes including heavy cancellation and far-apart exponents.
  Rng rng(83);
  PcsFma unit;
  for (int i = 0; i < 20000; ++i) {
    PFloat a = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-900, 900));
    PFloat b = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-900, 900));
    PFloat c = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-900, 900));
    PcsOperand r = unit.fma(ieee_to_pcs(a), b, ieee_to_pcs(c));
    if (r.cls() == FpClass::Normal) {
      // |mantissa| respects the signed window (needed by the next unit's
      // 163b product bound).
      EXPECT_LT(r.mant().as_cs().magnitude(), CsWord::bit_at(109));
    }
  }
}

TEST(PcsFma, ChainedOperandsSkipExitRounding) {
  // Chained: t = b2*x + y staying in PCS, then r = b1*t + z; vs the exact
  // composition.  The deferred tail keeps the chain within 1 ulp of exact.
  Rng rng(84);
  PcsFma unit;
  for (int i = 0; i < 5000; ++i) {
    PFloat x = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-8, 8));
    PFloat y = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-8, 8));
    PFloat z = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-8, 8));
    PFloat b1 = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-4, 4));
    PFloat b2 = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-4, 4));
    PcsOperand t = unit.fma(ieee_to_pcs(y), b2, ieee_to_pcs(x));
    PcsOperand r = unit.fma(ieee_to_pcs(z), b1, t);
    PFloat got = pcs_to_ieee(r, kBinary64, Round::HalfAwayFromZero);
    // Exact composition in the wide format.
    PFloat te = PFloat::fma(b2, x, y, kWideExact, Round::NearestEven);
    PFloat re = PFloat::fma(b1, te, z, kWideExact, Round::NearestEven);
    if (!re.is_normal()) continue;
    double err = PFloat::ulp_error(got, re, 52);
    // Error envelope: half an ulp at the exit rounding, plus t's deferred
    // rounding.  The transfer guarantees >= ~53 significant digits above
    // the rounding point (the ZD may leave the leading digit near the
    // bottom of the top 55b block), so that contribution is up to ~2^-56
    // relative to b1*t, amplified by cancellation against z.
    const double ratio =
        std::fabs(b1.to_double() * te.to_double() / re.to_double());
    const double envelope = 0.55 + 0.25 * ratio;
    ASSERT_LE(err, envelope) << "chain error " << err << " ratio " << ratio;
  }
}

TEST(PcsFma, TruncateThenRoundMisroundingWitness) {
  // Sec. III-E: the deferred rounding examines only the single 55b block;
  // information below it was truncated by the producing unit's mux.  Build
  // a C operand whose tail is 0111...1 (one lsb below half): the unit must
  // round DOWN even though the pre-truncation value may have been >= half.
  CsNum mant = CsNum::from_signed(110, false, CsWord(1ull) << 107);
  PcsNum tail_just_below(55, 11, CsWord::mask(54), CsWord());
  PcsOperand c(PcsNum(110, 11, mant.sum(), mant.carry()), tail_just_below, 0,
               FpClass::Normal, false);
  EXPECT_EQ(c.round_increment(), 0);  // the documented erroneous round-down
  // One explicit carry anywhere in the tail tips it over.
  PcsOperand c2(PcsNum(110, 11, mant.sum(), mant.carry()),
                PcsNum(55, 11, CsWord::mask(54), CsWord::bit_at(11)), 0,
                FpClass::Normal, false);
  EXPECT_EQ(c2.round_increment(), 1);

  // End-to-end: multiplying by B=1 with A=0 exposes the one-ulp gap the
  // paper accepts ("0.500...083" bound).
  PcsFma unit;
  PFloat one = PFloat::from_double(kBinary64, 1.0);
  PcsOperand r1 = unit.fma(PcsOperand::make_zero(false), one, c);
  PcsOperand r2 = unit.fma(PcsOperand::make_zero(false), one, c2);
  // Compare the transferred integers directly (this sits below the 101-bit
  // readout precision): the two results differ by exactly B_M = 2^52 at
  // the product scale — one deferred-rounding ulp.
  ASSERT_EQ(r1.cls(), FpClass::Normal);
  ASSERT_EQ(r2.cls(), FpClass::Normal);
  ASSERT_EQ(r1.exp(), r2.exp());
  WideUint<8> x1 = (WideUint<8>(r1.mant().to_binary()).sext(110) << 55) +
                   WideUint<8>(r1.tail_assimilated());
  WideUint<8> x2 = (WideUint<8>(r2.mant().to_binary()).sext(110) << 55) +
                   WideUint<8>(r2.tail_assimilated());
  EXPECT_EQ(x2 - x1, WideUint<8>(1ull) << 52);
}

TEST(PcsFma, ZdSkipTracksMagnitudes) {
  // Balanced inputs land in the middle of the adder window; the ZD then
  // skips the two empty top blocks.
  PcsFma unit;
  PFloat one = PFloat::from_double(kBinary64, 1.0);
  unit.fma(ieee_to_pcs(one), one, ieee_to_pcs(one));
  EXPECT_EQ(unit.last_zd_skip(), 2);
  // A dominating A shifted far left leaves fewer skippable blocks.
  PFloat big = PFloat::from_double(kBinary64, 0x1p90);
  unit.fma(ieee_to_pcs(big), one, ieee_to_pcs(one));
  EXPECT_LT(unit.last_zd_skip(), 2);
}

TEST(PcsFma, MultiplierTreeGeometry) {
  // 21 DSP tiles (Sec. IV / Table I) -> 21 CSA rows.
  PcsFma unit;
  PFloat v = PFloat::from_double(kBinary64, 1.5);
  unit.fma(ieee_to_pcs(v), v, ieee_to_pcs(v));
  EXPECT_EQ(unit.last_mul_stats().rows, 21);
  EXPECT_EQ(unit.last_mul_stats().levels, csa_levels_for_rows(21));
}

}  // namespace
}  // namespace csfma
