// Chained-FMA accuracy on the paper's Sec. IV-B recurrence:
//   x[n] = B1*x[n-1] + B2*x[n-2] + x[n-3],  1 < |B1| < 32, 0 < |B2| < 1,
// evaluated to x[50] through pairs of chained units with deferred rounding,
// against the 75b CoreGen-style golden reference (Fig 14's methodology).
//
// The chains are wired through the unified FmaUnit interface: values stay
// in the unit's native inter-operation format (carry-save for PCS/FCS)
// between operations and are rounded out once at the end — the same code
// drives every architecture.
#include <gtest/gtest.h>

#include <array>

#include "common/rng.hpp"
#include "fma/fma_unit.hpp"

namespace csfma {
namespace {

struct RecurrenceInputs {
  double b1, b2;
  std::array<double, 3> x0;
};

RecurrenceInputs random_inputs(Rng& rng) {
  RecurrenceInputs in;
  in.b1 = rng.next_double(1.0, 32.0) * (rng.next_bool() ? 1 : -1);
  in.b2 = rng.next_double(0.0, 1.0);
  if (in.b2 == 0.0) in.b2 = 0.5;
  if (rng.next_bool()) in.b2 = -in.b2;
  for (auto& x : in.x0) x = rng.next_double(-1.0, 1.0);
  return in;
}

/// Reference recurrence at an arbitrary working format.
PFloat reference(const RecurrenceInputs& in, const FloatFormat& fmt, int n) {
  PFloat b1 = PFloat::from_double(fmt, in.b1);
  PFloat b2 = PFloat::from_double(fmt, in.b2);
  PFloat x3 = PFloat::from_double(fmt, in.x0[0]);
  PFloat x2 = PFloat::from_double(fmt, in.x0[1]);
  PFloat x1 = PFloat::from_double(fmt, in.x0[2]);
  for (int i = 3; i <= n; ++i) {
    // Discrete operators: each multiply and add rounds (CoreGen model).
    PFloat t = PFloat::add(PFloat::mul(b2, x2, fmt, Round::NearestEven), x3,
                           fmt, Round::NearestEven);
    PFloat x = PFloat::add(PFloat::mul(b1, x1, fmt, Round::NearestEven), t,
                           fmt, Round::NearestEven);
    x3 = x2;
    x2 = x1;
    x1 = x;
  }
  return x1;
}

/// The recurrence through any unit: values stay in the unit's native
/// format between the two chained FMAs; only the final readout rounds.
PFloat unit_chain(UnitKind kind, const RecurrenceInputs& in, int n) {
  auto unit = make_fma_unit(kind);
  PFloat b1 = PFloat::from_double(kBinary64, in.b1);
  PFloat b2 = PFloat::from_double(kBinary64, in.b2);
  FmaOperand x3 = unit->lift(PFloat::from_double(kBinary64, in.x0[0]));
  FmaOperand x2 = unit->lift(PFloat::from_double(kBinary64, in.x0[1]));
  FmaOperand x1 = unit->lift(PFloat::from_double(kBinary64, in.x0[2]));
  for (int i = 3; i <= n; ++i) {
    FmaOperand t = unit->fma(x3, b2, x2);
    FmaOperand x = unit->fma(t, b1, x1);
    x3 = x2;
    x2 = x1;
    x1 = x;
  }
  return unit->lower(x1, Round::HalfAwayFromZero);
}

TEST(FmaChain, PcsChainStaysNearGolden) {
  Rng rng(110);
  for (int run = 0; run < 20; ++run) {
    RecurrenceInputs in = random_inputs(rng);
    PFloat golden = reference(in, kBinary75, 50);
    double err = PFloat::ulp_error(unit_chain(UnitKind::Pcs, in, 50), golden, 52);
    // ~96 chained operations with deferred rounding: stays within a few
    // double-precision ulps of the 75b golden.
    EXPECT_LE(err, 16.0) << "run " << run << " err " << err;
  }
}

TEST(FmaChain, FcsChainStaysNearGolden) {
  Rng rng(111);
  for (int run = 0; run < 20; ++run) {
    RecurrenceInputs in = random_inputs(rng);
    PFloat golden = reference(in, kBinary75, 50);
    double err = PFloat::ulp_error(unit_chain(UnitKind::Fcs, in, 50), golden, 52);
    EXPECT_LE(err, 16.0) << "run " << run << " err " << err;
  }
}

TEST(FmaChain, CsChainsBeat64bOnAverage) {
  // Fig 14's claim: both CS-FMA chains clearly outperform standard double
  // precision in average accuracy over 20 computations.
  Rng rng(112);
  double e64 = 0, e_pcs = 0, e_fcs = 0;
  const int runs = 20;
  for (int run = 0; run < runs; ++run) {
    RecurrenceInputs in = random_inputs(rng);
    PFloat golden = reference(in, kBinary75, 50);
    e64 += PFloat::ulp_error(reference(in, kBinary64, 50), golden, 52);
    e_pcs += PFloat::ulp_error(unit_chain(UnitKind::Pcs, in, 50), golden, 52);
    e_fcs += PFloat::ulp_error(unit_chain(UnitKind::Fcs, in, 50), golden, 52);
  }
  EXPECT_LT(e_pcs, e64);
  EXPECT_LT(e_fcs, e64);
}

TEST(FmaChain, Binary68BeatsBinary64) {
  // Internal consistency of the Fig 14 reference ladder.
  Rng rng(113);
  double e64 = 0, e68 = 0;
  for (int run = 0; run < 20; ++run) {
    RecurrenceInputs in = random_inputs(rng);
    PFloat golden = reference(in, kBinary75, 50);
    e64 += PFloat::ulp_error(reference(in, kBinary64, 50), golden, 52);
    e68 += PFloat::ulp_error(reference(in, kBinary68, 50), golden, 52);
  }
  EXPECT_LT(e68, e64);
}

TEST(FmaChain, DiscreteUnitMatchesReference) {
  // The discrete (CoreGen) unit behind the interface computes the same
  // values as the binary64 reference recurrence: its native format is
  // plain IEEE, so the chain IS the discrete pipeline.
  Rng rng(114);
  for (int run = 0; run < 10; ++run) {
    RecurrenceInputs in = random_inputs(rng);
    PFloat got = unit_chain(UnitKind::Discrete, in, 50);
    PFloat want = reference(in, kBinary64, 50);
    EXPECT_TRUE(PFloat::same_value(got, want));
  }
}

}  // namespace
}  // namespace csfma
