// The unified FmaUnit interface: factory wiring, metadata, and agreement
// of the adapters with the concrete unit simulators they wrap.
#include "fma/fma_unit.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fma/classic_fma.hpp"
#include "fma/discrete.hpp"
#include "fma/fcs_fma.hpp"
#include "fma/pcs_fma.hpp"

namespace csfma {
namespace {

PFloat rand_op(Rng& rng) {
  return PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-8, 8));
}

TEST(FmaUnit, FactoryCoversEveryKindWithStableMetadata) {
  for (UnitKind kind : kAllUnitKinds) {
    auto unit = make_fma_unit(kind);
    ASSERT_NE(unit, nullptr) << to_string(kind);
    EXPECT_EQ(unit->kind(), kind);
    EXPECT_FALSE(unit->name().empty());
  }
  EXPECT_EQ(make_fma_unit(UnitKind::Discrete)->latency_class(),
            LatencyClass::DiscretePair);
  EXPECT_EQ(make_fma_unit(UnitKind::Classic)->latency_class(),
            LatencyClass::FusedClassic);
  EXPECT_EQ(make_fma_unit(UnitKind::Pcs)->latency_class(),
            LatencyClass::CarrySave);
  EXPECT_EQ(make_fma_unit(UnitKind::Fcs)->latency_class(),
            LatencyClass::CarrySave);
}

TEST(FmaUnit, AdaptersAgreeWithConcreteUnits) {
  Rng rng(300);
  auto discrete = make_fma_unit(UnitKind::Discrete);
  auto classic = make_fma_unit(UnitKind::Classic);
  auto pcs = make_fma_unit(UnitKind::Pcs);
  auto fcs = make_fma_unit(UnitKind::Fcs);
  DiscreteMulAdd discrete_ref;
  ClassicFma classic_ref;
  PcsFma pcs_ref;
  FcsFma fcs_ref;
  for (int i = 0; i < 500; ++i) {
    PFloat a = rand_op(rng), b = rand_op(rng), c = rand_op(rng);
    const Round rm = Round::HalfAwayFromZero;
    EXPECT_TRUE(PFloat::same_value(discrete->fma_ieee(a, b, c, rm),
                                   discrete_ref.mul_add(a, b, c)));
    EXPECT_TRUE(PFloat::same_value(classic->fma_ieee(a, b, c, rm),
                                   classic_ref.fma(a, b, c)));
    EXPECT_TRUE(PFloat::same_value(pcs->fma_ieee(a, b, c, rm),
                                   pcs_ref.fma_ieee(a, b, c, rm)));
    EXPECT_TRUE(PFloat::same_value(fcs->fma_ieee(a, b, c, rm),
                                   fcs_ref.fma_ieee(a, b, c, rm)));
  }
}

TEST(FmaUnit, LiftLowerRoundTripsIeeeValues) {
  Rng rng(301);
  for (UnitKind kind : kAllUnitKinds) {
    auto unit = make_fma_unit(kind);
    for (int i = 0; i < 200; ++i) {
      PFloat v = rand_op(rng);
      PFloat back = unit->lower(unit->lift(v), Round::NearestEven);
      EXPECT_TRUE(PFloat::same_value(back, v))
          << to_string(kind) << " " << v.to_double();
    }
  }
}

TEST(FmaUnit, NativeChainMatchesExplicitPcsChain) {
  // The lift/fma/lower view wires the same datapath a hand-written
  // PcsOperand chain does.
  Rng rng(302);
  auto unit = make_fma_unit(UnitKind::Pcs);
  PcsFma ref;
  for (int i = 0; i < 50; ++i) {
    PFloat a = rand_op(rng), b1 = rand_op(rng), c = rand_op(rng),
           b2 = rand_op(rng), d = rand_op(rng);
    // Two chained ops through the interface...
    FmaOperand acc = unit->fma(unit->lift(a), b1, unit->lift(c));
    acc = unit->fma(acc, b2, unit->lift(d));
    PFloat got = unit->lower(acc, Round::HalfAwayFromZero);
    // ...and through the concrete unit.
    PcsOperand r = ref.fma(ieee_to_pcs(a), b1, ieee_to_pcs(c));
    r = ref.fma(r, b2, ieee_to_pcs(d));
    PFloat want = pcs_to_ieee(r, kBinary64, Round::HalfAwayFromZero);
    EXPECT_TRUE(PFloat::same_value(got, want));
  }
}

TEST(FmaUnit, OperandUnwrapIsTypeChecked) {
  auto pcs = make_fma_unit(UnitKind::Pcs);
  FmaOperand v = pcs->lift(PFloat::from_double(kBinary64, 1.5));
  EXPECT_TRUE(v.is_pcs());
  EXPECT_FALSE(v.is_ieee());
  EXPECT_FALSE(v.is_fcs());
}

TEST(FmaUnit, ActivityRecorderReceivesToggles) {
  Rng rng(303);
  for (UnitKind kind : kAllUnitKinds) {
    ActivityRecorder rec;
    auto unit = make_fma_unit(kind, &rec);
    for (int i = 0; i < 16; ++i) {
      unit->fma_ieee(rand_op(rng), rand_op(rng), rand_op(rng),
                     Round::NearestEven);
    }
    EXPECT_GT(rec.total_toggles(), 0u) << to_string(kind);
  }
}

}  // namespace
}  // namespace csfma
