// The fused dot-product unit against wide-precision references.
#include "fma/dot_product.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "fma/pcs_fma.hpp"

namespace csfma {
namespace {

std::vector<std::pair<PFloat, PFloat>> random_terms(Rng& rng, int n, int emin,
                                                    int emax) {
  std::vector<std::pair<PFloat, PFloat>> t;
  for (int i = 0; i < n; ++i) {
    t.emplace_back(
        PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(emin, emax)),
        PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(emin, emax)));
  }
  return t;
}

/// Reference: accumulate in the 101-bit-wide format with fused steps.
PFloat wide_reference(const std::vector<std::pair<PFloat, PFloat>>& terms) {
  PFloat acc = PFloat::zero(kWideExact, false);
  for (const auto& [a, b] : terms)
    acc = PFloat::fma(a, b, acc, kWideExact, Round::NearestEven);
  return acc;
}

TEST(DotProduct, MatchesWideReference) {
  Rng rng(170);
  PcsDotProduct unit;
  for (int trial = 0; trial < 3000; ++trial) {
    int n = (int)rng.next_int(1, 8);
    auto terms = random_terms(rng, n, -12, 12);
    PFloat got = unit.dot_ieee(terms, Round::HalfAwayFromZero);
    PFloat ref = wide_reference(terms);
    if (!ref.is_normal()) continue;
    double err = PFloat::ulp_error(got, ref, 52);
    ASSERT_LE(err, 0.75) << "n=" << n << " err=" << err;
  }
}

TEST(DotProduct, SingleFusedRoundingBeatsSequentialFma) {
  // sum of cancelling products: a*b - a*b + tiny picks up zero error when
  // fused; a sequential discrete pipeline loses the tiny term's accuracy
  // only in adverse cases — construct one:  s = x*x - round(x*x) as a dot.
  const double x = 1.0 + 0x1p-30;
  PFloat fx = PFloat::from_double(kBinary64, x);
  PFloat sq = PFloat::mul(fx, fx, kBinary64, Round::NearestEven);
  PFloat mone = PFloat::from_double(kBinary64, -1.0);
  PcsDotProduct unit;
  PFloat r = unit.dot_ieee({{fx, fx}, {sq, mone}}, Round::HalfAwayFromZero);
  EXPECT_EQ(r.to_double(), std::fma(x, x, -sq.to_double()));
}

TEST(DotProduct, CancellationToExactZero) {
  Rng rng(171);
  PcsDotProduct unit;
  for (int trial = 0; trial < 2000; ++trial) {
    PFloat a = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-9, 9));
    PFloat b = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-9, 9));
    PcsOperand r = unit.dot({{a, b}, {a.negated(), b}});
    EXPECT_TRUE(r.is_zero());
  }
}

TEST(DotProduct, SpecialValues) {
  PcsDotProduct unit;
  const PFloat one = PFloat::from_double(kBinary64, 1.0);
  const PFloat pinf = PFloat::inf(kBinary64, false);
  const PFloat zero = PFloat::zero(kBinary64, false);
  EXPECT_TRUE(unit.dot({{pinf, zero}}).is_nan());
  EXPECT_TRUE(unit.dot({{pinf, one}, {one, one}}).is_inf());
  EXPECT_TRUE(unit.dot({{pinf, one}, {pinf.negated(), one}}).is_nan());
  EXPECT_TRUE(unit.dot({{PFloat::nan(kBinary64), one}}).is_nan());
  EXPECT_TRUE(unit.dot({}).is_zero());
  EXPECT_TRUE(unit.dot({{zero, one}, {one, zero}}).is_zero());
}

TEST(DotProduct, ResultChainsIntoFma) {
  // The fused dot result feeds a PCS-FMA without an intermediate rounding.
  Rng rng(172);
  PcsDotProduct dot;
  PcsFma fma;
  for (int trial = 0; trial < 1000; ++trial) {
    auto terms = random_terms(rng, 4, -6, 6);
    PFloat b = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-4, 4));
    PFloat c = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-4, 4));
    // r = dot(terms) + b*c with the dot result kept in carry-save.
    PcsOperand acc = dot.dot(terms);
    PcsOperand r = fma.fma(acc, b, ieee_to_pcs(c));
    PFloat got = pcs_to_ieee(r, kBinary64, Round::HalfAwayFromZero);
    PFloat ref = PFloat::fma(b, c, wide_reference(terms), kWideExact,
                             Round::NearestEven);
    if (!ref.is_normal()) continue;
    double err = PFloat::ulp_error(got, ref, 52);
    ASSERT_LE(err, 1.0) << err;
  }
}

TEST(DotProduct, WideDynamicRangeTruncatesGracefully) {
  // A term 300 bits below the largest cannot influence a binary64 result.
  PcsDotProduct unit;
  PFloat big = PFloat::from_double(kBinary64, 0x1p100);
  PFloat tiny = PFloat::from_double(kBinary64, 0x1p-200);
  PFloat one = PFloat::from_double(kBinary64, 1.0);
  PFloat r = unit.dot_ieee({{big, big}, {tiny, one}}, Round::HalfAwayFromZero);
  EXPECT_EQ(r.to_double(), 0x1p200);
}

TEST(DotProduct, TreeRowsScaleWithTerms) {
  Rng rng(173);
  PcsDotProduct unit;
  auto t4 = random_terms(rng, 4, -2, 2);
  unit.dot(t4);
  int rows4 = unit.last_tree_stats().rows;
  auto t8 = random_terms(rng, 8, -2, 2);
  unit.dot(t8);
  int rows8 = unit.last_tree_stats().rows;
  EXPECT_EQ(rows4, 4);
  EXPECT_EQ(rows8, 8);
}

}  // namespace
}  // namespace csfma
