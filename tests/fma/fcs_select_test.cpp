// ZD-based vs early-LZA block selection in the FCS unit (the Sec. III-F /
// III-G design alternative exposed by FcsSelect).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "cs/csa_tree.hpp"
#include "fma/fcs_fma.hpp"
#include "fma/pcs_format.hpp"  // kWideExact

namespace csfma {
namespace {

TEST(FcsSelect, BothModesCorrectlyRoundedOnBalancedInputs) {
  Rng rng(180);
  FcsFma lza(nullptr, FcsSelect::EarlyLza);
  FcsFma zd(nullptr, FcsSelect::ZeroDetect);
  for (int i = 0; i < 20000; ++i) {
    PFloat a = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-30, 30));
    PFloat b = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-30, 30));
    PFloat c = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-30, 30));
    PFloat ref = PFloat::fma(b, c, a, kBinary64, Round::HalfAwayFromZero);
    PFloat rl = lza.fma_ieee(a, b, c, Round::HalfAwayFromZero);
    PFloat rz = zd.fma_ieee(a, b, c, Round::HalfAwayFromZero);
    ASSERT_LE(PFloat::ulp_error(rl, ref, 52), 1.0);
    ASSERT_LE(PFloat::ulp_error(rz, ref, 52), 1.0);
  }
}

TEST(FcsSelect, ZdKeepsCancellationResidueLzaLoses) {
  // a = -(b*c) + residue far below: the early LZA anticipates at the big
  // operands' position; the exact ZD walks down to the residue.  Place the
  // residue ~120 bits below so it falls outside the LZA-selected window
  // but inside the ZD's reach.
  FcsFma lza(nullptr, FcsSelect::EarlyLza);
  FcsFma zd(nullptr, FcsSelect::ZeroDetect);
  // b*c = 3 * 5 = 15 exactly; a = -15; feed the residue through the tail
  // of a hand-built A operand: value -15 + 2^-120.
  PFloat b = PFloat::from_double(kBinary64, 3.0);
  PFloat c = PFloat::from_double(kBinary64, 5.0);
  // A = -15 exactly, plus one unit at the mantissa's least significant
  // digit — a residue ~82 digits below A's leading digit, inside the adder
  // window but far below the anticipated result position.
  FcsOperand a0 = ieee_to_fcs(PFloat::from_double(kBinary64, -15.0));
  CsNum bumped = cs_add_binary(a0.mant(), CsWord(1ull));
  FcsOperand a(bumped, CsNum::zero(29), a0.exp(), FpClass::Normal, true);
  FcsOperand rl = lza.fma(a, b, ieee_to_fcs(c));
  FcsOperand rz = zd.fma(a, b, ieee_to_fcs(c));
  // ZD finds the residue; its result is non-zero.
  EXPECT_FALSE(rz.is_zero());
  // The LZA window misses it entirely (the accepted inaccuracy).
  EXPECT_TRUE(rl.is_zero() || rl.exact_value().is_zero() ||
              std::fabs(rl.exact_value().to_double()) <=
                  std::fabs(rz.exact_value().to_double()) + 1e-300);
  // ZD residue value: one A-tail ulp = 2^(exp(a) - 111 - 0) scale.
  EXPECT_GT(std::fabs(rz.exact_value().to_double()), 0.0);
}

TEST(FcsSelect, ModesAgreeAwayFromCancellation) {
  Rng rng(181);
  FcsFma lza(nullptr, FcsSelect::EarlyLza);
  FcsFma zd(nullptr, FcsSelect::ZeroDetect);
  int agree = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    PFloat a = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-6, 6));
    PFloat b = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-6, 6));
    PFloat c = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-6, 6));
    PFloat rl = lza.fma_ieee(a, b, c, Round::HalfAwayFromZero);
    PFloat rz = zd.fma_ieee(a, b, c, Round::HalfAwayFromZero);
    if (PFloat::same_value(rl, rz)) ++agree;
  }
  EXPECT_GT(agree, n * 99 / 100);
}

TEST(FcsSelect, ZdChainAccuracyAtLeastAsGood) {
  // Over a chained recurrence, the exact selector can only do as well or
  // better than the anticipating one on average.
  Rng rng(182);
  double e_lza = 0, e_zd = 0;
  for (int run = 0; run < 10; ++run) {
    double b1 = rng.next_double(1.0, 32.0) * (rng.next_bool() ? 1 : -1);
    double b2 = rng.next_double(0.001, 1.0);
    double x0[3] = {rng.next_double(-1, 1), rng.next_double(-1, 1),
                    rng.next_double(-1, 1)};
    PFloat golden = PFloat::zero(kWideExact, false);
    {
      // wide reference with discrete fused steps
      PFloat B1 = PFloat::from_double(kWideExact, b1);
      PFloat B2 = PFloat::from_double(kWideExact, b2);
      PFloat x3 = PFloat::from_double(kWideExact, x0[0]);
      PFloat x2 = PFloat::from_double(kWideExact, x0[1]);
      PFloat x1 = PFloat::from_double(kWideExact, x0[2]);
      for (int i = 3; i <= 40; ++i) {
        PFloat t = PFloat::fma(B2, x2, x3, kWideExact, Round::NearestEven);
        PFloat x = PFloat::fma(B1, x1, t, kWideExact, Round::NearestEven);
        x3 = x2; x2 = x1; x1 = x;
      }
      golden = x1;
    }
    for (FcsSelect sel : {FcsSelect::EarlyLza, FcsSelect::ZeroDetect}) {
      FcsFma u(nullptr, sel);
      PFloat B1 = PFloat::from_double(kBinary64, b1);
      PFloat B2 = PFloat::from_double(kBinary64, b2);
      FcsOperand x3 = ieee_to_fcs(PFloat::from_double(kBinary64, x0[0]));
      FcsOperand x2 = ieee_to_fcs(PFloat::from_double(kBinary64, x0[1]));
      FcsOperand x1 = ieee_to_fcs(PFloat::from_double(kBinary64, x0[2]));
      for (int i = 3; i <= 40; ++i) {
        FcsOperand t = u.fma(x3, B2, x2);
        FcsOperand x = u.fma(t, B1, x1);
        x3 = x2; x2 = x1; x1 = x;
      }
      double e = PFloat::ulp_error(
          fcs_to_ieee(x1, kBinary64, Round::HalfAwayFromZero), golden, 52);
      (sel == FcsSelect::EarlyLza ? e_lza : e_zd) += e;
    }
  }
  EXPECT_LE(e_zd, e_lza + 1.0);
}

}  // namespace
}  // namespace csfma
