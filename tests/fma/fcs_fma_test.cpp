// The FCS-FMA unit: early-LZA block selection, containment, accuracy.
#include "fma/fcs_fma.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "fma/pcs_format.hpp"  // kWideExact

namespace csfma {
namespace {

struct RangeCase {
  const char* name;
  int emin, emax;
};

class FcsFmaSweep : public ::testing::TestWithParam<RangeCase> {};

TEST_P(FcsFmaSweep, SingleOpIsCorrectlyRounded) {
  const RangeCase& tc = GetParam();
  Rng rng(90 + tc.emax);
  FcsFma unit;
  for (int i = 0; i < 20000; ++i) {
    PFloat a = PFloat::from_double(kBinary64,
                                   rng.next_fp_in_exp_range(tc.emin, tc.emax));
    PFloat b = PFloat::from_double(kBinary64,
                                   rng.next_fp_in_exp_range(tc.emin, tc.emax));
    PFloat c = PFloat::from_double(kBinary64,
                                   rng.next_fp_in_exp_range(tc.emin, tc.emax));
    PFloat got = unit.fma_ieee(a, b, c, Round::HalfAwayFromZero);
    PFloat ref = PFloat::fma(b, c, a, kBinary64, Round::HalfAwayFromZero);
    // The early-LZA design guarantees >= 54 significant digits when no
    // catastrophic cancellation occurs; with cancellation the relative
    // inaccuracy can grow (Sec. III-G).  Accept a 1-ulp envelope and track
    // exactness separately below.
    double err = PFloat::ulp_error(got, ref, 52);
    ASSERT_LE(err, 1.0) << a.to_string() << " " << b.to_string() << " "
                        << c.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, FcsFmaSweep,
    ::testing::Values(RangeCase{"narrow", -2, 2}, RangeCase{"mid", -40, 40},
                      RangeCase{"wide", -300, 300},
                      RangeCase{"huge", -800, 800}),
    [](const ::testing::TestParamInfo<RangeCase>& i) { return i.param.name; });

TEST(FcsFma, MostOpsExactlyRounded) {
  // Away from cancellation, results must be bit-identical to the reference.
  Rng rng(91);
  FcsFma unit;
  int exact = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    PFloat a = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-30, 30));
    PFloat b = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-30, 30));
    PFloat c = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-30, 30));
    PFloat got = unit.fma_ieee(a, b, c, Round::HalfAwayFromZero);
    PFloat ref = PFloat::fma(b, c, a, kBinary64, Round::HalfAwayFromZero);
    if (PFloat::same_value(got, ref)) ++exact;
  }
  EXPECT_GT(exact, n * 99 / 100);
}

TEST(FcsFma, EarlyLzaContainment) {
  // The selected window must always contain the true leading digit:
  // the result's exact value must match the exact fma whenever the
  // magnitudes are balanced enough that nothing was truncated.
  Rng rng(92);
  FcsFma unit;
  for (int i = 0; i < 10000; ++i) {
    PFloat a = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-4, 4));
    PFloat b = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-4, 4));
    PFloat c = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-4, 4));
    FcsOperand r = unit.fma(ieee_to_fcs(a), b, ieee_to_fcs(c));
    PFloat exact = PFloat::fma(b, c, a, kWideExact, Round::NearestEven);
    if (r.cls() == FpClass::Normal && exact.is_normal()) {
      double err = PFloat::ulp_error(r.exact_value(), exact, 52);
      ASSERT_LE(err, 0.0000001) << "window missed the leading digit: "
                                << r.to_string();
    }
    ASSERT_GE(unit.last_top_block(), 2);
    ASSERT_LE(unit.last_top_block(), 12);
  }
}

TEST(FcsFma, CancellationTruncatesGracefully) {
  // a = -(b*c) exactly (short significands): the early-LZA mux looks where
  // the big value would be; full cancellation leaves zeros there.  The
  // paper accepts this relative-accuracy loss; the result must be zero or
  // a value no larger than the anticipation window bottom.
  Rng rng(93);
  FcsFma unit;
  for (int i = 0; i < 5000; ++i) {
    auto short_sig = [&rng] {
      double m = (double)(rng.next_below(1 << 26) | (1u << 25));
      return std::ldexp(rng.next_bool() ? m : -m, (int)rng.next_int(-10, 10));
    };
    PFloat b = PFloat::from_double(kBinary64, short_sig());
    PFloat c = PFloat::from_double(kBinary64, short_sig());
    PFloat prod = PFloat::mul(b, c, kBinary64, Round::NearestEven);  // exact
    FcsOperand r = unit.fma(ieee_to_fcs(prod.negated()), b, ieee_to_fcs(c));
    // The adder value is exactly zero, but the raw planes of the selected
    // window can encode a redundant near-zero whose assimilation carry was
    // truncated below the window — the paper's accepted total-cancellation
    // inaccuracy.  The residual must sit at least 100 bits below |b*c|.
    if (!r.is_zero()) {
      PFloat res = r.exact_value().abs();
      PFloat bound = PFloat::mul(prod.abs(),
                                 PFloat::from_double(kBinary64, 0x1p-100),
                                 kWideExact, Round::NearestEven);
      // res <= bound  <=>  bound - res is not negative.
      PFloat diff = PFloat::sub(bound, res, kWideExact, Round::NearestEven);
      EXPECT_FALSE(diff.is_normal() && diff.sign())
          << r.to_string() << " residual too large vs |b*c|=" << prod.to_string();
    }
  }
}

TEST(FcsFma, PartialCancellationKeepsResidue) {
  // a = -(b*c) + small residue: the residue sits 40-80 bits below the
  // anticipated position — within the 116-digit window, so it survives.
  Rng rng(94);
  FcsFma unit;
  for (int i = 0; i < 5000; ++i) {
    auto short_sig = [&rng] {
      double m = (double)(rng.next_below(1 << 20) | (1u << 19));
      return std::ldexp(m, (int)rng.next_int(-4, 4));
    };
    PFloat b = PFloat::from_double(kBinary64, short_sig());
    PFloat c = PFloat::from_double(kBinary64, short_sig());
    double residue = std::ldexp(1.0 + rng.next_unit(),
                                (int)rng.next_int(-60, -41));
    PFloat prod = PFloat::mul(b, c, kBinary64, Round::NearestEven);
    PFloat a = PFloat::from_double(
        kBinary64, std::fma(-1.0, prod.to_double(), 0.0) + 0.0);
    // a holds -(b*c) exactly; add the residue through the A tail instead:
    // feed a + residue as a wider-precision A via two chained adds.
    PFloat a_plus = PFloat::add(a, PFloat::from_double(kBinary64, residue),
                                kBinary64, Round::NearestEven);
    FcsOperand r = unit.fma(ieee_to_fcs(a_plus), b, ieee_to_fcs(c));
    PFloat exact = PFloat::fma(b, c, a_plus, kWideExact, Round::NearestEven);
    double err = PFloat::ulp_error(r.exact_value(), exact, 52);
    ASSERT_LE(err, 1.0) << err;
  }
}

TEST(FcsFma, ExceptionWires) {
  FcsFma unit;
  const PFloat one = PFloat::from_double(kBinary64, 1.0);
  const PFloat pinf = PFloat::inf(kBinary64, false);
  EXPECT_TRUE(
      unit.fma(ieee_to_fcs(one), pinf, ieee_to_fcs(PFloat::zero(kBinary64, false)))
          .is_nan());
  EXPECT_TRUE(unit.fma(ieee_to_fcs(pinf), one, ieee_to_fcs(one)).is_inf());
  EXPECT_TRUE(
      unit.fma(ieee_to_fcs(pinf.negated()), one, ieee_to_fcs(pinf)).is_nan());
}

TEST(FcsFma, MultiplierTreeGeometry) {
  // ceil(87/23) * ceil(53/17) = 4*4 = 16 tile rows feed the CSA tree.
  FcsFma unit;
  PFloat v = PFloat::from_double(kBinary64, 1.5);
  unit.fma(ieee_to_fcs(v), v, ieee_to_fcs(v));
  EXPECT_EQ(unit.last_mul_stats().rows, 16);
}

TEST(FcsFma, ChainAccuracy) {
  Rng rng(95);
  FcsFma unit;
  for (int i = 0; i < 5000; ++i) {
    PFloat x = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-8, 8));
    PFloat y = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-8, 8));
    PFloat z = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-8, 8));
    PFloat b1 = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-4, 4));
    PFloat b2 = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-4, 4));
    FcsOperand t = unit.fma(ieee_to_fcs(y), b2, ieee_to_fcs(x));
    FcsOperand r = unit.fma(ieee_to_fcs(z), b1, t);
    PFloat got = fcs_to_ieee(r, kBinary64, Round::HalfAwayFromZero);
    PFloat te = PFloat::fma(b2, x, y, kWideExact, Round::NearestEven);
    PFloat re = PFloat::fma(b1, te, z, kWideExact, Round::NearestEven);
    if (!re.is_normal()) continue;
    double err = PFloat::ulp_error(got, re, 52);
    // Envelope: exit rounding plus t's deferred rounding.  The transfer
    // guarantees >= ~53 significant digits above the rounding point
    // (early-LZA margin included), i.e. up to ~2^-56 relative to b1*t,
    // amplified by cancellation against z.
    const double ratio =
        std::fabs(b1.to_double() * te.to_double() / re.to_double());
    const double envelope = 0.55 + 0.25 * ratio;
    ASSERT_LE(err, envelope) << "chain error " << err << " ratio " << ratio;
  }
}

}  // namespace
}  // namespace csfma
