#include "fma/pcs_format.hpp"

#include "fma/pcs_fma.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace csfma {
namespace {

TEST(PcsFormat, GeometryMatchesPaper) {
  // Sec. III-F: 110b+10b mantissa, 55b+5b rounding data, 12b exponent = 192b.
  EXPECT_EQ(PcsGeometry::kMantDigits, 110);
  EXPECT_EQ(PcsGeometry::kTailDigits, 55);
  EXPECT_EQ(PcsGeometry::kMantDigits / PcsGeometry::kGroup, 10);
  EXPECT_EQ(PcsGeometry::kTailDigits / PcsGeometry::kGroup, 5);
  EXPECT_EQ(110 + 10 + 55 + 5 + 12, 192);
  // Sec. III-D: adder 110+163+110 rounded up to the next multiple of 55.
  EXPECT_EQ(PcsGeometry::kAdderWidth, 385);
  EXPECT_EQ(PcsGeometry::kAdderWidth % PcsGeometry::kBlock, 0);
  EXPECT_EQ(PcsGeometry::kProductWidth, 163);
}

TEST(PcsFormat, IeeeRoundTripExact) {
  Rng rng(70);
  for (int i = 0; i < 20000; ++i) {
    double d = rng.next_fp_in_exp_range(-900, 900);
    PFloat x = PFloat::from_double(kBinary64, d);
    PcsOperand p = ieee_to_pcs(x);
    PFloat back = pcs_to_ieee(p, kBinary64, Round::NearestEven);
    EXPECT_EQ(back.to_double(), d);
    // The conversion is exact, so the exact value matches too.
    EXPECT_DOUBLE_EQ(PFloat::ulp_error(p.exact_value(), x, 52), 0.0);
  }
}

TEST(PcsFormat, SpecialsRoundTrip) {
  for (auto mk : {+[] { return PFloat::inf(kBinary64, false); },
                  +[] { return PFloat::inf(kBinary64, true); },
                  +[] { return PFloat::zero(kBinary64, true); }}) {
    PFloat x = mk();
    PFloat back = pcs_to_ieee(ieee_to_pcs(x), kBinary64, Round::NearestEven);
    EXPECT_TRUE(PFloat::same_value(x, back));
    EXPECT_EQ(x.sign(), back.sign());
  }
  EXPECT_TRUE(pcs_to_ieee(ieee_to_pcs(PFloat::nan(kBinary64)), kBinary64,
                          Round::NearestEven)
                  .is_nan());
}

TEST(PcsFormat, SignificandPlacement) {
  // 1.0 -> significand MSB at mantissa digit 107 (Sec. III-B headroom).
  PcsOperand p = ieee_to_pcs(PFloat::from_double(kBinary64, 1.0));
  EXPECT_TRUE(p.mant().sum().bit(107));
  EXPECT_EQ(p.mant().to_binary().bit_width(), 108);
  EXPECT_TRUE(p.round().to_binary().is_zero());
  // Negative values are two's complement, no separate sign bit.
  PcsOperand n = ieee_to_pcs(PFloat::from_double(kBinary64, -1.0));
  EXPECT_TRUE(n.mant().as_cs().is_value_negative());
  EXPECT_EQ(n.mant().as_cs().magnitude(), p.mant().to_binary());
}

TEST(PcsFormat, RoundIncrementHalfAwayFromZero) {
  // Build operands with controlled tails.
  auto with_tail = [](bool negative, CsWord tail_sum) {
    CsNum mant = CsNum::from_signed(110, negative, CsWord(1ull) << 107);
    return PcsOperand(PcsNum(110, 11, mant.sum(), mant.carry()),
                      PcsNum(55, 11, tail_sum.truncated(55), CsWord()), 0,
                      FpClass::Normal, negative);
  };
  const CsWord half = CsWord::bit_at(54);
  // Below half: never round.
  EXPECT_EQ(with_tail(false, half - CsWord(1ull)).round_increment(), 0);
  // Above half: always round.
  EXPECT_EQ(with_tail(false, half | CsWord(1ull)).round_increment(), 1);
  EXPECT_EQ(with_tail(true, half | CsWord(1ull)).round_increment(), 1);
  // Exact half: away from zero — up for positive, down for negative.
  EXPECT_EQ(with_tail(false, half).round_increment(), 1);
  EXPECT_EQ(with_tail(true, half).round_increment(), 0);
}

TEST(PcsFormat, TailCarriesCountTowardRounding) {
  // Tail 0111...1 in the sum plane plus one explicit carry bit at the grid
  // reaches half: the rounding examines digit VALUES, not just sum bits.
  CsNum mant = CsNum::from_signed(110, false, CsWord(1ull) << 107);
  CsWord tail_sum = CsWord::mask(54);  // just below half
  PcsOperand no_carry(PcsNum(110, 11, mant.sum(), mant.carry()),
                      PcsNum(55, 11, tail_sum, CsWord()), 0, FpClass::Normal,
                      false);
  EXPECT_EQ(no_carry.round_increment(), 0);
  PcsOperand with_carry(PcsNum(110, 11, mant.sum(), mant.carry()),
                        PcsNum(55, 11, tail_sum, CsWord::bit_at(0)), 0,
                        FpClass::Normal, false);
  EXPECT_EQ(with_carry.round_increment(), 1);  // ripples to exactly half+..
}

TEST(PcsFormat, ExactValueIncludesTail) {
  CsNum mant = CsNum::from_signed(110, false, CsWord(1ull) << 107);
  PcsOperand base(PcsNum(110, 11, mant.sum(), mant.carry()),
                  PcsNum::zero(55, 11), 0, FpClass::Normal, false);
  PcsOperand with_tail(PcsNum(110, 11, mant.sum(), mant.carry()),
                       PcsNum(55, 11, CsWord::bit_at(54), CsWord()), 0,
                       FpClass::Normal, false);
  // The tail contributes half of one mantissa ulp, below even the wide
  // readout precision — compare the transferred integers directly.
  WideUint<8> xb = (WideUint<8>(base.mant().to_binary()).sext(110) << 55) +
                   WideUint<8>(base.tail_assimilated());
  WideUint<8> xt = (WideUint<8>(with_tail.mant().to_binary()).sext(110) << 55) +
                   WideUint<8>(with_tail.tail_assimilated());
  EXPECT_EQ(xt - xb, WideUint<8>(1ull) << 54);
  // It is invisible at binary64 readout precision.
  EXPECT_EQ(with_tail.exact_value().to_double(), base.exact_value().to_double());
}

TEST(PcsFormat, ExponentFieldRangeEnforced) {
  CsNum mant = CsNum::from_signed(110, false, CsWord(1ull) << 107);
  EXPECT_THROW(PcsOperand(PcsNum(110, 11, mant.sum(), mant.carry()),
                          PcsNum::zero(55, 11), 3000, FpClass::Normal, false),
               CheckError);
  // Excess-2047 covers more range than IEEE's excess-1023 (Sec. III-F).
  EXPECT_GT(PcsGeometry::kExpMax, kBinary64.emax());
  EXPECT_LT(PcsGeometry::kExpMin, kBinary64.emin());
}

TEST(PcsFormat, WiderSourceFormatsConvert) {
  // The B-side of a chain can also enter through the converter when the
  // source is a 54-bit-significand value (the Sec. III-B custom format).
  Rng rng(71);
  FloatFormat f54{11, 53};
  for (int i = 0; i < 5000; ++i) {
    double d = rng.next_fp_in_exp_range(-100, 100);
    PFloat x = PFloat::from_double(f54, d);
    PFloat back = pcs_to_ieee(ieee_to_pcs(x), f54, Round::NearestEven);
    EXPECT_TRUE(PFloat::same_value(back, x));
  }
}

TEST(PcsFormat, PackedWordRoundTrips) {
  // The 192-bit operand word of Sec. III-F, round-tripped through an FMA
  // chain so mantissa carries and rounding tails are populated.
  Rng rng(72);
  PcsFma unit;
  for (int i = 0; i < 5000; ++i) {
    PFloat a = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-40, 40));
    PFloat b = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-40, 40));
    PFloat c = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-40, 40));
    PcsOperand r = unit.fma(ieee_to_pcs(a), b, ieee_to_pcs(c));
    if (r.cls() != FpClass::Normal) continue;
    U192 w = r.pack_bits();
    PcsOperand back = PcsOperand::unpack_bits(w);
    EXPECT_EQ(back.mant().sum(), r.mant().sum());
    EXPECT_EQ(back.mant().carries(), r.mant().carries());
    EXPECT_EQ(back.round().sum(), r.round().sum());
    EXPECT_EQ(back.round().carries(), r.round().carries());
    EXPECT_EQ(back.exp(), r.exp());
    EXPECT_EQ(back.pack_bits(), w);
  }
}

TEST(PcsFormat, PackedWordUses192Bits) {
  // Every field position is inside the 192-bit word; the exponent sits at
  // the top, so a maximal-exponent operand lights bit 191.
  CsNum mant = CsNum::from_signed(110, false, CsWord(1ull) << 107);
  PcsOperand top(PcsNum(110, 11, mant.sum(), mant.carry()),
                 PcsNum::zero(55, 11), PcsGeometry::kExpMax, FpClass::Normal,
                 false);
  U192 w = top.pack_bits();
  EXPECT_LE(w.bit_width(), 192);
  EXPECT_TRUE(w.bit(191));  // exp field 0xFFF
  // Exceptions refuse to pack (they travel on the side wires).
  EXPECT_THROW(PcsOperand::make_nan().pack_bits(), CheckError);
}

}  // namespace
}  // namespace csfma
