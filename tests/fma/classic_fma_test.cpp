#include "fma/classic_fma.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace csfma {
namespace {

TEST(ClassicFma, MatchesCorrectlyRoundedReference) {
  Rng rng(100);
  ClassicFma unit;
  for (int i = 0; i < 30000; ++i) {
    double ad = rng.next_fp_in_exp_range(-100, 100);
    double bd = rng.next_fp_in_exp_range(-100, 100);
    double cd = rng.next_fp_in_exp_range(-100, 100);
    PFloat a = PFloat::from_double(kBinary64, ad);
    PFloat b = PFloat::from_double(kBinary64, bd);
    PFloat c = PFloat::from_double(kBinary64, cd);
    double ref = std::fma(bd, cd, ad);
    if (!std::isnormal(ref) && ref != 0.0) continue;
    ASSERT_EQ(unit.fma(a, b, c).to_double(), ref);
  }
}

TEST(ClassicFma, SpecialValues) {
  ClassicFma unit;
  const PFloat one = PFloat::from_double(kBinary64, 1.0);
  const PFloat pinf = PFloat::inf(kBinary64, false);
  EXPECT_TRUE(unit.fma(pinf.negated(), one, pinf).is_nan());
  EXPECT_TRUE(unit.fma(one, pinf, PFloat::zero(kBinary64, false)).is_nan());
  EXPECT_TRUE(unit.fma(pinf, one, one).is_inf());
}

TEST(ClassicFma, ActivityProbesFire) {
  ActivityRecorder rec;
  ClassicFma unit(&rec);
  Rng rng(101);
  for (int i = 0; i < 100; ++i) {
    PFloat a = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-4, 4));
    PFloat b = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-4, 4));
    PFloat c = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-4, 4));
    unit.fma(a, b, c);
  }
  EXPECT_GT(rec.probe("mul.sum").toggles(), 0u);
  EXPECT_GT(rec.probe("add.sum").toggles(), 0u);
  EXPECT_GT(rec.probe("norm").toggles(), 0u);
}

TEST(ClassicFma, NormalizationShiftTracksCancellation) {
  ClassicFma unit;
  PFloat one = PFloat::from_double(kBinary64, 1.0);
  // Balanced: shift small.
  unit.fma(one, one, one);
  int balanced = unit.last_norm_shift();
  // Cancelling: 1*1 - 1 leaves a long sign run.
  unit.fma(one.negated(), one, one);
  int cancelling = unit.last_norm_shift();
  EXPECT_GT(cancelling, balanced);
}

}  // namespace
}  // namespace csfma
