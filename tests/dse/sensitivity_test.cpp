// axis_sensitivity: adjacent same-context deltas, numeric value
// ordering, the median statistic, and duplicate-config handling
// (docs/dse.md, "Sensitivity").
#include "dse/sensitivity.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace csfma::dse {
namespace {

SensPoint sp(const std::string& block, const std::string& depth,
             double delay, double luts) {
  SensPoint p;
  p.axes = {{"block", block}, {"depth", depth}};
  p.obj = {delay, luts, 0.0, 0.0};
  return p;
}

TEST(Sensitivity, AdjacentDeltasWithinOneContext) {
  // One context (depth=8), three block values: two adjacent pairs.
  const std::vector<SensPoint> pts = {
      sp("8", "8", 10.0, 100.0),
      sp("16", "8", 14.0, 160.0),
      sp("32", "8", 15.0, 300.0),
  };
  const auto s = axis_sensitivity(pts);
  ASSERT_EQ(s.count("block"), 1u);
  EXPECT_EQ(s.at("block").pairs, 2u);
  // Deltas 4.0 and 1.0: even count, median = mean of the two middles.
  EXPECT_DOUBLE_EQ(s.at("block").delay_ns, 2.5);
  EXPECT_DOUBLE_EQ(s.at("block").luts, 100.0);  // median of {60, 140}
  // The depth axis has a single value everywhere: no pair anywhere.
  ASSERT_EQ(s.count("depth"), 1u);
  EXPECT_EQ(s.at("depth").pairs, 0u);
  EXPECT_DOUBLE_EQ(s.at("depth").delay_ns, 0.0);
}

TEST(Sensitivity, ValuesOrderNumericallyNotLexicographically) {
  // Lexicographically "11" < "8"; numerically 8 < 11 < 55.  The adjacent
  // pairs must be (8,11) and (11,55) — deltas 1.0 and 2.0 — not the
  // string-order pairs (11,55),(55,8) with deltas 2.0 and 3.0.
  const std::vector<SensPoint> pts = {
      sp("55", "8", 13.0, 0.0),
      sp("8", "8", 10.0, 0.0),
      sp("11", "8", 11.0, 0.0),
  };
  const auto s = axis_sensitivity(pts);
  EXPECT_EQ(s.at("block").pairs, 2u);
  EXPECT_DOUBLE_EQ(s.at("block").delay_ns, 1.5);  // median of {1.0, 2.0}
}

TEST(Sensitivity, ContextsDoNotMixAndOddCountTakesMiddle) {
  // Two depth contexts, each with its own block pair: the deltas pool
  // across contexts for the axis median.
  const std::vector<SensPoint> pts = {
      sp("8", "4", 10.0, 0.0),  sp("16", "4", 11.0, 0.0),   // delta 1.0
      sp("8", "8", 20.0, 0.0),  sp("16", "8", 25.0, 0.0),   // delta 5.0
      sp("8", "16", 30.0, 0.0), sp("16", "16", 39.0, 0.0),  // delta 9.0
  };
  const auto s = axis_sensitivity(pts);
  EXPECT_EQ(s.at("block").pairs, 3u);
  EXPECT_DOUBLE_EQ(s.at("block").delay_ns, 5.0);  // odd count: the middle
  // And the depth axis sees two contexts (block=8, block=16) with two
  // adjacent pairs each.
  EXPECT_EQ(s.at("depth").pairs, 4u);
}

TEST(Sensitivity, DuplicateConfigsContributeNoPair) {
  const std::vector<SensPoint> pts = {
      sp("8", "8", 10.0, 0.0),
      sp("8", "8", 99.0, 0.0),  // same config again (e.g. a replayed point)
  };
  const auto s = axis_sensitivity(pts);
  EXPECT_EQ(s.at("block").pairs, 0u);
}

TEST(Sensitivity, EmptyInputYieldsNoAxes) {
  EXPECT_TRUE(axis_sensitivity({}).empty());
}

}  // namespace
}  // namespace csfma::dse
