// CoverageTracker: per-axis-value accounting and the latency-derived
// ETA (docs/dse.md, "Coverage and progress").
#include "dse/coverage.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace csfma::dse {
namespace {

using AxisValues = std::vector<std::pair<std::string, std::string>>;

TEST(Coverage, RecordsUnderEveryAxisValue) {
  CoverageTracker cov;
  cov.add_expected("block", "33", 2);
  cov.add_expected("block", "55", 2);
  cov.add_expected("select", "lza", 2);
  cov.add_expected("select", "zd", 2);
  cov.set_total(4);

  cov.record(AxisValues{{"block", "33"}, {"select", "lza"}},
             /*cached=*/false, /*failed=*/false);
  cov.record(AxisValues{{"block", "33"}, {"select", "zd"}},
             /*cached=*/true, /*failed=*/false);
  cov.record(AxisValues{{"block", "55"}, {"select", "lza"}},
             /*cached=*/false, /*failed=*/true);

  EXPECT_EQ(cov.total(), 4u);
  EXPECT_EQ(cov.done(), 3u);
  EXPECT_EQ(cov.cached(), 1u);
  EXPECT_EQ(cov.failed(), 1u);

  const auto& b33 = cov.axes().at("block").at("33");
  EXPECT_EQ(b33.expected, 2u);
  EXPECT_EQ(b33.done, 2u);
  EXPECT_EQ(b33.cached, 1u);
  EXPECT_EQ(b33.failed, 0u);
  const auto& b55 = cov.axes().at("block").at("55");
  EXPECT_EQ(b55.done, 1u);
  EXPECT_EQ(b55.failed, 1u);
  const auto& zd = cov.axes().at("select").at("zd");
  EXPECT_EQ(zd.done, 1u);
  EXPECT_EQ(zd.cached, 1u);
}

TEST(Coverage, EtaIsRemainingTimesMeanFreshLatency) {
  CoverageTracker cov;
  cov.set_total(10);
  EXPECT_DOUBLE_EQ(cov.eta_seconds(), 0.0);  // no observation yet
  cov.record(AxisValues{{"block", "33"}}, false, false);
  cov.record(AxisValues{{"block", "33"}}, false, false);
  cov.observe_latency(1.0);
  cov.observe_latency(3.0);  // mean 2.0 s/point, 8 points remain
  EXPECT_DOUBLE_EQ(cov.eta_seconds(), 16.0);
}

TEST(Coverage, EtaClampsWhenOverComplete) {
  // More recorded than declared (e.g. a re-run against a stale total)
  // must not produce a negative ETA.
  CoverageTracker cov;
  cov.set_total(1);
  cov.record(AxisValues{{"block", "33"}}, false, false);
  cov.record(AxisValues{{"block", "33"}}, false, false);
  cov.observe_latency(5.0);
  EXPECT_GE(cov.eta_seconds(), 0.0);
}

}  // namespace
}  // namespace csfma::dse
