// DseConfig: knob validation ranges (shared verbatim by the service's
// model-mode request parsing), rounding-width resolution, and the
// BlockSelect spelling round trip.
#include "dse/config.hpp"

#include <gtest/gtest.h>

#include <string>

namespace csfma::dse {
namespace {

TEST(DseConfig, DefaultsAreThePaperGeometryAndValid) {
  DseConfig cfg;
  EXPECT_EQ(cfg.unit, UnitKind::Pcs);
  EXPECT_EQ(cfg.block, 55);
  EXPECT_EQ(cfg.group, 11);
  EXPECT_EQ(cfg.validate(), "");
}

TEST(DseConfig, RoundWidthZeroResolvesToOneBlock) {
  DseConfig cfg;
  EXPECT_EQ(cfg.resolved_round_width(), 55);
  cfg.round_width = 11;
  EXPECT_EQ(cfg.resolved_round_width(), 11);
  cfg.block = 29;
  cfg.round_width = 0;
  EXPECT_EQ(cfg.resolved_round_width(), 29);
}

TEST(DseConfig, ValidateNamesTheOffendingField) {
  DseConfig cfg;
  cfg.block = 7;
  EXPECT_NE(cfg.validate().find("\"block\""), std::string::npos);
  cfg.block = 63;
  EXPECT_NE(cfg.validate().find("\"block\""), std::string::npos);
  cfg = DseConfig{};
  cfg.group = 1;
  EXPECT_NE(cfg.validate().find("\"group\""), std::string::npos);
  cfg = DseConfig{};
  cfg.round_width = 257;
  EXPECT_NE(cfg.validate().find("\"rwidth\""), std::string::npos);
  cfg = DseConfig{};
  cfg.depth = 0;
  EXPECT_NE(cfg.validate().find("\"depth\""), std::string::npos);
  cfg = DseConfig{};
  cfg.ops = 0;
  EXPECT_NE(cfg.validate().find("\"ops\""), std::string::npos);
}

TEST(DseConfig, PcsRequiresGroupDividingBlockFcsDoesNot) {
  DseConfig cfg;
  cfg.block = 56;  // 56 % 11 != 0
  EXPECT_NE(cfg.validate().find("divide"), std::string::npos);
  cfg.unit = UnitKind::Fcs;
  EXPECT_EQ(cfg.validate(), "");
}

TEST(BlockSelect, SpellingRoundTrips) {
  EXPECT_STREQ(to_string(BlockSelect::Lza), "lza");
  EXPECT_STREQ(to_string(BlockSelect::Zd), "zd");
  BlockSelect s = BlockSelect::Lza;
  EXPECT_TRUE(parse_block_select("zd", s));
  EXPECT_EQ(s, BlockSelect::Zd);
  EXPECT_TRUE(parse_block_select("lza", s));
  EXPECT_EQ(s, BlockSelect::Lza);
  EXPECT_FALSE(parse_block_select("LZA", s));
  EXPECT_FALSE(parse_block_select("", s));
}

}  // namespace
}  // namespace csfma::dse
