// eval_design / build_model_chain: the exploration's origin points are
// exactly the fixed Table I builders (component for component), the
// Table II energy anchors hold, and evaluation is a pure function of
// the DseConfig (the cacheability contract behind the canonical key).
#include "dse/eval.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fpga/architectures.hpp"
#include "fpga/device.hpp"

namespace csfma::dse {
namespace {

void expect_same_chain(const std::vector<Component>& got,
                       const std::vector<Component>& want,
                       const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const Component& g = got[i];
    const Component& w = want[i];
    EXPECT_EQ(g.name, w.name) << label << "[" << i << "]";
    EXPECT_EQ(g.sub_delays, w.sub_delays) << label << "[" << i << "] "
                                          << g.name;
    EXPECT_EQ(g.area.luts, w.area.luts) << label << "[" << i << "] "
                                        << g.name;
    EXPECT_EQ(g.area.dsps, w.area.dsps) << label << "[" << i << "] "
                                        << g.name;
    EXPECT_EQ(g.off_critical_path, w.off_critical_path)
        << label << "[" << i << "] " << g.name;
  }
}

TEST(EvalChain, PcsDefaultGeometryMatchesFixedBuilder) {
  const Device dev = virtex6();
  DseConfig cfg;  // unit pcs, block 55, group 11, rwidth 0 -> 55
  expect_same_chain(build_model_chain(cfg, dev), build_pcs_fma(dev), "pcs");
}

TEST(EvalChain, FcsBaselineGeometryMatchesFixedBuilders) {
  const Device dev = virtex6();
  DseConfig cfg;
  cfg.unit = UnitKind::Fcs;
  cfg.block = 29;  // the fixed FCS builders' block size (3 x 29 digits)
  cfg.select = BlockSelect::Lza;
  expect_same_chain(build_model_chain(cfg, dev), build_fcs_fma(dev),
                    "fcs-lza");
  cfg.select = BlockSelect::Zd;
  expect_same_chain(build_model_chain(cfg, dev), build_fcs_fma_zd(dev),
                    "fcs-zd");
}

TEST(EvalChain, DiscreteAndClassicMatchTheFixedBuildersAtDefaultWidth) {
  const Device dev = virtex6();
  DseConfig cfg;
  cfg.unit = UnitKind::Discrete;  // CoreGen pair, concatenated
  std::vector<Component> want = build_coregen_mul(dev);
  const std::vector<Component> add = build_coregen_add(dev);
  want.insert(want.end(), add.begin(), add.end());
  expect_same_chain(build_model_chain(cfg, dev), want, "discrete");

  cfg.unit = UnitKind::Classic;
  expect_same_chain(build_model_chain(cfg, dev), build_flopoco_fused(dev),
                    "classic");
}

TEST(EvalDesign, TableIIEnergyAnchorsHold) {
  // The energy coefficients are calibrated against the Table II anchors
  // with this model's own toggles and LUTs, so the anchor points land
  // exactly: discrete 0.54 nJ, paper-geometry PCS 2.67 nJ.
  DseConfig pcs;
  EXPECT_NEAR(eval_design(pcs).energy_nj, 2.67, 1e-9);
  DseConfig disc;
  disc.unit = UnitKind::Discrete;
  EXPECT_NEAR(eval_design(disc).energy_nj, 0.54, 1e-9);
}

TEST(EvalDesign, PaperPcsPointReportsTheShippingFigures) {
  const DseMetrics m = eval_design(DseConfig{});
  EXPECT_EQ(m.luts, 5802);
  EXPECT_EQ(m.dsps, 21);
  EXPECT_GT(m.fmax_mhz, 0.0);
  EXPECT_GT(m.cycles, 0);
  EXPECT_NEAR(m.delay_ns, m.cycles * 1000.0 / m.fmax_mhz, 1e-12);
}

TEST(EvalDesign, IsAPureFunctionOfTheConfig) {
  DseConfig cfg;
  cfg.unit = UnitKind::Fcs;
  cfg.block = 33;
  cfg.round_width = 11;
  cfg.select = BlockSelect::Zd;
  cfg.depth = 12;
  const DseMetrics a = eval_design(cfg);
  const DseMetrics b = eval_design(cfg);
  EXPECT_EQ(a.delay_ns, b.delay_ns);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.fmax_mhz, b.fmax_mhz);
  EXPECT_EQ(a.luts, b.luts);
  EXPECT_EQ(a.dsps, b.dsps);
  EXPECT_EQ(a.toggles_per_op, b.toggles_per_op);
  EXPECT_EQ(a.energy_nj, b.energy_nj);
}

TEST(EvalDesign, KnobsActuallyMoveTheMetrics) {
  // Smaller rounding width trims LUTs; a deeper pipeline adds cycles.
  DseConfig base;
  DseConfig narrow = base;
  narrow.round_width = 11;
  EXPECT_LT(eval_design(narrow).luts, eval_design(base).luts);
  DseConfig deep = base;
  deep.depth = 16;
  DseConfig shallow = base;
  shallow.depth = 2;
  EXPECT_GT(eval_design(deep).cycles, eval_design(shallow).cycles);
}

}  // namespace
}  // namespace csfma::dse
