// ParetoFrontier: dominance, the lexicographic-key tie-break, the
// eviction log, and the property the explorer's determinism contract
// rests on — membership is a pure function of the point SET, never of
// insertion order (docs/dse.md, "Determinism contract").
#include "dse/frontier.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace csfma::dse {
namespace {

FrontierPoint pt(const std::string& key, double delay, double luts,
                 double dsps, double energy) {
  return {key, {delay, luts, dsps, energy}};
}

std::vector<std::string> keys_of(const ParetoFrontier& f) {
  std::vector<std::string> out;
  for (const auto& p : f.sorted()) out.push_back(p.key);
  return out;
}

TEST(Dominates, RequiresNoWorseEverywhereStrictlyBetterSomewhere) {
  const Objectives a{1.0, 10.0, 2.0, 0.5};
  const Objectives b{2.0, 10.0, 2.0, 0.5};
  EXPECT_TRUE(dominates(a, b));
  EXPECT_FALSE(dominates(b, a));
  EXPECT_FALSE(dominates(a, a));  // equal vectors dominate neither way
  const Objectives c{0.5, 20.0, 2.0, 0.5};  // trade-off: incomparable
  EXPECT_FALSE(dominates(a, c));
  EXPECT_FALSE(dominates(c, a));
}

TEST(ParetoFrontier, DominatedArrivalsAreRejectedAndCounted) {
  ParetoFrontier f;
  EXPECT_TRUE(f.insert(pt("aa", 1.0, 100, 1, 1.0)));
  EXPECT_FALSE(f.insert(pt("bb", 2.0, 200, 2, 2.0)));  // dominated
  EXPECT_FALSE(f.insert(pt("cc", 1.0, 100, 1, 2.0)));  // dominated
  EXPECT_EQ(f.size(), 1u);
  EXPECT_EQ(f.rejected(), 2u);
  EXPECT_TRUE(f.evictions().empty());
}

TEST(ParetoFrontier, NewcomerEvictsEveryIncumbentItBeats) {
  ParetoFrontier f;
  // Two incomparable incumbents...
  EXPECT_TRUE(f.insert(pt("aa", 1.0, 200, 1, 1.0)));
  EXPECT_TRUE(f.insert(pt("bb", 2.0, 100, 1, 1.0)));
  // ...both dominated by one newcomer.
  EXPECT_TRUE(f.insert(pt("cc", 1.0, 100, 1, 1.0)));
  EXPECT_EQ(keys_of(f), (std::vector<std::string>{"cc"}));
  ASSERT_EQ(f.evictions().size(), 2u);
  for (const auto& e : f.evictions()) {
    EXPECT_EQ(e.by, "cc");
    EXPECT_EQ(e.reason, "dominated");
  }
}

TEST(ParetoFrontier, ExactTieKeepsLexicographicallySmallestKey) {
  // Same objective vector, both arrival orders: "aa" always survives.
  ParetoFrontier first;
  EXPECT_TRUE(first.insert(pt("aa", 1.0, 100, 1, 1.0)));
  EXPECT_FALSE(first.insert(pt("bb", 1.0, 100, 1, 1.0)));
  EXPECT_EQ(keys_of(first), (std::vector<std::string>{"aa"}));
  EXPECT_EQ(first.rejected(), 1u);
  EXPECT_TRUE(first.evictions().empty());

  ParetoFrontier second;
  EXPECT_TRUE(second.insert(pt("bb", 1.0, 100, 1, 1.0)));
  EXPECT_TRUE(second.insert(pt("aa", 1.0, 100, 1, 1.0)));
  EXPECT_EQ(keys_of(second), (std::vector<std::string>{"aa"}));
  ASSERT_EQ(second.evictions().size(), 1u);
  EXPECT_EQ(second.evictions()[0].evicted, "bb");
  EXPECT_EQ(second.evictions()[0].reason, "tie");
}

TEST(ParetoFrontier, MembershipIsInsertionOrderInvariant) {
  std::vector<FrontierPoint> pts = {
      pt("aa", 1.0, 400, 4, 4.0), pt("bb", 4.0, 100, 4, 4.0),
      pt("cc", 4.0, 400, 1, 4.0), pt("dd", 2.0, 500, 5, 5.0),
      pt("ee", 1.0, 400, 4, 4.0),  // exact tie with "aa"
      pt("ff", 5.0, 500, 5, 5.0),  // dominated by everything useful
  };
  std::sort(pts.begin(), pts.end(),
            [](const auto& a, const auto& b) { return a.key < b.key; });
  std::vector<std::string> want;
  {
    ParetoFrontier f;
    for (const auto& p : pts) f.insert(p);
    want = keys_of(f);
  }
  EXPECT_EQ(want, (std::vector<std::string>{"aa", "bb", "cc"}));
  int perm = 0;
  do {
    ParetoFrontier f;
    for (const auto& p : pts) f.insert(p);
    EXPECT_EQ(keys_of(f), want) << "permutation " << perm;
    ++perm;
  } while (std::next_permutation(
      pts.begin(), pts.end(),
      [](const auto& a, const auto& b) { return a.key < b.key; }));
  EXPECT_EQ(perm, 720);  // all 6! orders actually ran
}

}  // namespace
}  // namespace csfma::dse
