// End-to-end integration: the whole paper pipeline in one test file.
//
//   MPC QP --> KKT --> LDL' --> generated ldlsolve() --> parse --> FMA
//   insertion --> interpret (with the bit-accurate PCS/FCS simulators)
//   --> compare against the numeric interior-point reference.
#include <gtest/gtest.h>

#include <cmath>

#include "energy/workload.hpp"
#include "fpga/architectures.hpp"
#include "frontend/parser.hpp"
#include "hls/fma_insert.hpp"
#include "hls/interp.hpp"
#include "hls/schedule.hpp"
#include "solver/solvers.hpp"

namespace csfma {
namespace {

TEST(Pipeline, HardwareKernelComputesValidNewtonStep) {
  // Build the QP, take the first barrier Newton system, solve it (a) with
  // the dense reference and (b) with the generated kernel transformed by
  // the FCS insertion pass and interpreted through the real simulators.
  const double x0[4] = {0, 0, 1, 0};
  const double xref[4] = {8, 3, 0, 0};
  MpcProblem p = build_mpc(4, x0, xref);
  BenchmarkSolver s = make_benchmark_solver("it", 4);

  // The first Newton system at z = 0, mu = 1.
  std::vector<double> phi((size_t)p.nz, 0.0), grad((size_t)p.nz);
  for (int i = 0; i < p.nz; ++i) {
    grad[(size_t)i] = p.q_lin[(size_t)i];
    if (std::isfinite(p.lb[(size_t)i])) {
      grad[(size_t)i] -= 1.0 / (0.0 - p.lb[(size_t)i]);
      phi[(size_t)i] += 1.0 / (p.lb[(size_t)i] * p.lb[(size_t)i]);
    }
    if (std::isfinite(p.ub[(size_t)i])) {
      grad[(size_t)i] += 1.0 / p.ub[(size_t)i];
      phi[(size_t)i] += 1.0 / (p.ub[(size_t)i] * p.ub[(size_t)i]);
    }
  }
  Dense kk = kkt_matrix(p, phi, 1e-9);
  LdlFactors f = ldl_factor_dense(kk);
  std::vector<double> rhs((size_t)p.nk, 0.0);
  for (int i = 0; i < p.nz; ++i) rhs[(size_t)p.kkt_var(i)] = -grad[(size_t)i];
  for (int e = 0; e < p.ne; ++e) rhs[(size_t)p.kkt_dual(e)] = p.b_eq[(size_t)e];
  std::vector<double> want = ldl_solve_dense(f, rhs);

  // Feed the same factors through the generated + transformed kernel.
  KernelInfo k = parse_kernel(s.ldlsolve_src);
  OperatorLibrary lib = OperatorLibrary::for_device(virtex6());
  Cdfg fused = k.graph;
  insert_fma_units(fused, lib, FmaStyle::Fcs);
  std::map<std::string, double> in;
  std::vector<double> lv = pack_l_values(s.sym, f);
  for (int m = 0; m < s.sym.nnz(); ++m)
    in[element_name("Lv", m, true)] = lv[(size_t)m];
  for (int i = 0; i < p.nk; ++i) {
    in[element_name("dinv", i, true)] = 1.0 / f.d[(size_t)i];
    in[element_name("b", i, true)] = rhs[(size_t)i];
  }
  auto out = Evaluator(fused).run(in);
  for (int i = 0; i < p.nk; ++i) {
    double got = out.at(element_name("x", i, true));
    ASSERT_NEAR(got, want[(size_t)i], 1e-8 * (1.0 + std::fabs(want[(size_t)i])))
        << "x[" << i << "]";
  }
}

TEST(Pipeline, FullIpmTrajectoryIsDynamicallyFeasible) {
  const double x0[4] = {0, 0, 0.5, -0.5};
  const double xref[4] = {5, -2, 0, 0};
  MpcProblem p = build_mpc(8, x0, xref);
  IpmResult r = solve_qp(p);
  ASSERT_TRUE(r.converged);
  // Roll the dynamics forward from x0 using the planned inputs and verify
  // the planned states match — the physical-plausibility check.
  double x[4] = {x0[0], x0[1], x0[2], x0[3]};
  const double dt = p.dt;
  for (int t = 0; t < p.horizon; ++t) {
    const double ax = r.z[(size_t)(6 * t)], ay = r.z[(size_t)(6 * t + 1)];
    double nx[4] = {x[0] + dt * x[2] + 0.5 * dt * dt * ax,
                    x[1] + dt * x[3] + 0.5 * dt * dt * ay, x[2] + dt * ax,
                    x[3] + dt * ay};
    for (int q = 0; q < 4; ++q) {
      EXPECT_NEAR(r.z[(size_t)(6 * t + 2 + q)], nx[q], 1e-5) << t << " " << q;
      x[q] = nx[q];
    }
  }
}

TEST(Pipeline, SynthesisAndSchedulingAgreeOnLatencies) {
  // The operator library must reflect the Table I pipeline depths that the
  // architecture models produce — one source of truth.
  OperatorLibrary lib = OperatorLibrary::for_device(virtex6());
  auto t1 = table1_reports(virtex6(), 200.0);
  for (const auto& r : t1) {
    if (r.arch == "PCS-FMA") {
      EXPECT_EQ(lib.attr(OpKind::Fma, FmaStyle::Pcs).latency, r.cycles);
    }
    if (r.arch == "FCS-FMA") {
      EXPECT_EQ(lib.attr(OpKind::Fma, FmaStyle::Fcs).latency, r.cycles);
    }
  }
}

TEST(Pipeline, EnergyWorkloadsAreSeedStable) {
  auto a = measure_fcs(42, 3, 25);
  auto b = measure_fcs(42, 3, 25);
  EXPECT_DOUBLE_EQ(a.toggles_per_op, b.toggles_per_op);
  auto c = measure_fcs(43, 3, 25);
  EXPECT_NE(a.toggles_per_op, c.toggles_per_op);  // the seed matters
}

TEST(Pipeline, Virtex5FlowFallsBackToPcs) {
  // On a pre-pre-adder device the flow still works with the PCS unit.
  OperatorLibrary lib = OperatorLibrary::for_device(virtex5());
  BenchmarkSolver s = make_benchmark_solver("v5", 4);
  KernelInfo k = parse_kernel(s.ldlsolve_src);
  Cdfg fused = k.graph;
  FmaInsertStats st = insert_fma_units(fused, lib, FmaStyle::Pcs);
  EXPECT_GT(st.fma_inserted, 0);
  EXPECT_LT(schedule_asap(fused, lib).length,
            schedule_asap(k.graph, lib).length);
}

}  // namespace
}  // namespace csfma
