// Operand-level fuzzing: arbitrary VALID carry-save operands (redundant
// planes, live tails, extreme exponents) through the units, checked
// against references computed from the operands' exact values.  This
// exercises encodings that never arise from the IEEE converters.
// The units run behind the unified FmaUnit interface (the batch engine's
// dispatch path); the fuzzers hand the redundant operands in wrapped as
// native FmaOperand values.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "fma/fma_unit.hpp"

namespace csfma {
namespace {

/// A random PCS operand: planes restricted so the mantissa magnitude stays
/// within the format's |M| < 2^108 envelope (converter/unit outputs obey
/// this; wilder values are rejected by the format's design).
PcsOperand random_pcs(Rng& rng) {
  // Format contract: the leading significant digit lies in the top 55b
  // block (block selection guarantees this for unit outputs; converters
  // place the IEEE significand there) — magnitude in [2^55, 2^107).
  CsWord mag = rng.next_wide_bits<7>((int)rng.next_int(56, 106)) |
               CsWord::bit_at((int)rng.next_int(55, 105));
  CsNum mant = CsNum::from_signed(110, rng.next_bool(), mag);
  // Shuffle value-preserving redundancy into the carry grid: move a random
  // slice of the sum plane into carries at group positions.
  CsWord carries;
  CsWord sum = mant.sum();
  for (int g = 1; g < 10; ++g) {
    if (!rng.next_bool()) continue;
    const int pos = 11 * g;
    // sum bit at pos-1 pair: 2^pos = carry at pos; move 2*2^(pos-1).
    if (sum.bit(pos) && !carries.bit(pos)) {
      sum.set_bit(pos, false);
      carries.set_bit(pos, true);  // same weight: value preserved
    }
  }
  PcsNum m(110, 11, sum, carries);
  PcsNum tail(55, 11, rng.next_wide_bits<7>(55),
              rng.next_wide_bits<7>(55) &
                  (CsWord::bit_at(0) | CsWord::bit_at(11) | CsWord::bit_at(22) |
                   CsWord::bit_at(33) | CsWord::bit_at(44)));
  return PcsOperand(m, tail, (int)rng.next_int(-200, 200), FpClass::Normal,
                    false);
}

FcsOperand random_fcs(Rng& rng) {
  // Leading digit within the top 29c block: magnitude in [2^58, 2^84).
  CsWord mag = rng.next_wide_bits<7>((int)rng.next_int(59, 83)) |
               CsWord::bit_at((int)rng.next_int(58, 82));
  CsNum base = CsNum::from_signed(87, rng.next_bool(), mag);
  // FCS allows redundancy anywhere: split random bits between the planes.
  CsWord moved = base.sum() & rng.next_wide_bits<7>(85) & ~CsWord::bit_at(86);
  CsWord sum = base.sum() ^ moved;
  // moving bit b from sum to carry keeps the weight (same position).
  CsNum mant(87, sum, moved);
  CsNum tail(29, rng.next_wide_bits<7>(29), rng.next_wide_bits<7>(29));
  return FcsOperand(mant, tail, (int)rng.next_int(-200, 200), FpClass::Normal,
                    false);
}

TEST(OperandFuzz, PcsFmaOnRedundantOperands) {
  Rng rng(190);
  auto unit = make_fma_unit(UnitKind::Pcs);
  for (int i = 0; i < 20000; ++i) {
    PcsOperand a = random_pcs(rng);
    PcsOperand c = random_pcs(rng);
    PFloat b = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-40, 40));
    PcsOperand r = unit->fma(FmaOperand(a), b, FmaOperand(c)).pcs();
    if (r.cls() != FpClass::Normal) continue;
    // Reference from the operands' exact values; the unit's deferred
    // rounding of a and c contributes up to ~2^-54 relative each.
    PFloat ref = PFloat::fma(b, c.exact_value(), a.exact_value(), kWideExact,
                             Round::NearestEven);
    if (!ref.is_normal()) continue;
    double err = PFloat::ulp_error(
        pcs_to_ieee(r, kBinary64, Round::HalfAwayFromZero),
        ref.round_to(kBinary64, Round::HalfAwayFromZero), 52);
    // Cancellation can amplify the transfer rounding; use the magnitude
    // ratio envelope as in the chain tests.
    const double ratio = std::fabs(
        b.to_double() * c.exact_value().to_double() / ref.to_double());
    const double aratio =
        std::fabs(a.exact_value().to_double() / ref.to_double());
    ASSERT_LE(err, 1.1 + 0.25 * (ratio + aratio))
        << a.to_string() << " " << c.to_string();
  }
}

TEST(OperandFuzz, FcsFmaOnRedundantOperands) {
  Rng rng(191);
  auto unit = make_fma_unit(UnitKind::Fcs);
  for (int i = 0; i < 20000; ++i) {
    FcsOperand a = random_fcs(rng);
    FcsOperand c = random_fcs(rng);
    PFloat b = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-40, 40));
    FcsOperand r = unit->fma(FmaOperand(a), b, FmaOperand(c)).fcs();
    if (r.cls() != FpClass::Normal) continue;
    PFloat ref = PFloat::fma(b, c.exact_value(), a.exact_value(), kWideExact,
                             Round::NearestEven);
    if (!ref.is_normal()) continue;
    double err = PFloat::ulp_error(
        fcs_to_ieee(r, kBinary64, Round::HalfAwayFromZero),
        ref.round_to(kBinary64, Round::HalfAwayFromZero), 52);
    const double ratio = std::fabs(
        b.to_double() * c.exact_value().to_double() / ref.to_double());
    const double aratio =
        std::fabs(a.exact_value().to_double() / ref.to_double());
    ASSERT_LE(err, 1.1 + 0.25 * (ratio + aratio))
        << a.to_string() << " " << c.to_string();
  }
}

TEST(OperandFuzz, RedundancyShufflePreservesValue) {
  // Sanity on the fuzzers themselves: the redundant encodings represent
  // the intended values.
  Rng rng(192);
  for (int i = 0; i < 5000; ++i) {
    PcsOperand p = random_pcs(rng);
    FcsOperand f = random_fcs(rng);
    EXPECT_LT(p.mant().as_cs().magnitude(), CsWord::bit_at(107));
    EXPECT_LT(f.mant().magnitude(), CsWord::bit_at(84));
  }
}

TEST(OperandFuzz, ConversionRoundTripAtExponentExtremes) {
  // The 12b excess-2047 exponent range exceeds IEEE's: operands near the
  // field limits convert out to inf/zero as specified.
  CsNum mant = CsNum::from_signed(110, false, CsWord(1ull) << 107);
  PcsOperand huge(PcsNum(110, 11, mant.sum(), mant.carry()),
                  PcsNum::zero(55, 11), 1500, FpClass::Normal, false);
  EXPECT_TRUE(pcs_to_ieee(huge, kBinary64, Round::NearestEven).is_inf());
  PcsOperand tiny(PcsNum(110, 11, mant.sum(), mant.carry()),
                  PcsNum::zero(55, 11), -1500, FpClass::Normal, false);
  EXPECT_TRUE(pcs_to_ieee(tiny, kBinary64, Round::NearestEven).is_zero());
  // But a wide-exponent readout format preserves them.
  EXPECT_TRUE(pcs_to_ieee(huge, kWideExact, Round::NearestEven).is_normal());
}

}  // namespace
}  // namespace csfma
