#include "solver/ipm.hpp"

#include "solver/ldl.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace csfma {
namespace {

TEST(Ipm, SolvesSmallMpc) {
  const double x0[4] = {0, 0, 1, 0};
  const double xref[4] = {8, 3, 0, 0};
  MpcProblem p = build_mpc(4, x0, xref);
  IpmResult r = solve_qp(p);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(eq_residual(p, r.z), 1e-5);
  // The box constraints hold.
  for (int i = 0; i < p.nz; ++i) {
    EXPECT_GE(r.z[(size_t)i], p.lb[(size_t)i] - 1e-9);
    EXPECT_LE(r.z[(size_t)i], p.ub[(size_t)i] + 1e-9);
  }
  // It actually moves toward the target.
  double px_end = r.z[(size_t)(6 * 3 + 2)];
  EXPECT_GT(px_end, 0.5);
}

TEST(Ipm, TightBoxActivatesConstraint) {
  // A very low acceleration limit must be (nearly) saturated early on.
  const double x0[4] = {0, 0, 0, 0};
  const double xref[4] = {50, 0, 0, 0};
  MpcProblem p = build_mpc(6, x0, xref, 0.25, /*accel_limit=*/0.5);
  IpmResult r = solve_qp(p);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.z[0], 0.5, 0.05);  // first ax near the bound
}

TEST(Ipm, ObjectiveDecreasesWithLongerHorizon) {
  // A longer horizon can only do at least as well on the same target.
  const double x0[4] = {0, 0, 1, 0};
  const double xref[4] = {4, 2, 0, 0};
  IpmResult r4 = solve_qp(build_mpc(4, x0, xref));
  IpmResult r8 = solve_qp(build_mpc(8, x0, xref));
  EXPECT_TRUE(r4.converged);
  EXPECT_TRUE(r8.converged);
  // Terminal position error shrinks with horizon.
  auto terminal_err = [&](const IpmResult& r, int T) {
    double dx = r.z[(size_t)(6 * (T - 1) + 2)] - xref[0];
    double dy = r.z[(size_t)(6 * (T - 1) + 3)] - xref[1];
    return std::hypot(dx, dy);
  };
  EXPECT_LT(terminal_err(r8, 8), terminal_err(r4, 4));
}

TEST(Ipm, UnconstrainedMatchesKktSolve) {
  // With huge boxes, a single Newton step from z=0 at tiny mu solves the
  // equality-constrained QP; the IPM must agree with that solution.
  const double x0[4] = {0.5, -0.25, 0, 0.5};
  const double xref[4] = {2, 2, 0, 0};
  MpcProblem p = build_mpc(3, x0, xref, 0.25, /*accel_limit=*/1e6);
  IpmResult r = solve_qp(p);
  EXPECT_TRUE(r.converged);
  // KKT optimality: Qz + q + A'nu = 0 for some nu  =>  the projection of
  // the gradient onto the nullspace of A vanishes.  Check via residual of
  // the normal equations: grad must lie in range(A').
  std::vector<double> grad((size_t)p.nz);
  for (int i = 0; i < p.nz; ++i)
    grad[(size_t)i] = p.q_diag[(size_t)i] * r.z[(size_t)i] + p.q_lin[(size_t)i];
  // Solve least squares A' nu ~= -grad by brute force (normal equations).
  Dense ata(p.ne);
  std::vector<double> atg((size_t)p.ne, 0.0);
  for (int e = 0; e < p.ne; ++e) {
    for (int f2 = 0; f2 < p.ne; ++f2) {
      double s = 0;
      for (int j = 0; j < p.nz; ++j) s += p.a_eq.at(e, j) * p.a_eq.at(f2, j);
      ata.at(e, f2) = s;
    }
    double s = 0;
    for (int j = 0; j < p.nz; ++j) s += p.a_eq.at(e, j) * grad[(size_t)j];
    atg[(size_t)e] = -s;
  }
  LdlFactors f = ldl_factor_dense(ata);
  std::vector<double> nu = ldl_solve_dense(f, atg);
  for (int j = 0; j < p.nz; ++j) {
    double resid = grad[(size_t)j];
    for (int e = 0; e < p.ne; ++e) resid += p.a_eq.at(e, j) * nu[(size_t)e];
    EXPECT_NEAR(resid, 0.0, 1e-4) << j;
  }
}

}  // namespace
}  // namespace csfma
