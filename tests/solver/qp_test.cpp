#include "solver/qp.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace csfma {
namespace {

MpcProblem small() {
  const double x0[4] = {0, 0, 1, 0};
  const double xref[4] = {8, 3, 0, 0};
  return build_mpc(4, x0, xref);
}

TEST(Qp, Dimensions) {
  MpcProblem p = small();
  EXPECT_EQ(p.nz, 24);
  EXPECT_EQ(p.ne, 16);
  EXPECT_EQ(p.nk, 40);
  EXPECT_EQ(p.input_indices().size(), 8u);
}

TEST(Qp, DynamicsConstraintSatisfiedByRollout) {
  // Rolling the double integrator forward must satisfy Az = b exactly.
  MpcProblem p = small();
  const double dt = p.dt;
  double x[4] = {0, 0, 1, 0};
  std::vector<double> z((size_t)p.nz);
  double u[2] = {0.5, -0.25};
  for (int t = 0; t < p.horizon; ++t) {
    z[(size_t)(6 * t + 0)] = u[0];
    z[(size_t)(6 * t + 1)] = u[1];
    double nx[4];
    nx[0] = x[0] + dt * x[2] + 0.5 * dt * dt * u[0];
    nx[1] = x[1] + dt * x[3] + 0.5 * dt * dt * u[1];
    nx[2] = x[2] + dt * u[0];
    nx[3] = x[3] + dt * u[1];
    for (int k = 0; k < 4; ++k) {
      z[(size_t)(6 * t + 2 + k)] = nx[k];
      x[k] = nx[k];
    }
  }
  for (int e = 0; e < p.ne; ++e) {
    double s = -p.b_eq[(size_t)e];
    for (int j = 0; j < p.nz; ++j) s += p.a_eq.at(e, j) * z[(size_t)j];
    EXPECT_NEAR(s, 0.0, 1e-12) << "row " << e;
  }
}

TEST(Qp, KktPatternSymmetricWithFullDiagonal) {
  MpcProblem p = small();
  auto pat = kkt_pattern(p);
  for (int i = 0; i < p.nk; ++i) {
    EXPECT_TRUE(pat[(size_t)i][(size_t)i]);
    for (int j = 0; j < p.nk; ++j)
      EXPECT_EQ(pat[(size_t)i][(size_t)j], pat[(size_t)j][(size_t)i]);
  }
}

TEST(Qp, KktMatrixMatchesPattern) {
  MpcProblem p = small();
  auto pat = kkt_pattern(p);
  std::vector<double> phi((size_t)p.nz, 0.5);
  Dense k = kkt_matrix(p, phi, 1e-7);
  for (int i = 0; i < p.nk; ++i) {
    for (int j = 0; j < p.nk; ++j) {
      if (k.at(i, j) != 0.0) {
        EXPECT_TRUE(pat[(size_t)i][(size_t)j]);
      }
      EXPECT_EQ(k.at(i, j), k.at(j, i));
    }
  }
  // Quasi-definite: positive diagonal on primal entries, negative on the
  // dual entries (stage-interleaved layout).
  for (int i = 0; i < p.nz; ++i) EXPECT_GT(k.at(p.kkt_var(i), p.kkt_var(i)), 0.0);
  for (int r = 0; r < p.ne; ++r) EXPECT_LT(k.at(p.kkt_dual(r), p.kkt_dual(r)), 0.0);
}

TEST(Qp, ComplexityGrowsWithHorizon) {
  const double x0[4] = {0, 0, 0, 0}, xr[4] = {1, 1, 0, 0};
  int prev = 0;
  for (int T : {4, 8, 12}) {
    MpcProblem p = build_mpc(T, x0, xr);
    EXPECT_EQ(p.nk, 10 * T);
    int nnz = 0;
    auto pat = kkt_pattern(p);
    for (const auto& row : pat)
      for (bool b : row) nnz += b;
    EXPECT_GT(nnz, prev);
    prev = nnz;
  }
}

}  // namespace
}  // namespace csfma
