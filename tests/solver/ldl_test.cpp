#include "solver/ldl.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace csfma {
namespace {

Dense random_quasidefinite(Rng& rng, int n, int neg_from) {
  // Diagonally dominant symmetric with sign-split diagonal: LDL-friendly.
  Dense k(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < i; ++j) {
      if (rng.next_below(3) == 0) {
        double v = rng.next_double(-0.5, 0.5);
        k.at(i, j) = v;
        k.at(j, i) = v;
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    double rowsum = 0;
    for (int j = 0; j < n; ++j)
      if (j != i) rowsum += std::fabs(k.at(i, j));
    k.at(i, i) = (i >= neg_from ? -1.0 : 1.0) * (rowsum + 1.0 + rng.next_unit());
  }
  return k;
}

TEST(Ldl, DenseFactorReconstructs) {
  Rng rng(160);
  for (int trial = 0; trial < 50; ++trial) {
    int n = (int)rng.next_int(2, 24);
    Dense k = random_quasidefinite(rng, n, n * 2 / 3);
    LdlFactors f = ldl_factor_dense(k);
    // K == L D L'.
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j <= i; ++j) {
        double s = 0;
        for (int m = 0; m <= std::min(i, j); ++m) {
          double li = (i == m) ? 1.0 : f.l.at(i, m);
          double lj = (j == m) ? 1.0 : f.l.at(j, m);
          s += li * lj * f.d[(size_t)m];
        }
        EXPECT_NEAR(s, k.at(i, j), 1e-9 * (1 + std::fabs(k.at(i, j))));
      }
    }
  }
}

TEST(Ldl, DenseSolveMatchesResidual) {
  Rng rng(161);
  for (int trial = 0; trial < 50; ++trial) {
    int n = (int)rng.next_int(2, 30);
    Dense k = random_quasidefinite(rng, n, n / 2);
    LdlFactors f = ldl_factor_dense(k);
    std::vector<double> b((size_t)n);
    for (auto& x : b) x = rng.next_double(-3, 3);
    std::vector<double> x = ldl_solve_dense(f, b);
    for (int i = 0; i < n; ++i) {
      double s = 0;
      for (int j = 0; j < n; ++j) s += k.at(i, j) * x[(size_t)j];
      EXPECT_NEAR(s, b[(size_t)i], 1e-8);
    }
  }
}

TEST(Ldl, SymbolicCoversNumericFill) {
  // Arrowhead pattern: eliminating the first column fills everything —
  // the classic fill-in stress case.
  const int n = 8;
  std::vector<std::vector<bool>> pat((size_t)n, std::vector<bool>((size_t)n));
  for (int i = 0; i < n; ++i) {
    pat[(size_t)i][(size_t)i] = true;
    pat[(size_t)i][0] = pat[0][(size_t)i] = true;
  }
  LdlSymbolic sym = ldl_symbolic(pat);
  // Full strict lower triangle after fill.
  EXPECT_EQ(sym.nnz(), n * (n - 1) / 2);
}

TEST(Ldl, SymbolicBandedHasNoFillBeyondBand) {
  const int n = 12, bw = 2;
  std::vector<std::vector<bool>> pat((size_t)n, std::vector<bool>((size_t)n));
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      if (std::abs(i - j) <= bw) pat[(size_t)i][(size_t)j] = true;
  LdlSymbolic sym = ldl_symbolic(pat);
  for (int k = 0; k < sym.nnz(); ++k)
    EXPECT_LE(sym.row[(size_t)k] - sym.col[(size_t)k], bw);
}

TEST(Ldl, PackValuesRejectsUncoveredFill) {
  // Pattern that claims diagonal-only, against a numeric factor with
  // off-diagonal values: must be refused.
  const int n = 3;
  std::vector<std::vector<bool>> diag_pat((size_t)n, std::vector<bool>((size_t)n));
  for (int i = 0; i < n; ++i) diag_pat[(size_t)i][(size_t)i] = true;
  LdlSymbolic sym = ldl_symbolic(diag_pat);
  Dense k(n);
  k.at(0, 0) = 4;
  k.at(1, 1) = 4;
  k.at(2, 2) = 4;
  k.at(1, 0) = k.at(0, 1) = 1;
  LdlFactors f = ldl_factor_dense(k);
  EXPECT_THROW(pack_l_values(sym, f), CheckError);
}

TEST(Ldl, EmittedKernelTextShape) {
  const int n = 3;
  std::vector<std::vector<bool>> pat((size_t)n, std::vector<bool>((size_t)n));
  for (int i = 0; i < n; ++i) pat[(size_t)i][(size_t)i] = true;
  pat[1][0] = pat[0][1] = true;
  pat[2][1] = pat[1][2] = true;
  LdlSymbolic sym = ldl_symbolic(pat);
  std::string src = emit_ldlsolve_kernel(sym, "tiny");
  EXPECT_NE(src.find("kernel tiny"), std::string::npos);
  EXPECT_NE(src.find("input double Lv[2]"), std::string::npos);
  EXPECT_NE(src.find("output double x[3]"), std::string::npos);
  EXPECT_NE(src.find("z[1] = b[1] - Lv[0]*z[0];"), std::string::npos);
  EXPECT_NE(src.find("w[2] = z[2] * dinv[2];"), std::string::npos);
}

}  // namespace
}  // namespace csfma
