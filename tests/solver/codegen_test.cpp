// End-to-end: generated ldlsolve()/ldlfactor() kernels parse, evaluate and
// match the dense numeric reference; the FMA pass preserves their results.
#include <gtest/gtest.h>

#include <cmath>

#include "frontend/parser.hpp"
#include "hls/fma_insert.hpp"
#include "hls/interp.hpp"
#include "hls/schedule.hpp"
#include "solver/solvers.hpp"

namespace csfma {
namespace {

TEST(Codegen, SolversHaveIncreasingComplexity) {
  auto solvers = paper_solvers();
  ASSERT_EQ(solvers.size(), 3u);
  int prev = 0;
  for (const auto& s : solvers) {
    KernelInfo k = parse_kernel(s.ldlsolve_src);
    int ops = k.graph.count(OpKind::Mul) + k.graph.count(OpKind::Add) +
              k.graph.count(OpKind::Sub) + k.graph.count(OpKind::Div);
    EXPECT_GT(ops, prev) << s.name;
    prev = ops;
    // Structure: no divisions (CVXGEN stores the inverted diagonal); one
    // mul per L entry in each substitution sweep plus the diagonal scale.
    EXPECT_EQ(k.graph.count(OpKind::Div), 0);
    EXPECT_EQ(k.graph.count(OpKind::Mul), 2 * s.sym.nnz() + s.problem.nk);
  }
}

TEST(Codegen, LdlsolveKernelMatchesDenseReference) {
  for (const auto& s : paper_solvers()) {
    KernelInfo k = parse_kernel(s.ldlsolve_src);
    Evaluator ev(k.graph);
    for (std::uint64_t seed : {1ull, 2ull}) {
      KernelInstance inst = make_kernel_instance(s, seed);
      auto out = ev.run(inst.inputs);
      for (int i = 0; i < s.problem.nk; ++i) {
        double got = out.at(element_name("x", i, true));
        double want = inst.expect_x[(size_t)i];
        ASSERT_NEAR(got, want, 1e-9 * (1.0 + std::fabs(want)))
            << s.name << " x[" << i << "]";
      }
    }
  }
}

TEST(Codegen, FmaPassPreservesLdlsolveSemantics) {
  const auto s = make_benchmark_solver("small", 4);
  KernelInfo k = parse_kernel(s.ldlsolve_src);
  OperatorLibrary lib = OperatorLibrary::for_device(virtex6());
  for (FmaStyle style : {FmaStyle::Pcs, FmaStyle::Fcs}) {
    Cdfg fused = k.graph;
    FmaInsertStats st = insert_fma_units(fused, lib, style);
    EXPECT_GT(st.fma_inserted, 0);
    fused.validate();
    Evaluator base(k.graph), opt(fused);
    KernelInstance inst = make_kernel_instance(s, 7);
    auto ob = base.run(inst.inputs);
    auto of = opt.run(inst.inputs);
    for (int i = 0; i < s.problem.nk; ++i) {
      double vb = ob.at(element_name("x", i, true));
      double vf = of.at(element_name("x", i, true));
      ASSERT_NEAR(vf, vb, 1e-9 * (1.0 + std::fabs(vb))) << i;
    }
  }
}

TEST(Codegen, FmaPassShortensLdlsolveSchedule) {
  // The Fig 15 effect at kernel level: both FMA styles shorten the
  // schedule, FCS more than PCS.
  OperatorLibrary lib = OperatorLibrary::for_device(virtex6());
  for (const auto& s : paper_solvers()) {
    KernelInfo k = parse_kernel(s.ldlsolve_src);
    int base = schedule_asap(k.graph, lib).length;
    Cdfg pcs = k.graph, fcs = k.graph;
    insert_fma_units(pcs, lib, FmaStyle::Pcs);
    insert_fma_units(fcs, lib, FmaStyle::Fcs);
    int lp = schedule_asap(pcs, lib).length;
    int lf = schedule_asap(fcs, lib).length;
    EXPECT_LT(lp, base) << s.name;
    EXPECT_LT(lf, lp) << s.name;
    double fcs_reduction = 100.0 * (base - lf) / base;
    EXPECT_GT(fcs_reduction, 15.0) << s.name;
  }
}

TEST(Codegen, LdlfactorKernelMatchesDenseReference) {
  const auto s = make_benchmark_solver("small", 4);
  KernelInfo k = parse_kernel(s.ldlfactor_src);
  Evaluator ev(k.graph);
  // Feed the KKT values in the generator's input layout.
  Rng rng(9);
  std::vector<double> phi((size_t)s.problem.nz, 0.0);
  for (int i : s.problem.input_indices()) phi[(size_t)i] = rng.next_double(0.1, 2.0);
  Dense kk = kkt_matrix(s.problem, phi, 1e-7);
  LdlFactors f = ldl_factor_dense(kk);
  auto pat = kkt_pattern(s.problem);
  std::map<std::string, double> in;
  for (int i = 0; i < s.problem.nk; ++i)
    in[element_name("Kd", i, true)] = kk.at(i, i);
  int idx = 0;
  for (int j = 0; j < s.problem.nk; ++j)
    for (int i = j + 1; i < s.problem.nk; ++i)
      if (pat[(size_t)i][(size_t)j]) in[element_name("Kl", idx++, true)] = kk.at(i, j);
  auto out = ev.run(in);
  for (int i = 0; i < s.problem.nk; ++i) {
    ASSERT_NEAR(out.at(element_name("dd", i, true)), f.d[(size_t)i],
                1e-9 * (1 + std::fabs(f.d[(size_t)i])));
  }
  for (int m = 0; m < s.sym.nnz(); ++m) {
    double want = f.l.at(s.sym.row[(size_t)m], s.sym.col[(size_t)m]);
    ASSERT_NEAR(out.at(element_name("Lv", m, true)), want,
                1e-9 * (1 + std::fabs(want)));
  }
}

}  // namespace
}  // namespace csfma
