#include "hls/interp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace csfma {
namespace {

TEST(Interp, PlainOpsMatchHostDoubles) {
  Cdfg g;
  int a = g.add_input("a");
  int b = g.add_input("b");
  int c = g.add_const(2.5);
  int e = g.add_op(OpKind::Div,
                   {g.add_op(OpKind::Sub, {g.add_op(OpKind::Mul, {a, b}), c}),
                    g.add_op(OpKind::Add, {a, b})});
  g.add_output("o", g.add_op(OpKind::Neg, {e}));
  Evaluator ev(g);
  Rng rng(140);
  for (int t = 0; t < 5000; ++t) {
    double av = rng.next_double(-7, 7), bv = rng.next_double(-7, 7);
    double want = -((av * bv - 2.5) / (av + bv));
    double got = ev.run({{"a", av}, {"b", bv}}).at("o");
    ASSERT_EQ(got, want);
  }
}

TEST(Interp, FmaNodesUseRealUnits) {
  for (FmaStyle style : {FmaStyle::Pcs, FmaStyle::Fcs}) {
    Cdfg g;
    int a = g.add_input("a");
    int b = g.add_input("b");
    int c = g.add_input("c");
    int ca = g.add_op(OpKind::CvtToCs, {a}, style);
    int cc = g.add_op(OpKind::CvtToCs, {c}, style);
    int f = g.add_op(OpKind::Fma, {ca, b, cc}, style);
    g.add_output("o", g.add_op(OpKind::CvtFromCs, {f}, style));
    Evaluator ev(g);
    Rng rng(141);
    for (int t = 0; t < 2000; ++t) {
      double av = rng.next_double(-7, 7), bv = rng.next_double(-7, 7),
             cv = rng.next_double(-7, 7);
      double got = ev.run({{"a", av}, {"b", bv}, {"c", cv}}).at("o");
      double want = std::fma(bv, cv, av);
      // Single fused op read out in half-away mode: at most one-ulp-ish
      // difference from the host's round-to-nearest fma on exact ties.
      ASSERT_NEAR(got, want, std::abs(want) * 0x1p-50 + 1e-300);
    }
  }
}

TEST(Interp, MissingInputThrows) {
  Cdfg g;
  int a = g.add_input("a");
  g.add_output("o", a);
  EXPECT_THROW(Evaluator(g).run({}), CheckError);
}

TEST(Interp, RunBatchMatchesScalarRuns) {
  // run_batch shares one CDFG walk setup across samples and must agree
  // with sample-at-a-time run(), including for CS-unit nodes.
  Cdfg g;
  int a = g.add_input("a");
  int b = g.add_input("b");
  int c = g.add_input("c");
  int ca = g.add_op(OpKind::CvtToCs, {a}, FmaStyle::Pcs);
  int cc = g.add_op(OpKind::CvtToCs, {c}, FmaStyle::Pcs);
  int f = g.add_op(OpKind::Fma, {ca, b, cc}, FmaStyle::Pcs);
  g.add_output("fma", g.add_op(OpKind::CvtFromCs, {f}, FmaStyle::Pcs));
  g.add_output("sum", g.add_op(OpKind::Add, {a, b}));
  Evaluator ev(g);
  Rng rng(142);
  std::vector<std::map<std::string, double>> batch;
  for (int t = 0; t < 500; ++t) {
    batch.push_back({{"a", rng.next_double(-7, 7)},
                     {"b", rng.next_double(-7, 7)},
                     {"c", rng.next_double(-7, 7)}});
  }
  auto outs = ev.run_batch(batch);
  ASSERT_EQ(outs.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) ASSERT_EQ(outs[i], ev.run(batch[i]));
}

TEST(Interp, RunBatchEmpty) {
  Cdfg g;
  g.add_output("o", g.add_input("a"));
  EXPECT_TRUE(Evaluator(g).run_batch({}).empty());
}

TEST(Interp, MultipleOutputs) {
  Cdfg g;
  int a = g.add_input("a");
  g.add_output("twice", g.add_op(OpKind::Add, {a, a}));
  g.add_output("square", g.add_op(OpKind::Mul, {a, a}));
  auto out = Evaluator(g).run({{"a", 3.0}});
  EXPECT_EQ(out.at("twice"), 6.0);
  EXPECT_EQ(out.at("square"), 9.0);
}

}  // namespace
}  // namespace csfma
