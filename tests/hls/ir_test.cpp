#include "hls/ir.hpp"

#include <gtest/gtest.h>

namespace csfma {
namespace {

Cdfg listing1() {
  // The paper's Listing 1: x1 = a*b + c*d; x2 = e*f + g*x1; x3 = h*i + k*x2.
  Cdfg g;
  int a = g.add_input("a"), b = g.add_input("b"), c = g.add_input("c"),
      d = g.add_input("d"), e = g.add_input("e"), f = g.add_input("f"),
      gg = g.add_input("g"), h = g.add_input("h"), i = g.add_input("i"),
      k = g.add_input("k");
  int x1 = g.add_op(OpKind::Add, {g.add_op(OpKind::Mul, {a, b}),
                                  g.add_op(OpKind::Mul, {c, d})});
  int x2 = g.add_op(OpKind::Add, {g.add_op(OpKind::Mul, {e, f}),
                                  g.add_op(OpKind::Mul, {gg, x1})});
  int x3 = g.add_op(OpKind::Add, {g.add_op(OpKind::Mul, {h, i}),
                                  g.add_op(OpKind::Mul, {k, x2})});
  g.add_output("x1", x1);
  g.add_output("x2", x2);
  g.add_output("x3", x3);
  return g;
}

TEST(Ir, BuildAndValidate) {
  Cdfg g = listing1();
  EXPECT_NO_THROW(g.validate());
  EXPECT_EQ(g.count(OpKind::Mul), 6);
  EXPECT_EQ(g.count(OpKind::Add), 3);
  EXPECT_EQ(g.count(OpKind::Input), 10);
  EXPECT_EQ(g.count(OpKind::Output), 3);
}

TEST(Ir, UsersAndReplace) {
  Cdfg g;
  int a = g.add_input("a");
  int b = g.add_input("b");
  int s = g.add_op(OpKind::Add, {a, b});
  int t = g.add_op(OpKind::Mul, {s, s});
  g.add_output("o", t);
  EXPECT_EQ(g.users(s).size(), 1u);
  EXPECT_EQ(g.users(a).size(), 1u);
  int s2 = g.add_op(OpKind::Sub, {a, b});
  g.replace_uses(s, s2);
  EXPECT_TRUE(g.users(s).empty());
  EXPECT_EQ(g.users(s2).size(), 1u);
}

TEST(Ir, PruneDeadRemovesUnreachable) {
  Cdfg g;
  int a = g.add_input("a");
  int b = g.add_input("b");
  int used = g.add_op(OpKind::Add, {a, b});
  g.add_op(OpKind::Mul, {a, b});  // unused
  g.add_output("o", used);
  EXPECT_EQ(g.prune_dead(), 1);
  EXPECT_EQ(g.count(OpKind::Mul), 0);
  EXPECT_NO_THROW(g.validate());
}

TEST(Ir, TypingRejectsIeeeIntoFma) {
  Cdfg g;
  int a = g.add_input("a");
  int b = g.add_input("b");
  int c = g.add_input("c");
  g.add_op(OpKind::Fma, {a, b, c}, FmaStyle::Pcs);  // A must be CS-typed
  EXPECT_THROW(g.validate(), CheckError);
}

TEST(Ir, TypingAcceptsProperChain) {
  Cdfg g;
  int a = g.add_input("a");
  int b = g.add_input("b");
  int c = g.add_input("c");
  int ca = g.add_op(OpKind::CvtToCs, {a}, FmaStyle::Pcs);
  int cc = g.add_op(OpKind::CvtToCs, {c}, FmaStyle::Pcs);
  int f1 = g.add_op(OpKind::Fma, {ca, b, cc}, FmaStyle::Pcs);
  int f2 = g.add_op(OpKind::Fma, {ca, b, f1}, FmaStyle::Pcs);  // chained CS
  int out = g.add_op(OpKind::CvtFromCs, {f2}, FmaStyle::Pcs);
  g.add_output("o", out);
  EXPECT_NO_THROW(g.validate());
}

TEST(Ir, TypingRejectsMixedStyles) {
  Cdfg g;
  int a = g.add_input("a");
  int b = g.add_input("b");
  int c = g.add_input("c");
  int ca = g.add_op(OpKind::CvtToCs, {a}, FmaStyle::Pcs);
  int cc = g.add_op(OpKind::CvtToCs, {c}, FmaStyle::Fcs);
  g.add_op(OpKind::Fma, {ca, b, cc}, FmaStyle::Pcs);
  EXPECT_THROW(g.validate(), CheckError);
}

TEST(Ir, TypingRejectsCsIntoPlainOp) {
  Cdfg g;
  int a = g.add_input("a");
  int ca = g.add_op(OpKind::CvtToCs, {a}, FmaStyle::Pcs);
  g.add_op(OpKind::Add, {ca, a});
  EXPECT_THROW(g.validate(), CheckError);
}

TEST(Ir, RebuildTopoNormalizesOrder) {
  Cdfg g = listing1();
  // Append a node and route an output through it (ids now out of order
  // relative to the use in no way — simulate a transform).
  int extra = g.add_op(OpKind::Neg, {0});
  g.replace_uses(1, extra);  // b's uses now point at a later id
  Cdfg r = rebuild_topo(g);
  EXPECT_NO_THROW(r.validate());
  for (int id : r.live_nodes()) {
    for (int a : r.node(id).args) EXPECT_LT(a, id);
  }
}

TEST(Ir, TopoOrderRespectsDependencies) {
  Cdfg g = listing1();
  auto order = g.topo_order();
  std::vector<int> pos((size_t)g.num_nodes(), -1);
  for (int i = 0; i < (int)order.size(); ++i) pos[(size_t)order[(size_t)i]] = i;
  for (int id : g.live_nodes()) {
    for (int a : g.node(id).args) {
      EXPECT_LT(pos[(size_t)a], pos[(size_t)id]);
    }
  }
}

TEST(Ir, DotExportContainsNodesAndCsEdges) {
  Cdfg g;
  int a = g.add_input("a");
  int b = g.add_input("b");
  int ca = g.add_op(OpKind::CvtToCs, {a}, FmaStyle::Pcs);
  int cb = g.add_op(OpKind::CvtToCs, {b}, FmaStyle::Pcs);
  int f = g.add_op(OpKind::Fma, {ca, a, cb}, FmaStyle::Pcs);
  g.add_output("o", g.add_op(OpKind::CvtFromCs, {f}, FmaStyle::Pcs));
  std::string dot = g.to_dot("t");
  EXPECT_NE(dot.find("digraph t"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=lightblue"), std::string::npos);  // the fma
  EXPECT_NE(dot.find("penwidth=2.5"), std::string::npos);  // CS-typed edge
  EXPECT_NE(dot.find("input\\na"), std::string::npos);
}

}  // namespace
}  // namespace csfma
