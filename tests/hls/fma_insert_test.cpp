// The automatic insertion pass on the paper's Listing 1 and variants.
#include "hls/fma_insert.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "hls/interp.hpp"
#include "hls/schedule.hpp"

namespace csfma {
namespace {

OperatorLibrary lib() { return OperatorLibrary::for_device(virtex6()); }

Cdfg listing1() {
  Cdfg g;
  int a = g.add_input("a"), b = g.add_input("b"), c = g.add_input("c"),
      d = g.add_input("d"), e = g.add_input("e"), f = g.add_input("f"),
      gg = g.add_input("g"), h = g.add_input("h"), i = g.add_input("i"),
      k = g.add_input("k");
  int x1 = g.add_op(OpKind::Add, {g.add_op(OpKind::Mul, {a, b}),
                                  g.add_op(OpKind::Mul, {c, d})});
  int x2 = g.add_op(OpKind::Add, {g.add_op(OpKind::Mul, {e, f}),
                                  g.add_op(OpKind::Mul, {gg, x1})});
  int x3 = g.add_op(OpKind::Add, {g.add_op(OpKind::Mul, {h, i}),
                                  g.add_op(OpKind::Mul, {k, x2})});
  g.add_output("x3", x3);
  return g;
}

TEST(FmaInsert, Listing1GetsFused) {
  for (FmaStyle style : {FmaStyle::Pcs, FmaStyle::Fcs}) {
    Cdfg g = listing1();
    OperatorLibrary l = lib();
    int before = schedule_asap(g, l).length;
    FmaInsertStats st = insert_fma_units(g, l, style);
    g.validate();
    EXPECT_EQ(st.fma_inserted, 3);
    // The three FMAs chain: the two inner cvt pairs get elided.
    EXPECT_EQ(st.conversions_elided, 2);
    EXPECT_EQ(g.count(OpKind::Fma), 3);
    EXPECT_EQ(g.count(OpKind::Add), 0);  // every critical MA got fused
    int after = schedule_asap(g, l).length;
    EXPECT_LT(after, before) << "style " << (int)style;
  }
}

TEST(FmaInsert, ScheduleReductionIsSubstantial) {
  // Listing 1's critical path: 3 chained MAs = 3*(5+4) = 27 cycles.
  // Fused: cvt(1) + 3 FMAs + cvt_back(3).
  Cdfg g = listing1();
  OperatorLibrary l = lib();
  EXPECT_EQ(schedule_asap(g, l).length, 27);
  insert_fma_units(g, l, FmaStyle::Fcs);
  // Leading discrete mul (5) + cvt (1) + 3 chained FMAs (3 each) + exit
  // conversion (3) = 18 cycles: a 33% reduction.
  EXPECT_EQ(schedule_asap(g, l).length, 18);
  Cdfg g2 = listing1();
  insert_fma_units(g2, l, FmaStyle::Pcs);
  // 5 + 1 + 3*5 + 3 = 24 cycles: an 11% reduction.
  EXPECT_EQ(schedule_asap(g2, l).length, 24);
}

TEST(FmaInsert, SemanticsPreserved) {
  Rng rng(130);
  OperatorLibrary l = lib();
  for (FmaStyle style : {FmaStyle::Pcs, FmaStyle::Fcs}) {
    for (int trial = 0; trial < 200; ++trial) {
      Cdfg base = listing1();
      Cdfg fused = listing1();
      insert_fma_units(fused, l, style);
      std::map<std::string, double> in;
      for (const char* name : {"a", "b", "c", "d", "e", "f", "g", "h", "i", "k"})
        in[name] = rng.next_double(-4.0, 4.0);
      double vb = Evaluator(base).run(in).at("x3");
      double vf = Evaluator(fused).run(in).at("x3");
      // Fused chains round less often; results agree to ~1 ulp per stage.
      ASSERT_NEAR(vf, vb, std::abs(vb) * 1e-12 + 1e-300);
    }
  }
}

TEST(FmaInsert, MultiUseMulIsNotFused) {
  Cdfg g;
  int a = g.add_input("a");
  int b = g.add_input("b");
  int m = g.add_op(OpKind::Mul, {a, b});
  int s1 = g.add_op(OpKind::Add, {m, a});
  int s2 = g.add_op(OpKind::Add, {m, b});  // m used twice
  g.add_output("o1", s1);
  g.add_output("o2", s2);
  OperatorLibrary l = lib();
  FmaInsertStats st = insert_fma_units(g, l, FmaStyle::Pcs);
  EXPECT_EQ(st.fma_inserted, 0);
  EXPECT_EQ(g.count(OpKind::Mul), 1);
}

TEST(FmaInsert, SubtractionsFoldWithSignFlips) {
  Rng rng(131);
  OperatorLibrary l = lib();
  // o = x - b*c  and  o2 = b*c - x.
  auto build = [](bool mul_first) {
    Cdfg g;
    int x = g.add_input("x");
    int b = g.add_input("b");
    int c = g.add_input("c");
    int m = g.add_op(OpKind::Mul, {b, c});
    int s = mul_first ? g.add_op(OpKind::Sub, {m, x})
                      : g.add_op(OpKind::Sub, {x, m});
    g.add_output("o", s);
    return g;
  };
  for (bool mul_first : {false, true}) {
    Cdfg g = build(mul_first);
    Cdfg base = build(mul_first);
    FmaInsertStats st = insert_fma_units(g, l, FmaStyle::Pcs);
    EXPECT_EQ(st.fma_inserted, 1);
    g.validate();
    for (int t = 0; t < 100; ++t) {
      std::map<std::string, double> in{{"x", rng.next_double(-9, 9)},
                                       {"b", rng.next_double(-9, 9)},
                                       {"c", rng.next_double(-9, 9)}};
      double vb = Evaluator(base).run(in).at("o");
      double vf = Evaluator(g).run(in).at("o");
      ASSERT_NEAR(vf, vb, std::abs(vb) * 1e-12 + 1e-300);
    }
  }
}

TEST(FmaInsert, OffCriticalPairsLeftAlone) {
  OperatorLibrary l = lib();
  // A deep divide chain dominates; a side multiply-add has slack and must
  // not be replaced (the paper's selective use, Sec. V).
  Cdfg g;
  int a = g.add_input("a");
  int b = g.add_input("b");
  int deep = g.add_op(OpKind::Div, {a, b});
  deep = g.add_op(OpKind::Div, {deep, b});
  int side = g.add_op(OpKind::Add, {g.add_op(OpKind::Mul, {a, b}), a});
  int join = g.add_op(OpKind::Add, {deep, side});
  g.add_output("o", join);
  FmaInsertStats st = insert_fma_units(g, l, FmaStyle::Fcs);
  EXPECT_EQ(st.fma_inserted, 0);
  EXPECT_EQ(g.count(OpKind::Mul), 1);
}

TEST(FmaInsert, ElisionDisabledKeepsConversions) {
  OperatorLibrary l = lib();
  Cdfg g = listing1();
  FmaInsertStats st = insert_fma_units(g, l, FmaStyle::Pcs,
                                       /*elide_conversions=*/false);
  EXPECT_EQ(st.fma_inserted, 3);
  EXPECT_EQ(st.conversions_elided, 0);
  // Unelided: each FMA has its own in/out conversions, so the chain is
  // longer than the elided version.
  Cdfg g2 = listing1();
  insert_fma_units(g2, l, FmaStyle::Pcs);
  EXPECT_GT(schedule_asap(g, l).length, schedule_asap(g2, l).length);
}

TEST(FmaInsert, CriticalOperandBecomesC) {
  // In x2 = e*f + g*x1 the x1 operand arrives late; it must be routed to
  // the CS-format C input so the chain elides.
  OperatorLibrary l = lib();
  Cdfg g = listing1();
  insert_fma_units(g, l, FmaStyle::Pcs);
  // Chained graph: some Fma node's C argument (args[2]) is another Fma.
  int chained = 0;
  for (int id : g.live_nodes()) {
    const Node& n = g.node(id);
    if (n.kind != OpKind::Fma) continue;
    if (g.node(n.args[2]).kind == OpKind::Fma) ++chained;
  }
  EXPECT_EQ(chained, 2);
}

}  // namespace
}  // namespace csfma
