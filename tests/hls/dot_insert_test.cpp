// The fused dot-product insertion pass.
#include "hls/dot_insert.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "hls/interp.hpp"
#include "hls/schedule.hpp"

namespace csfma {
namespace {

OperatorLibrary lib() { return OperatorLibrary::for_device(virtex6()); }

/// y = b - L0*z0 - L1*z1 - L2*z2 + w : one sum tree, three products.
Cdfg row_kernel() {
  Cdfg g;
  int b = g.add_input("b");
  int w = g.add_input("w");
  std::vector<int> prods;
  for (int i = 0; i < 3; ++i) {
    int l = g.add_input("L" + std::to_string(i));
    int z = g.add_input("z" + std::to_string(i));
    prods.push_back(g.add_op(OpKind::Mul, {l, z}));
  }
  int acc = b;
  for (int p : prods) acc = g.add_op(OpKind::Sub, {acc, p});
  acc = g.add_op(OpKind::Add, {acc, w});
  g.add_output("y", acc);
  return g;
}

TEST(DotInsert, RowTreeBecomesOneDot) {
  Cdfg g = row_kernel();
  OperatorLibrary l = lib();
  int before = schedule_asap(g, l).length;
  DotInsertStats st = insert_dot_products(g, l);
  g.validate();
  EXPECT_EQ(st.dots_inserted, 1);
  EXPECT_EQ(st.terms_fused, 5);  // 3 products + b + w
  EXPECT_EQ(g.count(OpKind::Dot), 1);
  EXPECT_EQ(g.count(OpKind::Add), 0);
  EXPECT_EQ(g.count(OpKind::Sub), 0);
  EXPECT_EQ(g.count(OpKind::Mul), 0);
  EXPECT_LT(schedule_asap(g, l).length, before);
}

TEST(DotInsert, SemanticsPreserved) {
  Rng rng(210);
  OperatorLibrary l = lib();
  Cdfg base = row_kernel();
  Cdfg fused = row_kernel();
  insert_dot_products(fused, l);
  for (int t = 0; t < 2000; ++t) {
    std::map<std::string, double> in{{"b", rng.next_double(-5, 5)},
                                     {"w", rng.next_double(-5, 5)}};
    for (int i = 0; i < 3; ++i) {
      in["L" + std::to_string(i)] = rng.next_double(-5, 5);
      in["z" + std::to_string(i)] = rng.next_double(-5, 5);
    }
    double vb = Evaluator(base).run(in).at("y");
    double vf = Evaluator(fused).run(in).at("y");
    ASSERT_NEAR(vf, vb, std::abs(vb) * 1e-12 + 1e-300);
  }
}

TEST(DotInsert, SingleProductTreeLeftAlone) {
  // Only one multiply: an FMA candidate, not a dot.
  Cdfg g;
  int a = g.add_input("a");
  int b = g.add_input("b");
  int m = g.add_op(OpKind::Mul, {a, b});
  g.add_output("o", g.add_op(OpKind::Add, {m, a}));
  OperatorLibrary l = lib();
  DotInsertStats st = insert_dot_products(g, l);
  EXPECT_EQ(st.dots_inserted, 0);
}

TEST(DotInsert, TermLimitRespected) {
  // A 20-product tree with max_terms=16 stays discrete.
  Cdfg g;
  int acc = g.add_input("x");
  for (int i = 0; i < 20; ++i) {
    int a = g.add_input("a" + std::to_string(i));
    int b = g.add_input("b" + std::to_string(i));
    acc = g.add_op(OpKind::Add, {acc, g.add_op(OpKind::Mul, {a, b})});
  }
  g.add_output("o", acc);
  OperatorLibrary l = lib();
  Cdfg limited = g;
  EXPECT_EQ(insert_dot_products(limited, l, 16).dots_inserted, 0);
  Cdfg big = g;
  EXPECT_EQ(insert_dot_products(big, l, 32).dots_inserted, 1);
}

TEST(DotInsert, MultiUseTreeNodeBlocksFusion) {
  // An inner sum used twice cannot be folded into the tree.
  Cdfg g;
  int a = g.add_input("a");
  int b = g.add_input("b");
  int m1 = g.add_op(OpKind::Mul, {a, b});
  int m2 = g.add_op(OpKind::Mul, {b, a});
  int inner = g.add_op(OpKind::Add, {m1, m2});
  int outer = g.add_op(OpKind::Add, {inner, a});
  g.add_output("o1", outer);
  g.add_output("o2", inner);  // second use of the inner sum
  OperatorLibrary l = lib();
  DotInsertStats st = insert_dot_products(g, l);
  // The inner tree (rooted at `inner`) can still fuse by itself...
  EXPECT_EQ(st.dots_inserted, 1);
  g.validate();
  // ...and both outputs still evaluate consistently.
  auto out = Evaluator(g).run({{"a", 3.0}, {"b", 4.0}});
  EXPECT_EQ(out.at("o2"), 24.0);
  EXPECT_EQ(out.at("o1"), 27.0);
}

TEST(DotInsert, SignFoldingThroughSubtractions) {
  // y = a*b - c*d - (e*f) with mixed signs.
  Cdfg g;
  int a = g.add_input("a"), b = g.add_input("b");
  int c = g.add_input("c"), d = g.add_input("d");
  int e = g.add_input("e"), f = g.add_input("f");
  int t = g.add_op(OpKind::Sub, {g.add_op(OpKind::Mul, {a, b}),
                                 g.add_op(OpKind::Mul, {c, d})});
  g.add_output("y", g.add_op(OpKind::Sub, {t, g.add_op(OpKind::Mul, {e, f})}));
  OperatorLibrary l = lib();
  Cdfg fused = g;
  insert_dot_products(fused, l);
  EXPECT_EQ(fused.count(OpKind::Dot), 1);
  Rng rng(211);
  for (int i = 0; i < 500; ++i) {
    std::map<std::string, double> in;
    for (const char* n : {"a", "b", "c", "d", "e", "f"})
      in[n] = rng.next_double(-3, 3);
    double vb = Evaluator(g).run(in).at("y");
    double vf = Evaluator(fused).run(in).at("y");
    ASSERT_NEAR(vf, vb, std::abs(vb) * 1e-12 + 1e-300);
  }
}

TEST(DotInsert, DotLatencyGrowsLogarithmically) {
  OperatorLibrary l = lib();
  EXPECT_EQ(l.dot_attr(2).latency, 5);
  EXPECT_EQ(l.dot_attr(4).latency, 6);
  EXPECT_EQ(l.dot_attr(8).latency, 7);
  EXPECT_EQ(l.dot_attr(16).latency, 8);
  EXPECT_GT(l.dot_attr(16).dsps, l.dot_attr(2).dsps);
}

}  // namespace
}  // namespace csfma
