#include "hls/schedule.hpp"

#include <gtest/gtest.h>

namespace csfma {
namespace {

OperatorLibrary lib() { return OperatorLibrary::for_device(virtex6()); }

Cdfg chain_of_mas(int n) {
  // x[i+1] = a*x[i] + b : a dependent multiply-add chain of length n.
  Cdfg g;
  int a = g.add_input("a");
  int b = g.add_input("b");
  int x = g.add_input("x0");
  for (int i = 0; i < n; ++i) {
    int m = g.add_op(OpKind::Mul, {a, x});
    x = g.add_op(OpKind::Add, {m, b});
  }
  g.add_output("x", x);
  return g;
}

TEST(Schedule, AsapChainLength) {
  OperatorLibrary l = lib();
  const int mul = l.attr(OpKind::Mul).latency;
  const int add = l.attr(OpKind::Add).latency;
  for (int n : {1, 3, 10}) {
    Cdfg g = chain_of_mas(n);
    Schedule s = schedule_asap(g, l);
    EXPECT_EQ(s.length, n * (mul + add));
  }
}

TEST(Schedule, AsapRespectsDependencies) {
  OperatorLibrary l = lib();
  Cdfg g = chain_of_mas(5);
  Schedule s = schedule_asap(g, l);
  for (int id : g.live_nodes()) {
    const Node& n = g.node(id);
    for (int a : n.args) {
      int avail = s.start[(size_t)a] + l.attr(g.node(a).kind, g.node(a).style).latency;
      EXPECT_GE(s.start[(size_t)id], avail);
    }
  }
}

TEST(Schedule, AlapMatchesAsapOnPureChain) {
  // A single dependency chain has zero mobility on every *operation*
  // (shared inputs like the re-used addend have slack toward later uses).
  OperatorLibrary l = lib();
  Cdfg g = chain_of_mas(4);
  Schedule asap = schedule_asap(g, l);
  Schedule alap = schedule_alap(g, l, asap.length);
  for (int id : g.live_nodes()) {
    OpKind k = g.node(id).kind;
    if (k == OpKind::Input || k == OpKind::Const || k == OpKind::Output)
      continue;
    EXPECT_EQ(asap.start[(size_t)id], alap.start[(size_t)id]) << id;
  }
}

TEST(Schedule, CriticalPathDetection) {
  OperatorLibrary l = lib();
  // Two parallel paths of different depth into one add: only the deep path
  // is critical.
  Cdfg g;
  int a = g.add_input("a");
  int b = g.add_input("b");
  int deep = g.add_op(OpKind::Mul, {a, b});
  deep = g.add_op(OpKind::Mul, {deep, b});
  int shallow = g.add_op(OpKind::Add, {a, b});
  int join = g.add_op(OpKind::Add, {shallow, deep});
  g.add_output("o", join);
  auto crit = critical_nodes(g, l);
  EXPECT_TRUE(crit[(size_t)deep]);
  EXPECT_TRUE(crit[(size_t)join]);
  EXPECT_FALSE(crit[(size_t)shallow]);
}

TEST(Schedule, ListUnlimitedMatchesAsap) {
  OperatorLibrary l = lib();
  Cdfg g = chain_of_mas(6);
  Schedule asap = schedule_asap(g, l);
  Schedule list = schedule_list(g, l, {});
  EXPECT_EQ(list.length, asap.length);
}

TEST(Schedule, ListResourceLimitSerializesIndependentOps) {
  OperatorLibrary l = lib();
  // 8 independent multiplies; a single multiplier issues one per cycle
  // (fully pipelined), so the last one starts at cycle 7.
  Cdfg g;
  int a = g.add_input("a");
  int b = g.add_input("b");
  std::vector<int> ms;
  for (int i = 0; i < 8; ++i) ms.push_back(g.add_op(OpKind::Mul, {a, b}));
  for (int i = 0; i < 8; ++i) g.add_output("o" + std::to_string(i), ms[(size_t)i]);
  ResourceLimits lim;
  lim.mul = 1;
  Schedule s = schedule_list(g, l, lim);
  EXPECT_EQ(s.length, 7 + l.attr(OpKind::Mul).latency);
  // With two multipliers it halves.
  lim.mul = 2;
  Schedule s2 = schedule_list(g, l, lim);
  EXPECT_EQ(s2.length, 3 + l.attr(OpKind::Mul).latency);
}

TEST(Schedule, ListNeverBeatsAsap) {
  OperatorLibrary l = lib();
  Cdfg g = chain_of_mas(4);
  for (int fma_limit : {1, 2, 4}) {
    ResourceLimits lim;
    lim.mul = fma_limit;
    lim.add_sub = fma_limit;
    Schedule s = schedule_list(g, l, lim);
    EXPECT_GE(s.length, schedule_asap(g, l).length);
  }
}

TEST(Schedule, BaselineLatenciesMatchPaperSetup) {
  // Sec. IV-A: "low latency" 5-cycle multiplier, 4-cycle adder.
  OperatorLibrary l = lib();
  EXPECT_EQ(l.attr(OpKind::Mul).latency, 5);
  EXPECT_EQ(l.attr(OpKind::Add).latency, 4);
  EXPECT_EQ(l.attr(OpKind::Fma, FmaStyle::Pcs).latency, 5);
  EXPECT_EQ(l.attr(OpKind::Fma, FmaStyle::Fcs).latency, 3);
}

TEST(Schedule, ReportSummarizesKindsAndSpans) {
  OperatorLibrary l = lib();
  Cdfg g = chain_of_mas(3);
  Schedule s = schedule_asap(g, l);
  std::string rep = schedule_report(g, l, s);
  EXPECT_NE(rep.find("mul: 3 ops"), std::string::npos) << rep;
  EXPECT_NE(rep.find("add: 3 ops"), std::string::npos) << rep;
  EXPECT_NE(rep.find("schedule: 27 cycles"), std::string::npos) << rep;
  EXPECT_NE(rep.find("peak issue width"), std::string::npos) << rep;
}

TEST(Schedule, HigherTargetNeverLengthensPipeline) {
  // Model property: relaxing the clock target can only reduce (or keep)
  // the architecture pipeline depths the oplib derives.
  OperatorLibrary fast = OperatorLibrary::for_device(virtex6(), 250.0);
  OperatorLibrary slow = OperatorLibrary::for_device(virtex6(), 100.0);
  for (OpKind k : {OpKind::Mul, OpKind::Add}) {
    EXPECT_GE(fast.attr(k).latency, slow.attr(k).latency);
  }
  EXPECT_GE(fast.attr(OpKind::Fma, FmaStyle::Pcs).latency,
            slow.attr(OpKind::Fma, FmaStyle::Pcs).latency);
}

}  // namespace
}  // namespace csfma
