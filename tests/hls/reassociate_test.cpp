#include "hls/reassociate.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "hls/fma_insert.hpp"
#include "hls/interp.hpp"
#include "hls/schedule.hpp"

namespace csfma {
namespace {

OperatorLibrary lib() { return OperatorLibrary::for_device(virtex6()); }

Cdfg long_sum(int n) {
  Cdfg g;
  int acc = g.add_input("x0");
  for (int i = 1; i < n; ++i) {
    int x = g.add_input("x" + std::to_string(i));
    acc = (i % 3 == 0) ? g.add_op(OpKind::Sub, {acc, x})
                       : g.add_op(OpKind::Add, {acc, x});
  }
  g.add_output("s", acc);
  return g;
}

TEST(Reassociate, DepthBecomesLogarithmic) {
  OperatorLibrary l = lib();
  const int add_lat = l.attr(OpKind::Add).latency;
  for (int n : {4, 8, 16, 32}) {
    Cdfg g = long_sum(n);
    EXPECT_EQ(schedule_asap(g, l).length, (n - 1) * add_lat);
    ReassociateStats st = reassociate_sums(g, l);
    g.validate();
    EXPECT_EQ(st.trees_rebalanced, 1);
    EXPECT_EQ(st.terms, n);
    int depth = 0;
    for (int m = n; m > 1; m = (m + 1) / 2) ++depth;
    EXPECT_EQ(schedule_asap(g, l).length, depth * add_lat);
  }
}

TEST(Reassociate, ValuesWithinReassociationEnvelope) {
  Rng rng(220);
  OperatorLibrary l = lib();
  for (int t = 0; t < 500; ++t) {
    Cdfg base = long_sum(16);
    Cdfg bal = long_sum(16);
    reassociate_sums(bal, l);
    std::map<std::string, double> in;
    double maxmag = 0;
    for (int i = 0; i < 16; ++i) {
      in["x" + std::to_string(i)] = rng.next_double(-100, 100);
      maxmag = std::max(maxmag, std::fabs(in["x" + std::to_string(i)]));
    }
    double vb = Evaluator(base).run(in).at("s");
    double vf = Evaluator(bal).run(in).at("s");
    // Reassociation error <= n * eps * sum|x|.
    ASSERT_NEAR(vf, vb, 16 * 16 * maxmag * 0x1p-52 + 1e-300);
  }
}

TEST(Reassociate, SmallTreesUntouched) {
  OperatorLibrary l = lib();
  Cdfg g = long_sum(2);
  EXPECT_EQ(reassociate_sums(g, l).trees_rebalanced, 0);
}

TEST(Reassociate, NegatedRootGetsFreeNeg) {
  // -a - b - c: all terms negative; the balanced tree ends in a Neg.
  Cdfg g;
  int a = g.add_input("a");
  int b = g.add_input("b");
  int c = g.add_input("c");
  int s = g.add_op(OpKind::Sub, {g.add_op(OpKind::Neg, {a}), b});
  g.add_output("o", g.add_op(OpKind::Sub, {s, c}));
  OperatorLibrary l = lib();
  Cdfg bal = g;
  reassociate_sums(bal, l, 2);
  bal.validate();
  auto out = Evaluator(bal).run({{"a", 1.0}, {"b", 2.0}, {"c", 4.0}});
  EXPECT_EQ(out.at("o"), -7.0);
}

TEST(Reassociate, BreaksFmaChains) {
  // The interaction the ablation quantifies: balancing a sum of products
  // leaves products paired with DIFFERENT adds, so fewer chained FMAs
  // elide; on a chain-shaped row the fused version can end up preferable
  // without balancing.
  OperatorLibrary l = lib();
  Cdfg g;
  int acc = g.add_input("b");
  for (int i = 0; i < 8; ++i) {
    int x = g.add_input("x" + std::to_string(i));
    int y = g.add_input("y" + std::to_string(i));
    acc = g.add_op(OpKind::Sub, {acc, g.add_op(OpKind::Mul, {x, y})});
  }
  g.add_output("o", acc);
  Cdfg fma_only = g;
  insert_fma_units(fma_only, l, FmaStyle::Fcs);
  Cdfg bal_then_fma = g;
  reassociate_sums(bal_then_fma, l);
  FmaInsertStats st = insert_fma_units(bal_then_fma, l, FmaStyle::Fcs);
  bal_then_fma.validate();
  // Balanced trees still fuse some pairs but elide fewer conversions.
  EXPECT_GT(st.fma_inserted, 0);
  // Semantics stay within the reassociation envelope.
  Rng rng(221);
  std::map<std::string, double> in{{"b", 3.0}};
  for (int i = 0; i < 8; ++i) {
    in["x" + std::to_string(i)] = rng.next_double(-2, 2);
    in["y" + std::to_string(i)] = rng.next_double(-2, 2);
  }
  double v1 = Evaluator(fma_only).run(in).at("o");
  double v2 = Evaluator(bal_then_fma).run(in).at("o");
  EXPECT_NEAR(v1, v2, std::fabs(v1) * 1e-10 + 1e-12);
}

}  // namespace
}  // namespace csfma
