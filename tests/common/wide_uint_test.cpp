#include "common/wide_uint.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace csfma {
namespace {

using u128 = unsigned __int128;

u128 to_u128(const U128& w) { return ((u128)w.word(1) << 64) | w.word(0); }
U128 from_u128(u128 v) {
  U128 r;
  r.set_word(0, (std::uint64_t)v);
  r.set_word(1, (std::uint64_t)(v >> 64));
  return r;
}

TEST(WideUint, BasicConstruction) {
  U256 z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.bit_width(), 0);
  EXPECT_EQ(z.countl_zero(), 256);
  EXPECT_EQ(z.countr_zero(), 256);

  U256 one = U256::one();
  EXPECT_FALSE(one.is_zero());
  EXPECT_EQ(one.bit_width(), 1);
  EXPECT_TRUE(one.bit(0));
  EXPECT_FALSE(one.bit(1));
}

TEST(WideUint, MaskAndBitAt) {
  EXPECT_EQ(U256::mask(0), U256::zero());
  EXPECT_EQ(U256::mask(1), U256::one());
  EXPECT_EQ(U256::mask(64).lo64(), ~std::uint64_t{0});
  EXPECT_EQ(U256::mask(65).word(1), 1u);
  EXPECT_EQ(U256::bit_at(200).bit(200), true);
  EXPECT_EQ(U256::bit_at(200).popcount(), 1);
  EXPECT_EQ(U256::mask(256).popcount(), 256);
}

TEST(WideUint, AddSubMatchesU128) {
  Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    u128 a = ((u128)rng.next_u64() << 64) | rng.next_u64();
    u128 b = ((u128)rng.next_u64() << 64) | rng.next_u64();
    EXPECT_EQ(to_u128(from_u128(a) + from_u128(b)), (u128)(a + b));
    EXPECT_EQ(to_u128(from_u128(a) - from_u128(b)), (u128)(a - b));
    EXPECT_EQ(to_u128(-from_u128(a)), (u128)(-a));
  }
}

TEST(WideUint, MulMatchesU128) {
  Rng rng(2);
  for (int i = 0; i < 20000; ++i) {
    u128 a = ((u128)rng.next_u64() << 64) | rng.next_u64();
    u128 b = ((u128)rng.next_u64() << 64) | rng.next_u64();
    EXPECT_EQ(to_u128(from_u128(a) * from_u128(b)), (u128)(a * b));
    // Full 64x64 product.
    std::uint64_t x = rng.next_u64(), y = rng.next_u64();
    WideUint<2> full = WideUint<1>(x).mul_full<1>(WideUint<1>(y));
    EXPECT_EQ(to_u128(full), (u128)x * y);
  }
}

TEST(WideUint, ShiftsMatchU128) {
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    u128 a = ((u128)rng.next_u64() << 64) | rng.next_u64();
    int s = (int)rng.next_below(128);
    EXPECT_EQ(to_u128(from_u128(a) << s), (u128)(a << s));
    EXPECT_EQ(to_u128(from_u128(a) >> s), (u128)(a >> s));
  }
  // Full-width shifts yield zero.
  EXPECT_TRUE((from_u128(~(u128)0) << 128).is_zero());
  EXPECT_TRUE((from_u128(~(u128)0) >> 128).is_zero());
}

TEST(WideUint, ShiftAcrossWordBoundaries) {
  U256 v = U256::one();
  for (int s = 0; s < 256; ++s) {
    U256 shifted = v << s;
    EXPECT_EQ(shifted.bit_width(), s + 1);
    EXPECT_TRUE(shifted.bit(s));
    EXPECT_EQ((shifted >> s), v);
  }
}

TEST(WideUint, CompareMatchesU128) {
  Rng rng(4);
  for (int i = 0; i < 20000; ++i) {
    u128 a = ((u128)rng.next_u64() << 64) | rng.next_u64();
    u128 b = rng.next_bool() ? a : (((u128)rng.next_u64() << 64) | rng.next_u64());
    EXPECT_EQ(from_u128(a) == from_u128(b), a == b);
    EXPECT_EQ(from_u128(a) < from_u128(b), a < b);
    EXPECT_EQ(from_u128(a) >= from_u128(b), a >= b);
  }
}

TEST(WideUint, DivmodMatchesU128) {
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    u128 a = ((u128)rng.next_u64() << 64) | rng.next_u64();
    u128 b = ((u128)rng.next_u64() << 64) | rng.next_u64();
    b >>= rng.next_below(120);
    if (b == 0) b = 1;
    auto [q, r] = divmod(from_u128(a), from_u128(b));
    EXPECT_EQ(to_u128(q), (u128)(a / b));
    EXPECT_EQ(to_u128(r), (u128)(a % b));
  }
}

TEST(WideUint, DivmodIdentityWide) {
  Rng rng(6);
  for (int i = 0; i < 2000; ++i) {
    U512 n = rng.next_wide<8>() >> (int)rng.next_below(512);
    U512 d = rng.next_wide<8>() >> (int)rng.next_below(512);
    if (d.is_zero()) d = U512::one();
    auto [q, r] = divmod(n, d);
    EXPECT_TRUE(r < d);
    EXPECT_EQ(q * d + r, n);
  }
}

TEST(WideUint, BitScans) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    std::uint64_t x = rng.next_u64() >> rng.next_below(64);
    WideUint<4> w(x);
    EXPECT_EQ(w.countl_zero(), 192 + std::countl_zero(x));
    EXPECT_EQ(w.countr_zero(), x == 0 ? 256 : std::countr_zero(x));
    EXPECT_EQ(w.popcount(), std::popcount(x));
    EXPECT_EQ(w.bit_width(), 64 - std::countl_zero(x));
  }
}

TEST(WideUint, ExtractDeposit) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    U256 v = rng.next_wide<4>();
    int lo = (int)rng.next_below(250);
    int len = (int)rng.next_below(256 - (unsigned)lo) + 0;
    U256 field = v.extract(lo, len);
    EXPECT_TRUE((field & ~U256::mask(len)).is_zero());
    // Depositing the extracted field back reproduces the original.
    EXPECT_EQ(v.deposit(lo, len, field), v);
    // Deposit of zero clears the field.
    U256 cleared = v.deposit(lo, len, U256::zero());
    EXPECT_TRUE(cleared.extract(lo, len).is_zero());
  }
}

TEST(WideUint, TwosComplementViews) {
  // -1 in an 8-bit window.
  U128 v(0xFFull);
  EXPECT_TRUE(v.sign_bit(8));
  EXPECT_EQ(v.sext(8), ~U128::zero());
  EXPECT_EQ(v.abs_signed(8), U128::one());
  // +127
  U128 p(0x7Full);
  EXPECT_FALSE(p.sign_bit(8));
  EXPECT_EQ(p.sext(8), p);
  EXPECT_EQ(p.abs_signed(8), p);
  // -128
  U128 m(0x80ull);
  EXPECT_EQ(m.abs_signed(8), U128(0x80ull));
}

TEST(WideUint, SextRandomAgainstInt64) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    std::int32_t x = (std::int32_t)rng.next_u64();
    U128 w((std::uint64_t)(std::uint32_t)x);
    U128 s = w.sext(32);
    EXPECT_EQ((std::int64_t)s.lo64(), (std::int64_t)x);
  }
}

TEST(WideUint, HexFormatting) {
  EXPECT_EQ(U128::zero().to_hex(), "0x0");
  EXPECT_EQ(U128(0xDEADBEEFull).to_hex(), "0xdeadbeef");
  EXPECT_EQ((U128::one() << 64).to_hex(), "0x10000000000000000");
}

TEST(WideUint, NarrowingWideningConversion) {
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) {
    U512 v = rng.next_wide<8>();
    U128 lo(v);
    EXPECT_EQ(lo.word(0), v.word(0));
    EXPECT_EQ(lo.word(1), v.word(1));
    U512 back(lo);
    EXPECT_EQ(back.truncated(128), v.truncated(128));
  }
}

TEST(WideUint, ChecksFire) {
  U128 v;
  EXPECT_THROW((void)v.bit(-1), CheckError);
  EXPECT_THROW((void)v.bit(128), CheckError);
  EXPECT_THROW((void)U128::mask(129), CheckError);
  EXPECT_THROW((void)divmod(U128::one(), U128::zero()), CheckError);
}

}  // namespace
}  // namespace csfma
