#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace csfma {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRangeAndCoversAll) {
  Rng rng(3);
  bool seen[7] = {};
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t v = rng.next_below(7);
    ASSERT_LT(v, 7u);
    seen[v] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(4);
  bool lo = false, hi = false;
  for (int i = 0; i < 2000; ++i) {
    std::int64_t v = rng.next_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    lo |= (v == -3);
    hi |= (v == 3);
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, UnitIntervalStatistics) {
  Rng rng(5);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double u = rng.next_unit();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, FpInExpRangeRespectsRange) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.next_fp_in_exp_range(-8, 8);
    int e;
    std::frexp(d, &e);
    // frexp exponent is one above the IEEE unbiased exponent.
    ASSERT_GE(e - 1, -8);
    ASSERT_LE(e - 1, 8);
    ASSERT_TRUE(std::isfinite(d));
    ASSERT_NE(d, 0.0);
  }
}

TEST(Rng, WideBitsRespectWidth) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    auto w = rng.next_wide_bits<4>(100);
    EXPECT_LE(w.bit_width(), 100);
  }
}

}  // namespace
}  // namespace csfma
