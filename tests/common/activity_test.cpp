#include "common/activity.hpp"

#include <gtest/gtest.h>

namespace csfma {
namespace {

TEST(Activity, CountsHammingDistanceBetweenObservations) {
  ActivityProbe p;
  p.observe(WideUint<2>(0b0000ull));
  EXPECT_EQ(p.toggles(), 0u);  // first observation sets the baseline
  p.observe(WideUint<2>(0b1010ull));
  EXPECT_EQ(p.toggles(), 2u);
  p.observe(WideUint<2>(0b1010ull));
  EXPECT_EQ(p.toggles(), 2u);  // no change, no toggles
  p.observe(WideUint<2>(0b0101ull));
  EXPECT_EQ(p.toggles(), 6u);
  EXPECT_EQ(p.observations(), 4u);
}

TEST(Activity, WideBusesCountAllBits) {
  ActivityProbe p;
  p.observe(WideUint<8>());
  p.observe(~WideUint<8>());
  EXPECT_EQ(p.toggles(), 512u);
}

TEST(Activity, ResetClearsStateAndBaseline) {
  ActivityProbe p;
  p.observe(WideUint<2>(0xFFull));
  p.observe(WideUint<2>(0x00ull));
  EXPECT_EQ(p.toggles(), 8u);
  p.reset();
  EXPECT_EQ(p.toggles(), 0u);
  EXPECT_EQ(p.observations(), 0u);
  p.observe(WideUint<2>(0xF0ull));
  EXPECT_EQ(p.toggles(), 0u);  // new baseline after reset
}

TEST(Activity, RecorderNamesProbesIndependently) {
  ActivityRecorder rec;
  rec.probe("a").observe(WideUint<2>(0ull));
  rec.probe("a").observe(WideUint<2>(1ull));
  rec.probe("b").observe(WideUint<2>(0ull));
  rec.probe("b").observe(WideUint<2>(3ull));
  EXPECT_EQ(rec.probe("a").toggles(), 1u);
  EXPECT_EQ(rec.probe("b").toggles(), 2u);
  EXPECT_EQ(rec.probes().size(), 2u);
  rec.reset();
  EXPECT_EQ(rec.probe("a").toggles(), 0u);
}

TEST(Activity, MixedWidthObservationsUseCommonWorkspace) {
  // Observing a narrow bus then a wide one compares zero-extended to the
  // wider of the two.
  ActivityProbe p;
  p.observe(WideUint<1>(0b1ull));
  p.observe(WideUint<8>(0b10ull));
  EXPECT_EQ(p.toggles(), 2u);
}

TEST(Activity, BusesWiderThan512BitsAreNotTruncated) {
  // Regression: observe() used to squeeze every bus through a 512-bit
  // workspace, silently dropping toggles above bit 511.
  ActivityProbe p;
  p.observe(WideUint<9>());
  p.observe(~WideUint<9>());
  EXPECT_EQ(p.toggles(), 576u);

  ActivityProbe hi;
  // A value whose only activity is in the words above the old workspace.
  WideUint<12> a, b;
  a.set_word(10, 0xFFull);
  b.set_word(11, 0x1ull);
  hi.observe(a);
  hi.observe(b);
  EXPECT_EQ(hi.toggles(), 9u);
}

TEST(Activity, ProbeMergeAddsTotalsWithoutInventingSeamToggles) {
  ActivityProbe a, b;
  a.observe(WideUint<1>(0x0ull));
  a.observe(WideUint<1>(0xFull));  // 4 toggles
  b.observe(WideUint<1>(0x0ull));  // baseline only: the all-ones -> zero
  b.observe(WideUint<1>(0x3ull));  // seam is NOT counted; 2 toggles
  a.merge_from(b);
  EXPECT_EQ(a.toggles(), 6u);
  EXPECT_EQ(a.observations(), 4u);
}

TEST(Activity, RecorderMergeWithDisjointProbeSetsCreatesMissingProbes) {
  ActivityRecorder r1, r2;
  r1.probe("adder").observe(WideUint<1>(0ull));
  r1.probe("adder").observe(WideUint<1>(1ull));  // 1 toggle
  r2.probe("shifter").observe(WideUint<1>(0ull));
  r2.probe("shifter").observe(WideUint<1>(7ull));  // 3 toggles
  r1.merge_from(r2);
  EXPECT_EQ(r1.probes().size(), 2u);
  EXPECT_EQ(r1.probe("adder").toggles(), 1u);
  EXPECT_EQ(r1.probe("shifter").toggles(), 3u);
  EXPECT_EQ(r1.probe("shifter").observations(), 2u);
  EXPECT_EQ(r1.total_toggles(), 4u);
  // The source recorder is untouched.
  EXPECT_EQ(r2.probes().size(), 1u);
  EXPECT_EQ(r2.total_toggles(), 3u);
}

TEST(Activity, RecorderMergeIntoEmptyEqualsCopy) {
  ActivityRecorder src, dst;
  src.probe("mul.sum").observe(WideUint<2>(0ull));
  src.probe("mul.sum").observe(WideUint<2>(0xFFull));
  dst.merge_from(src);
  EXPECT_EQ(dst.to_json(), src.to_json());
}

TEST(Activity, ToJsonIsSortedAndIntegerOnly) {
  ActivityRecorder rec;
  rec.probe("b", "add").observe(WideUint<1>(0ull));
  rec.probe("b").observe(WideUint<1>(3ull));
  rec.probe("a").observe(WideUint<1>(0ull));
  EXPECT_EQ(rec.to_json(),
            "{\"total_toggles\":2,\"stages\":{"
            "\"\":{\"toggles\":0,\"observations\":1},"
            "\"add\":{\"toggles\":2,\"observations\":2}},"
            "\"probes\":{"
            "\"a\":{\"stage\":\"\",\"toggles\":0,\"observations\":1},"
            "\"b\":{\"stage\":\"add\",\"toggles\":2,\"observations\":2}}}");
}

TEST(Activity, StageTotalsSumToPerUnitTotals) {
  ActivityRecorder rec;
  rec.probe("mul.sum", "mul").observe(WideUint<1>(0ull));
  rec.probe("mul.sum", "mul").observe(WideUint<1>(0xFull));   // 4 toggles
  rec.probe("mul.carry", "mul").observe(WideUint<1>(0ull));
  rec.probe("mul.carry", "mul").observe(WideUint<1>(0x3ull));  // 2 toggles
  rec.probe("add.sum", "add").observe(WideUint<1>(0ull));
  rec.probe("add.sum", "add").observe(WideUint<1>(0x1ull));    // 1 toggle
  auto stages = rec.stage_totals();
  EXPECT_EQ(stages.size(), 2u);
  EXPECT_EQ(stages["mul"].toggles, 6u);
  EXPECT_EQ(stages["add"].toggles, 1u);
  std::uint64_t sum = 0;
  for (const auto& [stage, st] : stages) sum += st.toggles;
  EXPECT_EQ(sum, rec.total_toggles());
}

TEST(Activity, MergePreservesAndAdoptsStageLabels) {
  ActivityRecorder dst, src;
  src.probe("mux.sum", "mux").observe(WideUint<1>(0ull));
  src.probe("mux.sum").observe(WideUint<1>(1ull));
  dst.merge_from(src);  // probe created on merge: label travels
  EXPECT_EQ(dst.probe("mux.sum").stage(), "mux");
  // Existing non-empty labels win over merged ones.
  dst.probe("mux.sum").merge_from(src.probe("other"));
  EXPECT_EQ(dst.probe("mux.sum").stage(), "mux");
}

// Histogram-style merge determinism at the recorder level: splitting a
// stream of observations across per-shard recorders and merging in shard
// order reproduces the sequential toggle counts.  (Per-shard baselines
// mean seam transitions are not counted, so each shard re-observes the
// boundary value — exactly what SimEngine's sharding does by re-deriving
// each shard's stream independently.)
TEST(Activity, ShardedMergeMatchesSequentialToggles) {
  const std::uint64_t vals[] = {0x0, 0xF, 0x3, 0x3, 0x8, 0x1, 0xE, 0x0};
  ActivityRecorder sequential;
  for (std::uint64_t v : vals) sequential.probe("bus").observe(WideUint<1>(v));

  ActivityRecorder merged;
  const int cuts[] = {0, 3, 5, 8};
  for (int s = 0; s + 1 < 4; ++s) {
    ActivityRecorder shard;
    // Re-observe the previous boundary value to rebuild the baseline.
    if (cuts[s] > 0) shard.probe("bus").observe(WideUint<1>(vals[cuts[s] - 1]));
    for (int i = cuts[s]; i < cuts[s + 1]; ++i)
      shard.probe("bus").observe(WideUint<1>(vals[i]));
    merged.merge_from(shard);
  }
  EXPECT_EQ(merged.total_toggles(), sequential.total_toggles());
  EXPECT_EQ(merged.probe("bus").toggles(), sequential.probe("bus").toggles());
}

TEST(Activity, RecorderMergeCombinesByProbeName) {
  ActivityRecorder r1, r2;
  r1.probe("adder").observe(WideUint<1>(0ull));
  r1.probe("adder").observe(WideUint<1>(1ull));
  r2.probe("adder").observe(WideUint<1>(0ull));
  r2.probe("adder").observe(WideUint<1>(3ull));
  r2.probe("shifter").observe(WideUint<1>(0ull));
  r2.probe("shifter").observe(WideUint<1>(7ull));
  r1.merge_from(r2);
  EXPECT_EQ(r1.probe("adder").toggles(), 3u);
  EXPECT_EQ(r1.probe("shifter").toggles(), 3u);
  EXPECT_EQ(r1.total_toggles(), 6u);
}

}  // namespace
}  // namespace csfma
