#include "common/activity.hpp"

#include <gtest/gtest.h>

namespace csfma {
namespace {

TEST(Activity, CountsHammingDistanceBetweenObservations) {
  ActivityProbe p;
  p.observe(WideUint<2>(0b0000ull));
  EXPECT_EQ(p.toggles(), 0u);  // first observation sets the baseline
  p.observe(WideUint<2>(0b1010ull));
  EXPECT_EQ(p.toggles(), 2u);
  p.observe(WideUint<2>(0b1010ull));
  EXPECT_EQ(p.toggles(), 2u);  // no change, no toggles
  p.observe(WideUint<2>(0b0101ull));
  EXPECT_EQ(p.toggles(), 6u);
  EXPECT_EQ(p.observations(), 4u);
}

TEST(Activity, WideBusesCountAllBits) {
  ActivityProbe p;
  p.observe(WideUint<8>());
  p.observe(~WideUint<8>());
  EXPECT_EQ(p.toggles(), 512u);
}

TEST(Activity, ResetClearsStateAndBaseline) {
  ActivityProbe p;
  p.observe(WideUint<2>(0xFFull));
  p.observe(WideUint<2>(0x00ull));
  EXPECT_EQ(p.toggles(), 8u);
  p.reset();
  EXPECT_EQ(p.toggles(), 0u);
  EXPECT_EQ(p.observations(), 0u);
  p.observe(WideUint<2>(0xF0ull));
  EXPECT_EQ(p.toggles(), 0u);  // new baseline after reset
}

TEST(Activity, RecorderNamesProbesIndependently) {
  ActivityRecorder rec;
  rec.probe("a").observe(WideUint<2>(0ull));
  rec.probe("a").observe(WideUint<2>(1ull));
  rec.probe("b").observe(WideUint<2>(0ull));
  rec.probe("b").observe(WideUint<2>(3ull));
  EXPECT_EQ(rec.probe("a").toggles(), 1u);
  EXPECT_EQ(rec.probe("b").toggles(), 2u);
  EXPECT_EQ(rec.probes().size(), 2u);
  rec.reset();
  EXPECT_EQ(rec.probe("a").toggles(), 0u);
}

TEST(Activity, MixedWidthObservationsUseCommonWorkspace) {
  // Observing a narrow bus then a wide one compares in the 512b workspace.
  ActivityProbe p;
  p.observe(WideUint<1>(0b1ull));
  p.observe(WideUint<8>(0b10ull));
  EXPECT_EQ(p.toggles(), 2u);
}

}  // namespace
}  // namespace csfma
