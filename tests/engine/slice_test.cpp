// Property tests for the bit-sliced (SoA) batch layer: every kernel in
// engine/slice.hpp must be bit-exact with its scalar counterpart in src/cs
// applied lane-by-lane, for every width class the datapaths use (including
// buses wider than 512 bits, where the lane-major values span 9+ words)
// and for batches whose lane count is not a multiple of 64.
#include "engine/slice.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/activity.hpp"
#include "common/rng.hpp"
#include "cs/cs_num.hpp"
#include "cs/lza.hpp"
#include "cs/pcs.hpp"
#include "cs/zero_detect.hpp"

namespace csfma {
namespace {

// Width classes: sub-word, the PCS tail (55), one word, the PCS mantissa
// (110), unaligned multi-word, the 385b adder, the full CsWord, and a
// >512b bus (9 words per lane).
const int kWidths[] = {1, 7, 55, 64, 110, 121, 385, 448, 576};
// Lane counts: single lane, odd remainders, one-short, and a full batch.
const int kLaneCounts[] = {1, 3, 27, 63, 64};

int words_for(int width_bits) { return (width_bits + 63) / 64; }

/// Random lane-major values of `width_bits` bits (top bits of the last
/// word zero), `stride` words per lane.
std::vector<std::uint64_t> random_lanes(Rng& rng, int n, int width_bits,
                                        int stride) {
  std::vector<std::uint64_t> lanes((std::size_t)(n * stride), 0);
  const int nw = words_for(width_bits);
  for (int L = 0; L < n; ++L) {
    for (int w = 0; w < nw; ++w) {
      std::uint64_t v = rng.next_u64();
      // Bias toward long runs of equal bits so sign-run / zero-detect
      // predicates see interesting inputs, not just dense noise.
      if (rng.next_below(3) == 0) v = rng.next_bool() ? ~std::uint64_t{0} : 0;
      if (w == nw - 1 && (width_bits & 63) != 0)
        v &= (std::uint64_t{1} << (width_bits & 63)) - 1;
      lanes[(std::size_t)(L * stride + w)] = v;
    }
  }
  return lanes;
}

/// Bit b of lane L, read straight from the lane-major array (the naive
/// reference the transpose is checked against).
int lane_bit(const std::vector<std::uint64_t>& lanes, int stride, int L,
             int b) {
  return (int)((lanes[(std::size_t)(L * stride + b / 64)] >> (b % 64)) & 1);
}

CsWord cs_of_lane(const std::vector<std::uint64_t>& lanes, int stride,
                  int L) {
  CsWord v;
  for (int w = 0; w < stride && w < CsWord::kWords; ++w)
    v.data()[w] = lanes[(std::size_t)(L * stride + w)];
  return v;
}

TEST(Slice, Transpose64MatchesNaiveAndIsInvolution) {
  Rng rng(1);
  std::uint64_t m[64], orig[64];
  for (int r = 0; r < 64; ++r) orig[r] = m[r] = rng.next_u64();
  slice::transpose64(m);
  for (int r = 0; r < 64; ++r)
    for (int c = 0; c < 64; ++c)
      ASSERT_EQ((m[r] >> c) & 1, (orig[c] >> r) & 1) << r << "," << c;
  slice::transpose64(m);
  for (int r = 0; r < 64; ++r) ASSERT_EQ(m[r], orig[r]);
}

TEST(Slice, PackUnpackRoundTripEveryWidthClass) {
  Rng rng(2);
  for (int width : kWidths) {
    const int stride = words_for(width);
    for (int n : kLaneCounts) {
      const auto lanes = random_lanes(rng, n, width, stride);
      std::vector<std::uint64_t> planes((std::size_t)width, ~std::uint64_t{0});
      slice::pack_words(lanes.data(), stride, n, width, planes.data());
      for (int b = 0; b < width; ++b) {
        for (int L = 0; L < n; ++L)
          ASSERT_EQ((planes[(std::size_t)b] >> L) & 1,
                    (std::uint64_t)lane_bit(lanes, stride, L, b))
              << "width " << width << " n " << n << " b " << b << " L " << L;
        // Lanes n..63 of every plane must be zero (the layout contract).
        if (n < 64) {
          ASSERT_EQ(planes[(std::size_t)b] >> n, 0u)
              << "width " << width << " n " << n << " b " << b;
        }
      }
      std::vector<std::uint64_t> back((std::size_t)(n * stride), 0);
      slice::unpack_words(planes.data(), width, n, back.data(), stride);
      ASSERT_EQ(back, lanes) << "width " << width << " n " << n;
    }
  }
}

TEST(Slice, Compress3MatchesScalarPerLane) {
  Rng rng(3);
  for (int width : {55, 110, 385, 448}) {
    const int stride = CsWord::kWords;
    const int n = 63;  // odd remainder on purpose
    const auto la = random_lanes(rng, n, width, stride);
    const auto lb = random_lanes(rng, n, width, stride);
    const auto lc = random_lanes(rng, n, width, stride);
    std::vector<std::uint64_t> pa((std::size_t)width), pb((std::size_t)width),
        pc((std::size_t)width), os((std::size_t)width), oc((std::size_t)width);
    slice::pack_words(la.data(), stride, n, width, pa.data());
    slice::pack_words(lb.data(), stride, n, width, pb.data());
    slice::pack_words(lc.data(), stride, n, width, pc.data());
    slice::compress3(width, pa.data(), pb.data(), pc.data(), os.data(),
                     oc.data());
    std::vector<std::uint64_t> ls((std::size_t)(n * stride), 0);
    std::vector<std::uint64_t> lcar((std::size_t)(n * stride), 0);
    slice::unpack_words(os.data(), width, n, ls.data(), stride);
    slice::unpack_words(oc.data(), width, n, lcar.data(), stride);
    for (int L = 0; L < n; ++L) {
      const CsNum want = compress3(width, cs_of_lane(la, stride, L),
                                   cs_of_lane(lb, stride, L),
                                   cs_of_lane(lc, stride, L));
      EXPECT_EQ(cs_of_lane(ls, stride, L), want.sum())
          << "width " << width << " lane " << L;
      EXPECT_EQ(cs_of_lane(lcar, stride, L), want.carry())
          << "width " << width << " lane " << L;
    }
  }
}

// The >512b bus class: no CsWord-based scalar reference exists above 448
// bits, so the compressor is checked against its bit-level definition
// (sum = a^b^c; carry = majority shifted up one, MSB majority dropped).
TEST(Slice, Compress3WidePlanesMatchDefinition) {
  Rng rng(4);
  const int width = 576, stride = words_for(width), n = 64;
  const auto la = random_lanes(rng, n, width, stride);
  const auto lb = random_lanes(rng, n, width, stride);
  const auto lc = random_lanes(rng, n, width, stride);
  std::vector<std::uint64_t> pa((std::size_t)width), pb((std::size_t)width),
      pc((std::size_t)width), os((std::size_t)width), oc((std::size_t)width);
  slice::pack_words(la.data(), stride, n, width, pa.data());
  slice::pack_words(lb.data(), stride, n, width, pb.data());
  slice::pack_words(lc.data(), stride, n, width, pc.data());
  slice::compress3(width, pa.data(), pb.data(), pc.data(), os.data(),
                   oc.data());
  for (int b = 0; b < width; ++b) {
    ASSERT_EQ(os[(std::size_t)b], pa[(std::size_t)b] ^ pb[(std::size_t)b] ^
                                      pc[(std::size_t)b])
        << b;
    const std::uint64_t maj_below =
        b == 0 ? 0
               : (pa[(std::size_t)(b - 1)] & pb[(std::size_t)(b - 1)]) |
                     (pc[(std::size_t)(b - 1)] &
                      (pa[(std::size_t)(b - 1)] | pb[(std::size_t)(b - 1)]));
    ASSERT_EQ(oc[(std::size_t)b], maj_below) << b;
  }
}

TEST(Slice, CarryReduceMatchesScalarPerLane) {
  Rng rng(5);
  const int width = 385, group = 11, stride = CsWord::kWords, n = 27;
  const auto ls = random_lanes(rng, n, width, stride);
  const auto lc = random_lanes(rng, n, width, stride);
  std::vector<std::uint64_t> ps((std::size_t)width), pc((std::size_t)width),
      rs((std::size_t)width), rc((std::size_t)width);
  slice::pack_words(ls.data(), stride, n, width, ps.data());
  slice::pack_words(lc.data(), stride, n, width, pc.data());
  slice::carry_reduce(width, group, ps.data(), pc.data(), rs.data(),
                      rc.data());
  std::vector<std::uint64_t> os((std::size_t)(n * stride), 0);
  std::vector<std::uint64_t> oc((std::size_t)(n * stride), 0);
  slice::unpack_words(rs.data(), width, n, os.data(), stride);
  slice::unpack_words(rc.data(), width, n, oc.data(), stride);
  for (int L = 0; L < n; ++L) {
    const PcsNum want = carry_reduce(
        CsNum(width, cs_of_lane(ls, stride, L), cs_of_lane(lc, stride, L)),
        group);
    EXPECT_EQ(cs_of_lane(os, stride, L), want.sum()) << "lane " << L;
    EXPECT_EQ(cs_of_lane(oc, stride, L), want.carries()) << "lane " << L;
  }
}

TEST(Slice, AssimilateMatchesToBinaryPerLane) {
  Rng rng(6);
  for (int width : {55, 385, 448}) {
    const int stride = CsWord::kWords, n = 63;
    const auto ls = random_lanes(rng, n, width, stride);
    const auto lc = random_lanes(rng, n, width, stride);
    std::vector<std::uint64_t> ps((std::size_t)width), pc((std::size_t)width),
        bin((std::size_t)width);
    slice::pack_words(ls.data(), stride, n, width, ps.data());
    slice::pack_words(lc.data(), stride, n, width, pc.data());
    slice::assimilate(width, ps.data(), pc.data(), bin.data());
    std::vector<std::uint64_t> lb((std::size_t)(n * stride), 0);
    slice::unpack_words(bin.data(), width, n, lb.data(), stride);
    for (int L = 0; L < n; ++L) {
      const CsWord want =
          CsNum(width, cs_of_lane(ls, stride, L), cs_of_lane(lc, stride, L))
              .to_binary();
      EXPECT_EQ(cs_of_lane(lb, stride, L), want)
          << "width " << width << " lane " << L;
    }
  }
}

TEST(Slice, CountSkippableBlocksMatchesScalarPerLane) {
  Rng rng(7);
  const int width = 385, block = 55, max_skip = 5;
  const int stride = CsWord::kWords, n = 63;
  for (int round = 0; round < 8; ++round) {
    auto ls = random_lanes(rng, n, width, stride);
    auto lc = random_lanes(rng, n, width, stride);
    // Force small / sign-extended values into some lanes so every skip
    // count in [0, max_skip] actually occurs.
    for (int L = 0; L < n; ++L) {
      if (L % 3 != 0) continue;
      const int keep = (int)rng.next_below((std::uint64_t)width);
      CsWord s = cs_of_lane(ls, stride, L).truncated(keep + 1);
      if (rng.next_bool())  // sign-extended negative: ones above `keep`
        s = s | (CsWord::mask(width) & ~CsWord::mask(keep + 1));
      CsWord c;  // an already-assimilated lane stresses the carry logic
      for (int w = 0; w < stride; ++w) {
        ls[(std::size_t)(L * stride + w)] = s.data()[w];
        lc[(std::size_t)(L * stride + w)] = c.data()[w];
      }
    }
    std::vector<std::uint64_t> ps((std::size_t)width), pc((std::size_t)width);
    std::uint64_t alive[5];
    slice::pack_words(ls.data(), stride, n, width, ps.data());
    slice::pack_words(lc.data(), stride, n, width, pc.data());
    slice::count_skippable_blocks(width, block, max_skip, ps.data(),
                                  pc.data(), alive);
    for (int L = 0; L < n; ++L) {
      int got = 0;
      for (int k = 0; k < max_skip; ++k) got += (int)((alive[k] >> L) & 1);
      const int want = count_skippable_blocks(
          CsNum(width, cs_of_lane(ls, stride, L), cs_of_lane(lc, stride, L)),
          block, max_skip);
      EXPECT_EQ(got, want) << "round " << round << " lane " << L;
    }
  }
}

TEST(Slice, LeadingSignRunMatchesScalarPerLane) {
  Rng rng(8);
  const int width = 385, stride = CsWord::kWords, n = 63;
  const auto lb = random_lanes(rng, n, width, stride);
  std::vector<std::uint64_t> bin((std::size_t)width);
  slice::pack_words(lb.data(), stride, n, width, bin.data());
  std::uint16_t run[64];
  slice::leading_sign_run(width, bin.data(), n, run);
  for (int L = 0; L < n; ++L) {
    const int want =
        leading_sign_run(CsNum::from_binary(width, cs_of_lane(lb, stride, L)));
    EXPECT_EQ((int)run[L], want) << "lane " << L;
  }
}

TEST(Slice, LzaEstimateMatchesScalarPerLane) {
  Rng rng(9);
  const int width = 385, stride = CsWord::kWords, n = 27;
  const auto ls = random_lanes(rng, n, width, stride);
  const auto lc = random_lanes(rng, n, width, stride);
  std::vector<std::uint64_t> ps((std::size_t)width), pc((std::size_t)width),
      scratch((std::size_t)(2 * width));
  slice::pack_words(ls.data(), stride, n, width, ps.data());
  slice::pack_words(lc.data(), stride, n, width, pc.data());
  std::uint16_t est[64];
  slice::lza_estimate(width, ps.data(), pc.data(), n, est, scratch.data());
  for (int L = 0; L < n; ++L) {
    const int want = lza_estimate(
        CsNum(width, cs_of_lane(ls, stride, L), cs_of_lane(lc, stride, L)));
    EXPECT_EQ((int)est[L], want) << "lane " << L;
  }
}

// Toggle accounting: one observe_planes() call must count exactly what n
// sequential per-lane observe() calls count — across batches (the seam
// between batch k's last lane and batch k+1's first), for odd-remainder
// batches, and for plane widths narrower than the scalar observation's
// word count (the scalar side zero-extends).
TEST(Slice, ObservePlanesMatchesSequentialObserve) {
  Rng rng(10);
  for (int width : {110, 385, 448}) {
    const int stride = CsWord::kWords;
    ActivityProbe scalar_probe, sliced_probe;
    for (int n : {64, 63, 27, 1, 3}) {
      const auto lanes = random_lanes(rng, n, width, stride);
      for (int L = 0; L < n; ++L)
        scalar_probe.observe(cs_of_lane(lanes, stride, L));
      std::vector<std::uint64_t> planes((std::size_t)width);
      slice::pack_words(lanes.data(), stride, n, width, planes.data());
      sliced_probe.observe_planes(planes.data(), width, n);
      ASSERT_EQ(sliced_probe.toggles(), scalar_probe.toggles())
          << "width " << width << " after batch of " << n;
      ASSERT_EQ(sliced_probe.observations(), scalar_probe.observations());
    }
  }
}

}  // namespace
}  // namespace csfma
