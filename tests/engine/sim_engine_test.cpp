// SimEngine: correctness of the batch/stream drivers and, critically, the
// determinism contract — results and merged switching activity must not
// depend on the worker thread count (the logical sharding is fixed by the
// data, see src/engine/sim_engine.hpp).
#include "engine/sim_engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "energy/workload.hpp"
#include "fma/classic_fma.hpp"

namespace csfma {
namespace {

EngineConfig config(UnitKind kind, int threads, std::uint64_t shard_ops) {
  EngineConfig cfg;
  cfg.unit = kind;
  cfg.threads = threads;
  cfg.rm = Round::NearestEven;
  cfg.shard_ops = shard_ops;
  return cfg;
}

std::map<std::string, std::uint64_t> toggle_map(const ActivityRecorder& rec) {
  std::map<std::string, std::uint64_t> m;
  for (const auto& [name, p] : rec.probes()) m[name] = p.toggles();
  return m;
}

TEST(SimEngine, MatchesDirectUnitLoop) {
  RandomTripleSource src(7, 1000);
  SimEngine engine(config(UnitKind::Classic, 2, 128));
  BatchResult r = engine.run_batch(src);
  ASSERT_EQ(r.results.size(), 1000u);

  std::vector<OperandTriple> ops(1000);
  src.fill(0, ops.data(), ops.size());
  ClassicFma unit;
  for (size_t i = 0; i < ops.size(); ++i) {
    PFloat want = unit.fma(ops[i].a, ops[i].b, ops[i].c);
    EXPECT_TRUE(PFloat::same_value(r.results[i], want)) << "op " << i;
  }
}

TEST(SimEngine, VectorBatchOverloadMatchesSource) {
  std::vector<OperandTriple> ops(257);
  RandomTripleSource src(8, ops.size());
  src.fill(0, ops.data(), ops.size());
  SimEngine engine(config(UnitKind::Pcs, 2, 64));
  BatchResult from_vec = engine.run_batch(ops);
  BatchResult from_src = engine.run_batch(src);
  ASSERT_EQ(from_vec.results.size(), from_src.results.size());
  for (size_t i = 0; i < ops.size(); ++i)
    EXPECT_TRUE(PFloat::same_value(from_vec.results[i], from_src.results[i]));
  EXPECT_EQ(toggle_map(from_vec.activity), toggle_map(from_src.activity));
}

// The determinism contract on a 10k-sample stream, for both carry-save
// units: 1 worker and N workers produce bit-identical results and equal
// merged toggle totals (per probe, not just in aggregate).
TEST(SimEngine, ThreadCountDoesNotChangeResultsOrActivity) {
  for (UnitKind kind : {UnitKind::Pcs, UnitKind::Fcs}) {
    RandomTripleSource src(42, 10000, -12, 12);
    SimEngine one(config(kind, 1, 512));
    SimEngine many(config(kind, 4, 512));
    BatchResult r1 = one.run_batch(src);
    BatchResult rn = many.run_batch(src);
    ASSERT_EQ(r1.results.size(), rn.results.size());
    for (size_t i = 0; i < r1.results.size(); ++i) {
      ASSERT_TRUE(PFloat::same_value(r1.results[i], rn.results[i]))
          << to_string(kind) << " op " << i;
    }
    EXPECT_EQ(toggle_map(r1.activity), toggle_map(rn.activity))
        << to_string(kind);
    EXPECT_EQ(r1.activity.total_toggles(), rn.activity.total_toggles());
    EXPECT_GT(r1.activity.total_toggles(), 0u);
  }
}

TEST(SimEngine, StreamMatchesBatchAndReusesBuffers) {
  RandomTripleSource src(11, 5000);
  SimEngine engine(config(UnitKind::Fcs, 3, 256));
  BatchResult batch = engine.run_batch(src);

  std::vector<PFloat> streamed(5000);
  StreamResult stream = engine.run_stream(
      src, [&](std::uint64_t start, const PFloat* results, std::size_t n) {
        for (std::size_t i = 0; i < n; ++i) streamed[start + i] = results[i];
      });
  for (size_t i = 0; i < streamed.size(); ++i)
    EXPECT_TRUE(PFloat::same_value(streamed[i], batch.results[i])) << i;
  EXPECT_EQ(toggle_map(stream.activity), toggle_map(batch.activity));
}

TEST(SimEngine, ShardStatsCoverTheWholeStream) {
  RandomTripleSource src(13, 1000);
  SimEngine engine(config(UnitKind::Discrete, 2, 300));
  BatchResult r = engine.run_batch(src);
  ASSERT_EQ(r.stats.shards.size(), 4u);  // ceil(1000 / 300)
  std::uint64_t total = 0, expect_start = 0;
  for (const auto& s : r.stats.shards) {
    EXPECT_EQ(s.start, expect_start);
    EXPECT_GE(s.ops_per_sec, 0.0);
    expect_start += s.ops;
    total += s.ops;
  }
  EXPECT_EQ(total, 1000u);
  EXPECT_EQ(r.stats.ops, 1000u);
  EXPECT_GT(r.stats.ops_per_sec, 0.0);
}

TEST(SimEngine, EmptyStream) {
  std::vector<OperandTriple> none;
  SimEngine engine(config(UnitKind::Pcs, 4, 128));
  BatchResult r = engine.run_batch(none);
  EXPECT_TRUE(r.results.empty());
  EXPECT_EQ(r.stats.ops, 0u);
  EXPECT_TRUE(r.stats.shards.empty());
  EXPECT_EQ(r.activity.total_toggles(), 0u);
}

TEST(SimEngine, RandomSourceIsChunkingInvariant) {
  RandomTripleSource src(99, 100);
  std::vector<OperandTriple> whole(100), pieces(100);
  src.fill(0, whole.data(), 100);
  src.fill(0, pieces.data(), 37);
  src.fill(37, pieces.data() + 37, 41);
  src.fill(78, pieces.data() + 78, 22);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(PFloat::same_value(whole[i].a, pieces[i].a));
    EXPECT_TRUE(PFloat::same_value(whole[i].b, pieces[i].b));
    EXPECT_TRUE(PFloat::same_value(whole[i].c, pieces[i].c));
  }
}

TEST(SimEngine, RecurrenceSourceIsChunkingInvariant) {
  RecurrenceSource src(5, 4, 20);  // 4 runs x 36 ops
  ASSERT_EQ(src.size(), 144u);
  std::vector<OperandTriple> whole(144), pieces(144);
  src.fill(0, whole.data(), 144);
  src.fill(0, pieces.data(), 50);   // cuts through run 1
  src.fill(50, pieces.data() + 50, 70);  // cuts through runs 1..3
  src.fill(120, pieces.data() + 120, 24);
  for (size_t i = 0; i < 144; ++i) {
    EXPECT_TRUE(PFloat::same_value(whole[i].a, pieces[i].a)) << i;
    EXPECT_TRUE(PFloat::same_value(whole[i].b, pieces[i].b)) << i;
    EXPECT_TRUE(PFloat::same_value(whole[i].c, pieces[i].c)) << i;
  }
}

TEST(SimEngine, SafeRateGuardsDegenerateInputs) {
  EXPECT_EQ(safe_rate(0, 0.0), 0.0);
  EXPECT_EQ(safe_rate(0, 1.0), 0.0);
  EXPECT_EQ(safe_rate(100, 0.0), 0.0);
  EXPECT_EQ(safe_rate(100, -1.0), 0.0);
  EXPECT_EQ(safe_rate(100, std::numeric_limits<double>::infinity()), 0.0);
  EXPECT_EQ(safe_rate(100, std::nan("")), 0.0);
  EXPECT_DOUBLE_EQ(safe_rate(100, 2.0), 50.0);
}

TEST(SimEngine, EmptyStreamRatesAreFiniteZero) {
  std::vector<OperandTriple> none;
  SimEngine engine(config(UnitKind::Pcs, 4, 128));
  BatchResult r = engine.run_batch(none);
  EXPECT_EQ(r.stats.ops_per_sec, 0.0);
  EXPECT_TRUE(std::isfinite(r.stats.ops_per_sec));
  EXPECT_TRUE(std::isfinite(r.stats.seconds));
}

// Renders only the Deterministic entries of a registry, the subset the
// thread-count-invariance contract covers (Timing entries — wall clock,
// per-worker utilization — legitimately differ between runs).
std::string deterministic_json(const MetricsRegistry& reg) {
  MetricsRegistry det;
  MetricsSnapshot s = reg.snapshot();
  for (const auto& [name, c] : s.counters)
    if (c.stability == Stability::Deterministic)
      det.counter(name).add(c.value);
  for (const auto& [name, g] : s.gauges)
    if (g.stability == Stability::Deterministic) det.gauge(name).set(g.value);
  for (const auto& [name, h] : s.histograms)
    if (h.stability == Stability::Deterministic)
      det.histogram(name, h.bounds).merge_from(h);
  return det.to_json();
}

// The telemetry face of the determinism contract: exported Deterministic
// metrics are byte-identical JSON for 1 worker and 4 workers on the same
// seed, and both runs also export *some* Timing entries (which are
// compared by presence only).
TEST(SimEngine, TelemetryMetricsAreThreadCountInvariant) {
  auto run = [](int threads, MetricsRegistry& reg) {
    RandomTripleSource src(42, 3000);
    EngineConfig cfg = config(UnitKind::Pcs, threads, 256);
    cfg.metrics = &reg;
    SimEngine engine(cfg);
    return engine.run_batch(src);
  };
  MetricsRegistry reg1, reg4;
  run(1, reg1);
  run(4, reg4);
  EXPECT_EQ(deterministic_json(reg1), deterministic_json(reg4));
  EXPECT_EQ(reg1.counter("engine.ops").value(), 3000u);
  EXPECT_EQ(reg1.counter("engine.shards").value(), 12u);  // ceil(3000/256)
  // Timing metrics exist in both but are not compared for equality.
  EXPECT_TRUE(reg1.gauge("engine.batch.seconds", Stability::Timing).is_set());
  EXPECT_TRUE(reg4.gauge("engine.batch.seconds", Stability::Timing).is_set());
}

TEST(SimEngine, TraceSessionRecordsShardAndMergeSpans) {
  RandomTripleSource src(7, 600);
  TraceSession trace;
  EngineConfig cfg = config(UnitKind::Fcs, 2, 256);
  cfg.trace = &trace;
  SimEngine engine(cfg);
  engine.run_batch(src);
  std::map<std::string, int> names;
  for (const auto& e : trace.events()) names[e.name] += 1;
  EXPECT_EQ(names["shard"], 3);  // ceil(600/256)
  EXPECT_EQ(names["fill"], 3);
  EXPECT_EQ(names["simulate"], 3);
  EXPECT_EQ(names["merge"], 1);
  // The export is well-formed chrome://tracing JSON.
  EXPECT_NE(trace.to_json().find("\"traceEvents\":["), std::string::npos);
}

TEST(SimEngine, TelemetryOffByDefault) {
  RandomTripleSource src(3, 100);
  SimEngine engine(config(UnitKind::Classic, 2, 64));
  BatchResult r = engine.run_batch(src);  // no registry/session: must not crash
  EXPECT_EQ(r.results.size(), 100u);
}

// run_chained against a hand-wired recurrence through the same FmaUnit
// chaining API: every intermediate readout must match, for all four
// architectures (the CS units carry unrounded tails between links, so this
// exercises the native-operand forwarding, not just the arithmetic).
TEST(SimEngine, ChainedMatchesHandWiredRecurrence) {
  const int depth = 20;
  const auto inputs = recurrence_inputs(31, 3);
  RecurrenceChainSource src(inputs, depth);
  for (UnitKind kind : kAllUnitKinds) {
    EngineConfig cfg;
    cfg.unit = kind;
    cfg.threads = 2;
    cfg.rm = Round::HalfAwayFromZero;
    cfg.shard_ops = src.ops_per_chain();  // one chain per shard
    SimEngine engine(cfg);
    BatchResult r = engine.run_chained(src);
    ASSERT_EQ(r.results.size(), inputs.size() * src.ops_per_chain());

    auto unit = make_fma_unit(kind);
    for (std::size_t run = 0; run < inputs.size(); ++run) {
      const RecurrenceInputs& in = inputs[run];
      FmaOperand x3 = unit->lift(in.x[0]);
      FmaOperand x2 = unit->lift(in.x[1]);
      FmaOperand x1 = unit->lift(in.x[2]);
      std::size_t op = run * (std::size_t)src.ops_per_chain();
      for (int i = 3; i <= depth; ++i) {
        FmaOperand t = unit->fma(x3, in.b2, x2);
        ASSERT_TRUE(PFloat::same_value(
            r.results[op], unit->lower(t, Round::HalfAwayFromZero)))
            << to_string(kind) << " op " << op;
        ++op;
        FmaOperand x = unit->fma(t, in.b1, x1);
        ASSERT_TRUE(PFloat::same_value(
            r.results[op], unit->lower(x, Round::HalfAwayFromZero)))
            << to_string(kind) << " op " << op;
        ++op;
        x3 = x2;
        x2 = x1;
        x1 = x;
      }
    }
  }
}

// Chained runs shard on chain boundaries, so results and merged activity
// are thread-count invariant exactly like batch runs.
TEST(SimEngine, ChainedIsThreadCountInvariant) {
  RecurrenceChainSource src(recurrence_inputs(55, 10), 30);
  auto run = [&](int threads) {
    EngineConfig cfg;
    cfg.unit = UnitKind::Fcs;
    cfg.threads = threads;
    cfg.rm = Round::HalfAwayFromZero;
    cfg.shard_ops = src.ops_per_chain();  // 10 shards
    SimEngine engine(cfg);
    return engine.run_chained(src);
  };
  BatchResult r1 = run(1);
  BatchResult r4 = run(4);
  ASSERT_EQ(r1.results.size(), r4.results.size());
  for (std::size_t i = 0; i < r1.results.size(); ++i)
    ASSERT_TRUE(PFloat::same_value(r1.results[i], r4.results[i])) << i;
  EXPECT_EQ(toggle_map(r1.activity), toggle_map(r4.activity));
  EXPECT_GT(r1.activity.total_toggles(), 0u);
}

TEST(SimEngine, MeasureChainedIsThreadCountInvariant) {
  ActivityMeasurement one = measure_chained(UnitKind::Pcs, 9, 6, 30, 1);
  ActivityMeasurement four = measure_chained(UnitKind::Pcs, 9, 6, 30, 4);
  EXPECT_EQ(one.ops, four.ops);
  EXPECT_DOUBLE_EQ(one.toggles_per_op, four.toggles_per_op);
  EXPECT_EQ(one.by_component, four.by_component);
  EXPECT_EQ(one.stage_toggles, four.stage_toggles);
  EXPECT_GT(one.toggles_per_op, 0.0);
}

// Cooperative cancellation: EngineConfig::abort is polled at shard CLAIM
// boundaries only, so an aborted run stops on an exact shard boundary,
// reports a truthful ops_done, and the shards it did finish are bit-exact.
TEST(SimEngine, AbortPreSetClaimsNoShards) {
  RandomTripleSource src(21, 4000);
  std::atomic<bool> stop{true};
  EngineConfig cfg = config(UnitKind::Pcs, 3, 256);
  cfg.abort = &stop;
  SimEngine engine(cfg);
  BatchResult r = engine.run_batch(src);
  EXPECT_TRUE(r.stats.aborted);
  EXPECT_EQ(r.stats.ops_done, 0u);
  EXPECT_EQ(r.stats.ops, 4000u);  // requested size still reported
}

TEST(SimEngine, AbortUnsetRunsToCompletion) {
  RandomTripleSource src(23, 1000);
  std::atomic<bool> stop{false};
  EngineConfig cfg = config(UnitKind::Fcs, 2, 300);
  cfg.abort = &stop;
  SimEngine engine(cfg);
  BatchResult r = engine.run_batch(src);
  EXPECT_FALSE(r.stats.aborted);
  EXPECT_EQ(r.stats.ops_done, 1000u);
}

TEST(SimEngine, AbortMidRunStopsOnShardBoundary) {
  RandomTripleSource src(22, 4000);
  std::atomic<bool> stop{false};
  EngineConfig cfg = config(UnitKind::Pcs, 1, 250);
  cfg.abort = &stop;
  cfg.progress_interval_s = 0.0;  // a beat after every shard
  cfg.progress = [&](const EngineProgress& p) {
    if (p.ops_done >= 500) stop.store(true);
  };
  SimEngine engine(cfg);
  BatchResult aborted = engine.run_batch(src);
  EXPECT_TRUE(aborted.stats.aborted);
  // One worker, abort raised after the second beat: exactly two shards ran.
  EXPECT_EQ(aborted.stats.ops_done, 500u);

  // The in-flight shard runs to completion, so the prefix that WAS
  // simulated matches a full run bit for bit.
  SimEngine full(config(UnitKind::Pcs, 1, 250));
  BatchResult want = full.run_batch(src);
  EXPECT_FALSE(want.stats.aborted);
  for (std::uint64_t i = 0; i < aborted.stats.ops_done; ++i)
    ASSERT_TRUE(PFloat::same_value(aborted.results[i], want.results[i])) << i;
}

TEST(SimEngine, AbortChainedStopsOnChainBoundary) {
  RecurrenceChainSource src(recurrence_inputs(9, 12), 20);
  std::atomic<bool> stop{false};
  EngineConfig cfg = config(UnitKind::Fcs, 1, src.ops_per_chain());
  cfg.abort = &stop;
  cfg.progress_interval_s = 0.0;
  cfg.progress = [&](const EngineProgress& p) {
    if (p.shards_done >= 3) stop.store(true);
  };
  SimEngine engine(cfg);
  BatchResult r = engine.run_chained(src);
  EXPECT_TRUE(r.stats.aborted);
  EXPECT_EQ(r.stats.ops_done, 3 * src.ops_per_chain());
  EXPECT_EQ(r.stats.ops_done % src.ops_per_chain(), 0u);
}

TEST(SimEngine, MeasureStreamIsThreadCountInvariant) {
  ActivityMeasurement one = measure_stream(UnitKind::Pcs, 77, 6, 30, 1);
  ActivityMeasurement four = measure_stream(UnitKind::Pcs, 77, 6, 30, 4);
  EXPECT_EQ(one.ops, four.ops);
  EXPECT_DOUBLE_EQ(one.toggles_per_op, four.toggles_per_op);
  EXPECT_EQ(one.by_component, four.by_component);
  EXPECT_GT(one.toggles_per_op, 0.0);
}

// ---- backend equivalence (the scalar|sliced knob) ------------------------

/// An operand stream that forces every sliced-path special case: NaN and
/// infinity operands, zero products, a zero addend, an A pass-through
/// (addend exponent far above the product), exact cancellation, a
/// subnormal-flush product, plus a random tail — and a length (130) that
/// leaves an odd remainder after two full 64-lane blocks.
std::vector<OperandTriple> adversarial_ops() {
  auto f = [](double v) { return PFloat::from_double(kBinary64, v); };
  const double inf = std::numeric_limits<double>::infinity();
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  std::vector<OperandTriple> ops;
  ops.push_back({f(qnan), f(1.5), f(2.0)});       // NaN a
  ops.push_back({f(1.0), f(qnan), f(2.0)});       // NaN b
  ops.push_back({f(1.0), f(1.5), f(qnan)});       // NaN c
  ops.push_back({f(inf), f(1.5), f(2.0)});        // inf a
  ops.push_back({f(1.0), f(-inf), f(2.0)});       // inf b
  ops.push_back({f(1.0), f(1.5), f(inf)});        // inf c
  ops.push_back({f(1.0), f(0.0), f(2.0)});        // zero product (b)
  ops.push_back({f(1.0), f(1.5), f(-0.0)});       // zero product (c)
  ops.push_back({f(0.0), f(1.5), f(2.0)});        // zero addend
  ops.push_back({f(-0.0), f(-1.5), f(2.0)});      // negative product
  // A pass-through: the addend sits far above the product window.
  ops.push_back({f(std::ldexp(1.0, 500)), f(std::ldexp(1.0, -200)),
                 f(std::ldexp(1.0, -200))});
  // Exact cancellation: a + b*c == 0 triggers the late zero detect.
  ops.push_back({f(-3.75), f(1.5), f(2.5)});
  // Massive cancellation with a tiny residue (deep ZD block skipping).
  ops.push_back({f(-3.75), f(1.5), f(2.5000000000000004)});
  // Subnormal flush: the product exponent falls below the PCS range.
  ops.push_back({f(0.0), f(std::ldexp(1.0, -1060)),
                 f(std::ldexp(1.0, -1060))});
  ops.push_back({f(std::ldexp(1.0, -1000)), f(std::ldexp(1.0, -1060)),
                 f(std::ldexp(1.0, -500))});
  RandomTripleSource tail(2026, 130 - ops.size(), -12, 12);
  std::vector<OperandTriple> rest(130 - ops.size());
  tail.fill(0, rest.data(), rest.size());
  ops.insert(ops.end(), rest.begin(), rest.end());
  return ops;
}

/// Results, per-probe toggle counts AND the serialized event log must be
/// byte-identical between the scalar reference backend and the sliced
/// backend, at any thread count (the CI backend-equivalence gate).
TEST(SimEngine, BackendEquivalenceOnAdversarialOperands) {
  const std::vector<OperandTriple> ops = adversarial_ops();
  auto run = [&](EngineBackend backend, int threads) {
    EngineConfig cfg = config(UnitKind::Pcs, threads, 32);
    cfg.backend = backend;
    cfg.event_capacity = 1024;
    SimEngine engine(cfg);
    return engine.run_batch(ops);
  };
  const BatchResult ref = run(EngineBackend::Scalar, 1);
  EXPECT_GT(ref.events.events().size(), 0u);  // the stream raises events
  for (EngineBackend backend : {EngineBackend::Scalar, EngineBackend::Sliced}) {
    for (int threads : {1, 3}) {
      const BatchResult got = run(backend, threads);
      ASSERT_EQ(got.results.size(), ref.results.size());
      for (std::size_t i = 0; i < ref.results.size(); ++i) {
        // Bit equality, not same_value(): NaN results must match too.
        EXPECT_EQ(got.results[i].to_bits(), ref.results[i].to_bits())
            << to_string(backend) << " t" << threads << " op " << i;
      }
      EXPECT_EQ(toggle_map(got.activity), toggle_map(ref.activity))
          << to_string(backend) << " t" << threads;
      EXPECT_EQ(got.events.to_json(), ref.events.to_json())
          << to_string(backend) << " t" << threads;
    }
  }
}

TEST(SimEngine, BackendEquivalenceOnRandomStream) {
  RandomTripleSource src(314159, 5000, -12, 12);
  EngineConfig scfg = config(UnitKind::Pcs, 2, 512);
  scfg.backend = EngineBackend::Scalar;
  EngineConfig vcfg = scfg;
  vcfg.backend = EngineBackend::Sliced;
  const BatchResult rs = SimEngine(scfg).run_batch(src);
  const BatchResult rv = SimEngine(vcfg).run_batch(src);
  ASSERT_EQ(rs.results.size(), rv.results.size());
  for (std::size_t i = 0; i < rs.results.size(); ++i)
    ASSERT_TRUE(PFloat::same_value(rs.results[i], rv.results[i])) << i;
  EXPECT_EQ(toggle_map(rs.activity), toggle_map(rv.activity));
  EXPECT_GT(rs.activity.total_toggles(), 0u);
}

// ---- worker clamp (small-host fix) ---------------------------------------

// A worker request beyond the host's hardware threads is clamped to it —
// oversubscribing a 1-thread CI box made `batch_parallel` slower than
// `batch_1t` — and the clamp is visible to callers (the bench harness
// records it in baseline meta).
TEST(SimEngine, WorkerRequestClampsToHardwareThreads) {
  const unsigned hwc = std::thread::hardware_concurrency();
  const int hw = hwc == 0 ? 1 : (int)hwc;

  SimEngine greedy(config(UnitKind::Pcs, hw + 63, 128));
  EXPECT_EQ(greedy.requested_threads(), hw + 63);
  EXPECT_EQ(greedy.resolved_threads(), hw);
  EXPECT_TRUE(greedy.threads_clamped());

  SimEngine one(config(UnitKind::Pcs, 1, 128));
  EXPECT_EQ(one.resolved_threads(), 1);
  EXPECT_FALSE(one.threads_clamped());

  SimEngine autodetect(config(UnitKind::Pcs, 0, 128));
  EXPECT_EQ(autodetect.requested_threads(), 0);
  EXPECT_EQ(autodetect.resolved_threads(), hw);
  EXPECT_FALSE(autodetect.threads_clamped());  // auto-detect is not a clamp

  // Clamped runs still honor the determinism contract.
  RandomTripleSource src(8086, 2000, -8, 8);
  const BatchResult a = one.run_batch(src);
  const BatchResult b = greedy.run_batch(src);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i)
    ASSERT_TRUE(PFloat::same_value(a.results[i], b.results[i])) << i;
  EXPECT_EQ(toggle_map(a.activity), toggle_map(b.activity));
}

}  // namespace
}  // namespace csfma
