// EventLog: bounded-ring semantics, operand-context stamping, shard-order
// merge, and the deterministic JSON rendering the engine's thread-count
// invariance contract is stated over.
#include "introspect/event_log.hpp"

#include <gtest/gtest.h>

namespace csfma {
namespace {

TEST(EventLog, RingKeepsMostRecentAndCountsShed) {
  EventLog log(3);
  for (int i = 0; i < 5; ++i) {
    log.begin_op((std::uint64_t)i, 0, 0, 0);
    log.raise(EventKind::Cancellation, i);
  }
  EXPECT_EQ(log.raised(), 5u);
  EXPECT_EQ(log.dropped(), 2u);
  ASSERT_EQ(log.events().size(), 3u);
  EXPECT_EQ(log.events()[0].op, 2u);
  EXPECT_EQ(log.events()[2].op, 4u);
  EXPECT_EQ(log.events()[2].detail, 4);
}

TEST(EventLog, BeginOpStampsOperandContext) {
  EventLog log(4);
  log.begin_op(9, 0x11, 0x22, 0x33);
  log.raise(EventKind::LzaMispredict, 1);
  log.raise(EventKind::MisroundVsIeee);  // same op context, second event
  ASSERT_EQ(log.events().size(), 2u);
  for (const NumEvent& e : log.events()) {
    EXPECT_EQ(e.op, 9u);
    EXPECT_EQ(e.a_bits, 0x11u);
    EXPECT_EQ(e.b_bits, 0x22u);
    EXPECT_EQ(e.c_bits, 0x33u);
  }
  EXPECT_EQ(log.events()[0].kind, EventKind::LzaMispredict);
  EXPECT_EQ(log.events()[1].kind, EventKind::MisroundVsIeee);
}

TEST(EventLog, ZeroCapacityCountsButStoresNothing) {
  EventLog log(0);
  log.raise(EventKind::SubnormalFlush);
  log.raise(EventKind::SubnormalFlush);
  EXPECT_EQ(log.raised(), 2u);
  EXPECT_EQ(log.dropped(), 2u);
  EXPECT_TRUE(log.events().empty());
}

// Merging per-shard logs in shard order must behave like one log that saw
// the concatenated stream: totals add, and the ring holds the LAST
// `capacity` events of the combined sequence.
TEST(EventLog, MergePreservesShardOrderAndTrimsFront) {
  EventLog shard1(4), shard2(4);
  for (int i = 0; i < 3; ++i) {
    shard1.begin_op((std::uint64_t)i, 0, 0, 0);
    shard1.raise(EventKind::Cancellation);
  }
  for (int i = 3; i < 6; ++i) {
    shard2.begin_op((std::uint64_t)i, 0, 0, 0);
    shard2.raise(EventKind::ZeroDetectLate);
  }
  EventLog merged(4);
  merged.merge_from(shard1);
  merged.merge_from(shard2);
  EXPECT_EQ(merged.raised(), 6u);
  EXPECT_EQ(merged.dropped(), 2u);
  ASSERT_EQ(merged.events().size(), 4u);
  // ops 0,1 shed from the front; 2 (shard 1) then 3,4,5 (shard 2) remain.
  EXPECT_EQ(merged.events()[0].op, 2u);
  EXPECT_EQ(merged.events()[0].kind, EventKind::Cancellation);
  EXPECT_EQ(merged.events()[1].op, 3u);
  EXPECT_EQ(merged.events()[3].op, 5u);
  EXPECT_EQ(merged.events()[3].kind, EventKind::ZeroDetectLate);
}

TEST(EventLog, ToJsonGolden) {
  EventLog log(2);
  log.begin_op(3, 0x1, 0x2, 0x3);
  log.raise(EventKind::Cancellation, 52);
  EXPECT_EQ(log.to_json(),
            "{\"capacity\":2,\"raised\":1,\"dropped\":0,\"events\":["
            "{\"kind\":\"cancellation\",\"op\":3,"
            "\"a\":\"0x0000000000000001\","
            "\"b\":\"0x0000000000000002\","
            "\"c\":\"0x0000000000000003\",\"detail\":52}]}");
}

TEST(EventLog, ResetClearsEverything) {
  EventLog log(2);
  log.begin_op(1, 9, 9, 9);
  log.raise(EventKind::MisroundVsIeee);
  log.reset();
  EXPECT_EQ(log.raised(), 0u);
  EXPECT_TRUE(log.events().empty());
  log.raise(EventKind::MisroundVsIeee);  // context was cleared too
  EXPECT_EQ(log.events()[0].op, 0u);
  EXPECT_EQ(log.events()[0].a_bits, 0u);
}

TEST(EventLog, KindNamesAreStable) {
  EXPECT_STREQ(to_string(EventKind::MisroundVsIeee), "misround_vs_ieee");
  EXPECT_STREQ(to_string(EventKind::Cancellation), "cancellation");
  EXPECT_STREQ(to_string(EventKind::LzaMispredict), "lza_mispredict");
  EXPECT_STREQ(to_string(EventKind::ZeroDetectLate), "zero_detect_late");
  EXPECT_STREQ(to_string(EventKind::SubnormalFlush), "subnormal_flush");
}

}  // namespace
}  // namespace csfma
