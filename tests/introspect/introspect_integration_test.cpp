// The introspection layer against the real engine and units: event-log
// determinism across thread counts (the contract CI gates on), per-stage
// activity attribution summing exactly to the per-unit totals, and the
// --vcd/--watch re-simulation path.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "energy/workload.hpp"
#include "engine/sim_engine.hpp"
#include "engine/watch.hpp"
#include "introspect/event_log.hpp"

namespace csfma {
namespace {

// The Sec. IV-B recurrence through run_chained, one chain per shard so the
// merge path genuinely reorders work: the merged event log's JSON must be
// byte-identical for 1 and 4 workers, and events must actually fire.
TEST(IntrospectIntegration, ChainedEventLogIsThreadCountInvariant) {
  for (UnitKind kind : {UnitKind::Pcs, UnitKind::Fcs}) {
    auto run = [&](int threads) {
      RecurrenceChainSource src(recurrence_inputs(1001, 12), 40);
      EngineConfig cfg;
      cfg.unit = kind;
      cfg.threads = threads;
      cfg.rm = Round::HalfAwayFromZero;
      cfg.event_capacity = 128;
      cfg.shard_ops = src.ops_per_chain();  // 12 shards
      SimEngine engine(cfg);
      BatchResult r = engine.run_chained(src);
      return std::pair<std::string, std::uint64_t>(r.events.to_json(),
                                                   r.events.raised());
    };
    auto [json1, raised1] = run(1);
    auto [json4, raised4] = run(4);
    EXPECT_EQ(json1, json4) << to_string(kind);
    EXPECT_EQ(raised1, raised4) << to_string(kind);
    EXPECT_GT(raised1, 0u) << to_string(kind)
                           << ": recurrence raised no events";
  }
}

TEST(IntrospectIntegration, BatchEventLogIsThreadCountInvariant) {
  auto run = [](int threads) {
    RandomTripleSource src(2024, 4000, -30, 30);
    EngineConfig cfg;
    cfg.unit = UnitKind::Pcs;
    cfg.threads = threads;
    cfg.event_capacity = 64;
    cfg.shard_ops = 256;
    SimEngine engine(cfg);
    return engine.run_batch(src).events.to_json();
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(IntrospectIntegration, EventsOffByDefaultCostsNothing) {
  RandomTripleSource src(3, 200);
  EngineConfig cfg;
  cfg.unit = UnitKind::Fcs;
  cfg.threads = 2;
  SimEngine engine(cfg);  // event_capacity = 0: no log at all
  BatchResult r = engine.run_batch(src);
  EXPECT_EQ(r.events.raised(), 0u);
  EXPECT_TRUE(r.events.events().empty());
}

// Stages PARTITION the probes: for every architecture, per-stage toggles
// sum exactly to the unit's total, and every probe carries a stage label.
TEST(IntrospectIntegration, StageTogglesSumToUnitTotals) {
  for (UnitKind kind : kAllUnitKinds) {
    RandomTripleSource src(5, 500);
    EngineConfig cfg;
    cfg.unit = kind;
    cfg.threads = 2;
    cfg.shard_ops = 128;
    SimEngine engine(cfg);
    BatchResult r = engine.run_batch(src);
    std::uint64_t sum = 0;
    for (const auto& [stage, st] : r.activity.stage_totals()) {
      EXPECT_FALSE(stage.empty())
          << to_string(kind) << " has an unlabelled probe";
      sum += st.toggles;
    }
    EXPECT_EQ(sum, r.activity.total_toggles()) << to_string(kind);
    EXPECT_GT(sum, 0u) << to_string(kind);
    EXPECT_GE(r.activity.stage_totals().size(), 2u) << to_string(kind);
  }
}

// The ActivityMeasurement face of the same invariant (what table2_energy
// publishes in its stage_activity report section).
TEST(IntrospectIntegration, MeasurementStageTogglesSumToTotal) {
  for (UnitKind kind : kAllUnitKinds) {
    ActivityMeasurement m = measure_chained(kind, 77, 4, 20);
    double stage_sum = 0;
    for (const auto& [stage, t] : m.by_stage) stage_sum += t;
    EXPECT_NEAR(stage_sum, m.toggles_per_op, 1e-9) << to_string(kind);
    EXPECT_GT(m.toggles_per_op, 0.0) << to_string(kind);
  }
}

// run_watched_op re-simulates exactly the stream's op (sources are pure
// functions of the index) and writes a loadable VCD.
TEST(IntrospectIntegration, WatchedOpMatchesDirectSimulation) {
  WatchOptions opts;
  opts.vcd_path = testing::TempDir() + "csfma_watch_test.vcd";
  opts.watch_op = 5;
  opts.unit = UnitKind::Fcs;
  RandomTripleSource src(123, 16);
  const PFloat got = run_watched_op(opts, src, Round::NearestEven);

  OperandTriple t;
  src.fill(5, &t, 1);
  auto unit = make_fma_unit(UnitKind::Fcs);
  EXPECT_TRUE(PFloat::same_value(
      got, unit->fma_ieee(t.a, t.b, t.c, Round::NearestEven)));

  std::ifstream f(opts.vcd_path);
  ASSERT_TRUE(f.good());
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string text = ss.str();
  EXPECT_NE(text.find("$timescale"), std::string::npos);
  EXPECT_NE(text.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(text.find("$var wire"), std::string::npos);
  EXPECT_NE(text.find("op_index"), std::string::npos);
}

// The chained watch re-simulates the containing chain so the watched op
// sees the same native (unrounded) upstream values as the batch run.
TEST(IntrospectIntegration, WatchedChainedOpMatchesEngineReadout) {
  RecurrenceChainSource src(recurrence_inputs(88, 3), 20);
  EngineConfig cfg;
  cfg.unit = UnitKind::Pcs;
  cfg.threads = 1;
  cfg.rm = Round::HalfAwayFromZero;
  SimEngine engine(cfg);
  BatchResult r = engine.run_chained(src);

  WatchOptions opts;
  opts.vcd_path = testing::TempDir() + "csfma_watch_chain_test.vcd";
  opts.unit = UnitKind::Pcs;
  // A late op in chain 1: depends on native results many links back.
  opts.watch_op = src.ops_per_chain() + src.ops_per_chain() - 1;
  const PFloat got =
      run_watched_chained(opts, src, Round::HalfAwayFromZero);
  EXPECT_TRUE(PFloat::same_value(got, r.results[opts.watch_op]));
}

TEST(IntrospectIntegration, ExtractWatchArgsLeavesOtherArgs) {
  std::vector<std::string> args = {"--json", "out.json", "--vcd", "w.vcd",
                                   "--watch", "17", "--unit", "fcs", "pos"};
  WatchOptions opts = extract_watch_args(args);
  EXPECT_TRUE(opts.enabled());
  EXPECT_EQ(opts.vcd_path, "w.vcd");
  EXPECT_EQ(opts.watch_op, 17u);
  EXPECT_TRUE(opts.unit_set);
  EXPECT_EQ(opts.unit, UnitKind::Fcs);
  ASSERT_EQ(args.size(), 3u);
  EXPECT_EQ(args[0], "--json");
  EXPECT_EQ(args[1], "out.json");
  EXPECT_EQ(args[2], "pos");
}

}  // namespace
}  // namespace csfma
