// VcdWriter / SignalTap: golden-file rendering (the determinism the
// docs/observability.md workflow depends on — no date stamp, sorted scopes,
// deduped values), width masking, and the stage-legend bookkeeping.
#include "introspect/vcd.hpp"

#include <gtest/gtest.h>

#include "introspect/signal_tap.hpp"

namespace csfma {
namespace {

// Byte-exact golden render: a 1-bit clock and a scoped 8-bit bus, with a
// deduplicated repeat in the middle.  Any change to the header layout, id
// assignment, scope nesting or value tokens must be intentional enough to
// update this string.
TEST(VcdWriter, GoldenRender) {
  VcdWriter w;
  w.comment("legend");
  const int clk = w.declare("clk", 1);
  const int bus = w.declare("top.alu.bus", 8);
  w.change_u64(clk, 1);
  w.change_u64(bus, 0xA5);
  w.advance_to(1);
  w.change_u64(clk, 0);
  w.change_u64(bus, 0xA5);  // unchanged: must be deduplicated
  w.advance_to(2);
  w.change_u64(bus, 3);

  const std::string golden =
      "$timescale 1ns $end\n"
      "$comment csfma signal-level introspection $end\n"
      "$comment legend $end\n"
      "$var wire 1 ! clk $end\n"
      "$scope module top $end\n"
      "$scope module alu $end\n"
      "$var wire 8 \" bus [7:0] $end\n"
      "$upscope $end\n"
      "$upscope $end\n"
      "$enddefinitions $end\n"
      "$dumpvars\n"
      "x!\n"
      "bx \"\n"
      "$end\n"
      "#0\n"
      "1!\n"
      "b10100101 \"\n"
      "#1\n"
      "0!\n"
      "#2\n"
      "b11 \"\n"
      "#3\n";
  EXPECT_EQ(w.render(), golden);
  // Rendering is a pure function: a second render is byte-identical.
  EXPECT_EQ(w.render(), golden);
}

TEST(VcdWriter, RedeclareReturnsSameSignal) {
  VcdWriter w;
  const int a = w.declare("x.y", 16);
  const int b = w.declare("x.y", 16);
  EXPECT_EQ(a, b);
}

TEST(VcdWriter, ValuesAreMaskedToDeclaredWidth) {
  VcdWriter w;
  const int s = w.declare("narrow", 4);
  w.change_u64(s, 0xFFF5);  // only the low 4 bits are the wire
  const std::string text = w.render();
  EXPECT_NE(text.find("b101 !"), std::string::npos);
  EXPECT_EQ(text.find("b1111111111110101"), std::string::npos);
}

TEST(VcdWriter, IdCodesCoverMoreThan94Signals) {
  VcdWriter w;
  for (int i = 0; i < 100; ++i)
    w.declare("s" + std::to_string(i), 1);
  const std::string text = w.render();
  // Signal 94 rolls over to a two-character id: digits (1, 0) in base 94
  // render as '"' then '!'.
  EXPECT_NE(text.find(" \"! s94 $end"), std::string::npos);
}

// SignalTap golden render: two stages of one watched op, checking the
// prefix scoping, the stage-id legend comments and the cycle axis.
TEST(SignalTap, GoldenRender) {
  SignalTap tap("u");
  tap.begin_op(7);
  tap.begin_stage("mul");
  tap.tap_u64("mul.x", 5, 4);
  tap.begin_stage("add");
  tap.tap_u64("add.y", 0xF, 4);

  const std::string golden =
      "$timescale 1ns $end\n"
      "$comment csfma signal-level introspection $end\n"
      "$comment stage 0 = mul $end\n"
      "$comment stage 1 = add $end\n"
      "$scope module u $end\n"
      "$scope module add $end\n"
      "$var wire 4 $ y [3:0] $end\n"
      "$upscope $end\n"
      "$scope module mul $end\n"
      "$var wire 4 # x [3:0] $end\n"
      "$upscope $end\n"
      "$var wire 64 ! op_index [63:0] $end\n"
      "$var wire 8 \" stage_id [7:0] $end\n"
      "$upscope $end\n"
      "$enddefinitions $end\n"
      "$dumpvars\n"
      "bx $\n"
      "bx #\n"
      "bx !\n"
      "bx \"\n"
      "$end\n"
      "#0\n"
      "b111 !\n"
      "#1\n"
      "b0 \"\n"
      "b101 #\n"
      "#2\n"
      "b1 \"\n"
      "b1111 $\n"
      "#3\n";
  EXPECT_EQ(tap.render(), golden);
}

TEST(SignalTap, StageIdsAreStablePerLabel) {
  SignalTap tap;
  tap.begin_op(0);
  tap.begin_stage("mul");
  tap.begin_stage("add");
  tap.begin_op(1);
  tap.begin_stage("mul");  // reused label: no new legend comment
  const std::string text = tap.render();
  EXPECT_NE(text.find("$comment stage 0 = mul $end"), std::string::npos);
  EXPECT_NE(text.find("$comment stage 1 = add $end"), std::string::npos);
  EXPECT_EQ(text.find("stage 2 ="), std::string::npos);
  EXPECT_EQ(tap.cycle(), 4u);  // op0, mul, add, (idle)op1, mul
}

}  // namespace
}  // namespace csfma
