// Property tests of the rounding-mode semantics across operations —
// parameterized sweep over (operation, mode).
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/rng.hpp"
#include "fp/pfloat.hpp"

namespace csfma {
namespace {

struct ModeCase {
  Round mode;
  const char* name;
};

class RoundingSweep : public ::testing::TestWithParam<ModeCase> {};

PFloat apply(const char* op, const PFloat& a, const PFloat& b, Round rm) {
  if (op == std::string("add")) return PFloat::add(a, b, kBinary64, rm);
  if (op == std::string("sub")) return PFloat::sub(a, b, kBinary64, rm);
  if (op == std::string("mul")) return PFloat::mul(a, b, kBinary64, rm);
  return PFloat::div(a, b, kBinary64, rm);
}

TEST_P(RoundingSweep, ResultBracketsExactValue) {
  // Whatever the mode, the rounded result must be one of the two
  // representable neighbours of the exact value (here: the wide-format
  // result stands in for "exact" — sufficient precision for one op).
  const Round rm = GetParam().mode;
  Rng rng(230 + (int)rm);
  for (const char* op : {"add", "sub", "mul", "div"}) {
    for (int i = 0; i < 8000; ++i) {
      PFloat a = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-50, 50));
      PFloat b = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-50, 50));
      PFloat r = apply(op, a, b, rm);
      PFloat exact = apply(op, a, b, Round::NearestEven);
      if (!r.is_normal() || !exact.is_normal()) continue;
      // |r - nearest| <= 1 ulp and directed modes sit on the correct side.
      double err = PFloat::ulp_error(r, exact, 52);
      ASSERT_LE(err, 1.0) << op;
    }
  }
}

TEST_P(RoundingSweep, DirectedModesAreMonotoneSided) {
  const Round rm = GetParam().mode;
  if (rm != Round::TowardPositive && rm != Round::TowardNegative &&
      rm != Round::TowardZero)
    return;  // only directed modes have a side
  Rng rng(240 + (int)rm);
  for (int i = 0; i < 20000; ++i) {
    PFloat a = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-50, 50));
    PFloat b = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-50, 50));
    // Use a wide-precision product as the exact value.
    PFloat exact = PFloat::mul(a, b, kWideExact, Round::NearestEven);
    PFloat r = PFloat::mul(a, b, kBinary64, rm);
    if (!r.is_normal() || !exact.is_normal()) continue;
    // diff = r - exact, computed wide.
    PFloat diff = PFloat::sub(r, exact, kWideExact, Round::NearestEven);
    if (diff.is_zero()) continue;
    switch (rm) {
      case Round::TowardPositive:
        ASSERT_FALSE(diff.sign()) << "rounded below exact in toward-positive";
        break;
      case Round::TowardNegative:
        ASSERT_TRUE(diff.sign()) << "rounded above exact in toward-negative";
        break;
      case Round::TowardZero:
        // |r| <= |exact|: the (non-zero) difference points toward zero,
        // i.e. has the opposite sign of the exact value.
        ASSERT_EQ(diff.sign(), !exact.sign()) << "magnitude grew";
        break;
      default:
        break;
    }
  }
}

TEST_P(RoundingSweep, NearestModesAgreeExceptTies) {
  const Round rm = GetParam().mode;
  if (rm != Round::HalfAwayFromZero) return;
  Rng rng(250);
  int disagreements = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    PFloat a = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-50, 50));
    PFloat b = PFloat::from_double(kBinary64, rng.next_fp_in_exp_range(-50, 50));
    PFloat ne = PFloat::mul(a, b, kBinary64, Round::NearestEven);
    PFloat ha = PFloat::mul(a, b, kBinary64, Round::HalfAwayFromZero);
    if (!PFloat::same_value(ne, ha)) {
      ++disagreements;
      // A disagreement must be an exact tie: the wide product's bit 53
      // tail is exactly half an ulp.
      PFloat wide = PFloat::mul(a, b, kWideExact, Round::NearestEven);
      PFloat back = wide.round_to(kBinary64, Round::TowardZero);
      // |wide - back| == exactly half an ulp of binary64.
      ASSERT_NEAR(std::fabs(PFloat::ulp_error(wide, back, 52)), 0.5, 1e-12);
    }
  }
  // Ties on random 53x53 products are rare but present over 50k draws...
  // (both outcomes acceptable; the assertion above is the property).
  (void)disagreements;
}

TEST_P(RoundingSweep, HalfAwayTieWitness) {
  if (GetParam().mode != Round::HalfAwayFromZero) return;
  // Construct exact ties deterministically: (1 + 2^-52) * (1 + 2^-53)?
  // Simpler: addition ties  x + 2^-53 at x = 1.
  PFloat one = PFloat::from_double(kBinary64, 1.0);
  PFloat half_ulp = PFloat::from_double(kBinary64, 0x1p-53);
  EXPECT_EQ(PFloat::add(one, half_ulp, kBinary64, Round::HalfAwayFromZero)
                .to_double(),
            1.0 + 0x1p-52);
  EXPECT_EQ(PFloat::add(one, half_ulp, kBinary64, Round::NearestEven)
                .to_double(),
            1.0);
  // Negative side mirrors.
  EXPECT_EQ(PFloat::add(one.negated(), half_ulp.negated(), kBinary64,
                        Round::HalfAwayFromZero)
                .to_double(),
            -(1.0 + 0x1p-52));
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, RoundingSweep,
    ::testing::Values(ModeCase{Round::NearestEven, "ne"},
                      ModeCase{Round::HalfAwayFromZero, "hafz"},
                      ModeCase{Round::TowardZero, "tz"},
                      ModeCase{Round::TowardPositive, "tp"},
                      ModeCase{Round::TowardNegative, "tn"}),
    [](const ::testing::TestParamInfo<ModeCase>& i) { return i.param.name; });

}  // namespace
}  // namespace csfma
