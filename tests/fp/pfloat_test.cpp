// Structural and semantic tests of the parametric softfloat.
#include "fp/pfloat.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace csfma {
namespace {

TEST(FloatFormat, DerivedParameters) {
  EXPECT_EQ(kBinary64.bias(), 1023);
  EXPECT_EQ(kBinary64.emin(), -1022);
  EXPECT_EQ(kBinary64.emax(), 1023);
  EXPECT_EQ(kBinary64.precision(), 53);
  EXPECT_EQ(kBinary64.total_bits(), 64);
  EXPECT_EQ(kBinary68.total_bits(), 68);
  EXPECT_EQ(kBinary75.total_bits(), 75);
}

TEST(PFloat, DoubleRoundTripExact) {
  Rng rng(11);
  for (int i = 0; i < 50000; ++i) {
    double d = rng.next_fp_in_exp_range(-1022, 1023);
    PFloat f = PFloat::from_double(kBinary64, d);
    EXPECT_EQ(f.to_double(), d);
  }
}

TEST(PFloat, WiderFormatsRepresentDoublesExactly) {
  Rng rng(12);
  for (const auto& fmt : {kBinary68, kBinary75}) {
    for (int i = 0; i < 20000; ++i) {
      double d = rng.next_fp_in_exp_range(-1000, 1000);
      PFloat f = PFloat::from_double(fmt, d);
      EXPECT_EQ(f.to_double(), d);
    }
  }
}

TEST(PFloat, SubnormalsFlushToZero) {
  double sub = 0x1p-1060;  // subnormal in binary64
  ASSERT_NE(sub, 0.0);
  PFloat f = PFloat::from_double(kBinary64, sub);
  EXPECT_TRUE(f.is_zero());
  // A multiply whose result falls below emin flushes too.
  PFloat a = PFloat::from_double(kBinary64, 0x1p-600);
  PFloat r = PFloat::mul(a, a, kBinary64, Round::NearestEven);
  EXPECT_TRUE(r.is_zero());
}

TEST(PFloat, PackedBitsMatchHostLayout) {
  Rng rng(13);
  for (int i = 0; i < 20000; ++i) {
    double d = rng.next_fp_in_exp_range(-1022, 1023);
    PFloat f = PFloat::from_double(kBinary64, d);
    std::uint64_t host;
    __builtin_memcpy(&host, &d, 8);
    EXPECT_EQ(f.to_bits().lo64(), host);
    EXPECT_EQ(f.to_bits().word(1), 0u);
    PFloat back = PFloat::from_bits(kBinary64, f.to_bits());
    EXPECT_TRUE(PFloat::same_value(f, back));
  }
}

TEST(PFloat, BitsRoundTripWideFormats) {
  Rng rng(14);
  for (const auto& fmt : {kBinary68, kBinary75}) {
    for (int i = 0; i < 5000; ++i) {
      double d = rng.next_fp_in_exp_range(-900, 900);
      PFloat f = PFloat::from_double(fmt, d);
      PFloat back = PFloat::from_bits(fmt, f.to_bits());
      EXPECT_TRUE(PFloat::same_value(f, back)) << f.to_string();
    }
  }
}

TEST(PFloat, SpecialValuePropagation) {
  const auto& F = kBinary64;
  PFloat one = PFloat::from_double(F, 1.0);
  PFloat pinf = PFloat::inf(F, false), ninf = PFloat::inf(F, true);
  PFloat qnan = PFloat::nan(F);
  PFloat pz = PFloat::zero(F, false);

  EXPECT_TRUE(PFloat::add(pinf, ninf, F, Round::NearestEven).is_nan());
  EXPECT_TRUE(PFloat::add(pinf, one, F, Round::NearestEven).is_inf());
  EXPECT_TRUE(PFloat::mul(pinf, pz, F, Round::NearestEven).is_nan());
  EXPECT_TRUE(PFloat::mul(ninf, one, F, Round::NearestEven).is_inf());
  EXPECT_TRUE(PFloat::mul(ninf, one, F, Round::NearestEven).sign());
  EXPECT_TRUE(PFloat::div(one, pz, F, Round::NearestEven).is_inf());
  EXPECT_TRUE(PFloat::div(pz, pz, F, Round::NearestEven).is_nan());
  EXPECT_TRUE(PFloat::add(qnan, one, F, Round::NearestEven).is_nan());
  EXPECT_TRUE(PFloat::fma(pinf, pz, one, F, Round::NearestEven).is_nan());
  EXPECT_TRUE(PFloat::fma(pinf, one, ninf, F, Round::NearestEven).is_nan());
  EXPECT_TRUE(PFloat::fma(one, one, pinf, F, Round::NearestEven).is_inf());
}

TEST(PFloat, SignedZeroRules) {
  const auto& F = kBinary64;
  PFloat pz = PFloat::zero(F, false), nz = PFloat::zero(F, true);
  EXPECT_FALSE(PFloat::add(pz, nz, F, Round::NearestEven).sign());
  EXPECT_TRUE(PFloat::add(pz, nz, F, Round::TowardNegative).sign());
  EXPECT_TRUE(PFloat::add(nz, nz, F, Round::NearestEven).sign());
  // x + (-x) is +0 except toward-negative.
  PFloat x = PFloat::from_double(F, 1.5);
  EXPECT_FALSE(PFloat::add(x, x.negated(), F, Round::NearestEven).sign());
  EXPECT_TRUE(PFloat::add(x, x.negated(), F, Round::TowardNegative).sign());
}

TEST(PFloat, HalfAwayFromZeroTies) {
  const auto& F = kBinary64;
  // 1 + 2^-53 is an exact tie between 1 and 1+2^-52.
  PFloat one = PFloat::from_double(F, 1.0);
  PFloat tie = PFloat::from_double(F, 0x1p-53);
  PFloat up = PFloat::add(one, tie, F, Round::HalfAwayFromZero);
  EXPECT_EQ(up.to_double(), 1.0 + 0x1p-52);
  // Nearest-even resolves the same tie downward (even significand).
  PFloat even = PFloat::add(one, tie, F, Round::NearestEven);
  EXPECT_EQ(even.to_double(), 1.0);
  // Negative side: ties go away from zero, i.e. more negative.
  PFloat down = PFloat::add(one.negated(), tie.negated(), F, Round::HalfAwayFromZero);
  EXPECT_EQ(down.to_double(), -(1.0 + 0x1p-52));
}

TEST(PFloat, DirectedOverflowSaturation) {
  const auto& F = kBinary64;
  PFloat big = PFloat::from_double(F, 0x1.fffffffffffffp1023);
  PFloat two = PFloat::from_double(F, 2.0);
  EXPECT_TRUE(PFloat::mul(big, two, F, Round::NearestEven).is_inf());
  PFloat tz = PFloat::mul(big, two, F, Round::TowardZero);
  EXPECT_TRUE(tz.is_normal());
  EXPECT_EQ(tz.to_double(), 0x1.fffffffffffffp1023);
  // Toward-positive: positive overflow goes to +inf, negative to -maxfinite.
  EXPECT_TRUE(PFloat::mul(big, two, F, Round::TowardPositive).is_inf());
  PFloat neg = PFloat::mul(big.negated(), two, F, Round::TowardPositive);
  EXPECT_TRUE(neg.is_normal());
  EXPECT_EQ(neg.to_double(), -0x1.fffffffffffffp1023);
}

TEST(PFloat, ExactCancellation) {
  const auto& F = kBinary64;
  Rng rng(15);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.next_fp_in_exp_range(-100, 100);
    PFloat x = PFloat::from_double(F, d);
    PFloat r = PFloat::sub(x, x, F, Round::NearestEven);
    EXPECT_TRUE(r.is_zero());
    EXPECT_FALSE(r.sign());
  }
}

TEST(PFloat, MixedFormatArithmetic) {
  // A 75b value + a 64b value rounded into 68b: exact small case.
  PFloat a = PFloat::from_double(kBinary75, 1.0);
  PFloat b = PFloat::from_double(kBinary64, 3.0);
  PFloat s = PFloat::add(a, b, kBinary68, Round::NearestEven);
  EXPECT_EQ(s.to_double(), 4.0);
  PFloat p = PFloat::mul(a, b, kBinary75, Round::NearestEven);
  EXPECT_EQ(p.to_double(), 3.0);
}

TEST(PFloat, WiderIsMoreAccurate) {
  // (1 + 2^-60) is not representable in binary64 but is in binary75.
  PFloat one64 = PFloat::from_double(kBinary64, 1.0);
  PFloat tiny = PFloat::from_double(kBinary64, 0x1p-60);
  PFloat s64 = PFloat::add(one64, tiny, kBinary64, Round::NearestEven);
  EXPECT_EQ(s64.to_double(), 1.0);  // absorbed
  PFloat s75 = PFloat::add(one64, tiny, kBinary75, Round::NearestEven);
  EXPECT_TRUE(s75.is_normal());
  EXPECT_GT(PFloat::ulp_error(s75, one64, 52), 0.0);  // it kept the tail
}

TEST(PFloat, FmaSingleRoundingBeatsMulAdd) {
  // Classic witness: fma(c, c, -round(c*c)) recovers the exact rounding
  // error of the square; a mul-then-add pipeline returns 0.
  const auto& F = kBinary64;
  const double cd = 1.0 + 0x1p-30;
  PFloat c = PFloat::from_double(F, cd);
  PFloat sq = PFloat::mul(c, c, F, Round::NearestEven);
  EXPECT_EQ(sq.to_double(), cd * cd);
  PFloat fused = PFloat::fma(c, c, sq.negated(), F, Round::NearestEven);
  const double expect = std::fma(cd, cd, -(cd * cd));
  ASSERT_NE(expect, 0.0);  // the witness really has a rounding tail
  EXPECT_EQ(fused.to_double(), expect);
  PFloat split = PFloat::add(sq, sq.negated(), F, Round::NearestEven);
  EXPECT_TRUE(split.is_zero());  // double rounding loses the tail entirely
}

TEST(PFloat, UlpErrorMetric) {
  const auto& F = kBinary64;
  PFloat one = PFloat::from_double(F, 1.0);
  PFloat oneplus = PFloat::from_double(F, 1.0 + 0x1p-52);
  EXPECT_DOUBLE_EQ(PFloat::ulp_error(oneplus, one, 52), 1.0);
  EXPECT_DOUBLE_EQ(PFloat::ulp_error(one, one, 52), 0.0);
  // Scale invariance: same relative gap at a different exponent.
  PFloat big = PFloat::from_double(F, 0x1p300);
  PFloat bigplus = PFloat::from_double(F, 0x1p300 * (1.0 + 0x1p-52));
  EXPECT_DOUBLE_EQ(PFloat::ulp_error(bigplus, big, 52), 1.0);
}

TEST(PFloat, DivisionBasics) {
  const auto& F = kBinary64;
  Rng rng(16);
  for (int i = 0; i < 20000; ++i) {
    double a = rng.next_fp_in_exp_range(-300, 300);
    double b = rng.next_fp_in_exp_range(-300, 300);
    PFloat q = PFloat::div(PFloat::from_double(F, a), PFloat::from_double(F, b),
                           F, Round::NearestEven);
    EXPECT_EQ(q.to_double(), a / b) << a << " / " << b;
  }
}

TEST(PFloat, RoundToNarrower) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.next_fp_in_exp_range(-500, 500);
    PFloat wide = PFloat::from_double(kBinary75, d);
    PFloat narrow = wide.round_to(kBinary64, Round::NearestEven);
    EXPECT_EQ(narrow.to_double(), d);
  }
}

TEST(PFloat, NormalizeRoundRejectsAmbiguousSticky) {
  // A sticky flag with an under-precise magnitude must be refused, not
  // silently misrounded.
  EXPECT_THROW(PFloat::normalize_round(kBinary64, false, WideUint<8>(3), 0,
                                       /*sticky=*/true, Round::NearestEven),
               CheckError);
}

}  // namespace
}  // namespace csfma
