// Cross-checks the softfloat against the host FPU — an oracle that is
// completely independent of our implementation.  Operand exponents are
// constrained so results stay clear of the subnormal range (we flush
// subnormals; the host does not) and of overflow.
#include <gtest/gtest.h>

#include <cfenv>
#include <cmath>
#include <tuple>

#include "common/rng.hpp"
#include "fp/pfloat.hpp"

namespace csfma {
namespace {

struct OpCase {
  const char* name;
  int emin, emax;
};

class HostOracle : public ::testing::TestWithParam<OpCase> {};

double host_op(const char* op, double a, double b, double c) {
  if (op == std::string("add")) return a + b;
  if (op == std::string("sub")) return a - b;
  if (op == std::string("mul")) return a * b;
  if (op == std::string("div")) return a / b;
  return std::fma(a, b, c);
}

PFloat soft_op(const char* op, double a, double b, double c, Round rm) {
  const auto& F = kBinary64;
  PFloat fa = PFloat::from_double(F, a), fb = PFloat::from_double(F, b),
         fc = PFloat::from_double(F, c);
  if (op == std::string("add")) return PFloat::add(fa, fb, F, rm);
  if (op == std::string("sub")) return PFloat::sub(fa, fb, F, rm);
  if (op == std::string("mul")) return PFloat::mul(fa, fb, F, rm);
  if (op == std::string("div")) return PFloat::div(fa, fb, F, rm);
  return PFloat::fma(fa, fb, fc, F, rm);
}

TEST_P(HostOracle, MatchesRoundNearestEven) {
  const OpCase& tc = GetParam();
  Rng rng(100 + tc.emin);
  for (const char* op : {"add", "sub", "mul", "div", "fma"}) {
    for (int i = 0; i < 30000; ++i) {
      double a = rng.next_fp_in_exp_range(tc.emin, tc.emax);
      double b = rng.next_fp_in_exp_range(tc.emin, tc.emax);
      double c = rng.next_fp_in_exp_range(tc.emin, tc.emax);
      double ref = host_op(op, a, b, c);
      if (!std::isnormal(ref) && ref != 0.0) continue;  // subnormal/overflow
      double got = soft_op(op, a, b, c, Round::NearestEven).to_double();
      ASSERT_EQ(got, ref) << op << "(" << a << ", " << b << ", " << c << ")";
    }
  }
}

TEST_P(HostOracle, MatchesDirectedModes) {
  const OpCase& tc = GetParam();
  Rng rng(200 + tc.emax);
  const std::pair<Round, int> modes[] = {
      {Round::TowardZero, FE_TOWARDZERO},
      {Round::TowardPositive, FE_UPWARD},
      {Round::TowardNegative, FE_DOWNWARD},
  };
  for (auto [rm, fe] : modes) {
    ASSERT_EQ(std::fesetround(fe), 0);
    for (const char* op : {"add", "sub", "mul", "div"}) {
      for (int i = 0; i < 8000; ++i) {
        double a = rng.next_fp_in_exp_range(tc.emin, tc.emax);
        double b = rng.next_fp_in_exp_range(tc.emin, tc.emax);
        // volatile stops constant folding at compile-time rounding.
        volatile double va = a, vb = b;
        double ref;
        if (op == std::string("add")) ref = va + vb;
        else if (op == std::string("sub")) ref = va - vb;
        else if (op == std::string("mul")) ref = va * vb;
        else ref = va / vb;
        if (!std::isnormal(ref) && ref != 0.0) continue;
        double got = soft_op(op, a, b, 0.0, rm).to_double();
        ASSERT_EQ(got, ref) << op << "(" << a << ", " << b << ") mode "
                            << to_string(rm);
      }
    }
    std::fesetround(FE_TONEAREST);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ExponentRanges, HostOracle,
    ::testing::Values(OpCase{"narrow", -4, 4}, OpCase{"mid", -60, 60},
                      OpCase{"wide", -400, 400},
                      OpCase{"near_one", -1, 1}),
    [](const ::testing::TestParamInfo<OpCase>& info) { return info.param.name; });

}  // namespace
}  // namespace csfma
