// Energy model: calibration math, activity measurement, Table II shape.
#include "energy/energy_model.hpp"

#include <gtest/gtest.h>

#include "energy/workload.hpp"
#include "fpga/architectures.hpp"

namespace csfma {
namespace {

TEST(EnergyModel, CalibrationSolvesAnchors) {
  EnergyCoefficients k = calibrate(60.0, 1200, 0.54, 1200.0, 5800, 2.67);
  EXPECT_NEAR(energy_per_op_nj(k, 60.0, 1200), 0.54, 1e-9);
  EXPECT_NEAR(energy_per_op_nj(k, 1200.0, 5800), 2.67, 1e-9);
  EXPECT_GT(k.alpha_nj_per_toggle, 0.0);
  EXPECT_GT(k.beta_nj_per_lut, 0.0);
}

TEST(EnergyModel, DegenerateAnchorsRejected) {
  EXPECT_THROW(calibrate(100.0, 1000, 0.5, 200.0, 2000, 1.0), CheckError);
}

TEST(EnergyModel, CsPlanesToggleMoreThanIeeeBuses) {
  // The paper's XPower observation: "most of the energy was drawn in the
  // large CSA trees of multiplication and addition" — the carry-save
  // datapaths must show far more switching than re-normalized IEEE buses.
  auto disc = measure_discrete(1, 4, 30);
  auto pcs = measure_pcs(1, 4, 30);
  auto fcs = measure_fcs(1, 4, 30);
  EXPECT_GT(pcs.toggles_per_op, 4.0 * disc.toggles_per_op);
  EXPECT_GT(fcs.toggles_per_op, 4.0 * disc.toggles_per_op);
}

TEST(EnergyModel, ClassicFusedBetweenDiscreteAndCs) {
  auto disc = measure_discrete(2, 4, 30);
  auto classic = measure_classic(2, 4, 30);
  auto pcs = measure_pcs(2, 4, 30);
  EXPECT_GT(classic.toggles_per_op, disc.toggles_per_op);
  EXPECT_LT(classic.toggles_per_op, pcs.toggles_per_op);
}

TEST(EnergyModel, Table2Shape) {
  // Calibrate on the Xilinx and PCS anchors, then check the paper's
  // headline: the P/FCS units cost ~4-5x the discrete pair, and FCS is
  // cheaper than PCS.
  auto disc = measure_discrete(3, 6, 40);
  auto classic = measure_classic(3, 6, 40);
  auto pcs = measure_pcs(3, 6, 40);
  auto fcs = measure_fcs(3, 6, 40);
  auto t = table1_reports(virtex6(), 200.0);
  auto luts = [&t](const std::string& n) {
    for (const auto& r : t)
      if (r.arch == n) return r.luts;
    return 0;
  };
  EnergyCoefficients k =
      calibrate(disc.toggles_per_op, luts("Xilinx CoreGen"), 0.54,
                pcs.toggles_per_op, luts("PCS-FMA"), 2.67);
  double e_flopoco =
      energy_per_op_nj(k, classic.toggles_per_op, luts("FloPoCo FPPipeline"));
  double e_fcs = energy_per_op_nj(k, fcs.toggles_per_op, luts("FCS-FMA"));
  // Predictions vs Table II: FloPoCo 0.74, FCS 2.36 — hold to +-35%.
  EXPECT_NEAR(e_flopoco, 0.74, 0.74 * 0.35);
  EXPECT_NEAR(e_fcs, 2.36, 2.36 * 0.35);
  // Ordering and ratios.
  EXPECT_LT(e_fcs, 2.67);
  EXPECT_GT(e_fcs / 0.54, 3.0);
  EXPECT_LT(e_fcs / 0.54, 7.0);
}

TEST(EnergyModel, MeasurementsAreDeterministic) {
  auto a = measure_pcs(7, 2, 20);
  auto b = measure_pcs(7, 2, 20);
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_DOUBLE_EQ(a.toggles_per_op, b.toggles_per_op);
}

}  // namespace
}  // namespace csfma
