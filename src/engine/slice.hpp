// Bit-sliced (SoA) batch execution layer for the simulation hot path.
//
// The scalar simulators walk one operation at a time through wide-word
// datapath values (WideUint planes).  This layer transposes a batch of up
// to 64 operations into *bit-plane* form — planes[b] is a machine word
// whose bit L holds bit b of lane L's value — so that one pass over the
// planes evaluates a datapath stage for every lane at once: a 3:2
// compressor becomes three XOR/AND word ops per bit position instead of
// per operation, the carry-save group reduction becomes a plane-form
// ripple adder, and zero-detect / leading-sign-run become word-parallel
// predicate scans.  This is the same word-level parallelism the paper's
// CS-form datapaths exploit in hardware (all 385 adder columns switch in
// one cycle), applied to the software model across the *batch* dimension;
// the wide-word vectorized-FP idiom follows "Fast Arbitrary Precision
// Floating Point on FPGA" (PAPERS.md).
//
// Contract: every kernel here is bit-exact with its scalar counterpart in
// src/cs applied lane-by-lane — the equivalence the engine's
// backend=scalar|sliced knob and the CI backend-equivalence gate enforce.
// Toggle accounting moves to ActivityProbe::observe_planes(), which is
// popcount-exact with per-lane observe() calls (see common/activity.hpp).
//
// Layout conventions:
//   * lanes are bits 0..63 of each plane word; a batch of n < 64 lanes
//     leaves lanes n..63 zero (callers mask per-lane outputs by n);
//   * plane arrays are indexed by bit position [0, width); callers own the
//     storage (stack arrays or arenas), kernels never allocate;
//   * lane-major inputs are little-endian word arrays with a fixed stride
//     (WideUint<W>::data() exposes exactly this layout).
#pragma once

#include <cstdint>

#include "cs/cs_num.hpp"

namespace csfma::slice {

/// Lanes per plane word — one operation per bit of a machine word.
inline constexpr int kLanes = 64;

/// In-place transpose of a 64x64 bit matrix held as 64 row words, where
/// element (r, c) is bit c of m[r].  Involution: applying it twice is the
/// identity; pack and unpack are the same word operation.
void transpose64(std::uint64_t m[kLanes]);

/// Pack `n` lane-major values (little-endian word arrays of `stride_words`
/// words each, lanes contiguous) into bit-plane form: on return,
/// planes[b] bit L = bit b of lanes[L*stride_words ...] for b in
/// [0, width_bits).  Lanes n..63 of every plane are zero.
void pack_words(const std::uint64_t* lanes, int stride_words, int n,
                int width_bits, std::uint64_t* planes);

/// Inverse of pack_words: scatter plane bits back to `n` lane-major word
/// arrays.  Words beyond ceil(width_bits/64) of each lane are untouched.
void unpack_words(const std::uint64_t* planes, int width_bits, int n,
                  std::uint64_t* lanes, int stride_words);

/// CsWord-array conveniences for the datapath simulators.
void pack(const CsWord* vals, int n, int width_bits, std::uint64_t* planes);
void unpack(const std::uint64_t* planes, int width_bits, int n, CsWord* vals);

// ---- bit-parallel kernels ------------------------------------------------
//
// Each kernel evaluates its scalar namesake for all 64 lanes per word op.
// Input and output plane arrays may not alias unless noted.

/// 3:2 compression within a `width`-bit window (cs/cs_num.hpp compress3):
/// out_s = a ^ b ^ c per plane, out_c = majority shifted up one bit
/// position with the MSB majority dropped (mod-2^width semantics).
/// out_s may alias a; out_c may not alias any input.
void compress3(int width, const std::uint64_t* a, const std::uint64_t* b,
               const std::uint64_t* c, std::uint64_t* out_s,
               std::uint64_t* out_c);

/// Partial carry-save group reduction (cs/pcs.hpp carry_reduce): per
/// `group`-bit segment, assimilate sum+carry planes with a plane-form
/// ripple adder; the segment carry-out lands at the base of the next
/// segment in out_c (dropped past `width`).  No aliasing.
void carry_reduce(int width, int group, const std::uint64_t* s,
                  const std::uint64_t* c, std::uint64_t* out_s,
                  std::uint64_t* out_c);

/// Full-width assimilation: out[b] holds bit b of (S + C) mod 2^width per
/// lane — the plane form of CsNum::to_binary().  No aliasing.
void assimilate(int width, const std::uint64_t* s, const std::uint64_t* c,
                std::uint64_t* out);

/// Zero-detect block skipping (cs/zero_detect.hpp count_skippable_blocks)
/// for all lanes: alive_after[k] bit L is set iff lane L skips more than k
/// leading `block`-digit blocks, for k in [0, max_skip) — i.e. lane L's
/// skip count is the number of set alive_after bits.  Requires
/// 2 <= block <= 63, width % block == 0 and max_skip <= width/block - 1
/// (same preconditions as the scalar routine, which CSFMA_CHECKs them).
void count_skippable_blocks(int width, int block, int max_skip,
                            const std::uint64_t* s, const std::uint64_t* c,
                            std::uint64_t* alive_after);

/// Exact leading-sign-run (cs/lza.hpp leading_sign_run) of assimilated
/// binary planes: run[L] = number of bits below the MSB equal to lane L's
/// sign bit, capped at width-1.  Only lanes [0, n) are written.
void leading_sign_run(int width, const std::uint64_t* bin, int n,
                      std::uint16_t* run);

/// Behavioural LZA (cs/lza.hpp lza_estimate) across lanes: est[L] is the
/// anticipated (lower-bound) leading sign run of lane L's CS value, with
/// the same carry-hits-boundary error signature as the scalar model.
/// Uses `scratch`, a caller-provided plane array of at least 2*width
/// words.  Only lanes [0, n) are written.
void lza_estimate(int width, const std::uint64_t* s, const std::uint64_t* c,
                  int n, std::uint16_t* est, std::uint64_t* scratch);

}  // namespace csfma::slice
