// Multi-threaded batch simulation engine.
//
// All statistical experiments (Fig 14 accuracy sweeps, Table II switching
// activity, the operand fuzzers) amount to pushing large streams of operand
// triples R = A + B*C through a bit-accurate unit simulator.  SimEngine is
// the one driver for that: it takes an operand stream (in-memory vector or
// generated workload), selects a unit through the FmaUnit factory, shards
// the stream across worker threads and merges per-shard switching activity
// deterministically at the end.
//
// Determinism model: the stream is cut into LOGICAL shards of a fixed size
// (EngineConfig::shard_ops) that depends only on the data, never on the
// thread count.  Each shard is simulated by exactly one worker with its own
// unit instance and its own ActivityRecorder; workers claim shards from an
// atomic queue.  Because every operation is value-independent of its
// neighbours and every shard's activity capture starts from a fresh
// baseline, results are bit-identical and merged toggle totals are EQUAL
// for any thread count, including 1.  (A probe only counts transitions
// between consecutive operations of the same shard; transitions across a
// shard seam are never counted, in any configuration.)
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "common/activity.hpp"
#include "fma/fma_unit.hpp"
#include "introspect/event_log.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/perf.hpp"
#include "telemetry/trace.hpp"

namespace csfma {

/// ops/seconds with degenerate-run guards: empty streams and zero or
/// non-finite durations report a rate of 0 instead of NaN/inf, so rates
/// are always safe to embed in reports.
inline double safe_rate(std::uint64_t ops, double seconds) {
  if (ops == 0 || !std::isfinite(seconds) || seconds <= 0.0) return 0.0;
  return (double)ops / seconds;
}

// OperandTriple lives in fma/fma_unit.hpp (included above) so unit batch
// entry points can consume operand arrays without depending on the engine.

/// Execution backend for the batch hot path.  Sliced hands each shard to
/// FmaUnit::fma_ieee_batch, which units with bit-sliced kernels
/// (engine/slice.hpp) override; Scalar forces the per-operation reference
/// loop.  Results, activity totals and event logs are bit-identical
/// between the two for any thread count — the CI backend-equivalence gate
/// byte-compares them.
enum class EngineBackend {
  Scalar,  // reference oracle: one operation at a time
  Sliced,  // bit-sliced batch kernels where the unit provides them
};

const char* to_string(EngineBackend backend);
/// Parse "scalar" / "sliced" into *out; returns false on anything else.
bool parse_engine_backend(std::string_view s, EngineBackend* out);

/// An indexable operand stream.  fill() must be a pure function of the
/// requested index range — it is called concurrently from worker threads
/// and must hand out the same triples for the same indices regardless of
/// how the range is chunked.
class OperandSource {
 public:
  virtual ~OperandSource() = default;
  /// Total number of triples in the stream.
  virtual std::uint64_t size() const = 0;
  /// Fill out[0..n) with triples [start, start+n).
  virtual void fill(std::uint64_t start, OperandTriple* out,
                    std::size_t n) const = 0;
};

/// View over an in-memory vector (not owned; must outlive the source).
class VectorSource final : public OperandSource {
 public:
  explicit VectorSource(const std::vector<OperandTriple>& ops) : ops_(&ops) {}
  std::uint64_t size() const override { return ops_->size(); }
  void fill(std::uint64_t start, OperandTriple* out,
            std::size_t n) const override;

 private:
  const std::vector<OperandTriple>* ops_;
};

/// Seeded random triples: triple i is a pure function of (seed, i), with
/// exponents uniform in [emin, emax] (the micro_units operand model).
class RandomTripleSource final : public OperandSource {
 public:
  RandomTripleSource(std::uint64_t seed, std::uint64_t n, int emin = -8,
                     int emax = 8)
      : seed_(seed), n_(n), emin_(emin), emax_(emax) {}
  std::uint64_t size() const override { return n_; }
  void fill(std::uint64_t start, OperandTriple* out,
            std::size_t n) const override;

 private:
  std::uint64_t seed_, n_;
  int emin_, emax_;
};

/// One chained work item: R = A + B*C where A and/or C may be the NATIVE
/// result of an earlier operation in the SAME chain instead of a fresh
/// IEEE input — deferred rounding data travels with the value between
/// operations, exactly the paper's Sec. IV-B recurrence wiring.
struct ChainedOp {
  PFloat a, b, c;  // IEEE inputs; a (resp. c) is ignored when its ref >= 0
  /// Index, within the chain, of the earlier operation whose native result
  /// feeds the A (resp. C) input; -1 = use the IEEE value above.  Must be
  /// strictly less than this operation's own index.
  std::int64_t a_ref = -1;
  std::int64_t c_ref = -1;
};

/// A stream of independent fixed-length operation chains.  fill_chain()
/// must be a pure function of the chain index — it is called concurrently
/// from worker threads.
class ChainSource {
 public:
  virtual ~ChainSource() = default;
  /// Number of independent chains.
  virtual std::uint64_t chains() const = 0;
  /// Operations per chain (every chain has the same length).
  virtual std::uint64_t ops_per_chain() const = 0;
  /// Fill out[0..ops_per_chain()) with chain `chain`'s operations.
  virtual void fill_chain(std::uint64_t chain, ChainedOp* out) const = 0;
};

/// Heartbeat snapshot for long runs, handed to EngineConfig::progress.
/// ops_per_sec and eta_seconds use safe_rate-style guards: they are 0
/// until enough has happened to divide by.
struct EngineProgress {
  std::uint64_t ops_done = 0;
  std::uint64_t ops_total = 0;
  std::uint64_t shards_done = 0;
  std::uint64_t shards_total = 0;
  double seconds = 0.0;      // elapsed wall clock
  double ops_per_sec = 0.0;  // ops_done / seconds
  double eta_seconds = 0.0;  // remaining ops at the current rate
};
using ProgressFn = std::function<void(const EngineProgress&)>;

struct EngineConfig {
  UnitKind unit = UnitKind::Pcs;
  /// Worker threads; 0 = std::thread::hardware_concurrency().  Requests
  /// above the host's hardware concurrency are CLAMPED to it: the workers
  /// are pure compute, so oversubscription only adds context-switch
  /// overhead and can push a parallel run below the single-thread rate.
  /// SimEngine::threads_clamped() reports when the clamp engaged (results
  /// are thread-count invariant either way).
  int threads = 0;
  /// Hot-path execution backend (see EngineBackend).  Sliced is the
  /// default; Scalar is the reference oracle the equivalence gate runs.
  EngineBackend backend = EngineBackend::Sliced;
  /// Final (deferred) rounding of each operation's CS->IEEE readout.
  Round rm = Round::NearestEven;
  /// Logical shard size in operations.  Fixed per-data granularity — NOT
  /// derived from the thread count — so activity totals are reproducible
  /// across machines and thread counts.
  std::uint64_t shard_ops = 8192;
  /// Optional telemetry sinks (not owned; must outlive the run).  When
  /// null the engine's only telemetry cost is a pointer test per shard.
  /// Metrics: engine.ops / engine.shards counters and an engine.shard.ops
  /// histogram (all Deterministic — thread-count invariant), plus
  /// engine.shard.seconds / engine.consume_wait.seconds histograms and
  /// engine.worker.<w>.utilization gauges (Timing).  Trace: per-shard
  /// claim/fill/simulate/consume spans on the worker's lane and a final
  /// merge span.
  MetricsRegistry* metrics = nullptr;
  TraceSession* trace = nullptr;
  /// Host-performance profiler (telemetry/perf.hpp; not owned).  Each
  /// shard records engine.fill / engine.simulate / engine.consume scopes
  /// into its own per-shard profiler; the shards merge IN SHARD ORDER
  /// into this one after the join (plus an engine.merge scope), so the
  /// scope-name structure and the calls/items counts are thread-count
  /// invariant even though the timings are not.
  HostProfiler* profiler = nullptr;
  /// Progress heartbeat for multi-minute runs: invoked (serialized, never
  /// concurrently) after a shard completes when at least
  /// progress_interval_s elapsed since the previous beat, and once more
  /// at 100% before the run returns.  Null = silent (no clock cost).
  ProgressFn progress;
  double progress_interval_s = 0.5;
  /// Capacity of the numerical event log (introspect/event_log.hpp);
  /// 0 disables it entirely (no begin_op/raise cost in the unit).  Each
  /// shard records into its own log; the logs merge IN SHARD ORDER, so the
  /// merged sequence — and its to_json() — is byte-identical for any
  /// thread count.
  std::size_t event_capacity = 0;
  /// Cooperative cancellation flag (not owned; must outlive the run).
  /// Checked at SHARD CLAIM boundaries only: a worker finishes the shard it
  /// is simulating, then stops claiming new ones, so an aborted run still
  /// joins cleanly and the flag costs one relaxed load per shard.  When the
  /// flag stopped any shard from running, the run's stats report
  /// `aborted = true` and the partial results/activity/events MUST be
  /// discarded by the caller — the set of completed shards depends on
  /// scheduling, so partial output is the one thing the engine cannot make
  /// deterministic (src/service drops it; see docs/service.md).
  const std::atomic<bool>* abort = nullptr;
};

struct ShardStats {
  std::uint64_t start = 0;  // index of the shard's first operation
  std::uint64_t ops = 0;
  int worker = 0;        // worker thread that simulated the shard
  double seconds = 0.0;  // simulation time of this shard
  double ops_per_sec = 0.0;
};

struct BatchStats {
  std::uint64_t ops = 0;
  double seconds = 0.0;  // wall clock over the whole run
  double ops_per_sec = 0.0;
  /// True when EngineConfig::abort stopped at least one shard from being
  /// simulated.  Results, activity and events are then PARTIAL and
  /// scheduling-dependent; callers must not emit or cache them.
  bool aborted = false;
  /// Operations actually simulated (== ops unless aborted).
  std::uint64_t ops_done = 0;
  std::vector<ShardStats> shards;  // in shard order
};

struct BatchResult {
  /// results[i] is the IEEE readout of triple i.
  std::vector<PFloat> results;
  /// Per-shard recorders merged in shard order.
  ActivityRecorder activity;
  /// Per-shard event logs merged in shard order (empty unless
  /// EngineConfig::event_capacity > 0).
  EventLog events{0};
  BatchStats stats;
};

struct StreamResult {
  ActivityRecorder activity;
  EventLog events{0};
  BatchStats stats;
};

class SimEngine {
 public:
  explicit SimEngine(EngineConfig cfg = {});

  const EngineConfig& config() const { return cfg_; }
  /// The actual worker count (after resolving threads == 0 and clamping to
  /// the host's hardware concurrency).
  int resolved_threads() const { return threads_; }
  /// The worker count the config asked for (0 = auto), before clamping.
  int requested_threads() const { return cfg_.threads; }
  /// True when the requested count exceeded the host's hardware
  /// concurrency and was clamped down to it.
  bool threads_clamped() const { return threads_clamped_; }

  /// Simulate the whole stream, keeping every result: results[i] is the
  /// readout of triple i, bit-identical for any thread count.
  BatchResult run_batch(const OperandSource& src) const;
  BatchResult run_batch(const std::vector<OperandTriple>& ops) const;

  /// Chunked streaming: results are handed shard-by-shard to `consume`
  /// (serialized under a lock, in completion order — shard index `start`
  /// identifies the range) and the per-worker result buffer is reused, so
  /// memory stays O(threads * shard_ops) however long the stream is.
  using ConsumeFn =
      std::function<void(std::uint64_t start, const PFloat* results,
                         std::size_t n)>;
  StreamResult run_stream(const OperandSource& src,
                          const ConsumeFn& consume = nullptr) const;

  /// Simulate a stream of operation chains, keeping values in the unit's
  /// NATIVE format between chained operations (CS operands with deferred
  /// rounding for PCS/FCS).  results[chain * ops_per_chain + j] is the IEEE
  /// readout of chain op j — every intermediate is lowered for inspection,
  /// but the value fed forward is the unlowered native one.  Sharding is on
  /// chain boundaries (chains are independent; operations within a chain
  /// are not), so results, activity and events stay bit-identical for any
  /// thread count.
  BatchResult run_chained(const ChainSource& src) const;

 private:
  void run_shards(const OperandSource& src, PFloat* results,
                  const ConsumeFn* consume, ActivityRecorder* activity,
                  EventLog* events, BatchStats* stats) const;

  EngineConfig cfg_;
  int threads_;
  bool threads_clamped_ = false;
};

}  // namespace csfma
