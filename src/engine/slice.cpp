#include "engine/slice.hpp"

#include <bit>

#include "common/check.hpp"

namespace csfma::slice {

namespace {

inline std::uint64_t lanes_mask(int n) {
  return n >= kLanes ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
}

}  // namespace

void transpose64(std::uint64_t m[kLanes]) {
  // Masked block-swap transpose (Hacker's Delight 7-3 family), oriented so
  // that element (r, c) = bit c of m[r]: at each level, block (r, c+j) of
  // rows with bit j clear swaps with block (r+j, c) — the high half of
  // m[k] trades places with the low half of m[k+j].
  std::uint64_t mask = 0x00000000FFFFFFFFull;
  for (int j = 32; j != 0; j >>= 1, mask ^= mask << j) {
    for (int k = 0; k < kLanes; k = (k + j + 1) & ~j) {
      const std::uint64_t t = ((m[k] >> j) ^ m[k + j]) & mask;
      m[k] ^= t << j;
      m[k + j] ^= t;
    }
  }
}

void pack_words(const std::uint64_t* lanes, int stride_words, int n,
                int width_bits, std::uint64_t* planes) {
  CSFMA_CHECK(n >= 0 && n <= kLanes && width_bits >= 0);
  CSFMA_CHECK(stride_words * 64 >= width_bits);
  std::uint64_t tmp[kLanes];
  const int wcols = (width_bits + 63) / 64;
  for (int wc = 0; wc < wcols; ++wc) {
    for (int L = 0; L < n; ++L) tmp[L] = lanes[L * stride_words + wc];
    for (int L = n; L < kLanes; ++L) tmp[L] = 0;
    transpose64(tmp);
    const int nb = width_bits - wc * 64 < 64 ? width_bits - wc * 64 : 64;
    std::uint64_t* p = planes + wc * 64;
    for (int b = 0; b < nb; ++b) p[b] = tmp[b];
  }
}

void unpack_words(const std::uint64_t* planes, int width_bits, int n,
                  std::uint64_t* lanes, int stride_words) {
  CSFMA_CHECK(n >= 0 && n <= kLanes && width_bits >= 0);
  CSFMA_CHECK(stride_words * 64 >= width_bits);
  std::uint64_t tmp[kLanes];
  const int wcols = (width_bits + 63) / 64;
  for (int wc = 0; wc < wcols; ++wc) {
    const int nb = width_bits - wc * 64 < 64 ? width_bits - wc * 64 : 64;
    const std::uint64_t* p = planes + wc * 64;
    for (int b = 0; b < nb; ++b) tmp[b] = p[b];
    for (int b = nb; b < kLanes; ++b) tmp[b] = 0;  // bits past width read 0
    transpose64(tmp);
    for (int L = 0; L < n; ++L) lanes[L * stride_words + wc] = tmp[L];
  }
}

void pack(const CsWord* vals, int n, int width_bits, std::uint64_t* planes) {
  static_assert(sizeof(CsWord) == CsWord::kWords * sizeof(std::uint64_t));
  pack_words(vals->data(), CsWord::kWords, n, width_bits, planes);
}

void unpack(const std::uint64_t* planes, int width_bits, int n,
            CsWord* vals) {
  unpack_words(planes, width_bits, n, vals->data(), CsWord::kWords);
}

void compress3(int width, const std::uint64_t* a, const std::uint64_t* b,
               const std::uint64_t* c, std::uint64_t* out_s,
               std::uint64_t* out_c) {
  // Majority shifts up one bit position; the top majority drops off the
  // window, exactly like compress3's (maj << 1).truncated(width).
  std::uint64_t prev_maj = 0;
  for (int i = 0; i < width; ++i) {
    const std::uint64_t ai = a[i], bi = b[i], ci = c[i];
    out_s[i] = ai ^ bi ^ ci;
    out_c[i] = prev_maj;
    prev_maj = (ai & bi) | (ci & (ai | bi));
  }
}

void carry_reduce(int width, int group, const std::uint64_t* s,
                  const std::uint64_t* c, std::uint64_t* out_s,
                  std::uint64_t* out_c) {
  CSFMA_CHECK(group >= 1 && group <= width);
  for (int i = 0; i < width; ++i) out_c[i] = 0;
  for (int lo = 0; lo < width; lo += group) {
    const int len = lo + group <= width ? group : width - lo;
    // Plane-form ripple adder over the segment: per lane this assimilates
    // the group's sum+carry digits, matching the scalar segment addition.
    std::uint64_t carry = 0;
    for (int j = 0; j < len; ++j) {
      const std::uint64_t a = s[lo + j], b = c[lo + j];
      out_s[lo + j] = a ^ b ^ carry;
      carry = (a & b) | (carry & (a | b));
    }
    if (lo + group < width) out_c[lo + group] = carry;
  }
}

void assimilate(int width, const std::uint64_t* s, const std::uint64_t* c,
                std::uint64_t* out) {
  std::uint64_t carry = 0;
  for (int i = 0; i < width; ++i) {
    const std::uint64_t a = s[i], b = c[i];
    out[i] = a ^ b ^ carry;
    carry = (a & b) | (carry & (a | b));
  }
}

void count_skippable_blocks(int width, int block, int max_skip,
                            const std::uint64_t* s, const std::uint64_t* c,
                            std::uint64_t* alive_after) {
  CSFMA_CHECK(block >= 2 && block <= 63);
  CSFMA_CHECK(width % block == 0);
  CSFMA_CHECK(max_skip >= 0 && max_skip <= width / block - 1);
  // Digit predicates per plane position: Z (digit 0), X (digit 1),
  // T (digit 2).  Each step's skip decision depends only on fixed plane
  // positions, so steps evaluate independently; the cumulative AND
  // replicates the scalar while-loop (a lane stops at its first
  // non-skippable block).
  std::uint64_t alive = ~std::uint64_t{0};
  for (int step = 1; step <= max_skip; ++step) {
    const int lo = width - block * step;
    // Prefix-of-zeros below each in-block position (exclusive).
    std::uint64_t pz[64];
    std::uint64_t run_z = ~std::uint64_t{0};
    for (int j = 0; j < block; ++j) {
      pz[j] = run_z;
      run_z &= ~(s[lo + j] | c[lo + j]);
    }
    // Descending scan: suffix-of-ones above each position, plus the
    // all-zero / all-ones / ones-then-2-then-zeros block patterns.
    std::uint64_t all_zero = ~std::uint64_t{0};
    std::uint64_t all_ones = ~std::uint64_t{0};
    std::uint64_t suffix_ones = ~std::uint64_t{0};
    std::uint64_t otz = 0;
    for (int j = block - 1; j >= 0; --j) {
      const std::uint64_t sj = s[lo + j], cj = c[lo + j];
      const std::uint64_t x = sj ^ cj, t = sj & cj, z = ~(sj | cj);
      otz |= suffix_ones & t & pz[j];
      suffix_ones &= x;
      all_zero &= z;
      all_ones &= x;
    }
    // Fig 10.d safeguards on the first two digits of the next block.
    const std::uint64_t s1 = s[lo - 1], c1 = c[lo - 1];
    const std::uint64_t x1 = s1 ^ c1, t1 = s1 & c1, z1 = ~(s1 | c1);
    const std::uint64_t z2 = ~(s[lo - 2] | c[lo - 2]);
    const std::uint64_t skip = ((all_zero | otz) & z1 & z2) |
                               (all_ones & (x1 | (t1 & z2)));
    alive &= skip;
    alive_after[step - 1] = alive;
  }
}

void leading_sign_run(int width, const std::uint64_t* bin, int n,
                      std::uint16_t* run) {
  CSFMA_CHECK(width >= 1 && n >= 0 && n <= kLanes);
  const std::uint64_t sign = bin[width - 1];
  std::uint64_t undecided = lanes_mask(n);
  for (int L = 0; L < n; ++L) run[L] = (std::uint16_t)(width - 1);
  for (int b = width - 2; b >= 0 && undecided != 0; --b) {
    std::uint64_t newly = (bin[b] ^ sign) & undecided;
    undecided &= ~newly;
    while (newly != 0) {
      const int L = std::countr_zero(newly);
      newly &= newly - 1;
      run[L] = (std::uint16_t)(width - 2 - b);
    }
  }
}

void lza_estimate(int width, const std::uint64_t* s, const std::uint64_t* c,
                  int n, std::uint16_t* est, std::uint64_t* scratch) {
  CSFMA_CHECK(width >= 1 && n >= 0 && n <= kLanes);
  // Mirror of the scalar behavioural model (cs/lza.cpp): assimilate, find
  // the boundary bit, then fall one short exactly when the assimilation
  // carry reaches the boundary.
  std::uint64_t* bin = scratch;
  std::uint64_t* carry_in = scratch + width;
  assimilate(width, s, c, bin);
  for (int b = 0; b < width; ++b) carry_in[b] = bin[b] ^ s[b] ^ c[b];
  const std::uint64_t sign = bin[width - 1];
  std::uint64_t undecided = lanes_mask(n);
  int boundary[kLanes];
  for (int L = 0; L < n; ++L) boundary[L] = -1;
  for (int b = width - 2; b >= 0 && undecided != 0; --b) {
    std::uint64_t newly = (bin[b] ^ sign) & undecided;
    undecided &= ~newly;
    while (newly != 0) {
      const int L = std::countr_zero(newly);
      newly &= newly - 1;
      boundary[L] = b;
    }
  }
  for (int L = 0; L < n; ++L) {
    const int run = boundary[L] < 0 ? width - 1 : (width - 2) - boundary[L];
    const int hit_pos = boundary[L] < 0 ? width - 1 : boundary[L];
    const int hit = (int)((carry_in[hit_pos] >> L) & 1u);
    const int e = run - hit;
    est[L] = (std::uint16_t)(e < 0 ? 0 : e);
  }
}

}  // namespace csfma::slice
