#include "engine/watch.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/check.hpp"
#include "introspect/event_log.hpp"
#include "introspect/hooks.hpp"
#include "introspect/signal_tap.hpp"

namespace csfma {

namespace {

std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx", (unsigned long long)v);
  return buf;
}

/// Header comments describing the watched op: operands, result, events.
void annotate(SignalTap& tap, const EventLog& events, std::uint64_t op,
              std::uint64_t a, std::uint64_t b, std::uint64_t c,
              const PFloat& r) {
  tap.vcd().comment("watched op " + std::to_string(op) + ": a=" + hex64(a) +
                    " b=" + hex64(b) + " c=" + hex64(c) +
                    " r=" + hex64(r.to_bits().lo64()));
  for (const NumEvent& e : events.events()) {
    tap.vcd().comment(std::string("event ") + to_string(e.kind) +
                      " detail=" + std::to_string(e.detail));
  }
}

}  // namespace

bool parse_unit_kind(const std::string& name, UnitKind* out) {
  for (UnitKind k : kAllUnitKinds) {
    if (name == to_string(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

WatchOptions extract_watch_args(std::vector<std::string>& args) {
  WatchOptions opts;
  std::vector<std::string> rest;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--vcd" || a == "--watch" || a == "--unit") {
      CSFMA_CHECK_MSG(i + 1 < args.size(), "missing value after --vcd/--watch/--unit");
      const std::string& v = args[++i];
      if (a == "--vcd") {
        opts.vcd_path = v;
      } else if (a == "--watch") {
        opts.watch_op = (std::uint64_t)std::strtoull(v.c_str(), nullptr, 10);
      } else {
        CSFMA_CHECK_MSG(parse_unit_kind(v, &opts.unit),
                        "--unit must be one of: discrete classic pcs fcs");
        opts.unit_set = true;
      }
    } else {
      rest.push_back(a);
    }
  }
  args = std::move(rest);
  return opts;
}

WatchOptions extract_watch_args(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return extract_watch_args(args);
}

PFloat run_watched_op(const WatchOptions& opts, const OperandSource& src,
                      Round rm) {
  CSFMA_CHECK(opts.enabled());
  CSFMA_CHECK_MSG(opts.watch_op < src.size(), "--watch index out of range");
  OperandTriple t;
  src.fill(opts.watch_op, &t, 1);

  SignalTap tap(to_string(opts.unit));
  EventLog events(64);
  IntrospectHooks hooks;
  hooks.tap = &tap;
  hooks.events = &events;
  auto unit = make_fma_unit(opts.unit, nullptr, &hooks);

  const std::uint64_t a = t.a.to_bits().lo64();
  const std::uint64_t b = t.b.to_bits().lo64();
  const std::uint64_t c = t.c.to_bits().lo64();
  tap.begin_op(opts.watch_op);
  events.begin_op(opts.watch_op, a, b, c);
  PFloat r = unit->fma_ieee(t.a, t.b, t.c, rm);
  annotate(tap, events, opts.watch_op, a, b, c, r);
  tap.write(opts.vcd_path);
  return r;
}

PFloat run_watched_chained(const WatchOptions& opts, const ChainSource& src,
                           Round rm) {
  CSFMA_CHECK(opts.enabled());
  const std::uint64_t opc = src.ops_per_chain();
  CSFMA_CHECK(opc >= 1);
  CSFMA_CHECK_MSG(opts.watch_op < src.chains() * opc,
                  "--watch index out of range");
  const std::uint64_t g = opts.watch_op / opc;
  const std::uint64_t jw = opts.watch_op % opc;
  std::vector<ChainedOp> ops((std::size_t)opc);
  src.fill_chain(g, ops.data());

  SignalTap tap(to_string(opts.unit));
  EventLog events(64);
  // Hooks stay attached through the whole chain but with null members until
  // the watched op — the documented flip-between-ops pattern.
  IntrospectHooks hooks;
  auto unit = make_fma_unit(opts.unit, nullptr, &hooks);

  std::vector<FmaOperand> natives((std::size_t)opc);
  PFloat watched;
  for (std::uint64_t j = 0; j <= jw; ++j) {
    const ChainedOp& op = ops[(std::size_t)j];
    CSFMA_CHECK(op.a_ref < (std::int64_t)j && op.c_ref < (std::int64_t)j);
    if (j == jw) {
      hooks.tap = &tap;
      hooks.events = &events;
      tap.begin_op(opts.watch_op);
      events.begin_op(opts.watch_op, op.a.to_bits().lo64(),
                      op.b.to_bits().lo64(), op.c.to_bits().lo64());
    }
    FmaOperand a =
        op.a_ref >= 0 ? natives[(std::size_t)op.a_ref] : unit->lift(op.a);
    FmaOperand c =
        op.c_ref >= 0 ? natives[(std::size_t)op.c_ref] : unit->lift(op.c);
    FmaOperand res = unit->fma(a, op.b, c);
    if (j == jw) watched = unit->lower(res, rm);
    natives[(std::size_t)j] = std::move(res);
  }
  annotate(tap, events, opts.watch_op, ops[(std::size_t)jw].a.to_bits().lo64(),
           ops[(std::size_t)jw].b.to_bits().lo64(),
           ops[(std::size_t)jw].c.to_bits().lo64(), watched);
  tap.write(opts.vcd_path);
  return watched;
}

}  // namespace csfma
