// `--vcd <file> --watch <op-index>` support for the unit benches.
//
// Every bench that pushes an operand stream through a unit can offer
// signal-level introspection of ONE operation of that stream: the selected
// op is re-simulated on a fresh unit instance with a SignalTap and an
// EventLog attached, and the captured waveform is written as a VCD file
// (docs/observability.md has the GTKWave quick-start).  Because operand
// sources are pure functions of the index, the watched op is bit-identical
// to the one the batch run simulated.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/sim_engine.hpp"

namespace csfma {

struct WatchOptions {
  std::string vcd_path;         // empty = no watch requested
  std::uint64_t watch_op = 0;   // stream index of the operation to record
  bool unit_set = false;        // --unit was given
  UnitKind unit = UnitKind::Pcs;

  bool enabled() const { return !vcd_path.empty(); }
};

/// Parse a unit name ("discrete", "classic", "pcs", "fcs"); returns false
/// (leaving *out untouched) on anything else.
bool parse_unit_kind(const std::string& name, UnitKind* out);

/// Strip `--vcd <file>`, `--watch <index>` and `--unit <name>` from an
/// argv-style vector (leaving every other argument in place, in order) and
/// return the parsed options.  CHECK-fails on a missing value or a bad
/// unit name.
WatchOptions extract_watch_args(std::vector<std::string>& args);
WatchOptions extract_watch_args(int argc, char** argv);

/// Simulate operation `opts.watch_op` of `src` on a fresh unit of kind
/// `opts.unit` with a SignalTap + EventLog attached, and write the VCD to
/// `opts.vcd_path`.  Any events the op raised are embedded as header
/// comments.  Returns the op's IEEE result.
PFloat run_watched_op(const WatchOptions& opts, const OperandSource& src,
                      Round rm = Round::NearestEven);

/// Chained-stream variant: re-simulates the chain containing
/// `opts.watch_op` (operands may be native results of earlier chain ops)
/// and records ONLY the watched operation's cycles.  Returns the watched
/// op's IEEE readout.
PFloat run_watched_chained(const WatchOptions& opts, const ChainSource& src,
                           Round rm = Round::NearestEven);

}  // namespace csfma
