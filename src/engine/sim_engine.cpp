#include "engine/sim_engine.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace csfma {

void VectorSource::fill(std::uint64_t start, OperandTriple* out,
                        std::size_t n) const {
  CSFMA_CHECK(start + n <= ops_->size());
  for (std::size_t i = 0; i < n; ++i) out[i] = (*ops_)[start + i];
}

void RandomTripleSource::fill(std::uint64_t start, OperandTriple* out,
                              std::size_t n) const {
  CSFMA_CHECK(start + n <= n_);
  for (std::size_t i = 0; i < n; ++i) {
    // Per-index seeding (not one sequential stream) so that any chunking of
    // the range reproduces the same triples.
    Rng rng(seed_ ^ ((start + i + 1) * 0x9e3779b97f4a7c15ULL));
    out[i].a = PFloat::from_double(kBinary64,
                                   rng.next_fp_in_exp_range(emin_, emax_));
    out[i].b = PFloat::from_double(kBinary64,
                                   rng.next_fp_in_exp_range(emin_, emax_));
    out[i].c = PFloat::from_double(kBinary64,
                                   rng.next_fp_in_exp_range(emin_, emax_));
  }
}

SimEngine::SimEngine(EngineConfig cfg) : cfg_(cfg) {
  CSFMA_CHECK(cfg_.threads >= 0);
  CSFMA_CHECK(cfg_.shard_ops >= 1);
  threads_ = cfg_.threads;
  if (threads_ == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    threads_ = hw == 0 ? 1 : (int)hw;
  }
}

void SimEngine::run_shards(const OperandSource& src, PFloat* results,
                           const ConsumeFn* consume, ActivityRecorder* activity,
                           BatchStats* stats) const {
  using clock = std::chrono::steady_clock;
  const std::uint64_t n = src.size();
  const std::uint64_t shard_ops = cfg_.shard_ops;
  const std::uint64_t num_shards = (n + shard_ops - 1) / shard_ops;

  std::vector<ActivityRecorder> shard_recs((std::size_t)num_shards);
  std::vector<ShardStats> shard_stats((std::size_t)num_shards);
  std::atomic<std::uint64_t> next_shard{0};
  std::mutex consume_mu;

  auto worker = [&](int wid) {
    // Reusable per-worker buffers: one operand chunk and (in streaming
    // mode) one result chunk, regardless of stream length.
    std::vector<OperandTriple> in_buf;
    std::vector<PFloat> out_buf;
    for (;;) {
      const std::uint64_t s = next_shard.fetch_add(1);
      if (s >= num_shards) break;
      const std::uint64_t start = s * shard_ops;
      const std::size_t count =
          (std::size_t)(shard_ops < n - start ? shard_ops : n - start);
      in_buf.resize(count);
      src.fill(start, in_buf.data(), count);
      PFloat* out;
      if (results != nullptr) {
        out = results + start;
      } else {
        out_buf.resize(count);
        out = out_buf.data();
      }
      ActivityRecorder& rec = shard_recs[(std::size_t)s];
      auto unit = make_fma_unit(cfg_.unit, &rec);
      const auto t0 = clock::now();
      for (std::size_t i = 0; i < count; ++i)
        out[i] = unit->fma_ieee(in_buf[i].a, in_buf[i].b, in_buf[i].c, cfg_.rm);
      const double secs =
          std::chrono::duration<double>(clock::now() - t0).count();
      ShardStats& st = shard_stats[(std::size_t)s];
      st.start = start;
      st.ops = count;
      st.worker = wid;
      st.seconds = secs;
      st.ops_per_sec = secs > 0.0 ? (double)count / secs : 0.0;
      if (consume != nullptr && *consume) {
        std::lock_guard<std::mutex> lock(consume_mu);
        (*consume)(start, out, count);
      }
    }
  };

  const auto wall0 = clock::now();
  const int nthreads =
      (int)(num_shards < (std::uint64_t)threads_ ? num_shards
                                                 : (std::uint64_t)threads_);
  if (nthreads <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve((std::size_t)(nthreads - 1));
    for (int w = 1; w < nthreads; ++w) pool.emplace_back(worker, w);
    worker(0);
    for (auto& t : pool) t.join();
  }
  const double wall =
      std::chrono::duration<double>(clock::now() - wall0).count();

  // Merge in shard order: deterministic regardless of completion order.
  for (const auto& rec : shard_recs) activity->merge_from(rec);
  stats->ops = n;
  stats->seconds = wall;
  stats->ops_per_sec = wall > 0.0 ? (double)n / wall : 0.0;
  stats->shards.assign(shard_stats.begin(), shard_stats.end());
}

BatchResult SimEngine::run_batch(const OperandSource& src) const {
  BatchResult r;
  r.results.resize((std::size_t)src.size());
  run_shards(src, r.results.data(), nullptr, &r.activity, &r.stats);
  return r;
}

BatchResult SimEngine::run_batch(const std::vector<OperandTriple>& ops) const {
  return run_batch(VectorSource(ops));
}

StreamResult SimEngine::run_stream(const OperandSource& src,
                                   const ConsumeFn& consume) const {
  StreamResult r;
  run_shards(src, nullptr, &consume, &r.activity, &r.stats);
  return r;
}

}  // namespace csfma
