#include "engine/sim_engine.hpp"

#include <atomic>
#include <chrono>
#include <deque>
#include <mutex>
#include <thread>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace csfma {

namespace {

/// Serialized, rate-limited progress emission shared by the batch and
/// chained drivers.  Workers bump atomic counters per completed shard; a
/// compare-exchange on the next-beat deadline elects at most one emitter
/// per interval, and the callback itself runs under a mutex so user code
/// never sees concurrent invocations.
class ProgressGate {
 public:
  using clock = std::chrono::steady_clock;

  ProgressGate(const ProgressFn& fn, double interval_s,
               std::uint64_t ops_total, std::uint64_t shards_total,
               clock::time_point t0)
      : fn_(fn),
        interval_us_((std::int64_t)(interval_s * 1e6)),
        ops_total_(ops_total),
        shards_total_(shards_total),
        t0_(t0) {
    next_emit_us_.store(interval_us_, std::memory_order_relaxed);
  }

  void shard_done(std::uint64_t ops) {
    if (!fn_) return;
    ops_done_.fetch_add(ops, std::memory_order_relaxed);
    shards_done_.fetch_add(1, std::memory_order_relaxed);
    const std::int64_t now = now_us();
    std::int64_t deadline = next_emit_us_.load(std::memory_order_relaxed);
    if (now < deadline) return;
    if (!next_emit_us_.compare_exchange_strong(deadline, now + interval_us_))
      return;  // another worker took this beat
    emit(now);
  }

  /// The final 100% beat, after the join (always fires, even on runs
  /// shorter than one interval).
  void finish() {
    if (!fn_) return;
    emit(now_us());
  }

 private:
  std::int64_t now_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                                 t0_)
        .count();
  }

  void emit(std::int64_t now) {
    EngineProgress p;
    p.ops_done = ops_done_.load(std::memory_order_relaxed);
    p.ops_total = ops_total_;
    p.shards_done = shards_done_.load(std::memory_order_relaxed);
    p.shards_total = shards_total_;
    p.seconds = (double)now / 1e6;
    p.ops_per_sec = safe_rate(p.ops_done, p.seconds);
    if (p.ops_per_sec > 0.0 && p.ops_total >= p.ops_done)
      p.eta_seconds = (double)(p.ops_total - p.ops_done) / p.ops_per_sec;
    std::lock_guard<std::mutex> lock(mu_);
    fn_(p);
  }

  const ProgressFn& fn_;
  const std::int64_t interval_us_;
  const std::uint64_t ops_total_, shards_total_;
  const clock::time_point t0_;
  std::atomic<std::uint64_t> ops_done_{0}, shards_done_{0};
  std::atomic<std::int64_t> next_emit_us_{0};
  std::mutex mu_;
};

}  // namespace

const char* to_string(EngineBackend backend) {
  switch (backend) {
    case EngineBackend::Scalar:
      return "scalar";
    case EngineBackend::Sliced:
      return "sliced";
  }
  return "?";
}

bool parse_engine_backend(std::string_view s, EngineBackend* out) {
  if (s == "scalar") {
    *out = EngineBackend::Scalar;
    return true;
  }
  if (s == "sliced") {
    *out = EngineBackend::Sliced;
    return true;
  }
  return false;
}

void VectorSource::fill(std::uint64_t start, OperandTriple* out,
                        std::size_t n) const {
  CSFMA_CHECK(start + n <= ops_->size());
  for (std::size_t i = 0; i < n; ++i) out[i] = (*ops_)[start + i];
}

void RandomTripleSource::fill(std::uint64_t start, OperandTriple* out,
                              std::size_t n) const {
  CSFMA_CHECK(start + n <= n_);
  for (std::size_t i = 0; i < n; ++i) {
    // Per-index seeding (not one sequential stream) so that any chunking of
    // the range reproduces the same triples.
    Rng rng(seed_ ^ ((start + i + 1) * 0x9e3779b97f4a7c15ULL));
    out[i].a = PFloat::from_double(kBinary64,
                                   rng.next_fp_in_exp_range(emin_, emax_));
    out[i].b = PFloat::from_double(kBinary64,
                                   rng.next_fp_in_exp_range(emin_, emax_));
    out[i].c = PFloat::from_double(kBinary64,
                                   rng.next_fp_in_exp_range(emin_, emax_));
  }
}

SimEngine::SimEngine(EngineConfig cfg) : cfg_(cfg) {
  CSFMA_CHECK(cfg_.threads >= 0);
  CSFMA_CHECK(cfg_.shard_ops >= 1);
  const unsigned hw = std::thread::hardware_concurrency();
  const int hw_threads = hw == 0 ? 1 : (int)hw;
  threads_ = cfg_.threads == 0 ? hw_threads : cfg_.threads;
  // Pure-compute workers gain nothing from oversubscription; clamping keeps
  // a "parallel" run from falling below the single-thread rate on small
  // hosts.  Shard decomposition is thread-count independent, so the clamp
  // never changes results.
  threads_clamped_ = threads_ > hw_threads;
  if (threads_clamped_) threads_ = hw_threads;
}

void SimEngine::run_shards(const OperandSource& src, PFloat* results,
                           const ConsumeFn* consume, ActivityRecorder* activity,
                           EventLog* events, BatchStats* stats) const {
  using clock = std::chrono::steady_clock;
  const std::uint64_t n = src.size();
  const std::uint64_t shard_ops = cfg_.shard_ops;
  const std::uint64_t num_shards = (n + shard_ops - 1) / shard_ops;

  std::vector<ActivityRecorder> shard_recs((std::size_t)num_shards);
  const bool log_events = cfg_.event_capacity > 0;
  std::vector<EventLog> shard_events(
      log_events ? (std::size_t)num_shards : 0, EventLog(cfg_.event_capacity));
  std::vector<ShardStats> shard_stats((std::size_t)num_shards);
  std::atomic<std::uint64_t> next_shard{0};
  std::atomic<std::uint64_t> done_shards{0}, done_ops{0};
  const std::atomic<bool>* abort = cfg_.abort;
  std::mutex consume_mu;

  // Resolve telemetry handles once, outside the worker loop.  All of the
  // Deterministic entries are integral and merge by commutative addition,
  // so concurrent updates from workers cannot perturb the thread-count
  // invariance contract; the Timing entries make no such promise.
  MetricsRegistry* metrics = cfg_.metrics;
  TraceSession* trace = cfg_.trace;
  Counter* m_ops = nullptr;
  Counter* m_shards = nullptr;
  Histogram* m_shard_size = nullptr;
  Histogram* m_shard_secs = nullptr;
  Histogram* m_consume_wait = nullptr;
  if (metrics != nullptr) {
    m_ops = &metrics->counter("engine.ops");
    m_shards = &metrics->counter("engine.shards");
    m_shard_size = &metrics->histogram(
        "engine.shard.ops", {1, 16, 256, 1024, 4096, 8192, 16384, 65536});
    m_shard_secs = &metrics->histogram(
        "engine.shard.seconds",
        {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0}, Stability::Timing);
    m_consume_wait = &metrics->histogram(
        "engine.consume_wait.seconds",
        {1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1}, Stability::Timing);
  }

  const int nthreads =
      (int)(num_shards < (std::uint64_t)threads_ ? num_shards
                                                 : (std::uint64_t)threads_);
  std::vector<double> worker_busy((std::size_t)(nthreads > 0 ? nthreads : 1),
                                  0.0);

  // Per-shard host profilers, same shape as shard_recs (deque because
  // HostProfiler owns a mutex and cannot be copied into a vector).
  HostProfiler* profiler = cfg_.profiler;
  std::deque<HostProfiler> shard_profs;
  if (profiler != nullptr) {
    for (std::uint64_t s = 0; s < num_shards; ++s)
      shard_profs.emplace_back(profiler->hw_enabled());
  }

  const auto wall0 = clock::now();
  ProgressGate gate(cfg_.progress, cfg_.progress_interval_s, n, num_shards,
                    wall0);

  auto worker = [&](int wid) {
    // Reusable per-worker buffers: one operand chunk and (in streaming
    // mode) one result chunk, regardless of stream length.
    std::vector<OperandTriple> in_buf;
    std::vector<PFloat> out_buf;
    for (;;) {
      // Cooperative cancellation: stop claiming shards once the abort flag
      // is raised; the shard being simulated always runs to completion.
      if (abort != nullptr && abort->load(std::memory_order_relaxed)) break;
      const std::uint64_t s = next_shard.fetch_add(1);
      if (s >= num_shards) break;
      const std::uint64_t start = s * shard_ops;
      const std::size_t count =
          (std::size_t)(shard_ops < n - start ? shard_ops : n - start);
      HostProfiler* prof =
          profiler != nullptr ? &shard_profs[(std::size_t)s] : nullptr;
      TraceSpan shard_span(trace, "shard", "engine", wid);
      shard_span.arg("index", s);
      shard_span.arg("start", start);
      shard_span.arg("ops", (std::uint64_t)count);
      {
        TraceSpan fill_span(trace, "fill", "engine", wid);
        ProfScope fill_scope(prof, "engine.fill");
        fill_scope.items(count);
        in_buf.resize(count);
        src.fill(start, in_buf.data(), count);
      }
      PFloat* out;
      if (results != nullptr) {
        out = results + start;
      } else {
        out_buf.resize(count);
        out = out_buf.data();
      }
      ActivityRecorder& rec = shard_recs[(std::size_t)s];
      EventLog* ev = log_events ? &shard_events[(std::size_t)s] : nullptr;
      IntrospectHooks hooks;
      hooks.events = ev;
      auto unit = make_fma_unit(cfg_.unit, &rec, ev != nullptr ? &hooks : nullptr);
      const auto t0 = clock::now();
      {
        TraceSpan sim_span(trace, "simulate", "engine", wid);
        ProfScope sim_scope(prof, "engine.simulate");
        sim_scope.items(count);
        FmaBatchHooks bh;
        bh.rm = cfg_.rm;
        bh.events = ev;
        bh.base_index = start;
        if (cfg_.backend == EngineBackend::Sliced) {
          unit->fma_ieee_batch(in_buf.data(), count, out, bh);
        } else {
          // Reference oracle: the base-class per-operation loop, bypassing
          // any unit batch override.
          unit->FmaUnit::fma_ieee_batch(in_buf.data(), count, out, bh);
        }
      }
      const double secs =
          std::chrono::duration<double>(clock::now() - t0).count();
      ShardStats& st = shard_stats[(std::size_t)s];
      st.start = start;
      st.ops = count;
      st.worker = wid;
      st.seconds = secs;
      st.ops_per_sec = safe_rate(count, secs);
      worker_busy[(std::size_t)wid] += secs;
      if (metrics != nullptr) {
        m_ops->add(count);
        m_shards->add(1);
        m_shard_size->observe((double)count);
        m_shard_secs->observe(secs);
      }
      if (consume != nullptr && *consume) {
        const auto w0 = clock::now();
        std::lock_guard<std::mutex> lock(consume_mu);
        if (m_consume_wait != nullptr) {
          m_consume_wait->observe(
              std::chrono::duration<double>(clock::now() - w0).count());
        }
        TraceSpan consume_span(trace, "consume", "engine", wid);
        ProfScope consume_scope(prof, "engine.consume");
        consume_scope.items(count);
        (*consume)(start, out, count);
      }
      done_shards.fetch_add(1, std::memory_order_relaxed);
      done_ops.fetch_add(count, std::memory_order_relaxed);
      gate.shard_done(count);
    }
  };

  if (nthreads <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve((std::size_t)(nthreads - 1));
    for (int w = 1; w < nthreads; ++w) pool.emplace_back(worker, w);
    worker(0);
    for (auto& t : pool) t.join();
  }
  const double wall =
      std::chrono::duration<double>(clock::now() - wall0).count();

  // Merge in shard order: deterministic regardless of completion order.
  {
    TraceSpan merge_span(trace, "merge", "engine", 0);
    merge_span.arg("shards", num_shards);
    ProfScope merge_scope(profiler, "engine.merge");
    merge_scope.items(num_shards);
    for (const auto& rec : shard_recs) activity->merge_from(rec);
    if (log_events && events != nullptr) {
      *events = EventLog(cfg_.event_capacity);
      for (const auto& log : shard_events) events->merge_from(log);
    }
  }
  if (profiler != nullptr) {
    for (const auto& p : shard_profs) profiler->merge_from(p);
  }
  gate.finish();
  if (metrics != nullptr) {
    // Utilization = simulate time / wall time per worker lane; Timing by
    // definition (and the gauge names depend on the worker count).
    for (int w = 0; w < nthreads; ++w) {
      metrics
          ->gauge("engine.worker." + std::to_string(w) + ".utilization",
                  Stability::Timing)
          .set(wall > 0.0 ? worker_busy[(std::size_t)w] / wall : 0.0);
    }
    metrics->gauge("engine.batch.seconds", Stability::Timing).set(wall);
    metrics->gauge("engine.batch.ops_per_sec", Stability::Timing)
        .set(safe_rate(n, wall));
  }
  stats->ops = n;
  stats->seconds = wall;
  stats->ops_per_sec = safe_rate(n, wall);
  stats->ops_done = done_ops.load(std::memory_order_relaxed);
  stats->aborted = done_shards.load(std::memory_order_relaxed) < num_shards;
  stats->shards.assign(shard_stats.begin(), shard_stats.end());
}

BatchResult SimEngine::run_batch(const OperandSource& src) const {
  BatchResult r;
  r.results.resize((std::size_t)src.size());
  run_shards(src, r.results.data(), nullptr, &r.activity, &r.events, &r.stats);
  return r;
}

BatchResult SimEngine::run_batch(const std::vector<OperandTriple>& ops) const {
  return run_batch(VectorSource(ops));
}

StreamResult SimEngine::run_stream(const OperandSource& src,
                                   const ConsumeFn& consume) const {
  StreamResult r;
  run_shards(src, nullptr, &consume, &r.activity, &r.events, &r.stats);
  return r;
}

BatchResult SimEngine::run_chained(const ChainSource& src) const {
  using clock = std::chrono::steady_clock;
  const std::uint64_t chains = src.chains();
  const std::uint64_t opc = src.ops_per_chain();
  CSFMA_CHECK(opc >= 1);
  const std::uint64_t n = chains * opc;

  // Shard on CHAIN boundaries: operations within a chain depend on earlier
  // results, chains are independent.  The chains-per-shard count is a pure
  // function of shard_ops and the chain length — never of the thread count.
  const std::uint64_t chains_per_shard =
      cfg_.shard_ops / opc > 0 ? cfg_.shard_ops / opc : 1;
  const std::uint64_t num_shards =
      chains == 0 ? 0 : (chains + chains_per_shard - 1) / chains_per_shard;

  BatchResult r;
  r.results.resize((std::size_t)n);
  std::vector<ActivityRecorder> shard_recs((std::size_t)num_shards);
  const bool log_events = cfg_.event_capacity > 0;
  std::vector<EventLog> shard_events(
      log_events ? (std::size_t)num_shards : 0, EventLog(cfg_.event_capacity));
  std::vector<ShardStats> shard_stats((std::size_t)num_shards);
  std::atomic<std::uint64_t> next_shard{0};
  std::atomic<std::uint64_t> done_shards{0}, done_ops{0};
  const std::atomic<bool>* abort = cfg_.abort;

  Counter* m_ops = nullptr;
  Counter* m_shards = nullptr;
  if (cfg_.metrics != nullptr) {
    m_ops = &cfg_.metrics->counter("engine.ops");
    m_shards = &cfg_.metrics->counter("engine.shards");
  }

  const int nthreads =
      (int)(num_shards < (std::uint64_t)threads_ ? num_shards
                                                 : (std::uint64_t)threads_);

  HostProfiler* profiler = cfg_.profiler;
  std::deque<HostProfiler> shard_profs;
  if (profiler != nullptr) {
    for (std::uint64_t s = 0; s < num_shards; ++s)
      shard_profs.emplace_back(profiler->hw_enabled());
  }

  const auto wall0 = clock::now();
  ProgressGate gate(cfg_.progress, cfg_.progress_interval_s, n, num_shards,
                    wall0);

  auto worker = [&](int wid) {
    std::vector<ChainedOp> chain_buf((std::size_t)opc);
    std::vector<FmaOperand> natives((std::size_t)opc);
    for (;;) {
      if (abort != nullptr && abort->load(std::memory_order_relaxed)) break;
      const std::uint64_t s = next_shard.fetch_add(1);
      if (s >= num_shards) break;
      const std::uint64_t g0 = s * chains_per_shard;
      const std::uint64_t g1 =
          g0 + chains_per_shard < chains ? g0 + chains_per_shard : chains;
      HostProfiler* prof =
          profiler != nullptr ? &shard_profs[(std::size_t)s] : nullptr;
      ActivityRecorder& rec = shard_recs[(std::size_t)s];
      EventLog* ev = log_events ? &shard_events[(std::size_t)s] : nullptr;
      IntrospectHooks hooks;
      hooks.events = ev;
      auto unit =
          make_fma_unit(cfg_.unit, &rec, ev != nullptr ? &hooks : nullptr);
      const auto t0 = clock::now();
      for (std::uint64_t g = g0; g < g1; ++g) {
        {
          ProfScope fill_scope(prof, "engine.fill");
          fill_scope.items(opc);
          src.fill_chain(g, chain_buf.data());
        }
        ProfScope sim_scope(prof, "engine.simulate");
        sim_scope.items(opc);
        for (std::uint64_t j = 0; j < opc; ++j) {
          const ChainedOp& op = chain_buf[(std::size_t)j];
          const std::uint64_t idx = g * opc + j;
          CSFMA_CHECK(op.a_ref < (std::int64_t)j && op.c_ref < (std::int64_t)j);
          if (ev != nullptr) {
            // Ref operands are stamped with the IEEE readout of the result
            // they chain from (already lowered below).
            const auto bits = [&](std::int64_t ref, const PFloat& v) {
              return ref >= 0
                         ? r.results[(std::size_t)(g * opc + (std::uint64_t)ref)]
                               .to_bits()
                               .lo64()
                         : v.to_bits().lo64();
            };
            ev->begin_op(idx, bits(op.a_ref, op.a), op.b.to_bits().lo64(),
                         bits(op.c_ref, op.c));
          }
          FmaOperand a = op.a_ref >= 0 ? natives[(std::size_t)op.a_ref]
                                       : unit->lift(op.a);
          FmaOperand c = op.c_ref >= 0 ? natives[(std::size_t)op.c_ref]
                                       : unit->lift(op.c);
          FmaOperand res = unit->fma(a, op.b, c);
          r.results[(std::size_t)idx] = unit->lower(res, cfg_.rm);
          natives[(std::size_t)j] = std::move(res);
        }
      }
      const double secs =
          std::chrono::duration<double>(clock::now() - t0).count();
      ShardStats& st = shard_stats[(std::size_t)s];
      st.start = g0 * opc;
      st.ops = (g1 - g0) * opc;
      st.worker = wid;
      st.seconds = secs;
      st.ops_per_sec = safe_rate(st.ops, secs);
      if (m_ops != nullptr) {
        m_ops->add(st.ops);
        m_shards->add(1);
      }
      done_shards.fetch_add(1, std::memory_order_relaxed);
      done_ops.fetch_add(st.ops, std::memory_order_relaxed);
      gate.shard_done(st.ops);
    }
  };

  if (nthreads <= 1) {
    if (num_shards > 0) worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve((std::size_t)(nthreads - 1));
    for (int w = 1; w < nthreads; ++w) pool.emplace_back(worker, w);
    worker(0);
    for (auto& t : pool) t.join();
  }
  const double wall =
      std::chrono::duration<double>(clock::now() - wall0).count();

  {
    ProfScope merge_scope(profiler, "engine.merge");
    merge_scope.items(num_shards);
    for (const auto& rec : shard_recs) r.activity.merge_from(rec);
    if (log_events) {
      r.events = EventLog(cfg_.event_capacity);
      for (const auto& log : shard_events) r.events.merge_from(log);
    }
  }
  if (profiler != nullptr) {
    for (const auto& p : shard_profs) profiler->merge_from(p);
  }
  gate.finish();
  r.stats.ops = n;
  r.stats.seconds = wall;
  r.stats.ops_per_sec = safe_rate(n, wall);
  r.stats.ops_done = done_ops.load(std::memory_order_relaxed);
  r.stats.aborted = done_shards.load(std::memory_order_relaxed) < num_shards;
  r.stats.shards.assign(shard_stats.begin(), shard_stats.end());
  return r;
}

}  // namespace csfma
