// Value Change Dump (VCD, IEEE 1364) emission for the signal-level
// introspection layer.
//
// The paper's own methodology is waveform-based: switching activity is
// captured from ISim VCD files and fed to XPower (Sec. IV-C).  VcdWriter is
// the simulator-side equivalent of that capture: named, width-aware signals
// recorded against a pipeline-cycle time axis and written as a standard VCD
// file loadable in GTKWave or Surfer.
//
// Determinism: the header carries no date or tool-version stamp, scopes and
// variables are emitted in sorted name order, and identical consecutive
// values of a signal are deduplicated — the same simulation renders to
// byte-identical bytes on every run (the golden-file test relies on this).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/wide_uint.hpp"

namespace csfma {

class VcdWriter {
 public:
  /// `timescale` is the VCD `$timescale` text; the introspection layer uses
  /// one time unit per pipeline stage, so the default keeps GTKWave's axis
  /// readable without implying wall-clock nanoseconds.
  explicit VcdWriter(std::string timescale = "1ns");

  /// Declare a wire.  Dotted names ("pcs.mul.sum") become nested module
  /// scopes; the last segment is the variable name.  Redeclaring a name
  /// returns the existing signal (the width must match).
  int declare(const std::string& name, int width);

  /// Record a change of `signal` to `words` (LSB-first 64-bit words) at the
  /// current time.  A value equal to the signal's previous one is dropped.
  void change(int signal, const std::uint64_t* words, std::size_t nwords);

  template <int W>
  void change(int signal, const WideUint<W>& v) {
    std::uint64_t words[W];
    for (int i = 0; i < W; ++i) words[i] = v.word(i);
    change(signal, words, (std::size_t)W);
  }
  void change_u64(int signal, std::uint64_t v) { change(signal, &v, 1); }

  /// Move the time cursor forward (monotone; equal time is a no-op).
  void advance_to(std::uint64_t time);
  std::uint64_t time() const { return time_; }

  /// Free-form `$comment` lines placed in the header (e.g. the stage-id
  /// legend).  Must not contain "$end".
  void comment(const std::string& text);

  /// Render the complete VCD file.
  std::string render() const;
  /// Write render() to `path`; CHECK-fails on I/O error.
  void write(const std::string& path) const;

 private:
  struct Signal {
    std::string name;  // full dotted name
    int width = 1;
    std::vector<std::uint64_t> last;  // last recorded value
    bool has_value = false;
  };
  struct Change {
    std::uint64_t time;
    int signal;
    std::vector<std::uint64_t> words;
  };

  static std::string id_code(int index);
  static std::string binary_token(const std::vector<std::uint64_t>& words,
                                  int width);

  std::string timescale_;
  std::vector<std::string> comments_;
  std::vector<Signal> signals_;
  std::map<std::string, int> by_name_;
  std::vector<Change> changes_;
  std::uint64_t time_ = 0;
};

}  // namespace csfma
