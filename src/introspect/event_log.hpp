// Numerical event log: a deterministic, bounded ring of typed events
// raised by the datapath simulators when numerically interesting corner
// behaviour fires — the cases the paper calls out in prose (the documented
// misrounding of Sec. III-C/E, the LZA's one-position error of Sec. III-G,
// cancellation under the early-LZA selection) made observable per
// operation.
//
// Determinism contract (mirrors ActivityRecorder): each engine shard owns
// its own EventLog; SimEngine merges the per-shard logs IN SHARD ORDER.
// Because shard boundaries are a pure function of the stream (never of the
// thread count), the merged event sequence — and its to_json() rendering —
// is byte-identical for any worker count.  The ring keeps the most recent
// `capacity` events and counts what it sheds, so memory stays bounded on
// arbitrarily long streams without losing the raised/dropped totals.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>

namespace csfma {

enum class EventKind {
  MisroundVsIeee,   // deferred rounding differs from IEEE nearest-even
  Cancellation,     // catastrophic cancellation: result far below operands
  LzaMispredict,    // LZA estimate one short of the exact leading-sign run
  ZeroDetectLate,   // ZD skipped fewer blocks than value-soundness allows
  SubnormalFlush,   // result exponent underflowed; flushed to zero
};

const char* to_string(EventKind kind);

struct NumEvent {
  EventKind kind = EventKind::MisroundVsIeee;
  std::uint64_t op = 0;  // stream index of the raising operation
  // IEEE binary64 bit patterns of the operation's operands (R = A + B*C).
  std::uint64_t a_bits = 0, b_bits = 0, c_bits = 0;
  std::int64_t detail = 0;  // kind-specific (shift distance, block count...)

  bool operator==(const NumEvent&) const = default;
};

class EventLog {
 public:
  explicit EventLog(std::size_t capacity = 256) : capacity_(capacity) {}

  /// Set the operand context stamped onto subsequently raised events.
  /// Called by the engine (or a bench loop) before each operation.
  void begin_op(std::uint64_t op, std::uint64_t a_bits, std::uint64_t b_bits,
                std::uint64_t c_bits) {
    op_ = op;
    a_bits_ = a_bits;
    b_bits_ = b_bits;
    c_bits_ = c_bits;
  }

  /// Raise an event with the current operation context.
  void raise(EventKind kind, std::int64_t detail = 0);

  std::size_t capacity() const { return capacity_; }
  /// Total events raised, including those the ring has shed.
  std::uint64_t raised() const { return raised_; }
  std::uint64_t dropped() const { return raised_ - (std::uint64_t)ring_.size(); }
  const std::deque<NumEvent>& events() const { return ring_; }

  /// Append another log's events after this one's, then trim from the FRONT
  /// to capacity — merging per-shard logs in shard order yields the most
  /// recent `capacity` events of the combined stream.  Totals add.
  void merge_from(const EventLog& o);

  /// Deterministic JSON object: {"capacity","raised","dropped","events"}.
  /// Operand bits render as fixed-width hex strings.
  std::string to_json() const;

  void reset();

 private:
  std::size_t capacity_;
  std::deque<NumEvent> ring_;
  std::uint64_t raised_ = 0;
  std::uint64_t op_ = 0, a_bits_ = 0, b_bits_ = 0, c_bits_ = 0;
};

}  // namespace csfma
