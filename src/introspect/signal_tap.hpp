// SignalTap: per-pipeline-cycle signal probing on top of VcdWriter.
//
// A tap session watches ONE unit simulate a handful of operations (usually
// a single `--watch <op-index>` operation of a bench) and records every
// stage-boundary bus against a pipeline-cycle time axis: `begin_stage`
// advances the VCD clock one tick and labels it, `tap` records a named bus
// at the current cycle.  Probe names follow the repo-wide
// `<unit>.<stage>.<signal>` scheme (docs/observability.md), so the VCD
// scope tree mirrors the datapath structure.
//
// Cost contract (mirrors TraceSession): instrumented code guards every
// emission behind a null `IntrospectHooks*` test, so a build without a tap
// attached pays a single pointer check per instrumented site.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "introspect/vcd.hpp"

namespace csfma {

class SignalTap {
 public:
  /// `prefix` (e.g. "pcs") is prepended to every tapped name, keeping one
  /// VCD top-level scope per watched unit.
  explicit SignalTap(std::string prefix = "");

  /// Start recording an operation: advances the time axis to a fresh cycle
  /// and records `op_index` on the bookkeeping `op_index` wire.
  void begin_op(std::uint64_t op_index);

  /// Advance one pipeline cycle labelled `stage` ("mul", "add", ...).
  /// Stage ids are assigned in first-use order and recorded on the
  /// `stage_id` wire; the legend is emitted as header comments.
  void begin_stage(const std::string& stage);

  /// Record the value of bus `name` (relative to the prefix) at the current
  /// cycle, `width` bits wide.
  template <int W>
  void tap(const std::string& name, const WideUint<W>& v, int width = 0) {
    vcd_.advance_to(cycle_);
    vcd_.change(signal(name, width > 0 ? width : WideUint<W>::kBits), v);
  }
  void tap_u64(const std::string& name, std::uint64_t v, int width = 64) {
    vcd_.advance_to(cycle_);
    vcd_.change_u64(signal(name, width), v);
  }

  std::uint64_t cycle() const { return cycle_; }

  VcdWriter& vcd() { return vcd_; }
  /// Render/write the captured waveform (delegates to VcdWriter).
  std::string render() const { return vcd_.render(); }
  void write(const std::string& path) const { vcd_.write(path); }

 private:
  int signal(const std::string& name, int width);

  std::string prefix_;
  VcdWriter vcd_;
  std::map<std::string, int> stage_ids_;
  std::uint64_t cycle_ = 0;
  bool started_ = false;
};

}  // namespace csfma
