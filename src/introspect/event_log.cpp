#include "introspect/event_log.hpp"

#include <cstdio>

#include "common/check.hpp"

namespace csfma {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::MisroundVsIeee:
      return "misround_vs_ieee";
    case EventKind::Cancellation:
      return "cancellation";
    case EventKind::LzaMispredict:
      return "lza_mispredict";
    case EventKind::ZeroDetectLate:
      return "zero_detect_late";
    case EventKind::SubnormalFlush:
      return "subnormal_flush";
  }
  return "?";
}

void EventLog::raise(EventKind kind, std::int64_t detail) {
  ++raised_;
  if (capacity_ == 0) return;
  if (ring_.size() == capacity_) ring_.pop_front();
  NumEvent e;
  e.kind = kind;
  e.op = op_;
  e.a_bits = a_bits_;
  e.b_bits = b_bits_;
  e.c_bits = c_bits_;
  e.detail = detail;
  ring_.push_back(e);
}

void EventLog::merge_from(const EventLog& o) {
  raised_ += o.raised_;
  for (const NumEvent& e : o.ring_) {
    if (capacity_ == 0) break;
    if (ring_.size() == capacity_) ring_.pop_front();
    ring_.push_back(e);
  }
}

namespace {

std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx", (unsigned long long)v);
  return buf;
}

}  // namespace

std::string EventLog::to_json() const {
  std::string out = "{\"capacity\":" + std::to_string(capacity_) +
                    ",\"raised\":" + std::to_string(raised_) +
                    ",\"dropped\":" + std::to_string(dropped()) +
                    ",\"events\":[";
  bool first = true;
  for (const NumEvent& e : ring_) {
    if (!first) out += ',';
    first = false;
    out += std::string("{\"kind\":\"") + to_string(e.kind) +
           "\",\"op\":" + std::to_string(e.op) + ",\"a\":\"" + hex64(e.a_bits) +
           "\",\"b\":\"" + hex64(e.b_bits) + "\",\"c\":\"" + hex64(e.c_bits) +
           "\",\"detail\":" + std::to_string(e.detail) + "}";
  }
  out += "]}";
  return out;
}

void EventLog::reset() {
  ring_.clear();
  raised_ = 0;
  op_ = a_bits_ = b_bits_ = c_bits_ = 0;
}

}  // namespace csfma
