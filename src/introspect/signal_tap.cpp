#include "introspect/signal_tap.hpp"

namespace csfma {

SignalTap::SignalTap(std::string prefix) : prefix_(std::move(prefix)) {}

int SignalTap::signal(const std::string& name, int width) {
  const std::string full = prefix_.empty() ? name : prefix_ + "." + name;
  return vcd_.declare(full, width);
}

void SignalTap::begin_op(std::uint64_t op_index) {
  if (started_) ++cycle_;  // one idle tick separates operations
  started_ = true;
  vcd_.advance_to(cycle_);
  vcd_.change_u64(signal("op_index", 64), op_index);
}

void SignalTap::begin_stage(const std::string& stage) {
  auto [it, inserted] =
      stage_ids_.emplace(stage, (int)stage_ids_.size());
  if (inserted) {
    vcd_.comment("stage " + std::to_string(it->second) + " = " + stage);
  }
  ++cycle_;
  vcd_.advance_to(cycle_);
  vcd_.change_u64(signal("stage_id", 8), (std::uint64_t)it->second);
}

}  // namespace csfma
