// The introspection hook bundle handed to unit simulators.
//
// Units take a `const IntrospectHooks*` (null = no introspection, single
// pointer check per instrumented site, mirroring TraceSession's cost
// contract).  The struct is deliberately a plain pointer pair so a driver
// can flip the members between operations — e.g. attach the SignalTap only
// for the one `--watch` operation of a long stream — without re-creating
// the unit.
#pragma once

namespace csfma {

class SignalTap;
class EventLog;

struct IntrospectHooks {
  SignalTap* tap = nullptr;   // waveform capture (VCD); usually one op
  EventLog* events = nullptr;  // numerical event ring; usually whole stream
};

}  // namespace csfma
