#include "introspect/vcd.hpp"

#include <algorithm>
#include <cstdio>

#include "common/check.hpp"

namespace csfma {

VcdWriter::VcdWriter(std::string timescale)
    : timescale_(std::move(timescale)) {}

int VcdWriter::declare(const std::string& name, int width) {
  CSFMA_CHECK(!name.empty());
  CSFMA_CHECK(width >= 1);
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    CSFMA_CHECK_MSG(signals_[(std::size_t)it->second].width == width,
                    "VCD signal redeclared with a different width");
    return it->second;
  }
  const int id = (int)signals_.size();
  Signal s;
  s.name = name;
  s.width = width;
  signals_.push_back(std::move(s));
  by_name_.emplace(name, id);
  return id;
}

void VcdWriter::change(int signal, const std::uint64_t* words,
                       std::size_t nwords) {
  CSFMA_CHECK(signal >= 0 && (std::size_t)signal < signals_.size());
  Signal& s = signals_[(std::size_t)signal];
  const std::size_t need = (std::size_t)((s.width + 63) / 64);
  std::vector<std::uint64_t> v(need, 0);
  for (std::size_t i = 0; i < need && i < nwords; ++i) v[i] = words[i];
  // Mask the top word to the declared width (hardware truncation).
  if (s.width % 64 != 0) {
    v[need - 1] &= (~std::uint64_t{0}) >> (64 - s.width % 64);
  }
  if (s.has_value && s.last == v) return;  // dedupe unchanged values
  s.last = v;
  s.has_value = true;
  changes_.push_back({time_, signal, std::move(v)});
}

void VcdWriter::advance_to(std::uint64_t time) {
  CSFMA_CHECK_MSG(time >= time_, "VCD time must be monotone");
  time_ = time;
}

void VcdWriter::comment(const std::string& text) {
  CSFMA_CHECK(text.find("$end") == std::string::npos);
  comments_.push_back(text);
}

std::string VcdWriter::id_code(int index) {
  // Printable ASCII 33..126, base 94, most significant digit first.
  std::string code;
  int i = index;
  do {
    code.insert(code.begin(), (char)(33 + i % 94));
    i /= 94;
  } while (i > 0);
  return code;
}

std::string VcdWriter::binary_token(const std::vector<std::uint64_t>& words,
                                    int width) {
  std::string bits;
  bits.reserve((std::size_t)width);
  bool seen_one = false;
  for (int pos = width - 1; pos >= 0; --pos) {
    const bool b = (words[(std::size_t)pos / 64] >> (pos % 64)) & 1u;
    if (b) seen_one = true;
    if (seen_one || pos == 0) bits += b ? '1' : '0';  // strip leading zeros
  }
  return "b" + bits;
}

std::string VcdWriter::render() const {
  std::string out;
  out += "$timescale " + timescale_ + " $end\n";
  out += "$comment csfma signal-level introspection $end\n";
  for (const auto& c : comments_) out += "$comment " + c + " $end\n";

  // Scope tree from the dotted names, sorted: sorting the full names groups
  // each scope's children contiguously, so one pass with a scope stack
  // emits properly nested $scope/$upscope blocks.
  std::vector<int> order((std::size_t)signals_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = (int)i;
  std::sort(order.begin(), order.end(), [this](int a, int b) {
    return signals_[(std::size_t)a].name < signals_[(std::size_t)b].name;
  });
  std::vector<std::string> stack;
  for (int id : order) {
    const Signal& s = signals_[(std::size_t)id];
    std::vector<std::string> path;
    std::size_t from = 0;
    for (std::size_t dot = s.name.find('.'); dot != std::string::npos;
         dot = s.name.find('.', from)) {
      path.push_back(s.name.substr(from, dot - from));
      from = dot + 1;
    }
    const std::string leaf = s.name.substr(from);
    std::size_t common = 0;
    while (common < stack.size() && common < path.size() &&
           stack[common] == path[common]) {
      ++common;
    }
    while (stack.size() > common) {
      out += "$upscope $end\n";
      stack.pop_back();
    }
    while (stack.size() < path.size()) {
      out += "$scope module " + path[stack.size()] + " $end\n";
      stack.push_back(path[stack.size()]);
    }
    out += "$var wire " + std::to_string(s.width) + " " + id_code(id) + " " +
           leaf;
    if (s.width > 1) {
      out += " [" + std::to_string(s.width - 1) + ":0]";
    }
    out += " $end\n";
  }
  while (!stack.empty()) {
    out += "$upscope $end\n";
    stack.pop_back();
  }
  out += "$enddefinitions $end\n";

  // Initial values: every signal starts unknown.
  out += "$dumpvars\n";
  for (int id : order) {
    const Signal& s = signals_[(std::size_t)id];
    out += (s.width > 1 ? "bx " : "x") + id_code(id) + "\n";
  }
  out += "$end\n";

  std::uint64_t cur = ~std::uint64_t{0};
  for (const auto& c : changes_) {
    if (c.time != cur) {
      out += "#" + std::to_string(c.time) + "\n";
      cur = c.time;
    }
    const Signal& s = signals_[(std::size_t)c.signal];
    if (s.width > 1) {
      out += binary_token(c.words, s.width) + " " + id_code(c.signal) + "\n";
    } else {
      out += ((c.words[0] & 1u) ? "1" : "0") + id_code(c.signal) + "\n";
    }
  }
  // Close the waveform one tick after the last change so viewers show the
  // final values with non-zero extent.
  out += "#" + std::to_string(time_ + 1) + "\n";
  return out;
}

void VcdWriter::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  CSFMA_CHECK_MSG(f != nullptr, "cannot open VCD output file");
  const std::string text = render();
  const std::size_t n = std::fwrite(text.data(), 1, text.size(), f);
  const int rc = std::fclose(f);
  CSFMA_CHECK_MSG(n == text.size() && rc == 0, "VCD write failed");
}

}  // namespace csfma
