// The paper's three benchmark solvers (Sec. IV-D): trajectory-planning MPC
// instances of increasing complexity, with their generated ldlsolve()
// kernels and validated numeric inputs.
#pragma once

#include <map>
#include <string>

#include "solver/ipm.hpp"
#include "solver/ldl.hpp"

namespace csfma {

struct BenchmarkSolver {
  std::string name;   // "solver-small" / "solver-medium" / "solver-large"
  MpcProblem problem;
  LdlSymbolic sym;
  std::string ldlsolve_src;
  std::string ldlfactor_src;
};

/// Build one benchmark solver for a horizon (the paper's sizes: 4, 8, 12).
BenchmarkSolver make_benchmark_solver(const std::string& name, int horizon);

/// The three solvers of Sec. IV-D / Fig 15.
std::vector<BenchmarkSolver> paper_solvers();

/// Valid numeric inputs for the generated ldlsolve kernel: factor a real
/// barrier-iteration KKT matrix, pick a random right-hand side, and return
/// the named input map plus the reference solution.
struct KernelInstance {
  std::map<std::string, double> inputs;  // Lv[k], d[i], b[i]
  std::vector<double> expect_x;          // dense-reference solution
};
KernelInstance make_kernel_instance(const BenchmarkSolver& s,
                                    std::uint64_t seed);

}  // namespace csfma
