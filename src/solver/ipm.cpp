#include "solver/ipm.hpp"

#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "solver/ldl.hpp"

namespace csfma {

namespace {

double barrier_f(const MpcProblem& p, const std::vector<double>& z, double mu) {
  double f = qp_objective(p, z);
  for (int i = 0; i < p.nz; ++i) {
    if (std::isfinite(p.lb[(size_t)i])) {
      const double s = z[(size_t)i] - p.lb[(size_t)i];
      if (s <= 0) return std::numeric_limits<double>::infinity();
      f -= mu * std::log(s);
    }
    if (std::isfinite(p.ub[(size_t)i])) {
      const double s = p.ub[(size_t)i] - z[(size_t)i];
      if (s <= 0) return std::numeric_limits<double>::infinity();
      f -= mu * std::log(s);
    }
  }
  return f;
}

}  // namespace

double qp_objective(const MpcProblem& p, const std::vector<double>& z) {
  double f = 0;
  for (int i = 0; i < p.nz; ++i) {
    f += 0.5 * p.q_diag[(size_t)i] * z[(size_t)i] * z[(size_t)i] +
         p.q_lin[(size_t)i] * z[(size_t)i];
  }
  return f;
}

double eq_residual(const MpcProblem& p, const std::vector<double>& z) {
  double r = 0;
  for (int e = 0; e < p.ne; ++e) {
    double s = -p.b_eq[(size_t)e];
    for (int j = 0; j < p.nz; ++j) s += p.a_eq.at(e, j) * z[(size_t)j];
    r = std::max(r, std::fabs(s));
  }
  return r;
}

IpmResult solve_qp(const MpcProblem& p, const IpmOptions& opt) {
  IpmResult res;
  res.z.assign((size_t)p.nz, 0.0);  // strictly inside the symmetric boxes

  for (double mu = opt.mu0; mu >= opt.mu_min; mu *= opt.mu_shrink) {
    for (int it = 0; it < opt.max_newton_per_mu; ++it) {
      // Barrier gradient and Hessian diagonal.
      std::vector<double> grad((size_t)p.nz), phi((size_t)p.nz, 0.0);
      for (int i = 0; i < p.nz; ++i) {
        grad[(size_t)i] =
            p.q_diag[(size_t)i] * res.z[(size_t)i] + p.q_lin[(size_t)i];
        if (std::isfinite(p.lb[(size_t)i])) {
          const double s = res.z[(size_t)i] - p.lb[(size_t)i];
          grad[(size_t)i] -= mu / s;
          phi[(size_t)i] += mu / (s * s);
        }
        if (std::isfinite(p.ub[(size_t)i])) {
          const double s = p.ub[(size_t)i] - res.z[(size_t)i];
          grad[(size_t)i] += mu / s;
          phi[(size_t)i] += mu / (s * s);
        }
      }
      // Newton step via the KKT LDL' solve — the ldlsolve() kernel's job.
      Dense k = kkt_matrix(p, phi, opt.eps_reg);
      LdlFactors f = ldl_factor_dense(k);
      std::vector<double> rhs((size_t)p.nk, 0.0);
      for (int i = 0; i < p.nz; ++i)
        rhs[(size_t)p.kkt_var(i)] = -grad[(size_t)i];
      for (int e = 0; e < p.ne; ++e) {
        double s = p.b_eq[(size_t)e];
        for (int j = 0; j < p.nz; ++j) s -= p.a_eq.at(e, j) * res.z[(size_t)j];
        rhs[(size_t)p.kkt_dual(e)] = s;
      }
      std::vector<double> sol_k = ldl_solve_dense(f, rhs);
      // Un-permute the primal part of the step.
      std::vector<double> sol((size_t)p.nz);
      for (int i = 0; i < p.nz; ++i)
        sol[(size_t)i] = sol_k[(size_t)p.kkt_var(i)];
      ++res.newton_steps;

      double step_norm = 0;
      for (int i = 0; i < p.nz; ++i)
        step_norm = std::max(step_norm, std::fabs(sol[(size_t)i]));
      if (step_norm < opt.tol * (1.0 + step_norm)) break;

      // Fraction-to-boundary plus monotone merit backtracking.
      double alpha = 1.0;
      for (int i = 0; i < p.nz; ++i) {
        const double dz = sol[(size_t)i];
        if (std::isfinite(p.lb[(size_t)i]) && dz < 0) {
          alpha = std::min(
              alpha, 0.99 * (p.lb[(size_t)i] - res.z[(size_t)i]) / dz);
        }
        if (std::isfinite(p.ub[(size_t)i]) && dz > 0) {
          alpha = std::min(
              alpha, 0.99 * (p.ub[(size_t)i] - res.z[(size_t)i]) / dz);
        }
      }
      auto merit = [&](const std::vector<double>& z) {
        return barrier_f(p, z, mu) + 10.0 * eq_residual(p, z);
      };
      const double m0 = merit(res.z);
      std::vector<double> trial((size_t)p.nz);
      for (int bt = 0; bt < 40; ++bt) {
        for (int i = 0; i < p.nz; ++i)
          trial[(size_t)i] = res.z[(size_t)i] + alpha * sol[(size_t)i];
        if (merit(trial) <= m0 + 1e-12) break;
        alpha *= 0.5;
      }
      res.z = trial;
      if (alpha * step_norm < opt.tol) break;
    }
  }
  res.objective = qp_objective(p, res.z);
  res.converged = eq_residual(p, res.z) < 1e-5;
  return res;
}

}  // namespace csfma
