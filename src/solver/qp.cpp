#include "solver/qp.hpp"

#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace csfma {

std::vector<int> MpcProblem::input_indices() const {
  std::vector<int> idx;
  for (int t = 0; t < horizon; ++t) {
    idx.push_back(6 * t + 0);
    idx.push_back(6 * t + 1);
  }
  return idx;
}

MpcProblem build_mpc(int horizon, const double x0[4], const double xref[4],
                     double dt, double accel_limit) {
  CSFMA_CHECK(horizon >= 1);
  MpcProblem p;
  p.horizon = horizon;
  p.nz = 6 * horizon;
  p.ne = 4 * horizon;
  p.nk = p.nz + p.ne;
  p.dt = dt;
  p.q_diag.assign((size_t)p.nz, 0.0);
  p.q_lin.assign((size_t)p.nz, 0.0);
  p.a_eq = Dense(std::max(p.nz, p.ne));  // square workspace, use top-left
  p.b_eq.assign((size_t)p.ne, 0.0);
  const double inf = std::numeric_limits<double>::infinity();
  p.lb.assign((size_t)p.nz, -inf);
  p.ub.assign((size_t)p.nz, inf);

  // Decision layout per step t: [ax, ay, px, py, vx, vy] at offsets 6t..6t+5.
  // Cost: input effort R = 1.0; state tracking Q = diag(2, 2, 0.4, 0.4)
  // against xref (terminal step weighted 6x).
  for (int t = 0; t < horizon; ++t) {
    const int u = 6 * t, x = 6 * t + 2;
    p.q_diag[(size_t)(u + 0)] = 1.0;
    p.q_diag[(size_t)(u + 1)] = 1.0;
    const double w = (t == horizon - 1) ? 6.0 : 1.0;
    const double qs[4] = {2.0, 2.0, 0.4, 0.4};
    for (int k = 0; k < 4; ++k) {
      p.q_diag[(size_t)(x + k)] = w * qs[k];
      p.q_lin[(size_t)(x + k)] = -w * qs[k] * xref[k];
    }
    p.lb[(size_t)(u + 0)] = -accel_limit;
    p.lb[(size_t)(u + 1)] = -accel_limit;
    p.ub[(size_t)(u + 0)] = accel_limit;
    p.ub[(size_t)(u + 1)] = accel_limit;
  }

  // Dynamics x_{t+1} = A x_t + B u_t:
  //   A = [I, dt*I; 0, I] on (p, v) blocks; B = [dt^2/2*I; dt*I].
  // Rows 4t..4t+3 encode  x_{t+1} - A x_t - B u_t = 0, with x_0 given.
  auto xvar = [&](int t, int k) { return 6 * t + 2 + k; };  // x_{t+1} index
  auto uvar = [&](int t, int k) { return 6 * t + k; };
  const double h2 = 0.5 * dt * dt;
  for (int t = 0; t < horizon; ++t) {
    const int r = 4 * t;
    for (int k = 0; k < 4; ++k) p.a_eq.at(r + k, xvar(t, k)) = 1.0;
    // -B u_t.
    p.a_eq.at(r + 0, uvar(t, 0)) = -h2;
    p.a_eq.at(r + 1, uvar(t, 1)) = -h2;
    p.a_eq.at(r + 2, uvar(t, 0)) = -dt;
    p.a_eq.at(r + 3, uvar(t, 1)) = -dt;
    if (t == 0) {
      // A x_0 goes to the right-hand side.
      p.b_eq[(size_t)(r + 0)] = x0[0] + dt * x0[2];
      p.b_eq[(size_t)(r + 1)] = x0[1] + dt * x0[3];
      p.b_eq[(size_t)(r + 2)] = x0[2];
      p.b_eq[(size_t)(r + 3)] = x0[3];
    } else {
      // -A x_t (x_t is a decision variable).
      p.a_eq.at(r + 0, xvar(t - 1, 0)) = -1.0;
      p.a_eq.at(r + 0, xvar(t - 1, 2)) = -dt;
      p.a_eq.at(r + 1, xvar(t - 1, 1)) = -1.0;
      p.a_eq.at(r + 1, xvar(t - 1, 3)) = -dt;
      p.a_eq.at(r + 2, xvar(t - 1, 2)) = -1.0;
      p.a_eq.at(r + 3, xvar(t - 1, 3)) = -1.0;
    }
  }
  return p;
}

std::vector<std::vector<bool>> kkt_pattern(const MpcProblem& p) {
  std::vector<std::vector<bool>> pat((size_t)p.nk,
                                     std::vector<bool>((size_t)p.nk, false));
  for (int i = 0; i < p.nz; ++i) {
    const int pi = p.kkt_var(i);
    pat[(size_t)pi][(size_t)pi] = true;
  }
  for (int r = 0; r < p.ne; ++r) {
    const int pr = p.kkt_dual(r);
    pat[(size_t)pr][(size_t)pr] = true;  // -eps I
    for (int j = 0; j < p.nz; ++j) {
      if (p.a_eq.at(r, j) != 0.0) {
        const int pj = p.kkt_var(j);
        pat[(size_t)pr][(size_t)pj] = true;
        pat[(size_t)pj][(size_t)pr] = true;
      }
    }
  }
  return pat;
}

Dense kkt_matrix(const MpcProblem& p, const std::vector<double>& phi,
                 double eps) {
  CSFMA_CHECK((int)phi.size() == p.nz);
  Dense k(p.nk);
  for (int i = 0; i < p.nz; ++i) {
    const int pi = p.kkt_var(i);
    k.at(pi, pi) = p.q_diag[(size_t)i] + phi[(size_t)i];
  }
  for (int r = 0; r < p.ne; ++r) {
    const int pr = p.kkt_dual(r);
    k.at(pr, pr) = -eps;
    for (int j = 0; j < p.nz; ++j) {
      const double v = p.a_eq.at(r, j);
      if (v != 0.0) {
        const int pj = p.kkt_var(j);
        k.at(pr, pj) = v;
        k.at(pj, pr) = v;
      }
    }
  }
  return k;
}

}  // namespace csfma
