#include "solver/solvers.hpp"

#include "common/rng.hpp"
#include "frontend/parser.hpp"

namespace csfma {

BenchmarkSolver make_benchmark_solver(const std::string& name, int horizon) {
  BenchmarkSolver s;
  s.name = name;
  const double x0[4] = {0.0, 0.0, 1.0, 0.0};
  const double xref[4] = {8.0, 3.0, 0.0, 0.0};
  s.problem = build_mpc(horizon, x0, xref);
  s.sym = ldl_symbolic(kkt_pattern(s.problem));
  s.ldlsolve_src = emit_ldlsolve_kernel(s.sym, "ldlsolve_" + name);
  s.ldlfactor_src =
      emit_ldlfactor_kernel(kkt_pattern(s.problem), s.sym, "ldlfactor_" + name);
  return s;
}

std::vector<BenchmarkSolver> paper_solvers() {
  std::vector<BenchmarkSolver> v;
  v.push_back(make_benchmark_solver("small", 4));
  v.push_back(make_benchmark_solver("medium", 8));
  v.push_back(make_benchmark_solver("large", 12));
  return v;
}

KernelInstance make_kernel_instance(const BenchmarkSolver& s,
                                    std::uint64_t seed) {
  Rng rng(seed);
  // A plausible barrier state: positive diagonal weights on the inputs.
  std::vector<double> phi((size_t)s.problem.nz, 0.0);
  for (int i : s.problem.input_indices())
    phi[(size_t)i] = rng.next_double(0.05, 4.0);
  Dense k = kkt_matrix(s.problem, phi, 1e-7);
  LdlFactors f = ldl_factor_dense(k);
  std::vector<double> lv = pack_l_values(s.sym, f);

  KernelInstance inst;
  std::vector<double> b((size_t)s.problem.nk);
  for (auto& x : b) x = rng.next_double(-2.0, 2.0);
  for (int kk = 0; kk < s.sym.nnz(); ++kk)
    inst.inputs[element_name("Lv", kk, true)] = lv[(size_t)kk];
  for (int i = 0; i < s.problem.nk; ++i) {
    inst.inputs[element_name("dinv", i, true)] = 1.0 / f.d[(size_t)i];
    inst.inputs[element_name("b", i, true)] = b[(size_t)i];
  }
  inst.expect_x = ldl_solve_dense(f, b);
  return inst;
}

}  // namespace csfma
