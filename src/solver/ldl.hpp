// LDL' factorization: symbolic analysis, dense numeric reference, and the
// CVXGEN-style straight-line code generator for ldlsolve().
//
// CVXGEN emits the KKT solve as fully unrolled scalar code (the paper's
// Listing 1 is exactly its shape); the Nymble-like flow then compiles that
// kernel.  ldlsolve(Lv, d, b) performs
//
//   forward:  z_i = b_i - sum_{j<i, L_ij != 0} L_ij z_j
//   diagonal: w_i = z_i / d_i
//   backward: x_i = w_i - sum_{j>i, L_ji != 0} L_ji x_j
//
// Each row is a *chain* of dependent multiply-subtracts — the critical-path
// structure the P/FCS-FMA units accelerate.
#pragma once

#include <string>
#include <vector>

#include "solver/qp.hpp"

namespace csfma {

/// Strict-lower-triangle nonzero pattern of L, with fill-in.
struct LdlSymbolic {
  int n = 0;
  // Nonzeros of strict lower L in column-major elimination order; entry k
  // is (row[k], col[k]).  d has one entry per column.
  std::vector<int> row, col;
  int nnz() const { return (int)row.size(); }
  /// index into row/col for (i, j), or -1.
  int find(int i, int j) const;
};

/// Symbolic factorization of a symmetric pattern (boolean, full square):
/// propagates fill (no pivoting — the KKT regularization makes the natural
/// order factorizable, as CVXGEN relies on).
LdlSymbolic ldl_symbolic(const std::vector<std::vector<bool>>& pattern);

/// Dense numeric LDL' (no pivoting): K = L D L'.  Throws on a (near-)zero
/// pivot.  L returned with unit diagonal implied.
struct LdlFactors {
  Dense l;                // strict lower triangle used
  std::vector<double> d;  // diagonal of D
};
LdlFactors ldl_factor_dense(const Dense& k);

/// Reference solve using the dense factors.
std::vector<double> ldl_solve_dense(const LdlFactors& f,
                                    const std::vector<double>& b);

/// Extract the numeric values of L in the symbolic entry order (checked:
/// every numeric nonzero must be covered by the pattern).
std::vector<double> pack_l_values(const LdlSymbolic& sym, const LdlFactors& f);

/// Generate the fully unrolled ldlsolve kernel in the kernel language:
///   inputs  Lv[nnz], d[n], b[n];  output x[n].
std::string emit_ldlsolve_kernel(const LdlSymbolic& sym,
                                 const std::string& name);

/// Generate the (larger) ldlfactor kernel: inputs K values (dense upper
/// triangle of the pattern), outputs Lv[nnz] and d[n].  Provided for the
/// extension experiments; the paper's Fig 15 compiles ldlsolve only.
std::string emit_ldlfactor_kernel(const std::vector<std::vector<bool>>& pattern,
                                  const LdlSymbolic& sym,
                                  const std::string& name);

}  // namespace csfma
