#include "solver/ldl.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace csfma {

int LdlSymbolic::find(int i, int j) const {
  for (int k = 0; k < nnz(); ++k) {
    if (row[(size_t)k] == i && col[(size_t)k] == j) return k;
  }
  return -1;
}

LdlSymbolic ldl_symbolic(const std::vector<std::vector<bool>>& pattern) {
  const int n = (int)pattern.size();
  // Propagate fill on a working copy: eliminating column k connects every
  // pair of its below-diagonal neighbours.
  std::vector<std::vector<bool>> p = pattern;
  for (int k = 0; k < n; ++k) {
    for (int i = k + 1; i < n; ++i) {
      if (!p[(size_t)i][(size_t)k]) continue;
      for (int j = k + 1; j < i; ++j) {
        if (p[(size_t)j][(size_t)k]) {
          p[(size_t)i][(size_t)j] = true;
          p[(size_t)j][(size_t)i] = true;
        }
      }
    }
  }
  LdlSymbolic sym;
  sym.n = n;
  for (int j = 0; j < n; ++j) {
    for (int i = j + 1; i < n; ++i) {
      if (p[(size_t)i][(size_t)j]) {
        sym.row.push_back(i);
        sym.col.push_back(j);
      }
    }
  }
  return sym;
}

LdlFactors ldl_factor_dense(const Dense& k) {
  const int n = k.n();
  LdlFactors f;
  f.l = Dense(n);
  f.d.assign((size_t)n, 0.0);
  for (int j = 0; j < n; ++j) {
    double dj = k.at(j, j);
    for (int s = 0; s < j; ++s)
      dj -= f.l.at(j, s) * f.l.at(j, s) * f.d[(size_t)s];
    CSFMA_CHECK_MSG(std::fabs(dj) > 1e-12, "LDL pivot breakdown at " << j);
    f.d[(size_t)j] = dj;
    for (int i = j + 1; i < n; ++i) {
      double v = k.at(i, j);
      for (int s = 0; s < j; ++s)
        v -= f.l.at(i, s) * f.l.at(j, s) * f.d[(size_t)s];
      f.l.at(i, j) = v / dj;
    }
  }
  return f;
}

std::vector<double> ldl_solve_dense(const LdlFactors& f,
                                    const std::vector<double>& b) {
  const int n = f.l.n();
  CSFMA_CHECK((int)b.size() == n);
  std::vector<double> z = b;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < i; ++j) z[(size_t)i] -= f.l.at(i, j) * z[(size_t)j];
  for (int i = 0; i < n; ++i) z[(size_t)i] /= f.d[(size_t)i];
  for (int i = n - 1; i >= 0; --i)
    for (int j = i + 1; j < n; ++j) z[(size_t)i] -= f.l.at(j, i) * z[(size_t)j];
  return z;
}

std::vector<double> pack_l_values(const LdlSymbolic& sym, const LdlFactors& f) {
  const int n = f.l.n();
  CSFMA_CHECK(sym.n == n);
  // Every numeric nonzero must be covered by the symbolic pattern.
  for (int j = 0; j < n; ++j) {
    for (int i = j + 1; i < n; ++i) {
      if (std::fabs(f.l.at(i, j)) > 1e-14) {
        CSFMA_CHECK_MSG(sym.find(i, j) >= 0,
                        "numeric fill outside symbolic pattern at (" << i << ","
                                                                     << j << ")");
      }
    }
  }
  std::vector<double> lv((size_t)sym.nnz());
  for (int k = 0; k < sym.nnz(); ++k)
    lv[(size_t)k] = f.l.at(sym.row[(size_t)k], sym.col[(size_t)k]);
  return lv;
}

std::string emit_ldlsolve_kernel(const LdlSymbolic& sym,
                                 const std::string& name) {
  const int n = sym.n;
  std::ostringstream os;
  os << "kernel " << name << " {\n";
  os << "  input double Lv[" << std::max(1, sym.nnz()) << "];\n";
  // CVXGEN-style: the factorization stores the INVERTED diagonal, so the
  // solve contains no divisions — only multiply/adds.
  os << "  input double dinv[" << n << "];\n";
  os << "  input double b[" << n << "];\n";
  os << "  var double z[" << n << "];\n";
  os << "  var double w[" << n << "];\n";
  os << "  output double x[" << n << "];\n";
  // Forward substitution: one (possibly long) chained expression per row.
  for (int i = 0; i < n; ++i) {
    os << "  z[" << i << "] = b[" << i << "]";
    for (int k = 0; k < sym.nnz(); ++k) {
      if (sym.row[(size_t)k] == i)
        os << " - Lv[" << k << "]*z[" << sym.col[(size_t)k] << "]";
    }
    os << ";\n";
  }
  // Diagonal solve (multiplication by the stored inverse).
  for (int i = 0; i < n; ++i)
    os << "  w[" << i << "] = z[" << i << "] * dinv[" << i << "];\n";
  // Backward substitution.
  for (int i = n - 1; i >= 0; --i) {
    os << "  x[" << i << "] = w[" << i << "]";
    for (int k = 0; k < sym.nnz(); ++k) {
      if (sym.col[(size_t)k] == i)
        os << " - Lv[" << k << "]*x[" << sym.row[(size_t)k] << "]";
    }
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

std::string emit_ldlfactor_kernel(const std::vector<std::vector<bool>>& pattern,
                                  const LdlSymbolic& sym,
                                  const std::string& name) {
  const int n = sym.n;
  // K inputs: the diagonal (n entries) followed by the original strict
  // lower pattern entries, in column-major order.
  std::vector<int> krow, kcol;
  for (int j = 0; j < n; ++j) {
    for (int i = j + 1; i < n; ++i) {
      if (pattern[(size_t)i][(size_t)j]) {
        krow.push_back(i);
        kcol.push_back(j);
      }
    }
  }
  auto kfind = [&](int i, int j) {
    for (size_t k = 0; k < krow.size(); ++k)
      if (krow[k] == i && kcol[k] == j) return (int)k;
    return -1;
  };
  std::ostringstream os;
  os << "kernel " << name << " {\n";
  os << "  input double Kd[" << n << "];\n";
  os << "  input double Kl[" << std::max<size_t>(1, krow.size()) << "];\n";
  os << "  output double Lv[" << std::max(1, sym.nnz()) << "];\n";
  os << "  output double dd[" << n << "];\n";
  for (int j = 0; j < n; ++j) {
    // dd[j] = Kd[j] - sum Lv(j,s)^2 dd[s].
    os << "  dd[" << j << "] = Kd[" << j << "]";
    for (int k = 0; k < sym.nnz(); ++k) {
      if (sym.row[(size_t)k] == j) {
        os << " - Lv[" << k << "]*Lv[" << k << "]*dd[" << sym.col[(size_t)k]
           << "]";
      }
    }
    os << ";\n";
    for (int k = 0; k < sym.nnz(); ++k) {
      if (sym.col[(size_t)k] != j) continue;
      const int i = sym.row[(size_t)k];
      const int kk = kfind(i, j);
      os << "  Lv[" << k << "] = (" << (kk >= 0 ? "Kl[" + std::to_string(kk) + "]" : std::string("0"));
      for (int m = 0; m < sym.nnz(); ++m) {
        if (sym.row[(size_t)m] != i) continue;
        const int s = sym.col[(size_t)m];
        if (s >= j) continue;
        const int mj = sym.find(j, s);
        if (mj < 0) continue;
        os << " - Lv[" << m << "]*Lv[" << mj << "]*dd[" << s << "]";
      }
      os << ") / dd[" << j << "];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace csfma
