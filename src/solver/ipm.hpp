// A small primal log-barrier interior-point solver for the MPC QPs —
// the numeric reference the generated hardware kernels are validated
// against, and the engine of the trajectory-planning example.
//
// Solves   min 1/2 z'Qz + q'z   s.t.  Az = b,  lb <= z <= ub
// by Newton steps on the barrier-augmented KKT system (the same K = LDL'
// solve the generated ldlsolve() kernel performs), with a decreasing
// barrier parameter mu.
#pragma once

#include <vector>

#include "solver/qp.hpp"

namespace csfma {

struct IpmResult {
  std::vector<double> z;   // primal solution (size nz)
  int newton_steps = 0;
  bool converged = false;
  double objective = 0.0;
};

struct IpmOptions {
  double mu0 = 1.0;
  double mu_min = 1e-7;
  double mu_shrink = 0.2;
  int max_newton_per_mu = 20;
  double tol = 1e-8;
  double eps_reg = 1e-9;  // KKT regularization (the paper's -eps I block)
};

IpmResult solve_qp(const MpcProblem& p, const IpmOptions& opt = {});

/// Objective value 1/2 z'Qz + q'z.
double qp_objective(const MpcProblem& p, const std::vector<double>& z);

/// Max violation of the equality constraints |Az - b|_inf.
double eq_residual(const MpcProblem& p, const std::vector<double>& z);

}  // namespace csfma
