// Model-predictive trajectory-planning QPs — the paper's application
// domain (Sec. I: "trajectory planning during collision avoidance of
// autonomous ground vehicles", three solvers of increasing complexity).
//
// Vehicle model: 2D double integrator, state x = (px, py, vx, vy), input
// u = (ax, ay), discretized with step dt.  The QP over the stacked
// decision vector z = (u_0, x_1, u_1, x_2, ..., u_{T-1}, x_T):
//
//   minimize    1/2 z' Q z + q' z          (tracking + input effort)
//   subject to  A z = b                    (dynamics, 4 rows per step)
//               lb <= z_u <= ub            (acceleration box)
//
// Each interior-point iteration solves the quasi-definite KKT system
//
//   K = [ Q + Phi    A' ]
//       [ A        -eps*I ]
//
// whose LDL' factorization/solve is the ldlsolve() compute kernel the
// paper accelerates (Sec. IV-D).  Horizons 4 / 8 / 12 give the paper's
// "three solvers of increasing complexity" (KKT dimensions 40 / 80 / 120).
#pragma once

#include <vector>

#include "common/rng.hpp"

namespace csfma {

/// Simple dense symmetric/square matrix, row-major.
class Dense {
 public:
  Dense() : n_(0) {}
  explicit Dense(int n) : n_(n), a_((size_t)(n * n), 0.0) {}
  int n() const { return n_; }
  double& at(int i, int j) { return a_[(size_t)(i * n_ + j)]; }
  double at(int i, int j) const { return a_[(size_t)(i * n_ + j)]; }

 private:
  int n_;
  std::vector<double> a_;
};

struct MpcProblem {
  int horizon;      // T
  int nz;           // decision dim: 6*T
  int ne;           // equality rows: 4*T
  int nk;           // KKT dim: nz + ne
  double dt;

  std::vector<double> q_diag;  // cost diagonal (size nz)
  std::vector<double> q_lin;   // linear cost (size nz)
  Dense a_eq;                  // ne x nz dynamics constraints (stored dense)
  std::vector<double> b_eq;    // size ne
  std::vector<double> lb, ub;  // box on input entries (size nz, +-inf for states)

  std::vector<int> input_indices() const;  // z entries that are inputs

  /// CVXGEN-style stage-interleaved KKT ordering: the 6 decision variables
  /// and 4 dual variables of each stage sit together, keeping the KKT
  /// matrix banded (short rows, little fill) — the layout its generated
  /// ldlsolve() relies on.
  int kkt_var(int i) const { return 10 * (i / 6) + (i % 6); }
  int kkt_dual(int r) const { return 10 * (r / 4) + 6 + (r % 4); }
};

/// Build the trajectory-planning MPC QP for a given horizon.
/// `x0` is the current state (4), `xref` the target state (4);
/// `obstacle_halfspace` (optional, 5 coeffs: n_x px + n_y py <= c per step)
/// tightens the position of every step — the linearized collision-avoidance
/// constraint folds into the box/diagonal structure via penalty.
MpcProblem build_mpc(int horizon, const double x0[4], const double xref[4],
                     double dt = 0.25, double accel_limit = 4.0);

/// Upper bound structure of the KKT matrix (true where K may be nonzero).
std::vector<std::vector<bool>> kkt_pattern(const MpcProblem& p);

/// Fill the numeric KKT matrix for diagonal barrier weights `phi`
/// (size nz; zero for state entries) and regularization eps.
Dense kkt_matrix(const MpcProblem& p, const std::vector<double>& phi,
                 double eps);

}  // namespace csfma
