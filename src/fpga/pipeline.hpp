// Component chains and the pipeliner.
//
// Each architecture is described as a chain of components along its
// critical path (plus area-only side logic).  A component exposes
// `sub_delays` — the register-insertable granularity (e.g. one entry per
// CSA tree level); the pipeliner greedily packs sub-delays into stages
// whose delay fits the target clock period, reproducing the paper's
// "manually pipelined to 200 MHz operation" flow (Sec. IV-A).  A sub-delay
// longer than the period becomes a stage by itself and limits fmax — this
// is how the model reproduces FloPoCo's 190 MHz miss of the 200 MHz target.
#pragma once

#include <string>
#include <vector>

namespace csfma {

struct Area {
  int luts = 0;
  int dsps = 0;
  Area& operator+=(const Area& o) {
    luts += o.luts;
    dsps += o.dsps;
    return *this;
  }
};

struct Component {
  std::string name;
  std::vector<double> sub_delays;  // cut points allowed between entries
  Area area;
  bool off_critical_path = false;  // area counted, delay ignored (parallel)

  static Component atomic(std::string name, double delay_ns, Area area);
  /// `levels` equal slices of `per_level_ns` each.
  static Component layered(std::string name, int levels, double per_level_ns,
                           Area area);
  /// Area-only component running in parallel with the chain (e.g. LZA).
  static Component parallel(std::string name, Area area);

  double total_delay() const;
};

struct PipelineResult {
  int cycles = 0;
  double max_stage_ns = 0.0;
  double fmax_mhz = 0.0;
  std::vector<double> stage_delays;
};

class SignalTap;

/// Greedily cut the chain into stages of at most `target_period_ns`
/// (including `reg_overhead_ns` per stage for the pipeline register).
PipelineResult pipeline_chain(const std::vector<Component>& chain,
                              double target_period_ns, double reg_overhead_ns);

/// As above, additionally tracing each pipeline stage boundary into `tap`
/// (may be null): per stage, the registered delay in picoseconds, the
/// cumulative latency, and a comment listing the components packed into the
/// stage.  Probe names are `pipe.stage_delay_ps` / `pipe.cum_delay_ps`.
PipelineResult pipeline_chain(const std::vector<Component>& chain,
                              double target_period_ns, double reg_overhead_ns,
                              SignalTap* tap);

Area total_area(const std::vector<Component>& chain);

}  // namespace csfma
