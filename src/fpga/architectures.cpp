#include "fpga/architectures.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "cs/csa_tree.hpp"

namespace csfma {

namespace {

/// Adder logic delay excluding register overhead (the pipeliner adds the
/// per-stage register cost itself).
double add_logic(const Device& d, int n) {
  return d.adder_delay_ns(n) - d.reg_clk_to_q_ns - d.reg_setup_ns;
}

double lut_level(const Device& d) { return d.lut6_logic_ns + d.lut_route_ns; }

}  // namespace

std::vector<Component> build_coregen_mul(const Device& dev) {
  // 53x53 tiled onto 13 DSP48E blocks (the CoreGen full-precision double
  // multiplier), DSP cascade post-adds, then rounding/normalization.
  std::vector<Component> c;
  c.push_back(Component::atomic("in-route", 0.8, {40, 0}));
  c.push_back(Component::atomic("pp/dsp", dev.dsp_mult_ns, {60, 13}));
  c.push_back(Component::layered("dsp-cascade", 2, 1.55, {140, 0}));
  c.push_back(Component::atomic("final-add", add_logic(dev, 106), {106, 0}));
  c.push_back(Component::atomic("exp-add", add_logic(dev, 12), {40, 0}));
  c.push_back(Component::layered("norm", 2, lut_level(dev), {120, 0}));
  c.push_back(Component::atomic("sticky/exc", 1.2, {60, 0}));
  c.push_back(Component::atomic("round", add_logic(dev, 55), {60, 0}));
  c.push_back(Component::layered("pack", 2, lut_level(dev), {60, 0}));
  return c;
}

std::vector<Component> build_coregen_add(const Device& dev) {
  std::vector<Component> c;
  c.push_back(Component::atomic("exp-diff", add_logic(dev, 11), {40, 0}));
  c.push_back(Component::atomic("swap/compare", 0.9, {60, 0}));
  c.push_back(Component::layered("align-shift", 3, lut_level(dev), {170, 0}));
  c.push_back(Component::atomic("sticky", 1.1, {50, 0}));
  c.push_back(Component::atomic("mant-add", add_logic(dev, 56), {60, 0}));
  c.push_back(Component::parallel("lza", {110, 0}));
  c.push_back(Component::layered("norm-shift", 3, lut_level(dev), {110, 0}));
  c.push_back(Component::atomic("round", add_logic(dev, 55), {60, 0}));
  c.push_back(Component::atomic("exc/flags", 1.0, {27, 0}));
  c.push_back(Component::atomic("out-route", 0.9, {20, 0}));
  c.push_back(Component::layered("post-norm/pack", 2, lut_level(dev), {0, 0}));
  return c;
}

std::vector<Component> build_flopoco_fused(const Device& dev) {
  // FloPoCo FPPipeline: truncated 7-DSP multiplier with LUT correction
  // logic, fused into the adder; the wide single-level normalization
  // shifter is the stage that caps fmax below the 200 MHz target.
  std::vector<Component> c;
  c.push_back(Component::layered("unpack", 3, lut_level(dev), {60, 0}));
  c.push_back(Component::atomic("operand-regs", 1.6, {0, 0}));
  c.push_back(Component::atomic("in-route", 0.9, {50, 0}));
  c.push_back(Component::atomic("pp/dsp(trunc)", dev.dsp_mult_ns, {80, 7}));
  c.push_back(Component::atomic("mult-route", 1.8, {0, 0}));
  c.push_back(Component::atomic("trunc-sticky", 1.6, {60, 0}));
  c.push_back(Component::layered("lut-correction", 5, lut_level(dev), {300, 0}));
  c.push_back(Component::atomic("final-add", add_logic(dev, 106), {106, 0}));
  c.push_back(Component::atomic("exp-diff", add_logic(dev, 12), {40, 0}));
  c.push_back(Component::atomic("swap/compare", 0.9, {60, 0}));
  c.push_back(Component::layered("align-shift", 4, lut_level(dev), {180, 0}));
  c.push_back(Component::atomic("sticky", 1.1, {50, 0}));
  c.push_back(Component::atomic("mant-add", add_logic(dev, 58), {62, 0}));
  c.push_back(Component::atomic("two-path-select", 2.0, {120, 0}));
  c.push_back(Component::atomic("lzc+norm-shift", 4.61, {240, 0}));
  c.push_back(Component::atomic("round", add_logic(dev, 55), {60, 0}));
  c.push_back(Component::atomic("exp-update", 1.0, {40, 0}));
  c.push_back(Component::layered("post-norm", 2, lut_level(dev), {60, 0}));
  c.push_back(Component::atomic("exc-handling", 1.2, {60, 0}));
  c.push_back(Component::atomic("out-regs-route", 1.5, {0, 0}));
  c.push_back(Component::layered("pack", 2, lut_level(dev), {40, 0}));
  return c;
}

std::vector<Component> build_pcs_fma(const Device& dev) {
  // Fig 9.  Multiplier: 21 DSP tiles (ceil(110/17) x ceil(53/24)) whose
  // partial products reduce in a LUT CSA tree; C-rounding correction adds
  // one row (Fig 6).  A-path rounding + pre-shift run in parallel with the
  // multiply.  Then the 385b 3:2 adder, Carry Reduction (11b group
  // adders), the block Zero Detector and the 6:1 result multiplexer.
  std::vector<Component> c;
  const int tree_rows = 21 + 1;  // tiles + C-rounding correction row
  const int tree_levels = csa_levels_for_rows(tree_rows);
  c.push_back(Component::atomic("in-route", 0.9, {80, 0}));
  c.push_back(Component::atomic("mult/dsp-tiles", dev.dsp_mult_ns, {260, 21}));
  c.push_back(Component::layered("mult/csa-tree", tree_levels, lut_level(dev),
                                 {1700, 0}));
  c.push_back(Component::parallel("a-round+preshift", {980, 0}));
  c.push_back(Component::parallel("c-round", {310, 0}));
  c.push_back(Component::atomic("add/3:2", lut_level(dev), {770, 0}));
  c.push_back(
      Component::atomic("carry-reduce", add_logic(dev, 11) + 0.60, {700, 0}));
  c.push_back(Component::atomic("zd", 3 * lut_level(dev) + 1.2, {340, 0}));
  c.push_back(Component::layered("mux6:1", 2, lut_level(dev), {500, 0}));
  c.push_back(Component::atomic("exp/flags", add_logic(dev, 13), {110, 0}));
  c.push_back(Component::layered("result-route/pack", 2, lut_level(dev),
                                 {52, 0}));
  return c;
}

std::vector<Component> build_fcs_fma(const Device& dev) {
  CSFMA_CHECK_MSG(dev.has_preadder,
                  "FCS-FMA requires DSP pre-adders (Virtex-6 or later)");
  // Fig 11.  The pre-adders assimilate C's CS planes into the DSP ports,
  // removing the Carry Reduce step entirely; block selection comes from
  // the early LZA on the inputs (parallel), so after the 3:2 adder only
  // the 11:1 multiplexer remains on the critical path.
  std::vector<Component> c;
  const int tree_rows = 16 + 1;  // ceil(87/23)*ceil(53/17) tiles + C-round
  const int tree_levels = csa_levels_for_rows(tree_rows);
  c.push_back(Component::atomic("in-route", 0.6, {80, 0}));
  c.push_back(Component::atomic("mult/pre-add", dev.dsp_preadd_ns, {120, 0}));
  c.push_back(Component::atomic("mult/dsp-tiles", dev.dsp_mult_ns, {200, 12}));
  c.push_back(Component::layered("mult/csa-tree", tree_levels, lut_level(dev),
                                 {1300, 0}));
  c.push_back(Component::parallel("early-lza", {430, 0}));
  c.push_back(Component::parallel("a-round+preshift", {830, 0}));
  c.push_back(Component::parallel("c-round", {250, 0}));
  c.push_back(Component::atomic("add/3:2", lut_level(dev), {754, 0}));
  c.push_back(Component::layered("mux11:1", 3, lut_level(dev), {600, 0}));
  c.push_back(Component::atomic("exp/flags", add_logic(dev, 13), {100, 0}));
  c.push_back(Component::atomic("result-route/pack", 1.0, {101, 0}));
  return c;
}

std::vector<Component> build_fcs_fma_zd(const Device& dev) {
  std::vector<Component> base = build_fcs_fma(dev);
  std::vector<Component> c;
  for (auto& comp : base) {
    if (comp.name == "early-lza") continue;  // replaced by the ZD
    c.push_back(comp);
    if (comp.name == "add/3:2") {
      // The exact zero detector sits on the critical path between the
      // adder and the mux (13 blocks of digit pattern matching plus the
      // skip-priority chain) and "determines the total FMA latency".
      c.push_back(Component::atomic(
          "zd", 3 * (dev.lut6_logic_ns + dev.lut_route_ns) + 1.4, {500, 0}));
    }
  }
  return c;
}

SynthesisReport synthesize(const std::string& name,
                           const std::vector<Component>& chain,
                           const Device& dev, double target_mhz) {
  const double period = 1000.0 / target_mhz;
  const double reg = dev.reg_clk_to_q_ns + dev.reg_setup_ns;
  PipelineResult p = pipeline_chain(chain, period, reg);
  Area a = total_area(chain);
  SynthesisReport r;
  r.arch = name;
  r.fmax_mhz = p.fmax_mhz;
  r.cycles = p.cycles;
  r.luts = a.luts;
  r.dsps = a.dsps;
  return r;
}

SynthesisReport synthesize_coregen_pair(const Device& dev, double target_mhz) {
  SynthesisReport mul =
      synthesize("coregen-mul", build_coregen_mul(dev), dev, target_mhz);
  SynthesisReport add =
      synthesize("coregen-add", build_coregen_add(dev), dev, target_mhz);
  SynthesisReport r;
  r.arch = "Xilinx CoreGen";
  r.fmax_mhz = std::min(mul.fmax_mhz, add.fmax_mhz);
  r.cycles = mul.cycles + add.cycles;
  r.luts = mul.luts + add.luts;
  r.dsps = mul.dsps + add.dsps;
  return r;
}

std::vector<SynthesisReport> table1_reports(const Device& dev,
                                            double target_mhz) {
  std::vector<SynthesisReport> rows;
  rows.push_back(synthesize_coregen_pair(dev, target_mhz));
  rows.push_back(synthesize("FloPoCo FPPipeline", build_flopoco_fused(dev), dev,
                            target_mhz));
  rows.push_back(synthesize("PCS-FMA", build_pcs_fma(dev), dev, target_mhz));
  if (dev.has_preadder) {
    rows.push_back(synthesize("FCS-FMA", build_fcs_fma(dev), dev, target_mhz));
  }
  return rows;
}

}  // namespace csfma
