#include "fpga/device.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace csfma {

double Device::adder_delay_ns(int n) const {
  CSFMA_CHECK(n >= 1);
  const double base = reg_clk_to_q_ns + reg_setup_ns + carry_entry_ns;
  const double chain = n * carry_per_bit_ns;
  const double congestion =
      std::max(0, n - congestion_free_bits) * congestion_per_bit_ns;
  return base + chain + congestion;
}

double Device::lut_levels_ns(int levels) const {
  if (levels <= 0) return 0.0;
  return levels * (lut6_logic_ns + lut_route_ns);
}

Device virtex6() {
  Device d;
  d.name = "xc6vlx240t-1";
  d.family = "virtex6";
  // Base 1.5733 ns split across register overhead and chain entry; the sum
  // is what the paper's three datapoints pin down.
  d.reg_clk_to_q_ns = 0.40;
  d.reg_setup_ns = 0.25;
  d.carry_per_bit_ns = 0.092 / 6.0;  // 15.33 ps/bit  (5b vs 11b adder)
  // Base pinned so adder_delay_ns(5) == 1.650 exactly.
  d.carry_entry_ns =
      1.650 - 5 * d.carry_per_bit_ns - d.reg_clk_to_q_ns - d.reg_setup_ns;
  d.congestion_free_bits = 64;
  // Pinned so adder_delay_ns(385) == 8.95 exactly.
  const double base =
      d.reg_clk_to_q_ns + d.reg_setup_ns + d.carry_entry_ns;
  d.congestion_per_bit_ns =
      (8.95 - (base + 385 * d.carry_per_bit_ns)) / (385 - 64);
  d.lut6_logic_ns = 0.20;
  d.lut_route_ns = 0.42;
  d.dsp_mult_ns = 2.20;
  d.dsp_preadd_ns = 1.10;
  d.has_preadder = true;
  return d;
}

Device virtex5() {
  Device d = virtex6();
  d.name = "xc5vlx110t-1";
  d.family = "virtex5";
  // ~15% slower fabric, DSP48E without the pre-adder.
  d.reg_clk_to_q_ns *= 1.15;
  d.reg_setup_ns *= 1.15;
  d.carry_entry_ns *= 1.15;
  d.carry_per_bit_ns *= 1.15;
  d.congestion_per_bit_ns *= 1.15;
  d.lut6_logic_ns *= 1.15;
  d.lut_route_ns *= 1.15;
  d.dsp_mult_ns *= 1.15;
  d.dsp_preadd_ns = -1.0;
  d.has_preadder = false;
  return d;
}

Device virtex7() {
  Device d = virtex6();
  d.name = "xc7vx485t-1";
  d.family = "virtex7";
  // ~8% faster fabric, same DSP48E1 architecture.
  d.reg_clk_to_q_ns *= 0.92;
  d.reg_setup_ns *= 0.92;
  d.carry_entry_ns *= 0.92;
  d.carry_per_bit_ns *= 0.92;
  d.congestion_per_bit_ns *= 0.92;
  d.lut6_logic_ns *= 0.92;
  d.lut_route_ns *= 0.92;
  d.dsp_mult_ns *= 0.92;
  d.dsp_preadd_ns *= 0.92;
  return d;
}

}  // namespace csfma
