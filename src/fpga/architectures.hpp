// Structural models of the four Table I architectures.
//
// Each builder lays out the critical-path component chain (and the
// parallel, area-only side logic) of one design:
//   * Xilinx CoreGen: discrete "low latency" 5-cycle multiplier + 4-cycle
//     adder (the configuration the paper selected, Sec. IV-A),
//   * FloPoCo FPPipeline: fused multiply+add pipeline, smallest DSP count,
//     deepest pipeline, misses the 200 MHz target (190 MHz in Table I),
//   * PCS-FMA (Fig 9) and FCS-FMA (Fig 11).
//
// The DSP counts come from the multiplier tilings (21 = ceil(110/17) *
// ceil(53/24) for PCS, etc.); LUT counts from per-component width-scaled
// cost functions calibrated to the Table I totals; delays from the device
// model of device.hpp.  synthesize() pipelines the chain to the target
// clock, exactly the paper's flow.
#pragma once

#include <vector>

#include "fpga/device.hpp"
#include "fpga/pipeline.hpp"

namespace csfma {

struct SynthesisReport {
  std::string arch;
  double fmax_mhz = 0.0;
  int cycles = 0;
  int luts = 0;
  int dsps = 0;

  /// Fig 13's metric: minimum computation time for one multiply-add =
  /// minimum clock period x pipeline length.
  double min_ma_time_ns() const { return cycles * 1000.0 / fmax_mhz; }
};

std::vector<Component> build_coregen_mul(const Device& dev);
std::vector<Component> build_coregen_add(const Device& dev);
std::vector<Component> build_flopoco_fused(const Device& dev);
std::vector<Component> build_pcs_fma(const Device& dev);
/// Requires dev.has_preadder (Sec. III-H): checked.
std::vector<Component> build_fcs_fma(const Device& dev);

/// The FCS datapath with exact ZD-based block selection instead of the
/// early LZA (the Sec. III-F/III-G alternative): the ZD moves ONTO the
/// critical path after the adder and "determines the total FMA latency".
std::vector<Component> build_fcs_fma_zd(const Device& dev);

SynthesisReport synthesize(const std::string& name,
                           const std::vector<Component>& chain,
                           const Device& dev, double target_mhz);

/// CoreGen's discrete pair: cycles add up, fmax is the slower of the two.
SynthesisReport synthesize_coregen_pair(const Device& dev, double target_mhz);

/// All four Table I rows at the paper's 200 MHz constraint.
std::vector<SynthesisReport> table1_reports(const Device& dev,
                                            double target_mhz = 200.0);

}  // namespace csfma
