#include "fpga/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/check.hpp"
#include "introspect/signal_tap.hpp"

namespace csfma {

Component Component::atomic(std::string name, double delay_ns, Area area) {
  Component c;
  c.name = std::move(name);
  c.sub_delays = {delay_ns};
  c.area = area;
  return c;
}

Component Component::layered(std::string name, int levels, double per_level_ns,
                             Area area) {
  CSFMA_CHECK(levels >= 0);
  Component c;
  c.name = std::move(name);
  c.sub_delays.assign((size_t)levels, per_level_ns);
  c.area = area;
  return c;
}

Component Component::parallel(std::string name, Area area) {
  Component c;
  c.name = std::move(name);
  c.area = area;
  c.off_critical_path = true;
  return c;
}

double Component::total_delay() const {
  double t = 0;
  for (double d : sub_delays) t += d;
  return t;
}

namespace {

/// Greedy packing of sub-delays into stages of at most `budget` logic each.
/// `ends` (optional) receives, per stage, one past the index of its last
/// sub-delay.
std::vector<double> greedy_stages(const std::vector<double>& subs,
                                  double budget,
                                  std::vector<std::size_t>* ends = nullptr) {
  std::vector<double> stages;
  double cur = 0;
  for (std::size_t i = 0; i < subs.size(); ++i) {
    const double d = subs[i];
    if (cur > 0 && cur + d > budget) {
      stages.push_back(cur);
      if (ends != nullptr) ends->push_back(i);
      cur = 0;
    }
    cur += d;  // an oversized sub-delay occupies a stage alone
  }
  stages.push_back(cur);
  if (ends != nullptr) ends->push_back(subs.size());
  return stages;
}

}  // namespace

PipelineResult pipeline_chain(const std::vector<Component>& chain,
                              double target_period_ns, double reg_overhead_ns) {
  return pipeline_chain(chain, target_period_ns, reg_overhead_ns, nullptr);
}

PipelineResult pipeline_chain(const std::vector<Component>& chain,
                              double target_period_ns, double reg_overhead_ns,
                              SignalTap* tap) {
  CSFMA_CHECK(target_period_ns > reg_overhead_ns);
  std::vector<double> subs;
  std::vector<const std::string*> sub_owner;
  for (const auto& c : chain) {
    if (c.off_critical_path) continue;
    subs.insert(subs.end(), c.sub_delays.begin(), c.sub_delays.end());
    sub_owner.insert(sub_owner.end(), c.sub_delays.size(), &c.name);
  }
  PipelineResult r;
  if (subs.empty()) {
    r.cycles = 1;
    r.max_stage_ns = reg_overhead_ns;
    r.fmax_mhz = 1000.0 / r.max_stage_ns;
    r.stage_delays = {reg_overhead_ns};
    return r;
  }
  // Phase 1 — depth selection: the fewest stages that meet the target
  // clock (the paper picks the lowest-latency configuration achieving the
  // target, Sec. IV-A).
  const double budget = target_period_ns - reg_overhead_ns;
  const size_t stages_needed = greedy_stages(subs, budget).size();
  // Phase 2 — register balancing (the paper re-balances FloPoCo's pipeline
  // the same way): binary-search the smallest logic budget that still fits
  // in `stages_needed` stages.
  double lo = *std::max_element(subs.begin(), subs.end());
  double hi = budget;
  for (int it = 0; it < 48 && hi - lo > 1e-9; ++it) {
    double mid = 0.5 * (lo + hi);
    if (greedy_stages(subs, mid).size() <= stages_needed) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  std::vector<std::size_t> ends;
  std::vector<double> stages = greedy_stages(subs, hi, &ends);
  // Greedy at the balanced budget may use fewer stages than selected; the
  // extra registers only help fmax, so keep the selected depth.
  r.stage_delays.clear();
  for (double s : stages) r.stage_delays.push_back(s + reg_overhead_ns);
  while (r.stage_delays.size() < stages_needed) {
    r.stage_delays.push_back(reg_overhead_ns);
    ends.push_back(subs.size());  // register-only stage: no components
  }
  r.cycles = (int)r.stage_delays.size();
  r.max_stage_ns =
      *std::max_element(r.stage_delays.begin(), r.stage_delays.end());
  r.fmax_mhz = 1000.0 / r.max_stage_ns;
  if (tap != nullptr) {
    double cum = 0;
    std::size_t lo = 0;
    for (std::size_t i = 0; i < r.stage_delays.size(); ++i) {
      const std::size_t end = ends[i];
      std::string members;
      for (std::size_t j = lo; j < end; ++j) {
        if (!members.empty() && *sub_owner[j] == *sub_owner[j - 1]) continue;
        if (!members.empty()) members += ", ";
        members += *sub_owner[j];
      }
      tap->vcd().comment("pipe stage " + std::to_string(i) + ": " +
                         (members.empty() ? "registers only" : members));
      tap->begin_stage("s" + std::to_string(i));
      cum += r.stage_delays[i];
      tap->tap_u64("pipe.stage_delay_ps",
                   (std::uint64_t)std::llround(r.stage_delays[i] * 1000.0), 32);
      tap->tap_u64("pipe.cum_delay_ps",
                   (std::uint64_t)std::llround(cum * 1000.0), 32);
      lo = end;
    }
  }
  return r;
}

Area total_area(const std::vector<Component>& chain) {
  Area a;
  for (const auto& c : chain) a += c.area;
  return a;
}

}  // namespace csfma
