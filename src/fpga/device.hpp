// FPGA device timing/area database.
//
// The structural synthesis model (Table I, Fig 13) needs per-primitive
// delays.  The paper itself publishes three post-layout datapoints for a
// Virtex-6 speed grade -1 that calibrate the adder model exactly:
//
//   5b adder reg-to-reg   = 1.650 ns        (Sec. III-E)
//   11b adder reg-to-reg  = 1.742 ns        (Sec. III-E)
//   385b adder reg-to-reg = 8.95 ns         (Sec. III-D)
//
// From the first two: carry chain = (1.742-1.650)/6 = 15.33 ps/bit and a
// 1.5733 ns fixed base (clk-to-q + LUT entry + setup + local route).  The
// third pins a routing-congestion term for very wide buses: a linear extra
// of 4.59 ps/bit beyond 64 bits reproduces 8.95 ns at 385 bits.
//
// The remaining primitive constants (LUT6 logic level, DSP48E stages, mux
// levels) are set to representative Virtex-6 -1 values and tuned so the
// four Table I designs land near the paper's fmax/cycles (the bench prints
// model vs. paper side by side).
#pragma once

#include <string>

namespace csfma {

struct Device {
  std::string name;
  std::string family;

  // Registers.
  double reg_clk_to_q_ns;
  double reg_setup_ns;

  // LUT fabric.
  double lut6_logic_ns;   // one LUT6 level
  double lut_route_ns;    // average local routing per logic level

  // Carry chains (CARRY4).
  double carry_entry_ns;     // entering/leaving the chain
  double carry_per_bit_ns;   // per-bit propagation
  double congestion_per_bit_ns;  // extra routing for very wide buses
  int congestion_free_bits;      // width at which congestion starts

  // DSP blocks.
  double dsp_mult_ns;     // multiplier stage (registered input to M reg)
  double dsp_preadd_ns;   // pre-adder stage (DSP48E1; <0 when absent)
  bool has_preadder;

  /// Register-to-register delay of a plain ripple/carry-chain adder of
  /// width n — the calibrated model above.
  double adder_delay_ns(int n) const;

  /// Delay of `levels` LUT6 logic levels including routing.
  double lut_levels_ns(int levels) const;
};

/// Xilinx Virtex-5 (-1): no DSP pre-adder — the PCS-FMA's portability
/// target (Sec. III).
Device virtex5();
/// Xilinx Virtex-6 (-1): the paper's evaluation device (Sec. IV).
Device virtex6();
/// Xilinx Virtex-7 (-1): same architecture as -6, slightly faster fabric.
Device virtex7();

}  // namespace csfma
