// The control-data-flow-graph IR of the Nymble-like HLS flow (Sec. III-I).
//
// Solver kernels are straight-line floating-point dataflow (the paper's
// Listing 1), so the IR is a pure dataflow graph over binary64 values with
// two extra value kinds for the custom formats: a CS-typed edge carries a
// PCS or FCS operand between fused units.  The FMA-insertion pass rewrites
//   add(x, mul(b, c))  -->  cvt_from_cs(fma(cvt_to_cs(x), b, cvt_to_cs(c)))
// and then elides back-to-back cvt pairs so chained FMAs stay in CS format.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace csfma {

enum class OpKind : std::uint8_t {
  Input,      // named external input
  Const,      // immediate double
  Output,     // named external output (single arg)
  Add,        // a + b
  Sub,        // a - b
  Mul,        // a * b
  Div,        // a / b
  Neg,        // -a (sign flip; free in hardware)
  Fma,        // a + b*c  (a, c in CS format; b IEEE)
  Dot,        // sum_i a_i*b_i, fused (2N IEEE args; CS result; PCS only)
  CvtToCs,    // IEEE -> PCS/FCS operand (chain entry)
  CvtFromCs,  // PCS/FCS operand -> IEEE (chain exit: assimilate+round)
};

const char* to_string(OpKind k);

/// Which carry-save FMA implementation a Fma/Cvt node uses.
enum class FmaStyle : std::uint8_t { None, Pcs, Fcs };

/// Value type carried by an edge.
enum class ValueType : std::uint8_t { Ieee, Cs };

struct Node {
  int id = -1;
  OpKind kind = OpKind::Const;
  std::vector<int> args;
  double const_value = 0.0;  // Const only
  std::string name;          // Input/Output only
  FmaStyle style = FmaStyle::None;
  bool dead = false;

  int arity() const { return (int)args.size(); }
};

class Cdfg {
 public:
  int add_input(const std::string& name);
  int add_const(double v);
  int add_output(const std::string& name, int value);
  int add_op(OpKind kind, std::vector<int> args, FmaStyle style = FmaStyle::None);

  const Node& node(int id) const;
  Node& node(int id);
  int num_nodes() const { return (int)nodes_.size(); }

  /// Live (non-dead) node ids in creation order.
  std::vector<int> live_nodes() const;
  /// Live node ids in a topological order (inputs/consts first).
  std::vector<int> topo_order() const;
  /// ids of nodes that use `id` as an argument.
  std::vector<int> users(int id) const;

  /// Replace every use of `old_id` with `new_id` (Output args included).
  void replace_uses(int old_id, int new_id);
  void mark_dead(int id);
  /// Mark nodes unreachable from outputs dead.  Returns removed count.
  int prune_dead();

  /// Result type of a node.
  ValueType value_type(int id) const;
  /// Check arities, argument liveness and CS/IEEE typing. Throws on error.
  void validate() const;

  /// Count of live nodes of a kind.
  int count(OpKind kind) const;

  std::string to_string() const;

  /// Graphviz dot export (CS-typed edges drawn bold, like the paper's
  /// Fig 1/12 critical-path rendering).
  std::string to_dot(const std::string& graph_name = "cdfg") const;

 private:
  std::vector<Node> nodes_;
};

/// Rebuild a graph containing only live nodes, renumbered in topological
/// order (transform passes append nodes out of order; this restores the
/// args-precede-node invariant validate() checks).
Cdfg rebuild_topo(const Cdfg& g);

}  // namespace csfma
