// Sum-tree reassociation: rewrite maximal add/sub chains into balanced
// binary trees, shrinking their depth from O(N) to O(log N) adder
// latencies.
//
// This is the classic alternative to fusing: a balanced discrete tree
// competes with the FMA chain on long rows — but balancing destroys the
// multiply/add PAIR structure the Sec. III-I pass matches on the critical
// path, so the two transforms interact (the ablation bench quantifies the
// trade).  Floating-point addition is not associative, so the pass changes
// results within the usual reassociation error bounds; the tests check the
// envelope, and the HLS flow applies it only where the tool's accuracy
// policy allows (as real HLS compilers do with "fast-math" style flags).
#pragma once

#include "hls/ir.hpp"
#include "hls/oplib.hpp"

namespace csfma {

struct ReassociateStats {
  int trees_rebalanced = 0;
  int terms = 0;  // total leaves across rebalanced trees
};

/// Rewrite every maximal add/sub tree with at least `min_terms` leaves
/// into a balanced tree (criticality is not required: balancing never
/// hurts depth).
ReassociateStats reassociate_sums(Cdfg& g, const OperatorLibrary& lib,
                                  int min_terms = 3);

}  // namespace csfma
