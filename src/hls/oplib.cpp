#include "hls/oplib.hpp"

namespace csfma {

OperatorLibrary OperatorLibrary::for_device(const Device& dev,
                                            double target_mhz) {
  OperatorLibrary lib;
  SynthesisReport mul =
      synthesize("mul", build_coregen_mul(dev), dev, target_mhz);
  SynthesisReport add =
      synthesize("add", build_coregen_add(dev), dev, target_mhz);
  lib.mul_ = {mul.cycles, mul.luts, mul.dsps};
  lib.add_ = {add.cycles, add.luts, add.dsps};
  lib.sub_ = lib.add_;
  // CoreGen's double divider at 200 MHz: deep digit-recurrence pipeline.
  lib.div_ = {28, 3200, 0};
  lib.neg_ = {0, 0, 0};  // sign flip is wiring

  SynthesisReport pcs =
      synthesize("pcs", build_pcs_fma(dev), dev, target_mhz);
  lib.fma_pcs_ = {pcs.cycles, pcs.luts, pcs.dsps};
  if (dev.has_preadder) {
    SynthesisReport fcs =
        synthesize("fcs", build_fcs_fma(dev), dev, target_mhz);
    lib.fma_fcs_ = {fcs.cycles, fcs.luts, fcs.dsps};
  } else {
    lib.fma_fcs_ = {0, 0, 0};  // unavailable; pass must not use it
  }
  // IEEE -> CS: significand placement, one register stage.
  lib.cvt_to_pcs_ = {1, 120, 0};
  lib.cvt_to_fcs_ = {1, 100, 0};
  // CS -> IEEE: assimilate (wide add, internally pipelined) + normalize +
  // round; three stages at 200 MHz.
  lib.cvt_from_pcs_ = {3, 520, 0};
  lib.cvt_from_fcs_ = {3, 420, 0};
  return lib;
}

OpAttr OperatorLibrary::dot_attr(int pairs) const {
  CSFMA_CHECK(pairs >= 1);
  // Back end (carry reduce + ZD + 6:1 mux + exponent) pipelines like the
  // PCS-FMA's; each doubling of the product rows adds one tree stage.
  int levels = 0;
  for (int n = pairs; n > 1; n = (n + 1) / 2) ++levels;
  OpAttr a;
  a.latency = 4 + levels;
  a.luts = 900 + 360 * pairs;
  a.dsps = 12 * pairs;
  return a;
}

OpAttr OperatorLibrary::attr(OpKind kind, FmaStyle style) const {
  switch (kind) {
    case OpKind::Input:
    case OpKind::Const:
    case OpKind::Output:
      return {0, 0, 0};
    case OpKind::Add:
      return add_;
    case OpKind::Sub:
      return sub_;
    case OpKind::Mul:
      return mul_;
    case OpKind::Div:
      return div_;
    case OpKind::Neg:
      return neg_;
    case OpKind::Fma:
      CSFMA_CHECK(style != FmaStyle::None);
      return style == FmaStyle::Pcs ? fma_pcs_ : fma_fcs_;
    case OpKind::Dot:
      return dot_attr(2);  // schedulers query per-node via latency_of
    case OpKind::CvtToCs:
      CSFMA_CHECK(style != FmaStyle::None);
      return style == FmaStyle::Pcs ? cvt_to_pcs_ : cvt_to_fcs_;
    case OpKind::CvtFromCs:
      CSFMA_CHECK(style != FmaStyle::None);
      return style == FmaStyle::Pcs ? cvt_from_pcs_ : cvt_from_fcs_;
  }
  CSFMA_CHECK(false);
  return {};
}

void OperatorLibrary::set(OpKind kind, FmaStyle style, OpAttr attr) {
  switch (kind) {
    case OpKind::Add: add_ = attr; return;
    case OpKind::Sub: sub_ = attr; return;
    case OpKind::Mul: mul_ = attr; return;
    case OpKind::Div: div_ = attr; return;
    case OpKind::Neg: neg_ = attr; return;
    case OpKind::Fma:
      (style == FmaStyle::Pcs ? fma_pcs_ : fma_fcs_) = attr;
      return;
    case OpKind::CvtToCs:
      (style == FmaStyle::Pcs ? cvt_to_pcs_ : cvt_to_fcs_) = attr;
      return;
    case OpKind::CvtFromCs:
      (style == FmaStyle::Pcs ? cvt_from_pcs_ : cvt_from_fcs_) = attr;
      return;
    default:
      CSFMA_CHECK_MSG(false, "operator has no attribute entry");
  }
}

}  // namespace csfma
