#include "hls/schedule.hpp"

#include <algorithm>
#include <climits>
#include <map>
#include <queue>
#include <sstream>

namespace csfma {

namespace {

int latency_of(const Cdfg& g, const OperatorLibrary& lib, int id) {
  const Node& n = g.node(id);
  if (n.kind == OpKind::Dot) return lib.dot_attr(n.arity() / 2).latency;
  return lib.attr(n.kind, n.style).latency;
}

}  // namespace

Schedule schedule_asap(const Cdfg& g, const OperatorLibrary& lib) {
  Schedule s;
  s.start.assign((size_t)g.num_nodes(), -1);
  for (int id : g.topo_order()) {
    const Node& n = g.node(id);
    int t = 0;
    for (int a : n.args) {
      t = std::max(t, s.start[(size_t)a] + latency_of(g, lib, a));
    }
    s.start[(size_t)id] = t;
    s.length = std::max(s.length, t + latency_of(g, lib, id));
  }
  return s;
}

Schedule schedule_alap(const Cdfg& g, const OperatorLibrary& lib,
                       int target_length) {
  Schedule s;
  s.start.assign((size_t)g.num_nodes(), -1);
  s.length = target_length;
  auto order = g.topo_order();
  // Latest finish defaults to target_length; walk in reverse.
  std::vector<int> latest_finish((size_t)g.num_nodes(),
                                 std::numeric_limits<int>::max());
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    int id = *it;
    int lf = latest_finish[(size_t)id];
    if (lf == std::numeric_limits<int>::max()) lf = target_length;
    int start = lf - latency_of(g, lib, id);
    s.start[(size_t)id] = start;
    for (int a : g.node(id).args) {
      latest_finish[(size_t)a] = std::min(latest_finish[(size_t)a], start);
    }
  }
  return s;
}

std::vector<bool> critical_nodes(const Cdfg& g, const OperatorLibrary& lib) {
  Schedule asap = schedule_asap(g, lib);
  Schedule alap = schedule_alap(g, lib, asap.length);
  std::vector<bool> crit((size_t)g.num_nodes(), false);
  for (int id : g.live_nodes()) {
    crit[(size_t)id] = asap.start[(size_t)id] == alap.start[(size_t)id];
  }
  return crit;
}

Schedule schedule_list(const Cdfg& g, const OperatorLibrary& lib,
                       const ResourceLimits& limits) {
  // Priority: longest latency path from node to any sink (computed on the
  // reversed graph).
  const auto order = g.topo_order();
  std::vector<int> path((size_t)g.num_nodes(), 0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    int id = *it;
    int best = 0;
    for (int u : g.users(id)) best = std::max(best, path[(size_t)u]);
    path[(size_t)id] = best + latency_of(g, lib, id);
  }

  auto limit_of = [&limits](OpKind k) {
    switch (k) {
      case OpKind::Mul: return limits.mul;
      case OpKind::Add:
      case OpKind::Sub: return limits.add_sub;
      case OpKind::Div: return limits.div;
      case OpKind::Fma: return limits.fma;
      default: return 0;  // conversions/moves unconstrained
    }
  };
  auto pool_of = [](OpKind k) {
    switch (k) {
      case OpKind::Mul: return 0;
      case OpKind::Add:
      case OpKind::Sub: return 1;
      case OpKind::Div: return 2;
      case OpKind::Fma: return 3;
      default: return 4;
    }
  };

  Schedule s;
  s.start.assign((size_t)g.num_nodes(), -1);
  std::vector<int> remaining_deps((size_t)g.num_nodes(), 0);
  std::vector<int> avail((size_t)g.num_nodes(), 0);  // max producer finish
  std::vector<std::vector<int>> ready_at;  // per cycle, node ids becoming ready
  auto ensure_cycle = [&ready_at](size_t c) {
    if (ready_at.size() <= c) ready_at.resize(c + 1);
  };

  // Ready list keyed by priority.
  auto cmp = [&path](int a, int b) { return path[(size_t)a] < path[(size_t)b]; };
  std::priority_queue<int, std::vector<int>, decltype(cmp)> ready(cmp);

  int live_count = 0;
  for (int id : order) {
    remaining_deps[(size_t)id] = g.node(id).arity();
    ++live_count;
    if (remaining_deps[(size_t)id] == 0) ready.push(id);
  }

  int scheduled = 0;
  std::map<int, int> issued_this_cycle;  // pool -> count
  int cycle = 0;
  std::vector<int> deferred;
  while (scheduled < live_count) {
    issued_this_cycle.clear();
    ensure_cycle((size_t)cycle);
    for (int id : ready_at[(size_t)cycle]) ready.push(id);
    deferred.clear();
    while (!ready.empty()) {
      int id = ready.top();
      ready.pop();
      const Node& n = g.node(id);
      const int lim = limit_of(n.kind);
      const int pool = pool_of(n.kind);
      if (lim > 0 && issued_this_cycle[pool] >= lim) {
        deferred.push_back(id);
        continue;
      }
      ++issued_this_cycle[pool];
      s.start[(size_t)id] = cycle;
      ++scheduled;
      const int done = cycle + latency_of(g, lib, id);
      s.length = std::max(s.length, done);
      for (int u : g.users(id)) {
        avail[(size_t)u] = std::max(avail[(size_t)u], done);
        if (--remaining_deps[(size_t)u] == 0) {
          // Ready when the LAST-finishing producer delivers, which is not
          // necessarily the producer whose decrement reached zero.
          const int at = avail[(size_t)u];
          if (at == cycle) {
            ready.push(u);  // zero-latency producers chain in-cycle
          } else {
            ensure_cycle((size_t)at);
            ready_at[(size_t)at].push_back(u);
          }
        }
      }
    }
    for (int id : deferred) {
      ensure_cycle((size_t)cycle + 1);
      ready_at[(size_t)cycle + 1].push_back(id);
    }
    ++cycle;
    CSFMA_CHECK_MSG(cycle < 10'000'000, "list scheduler runaway");
  }
  return s;
}

std::string schedule_report(const Cdfg& g, const OperatorLibrary& lib,
                            const Schedule& s) {
  struct KindStat {
    int count = 0;
    int first = INT_MAX, last = -1;
  };
  std::map<std::string, KindStat> kinds;
  std::map<int, int> issues_per_cycle;
  for (int id : g.live_nodes()) {
    const Node& n = g.node(id);
    if (n.kind == OpKind::Input || n.kind == OpKind::Const ||
        n.kind == OpKind::Output)
      continue;
    KindStat& k = kinds[to_string(n.kind)];
    const int t = s.start[(size_t)id];
    ++k.count;
    k.first = std::min(k.first, t);
    k.last = std::max(k.last, t);
    ++issues_per_cycle[t];
  }
  std::ostringstream os;
  os << "schedule: " << s.length << " cycles\n";
  for (const auto& [name, k] : kinds) {
    os << "  " << name << ": " << k.count << " ops, issued in cycles ["
       << k.first << ", " << k.last << "]\n";
  }
  int peak = 0;
  for (const auto& [cycle, n] : issues_per_cycle) peak = std::max(peak, n);
  os << "  peak issue width: " << peak << " ops/cycle\n";
  (void)lib;
  return os.str();
}

void record_schedule_metrics(const Cdfg& g, const OperatorLibrary& lib,
                             const Schedule& s, MetricsRegistry& m,
                             const std::string& prefix) {
  std::map<int, std::uint64_t> issues_per_cycle;
  for (int id : g.live_nodes()) {
    const Node& n = g.node(id);
    if (n.kind == OpKind::Input || n.kind == OpKind::Const ||
        n.kind == OpKind::Output)
      continue;
    m.counter(prefix + ".ops." + to_string(n.kind)).add(1);
    m.counter(prefix + ".ops").add(1);
    ++issues_per_cycle[s.start[(size_t)id]];
  }
  Histogram& widths =
      m.histogram(prefix + ".issue_width", {1, 2, 4, 8, 16, 32, 64});
  std::uint64_t peak = 0;
  for (const auto& [cycle, n] : issues_per_cycle) {
    widths.observe((double)n);
    peak = std::max(peak, n);
  }
  m.gauge(prefix + ".length").set((double)s.length);
  m.gauge(prefix + ".peak_issue_width").set((double)peak);
  (void)lib;
}

}  // namespace csfma
