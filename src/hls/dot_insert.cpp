#include "hls/dot_insert.hpp"

#include <vector>

#include "hls/schedule.hpp"

namespace csfma {

namespace {

struct Term {
  int value;     // leaf node id
  bool negated;  // sign of the term in the sum
};

/// Collect the additive terms of the maximal add/sub tree rooted at `id`.
/// Internal nodes must be single-use adds/subs; returns false if the tree
/// grows beyond `max_terms` leaves.
bool collect_terms(const Cdfg& g, int id, bool negated, bool is_root,
                   int max_terms, std::vector<Term>* terms,
                   std::vector<int>* internal) {
  const Node& n = g.node(id);
  const bool is_sum = n.kind == OpKind::Add || n.kind == OpKind::Sub;
  if (is_sum && (is_root || g.users(id).size() == 1)) {
    internal->push_back(id);
    if (!collect_terms(g, n.args[0], negated, false, max_terms, terms,
                       internal))
      return false;
    const bool rhs_neg = n.kind == OpKind::Sub ? !negated : negated;
    return collect_terms(g, n.args[1], rhs_neg, false, max_terms, terms,
                         internal);
  }
  if ((int)terms->size() >= max_terms) return false;
  terms->push_back({id, negated});
  return true;
}

}  // namespace

DotInsertStats insert_dot_products(Cdfg& g, const OperatorLibrary& lib,
                                   int max_terms) {
  DotInsertStats stats;
  for (;;) {
    ++stats.rounds;
    std::vector<bool> crit = critical_nodes(g, lib);
    bool changed = false;
    for (int id : g.topo_order()) {
      const Node& n = g.node(id);
      if (n.dead || (n.kind != OpKind::Add && n.kind != OpKind::Sub)) continue;
      if (!crit[(size_t)id]) continue;
      // Only maximal trees: the root must not itself feed another
      // single-use add/sub (that bigger tree will be found instead).
      auto users = g.users(id);
      if (users.size() == 1) {
        OpKind uk = g.node(users[0]).kind;
        if (uk == OpKind::Add || uk == OpKind::Sub) continue;
      }
      std::vector<Term> terms;
      std::vector<int> internal;
      if (!collect_terms(g, id, false, true, max_terms, &terms, &internal))
        continue;
      // Count fusable product leaves.
      int product_leaves = 0;
      for (const Term& t : terms) {
        const Node& leaf = g.node(t.value);
        if (leaf.kind == OpKind::Mul && g.users(t.value).size() == 1)
          ++product_leaves;
      }
      if (product_leaves < 2) continue;

      // Build the pair list.
      std::vector<int> args;
      const int one = g.add_const(1.0);
      const int minus_one = g.add_const(-1.0);
      for (const Term& t : terms) {
        const Node& leaf = g.node(t.value);
        if (leaf.kind == OpKind::Mul && g.users(t.value).size() == 1) {
          int x = leaf.args[0], y = leaf.args[1];
          if (t.negated) x = g.add_op(OpKind::Neg, {x});
          args.push_back(x);
          args.push_back(y);
          g.mark_dead(t.value);
        } else {
          args.push_back(t.negated ? minus_one : one);
          args.push_back(t.value);
        }
      }
      const int dot = g.add_op(OpKind::Dot, std::move(args), FmaStyle::Pcs);
      const int back = g.add_op(OpKind::CvtFromCs, {dot}, FmaStyle::Pcs);
      g.replace_uses(id, back);
      for (int t : internal) g.mark_dead(t);
      stats.dots_inserted += 1;
      stats.terms_fused += (int)terms.size();
      changed = true;
      break;  // the graph changed: recompute criticality
    }
    if (!changed) break;
    g.prune_dead();
    g = rebuild_topo(g);
    g.validate();
    CSFMA_CHECK_MSG(stats.rounds < 100000, "dot insertion did not converge");
  }
  return stats;
}

}  // namespace csfma
