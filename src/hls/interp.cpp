#include "hls/interp.hpp"

#include <vector>

#include "fma/dot_product.hpp"
#include "fma/fcs_fma.hpp"
#include "fma/pcs_fma.hpp"

namespace csfma {

namespace {

/// A wire value: IEEE or one of the CS operand formats.
struct Val {
  ValueType type = ValueType::Ieee;
  FmaStyle style = FmaStyle::None;
  PFloat ieee;
  PcsOperand pcs;
  FcsOperand fcs;
};

}  // namespace

std::map<std::string, double> Evaluator::run(
    const std::map<std::string, double>& inputs) const {
  return run_batch({inputs}).front();
}

std::vector<std::map<std::string, double>> Evaluator::run_batch(
    const std::vector<std::map<std::string, double>>& inputs_batch) const {
  // Per-sample setup is hoisted out of the sample loop: the wire-value
  // workspace, the unit simulators and the topological order are built once
  // for the whole batch (kernel sweeps push thousands of samples through
  // the same CDFG).
  std::vector<Val> vals((size_t)g_.num_nodes());
  PcsFma pcs_unit;
  FcsFma fcs_unit;
  PcsDotProduct dot_unit;
  const Round exit_rm = Round::HalfAwayFromZero;
  const std::vector<int> topo = g_.topo_order();

  TraceSpan span(trace_, "interp", "hls");
  span.arg("samples", (std::uint64_t)inputs_batch.size());
  if (metrics_ != nullptr && !inputs_batch.empty()) {
    // Executed op mix = static per-kind node counts x sample count; a pure
    // function of the CDFG, so these counters are Deterministic.
    const std::uint64_t samples = inputs_batch.size();
    std::map<OpKind, std::uint64_t> mix;
    for (int id : topo) mix[g_.node(id).kind] += 1;
    for (const auto& [kind, count] : mix) {
      metrics_->counter(std::string("hls.interp.ops.") + to_string(kind))
          .add(count * samples);
    }
    metrics_->counter("hls.interp.samples").add(samples);
    metrics_->counter("hls.interp.batches").add(1);
  }

  auto eval_one = [&](const std::map<std::string, double>& inputs) {
    std::map<std::string, double> outputs;
    for (int id : topo) {
      const Node& n = g_.node(id);
      Val& v = vals[(size_t)id];
      auto in = [&](int i) -> const Val& {
        return vals[(size_t)n.args[(size_t)i]];
      };
      auto bin64 = [&](OpKind k, const PFloat& a, const PFloat& b) {
        switch (k) {
          case OpKind::Add:
            return PFloat::add(a, b, kBinary64, Round::NearestEven);
          case OpKind::Sub:
            return PFloat::sub(a, b, kBinary64, Round::NearestEven);
          case OpKind::Mul:
            return PFloat::mul(a, b, kBinary64, Round::NearestEven);
          case OpKind::Div:
            return PFloat::div(a, b, kBinary64, Round::NearestEven);
          default:
            CSFMA_CHECK(false);
            return PFloat::nan(kBinary64);
        }
      };
      switch (n.kind) {
        case OpKind::Input: {
          auto it = inputs.find(n.name);
          CSFMA_CHECK_MSG(it != inputs.end(), "missing input " << n.name);
          v.ieee = PFloat::from_double(kBinary64, it->second);
          break;
        }
        case OpKind::Const:
          v.ieee = PFloat::from_double(kBinary64, n.const_value);
          break;
        case OpKind::Output:
          outputs[n.name] = in(0).ieee.to_double();
          break;
        case OpKind::Add:
        case OpKind::Sub:
        case OpKind::Mul:
        case OpKind::Div:
          v.ieee = bin64(n.kind, in(0).ieee, in(1).ieee);
          break;
        case OpKind::Neg:
          v.ieee = in(0).ieee.negated();
          break;
        case OpKind::CvtToCs:
          v.type = ValueType::Cs;
          v.style = n.style;
          if (n.style == FmaStyle::Pcs) {
            v.pcs = ieee_to_pcs(in(0).ieee);
          } else {
            v.fcs = ieee_to_fcs(in(0).ieee);
          }
          break;
        case OpKind::CvtFromCs:
          if (n.style == FmaStyle::Pcs) {
            v.ieee = pcs_to_ieee(in(0).pcs, kBinary64, exit_rm);
          } else {
            v.ieee = fcs_to_ieee(in(0).fcs, kBinary64, exit_rm);
          }
          break;
        case OpKind::Dot: {
          v.type = ValueType::Cs;
          v.style = n.style;
          std::vector<std::pair<PFloat, PFloat>> terms;
          for (int i = 0; i + 1 < n.arity(); i += 2)
            terms.emplace_back(in(i).ieee, in(i + 1).ieee);
          v.pcs = dot_unit.dot(terms);
          break;
        }
        case OpKind::Fma:
          v.type = ValueType::Cs;
          v.style = n.style;
          if (n.style == FmaStyle::Pcs) {
            v.pcs = pcs_unit.fma(in(0).pcs, in(1).ieee, in(2).pcs);
          } else {
            v.fcs = fcs_unit.fma(in(0).fcs, in(1).ieee, in(2).fcs);
          }
          break;
      }
    }
    return outputs;
  };

  std::vector<std::map<std::string, double>> outputs_batch;
  outputs_batch.reserve(inputs_batch.size());
  for (const auto& inputs : inputs_batch)
    outputs_batch.push_back(eval_one(inputs));
  return outputs_batch;
}

}  // namespace csfma
