// Operator library: latency (cycles at the 200 MHz system clock) and area
// per CDFG operation — the attributes the scheduler and the FMA-insertion
// pass work with.
//
// The baseline latencies are the paper's CoreGen configuration (Sec. IV-A:
// "low latency" 5-cycle multiplier, 4-cycle adder); the FMA latencies are
// the Table I pipeline depths (PCS 5, FCS 3).  Conversions: IEEE->CS is
// significand placement (wiring + one register), CS->IEEE assimilates the
// 165/116-digit operand and normalizes+rounds (a deep adder + shifter,
// pipelined over several cycles).
#pragma once

#include "fpga/architectures.hpp"
#include "hls/ir.hpp"

namespace csfma {

struct OpAttr {
  int latency = 1;  // cycles from operand availability to result
  int luts = 0;
  int dsps = 0;
};

class OperatorLibrary {
 public:
  /// The paper's setup: CoreGen discrete operators + both FMA styles,
  /// with latencies/areas derived from the fpga/ synthesis model for
  /// `dev` at `target_mhz`.
  static OperatorLibrary for_device(const Device& dev, double target_mhz = 200.0);

  OpAttr attr(OpKind kind, FmaStyle style = FmaStyle::None) const;

  /// The fused dot-product unit's attributes depend on its term count:
  /// the CSA tree deepens logarithmically, the PCS back end is fixed.
  OpAttr dot_attr(int pairs) const;

  /// Override one entry (ablation benches).
  void set(OpKind kind, FmaStyle style, OpAttr attr);

 private:
  OpAttr add_, sub_, mul_, div_, neg_;
  OpAttr fma_pcs_, fma_fcs_;
  OpAttr cvt_to_pcs_, cvt_from_pcs_, cvt_to_fcs_, cvt_from_fcs_;
};

}  // namespace csfma
