// Fused dot-product insertion — an extension pass in the spirit of
// Sec. III-I, mapping critical sum-of-products TREES onto the fused
// PcsDotProduct unit (src/fma/dot_product.hpp) instead of chains of FMAs.
//
// A maximal critical add/sub tree whose internal nodes are single-use and
// whose leaves are either single-use multiplies or arbitrary IEEE values
// becomes ONE Dot node:
//
//   b - L0*z0 - L1*z1 + x   -->   dot( 1*b, (-L0)*z0, (-L1)*z1, 1*x )
//
// (non-product leaves ride along as 1*leaf pairs; subtrahend signs fold
// into Neg of one factor — free in hardware).  The pay-off vs the FMA
// chain: the dot's CSA tree sums all terms in log depth, so long rows
// collapse from O(N) chained FMAs to one unit.
#pragma once

#include "hls/ir.hpp"
#include "hls/oplib.hpp"

namespace csfma {

struct DotInsertStats {
  int dots_inserted = 0;
  int terms_fused = 0;  // total pairs across all inserted dots
  int rounds = 0;
};

/// Run the pass in place.  Trees with more than `max_terms` pairs are left
/// alone (operand bandwidth / DSP budget bound); trees with fewer than 2
/// product leaves are not worth a unit.
DotInsertStats insert_dot_products(Cdfg& g, const OperatorLibrary& lib,
                                   int max_terms = 16);

}  // namespace csfma
