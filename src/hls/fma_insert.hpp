// The automatic P/FCS-FMA insertion pass (Sec. III-I, Fig 12).
//
// The datapath is first assembled from IEEE 754 operators and scheduled.
// Then, iteratively:
//   1. find multiply/add(or sub) pairs where both operations lie on the
//      critical path (zero slack) and the multiply result has no other
//      user, and greedily replace each pair with a P/FCS-FMA unit wrapped
//      in CvtToCs / CvtFromCs conversions (Fig 12b);
//   2. remove redundant conversion pairs between adjacent FMA units
//      (CvtToCs(CvtFromCs(x)) -> x, Fig 12c);
//   3. reschedule and repeat until no further insertion applies.
//
// Subtractions fold into the FMA by sign manipulation:
//   sub(x, mul(b, c))  ->  x + (-b)*c   (negate the IEEE-side operand)
//   sub(mul(b, c), x)  ->  (-x) + b*c   (negate the addend; Neg is free)
#pragma once

#include "hls/ir.hpp"
#include "hls/oplib.hpp"

namespace csfma {

struct FmaInsertStats {
  int fma_inserted = 0;
  int conversions_elided = 0;
  int rounds = 0;  // schedule/replace iterations until fixpoint
};

/// Run the pass in place.  `style` selects the unit type (FCS requires a
/// pre-adder device upstream; the pass itself is format-agnostic).
FmaInsertStats insert_fma_units(Cdfg& g, const OperatorLibrary& lib,
                                FmaStyle style,
                                bool elide_conversions = true);

}  // namespace csfma
