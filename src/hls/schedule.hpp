// Scheduling of CDFGs onto the operator library.
//
// ASAP/ALAP give per-node mobility and the critical path (zero-slack
// nodes); the resource-constrained list scheduler time-multiplexes a
// limited pool of operator instances (the paper shares "up to 39" FMA
// units across the ldlsolve datapath, Sec. IV-D).  Operators are fully
// pipelined (initiation interval 1): an instance accepts a new operation
// every cycle, so the resource constraint limits *issues per cycle* per
// operator class.
#pragma once

#include <limits>
#include <map>
#include <vector>

#include "hls/ir.hpp"
#include "hls/oplib.hpp"
#include "telemetry/metrics.hpp"

namespace csfma {

struct Schedule {
  std::vector<int> start;  // indexed by node id; -1 for dead nodes
  int length = 0;          // cycles until the last result is available
};

/// Unlimited-resource as-soon-as-possible schedule.
Schedule schedule_asap(const Cdfg& g, const OperatorLibrary& lib);

/// As-late-as-possible schedule against the ASAP length.
Schedule schedule_alap(const Cdfg& g, const OperatorLibrary& lib,
                       int target_length);

/// Zero-slack (critical) node mask from ASAP/ALAP.
std::vector<bool> critical_nodes(const Cdfg& g, const OperatorLibrary& lib);

/// Per-cycle issue limits per operator class (0 = unlimited).
struct ResourceLimits {
  int mul = 0;
  int add_sub = 0;
  int div = 0;
  int fma = 0;  // shared pool across PCS/FCS instances
};

/// Resource-constrained list scheduling (priority: longest path to sink).
Schedule schedule_list(const Cdfg& g, const OperatorLibrary& lib,
                       const ResourceLimits& limits);

/// Human-readable schedule summary: per-kind operation counts with their
/// start-cycle spans and a per-cycle issue histogram — the "schedule view"
/// an HLS report would print.
std::string schedule_report(const Cdfg& g, const OperatorLibrary& lib,
                            const Schedule& s);

/// The machine-readable companion of schedule_report: records
/// <prefix>.length and <prefix>.peak_issue_width gauges, per-kind
/// <prefix>.ops.<kind> counters and a <prefix>.issue_width histogram into
/// `m`.  Everything is a pure function of (CDFG, schedule), so all entries
/// are Deterministic.
void record_schedule_metrics(const Cdfg& g, const OperatorLibrary& lib,
                             const Schedule& s, MetricsRegistry& m,
                             const std::string& prefix = "hls.schedule");

}  // namespace csfma
