#include "hls/reassociate.hpp"

#include <vector>

namespace csfma {

namespace {

struct Term {
  int value;
  bool negated;
};

/// Collect the additive terms of the maximal tree rooted at `id` (internal
/// nodes single-use below the root).
void collect(const Cdfg& g, int id, bool negated, bool is_root,
             std::vector<Term>* terms, std::vector<int>* internal) {
  const Node& n = g.node(id);
  const bool is_sum = n.kind == OpKind::Add || n.kind == OpKind::Sub;
  if (is_sum && (is_root || g.users(id).size() == 1)) {
    internal->push_back(id);
    collect(g, n.args[0], negated, false, terms, internal);
    collect(g, n.args[1], n.kind == OpKind::Sub ? !negated : negated, false,
            terms, internal);
    return;
  }
  terms->push_back({id, negated});
}

/// Combine two signed terms into one node; the pair's sign rides along.
Term combine(Cdfg& g, const Term& a, const Term& b) {
  if (a.negated == b.negated) {
    return {g.add_op(OpKind::Add, {a.value, b.value}), a.negated};
  }
  if (!a.negated) return {g.add_op(OpKind::Sub, {a.value, b.value}), false};
  return {g.add_op(OpKind::Sub, {b.value, a.value}), false};
}

}  // namespace

ReassociateStats reassociate_sums(Cdfg& g, const OperatorLibrary& lib,
                                  int min_terms) {
  (void)lib;
  ReassociateStats stats;
  // Snapshot the roots first: the rewrite appends nodes.
  std::vector<int> roots;
  for (int id : g.topo_order()) {
    const Node& n = g.node(id);
    if (n.kind != OpKind::Add && n.kind != OpKind::Sub) continue;
    auto users = g.users(id);
    if (users.size() == 1) {
      OpKind uk = g.node(users[0]).kind;
      if (uk == OpKind::Add || uk == OpKind::Sub) continue;  // not maximal
    }
    roots.push_back(id);
  }
  for (int root : roots) {
    if (g.node(root).dead) continue;
    std::vector<Term> terms;
    std::vector<int> internal;
    collect(g, root, false, true, &terms, &internal);
    if ((int)terms.size() < min_terms) continue;
    // Balanced reduction: pairwise rounds.
    std::vector<Term> level = terms;
    while (level.size() > 1) {
      std::vector<Term> next;
      for (size_t i = 0; i + 1 < level.size(); i += 2)
        next.push_back(combine(g, level[i], level[i + 1]));
      if (level.size() % 2 == 1) next.push_back(level.back());
      level.swap(next);
    }
    int result = level[0].value;
    if (level[0].negated) result = g.add_op(OpKind::Neg, {result});
    g.replace_uses(root, result);
    for (int t : internal) g.mark_dead(t);
    ++stats.trees_rebalanced;
    stats.terms += (int)terms.size();
  }
  if (stats.trees_rebalanced > 0) {
    g.prune_dead();
    g = rebuild_topo(g);
    g.validate();
  }
  return stats;
}

}  // namespace csfma
