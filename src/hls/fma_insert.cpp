#include "hls/fma_insert.hpp"

#include <map>

#include "hls/schedule.hpp"

namespace csfma {

namespace {

struct Candidate {
  int add_id;   // the Add/Sub node
  int mul_id;   // its single-use Mul argument
  int x_id;     // the other addend (becomes the A input)
  int b_id;     // IEEE-side multiplier operand (stays in standard format)
  int c_id;     // time-critical multiplier operand (becomes the CS C input)
  bool negate_b;  // sub(x, mul): flip the IEEE-side multiplier operand
  bool negate_x;  // sub(mul, x): flip the addend
};

/// Find all critical multiply/add(or sub) pairs (Fig 12a -> 12b).
std::vector<Candidate> find_candidates(const Cdfg& g,
                                       const OperatorLibrary& lib) {
  std::vector<bool> crit = critical_nodes(g, lib);
  const Schedule asap = schedule_asap(g, lib);
  auto finish = [&](int id) {
    const Node& n = g.node(id);
    return asap.start[(size_t)id] + lib.attr(n.kind, n.style).latency;
  };
  std::vector<Candidate> out;
  std::vector<bool> mul_taken((size_t)g.num_nodes(), false);
  for (int id : g.topo_order()) {
    const Node& n = g.node(id);
    if (n.kind != OpKind::Add && n.kind != OpKind::Sub) continue;
    if (!crit[(size_t)id]) continue;
    // Prefer the second operand as the fused multiply; fall back to the
    // first (mul on either side of the add).  The multiply itself may have
    // slack (in-row products precompute early); fusing is driven by the
    // criticality of the ADD, which is what sits on the chain.
    for (int which : {1, 0}) {
      const int m = n.args[(size_t)which];
      const Node& mn = g.node(m);
      if (mn.kind != OpKind::Mul) continue;
      if (mul_taken[(size_t)m]) continue;
      if (g.users(m).size() != 1) continue;  // product needed elsewhere
      Candidate c;
      c.add_id = id;
      c.mul_id = m;
      c.x_id = n.args[(size_t)(1 - which)];
      // The later-arriving multiplier operand becomes the time-critical C
      // input (the one the paper keeps in carry-save format, Sec. III-B);
      // the earlier one stays IEEE as B.  Ties keep source order.
      if (finish(mn.args[0]) > finish(mn.args[1])) {
        c.c_id = mn.args[0];
        c.b_id = mn.args[1];
      } else {
        c.b_id = mn.args[0];
        c.c_id = mn.args[1];
      }
      c.negate_b = false;
      c.negate_x = false;
      if (n.kind == OpKind::Sub) {
        if (which == 1) {
          c.negate_b = true;  // x - b*c == x + (-b)*c
        } else {
          c.negate_x = true;  // b*c - x == (-x) + b*c
        }
      }
      mul_taken[(size_t)m] = true;
      out.push_back(c);
      break;
    }
  }
  return out;
}

void apply_candidate(Cdfg& g, const Candidate& c, FmaStyle style,
                     std::map<int, int>& forwarded) {
  // Any captured operand may itself have been fused by an earlier candidate
  // of this round; chase the forwarding chain to the live replacement.
  auto resolve = [&forwarded](int id) {
    while (forwarded.count(id) != 0) id = forwarded.at(id);
    return id;
  };
  int b = resolve(c.b_id);
  int cc = resolve(c.c_id);
  if (c.negate_b) b = g.add_op(OpKind::Neg, {b});
  int x = resolve(c.x_id);
  if (c.negate_x) x = g.add_op(OpKind::Neg, {x});
  const int cvt_a = g.add_op(OpKind::CvtToCs, {x}, style);
  const int cvt_c = g.add_op(OpKind::CvtToCs, {cc}, style);
  const int fma = g.add_op(OpKind::Fma, {cvt_a, b, cvt_c}, style);
  const int back = g.add_op(OpKind::CvtFromCs, {fma}, style);
  g.replace_uses(c.add_id, back);
  g.mark_dead(c.add_id);
  g.mark_dead(c.mul_id);
  forwarded[c.add_id] = back;
}

/// Fig 12c: CvtToCs(CvtFromCs(v)) of matching style -> v.
int elide_conversions(Cdfg& g) {
  int elided = 0;
  for (int id : g.topo_order()) {
    const Node& n = g.node(id);
    if (n.kind != OpKind::CvtToCs) continue;
    const Node& a = g.node(n.args[0]);
    if (a.kind != OpKind::CvtFromCs || a.style != n.style) continue;
    g.replace_uses(id, a.args[0]);
    g.mark_dead(id);
    ++elided;
  }
  g.prune_dead();  // the CvtFromCs may now be unused
  return elided;
}

}  // namespace

FmaInsertStats insert_fma_units(Cdfg& g, const OperatorLibrary& lib,
                                FmaStyle style, bool elide) {
  CSFMA_CHECK(style != FmaStyle::None);
  FmaInsertStats stats;
  for (;;) {
    ++stats.rounds;
    auto cands = find_candidates(g, lib);
    if (cands.empty()) break;
    std::map<int, int> forwarded;
    for (const auto& c : cands) apply_candidate(g, c, style, forwarded);
    stats.fma_inserted += (int)cands.size();
    if (elide) stats.conversions_elided += elide_conversions(g);
    g.prune_dead();
    g = rebuild_topo(g);
    g.validate();
    CSFMA_CHECK_MSG(stats.rounds < 1000, "insertion did not converge");
  }
  return stats;
}

}  // namespace csfma
