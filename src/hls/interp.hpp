// CDFG interpreter: evaluates a (possibly FMA-transformed) datapath with
// the ACTUAL operator semantics — discrete operators as correctly rounded
// binary64 (CoreGen model), Fma/Cvt nodes through the bit-accurate PCS/FCS
// units.  Used to verify that the insertion pass preserves semantics within
// the formats' accuracy envelope, and to run the example kernels.
#pragma once

#include <map>
#include <string>

#include "hls/ir.hpp"

namespace csfma {

class Evaluator {
 public:
  explicit Evaluator(const Cdfg& g) : g_(g) {}

  /// Evaluate with the given named inputs; returns the named outputs.
  /// Missing inputs throw.
  std::map<std::string, double> run(
      const std::map<std::string, double>& inputs) const;

 private:
  const Cdfg& g_;
};

}  // namespace csfma
