// CDFG interpreter: evaluates a (possibly FMA-transformed) datapath with
// the ACTUAL operator semantics — discrete operators as correctly rounded
// binary64 (CoreGen model), Fma/Cvt nodes through the bit-accurate PCS/FCS
// units.  Used to verify that the insertion pass preserves semantics within
// the formats' accuracy envelope, and to run the example kernels.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "hls/ir.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace csfma {

class Evaluator {
 public:
  /// `metrics`/`trace` (optional, not owned) receive the interpreter's
  /// telemetry: hls.interp.samples and per-kind hls.interp.ops.<kind>
  /// counters (Deterministic — the op mix is a pure function of the CDFG
  /// and the sample count) plus an "interp" phase span per run_batch call.
  explicit Evaluator(const Cdfg& g, MetricsRegistry* metrics = nullptr,
                     TraceSession* trace = nullptr)
      : g_(g), metrics_(metrics), trace_(trace) {}

  /// Evaluate with the given named inputs; returns the named outputs.
  /// Missing inputs throw.  Delegates to run_batch with one sample.
  std::map<std::string, double> run(
      const std::map<std::string, double>& inputs) const;

  /// Evaluate many input samples over the same CDFG: the topological walk
  /// setup, the unit simulators and the wire-value workspace are built once
  /// and reused across samples (kernel sweeps call this with thousands of
  /// samples).  outputs[i] corresponds to inputs[i].
  std::vector<std::map<std::string, double>> run_batch(
      const std::vector<std::map<std::string, double>>& inputs) const;

 private:
  const Cdfg& g_;
  MetricsRegistry* metrics_ = nullptr;
  TraceSession* trace_ = nullptr;
};

}  // namespace csfma
