// CDFG interpreter: evaluates a (possibly FMA-transformed) datapath with
// the ACTUAL operator semantics — discrete operators as correctly rounded
// binary64 (CoreGen model), Fma/Cvt nodes through the bit-accurate PCS/FCS
// units.  Used to verify that the insertion pass preserves semantics within
// the formats' accuracy envelope, and to run the example kernels.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "hls/ir.hpp"

namespace csfma {

class Evaluator {
 public:
  explicit Evaluator(const Cdfg& g) : g_(g) {}

  /// Evaluate with the given named inputs; returns the named outputs.
  /// Missing inputs throw.  Delegates to run_batch with one sample.
  std::map<std::string, double> run(
      const std::map<std::string, double>& inputs) const;

  /// Evaluate many input samples over the same CDFG: the topological walk
  /// setup, the unit simulators and the wire-value workspace are built once
  /// and reused across samples (kernel sweeps call this with thousands of
  /// samples).  outputs[i] corresponds to inputs[i].
  std::vector<std::map<std::string, double>> run_batch(
      const std::vector<std::map<std::string, double>>& inputs) const;

 private:
  const Cdfg& g_;
};

}  // namespace csfma
