#include "hls/ir.hpp"

#include <algorithm>
#include <sstream>

namespace csfma {

const char* to_string(OpKind k) {
  switch (k) {
    case OpKind::Input: return "input";
    case OpKind::Const: return "const";
    case OpKind::Output: return "output";
    case OpKind::Add: return "add";
    case OpKind::Sub: return "sub";
    case OpKind::Mul: return "mul";
    case OpKind::Div: return "div";
    case OpKind::Neg: return "neg";
    case OpKind::Fma: return "fma";
    case OpKind::Dot: return "dot";
    case OpKind::CvtToCs: return "cvt_to_cs";
    case OpKind::CvtFromCs: return "cvt_from_cs";
  }
  return "?";
}

namespace {

int expected_arity(OpKind k) {
  switch (k) {
    case OpKind::Input:
    case OpKind::Const:
      return 0;
    case OpKind::Output:
    case OpKind::Neg:
    case OpKind::CvtToCs:
    case OpKind::CvtFromCs:
      return 1;
    case OpKind::Add:
    case OpKind::Sub:
    case OpKind::Mul:
    case OpKind::Div:
      return 2;
    case OpKind::Fma:
      return 3;
    case OpKind::Dot:
      return -1;  // variadic: an even number >= 2 of args
  }
  return -1;
}

bool arity_ok(OpKind k, int n) {
  if (k == OpKind::Dot) return n >= 2 && n % 2 == 0;
  return n == expected_arity(k);
}

}  // namespace

int Cdfg::add_input(const std::string& name) {
  Node n;
  n.id = (int)nodes_.size();
  n.kind = OpKind::Input;
  n.name = name;
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

int Cdfg::add_const(double v) {
  Node n;
  n.id = (int)nodes_.size();
  n.kind = OpKind::Const;
  n.const_value = v;
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

int Cdfg::add_output(const std::string& name, int value) {
  Node n;
  n.id = (int)nodes_.size();
  n.kind = OpKind::Output;
  n.name = name;
  n.args = {value};
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

int Cdfg::add_op(OpKind kind, std::vector<int> args, FmaStyle style) {
  CSFMA_CHECK(arity_ok(kind, (int)args.size()));
  for (int a : args) CSFMA_CHECK(a >= 0 && a < (int)nodes_.size());
  Node n;
  n.id = (int)nodes_.size();
  n.kind = kind;
  n.args = std::move(args);
  n.style = style;
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

const Node& Cdfg::node(int id) const {
  CSFMA_CHECK(id >= 0 && id < (int)nodes_.size());
  return nodes_[(size_t)id];
}

Node& Cdfg::node(int id) {
  CSFMA_CHECK(id >= 0 && id < (int)nodes_.size());
  return nodes_[(size_t)id];
}

std::vector<int> Cdfg::live_nodes() const {
  std::vector<int> out;
  for (const auto& n : nodes_)
    if (!n.dead) out.push_back(n.id);
  return out;
}

std::vector<int> Cdfg::topo_order() const {
  // Iterative DFS post-order over args: works even after transform passes
  // appended nodes out of creation order.
  std::vector<int> order;
  order.reserve(nodes_.size());
  std::vector<std::uint8_t> state(nodes_.size(), 0);  // 0 new, 1 open, 2 done
  std::vector<int> stack;
  for (const auto& root : nodes_) {
    if (root.dead || state[(size_t)root.id] != 0) continue;
    stack.push_back(root.id);
    while (!stack.empty()) {
      int id = stack.back();
      if (state[(size_t)id] == 2) {
        stack.pop_back();
        continue;
      }
      if (state[(size_t)id] == 1) {
        state[(size_t)id] = 2;
        order.push_back(id);
        stack.pop_back();
        continue;
      }
      state[(size_t)id] = 1;
      for (int a : nodes_[(size_t)id].args) {
        CSFMA_CHECK_MSG(!nodes_[(size_t)a].dead,
                        "live node references a dead node");
        CSFMA_CHECK_MSG(state[(size_t)a] != 1, "cycle in CDFG");
        if (state[(size_t)a] == 0) stack.push_back(a);
      }
    }
  }
  return order;
}

std::vector<int> Cdfg::users(int id) const {
  std::vector<int> out;
  for (const auto& n : nodes_) {
    if (n.dead) continue;
    if (std::find(n.args.begin(), n.args.end(), id) != n.args.end())
      out.push_back(n.id);
  }
  return out;
}

void Cdfg::replace_uses(int old_id, int new_id) {
  CSFMA_CHECK(old_id != new_id);
  for (auto& n : nodes_) {
    if (n.dead) continue;
    for (auto& a : n.args)
      if (a == old_id) a = new_id;
  }
}

void Cdfg::mark_dead(int id) { node(id).dead = true; }

int Cdfg::prune_dead() {
  std::vector<bool> reachable(nodes_.size(), false);
  std::vector<int> work;
  for (const auto& n : nodes_) {
    if (!n.dead && n.kind == OpKind::Output) {
      reachable[(size_t)n.id] = true;
      work.push_back(n.id);
    }
  }
  while (!work.empty()) {
    int id = work.back();
    work.pop_back();
    for (int a : nodes_[(size_t)id].args) {
      if (!reachable[(size_t)a]) {
        reachable[(size_t)a] = true;
        work.push_back(a);
      }
    }
  }
  int removed = 0;
  for (auto& n : nodes_) {
    if (!n.dead && !reachable[(size_t)n.id] && n.kind != OpKind::Output) {
      n.dead = true;
      ++removed;
    }
  }
  return removed;
}

ValueType Cdfg::value_type(int id) const {
  const Node& n = node(id);
  switch (n.kind) {
    case OpKind::Fma:
    case OpKind::Dot:
    case OpKind::CvtToCs:
      return ValueType::Cs;
    default:
      return ValueType::Ieee;
  }
}

void Cdfg::validate() const {
  for (const auto& n : nodes_) {
    if (n.dead) continue;
    CSFMA_CHECK_MSG(arity_ok(n.kind, n.arity()), csfma::to_string(n.kind));
    for (int a : n.args) {
      CSFMA_CHECK_MSG(a >= 0 && a < (int)nodes_.size(), "dangling arg");
      CSFMA_CHECK_MSG(!node(a).dead, "use of a dead node");
    }
    // Typing rules.
    auto expect = [&](int arg, ValueType t) {
      CSFMA_CHECK_MSG(value_type(arg) == t,
                      "type mismatch at node " << n.id << " ("
                                               << csfma::to_string(n.kind) << ")");
    };
    switch (n.kind) {
      case OpKind::Fma:
        CSFMA_CHECK(n.style != FmaStyle::None);
        expect(n.args[0], ValueType::Cs);   // A
        expect(n.args[1], ValueType::Ieee); // B
        expect(n.args[2], ValueType::Cs);   // C
        // CS producers feeding a Fma must agree on the style.
        for (int idx : {0, 2}) {
          const Node& p = node(n.args[(size_t)idx]);
          CSFMA_CHECK_MSG(p.style == n.style, "mixed PCS/FCS chain");
        }
        break;
      case OpKind::Dot:
        // The fused dot product is a PCS back-end unit.
        CSFMA_CHECK(n.style == FmaStyle::Pcs);
        for (int a : n.args) expect(a, ValueType::Ieee);
        break;
      case OpKind::CvtToCs:
        CSFMA_CHECK(n.style != FmaStyle::None);
        expect(n.args[0], ValueType::Ieee);
        break;
      case OpKind::CvtFromCs:
        CSFMA_CHECK(n.style != FmaStyle::None);
        expect(n.args[0], ValueType::Cs);
        CSFMA_CHECK_MSG(node(n.args[0]).style == n.style, "mixed PCS/FCS chain");
        break;
      case OpKind::Add:
      case OpKind::Sub:
      case OpKind::Mul:
      case OpKind::Div:
      case OpKind::Neg:
      case OpKind::Output:
        for (int a : n.args) expect(a, ValueType::Ieee);
        break;
      case OpKind::Input:
      case OpKind::Const:
        break;
    }
  }
}

int Cdfg::count(OpKind kind) const {
  int n = 0;
  for (const auto& nd : nodes_)
    if (!nd.dead && nd.kind == kind) ++n;
  return n;
}

std::string Cdfg::to_string() const {
  std::ostringstream os;
  for (const auto& n : nodes_) {
    if (n.dead) continue;
    os << "%" << n.id << " = " << csfma::to_string(n.kind);
    if (n.kind == OpKind::Const) os << " " << n.const_value;
    if (!n.name.empty()) os << " @" << n.name;
    for (int a : n.args) os << " %" << a;
    if (n.style == FmaStyle::Pcs) os << " [pcs]";
    if (n.style == FmaStyle::Fcs) os << " [fcs]";
    os << "\n";
  }
  return os.str();
}

std::string Cdfg::to_dot(const std::string& graph_name) const {
  std::ostringstream os;
  os << "digraph " << graph_name << " {\n  rankdir=TB;\n";
  for (const auto& n : nodes_) {
    if (n.dead) continue;
    os << "  n" << n.id << " [label=\"" << csfma::to_string(n.kind);
    if (!n.name.empty()) os << "\\n" << n.name;
    if (n.kind == OpKind::Const) os << "\\n" << n.const_value;
    os << "\"";
    if (n.kind == OpKind::Fma || n.kind == OpKind::Dot)
      os << ", shape=box, style=filled, fillcolor=lightblue";
    else if (n.kind == OpKind::CvtToCs || n.kind == OpKind::CvtFromCs)
      os << ", shape=diamond";
    os << "];\n";
    for (int a : n.args) {
      os << "  n" << a << " -> n" << n.id;
      if (value_type(a) == ValueType::Cs) os << " [penwidth=2.5]";
      os << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

Cdfg rebuild_topo(const Cdfg& g) {
  Cdfg out;
  std::vector<int> remap((size_t)g.num_nodes(), -1);
  for (int id : g.topo_order()) {
    const Node& n = g.node(id);
    std::vector<int> args;
    args.reserve(n.args.size());
    for (int a : n.args) {
      CSFMA_CHECK(remap[(size_t)a] >= 0);
      args.push_back(remap[(size_t)a]);
    }
    int nid;
    switch (n.kind) {
      case OpKind::Input:
        nid = out.add_input(n.name);
        break;
      case OpKind::Const:
        nid = out.add_const(n.const_value);
        break;
      case OpKind::Output:
        nid = out.add_output(n.name, args[0]);
        break;
      default:
        nid = out.add_op(n.kind, std::move(args), n.style);
        break;
    }
    remap[(size_t)id] = nid;
  }
  return out;
}

}  // namespace csfma
