// Discrete IEEE 754 multiply and add operators — the Xilinx CoreGen
// configuration of the paper's evaluation ("low latency" 5-cycle multiplier
// plus "low latency" 4-cycle adder, Sec. IV-A), and the FloPoCo FPPipeline
// fused pipeline.  Both are IEEE-interface, subnormal-free, correctly
// rounded operators; they differ (for our purposes) in the latency/area
// attributes the fpga/ and hls/ models attach, and in their switching
// activity (every intermediate is re-normalized, so the planes are narrow).
#pragma once

#include "common/activity.hpp"
#include "fp/pfloat.hpp"
#include "introspect/hooks.hpp"

namespace csfma {

/// A CoreGen-style discrete multiply-add pair: mul and add are separate,
/// fully rounded operators (two roundings per multiply-add).
class DiscreteMulAdd {
 public:
  /// `hooks` (optional) attaches signal taps; null costs a pointer check.
  explicit DiscreteMulAdd(ActivityRecorder* activity = nullptr,
                          const IntrospectHooks* hooks = nullptr)
      : activity_(activity), hooks_(hooks) {}

  PFloat mul(const PFloat& a, const PFloat& b);
  PFloat add(const PFloat& a, const PFloat& b);

  /// The full multiply-add a + b*c as the discrete pipeline computes it.
  PFloat mul_add(const PFloat& a, const PFloat& b, const PFloat& c);

 private:
  void probe(const char* name, const char* stage, const PFloat& v);
  ActivityRecorder* activity_;
  const IntrospectHooks* hooks_;
};

}  // namespace csfma
