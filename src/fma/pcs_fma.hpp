// The PCS-FMA unit (Sec. III-F, Fig 9): R = A + B * C with
//   * A, C, R in the 192-bit PCS operand format (deferred rounding data
//     travels with the value; Sec. III-C),
//   * B in IEEE 754 binary64 (the non-critical operand stays standard,
//     which keeps the multiplier CSA tree at 53 rows; Sec. III-D),
//   * the variable-distance normalization shifter replaced by the
//     6-to-1 block multiplexer driven by the digit-level Zero Detector
//     (Sec. III-D/F),
//   * a Carry Reduction step converting the full-CS adder output into the
//     group-11 PCS form (Sec. III-E),
//   * C's deferred rounding folded into the multiplier as a +B_M correction
//     row (Fig 6), and A's deferred rounding applied by the A-path rounding
//     unit that runs in parallel with the pre-shift (Fig 5).
//
// The datapath is simulated digit-exactly: the CSA tree, the adder window
// placement, the carry reduction, the ZD block skipping and the truncate-
// then-round tail handling are all the hardware's — including the paper's
// documented misrounding cases.  The only value-level shortcut is that
// two's-complement operands are assimilated where the hardware would use
// DSP pre-adder / group-adder structures (see csa_tree.hpp and DESIGN.md).
#pragma once

#include "common/activity.hpp"
#include "cs/csa_tree.hpp"
#include "cs/zero_detect.hpp"
#include "fma/fma_unit.hpp"
#include "fma/pcs_format.hpp"
#include "introspect/hooks.hpp"

namespace csfma {

class PcsFma {
 public:
  /// `activity` (optional) receives per-component toggle counts, used by
  /// the energy model.  The recorder must outlive the unit.  `hooks`
  /// (optional) attaches signal taps / the numerical event log; null costs
  /// one pointer check per operation.
  explicit PcsFma(ActivityRecorder* activity = nullptr,
                  const IntrospectHooks* hooks = nullptr)
      : activity_(activity), hooks_(hooks) {}

  /// R = A + B * C.  B must be binary64 (or narrower); A and C carry their
  /// unrounded tails in.
  PcsOperand fma(const PcsOperand& a, const PFloat& b, const PcsOperand& c);

  /// Single-operation convenience with IEEE boundaries: converts the
  /// operands in, runs the unit once, converts the result out with the
  /// final rounding.  This is what a non-chained (single) replacement of a
  /// multiply/add pair computes.
  PFloat fma_ieee(const PFloat& a, const PFloat& b, const PFloat& c, Round rm);

  /// Bit-sliced batch form of fma_ieee (engine/slice.hpp): runs of
  /// sliceable operations go through plane-form kernels up to 64 lanes at
  /// a time — the multiplier and A-alignment stay per-lane, the 385b
  /// adder, carry reduction, zero detect and block mux run bit-parallel
  /// across the batch.  Operations with exception operands (NaN, infinity,
  /// a zero product) or an A pass-through, and any run with a SignalTap
  /// attached, fall back to the scalar path per operation.  Results,
  /// per-probe toggle counts and the event sequence are bit-identical to
  /// the scalar loop (the engine's backend-equivalence gate).
  void fma_ieee_batch(const OperandTriple* ops, std::size_t n, PFloat* out,
                      const FmaBatchHooks& hooks);

  /// Stats of the most recent multiplication (tree geometry, for tests).
  const CsaTreeStats& last_mul_stats() const { return mul_stats_; }
  /// Block-skip count chosen by the ZD in the most recent operation.
  int last_zd_skip() const { return last_zd_skip_; }

 private:
  /// One sliced block: all `n` (<= 64) operations must be sliceable.
  void fma_ieee_block(const OperandTriple* ops, int n, PFloat* out, Round rm,
                      EventLog* events, std::uint64_t base);

  ActivityRecorder* activity_;
  const IntrospectHooks* hooks_;
  CsaTreeStats mul_stats_{};
  int last_zd_skip_ = 0;
};

}  // namespace csfma
