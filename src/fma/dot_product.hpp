// Fused dot product — the paper's "applied to other floating-point
// operations" future-work direction (Sec. V), in the style of the fused
// dot-product units it cites ([9] Saleh/Swartzlander, [10] FFT versions).
//
// r = sum_i a_i * b_i is computed with ONE normalization/rounding at the
// very end: every product is formed exactly (106b), aligned into a shared
// 385b carry-save window, reduced with a single CSA tree, carry-reduced to
// the PCS form and block-selected with the same Zero Detector and 6:1
// multiplexer as the PCS-FMA.  The result is a PCS operand, so a fused dot
// product can feed an FMA chain directly without an intermediate rounding.
//
// Alignment truncation: terms more than ~270 bits below the largest
// product fall off the window (the fused-accumulator behaviour of
// de Dinechin/Pasca [12], which the paper builds on).
#pragma once

#include <utility>
#include <vector>

#include "common/activity.hpp"
#include "cs/csa_tree.hpp"
#include "fma/pcs_format.hpp"

namespace csfma {

class PcsDotProduct {
 public:
  explicit PcsDotProduct(ActivityRecorder* activity = nullptr)
      : activity_(activity) {}

  /// Fused sum of products; terms are IEEE binary64 pairs.
  PcsOperand dot(const std::vector<std::pair<PFloat, PFloat>>& terms);

  /// Convenience: fused dot with a single exit rounding.
  PFloat dot_ieee(const std::vector<std::pair<PFloat, PFloat>>& terms,
                  Round rm);

  /// Stats of the last reduction tree (rows = 2 per DSP-tiled product).
  const CsaTreeStats& last_tree_stats() const { return tree_stats_; }

 private:
  ActivityRecorder* activity_;
  CsaTreeStats tree_stats_{};
};

}  // namespace csfma
