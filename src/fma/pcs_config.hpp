// Runtime-configurable PCS-FMA geometry — the paper's future work
// (Sec. V): "the use of different carry bit densities in the PCS-FMA could
// be explored when increasing the block size to 56b (instead of the 55b
// used here)".
//
// GenPcsFma generalizes the fixed 55b/group-11 unit of pcs_fma.hpp to any
// (block, group) geometry with group | block:
//   * mantissa  = 2 blocks, rounding tail = 1 block,
//   * product   = mantissa + 53 bits,
//   * adder     = mantissa + product + mantissa, rounded up to blocks,
//   * value     = X̂ · 2^(exp − F),  F = sig_msb_digit + tail_digits,
// which reduces to the paper's exact constants at (55, 11): 110b+10b
// mantissa, 385b adder, F = 162.
//
// Small blocks trade accuracy (the 52+1+1+1 bit budget no longer fits)
// for narrower operands and a cheaper mux — the exploration the ablation
// bench sweeps.
#pragma once

#include "common/activity.hpp"
#include "cs/csa_tree.hpp"
#include "cs/pcs.hpp"
#include "cs/zero_detect.hpp"
#include "fp/pfloat.hpp"

namespace csfma {

struct PcsConfig {
  int block = 55;  // result block digits
  int group = 11;  // explicit-carry spacing; must divide block

  int mant_digits() const { return 2 * block; }
  int tail_digits() const { return block; }
  int product_width() const { return mant_digits() + 53; }
  int adder_blocks() const {
    const int raw = 2 * mant_digits() + product_width();
    return (raw + block - 1) / block;
  }
  int adder_width() const { return adder_blocks() * block; }
  /// IEEE significand MSB position on conversion: the paper's
  /// 52+1(sign)+1(guard)+1(overflow) budget below the mantissa top.
  int sig_msb_digit() const { return mant_digits() - 3; }
  /// Binary point: value = X_hat * 2^(exp - frac_bits()).
  int frac_bits() const { return sig_msb_digit() + tail_digits(); }
  /// Number of explicit carry positions in one operand mantissa.
  int mant_carries() const { return mant_digits() / group; }
  /// Total operand bits (mant sum+carries, tail sum+carries, 12b exponent).
  int operand_bits() const {
    return mant_digits() + mant_carries() + tail_digits() +
           tail_digits() / group + 12;
  }
  /// Significant digits guaranteed in the selected result (the 55b design
  /// yields >= 53; smaller blocks fall below double precision).
  int guaranteed_digits() const { return mant_digits() - 3; }

  void validate() const;
};

/// The paper's shipping geometry.
inline constexpr PcsConfig kPaperPcs{55, 11};
/// The Sec. V candidate: 56b blocks admit spacings 4/7/8/14/28.
inline constexpr PcsConfig kPcs56g8{56, 8};
inline constexpr PcsConfig kPcs56g14{56, 14};

/// A configurable-geometry PCS operand (runtime widths).
class GenPcsOperand {
 public:
  GenPcsOperand();  // +0 in the paper geometry
  GenPcsOperand(PcsConfig cfg, PcsNum mant, PcsNum tail, int exp, FpClass cls,
                bool exc_sign);

  static GenPcsOperand make_zero(const PcsConfig& cfg, bool sign);
  static GenPcsOperand make_inf(const PcsConfig& cfg, bool sign);
  static GenPcsOperand make_nan(const PcsConfig& cfg);

  const PcsConfig& config() const { return cfg_; }
  const PcsNum& mant() const { return mant_; }
  const PcsNum& tail() const { return tail_; }
  int exp() const { return exp_; }
  FpClass cls() const { return cls_; }
  bool exc_sign() const { return exc_sign_; }

  bool is_nan() const { return cls_ == FpClass::NaN; }
  bool is_inf() const { return cls_ == FpClass::Inf; }
  bool is_zero() const;

  CsWord tail_assimilated() const { return tail_.sum() + tail_.carries(); }
  int round_increment() const;  // half-away-from-zero over the tail block
  PFloat exact_value() const;

 private:
  PcsConfig cfg_;
  PcsNum mant_, tail_;
  int exp_ = 0;
  FpClass cls_ = FpClass::Zero;
  bool exc_sign_ = false;
};

GenPcsOperand ieee_to_genpcs(const PcsConfig& cfg, const PFloat& x);
PFloat genpcs_to_ieee(const GenPcsOperand& x, const FloatFormat& fmt, Round rm);

class GenPcsFma {
 public:
  explicit GenPcsFma(PcsConfig cfg, ActivityRecorder* activity = nullptr);

  GenPcsOperand fma(const GenPcsOperand& a, const PFloat& b,
                    const GenPcsOperand& c);
  PFloat fma_ieee(const PFloat& a, const PFloat& b, const PFloat& c, Round rm);

  const PcsConfig& config() const { return cfg_; }
  int last_zd_skip() const { return last_zd_skip_; }

 private:
  PcsConfig cfg_;
  ActivityRecorder* activity_;
  int last_zd_skip_ = 0;
};

}  // namespace csfma
