#include "fma/pcs_config.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "fma/pcs_format.hpp"

namespace csfma {

void PcsConfig::validate() const {
  CSFMA_CHECK_MSG(block >= 8 && block <= 62, "block size out of range");
  CSFMA_CHECK_MSG(group >= 2 && group <= 63, "carry spacing out of range");
  CSFMA_CHECK_MSG(block % group == 0, "carry spacing must divide the block");
  CSFMA_CHECK_MSG(adder_width() <= kCsWordBits,
                  "adder window exceeds the CsWord workspace");
}

GenPcsOperand::GenPcsOperand()
    : GenPcsOperand(kPaperPcs,
                    PcsNum::zero(kPaperPcs.mant_digits(), kPaperPcs.group),
                    PcsNum::zero(kPaperPcs.tail_digits(), kPaperPcs.group), 0,
                    FpClass::Zero, false) {}

GenPcsOperand::GenPcsOperand(PcsConfig cfg, PcsNum mant, PcsNum tail, int exp,
                             FpClass cls, bool exc_sign)
    : cfg_(cfg),
      mant_(std::move(mant)),
      tail_(std::move(tail)),
      exp_(exp),
      cls_(cls),
      exc_sign_(exc_sign) {
  cfg_.validate();
  CSFMA_CHECK(mant_.width() == cfg_.mant_digits() && mant_.group() == cfg_.group);
  CSFMA_CHECK(tail_.width() == cfg_.tail_digits() && tail_.group() == cfg_.group);
  CSFMA_CHECK(exp_ >= -2047 && exp_ <= 2048);
}

GenPcsOperand GenPcsOperand::make_zero(const PcsConfig& cfg, bool sign) {
  return GenPcsOperand(cfg, PcsNum::zero(cfg.mant_digits(), cfg.group),
                       PcsNum::zero(cfg.tail_digits(), cfg.group), 0,
                       FpClass::Zero, sign);
}

GenPcsOperand GenPcsOperand::make_inf(const PcsConfig& cfg, bool sign) {
  GenPcsOperand r = make_zero(cfg, sign);
  r.cls_ = FpClass::Inf;
  return r;
}

GenPcsOperand GenPcsOperand::make_nan(const PcsConfig& cfg) {
  GenPcsOperand r = make_zero(cfg, false);
  r.cls_ = FpClass::NaN;
  return r;
}

bool GenPcsOperand::is_zero() const {
  return cls_ == FpClass::Zero ||
         (cls_ == FpClass::Normal && mant_.to_binary().is_zero() &&
          tail_assimilated().is_zero());
}

int GenPcsOperand::round_increment() const {
  CSFMA_CHECK(cls_ == FpClass::Normal);
  const CsWord tail = tail_assimilated();
  const CsWord half = CsWord::bit_at(cfg_.tail_digits() - 1);
  if (tail < half) return 0;
  if (tail > half) return 1;
  return mant_.as_cs().is_value_negative() ? 0 : 1;
}

PFloat GenPcsOperand::exact_value() const {
  switch (cls_) {
    case FpClass::Zero: return PFloat::zero(kWideExact, exc_sign_);
    case FpClass::Inf: return PFloat::inf(kWideExact, exc_sign_);
    case FpClass::NaN: return PFloat::nan(kWideExact);
    case FpClass::Normal: break;
  }
  WideUint<8> m = WideUint<8>(mant_.to_binary()).sext(cfg_.mant_digits());
  WideUint<8> x =
      (m << cfg_.tail_digits()) + WideUint<8>(tail_assimilated());
  const bool sign = x.bit(WideUint<8>::kBits - 1);
  return PFloat::normalize_round(kWideExact, sign, sign ? -x : x,
                                 exp_ - cfg_.frac_bits(), false,
                                 Round::NearestEven);
}

GenPcsOperand ieee_to_genpcs(const PcsConfig& cfg, const PFloat& x) {
  cfg.validate();
  switch (x.cls()) {
    case FpClass::Zero: return GenPcsOperand::make_zero(cfg, x.sign());
    case FpClass::Inf: return GenPcsOperand::make_inf(cfg, x.sign());
    case FpClass::NaN: return GenPcsOperand::make_nan(cfg);
    case FpClass::Normal: break;
  }
  const int p = x.format().precision();
  // Small geometries cannot hold a full binary64 significand: truncate the
  // low bits on entry (the accuracy loss the ablation measures).
  const int keep = std::min(p, cfg.sig_msb_digit() + 1);
  U128 sig = x.sig() >> (p - keep);
  const int shift = cfg.sig_msb_digit() - (keep - 1);
  CsWord mag = CsWord(WideUint<7>(WideUint<2>(sig))) << shift;
  CsNum mant = CsNum::from_signed(cfg.mant_digits(), x.sign(), mag);
  const int exp2_lsb = x.exp() - x.format().frac_bits + (p - keep);
  const int exp_fixed =
      exp2_lsb - shift - cfg.tail_digits() + cfg.frac_bits();
  CSFMA_CHECK(exp_fixed >= -2047 && exp_fixed <= 2048);
  return GenPcsOperand(cfg,
                       PcsNum(cfg.mant_digits(), cfg.group, mant.sum(),
                              mant.carry()),
                       PcsNum::zero(cfg.tail_digits(), cfg.group), exp_fixed,
                       FpClass::Normal, x.sign());
}

PFloat genpcs_to_ieee(const GenPcsOperand& x, const FloatFormat& fmt,
                      Round rm) {
  switch (x.cls()) {
    case FpClass::Zero: return PFloat::zero(fmt, x.exc_sign());
    case FpClass::Inf: return PFloat::inf(fmt, x.exc_sign());
    case FpClass::NaN: return PFloat::nan(fmt);
    case FpClass::Normal: break;
  }
  const PcsConfig& cfg = x.config();
  WideUint<8> m = WideUint<8>(x.mant().to_binary()).sext(cfg.mant_digits());
  WideUint<8> xhat =
      (m << cfg.tail_digits()) + WideUint<8>(x.tail_assimilated());
  if (xhat.is_zero()) return PFloat::zero(fmt, false);
  const bool sign = xhat.bit(WideUint<8>::kBits - 1);
  return PFloat::normalize_round(fmt, sign, sign ? -xhat : xhat,
                                 x.exp() - cfg.frac_bits(), false, rm);
}

GenPcsFma::GenPcsFma(PcsConfig cfg, ActivityRecorder* activity)
    : cfg_(cfg), activity_(activity) {
  cfg_.validate();
}

GenPcsOperand GenPcsFma::fma(const GenPcsOperand& a, const PFloat& b,
                             const GenPcsOperand& c) {
  CSFMA_CHECK(a.config().block == cfg_.block && a.config().group == cfg_.group);
  CSFMA_CHECK(c.config().block == cfg_.block && c.config().group == cfg_.group);
  // ---- exceptions ----
  if (a.is_nan() || b.is_nan() || c.is_nan()) return GenPcsOperand::make_nan(cfg_);
  const bool b_zero = b.is_zero(), c_zero = c.is_zero();
  const bool c_sign = c.cls() == FpClass::Normal
                          ? c.mant().as_cs().is_value_negative()
                          : c.exc_sign();
  const bool p_sign = b.sign() != c_sign;
  if (b.is_inf() || c.is_inf()) {
    if (b_zero || c_zero) return GenPcsOperand::make_nan(cfg_);
    if (a.is_inf() && a.exc_sign() != p_sign) return GenPcsOperand::make_nan(cfg_);
    return GenPcsOperand::make_inf(cfg_, p_sign);
  }
  if (a.is_inf()) return GenPcsOperand::make_inf(cfg_, a.exc_sign());

  const int rnd_a = a.cls() == FpClass::Normal ? a.round_increment() : 0;
  const int rnd_c = c.cls() == FpClass::Normal ? c.round_increment() : 0;

  if (b_zero || c_zero) {
    if (a.is_zero()) return GenPcsOperand::make_zero(cfg_, false);
    CsNum bumped = compress3(cfg_.mant_digits(), a.mant().sum(),
                             a.mant().carries(), CsWord((std::uint64_t)rnd_a));
    return GenPcsOperand(cfg_, carry_reduce(bumped, cfg_.group),
                         PcsNum::zero(cfg_.tail_digits(), cfg_.group), a.exp(),
                         FpClass::Normal, false);
  }
  CSFMA_CHECK(b.format().precision() <= 53);

  const int W = cfg_.adder_width();
  const int prod_ofs = cfg_.mant_digits();
  // Alignment constant: A's mantissa scale is 2^(e_A - sig_msb) and the
  // window scale is 2^(e_P - sig_msb - 52 - prod_ofs), so
  // ofs_a = e_A - e_P + 52 + prod_ofs.  (At the paper geometry this equals
  // frac_bits() = 162 — a coincidence of block = 55 only.)
  const int align_const = 52 + prod_ofs;
  const CsWord b_sig = CsWord(WideUint<7>(WideUint<2>(b.sig())));
  CsNum product = multiply_dsp_tiled(c.mant().as_cs(), b_sig, 53, 17, 24, W,
                                     prod_ofs, nullptr);
  if (rnd_c != 0)
    product = cs_add_binary(product, (b_sig << prod_ofs).truncated(W));
  if (b.sign()) product = cs_negate(product);
  const int e_p = b.exp() + c.exp();

  const int e_a = a.cls() == FpClass::Normal ? a.exp() : e_p;
  WideUint<8> a_val =
      WideUint<8>(a.cls() == FpClass::Normal ? a.mant().to_binary() : CsWord())
          .sext(cfg_.mant_digits()) +
      WideUint<8>((std::uint64_t)rnd_a);
  const int ofs_a = e_a - e_p + align_const;
  if (!a_val.is_zero() && ofs_a > W - cfg_.mant_digits()) {
    CsNum bumped = compress3(cfg_.mant_digits(), a.mant().sum(),
                             a.mant().carries(), CsWord((std::uint64_t)rnd_a));
    return GenPcsOperand(cfg_, carry_reduce(bumped, cfg_.group),
                         PcsNum::zero(cfg_.tail_digits(), cfg_.group), a.exp(),
                         FpClass::Normal, false);
  }
  CsWord a_row;
  if (!a_val.is_zero() && ofs_a > -cfg_.mant_digits()) {
    WideUint<8> placed = ofs_a >= 0 ? (a_val << ofs_a) : (a_val >> -ofs_a);
    a_row = CsWord(placed).truncated(W);
  }

  CsNum adder = compress3(W, product.sum(), product.carry(), a_row);
  if (activity_ != nullptr) {
    activity_->probe("add.sum").observe(adder.sum());
    activity_->probe("add.carry").observe(adder.carry());
  }
  PcsNum reduced = carry_reduce(adder, cfg_.group);

  const int blocks = cfg_.adder_blocks();
  const int k = count_skippable_blocks(reduced.as_cs(), cfg_.block, blocks - 2);
  last_zd_skip_ = k;
  const int mant_lo = (blocks - 2 - k) * cfg_.block;
  PcsNum mant = reduced.extract_digits(mant_lo, cfg_.mant_digits());
  PcsNum tail = PcsNum::zero(cfg_.tail_digits(), cfg_.group);
  if (mant_lo >= cfg_.block)
    tail = reduced.extract_digits(mant_lo - cfg_.block, cfg_.tail_digits());

  if (mant.to_binary().is_zero() && tail.to_binary().is_zero())
    return GenPcsOperand::make_zero(cfg_, false);

  const int e_r = e_p + mant_lo - align_const;
  if (e_r > 2048)
    return GenPcsOperand::make_inf(cfg_, mant.as_cs().is_value_negative());
  if (e_r < -2047)
    return GenPcsOperand::make_zero(cfg_, mant.as_cs().is_value_negative());
  return GenPcsOperand(cfg_, mant, tail, e_r, FpClass::Normal, false);
}

PFloat GenPcsFma::fma_ieee(const PFloat& a, const PFloat& b, const PFloat& c,
                           Round rm) {
  GenPcsOperand r =
      fma(ieee_to_genpcs(cfg_, a), b, ieee_to_genpcs(cfg_, c));
  return genpcs_to_ieee(r, kBinary64, rm);
}

}  // namespace csfma
