#include "fma/pcs_format.hpp"

#include <sstream>

#include "common/check.hpp"

namespace csfma {

using G = PcsGeometry;

PcsOperand::PcsOperand()
    : mant_(PcsNum::zero(G::kMantDigits, G::kGroup)),
      round_(PcsNum::zero(G::kTailDigits, G::kGroup)),
      exp_(0),
      cls_(FpClass::Zero),
      exc_sign_(false) {}

PcsOperand::PcsOperand(PcsNum mant, PcsNum round, int exp_unbiased, FpClass cls,
                       bool exc_sign)
    : mant_(std::move(mant)),
      round_(std::move(round)),
      exp_(exp_unbiased),
      cls_(cls),
      exc_sign_(exc_sign) {
  CSFMA_CHECK(mant_.width() == G::kMantDigits && mant_.group() == G::kGroup);
  CSFMA_CHECK(round_.width() == G::kTailDigits && round_.group() == G::kGroup);
  CSFMA_CHECK_MSG(exp_ >= G::kExpMin && exp_ <= G::kExpMax,
                  "exponent outside the excess-2047 field");
}

PcsOperand PcsOperand::make_zero(bool sign) {
  PcsOperand r;
  r.cls_ = FpClass::Zero;
  r.exc_sign_ = sign;
  return r;
}

PcsOperand PcsOperand::make_inf(bool sign) {
  PcsOperand r;
  r.cls_ = FpClass::Inf;
  r.exc_sign_ = sign;
  return r;
}

PcsOperand PcsOperand::make_nan() {
  PcsOperand r;
  r.cls_ = FpClass::NaN;
  return r;
}

int PcsOperand::round_increment() const {
  CSFMA_CHECK(cls_ == FpClass::Normal);
  // Half of one mantissa ulp, in tail scale: the tail covers 55 fractional
  // digits, so half is 2^54.
  const CsWord tail = tail_assimilated();
  const CsWord half = CsWord::bit_at(G::kTailDigits - 1);
  if (tail < half) return 0;
  if (tail > half) return 1;
  // Exact tie: round half AWAY FROM ZERO — the direction depends on the
  // sign of the value (the mantissa's two's-complement sign; a zero
  // mantissa with a positive tail is positive).
  const bool negative = mant_.as_cs().is_value_negative();
  return negative ? 0 : 1;
}

bool PcsOperand::round_disagrees_ieee() const {
  CSFMA_CHECK(cls_ == FpClass::Normal);
  // Decompose the tail against half an ulp (2^54): guard = "at least half",
  // sticky = "strictly more" — this comparison form also covers the
  // unwrapped 56-bit tail overflow case, where both modes round up.
  const CsWord tail = tail_assimilated();
  const CsWord half = CsWord::bit_at(G::kTailDigits - 1);
  const bool guard = !(tail < half);
  const bool sticky = half < tail;
  const bool lsb = mant_.to_binary().bit(0);
  const bool negative = mant_.as_cs().is_value_negative();
  return round_disagrees_with_ieee(Round::HalfAwayFromZero, lsb, guard, sticky,
                                   negative);
}

PFloat PcsOperand::exact_value() const {
  switch (cls_) {
    case FpClass::Zero:
      return PFloat::zero(kWideExact, exc_sign_);
    case FpClass::Inf:
      return PFloat::inf(kWideExact, exc_sign_);
    case FpClass::NaN:
      return PFloat::nan(kWideExact);
    case FpClass::Normal:
      break;
  }
  // X_hat = mant_signed * 2^55 + tail, evaluated in a 512-bit two's
  // complement workspace.
  WideUint<8> m = WideUint<8>(mant_.to_binary()).sext(G::kMantDigits);
  WideUint<8> x = (m << G::kTailDigits) + WideUint<8>(tail_assimilated());
  const bool sign = x.bit(WideUint<8>::kBits - 1);
  const WideUint<8> mag = sign ? -x : x;
  return PFloat::normalize_round(kWideExact, sign, mag, exp_ - G::kFracBits,
                                 false, Round::NearestEven);
}

std::string PcsOperand::to_string() const {
  std::ostringstream os;
  switch (cls_) {
    case FpClass::Zero: os << (exc_sign_ ? "-0" : "+0"); return os.str();
    case FpClass::Inf: os << (exc_sign_ ? "-inf" : "+inf"); return os.str();
    case FpClass::NaN: return "nan";
    case FpClass::Normal: break;
  }
  os << "pcs{mant=" << mant_.to_binary().to_hex()
     << " tail=" << tail_assimilated().to_hex() << " exp=" << exp_ << "}";
  return os.str();
}

U192 PcsOperand::pack_bits() const {
  CSFMA_CHECK_MSG(cls_ == FpClass::Normal,
                  "exceptions travel on side wires, not in the word");
  U192 w;
  w = w.deposit(0, G::kMantDigits, U192(WideUint<3>(mant_.sum())));
  // Compress the grid carries (positions 0, 11, ..., 99) into 10 bits.
  for (int g = 0; g < 10; ++g) {
    w = w.deposit(G::kMantDigits + g, 1,
                  mant_.carries().bit(11 * g) ? U192::one() : U192());
  }
  w = w.deposit(120, G::kTailDigits, U192(WideUint<3>(round_.sum())));
  for (int g = 0; g < 5; ++g) {
    w = w.deposit(175 + g, 1,
                  round_.carries().bit(11 * g) ? U192::one() : U192());
  }
  w = w.deposit(180, 12, U192((std::uint64_t)exp_field()));
  return w;
}

PcsOperand PcsOperand::unpack_bits(const U192& bits) {
  CsWord msum = CsWord(WideUint<7>(bits.extract(0, G::kMantDigits)));
  CsWord mcar;
  for (int g = 0; g < 10; ++g) {
    if (bits.bit(G::kMantDigits + g)) mcar = mcar | CsWord::bit_at(11 * g);
  }
  CsWord tsum = CsWord(WideUint<7>(bits.extract(120, G::kTailDigits)));
  CsWord tcar;
  for (int g = 0; g < 5; ++g) {
    if (bits.bit(175 + g)) tcar = tcar | CsWord::bit_at(11 * g);
  }
  const int exp = (int)bits.extract64(180, 12) - G::kExpBias;
  return PcsOperand(PcsNum(G::kMantDigits, G::kGroup, msum, mcar),
                    PcsNum(G::kTailDigits, G::kGroup, tsum, tcar), exp,
                    FpClass::Normal, false);
}

PcsOperand ieee_to_pcs(const PFloat& x) {
  switch (x.cls()) {
    case FpClass::Zero:
      return PcsOperand::make_zero(x.sign());
    case FpClass::Inf:
      return PcsOperand::make_inf(x.sign());
    case FpClass::NaN:
      return PcsOperand::make_nan();
    case FpClass::Normal:
      break;
  }
  const int p = x.format().precision();
  CSFMA_CHECK_MSG(p <= 54, "source significand too wide for the PCS layout");
  // Place the significand MSB at mantissa digit kSigMsbDigit.
  const int shift = G::kSigMsbDigit - (p - 1);
  CSFMA_CHECK(shift >= 0);
  CsWord mag = CsWord(WideUint<7>(WideUint<2>(x.sig()))) << shift;
  CsNum mant = CsNum::from_signed(G::kMantDigits, x.sign(), mag);
  // Exponent: value = X * 2^(exp' - 162) with X = sig << (shift + 55), i.e.
  // sig * 2^(shift + 55 + exp' - 162), which must equal sig * 2^(e - frac):
  //   exp' = (e - frac) - shift - 55 + 162.
  const int exp2_of_sig_lsb = x.exp() - x.format().frac_bits;
  const int exp_fixed = exp2_of_sig_lsb - shift - G::kTailDigits + G::kFracBits;
  CSFMA_CHECK(exp_fixed >= G::kExpMin && exp_fixed <= G::kExpMax);
  return PcsOperand(PcsNum(G::kMantDigits, G::kGroup, mant.sum(), mant.carry()),
                    PcsNum::zero(G::kTailDigits, G::kGroup), exp_fixed,
                    FpClass::Normal, x.sign());
}

PFloat pcs_to_ieee(const PcsOperand& x, const FloatFormat& fmt, Round rm) {
  switch (x.cls()) {
    case FpClass::Zero:
      return PFloat::zero(fmt, x.exc_sign());
    case FpClass::Inf:
      return PFloat::inf(fmt, x.exc_sign());
    case FpClass::NaN:
      return PFloat::nan(fmt);
    case FpClass::Normal:
      break;
  }
  WideUint<8> m = WideUint<8>(x.mant().to_binary()).sext(PcsGeometry::kMantDigits);
  WideUint<8> xhat =
      (m << PcsGeometry::kTailDigits) + WideUint<8>(x.tail_assimilated());
  if (xhat.is_zero()) return PFloat::zero(fmt, false);
  const bool sign = xhat.bit(WideUint<8>::kBits - 1);
  const WideUint<8> mag = sign ? -xhat : xhat;
  return PFloat::normalize_round(fmt, sign, mag,
                                 x.exp() - PcsGeometry::kFracBits, false, rm);
}

}  // namespace csfma
