#include "fma/classic_fma.hpp"

#include <cstdlib>

#include "cs/csa_tree.hpp"
#include "cs/lza.hpp"
#include "introspect/event_log.hpp"
#include "introspect/signal_tap.hpp"

namespace csfma {

namespace {
/// Adder window of the classic double-precision FMA: 53b addend left of a
/// 106b carry-save product plus guard/round — the paper's "161b adder".
constexpr int kWindow = 161;
constexpr int kProductLsb = 0;
}  // namespace

PFloat ClassicFma::fma(const PFloat& a, const PFloat& b, const PFloat& c) {
  SignalTap* tap = hooks_ != nullptr ? hooks_->tap : nullptr;
  EventLog* events = hooks_ != nullptr ? hooks_->events : nullptr;
  // The architectural steps below drive the activity probes and the
  // normalization-distance bookkeeping; the returned value is the correctly
  // rounded fused result the architecture computes.
  if (a.is_normal() && b.is_normal() && c.is_normal()) {
    const int e_p = b.exp() + c.exp();
    const int d = a.exp() - e_p;
    // Multiplier: 53x53 in carry-save (the classic LUT/DSP CSA tree).
    // The multiplicand is unsigned — widen by one digit so the signed
    // window semantics keep it positive.
    CsNum mant_c = CsNum::from_binary(54, CsWord(WideUint<7>(WideUint<2>(c.sig()))));
    CsNum product = multiply_dsp_tiled(
        mant_c, CsWord(WideUint<7>(WideUint<2>(b.sig()))), 53, 17, 24, kWindow,
        kProductLsb, nullptr);
    if (activity_ != nullptr) {
      activity_->probe("mul.sum", "mul").observe(product.sum());
      activity_->probe("mul.carry", "mul").observe(product.carry());
    }
    if (tap != nullptr) {
      tap->begin_stage("mul");
      tap->tap("mul.sum", product.sum(), kWindow);
      tap->tap("mul.carry", product.carry(), kWindow);
    }
    if (std::abs(d) <= 60) {
      // Addend pre-shift (runs in parallel with the multiply).
      const int ofs = d + 52;  // addend lsb relative to product lsb
      WideUint<8> a_val((std::uint64_t)0);
      a_val = WideUint<8>(WideUint<2>(a.sig()));
      if (a.sign()) a_val = -a_val;
      WideUint<8> placed = ofs >= 0 ? a_val << ofs : a_val >> -ofs;
      CsWord a_row = CsWord(placed).truncated(kWindow);
      if (b.sign() != c.sign()) product = cs_negate(product);
      CsNum adder = compress3(kWindow, product.sum(), product.carry(), a_row);
      if (activity_ != nullptr) {
        activity_->probe("add.sum", "add").observe(adder.sum());
        activity_->probe("add.carry", "add").observe(adder.carry());
      }
      if (tap != nullptr) {
        tap->begin_stage("add");
        tap->tap("add.ashift", a_row, kWindow);
        tap->tap("add.sum", adder.sum(), kWindow);
        tap->tap("add.carry", adder.carry(), kWindow);
      }
      // LZA runs in parallel with the carry-propagate assimilation and
      // steers the variable-distance normalization shifter.
      last_norm_shift_ = lza_estimate(adder, events);
      CsWord assimilated = adder.to_binary();
      if (activity_ != nullptr) {
        activity_->probe("norm", "norm").observe(assimilated);
      }
      if (tap != nullptr) {
        tap->begin_stage("norm");
        tap->tap_u64("norm.shift", (std::uint64_t)last_norm_shift_, 8);
        tap->tap("norm.assimilated", assimilated, kWindow);
      }
      if (events != nullptr) {
        // Catastrophic cancellation: the sum lost far more leading digits
        // than any alignment explains — the numerically delicate case.
        const int run = leading_sign_run(adder);
        if (run >= 100) events->raise(EventKind::Cancellation, run);
      }
    }
  }
  return PFloat::fma(b, c, a, kBinary64, Round::NearestEven);
}

}  // namespace csfma
