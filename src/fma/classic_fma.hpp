// The classic fused multiply-add architecture (Hokenek/Montoye/Cook 1990),
// Fig 4 of the paper — the baseline the PCS/FCS designs depart from.
//
// IEEE 754-compliant operands AND result; internally:
//   * the multiplier produces the product in carry-save form (no
//     normalization between multiply and add),
//   * the addend is pre-shifted in parallel with the multiplication,
//   * a 161b end-around adder with conditional complement assimilates,
//   * a Leading Zero Anticipator computes the normalization distance in
//     parallel with the addition,
//   * the variable-distance shifter normalizes, then rounding and the
//     conditional 1-bit post-normalization shift finish.
//
// Being a correctly implemented fused operation, its value equals the
// correctly rounded a + b*c (verified against PFloat::fma in tests); the
// point of simulating the steps is the timing/area/energy model and the
// architectural contrast.
#pragma once

#include "common/activity.hpp"
#include "fp/pfloat.hpp"
#include "introspect/hooks.hpp"

namespace csfma {

class ClassicFma {
 public:
  /// `hooks` (optional) attaches signal taps / the numerical event log;
  /// both pointers must outlive the unit.  Null costs one pointer check.
  explicit ClassicFma(ActivityRecorder* activity = nullptr,
                      const IntrospectHooks* hooks = nullptr)
      : activity_(activity), hooks_(hooks) {}

  /// R = A + B * C, all IEEE binary64, round-to-nearest-even (the mode the
  /// 1990 design implements).
  PFloat fma(const PFloat& a, const PFloat& b, const PFloat& c);

  /// Normalization shift distance used by the last operation (LZA-guided).
  int last_norm_shift() const { return last_norm_shift_; }

 private:
  ActivityRecorder* activity_;
  const IntrospectHooks* hooks_;
  int last_norm_shift_ = 0;
};

}  // namespace csfma
