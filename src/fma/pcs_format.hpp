// The 192-bit PCS-FMA operand format (Sec. III-F) and its IEEE converters.
//
// Layout (per paper):  110b mantissa sum + 10b mantissa carries (PCS,
// carry every 11th bit) + 55b rounding-data sum + 5b rounding-data carries
// + 12b exponent in excess-2047  =  192 bits, plus two exception side-wires
// (the FloPoCo technique of Sec. III-B), here an FpClass tag.
//
// Value semantics (normative; see DESIGN.md §3): let X be the 165-digit CS
// number formed by the mantissa digits above the rounding digits, and
// X̂ = signed(mant mod 2^110)·2^55 + (round.sum + round.carries) its exact
// assimilation (the rounding tail is a non-negative extension below the
// mantissa).  Then
//
//     value = X̂ · 2^(exp − 162)
//
// An IEEE binary64 significand converts in with its MSB (implied 1) at
// mantissa digit 107, leaving digits 108 (guard) and 109 (two's-complement
// sign) free — the "52+1 explicit +1 sign +1 guard" budget derived in
// Sec. III-D, which pins the 55b block size.
#pragma once

#include "cs/pcs.hpp"
#include "fp/pfloat.hpp"

namespace csfma {

/// Geometry constants of the PCS-FMA datapath (Sec. III-D/E/F).
struct PcsGeometry {
  static constexpr int kBlock = 55;        // result block size
  static constexpr int kGroup = 11;        // PCS carry spacing
  static constexpr int kMantDigits = 110;  // two result blocks
  static constexpr int kTailDigits = 55;   // rounding-data block
  static constexpr int kAdderWidth = 385;  // 110 + 163 + 110, rounded to 7 blocks
  static constexpr int kProductWidth = 163;  // 110b x 53b signed product
  static constexpr int kProductOffset = 110;  // product lsb in adder window
  static constexpr int kExpBias = 2047;    // excess-2047, 12-bit field
  static constexpr int kExpMin = -2047;
  static constexpr int kExpMax = 2048;
  // Binary-point constant: value = X_hat * 2^(exp - kFracBits).
  static constexpr int kFracBits = 162;
  // IEEE significand MSB lands at this mantissa digit on conversion.
  static constexpr int kSigMsbDigit = 107;
};

/// One PCS-FMA operand.
class PcsOperand {
 public:
  PcsOperand();

  /// Normal construction from planes; checks the format grids.
  PcsOperand(PcsNum mant, PcsNum round, int exp_unbiased, FpClass cls,
             bool exc_sign);

  static PcsOperand make_zero(bool sign);
  static PcsOperand make_inf(bool sign);
  static PcsOperand make_nan();

  const PcsNum& mant() const { return mant_; }
  const PcsNum& round() const { return round_; }
  int exp() const { return exp_; }        // unbiased
  int exp_field() const { return exp_ + PcsGeometry::kExpBias; }
  FpClass cls() const { return cls_; }
  bool exc_sign() const { return exc_sign_; }

  bool is_nan() const { return cls_ == FpClass::NaN; }
  bool is_inf() const { return cls_ == FpClass::Inf; }
  bool is_zero() const {
    return cls_ == FpClass::Zero ||
           (cls_ == FpClass::Normal && mant_.to_binary().is_zero() &&
            tail_assimilated().is_zero());
  }

  /// The mantissa's assimilated signed value (what the next multiplier's
  /// pre-assimilation sees) — excludes the rounding tail.
  CsWord mant_signed() const { return mant_.signed_value(); }

  /// Exact unsigned assimilation of the rounding tail (56 bits, unwrapped:
  /// the tail is a non-negative extension, its digit values just add).
  CsWord tail_assimilated() const { return round_.sum() + round_.carries(); }

  /// The deferred-rounding decision of Sec. III-C/E for mode
  /// "round half away from zero": examine ONLY the rounding block.
  /// Returns +1/0 to add to the mantissa.
  int round_increment() const;

  /// True when the deferred half-away-from-zero decision differs from what
  /// IEEE nearest-even would decide at the same truncation boundary — the
  /// paper's documented misrounding case, raised as a numerical event.
  bool round_disagrees_ieee() const;

  /// Exact represented value (for golden comparisons), as a PFloat in a
  /// very wide format so nothing is lost.
  PFloat exact_value() const;

  /// The packed 192-bit operand word of Sec. III-F (normal operands only;
  /// the exception class travels on the two side wires).  Layout, LSB
  /// first: mant sum [0,110) | mant carries (grid-compressed) [110,120) |
  /// tail sum [120,175) | tail carries [175,180) | excess-2047 exp
  /// [180,192).
  U192 pack_bits() const;
  static PcsOperand unpack_bits(const U192& bits);

  std::string to_string() const;

 private:
  PcsNum mant_;
  PcsNum round_;
  int exp_;
  FpClass cls_;
  bool exc_sign_;
};

/// Exact conversion IEEE 754 binary64 (or narrower) -> PCS operand.
/// This is the CVT operator the HLS pass inserts at chain entries.
PcsOperand ieee_to_pcs(const PFloat& x);

/// Conversion PCS operand -> IEEE-style format: full assimilation,
/// normalization and a single rounding — the chain-exit CVT operator.
PFloat pcs_to_ieee(const PcsOperand& x, const FloatFormat& fmt, Round rm);

// (kWideExact, the wide readout format, lives in fp/pfloat.hpp.)

}  // namespace csfma
