#include "fma/fcs_fma.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "cs/zero_detect.hpp"
#include "introspect/event_log.hpp"
#include "introspect/signal_tap.hpp"

namespace csfma {

using G = FcsGeometry;

namespace {

/// DSP48E1 tile geometry: C's planes go through the pre-adder into the
/// wide port in 23-bit CS chunks (Sec. III-H), B through the 18-bit port.
constexpr int kCandChunk = 23;
constexpr int kMultChunk = 17;

bool value_sign(const FcsOperand& x) {
  if (x.cls() != FpClass::Normal) return x.exc_sign();
  return x.mant().is_value_negative();
}

FcsOperand passthrough_rounded(const FcsOperand& a, int rnd_a) {
  CsNum bumped = compress3(G::kMantDigits, a.mant().sum(), a.mant().carry(),
                           CsWord((std::uint64_t)rnd_a));
  return FcsOperand(bumped, CsNum::zero(G::kTailDigits), a.exp(),
                    FpClass::Normal, value_sign(a));
}

}  // namespace

FcsOperand FcsFma::fma(const FcsOperand& a, const PFloat& b,
                       const FcsOperand& c) {
  SignalTap* tap = hooks_ != nullptr ? hooks_->tap : nullptr;
  EventLog* events = hooks_ != nullptr ? hooks_->events : nullptr;
  // ---- exception side-wires ----
  if (a.is_nan() || b.is_nan() || c.is_nan()) return FcsOperand::make_nan();
  const bool b_zero = b.is_zero();
  const bool c_zero = c.is_zero();
  const bool p_inf = b.is_inf() || c.is_inf();
  const bool p_sign = b.sign() != value_sign(c);
  if (p_inf) {
    if (b_zero || c_zero) return FcsOperand::make_nan();
    if (a.is_inf() && a.exc_sign() != p_sign) return FcsOperand::make_nan();
    return FcsOperand::make_inf(p_sign);
  }
  if (a.is_inf()) return FcsOperand::make_inf(a.exc_sign());

  // ---- deferred rounding decisions ----
  const int rnd_a = a.cls() == FpClass::Normal ? a.round_increment() : 0;
  const int rnd_c = c.cls() == FpClass::Normal ? c.round_increment() : 0;
  if (events != nullptr) {
    // Misrounding of the deferred half-away-from-zero rule vs IEEE
    // nearest-even: detail 0 = the A operand's tail, 1 = C's.
    if (a.cls() == FpClass::Normal && a.round_disagrees_ieee()) {
      events->raise(EventKind::MisroundVsIeee, 0);
    }
    if (c.cls() == FpClass::Normal && c.round_disagrees_ieee()) {
      events->raise(EventKind::MisroundVsIeee, 1);
    }
  }

  if (b_zero || c_zero) {
    if (a.is_zero()) {
      const bool s = p_sign && value_sign(a);
      return FcsOperand::make_zero(s);
    }
    return passthrough_rounded(a, rnd_a);
  }
  CSFMA_CHECK_MSG(b.format().precision() <= 53,
                  "B must be IEEE binary64 or narrower");

  // ---- early leading-zero anticipation on the INPUTS (Sec. III-G) ----
  // Anticipated upper bounds for the most-significant digit position of
  // each addend in adder-window coordinates; the maximum plus one bounds
  // the sum.  All-zero mantissas are detected reliably at digit level.
  const bool a_present = a.cls() == FpClass::Normal && !a.mant_digits_all_zero();
  const int e_p = b.exp() + c.exp();
  const int e_a = a.cls() == FpClass::Normal ? a.exp() : e_p;
  const int ofs_a = e_a - e_p + G::kProductOffset + (G::kFracBits - 59);
  // (ofs_a derivation: A's mant lsb weight 2^(e_a-82) must equal window
  //  weight 2^(ofs_a + e_p - 221); 221 = 82 + 52 + 87, so
  //  ofs_a = e_a - e_p + 139.)
  CSFMA_CHECK(G::kProductOffset + G::kFracBits - 59 == 139);

  if (a_present && ofs_a > G::kAdderWidth - G::kMantDigits) {
    return passthrough_rounded(a, rnd_a);
  }

  int p_est = -1;
  if (a_present && ofs_a > -G::kMantDigits) {
    const int lza_a = lza_estimate(a.mant(), events);
    // msb(|A|+1) <= 87 - lza_a  (the +1 covers the deferred round-up).
    p_est = std::max(p_est, ofs_a + G::kMantDigits - lza_a);
  }
  {
    const int lza_c = lza_estimate(c.mant(), events);
    // msb(|C|) <= 86 - lza_c; times B < 2^53 and +1 for rounding:
    // msb(product) <= 86 - lza_c + 53 + 1.
    p_est = std::max(p_est, G::kProductOffset + G::kMantDigits + 53 - lza_c);
  }
  p_est += 1;  // sum of two addends can grow one digit

  // ---- multiplier: DSP-tiled CSA tree in the adder window (pre-adders
  //      assimilate C's planes; Sec. III-H) ----
  const CsWord b_sig = CsWord(WideUint<7>(WideUint<2>(b.sig())));
  CsNum product =
      multiply_dsp_tiled(c.mant(), b_sig, 53, kCandChunk, kMultChunk,
                         G::kAdderWidth, G::kProductOffset, &mul_stats_);
  if (rnd_c != 0) {
    product = cs_add_binary(
        product, (b_sig << G::kProductOffset).truncated(G::kAdderWidth));
  }
  if (b.sign()) product = cs_negate(product);
  if (activity_ != nullptr) {
    activity_->probe("mul.sum", "mul").observe(product.sum());
    activity_->probe("mul.carry", "mul").observe(product.carry());
  }
  if (tap != nullptr) {
    tap->begin_stage("mul");
    tap->tap("mul.sum", product.sum(), G::kAdderWidth);
    tap->tap("mul.carry", product.carry(), G::kAdderWidth);
  }

  // ---- A path: deferred rounding + pre-shift ----
  WideUint<8> a_val =
      WideUint<8>(a.cls() == FpClass::Normal ? a.mant().to_binary() : CsWord())
          .sext(G::kMantDigits) +
      WideUint<8>((std::uint64_t)rnd_a);
  CsWord a_row;
  if (!a_val.is_zero() && ofs_a > -G::kMantDigits) {
    WideUint<8> placed = ofs_a >= 0 ? (a_val << ofs_a) : (a_val >> -ofs_a);
    a_row = CsWord(placed).truncated(G::kAdderWidth);
  }
  if (activity_ != nullptr) activity_->probe("ashift", "align").observe(a_row);
  if (tap != nullptr) {
    tap->begin_stage("align");
    tap->tap("align.ashift", a_row, G::kAdderWidth);
  }

  // ---- 377c CS adder (3:2); the planes stay raw — no carry reduce ----
  CsNum adder = compress3(G::kAdderWidth, product.sum(), product.carry(), a_row);
  if (activity_ != nullptr) {
    activity_->probe("add.sum", "add").observe(adder.sum());
    activity_->probe("add.carry", "add").observe(adder.carry());
  }
  if (tap != nullptr) {
    tap->begin_stage("add");
    tap->tap("add.sum", adder.sum(), G::kAdderWidth);
    tap->tap("add.carry", adder.carry(), G::kAdderWidth);
  }
  if (events != nullptr) {
    // Catastrophic cancellation, in adder-window digit coordinates (see
    // pcs_fma.cpp): the sum's msb fell >= 50 digits below the highest input.
    const int a_msb = a_present && ofs_a > -G::kMantDigits
                          ? ofs_a + G::kMantDigits - 1
                          : -1;
    const int p_msb = G::kProductOffset + G::kMantDigits + 53;
    const int out_msb = G::kAdderWidth - 1 - leading_sign_run(adder);
    const int drop = std::max(a_msb, p_msb) - out_msb;
    if (drop >= 50) events->raise(EventKind::Cancellation, drop);
  }

  // ---- 11:1 result multiplexer ----
  int b_top;
  if (select_ == FcsSelect::EarlyLza) {
    // Anticipation-driven: the window top must cover the sign digit above
    // the anticipated msb.
    b_top = (p_est + 1) / G::kBlock;
  } else {
    // Exact ZD on the adder result (Sec. III-F applied to the FCS
    // geometry): skip leading blocks by the Fig 10 rules.
    const int blocks = G::kAdderWidth / G::kBlock;  // 13
    const int k = count_skippable_blocks(adder, G::kBlock, blocks - 3, events);
    b_top = blocks - 1 - k;
  }
  b_top = std::clamp(b_top, 2, G::kAdderWidth / G::kBlock - 1);
  last_top_block_ = b_top;
  const int mant_lo = (b_top - 2) * G::kBlock;
  CsNum mant = adder.extract_digits(mant_lo, G::kMantDigits);
  CsNum tail = CsNum::zero(G::kTailDigits);
  if (mant_lo >= G::kBlock) {
    tail = adder.extract_digits(mant_lo - G::kBlock, G::kTailDigits);
  }
  if (activity_ != nullptr) {
    activity_->probe("mux.sum", "mux").observe(mant.sum());
    activity_->probe("mux.carry", "mux").observe(mant.carry());
  }
  if (tap != nullptr) {
    tap->begin_stage("mux");
    tap->tap_u64("mux.top_block", (std::uint64_t)b_top, 4);
    tap->tap("mux.sum", mant.sum(), G::kMantDigits);
    tap->tap("mux.carry", mant.carry(), G::kMantDigits);
  }

  if (mant.sum().is_zero() && mant.carry().is_zero() && tail.sum().is_zero() &&
      tail.carry().is_zero()) {
    // Anything that survived lies below the selected window — the
    // truncation the early-LZA design accepts under total cancellation.
    return FcsOperand::make_zero(false);
  }

  // ---- exponent update ----
  const int e_r = e_p + mant_lo - 139;
  if (e_r > G::kExpMax) return FcsOperand::make_inf(mant.is_value_negative());
  if (e_r < G::kExpMin) {
    if (events != nullptr) events->raise(EventKind::SubnormalFlush, e_r);
    return FcsOperand::make_zero(mant.is_value_negative());
  }
  return FcsOperand(mant, tail, e_r, FpClass::Normal, false);
}

PFloat FcsFma::fma_ieee(const PFloat& a, const PFloat& b, const PFloat& c,
                        Round rm) {
  FcsOperand r = fma(ieee_to_fcs(a), b, ieee_to_fcs(c));
  return fcs_to_ieee(r, kBinary64, rm);
}

}  // namespace csfma
