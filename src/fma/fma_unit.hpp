// Unified interface over the four multiply-add architectures.
//
// Every experiment in the repo pushes operand triples R = A + B*C through
// one of the bit-accurate unit simulators, but the concrete classes expose
// divergent APIs: ClassicFma::fma is IEEE-in/IEEE-out, the PCS/FCS units
// natively consume and produce carry-save operands, and DiscreteMulAdd is
// a mul/add pair.  FmaUnit erases those differences behind one interface
// so batch drivers (src/engine), accuracy sweeps and fuzzers can be written
// once and run against any architecture:
//
//   * `fma_ieee` — the single-operation view with IEEE 754 boundaries
//     (convert in, run the unit once, convert out), and
//   * `lift` / `fma` / `lower` — the chained view: values stay in the
//     unit's NATIVE operand format between operations (carry-save with
//     deferred rounding for PCS/FCS, plain binary64 for the IEEE units),
//     which is exactly how the paper's Sec. IV-B chains are wired.
//
// Units are selected by `UnitKind` through `make_fma_unit`, which also
// wires an optional ActivityRecorder for the energy model's toggle counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <variant>

#include "common/activity.hpp"
#include "fma/fcs_format.hpp"
#include "fma/pcs_format.hpp"
#include "fp/pfloat.hpp"
#include "introspect/hooks.hpp"

namespace csfma {

/// One work item: R = A + B*C (B stays IEEE in every architecture).  Lives
/// with the unit interface (not the engine) so batch entry points can
/// consume operand arrays directly.
struct OperandTriple {
  PFloat a, b, c;
};

/// Per-batch bundle for fma_ieee_batch: the final rounding mode, the event
/// log (null = off) and the stream index of the batch's first operation —
/// operation i of the batch logs under index base_index + i.
struct FmaBatchHooks {
  Round rm = Round::NearestEven;
  EventLog* events = nullptr;
  std::uint64_t base_index = 0;
};

/// The four Table I architectures.
enum class UnitKind {
  Discrete,  // Xilinx CoreGen discrete multiplier + adder (two roundings)
  Classic,   // classic fused FMA (Hokenek/Montoye/Cook; FloPoCo-style)
  Pcs,       // partial-carry-save FMA (Sec. III-F, Fig 9)
  Fcs,       // full-carry-save FMA (Sec. III-G/H, Fig 11)
};

const char* to_string(UnitKind kind);

/// All kinds, for sweeps over the whole ladder.
inline constexpr UnitKind kAllUnitKinds[] = {UnitKind::Discrete,
                                             UnitKind::Classic, UnitKind::Pcs,
                                             UnitKind::Fcs};

/// Coarse pipeline-depth class (the Table I / Fig 13 contrast).  The exact
/// cycle counts live in the fpga/ synthesis model; this classifies the
/// architectural reason for them.
enum class LatencyClass {
  DiscretePair,  // separate mul and add pipelines; latencies add up
  FusedClassic,  // one fused pipeline with full normalization + rounding
  CarrySave,     // normalization/rounding deferred out of the loop (P/FCS)
};

const char* to_string(LatencyClass lc);

/// A value in a unit's native inter-operation format: plain IEEE for the
/// Discrete/Classic units, a carry-save operand for PCS/FCS.  Opaque to
/// generic callers; unit-specific code may unwrap the concrete format.
class FmaOperand {
 public:
  FmaOperand() : v_(PFloat()) {}
  explicit FmaOperand(PFloat v) : v_(std::move(v)) {}
  explicit FmaOperand(PcsOperand v) : v_(std::move(v)) {}
  explicit FmaOperand(FcsOperand v) : v_(std::move(v)) {}

  bool is_ieee() const { return std::holds_alternative<PFloat>(v_); }
  bool is_pcs() const { return std::holds_alternative<PcsOperand>(v_); }
  bool is_fcs() const { return std::holds_alternative<FcsOperand>(v_); }

  /// Unwrap; checked against the stored alternative.
  const PFloat& ieee() const;
  const PcsOperand& pcs() const;
  const FcsOperand& fcs() const;

 private:
  std::variant<PFloat, PcsOperand, FcsOperand> v_;
};

/// Abstract multiply-add unit: R = A + B*C.  B is always IEEE binary64 (the
/// non-critical operand stays standard in every architecture, Sec. III-D).
class FmaUnit {
 public:
  virtual ~FmaUnit() = default;

  virtual UnitKind kind() const = 0;
  /// Human-readable architecture name (matches the Table I row labels).
  virtual std::string_view name() const = 0;
  virtual LatencyClass latency_class() const = 0;

  /// Convert an IEEE value into the unit's native inter-operation format.
  virtual FmaOperand lift(const PFloat& v) const = 0;
  /// Convert a native value out to IEEE.  `rm` is the final (deferred)
  /// rounding for the carry-save units; the IEEE units' values are already
  /// rounded by the hardware, so it is a no-op re-round there.
  virtual PFloat lower(const FmaOperand& v, Round rm) const = 0;
  /// One multiply-add in the native format: returns a + b*c.  For PCS/FCS
  /// the result keeps its unrounded tail for the next chained operation.
  virtual FmaOperand fma(const FmaOperand& a, const PFloat& b,
                         const FmaOperand& c) = 0;

  /// Single-operation convenience with IEEE boundaries:
  /// lower(fma(lift(a), b, lift(c)), rm).
  virtual PFloat fma_ieee(const PFloat& a, const PFloat& b, const PFloat& c,
                          Round rm);

  /// Batched fma_ieee over `n` independent triples: out[i] = a_i + b_i*c_i,
  /// with stream semantics identical to the per-operation loop — when
  /// hooks.events is non-null each operation contributes
  /// begin_op(hooks.base_index + i, ...) followed by its events, in
  /// operation order.  The base implementation IS that loop; units with a
  /// bit-sliced batch path (engine/slice.hpp) override it, and the engine's
  /// backend=scalar knob calls the base explicitly as the reference oracle.
  /// Overrides must keep results, per-probe toggle counts and the event
  /// sequence bit-identical to the base loop.
  virtual void fma_ieee_batch(const OperandTriple* ops, std::size_t n,
                              PFloat* out, const FmaBatchHooks& hooks);
};

/// Construct the unit simulator for `kind`.  `activity` (optional) receives
/// per-component toggle counts and must outlive the unit.  `hooks`
/// (optional) attaches signal taps / the numerical event log; the struct
/// and anything it points to must outlive the unit, and a null (or
/// all-null) hooks costs one pointer check per operation.
std::unique_ptr<FmaUnit> make_fma_unit(UnitKind kind,
                                       ActivityRecorder* activity = nullptr,
                                       const IntrospectHooks* hooks = nullptr);

}  // namespace csfma
