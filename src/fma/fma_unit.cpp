#include "fma/fma_unit.hpp"

#include "common/check.hpp"
#include "fma/classic_fma.hpp"
#include "fma/discrete.hpp"
#include "fma/fcs_fma.hpp"
#include "fma/pcs_fma.hpp"
#include "introspect/event_log.hpp"

namespace csfma {

const char* to_string(UnitKind kind) {
  switch (kind) {
    case UnitKind::Discrete:
      return "discrete";
    case UnitKind::Classic:
      return "classic";
    case UnitKind::Pcs:
      return "pcs";
    case UnitKind::Fcs:
      return "fcs";
  }
  return "?";
}

const char* to_string(LatencyClass lc) {
  switch (lc) {
    case LatencyClass::DiscretePair:
      return "discrete-pair";
    case LatencyClass::FusedClassic:
      return "fused-classic";
    case LatencyClass::CarrySave:
      return "carry-save";
  }
  return "?";
}

const PFloat& FmaOperand::ieee() const {
  CSFMA_CHECK_MSG(is_ieee(), "FmaOperand does not hold an IEEE value");
  return std::get<PFloat>(v_);
}

const PcsOperand& FmaOperand::pcs() const {
  CSFMA_CHECK_MSG(is_pcs(), "FmaOperand does not hold a PCS operand");
  return std::get<PcsOperand>(v_);
}

const FcsOperand& FmaOperand::fcs() const {
  CSFMA_CHECK_MSG(is_fcs(), "FmaOperand does not hold an FCS operand");
  return std::get<FcsOperand>(v_);
}

PFloat FmaUnit::fma_ieee(const PFloat& a, const PFloat& b, const PFloat& c,
                         Round rm) {
  return lower(fma(lift(a), b, lift(c)), rm);
}

void FmaUnit::fma_ieee_batch(const OperandTriple* ops, std::size_t n,
                             PFloat* out, const FmaBatchHooks& hooks) {
  for (std::size_t i = 0; i < n; ++i) {
    if (hooks.events != nullptr) {
      hooks.events->begin_op(hooks.base_index + i, ops[i].a.to_bits().lo64(),
                             ops[i].b.to_bits().lo64(),
                             ops[i].c.to_bits().lo64());
    }
    out[i] = fma_ieee(ops[i].a, ops[i].b, ops[i].c, hooks.rm);
  }
}

namespace {

/// Shared base for the two IEEE-boundary units: native format == IEEE.
class IeeeUnitBase : public FmaUnit {
 public:
  FmaOperand lift(const PFloat& v) const override { return FmaOperand(v); }
  PFloat lower(const FmaOperand& v, Round rm) const override {
    // The unit already rounded to binary64; re-rounding is exact.
    return v.ieee().round_to(kBinary64, rm);
  }
};

class DiscreteUnit final : public IeeeUnitBase {
 public:
  DiscreteUnit(ActivityRecorder* activity, const IntrospectHooks* hooks)
      : unit_(activity, hooks) {}
  UnitKind kind() const override { return UnitKind::Discrete; }
  std::string_view name() const override { return "Xilinx CoreGen"; }
  LatencyClass latency_class() const override {
    return LatencyClass::DiscretePair;
  }
  FmaOperand fma(const FmaOperand& a, const PFloat& b,
                 const FmaOperand& c) override {
    return FmaOperand(unit_.mul_add(a.ieee(), b, c.ieee()));
  }

 private:
  DiscreteMulAdd unit_;
};

class ClassicUnit final : public IeeeUnitBase {
 public:
  ClassicUnit(ActivityRecorder* activity, const IntrospectHooks* hooks)
      : unit_(activity, hooks) {}
  UnitKind kind() const override { return UnitKind::Classic; }
  std::string_view name() const override { return "FloPoCo FPPipeline"; }
  LatencyClass latency_class() const override {
    return LatencyClass::FusedClassic;
  }
  FmaOperand fma(const FmaOperand& a, const PFloat& b,
                 const FmaOperand& c) override {
    return FmaOperand(unit_.fma(a.ieee(), b, c.ieee()));
  }

 private:
  ClassicFma unit_;
};

class PcsUnit final : public FmaUnit {
 public:
  PcsUnit(ActivityRecorder* activity, const IntrospectHooks* hooks)
      : unit_(activity, hooks) {}
  UnitKind kind() const override { return UnitKind::Pcs; }
  std::string_view name() const override { return "PCS-FMA"; }
  LatencyClass latency_class() const override {
    return LatencyClass::CarrySave;
  }
  FmaOperand lift(const PFloat& v) const override {
    return FmaOperand(ieee_to_pcs(v));
  }
  PFloat lower(const FmaOperand& v, Round rm) const override {
    return pcs_to_ieee(v.pcs(), kBinary64, rm);
  }
  FmaOperand fma(const FmaOperand& a, const PFloat& b,
                 const FmaOperand& c) override {
    return FmaOperand(unit_.fma(a.pcs(), b, c.pcs()));
  }
  PFloat fma_ieee(const PFloat& a, const PFloat& b, const PFloat& c,
                  Round rm) override {
    return unit_.fma_ieee(a, b, c, rm);
  }
  void fma_ieee_batch(const OperandTriple* ops, std::size_t n, PFloat* out,
                      const FmaBatchHooks& hooks) override {
    unit_.fma_ieee_batch(ops, n, out, hooks);
  }

 private:
  PcsFma unit_;
};

class FcsUnit final : public FmaUnit {
 public:
  FcsUnit(ActivityRecorder* activity, const IntrospectHooks* hooks)
      : unit_(activity, FcsSelect::EarlyLza, hooks) {}
  UnitKind kind() const override { return UnitKind::Fcs; }
  std::string_view name() const override { return "FCS-FMA"; }
  LatencyClass latency_class() const override {
    return LatencyClass::CarrySave;
  }
  FmaOperand lift(const PFloat& v) const override {
    return FmaOperand(ieee_to_fcs(v));
  }
  PFloat lower(const FmaOperand& v, Round rm) const override {
    return fcs_to_ieee(v.fcs(), kBinary64, rm);
  }
  FmaOperand fma(const FmaOperand& a, const PFloat& b,
                 const FmaOperand& c) override {
    return FmaOperand(unit_.fma(a.fcs(), b, c.fcs()));
  }
  PFloat fma_ieee(const PFloat& a, const PFloat& b, const PFloat& c,
                  Round rm) override {
    return unit_.fma_ieee(a, b, c, rm);
  }

 private:
  FcsFma unit_;
};

}  // namespace

std::unique_ptr<FmaUnit> make_fma_unit(UnitKind kind,
                                       ActivityRecorder* activity,
                                       const IntrospectHooks* hooks) {
  switch (kind) {
    case UnitKind::Discrete:
      return std::make_unique<DiscreteUnit>(activity, hooks);
    case UnitKind::Classic:
      return std::make_unique<ClassicUnit>(activity, hooks);
    case UnitKind::Pcs:
      return std::make_unique<PcsUnit>(activity, hooks);
    case UnitKind::Fcs:
      return std::make_unique<FcsUnit>(activity, hooks);
  }
  CSFMA_CHECK_MSG(false, "unknown UnitKind");
  return nullptr;
}

}  // namespace csfma
