// The FCS-FMA unit (Sec. III-G/H, Fig 11): R = A + B * C with A, C, R in
// full-carry-save format.  Differences from the PCS-FMA:
//
//   * NO Carry Reduction step: the adder output planes are passed through
//     raw; the DSP48E1 *pre-adders* assimilate C's planes at the next
//     multiplier input (Virtex-6/-7 only — the architectural reason this
//     unit does not port to Virtex-5);
//   * block selection is driven by EARLY leading-zero anticipation on the
//     *inputs* (A's and C's mantissas via LZA, B's implied leading 1),
//     combined at block granularity, instead of the exact-but-slower Zero
//     Detector on the result (Sec. III-G).  The anticipated position is an
//     upper bound with a 3-digit uncertainty (1 LZA + 1 product + 1 sum),
//     absorbed by the 29-digit block margin;
//   * the result multiplexer selects 3 blocks out of 13 from 11 possible
//     positions (the 11:1 mux of Sec. III-H), plus the parallel tail mux.
#pragma once

#include "common/activity.hpp"
#include "cs/csa_tree.hpp"
#include "cs/lza.hpp"
#include "fma/fcs_format.hpp"
#include "introspect/hooks.hpp"

namespace csfma {

/// Result-block selection strategy (the Sec. III-F vs III-G alternative):
/// the exact Zero Detector examines the *result* digits (precise, but the
/// ZD then sits on the critical path and determines total latency), while
/// the early LZA anticipates from the *inputs* (off the critical path, at
/// the cost of the 3-digit uncertainty margin and the cancellation
/// inaccuracy the paper accepts).
enum class FcsSelect { EarlyLza, ZeroDetect };

class FcsFma {
 public:
  /// `hooks` (optional) attaches signal taps / the numerical event log;
  /// null costs one pointer check per operation.
  explicit FcsFma(ActivityRecorder* activity = nullptr,
                  FcsSelect select = FcsSelect::EarlyLza,
                  const IntrospectHooks* hooks = nullptr)
      : activity_(activity), select_(select), hooks_(hooks) {}

  /// R = A + B * C.  B must be binary64 (or narrower).
  FcsOperand fma(const FcsOperand& a, const PFloat& b, const FcsOperand& c);

  /// Single-operation convenience with IEEE boundaries.
  PFloat fma_ieee(const PFloat& a, const PFloat& b, const PFloat& c, Round rm);

  const CsaTreeStats& last_mul_stats() const { return mul_stats_; }
  /// Top block index chosen by the early-LZA mux in the last operation
  /// (2..12; 11 possibilities).
  int last_top_block() const { return last_top_block_; }

 private:
  ActivityRecorder* activity_;
  FcsSelect select_;
  const IntrospectHooks* hooks_ = nullptr;
  CsaTreeStats mul_stats_{};
  int last_top_block_ = 0;
};

}  // namespace csfma
