// The FCS-FMA operand format (Sec. III-H) and its IEEE converters.
//
// The full-carry-save operand keeps BOTH raw planes of every digit: the
// mantissa is 87 CS digits (three 29-digit blocks — reduced from 116b/two
// 58b blocks for routability, as the paper describes), the rounding tail is
// 29 CS digits, and the exponent is 12b excess-2047.  Each digit is "1b
// partial sum + 1b CS carry" (the paper's unit 'c').  There is NO carry
// reduction step: the DSP48E1 pre-adders of Virtex-6/-7 assimilate the
// planes where binary values are needed.
//
// Value semantics mirror the PCS format:
//   X̂ = signed((S_m + C_m) mod 2^87) · 2^29 + (S_t + C_t)
//   value = X̂ · 2^(exp − 111)
// An IEEE binary64 significand converts in with its MSB at mantissa digit
// 82; digits 83..86 stay clear — the sign digit plus the 3-digit early-LZA
// uncertainty margin derived in Sec. III-G/H (which guarantees ≥ 25 + 29 =
// 54 significant digits in the two lower result blocks, exceeding binary64).
#pragma once

#include "cs/cs_num.hpp"
#include "fp/pfloat.hpp"

namespace csfma {

/// Geometry constants of the FCS-FMA datapath (Sec. III-G/H).
struct FcsGeometry {
  static constexpr int kBlock = 29;         // result block size (digits)
  static constexpr int kMantDigits = 87;    // three result blocks
  static constexpr int kTailDigits = 29;    // rounding-data block
  static constexpr int kAdderWidth = 377;   // 13 blocks of 29 digits
  static constexpr int kProductWidth = 145; // five blocks (87c x 53b)
  static constexpr int kProductOffset = 87; // three blocks right of product
  static constexpr int kExpBias = 2047;
  static constexpr int kExpMin = -2047;
  static constexpr int kExpMax = 2048;
  static constexpr int kFracBits = 111;     // value = X_hat * 2^(exp - 111)
  static constexpr int kSigMsbDigit = 82;   // IEEE MSB position on entry
  static constexpr int kLzaMargin = 3;      // total anticipation uncertainty
};

class FcsOperand {
 public:
  FcsOperand();
  FcsOperand(CsNum mant, CsNum tail, int exp_unbiased, FpClass cls,
             bool exc_sign);

  static FcsOperand make_zero(bool sign);
  static FcsOperand make_inf(bool sign);
  static FcsOperand make_nan();

  const CsNum& mant() const { return mant_; }
  const CsNum& tail() const { return tail_; }
  int exp() const { return exp_; }
  int exp_field() const { return exp_ + FcsGeometry::kExpBias; }
  FpClass cls() const { return cls_; }
  bool exc_sign() const { return exc_sign_; }

  bool is_nan() const { return cls_ == FpClass::NaN; }
  bool is_inf() const { return cls_ == FpClass::Inf; }
  bool is_zero() const {
    return cls_ == FpClass::Zero ||
           (cls_ == FpClass::Normal && mant_.to_binary().is_zero() &&
            tail_assimilated().is_zero());
  }

  /// Digit-level all-zero check of the mantissa planes — the "reliable
  /// all-0 mantissa detection" the early LZA needs (Sec. III-G).  Note this
  /// is stronger than value-zero: redundant encodings of 0 return false.
  bool mant_digits_all_zero() const {
    return mant_.sum().is_zero() && mant_.carry().is_zero();
  }

  CsWord tail_assimilated() const { return tail_.sum() + tail_.carry(); }

  /// Deferred "round half away from zero" decision over the tail block.
  int round_increment() const;

  /// True when the deferred decision differs from IEEE nearest-even at the
  /// same truncation boundary (see PcsOperand::round_disagrees_ieee).
  bool round_disagrees_ieee() const;

  /// Exact represented value (to 101 bits) for golden comparisons.
  PFloat exact_value() const;

  std::string to_string() const;

 private:
  CsNum mant_;  // 87 digits, both planes live
  CsNum tail_;  // 29 digits, both planes live
  int exp_;
  FpClass cls_;
  bool exc_sign_;
};

/// Exact conversion IEEE -> FCS (chain-entry CVT operator).
FcsOperand ieee_to_fcs(const PFloat& x);

/// Conversion FCS -> IEEE-style: full assimilation + single rounding
/// (chain-exit CVT operator).
PFloat fcs_to_ieee(const FcsOperand& x, const FloatFormat& fmt, Round rm);

}  // namespace csfma
