#include "fma/fcs_format.hpp"

#include <sstream>

#include "common/check.hpp"
#include "fma/pcs_format.hpp"  // kWideExact

namespace csfma {

using G = FcsGeometry;

FcsOperand::FcsOperand()
    : mant_(CsNum::zero(G::kMantDigits)),
      tail_(CsNum::zero(G::kTailDigits)),
      exp_(0),
      cls_(FpClass::Zero),
      exc_sign_(false) {}

FcsOperand::FcsOperand(CsNum mant, CsNum tail, int exp_unbiased, FpClass cls,
                       bool exc_sign)
    : mant_(std::move(mant)),
      tail_(std::move(tail)),
      exp_(exp_unbiased),
      cls_(cls),
      exc_sign_(exc_sign) {
  CSFMA_CHECK(mant_.width() == G::kMantDigits);
  CSFMA_CHECK(tail_.width() == G::kTailDigits);
  CSFMA_CHECK_MSG(exp_ >= G::kExpMin && exp_ <= G::kExpMax,
                  "exponent outside the excess-2047 field");
}

FcsOperand FcsOperand::make_zero(bool sign) {
  FcsOperand r;
  r.cls_ = FpClass::Zero;
  r.exc_sign_ = sign;
  return r;
}

FcsOperand FcsOperand::make_inf(bool sign) {
  FcsOperand r;
  r.cls_ = FpClass::Inf;
  r.exc_sign_ = sign;
  return r;
}

FcsOperand FcsOperand::make_nan() {
  FcsOperand r;
  r.cls_ = FpClass::NaN;
  return r;
}

int FcsOperand::round_increment() const {
  CSFMA_CHECK(cls_ == FpClass::Normal);
  const CsWord tail = tail_assimilated();
  const CsWord half = CsWord::bit_at(G::kTailDigits - 1);
  if (tail < half) return 0;
  if (tail > half) return 1;
  const bool negative = mant_.is_value_negative();
  return negative ? 0 : 1;  // ties away from zero
}

bool FcsOperand::round_disagrees_ieee() const {
  CSFMA_CHECK(cls_ == FpClass::Normal);
  const CsWord tail = tail_assimilated();
  const CsWord half = CsWord::bit_at(G::kTailDigits - 1);
  const bool guard = !(tail < half);
  const bool sticky = half < tail;
  const bool lsb = mant_.to_binary().bit(0);
  const bool negative = mant_.is_value_negative();
  return round_disagrees_with_ieee(Round::HalfAwayFromZero, lsb, guard, sticky,
                                   negative);
}

PFloat FcsOperand::exact_value() const {
  switch (cls_) {
    case FpClass::Zero:
      return PFloat::zero(kWideExact, exc_sign_);
    case FpClass::Inf:
      return PFloat::inf(kWideExact, exc_sign_);
    case FpClass::NaN:
      return PFloat::nan(kWideExact);
    case FpClass::Normal:
      break;
  }
  WideUint<8> m = WideUint<8>(mant_.to_binary()).sext(G::kMantDigits);
  WideUint<8> x = (m << G::kTailDigits) + WideUint<8>(tail_assimilated());
  const bool sign = x.bit(WideUint<8>::kBits - 1);
  const WideUint<8> mag = sign ? -x : x;
  return PFloat::normalize_round(kWideExact, sign, mag, exp_ - G::kFracBits,
                                 false, Round::NearestEven);
}

std::string FcsOperand::to_string() const {
  std::ostringstream os;
  switch (cls_) {
    case FpClass::Zero: return exc_sign_ ? "-0" : "+0";
    case FpClass::Inf: return exc_sign_ ? "-inf" : "+inf";
    case FpClass::NaN: return "nan";
    case FpClass::Normal: break;
  }
  os << "fcs{mant=" << mant_.to_binary().to_hex()
     << " tail=" << tail_assimilated().to_hex() << " exp=" << exp_ << "}";
  return os.str();
}

FcsOperand ieee_to_fcs(const PFloat& x) {
  switch (x.cls()) {
    case FpClass::Zero:
      return FcsOperand::make_zero(x.sign());
    case FpClass::Inf:
      return FcsOperand::make_inf(x.sign());
    case FpClass::NaN:
      return FcsOperand::make_nan();
    case FpClass::Normal:
      break;
  }
  const int p = x.format().precision();
  CSFMA_CHECK_MSG(p <= 54, "source significand too wide for the FCS layout");
  const int shift = G::kSigMsbDigit - (p - 1);
  CSFMA_CHECK(shift >= 0);
  CsWord mag = CsWord(WideUint<7>(WideUint<2>(x.sig()))) << shift;
  CsNum mant = CsNum::from_signed(G::kMantDigits, x.sign(), mag);
  //   value = X * 2^(exp' - kFracBits), X = sig << (shift + kTailDigits)
  //   =>  exp' = (e - frac) - shift - kTailDigits + kFracBits.
  const int exp2_of_sig_lsb = x.exp() - x.format().frac_bits;
  const int exp_fixed = exp2_of_sig_lsb - shift - G::kTailDigits + G::kFracBits;
  CSFMA_CHECK(exp_fixed >= G::kExpMin && exp_fixed <= G::kExpMax);
  return FcsOperand(mant, CsNum::zero(G::kTailDigits), exp_fixed,
                    FpClass::Normal, x.sign());
}

PFloat fcs_to_ieee(const FcsOperand& x, const FloatFormat& fmt, Round rm) {
  switch (x.cls()) {
    case FpClass::Zero:
      return PFloat::zero(fmt, x.exc_sign());
    case FpClass::Inf:
      return PFloat::inf(fmt, x.exc_sign());
    case FpClass::NaN:
      return PFloat::nan(fmt);
    case FpClass::Normal:
      break;
  }
  WideUint<8> m = WideUint<8>(x.mant().to_binary()).sext(G::kMantDigits);
  WideUint<8> xhat = (m << G::kTailDigits) + WideUint<8>(x.tail_assimilated());
  if (xhat.is_zero()) return PFloat::zero(fmt, false);
  const bool sign = xhat.bit(WideUint<8>::kBits - 1);
  const WideUint<8> mag = sign ? -xhat : xhat;
  return PFloat::normalize_round(fmt, sign, mag, x.exp() - G::kFracBits, false,
                                 rm);
}

}  // namespace csfma
