#include "fma/dot_product.hpp"

#include <algorithm>
#include <climits>

#include "common/check.hpp"
#include "cs/zero_detect.hpp"

namespace csfma {

using G = PcsGeometry;

namespace {

/// The largest product's msb is anchored at this window bit, leaving the
/// same guard headroom the PCS-FMA adder has; the sum of up to 2^13 terms
/// cannot overflow the 385b signed window.
constexpr int kAnchorMsb = 270;

/// Arithmetic shift right on the full 512-bit workspace.
WideUint<8> asr(const WideUint<8>& v, int k) {
  const bool neg = v.bit(WideUint<8>::kBits - 1);
  if (k >= WideUint<8>::kBits) return neg ? ~WideUint<8>() : WideUint<8>();
  WideUint<8> r = v >> k;
  if (neg) r = r | ~WideUint<8>::mask(WideUint<8>::kBits - k);
  return r;
}

}  // namespace

PcsOperand PcsDotProduct::dot(
    const std::vector<std::pair<PFloat, PFloat>>& terms) {
  // ---- exception side-wires ----
  bool any_nan = false, pos_inf = false, neg_inf = false;
  for (const auto& [a, b] : terms) {
    if (a.is_nan() || b.is_nan()) any_nan = true;
    if (a.is_inf() || b.is_inf()) {
      if (a.is_zero() || b.is_zero()) {
        any_nan = true;  // inf * 0
      } else {
        (a.sign() != b.sign() ? neg_inf : pos_inf) = true;
      }
    }
  }
  if (any_nan || (pos_inf && neg_inf)) return PcsOperand::make_nan();
  if (pos_inf) return PcsOperand::make_inf(false);
  if (neg_inf) return PcsOperand::make_inf(true);

  // ---- exact products with their lsb exponents ----
  struct Prod {
    WideUint<4> mag;  // |sig_a * sig_b|, up to 106 bits
    bool neg;
    int lsb_exp;
  };
  // Accumulator-sized stack workspace for the common case; heap beyond.
  Prod prods_stack[64];
  std::vector<Prod> prods_heap;
  Prod* prods = prods_stack;
  if (terms.size() > 64) {
    prods_heap.resize(terms.size());
    prods = prods_heap.data();
  }
  int n_prods = 0;
  int max_msb = INT_MIN;
  for (const auto& [a, b] : terms) {
    if (!a.is_normal() || !b.is_normal()) continue;  // zero terms drop out
    Prod& p = prods[n_prods++];
    p.mag = a.sig().mul_full<2>(b.sig());
    p.neg = a.sign() != b.sign();
    p.lsb_exp = (a.exp() - a.format().frac_bits) +
                (b.exp() - b.format().frac_bits);
    max_msb = std::max(max_msb, p.lsb_exp + p.mag.bit_width() - 1);
  }
  if (n_prods == 0) return PcsOperand::make_zero(false);

  // ---- align into the shared window and reduce with one CSA tree ----
  const int w0 = max_msb - kAnchorMsb;  // exponent of window bit 0
  const CsWord wmask = CsWord::mask(G::kAdderWidth);
  CsWord rows_stack[64];
  std::vector<CsWord> rows_heap;
  CsWord* rows = rows_stack;
  if (n_prods > 64) {
    rows_heap.resize((size_t)n_prods);
    rows = rows_heap.data();
  }
  for (int i = 0; i < n_prods; ++i) {
    const Prod& p = prods[i];
    const int sh = p.lsb_exp - w0;
    // Far-below terms truncate off the window bottom (fused-accumulator
    // behaviour); the arithmetic shift keeps the sign fill.
    if ((p.mag.word(2) | p.mag.word(3) | (p.mag.word(1) >> 62)) == 0) {
      // Fast placement for magnitudes below 2^126 (every standard-format
      // product): place/shift the two magnitude words directly, then
      // negate within the window — identical to the full-width
      // sign-extend-shift-truncate formulation since -(m << sh) = (-m) << sh
      // (mod 2^W) and asr(-m, k) = -ceil(m / 2^k).
      const unsigned __int128 mag =
          ((unsigned __int128)p.mag.word(1) << 64) | p.mag.word(0);
      CsWord row;
      if (sh >= 0) {
        std::uint64_t* rw = row.data();
        const std::uint64_t m0 = (std::uint64_t)mag;
        const std::uint64_t m1 = (std::uint64_t)(mag >> 64);
        const int wi = sh >> 6, b = sh & 63;
        rw[wi] = m0 << b;
        if (b != 0) {
          rw[wi + 1] = (m0 >> (64 - b)) | (m1 << b);
          rw[wi + 2] = m1 >> (64 - b);
        } else {
          rw[wi + 1] = m1;
        }
      } else {
        const int k = -sh;
        unsigned __int128 q;
        if (k >= 128) {
          // Magnitudes are < 2^126 < 2^k: floor is 0, ceil is 1.
          q = p.neg ? 1 : 0;
        } else if (p.neg) {
          q = (mag + (((unsigned __int128)1 << k) - 1)) >> k;  // ceil
        } else {
          q = mag >> k;  // floor
        }
        row.set_word(0, (std::uint64_t)q);
        row.set_word(1, (std::uint64_t)(q >> 64));
      }
      if (p.neg) row = -row;
      rows[i] = row & wmask;
    } else {
      WideUint<8> v(p.mag);
      if (p.neg) v = -v;
      WideUint<8> placed = sh >= 0 ? (v << sh) : asr(v, -sh);
      rows[i] = CsWord(placed) & wmask;
    }
  }
  CsNum acc = reduce_rows_inplace(G::kAdderWidth, rows, n_prods, &tree_stats_);
  if (activity_ != nullptr) {
    activity_->probe("dot.sum").observe(acc.sum());
    activity_->probe("dot.carry").observe(acc.carry());
  }

  // ---- Carry Reduce + ZD + 6:1 mux, exactly the PCS-FMA back end ----
  PcsNum reduced = carry_reduce(acc, G::kGroup);
  const int k = count_skippable_blocks(reduced.as_cs(), G::kBlock, 5);
  const int mant_lo = (5 - k) * G::kBlock;
  PcsNum mant = reduced.extract_digits(mant_lo, G::kMantDigits);
  PcsNum tail = PcsNum::zero(G::kTailDigits, G::kGroup);
  if (mant_lo >= G::kBlock) {
    tail = reduced.extract_digits(mant_lo - G::kBlock, G::kTailDigits);
  }
  if (mant.to_binary().is_zero() && tail.to_binary().is_zero()) {
    return PcsOperand::make_zero(false);
  }
  // value = Y * 2^w0; mant digit 0 at window bit mant_lo; operand semantics
  // give weight 2^(e_r - 107) to mant digit 0.
  const int e_r = w0 + mant_lo + 107;
  if (e_r > G::kExpMax) {
    return PcsOperand::make_inf(mant.as_cs().is_value_negative());
  }
  if (e_r < G::kExpMin) {
    return PcsOperand::make_zero(mant.as_cs().is_value_negative());
  }
  return PcsOperand(mant, tail, e_r, FpClass::Normal, false);
}

PFloat PcsDotProduct::dot_ieee(
    const std::vector<std::pair<PFloat, PFloat>>& terms, Round rm) {
  return pcs_to_ieee(dot(terms), kBinary64, rm);
}

}  // namespace csfma
