#include "fma/pcs_fma.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "cs/lza.hpp"
#include "engine/slice.hpp"
#include "introspect/event_log.hpp"
#include "introspect/signal_tap.hpp"

namespace csfma {

using G = PcsGeometry;

namespace {

/// DSP48E tile geometry of the PCS multiplier: the 110b multiplicand feeds
/// the 18-bit signed ports (17b unsigned slices), the 53b multiplier the
/// 25-bit ports (24b slices) — ceil(110/17) * ceil(53/24) = 21 DSPs, the
/// paper's Table I figure for the PCS-FMA.
constexpr int kCandChunk = 17;
constexpr int kMultChunk = 24;

/// Sign of a normal operand's value (mantissa two's complement; a zero
/// mantissa with a non-zero tail is positive).
bool value_sign(const PcsOperand& x) {
  if (x.cls() != FpClass::Normal) return x.exc_sign();
  return x.mant().as_cs().is_value_negative();
}

/// A's pass-through result when the product falls entirely below A's
/// window: apply A's deferred rounding, clear the tail.
PcsOperand passthrough_rounded(const PcsOperand& a, int rnd_a) {
  CsNum bumped = compress3(G::kMantDigits, a.mant().sum(), a.mant().carries(),
                           CsWord((std::uint64_t)rnd_a));
  PcsNum mant = carry_reduce(bumped, G::kGroup);
  return PcsOperand(mant, PcsNum::zero(G::kTailDigits, G::kGroup), a.exp(),
                    FpClass::Normal, value_sign(a));
}

}  // namespace

PcsOperand PcsFma::fma(const PcsOperand& a, const PFloat& b,
                       const PcsOperand& c) {
  SignalTap* tap = hooks_ != nullptr ? hooks_->tap : nullptr;
  EventLog* events = hooks_ != nullptr ? hooks_->events : nullptr;
  // ---- exception side-wires (Sec. III-B) ----
  if (a.is_nan() || b.is_nan() || c.is_nan()) return PcsOperand::make_nan();
  const bool b_zero = b.is_zero();
  const bool c_zero = c.is_zero();
  const bool p_inf = b.is_inf() || c.is_inf();
  const bool p_sign = b.sign() != value_sign(c);
  if (p_inf) {
    if (b_zero || c_zero) return PcsOperand::make_nan();
    if (a.is_inf() && a.exc_sign() != p_sign) return PcsOperand::make_nan();
    return PcsOperand::make_inf(p_sign);
  }
  if (a.is_inf()) return PcsOperand::make_inf(a.exc_sign());

  // ---- deferred rounding decisions (Sec. III-C) ----
  const int rnd_a = a.cls() == FpClass::Normal ? a.round_increment() : 0;
  const int rnd_c = c.cls() == FpClass::Normal ? c.round_increment() : 0;
  if (events != nullptr) {
    // The documented misrounding of the deferred half-away-from-zero rule:
    // detail 0 = the A operand's tail, 1 = C's (see fp/rounding.hpp).
    if (a.cls() == FpClass::Normal && a.round_disagrees_ieee()) {
      events->raise(EventKind::MisroundVsIeee, 0);
    }
    if (c.cls() == FpClass::Normal && c.round_disagrees_ieee()) {
      events->raise(EventKind::MisroundVsIeee, 1);
    }
  }

  if (b_zero || c_zero) {
    // Product is zero: the result is (rounded) A.
    if (a.is_zero()) {
      const bool s = p_sign && value_sign(a);  // -0 only if both negative
      return PcsOperand::make_zero(s);
    }
    return passthrough_rounded(a, rnd_a);
  }
  CSFMA_CHECK_MSG(b.format().precision() <= 53,
                  "B must be IEEE binary64 or narrower");

  // ---- multiplier: B_M x unrounded C_M as a DSP-tiled CSA tree, built
  //      directly in the 385b adder window at the product offset so the
  //      product planes stay in carry-save form into the adder (Fig 9).
  //      C's deferred rounding becomes the +B_M correction row (Fig 6). ----
  const CsNum c_mant = c.mant().as_cs();
  const CsWord b_sig = CsWord(WideUint<7>(WideUint<2>(b.sig())));
  CsNum product =
      multiply_dsp_tiled(c_mant, b_sig, 53, kCandChunk, kMultChunk,
                         G::kAdderWidth, G::kProductOffset, &mul_stats_);
  if (rnd_c != 0) {
    product = cs_add_binary(
        product, (b_sig << G::kProductOffset).truncated(G::kAdderWidth));
  }
  if (b.sign()) product = cs_negate(product);
  if (activity_ != nullptr) {
    activity_->probe("mul.sum", "mul").observe(product.sum());
    activity_->probe("mul.carry", "mul").observe(product.carry());
  }
  if (tap != nullptr) {
    tap->begin_stage("mul");
    tap->tap("mul.sum", product.sum(), G::kAdderWidth);
    tap->tap("mul.carry", product.carry(), G::kAdderWidth);
  }
  const int e_p = b.exp() + c.exp();

  // ---- A path: deferred rounding + pre-shift (parallel to the multiply;
  //      Fig 5).  The A mantissa is assimilated here (see header note). ----
  const int e_a = a.cls() == FpClass::Normal ? a.exp() : e_p;  // zero: any
  WideUint<8> a_val =
      WideUint<8>(a.cls() == FpClass::Normal ? a.mant().to_binary() : CsWord())
          .sext(G::kMantDigits) +
      WideUint<8>((std::uint64_t)rnd_a);
  const int ofs_a = e_a - e_p + G::kFracBits;
  if (!a_val.is_zero() && ofs_a > G::kAdderWidth - G::kMantDigits) {
    // A is entirely left of the adder window: the product cannot influence
    // even the rounding tail; pass A through.
    return passthrough_rounded(a, rnd_a);
  }
  CsWord a_row;
  if (!a_val.is_zero() && ofs_a > -G::kMantDigits) {
    // The 512-bit sign extension makes the negative-offset shift arithmetic.
    WideUint<8> placed = ofs_a >= 0 ? (a_val << ofs_a) : (a_val >> -ofs_a);
    a_row = CsWord(placed).truncated(G::kAdderWidth);
  }
  if (activity_ != nullptr) activity_->probe("ashift", "align").observe(a_row);
  if (tap != nullptr) {
    tap->begin_stage("align");
    tap->tap("align.ashift", a_row, G::kAdderWidth);
  }

  // ---- 385b CS adder: product planes + aligned A row (3:2) ----
  CsNum adder = compress3(G::kAdderWidth, product.sum(), product.carry(), a_row);
  if (activity_ != nullptr) {
    activity_->probe("add.sum", "add").observe(adder.sum());
    activity_->probe("add.carry", "add").observe(adder.carry());
  }
  if (tap != nullptr) {
    tap->begin_stage("add");
    tap->tap("add.sum", adder.sum(), G::kAdderWidth);
    tap->tap("add.carry", adder.carry(), G::kAdderWidth);
  }
  if (events != nullptr) {
    // Catastrophic cancellation: the sum's most significant digit landed
    // far (>= 50 digit positions) below the highest input digit.  Window
    // coordinates keep PFloat/PCS exponent conventions out of it.
    const int a_msb = ofs_a > -G::kMantDigits && !a_val.is_zero()
                          ? ofs_a + G::kMantDigits - 1
                          : -1;
    const int p_msb = G::kProductOffset + G::kMantDigits + 53;
    const int out_msb = G::kAdderWidth - 1 - leading_sign_run(adder);
    const int drop = std::max(a_msb, p_msb) - out_msb;
    if (drop >= 50) events->raise(EventKind::Cancellation, drop);
  }

  // ---- Carry Reduction to group-11 PCS (Sec. III-E) ----
  PcsNum reduced = carry_reduce(adder, G::kGroup);
  if (activity_ != nullptr) {
    activity_->probe("creduce.sum", "creduce").observe(reduced.sum());
    activity_->probe("creduce.carry", "creduce").observe(reduced.carries());
  }
  if (tap != nullptr) {
    tap->begin_stage("creduce");
    tap->tap("creduce.sum", reduced.sum(), G::kAdderWidth);
    tap->tap("creduce.carry", reduced.carries(), G::kAdderWidth);
  }

  // ---- Zero Detector + 6:1 block multiplexer (Sec. III-D/F) ----
  const int k = count_skippable_blocks(reduced.as_cs(), G::kBlock, 5, events);
  last_zd_skip_ = k;
  const int mant_lo = (5 - k) * G::kBlock;
  PcsNum mant = reduced.extract_digits(mant_lo, G::kMantDigits);
  PcsNum tail = PcsNum::zero(G::kTailDigits, G::kGroup);
  if (mant_lo >= G::kBlock) {
    tail = reduced.extract_digits(mant_lo - G::kBlock, G::kTailDigits);
  }
  if (activity_ != nullptr) {
    activity_->probe("mux.sum", "mux").observe(mant.sum());
    activity_->probe("mux.carry", "mux").observe(mant.carries());
  }
  if (tap != nullptr) {
    tap->begin_stage("mux");
    tap->tap_u64("mux.zd_skip", (std::uint64_t)k, 4);
    tap->tap("mux.sum", mant.sum(), G::kMantDigits);
    tap->tap("mux.carry", mant.carries(), G::kMantDigits);
  }

  if (mant.to_binary().is_zero() && tail.to_binary().is_zero()) {
    return PcsOperand::make_zero(false);
  }

  // ---- exponent update ----
  const int e_r = e_p + mant_lo - G::kFracBits;
  if (e_r > G::kExpMax) {
    return PcsOperand::make_inf(mant.as_cs().is_value_negative());
  }
  if (e_r < G::kExpMin) {
    if (events != nullptr) events->raise(EventKind::SubnormalFlush, e_r);
    return PcsOperand::make_zero(mant.as_cs().is_value_negative());
  }
  return PcsOperand(mant, tail, e_r, FpClass::Normal, false);
}

PFloat PcsFma::fma_ieee(const PFloat& a, const PFloat& b, const PFloat& c,
                        Round rm) {
  PcsOperand r = fma(ieee_to_pcs(a), b, ieee_to_pcs(c));
  return pcs_to_ieee(r, kBinary64, rm);
}

namespace {

/// Exponent of digit 0 of a lifted operand's mantissa (the exp_fixed of
/// ieee_to_pcs), valid for Normal operands only.
int lifted_exp(const PFloat& x) {
  const int shift = G::kSigMsbDigit - (x.format().precision() - 1);
  return (x.exp() - x.format().frac_bits) - shift - G::kTailDigits +
         G::kFracBits;
}

/// Lifted mantissa bit plane (CsNum::from_signed of the placed significand).
CsWord lifted_bits(const PFloat& x) {
  const int p = x.format().precision();
  CSFMA_CHECK_MSG(p <= 54, "source significand too wide for the PCS layout");
  const int shift = G::kSigMsbDigit - (p - 1);
  CSFMA_CHECK(shift >= 0);
  const CsWord mag = CsWord(WideUint<7>(WideUint<2>(x.sig()))) << shift;
  return x.sign() ? (-mag).truncated(G::kMantDigits) : mag;
}

/// May this operation go through the sliced block?  Excluded: exception
/// operands (the scalar path returns on side-wires before the datapath),
/// zero products (rounded-A result) and the A pass-through, whose early
/// returns skip datapath probes in ways the block form cannot replicate.
/// A freshly lifted operand's tail is empty, so rnd_a == rnd_c == 0 and
/// the deferred-rounding events never fire on sliceable lanes.
bool sliceable(const OperandTriple& t) {
  if (t.a.is_nan() || t.b.is_nan() || t.c.is_nan()) return false;
  if (t.a.is_inf() || t.b.is_inf() || t.c.is_inf()) return false;
  if (t.b.is_zero() || t.c.is_zero()) return false;
  if (t.a.cls() == FpClass::Normal) {
    const int ofs_a =
        lifted_exp(t.a) - (t.b.exp() + lifted_exp(t.c)) + G::kFracBits;
    if (ofs_a > G::kAdderWidth - G::kMantDigits) return false;  // pass-through
  }
  return true;
}

}  // namespace

void PcsFma::fma_ieee_batch(const OperandTriple* ops, std::size_t n,
                            PFloat* out, const FmaBatchHooks& hooks) {
  // A SignalTap traces one operation's wires stage by stage; its calls must
  // stay in scalar order, so tapped runs bypass the sliced path entirely.
  const bool tapped = hooks_ != nullptr && hooks_->tap != nullptr;
  std::size_t i = 0;
  while (i < n) {
    if (tapped || !sliceable(ops[i])) {
      if (hooks.events != nullptr) {
        hooks.events->begin_op(hooks.base_index + i, ops[i].a.to_bits().lo64(),
                               ops[i].b.to_bits().lo64(),
                               ops[i].c.to_bits().lo64());
      }
      out[i] = fma_ieee(ops[i].a, ops[i].b, ops[i].c, hooks.rm);
      ++i;
      continue;
    }
    std::size_t j = i + 1;
    while (j < n && j - i < (std::size_t)slice::kLanes && sliceable(ops[j]))
      ++j;
    fma_ieee_block(ops + i, (int)(j - i), out + i, hooks.rm, hooks.events,
                   hooks.base_index + i);
    i = j;
  }
}

void PcsFma::fma_ieee_block(const OperandTriple* ops, int n, PFloat* out,
                            Round rm, EventLog* events, std::uint64_t base) {
  constexpr int kW = CsWord::kWords;
  // Multiplier tile geometry (lane-invariant): ceil(110/17) x ceil(53/24)
  // rows, in multiply_dsp_tiled's row order (candidate-chunk outer).
  constexpr int kNCand = (G::kMantDigits + kCandChunk - 1) / kCandChunk;
  constexpr int kNMult = (53 + kMultChunk - 1) / kMultChunk;
  constexpr int kRows = kNCand * kNMult;
  // The product rows live at bit kProductOffset and above, so the Wallace
  // tree only needs the top window; the full 385b planes are re-assembled
  // (with the lane-masked negation) below.
  constexpr int kProdW = G::kAdderWidth - G::kProductOffset;

  // ---- per-lane front end: lift + DSP tile products + A alignment ----
  // (only the per-lane-data work stays scalar; the partial-product tree,
  // the adder and everything after run bit-parallel across the batch)
  std::int64_t tiles[kRows][slice::kLanes];
  std::uint64_t a_rows[slice::kLanes * kW];
  std::uint64_t neg_mask = 0;
  int e_p[slice::kLanes];
  int a_msb[slice::kLanes];
  for (int L = 0; L < n; ++L) {
    const PFloat& a = ops[L].a;
    const PFloat& b = ops[L].b;
    const PFloat& c = ops[L].c;
    CSFMA_CHECK_MSG(b.format().precision() <= 53,
                    "B must be IEEE binary64 or narrower");
    // C lifts to a binary (carry-free) mantissa with an empty tail, so the
    // rnd_c correction row never fires on this path; the DSP pre-adder
    // assimilation of multiply_dsp_tiled is the identity on it.
    const CsWord c_bits = lifted_bits(c);
    const std::uint64_t b_sig = b.sig().lo64();
    if (b.sign()) neg_mask |= std::uint64_t{1} << L;
    for (int j = 0; j < kNCand; ++j) {
      const int c_lo = j * kCandChunk;
      const int c_len = std::min(kCandChunk, G::kMantDigits - c_lo);
      std::int64_t c_val =
          (std::int64_t)wide_read_bits(c_bits.data(), c_lo, c_len);
      if (j == kNCand - 1 && ((c_val >> (c_len - 1)) & 1))
        c_val -= (std::int64_t)1 << c_len;
      for (int i = 0; i < kNMult; ++i) {
        const int b_lo = i * kMultChunk;
        const int b_len = std::min(kMultChunk, 53 - b_lo);
        const std::int64_t b_val =
            (std::int64_t)((b_sig >> b_lo) &
                           ((std::uint64_t{1} << b_len) - 1));
        tiles[j * kNMult + i][L] = c_val * b_val;
      }
    }
    e_p[L] = b.exp() + lifted_exp(c);
    // A path: rnd_a == 0 likewise; a is Normal or Zero (sliceable()).
    WideUint<8> a_val;
    int e_a = e_p[L];
    if (a.cls() == FpClass::Normal) {
      a_val = WideUint<8>(lifted_bits(a)).sext(G::kMantDigits);
      e_a = lifted_exp(a);
    }
    const int ofs_a = e_a - e_p[L] + G::kFracBits;
    CsWord a_row;
    if (!a_val.is_zero() && ofs_a > -G::kMantDigits) {
      WideUint<8> placed = ofs_a >= 0 ? (a_val << ofs_a) : (a_val >> -ofs_a);
      a_row = CsWord(placed).truncated(G::kAdderWidth);
    }
    a_msb[L] = ofs_a > -G::kMantDigits && !a_val.is_zero()
                   ? ofs_a + G::kMantDigits - 1
                   : -1;
    for (int w = 0; w < kW; ++w) a_rows[L * kW + w] = a_row.data()[w];
  }

  // ---- partial-product Wallace tree in plane form: each row is its
  //      64-bit tile product placed at the tile's (lane-invariant) weight
  //      with sign fill above, exactly multiply_dsp_tiled's row image; the
  //      3:2 schedule is reduce_rows_inplace's, so the output planes are
  //      bit-identical to the scalar tree's ----
  std::uint64_t rp[kRows][kProdW];
  for (int r = 0; r < kRows; ++r) {
    std::uint64_t tp[64];
    slice::pack_words((const std::uint64_t*)tiles[r], 1, n, 64, tp);
    const int t = (r / kNMult) * kCandChunk + (r % kNMult) * kMultChunk;
    std::uint64_t* row = rp[r];
    for (int b = 0; b < t; ++b) row[b] = 0;
    for (int b = 0; b < 64; ++b) row[t + b] = tp[b];
    for (int b = t + 64; b < kProdW; ++b) row[b] = tp[63];
  }
  int nr = kRows;
  while (nr > 2) {
    int i = 0, o = 0;
    for (; i + 3 <= nr; i += 3, o += 2) {
      std::uint64_t* ra = rp[i];
      std::uint64_t* rb = rp[i + 1];
      std::uint64_t* rcw = rp[i + 2];
      std::uint64_t* os = rp[o];
      std::uint64_t* oc = rp[o + 1];
      std::uint64_t prev_maj = 0;  // carry into bit kProductOffset is 0
      for (int b = 0; b < kProdW; ++b) {
        const std::uint64_t x = ra[b], y = rb[b], z = rcw[b];
        os[b] = x ^ y ^ z;  // reads precede writes: o <= i, o+1 <= i+1
        oc[b] = prev_maj;
        prev_maj = (x & y) | (z & (x | y));  // top majority drops (mod 2^W)
      }
    }
    for (; i < nr; ++i, ++o) {
      if (o != i) {
        for (int b = 0; b < kProdW; ++b) rp[o][b] = rp[i][b];
      }
    }
    nr = o;
  }
  // The scalar tree reports its geometry per multiply; it is data
  // independent, so one computation serves the whole block.
  mul_stats_.rows = kRows;
  mul_stats_.levels = 0;
  mul_stats_.compressors = 0;
  for (int m = kRows; m > 2; ++mul_stats_.levels) {
    mul_stats_.compressors += (m / 3) * G::kAdderWidth;
    m = (m / 3) * 2 + (m % 3);
  }

  // ---- full-width product planes with the lane-masked negation:
  //      cs_negate is ~S + ~C + 2, i.e. one 3:2 layer whose planes reduce
  //      to S^C (bit 1 flipped) and ~(S|C) shifted up one (with
  //      ~(S&C) at bit 2), applied only to lanes where B is negative ----
  std::uint64_t ps[G::kAdderWidth], pc[G::kAdderWidth], ar[G::kAdderWidth];
  {
    const std::uint64_t nm = neg_mask;
    const auto sum_at = [&](int b) {
      return b < G::kProductOffset ? 0 : rp[0][b - G::kProductOffset];
    };
    const auto car_at = [&](int b) {
      return b < G::kProductOffset ? 0 : rp[1][b - G::kProductOffset];
    };
    for (int b = 0; b < G::kAdderWidth; ++b) {
      const std::uint64_t s = sum_at(b), cc = car_at(b);
      std::uint64_t neg_s = s ^ cc;
      if (b == 1) neg_s = ~neg_s;
      std::uint64_t neg_c;
      if (b == 0) {
        neg_c = 0;
      } else if (b == 2) {
        neg_c = ~(sum_at(1) & car_at(1));
      } else {
        neg_c = ~(sum_at(b - 1) | car_at(b - 1));
      }
      ps[b] = (s & ~nm) | (neg_s & nm);
      pc[b] = (cc & ~nm) | (neg_c & nm);
    }
  }
  slice::pack_words(a_rows, kW, n, G::kAdderWidth, ar);
  if (activity_ != nullptr) {
    activity_->probe("mul.sum", "mul").observe_planes(ps, G::kAdderWidth, n);
    activity_->probe("mul.carry", "mul").observe_planes(pc, G::kAdderWidth, n);
    activity_->probe("ashift", "align").observe_planes(ar, G::kAdderWidth, n);
  }

  // ---- 385b CS adder, all lanes per word op ----
  std::uint64_t as[G::kAdderWidth], ac[G::kAdderWidth];
  slice::compress3(G::kAdderWidth, ps, pc, ar, as, ac);
  if (activity_ != nullptr) {
    activity_->probe("add.sum", "add").observe_planes(as, G::kAdderWidth, n);
    activity_->probe("add.carry", "add").observe_planes(ac, G::kAdderWidth, n);
  }

  // Event inputs: one assimilation serves both the cancellation detector
  // (leading sign run of the adder output) and the ZD-late check below —
  // carry reduction preserves the value mod 2^385, so the reduced form's
  // binary image is this same plane set.
  std::uint16_t run[slice::kLanes];
  std::uint64_t bin[G::kAdderWidth];
  std::uint64_t same[6];
  if (events != nullptr) {
    slice::assimilate(G::kAdderWidth, as, ac, bin);
    slice::leading_sign_run(G::kAdderWidth, bin, n, run);
    // same[j]: lanes whose bits [385 - 55j - 1, 384] are all equal, i.e.
    // skipping j blocks would preserve the signed value
    // (skip_preserves_value in plane form).
    std::uint64_t eq = ~std::uint64_t{0};
    int b = G::kAdderWidth - 1;
    for (int j = 1; j <= 5; ++j) {
      const int lo = G::kAdderWidth - 1 - j * G::kBlock;
      while (b > lo) {
        --b;
        eq &= ~(bin[b] ^ bin[G::kAdderWidth - 1]);
      }
      same[j] = eq;
    }
  }

  // ---- Carry Reduction to group-11 PCS ----
  std::uint64_t rs[G::kAdderWidth], rc[G::kAdderWidth];
  slice::carry_reduce(G::kAdderWidth, G::kGroup, as, ac, rs, rc);
  if (activity_ != nullptr) {
    activity_->probe("creduce.sum", "creduce")
        .observe_planes(rs, G::kAdderWidth, n);
    activity_->probe("creduce.carry", "creduce")
        .observe_planes(rc, G::kAdderWidth, n);
  }

  // ---- Zero Detector: per-lane skip counts from the alive masks ----
  std::uint64_t alive[5];
  slice::count_skippable_blocks(G::kAdderWidth, G::kBlock, 5, rs, rc, alive);
  int skip[slice::kLanes];
  std::uint64_t lane_of_k[6] = {};
  for (int L = 0; L < n; ++L) {
    int k = 0;
    for (int s = 0; s < 5; ++s) k += (int)((alive[s] >> L) & 1u);
    skip[L] = k;
    lane_of_k[k] |= std::uint64_t{1} << L;
  }

  // ---- 6:1 block mux in plane form: mant plane b selects the reduced
  //      plane at b + (5-k)*55 for each lane's skip count k ----
  std::uint64_t ms[G::kMantDigits], mc[G::kMantDigits];
  for (int b = 0; b < G::kMantDigits; ++b) {
    std::uint64_t sv = 0, cv = 0;
    for (int k = 0; k <= 5; ++k) {
      sv |= rs[b + (5 - k) * G::kBlock] & lane_of_k[k];
      cv |= rc[b + (5 - k) * G::kBlock] & lane_of_k[k];
    }
    ms[b] = sv;
    mc[b] = cv;
  }
  // Tail planes: one block below the mantissa; k == 5 lanes have no block
  // below (mant_lo == 0) and read a zero tail, exactly the scalar default.
  std::uint64_t ts[G::kTailDigits], tc[G::kTailDigits];
  for (int b = 0; b < G::kTailDigits; ++b) {
    std::uint64_t sv = 0, cv = 0;
    for (int k = 0; k <= 4; ++k) {
      sv |= rs[b + (4 - k) * G::kBlock] & lane_of_k[k];
      cv |= rc[b + (4 - k) * G::kBlock] & lane_of_k[k];
    }
    ts[b] = sv;
    tc[b] = cv;
  }
  if (activity_ != nullptr) {
    activity_->probe("mux.sum", "mux").observe_planes(ms, G::kMantDigits, n);
    activity_->probe("mux.carry", "mux").observe_planes(mc, G::kMantDigits, n);
  }

  // ---- back to lane-major form; per-lane readout in operation order ----
  constexpr int kMantWords = (G::kMantDigits + 63) / 64;
  std::uint64_t mant_sw[slice::kLanes * kMantWords];
  std::uint64_t mant_cw[slice::kLanes * kMantWords];
  std::uint64_t tail_sw[slice::kLanes], tail_cw[slice::kLanes];
  slice::unpack_words(ms, G::kMantDigits, n, mant_sw, kMantWords);
  slice::unpack_words(mc, G::kMantDigits, n, mant_cw, kMantWords);
  slice::unpack_words(ts, G::kTailDigits, n, tail_sw, 1);
  slice::unpack_words(tc, G::kTailDigits, n, tail_cw, 1);

  for (int L = 0; L < n; ++L) {
    if (events != nullptr) {
      events->begin_op(base + (std::uint64_t)L, ops[L].a.to_bits().lo64(),
                       ops[L].b.to_bits().lo64(), ops[L].c.to_bits().lo64());
      const int p_msb = G::kProductOffset + G::kMantDigits + 53;
      const int out_msb = G::kAdderWidth - 1 - (int)run[L];
      const int drop = std::max(a_msb[L], p_msb) - out_msb;
      if (drop >= 50) events->raise(EventKind::Cancellation, drop);
      if (skip[L] < 5 && ((same[skip[L] + 1] >> L) & 1u) != 0) {
        events->raise(EventKind::ZeroDetectLate, skip[L]);
      }
    }
    last_zd_skip_ = skip[L];
    CsWord msum, mcar, tsum, tcar;
    for (int w = 0; w < kMantWords; ++w) {
      msum.data()[w] = mant_sw[L * kMantWords + w];
      mcar.data()[w] = mant_cw[L * kMantWords + w];
    }
    tsum.data()[0] = tail_sw[L];
    tcar.data()[0] = tail_cw[L];
    PcsNum mant(G::kMantDigits, G::kGroup, msum, mcar);
    PcsNum tail(G::kTailDigits, G::kGroup, tsum, tcar);
    PcsOperand r;
    if (mant.to_binary().is_zero() && tail.to_binary().is_zero()) {
      r = PcsOperand::make_zero(false);
    } else {
      const int mant_lo = (5 - skip[L]) * G::kBlock;
      const int e_r = e_p[L] + mant_lo - G::kFracBits;
      if (e_r > G::kExpMax) {
        r = PcsOperand::make_inf(mant.as_cs().is_value_negative());
      } else if (e_r < G::kExpMin) {
        if (events != nullptr) events->raise(EventKind::SubnormalFlush, e_r);
        r = PcsOperand::make_zero(mant.as_cs().is_value_negative());
      } else {
        r = PcsOperand(mant, tail, e_r, FpClass::Normal, false);
      }
    }
    out[L] = pcs_to_ieee(r, kBinary64, rm);
  }
}

}  // namespace csfma
