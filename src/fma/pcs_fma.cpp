#include "fma/pcs_fma.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "cs/lza.hpp"
#include "introspect/event_log.hpp"
#include "introspect/signal_tap.hpp"

namespace csfma {

using G = PcsGeometry;

namespace {

/// DSP48E tile geometry of the PCS multiplier: the 110b multiplicand feeds
/// the 18-bit signed ports (17b unsigned slices), the 53b multiplier the
/// 25-bit ports (24b slices) — ceil(110/17) * ceil(53/24) = 21 DSPs, the
/// paper's Table I figure for the PCS-FMA.
constexpr int kCandChunk = 17;
constexpr int kMultChunk = 24;

/// Sign of a normal operand's value (mantissa two's complement; a zero
/// mantissa with a non-zero tail is positive).
bool value_sign(const PcsOperand& x) {
  if (x.cls() != FpClass::Normal) return x.exc_sign();
  return x.mant().as_cs().is_value_negative();
}

/// A's pass-through result when the product falls entirely below A's
/// window: apply A's deferred rounding, clear the tail.
PcsOperand passthrough_rounded(const PcsOperand& a, int rnd_a) {
  CsNum bumped = compress3(G::kMantDigits, a.mant().sum(), a.mant().carries(),
                           CsWord((std::uint64_t)rnd_a));
  PcsNum mant = carry_reduce(bumped, G::kGroup);
  return PcsOperand(mant, PcsNum::zero(G::kTailDigits, G::kGroup), a.exp(),
                    FpClass::Normal, value_sign(a));
}

}  // namespace

PcsOperand PcsFma::fma(const PcsOperand& a, const PFloat& b,
                       const PcsOperand& c) {
  SignalTap* tap = hooks_ != nullptr ? hooks_->tap : nullptr;
  EventLog* events = hooks_ != nullptr ? hooks_->events : nullptr;
  // ---- exception side-wires (Sec. III-B) ----
  if (a.is_nan() || b.is_nan() || c.is_nan()) return PcsOperand::make_nan();
  const bool b_zero = b.is_zero();
  const bool c_zero = c.is_zero();
  const bool p_inf = b.is_inf() || c.is_inf();
  const bool p_sign = b.sign() != value_sign(c);
  if (p_inf) {
    if (b_zero || c_zero) return PcsOperand::make_nan();
    if (a.is_inf() && a.exc_sign() != p_sign) return PcsOperand::make_nan();
    return PcsOperand::make_inf(p_sign);
  }
  if (a.is_inf()) return PcsOperand::make_inf(a.exc_sign());

  // ---- deferred rounding decisions (Sec. III-C) ----
  const int rnd_a = a.cls() == FpClass::Normal ? a.round_increment() : 0;
  const int rnd_c = c.cls() == FpClass::Normal ? c.round_increment() : 0;
  if (events != nullptr) {
    // The documented misrounding of the deferred half-away-from-zero rule:
    // detail 0 = the A operand's tail, 1 = C's (see fp/rounding.hpp).
    if (a.cls() == FpClass::Normal && a.round_disagrees_ieee()) {
      events->raise(EventKind::MisroundVsIeee, 0);
    }
    if (c.cls() == FpClass::Normal && c.round_disagrees_ieee()) {
      events->raise(EventKind::MisroundVsIeee, 1);
    }
  }

  if (b_zero || c_zero) {
    // Product is zero: the result is (rounded) A.
    if (a.is_zero()) {
      const bool s = p_sign && value_sign(a);  // -0 only if both negative
      return PcsOperand::make_zero(s);
    }
    return passthrough_rounded(a, rnd_a);
  }
  CSFMA_CHECK_MSG(b.format().precision() <= 53,
                  "B must be IEEE binary64 or narrower");

  // ---- multiplier: B_M x unrounded C_M as a DSP-tiled CSA tree, built
  //      directly in the 385b adder window at the product offset so the
  //      product planes stay in carry-save form into the adder (Fig 9).
  //      C's deferred rounding becomes the +B_M correction row (Fig 6). ----
  const CsNum c_mant = c.mant().as_cs();
  const CsWord b_sig = CsWord(WideUint<7>(WideUint<2>(b.sig())));
  CsNum product =
      multiply_dsp_tiled(c_mant, b_sig, 53, kCandChunk, kMultChunk,
                         G::kAdderWidth, G::kProductOffset, &mul_stats_);
  if (rnd_c != 0) {
    product = cs_add_binary(
        product, (b_sig << G::kProductOffset).truncated(G::kAdderWidth));
  }
  if (b.sign()) product = cs_negate(product);
  if (activity_ != nullptr) {
    activity_->probe("mul.sum", "mul").observe(product.sum());
    activity_->probe("mul.carry", "mul").observe(product.carry());
  }
  if (tap != nullptr) {
    tap->begin_stage("mul");
    tap->tap("mul.sum", product.sum(), G::kAdderWidth);
    tap->tap("mul.carry", product.carry(), G::kAdderWidth);
  }
  const int e_p = b.exp() + c.exp();

  // ---- A path: deferred rounding + pre-shift (parallel to the multiply;
  //      Fig 5).  The A mantissa is assimilated here (see header note). ----
  const int e_a = a.cls() == FpClass::Normal ? a.exp() : e_p;  // zero: any
  WideUint<8> a_val =
      WideUint<8>(a.cls() == FpClass::Normal ? a.mant().to_binary() : CsWord())
          .sext(G::kMantDigits) +
      WideUint<8>((std::uint64_t)rnd_a);
  const int ofs_a = e_a - e_p + G::kFracBits;
  if (!a_val.is_zero() && ofs_a > G::kAdderWidth - G::kMantDigits) {
    // A is entirely left of the adder window: the product cannot influence
    // even the rounding tail; pass A through.
    return passthrough_rounded(a, rnd_a);
  }
  CsWord a_row;
  if (!a_val.is_zero() && ofs_a > -G::kMantDigits) {
    // The 512-bit sign extension makes the negative-offset shift arithmetic.
    WideUint<8> placed = ofs_a >= 0 ? (a_val << ofs_a) : (a_val >> -ofs_a);
    a_row = CsWord(placed).truncated(G::kAdderWidth);
  }
  if (activity_ != nullptr) activity_->probe("ashift", "align").observe(a_row);
  if (tap != nullptr) {
    tap->begin_stage("align");
    tap->tap("align.ashift", a_row, G::kAdderWidth);
  }

  // ---- 385b CS adder: product planes + aligned A row (3:2) ----
  CsNum adder = compress3(G::kAdderWidth, product.sum(), product.carry(), a_row);
  if (activity_ != nullptr) {
    activity_->probe("add.sum", "add").observe(adder.sum());
    activity_->probe("add.carry", "add").observe(adder.carry());
  }
  if (tap != nullptr) {
    tap->begin_stage("add");
    tap->tap("add.sum", adder.sum(), G::kAdderWidth);
    tap->tap("add.carry", adder.carry(), G::kAdderWidth);
  }
  if (events != nullptr) {
    // Catastrophic cancellation: the sum's most significant digit landed
    // far (>= 50 digit positions) below the highest input digit.  Window
    // coordinates keep PFloat/PCS exponent conventions out of it.
    const int a_msb = ofs_a > -G::kMantDigits && !a_val.is_zero()
                          ? ofs_a + G::kMantDigits - 1
                          : -1;
    const int p_msb = G::kProductOffset + G::kMantDigits + 53;
    const int out_msb = G::kAdderWidth - 1 - leading_sign_run(adder);
    const int drop = std::max(a_msb, p_msb) - out_msb;
    if (drop >= 50) events->raise(EventKind::Cancellation, drop);
  }

  // ---- Carry Reduction to group-11 PCS (Sec. III-E) ----
  PcsNum reduced = carry_reduce(adder, G::kGroup);
  if (activity_ != nullptr) {
    activity_->probe("creduce.sum", "creduce").observe(reduced.sum());
    activity_->probe("creduce.carry", "creduce").observe(reduced.carries());
  }
  if (tap != nullptr) {
    tap->begin_stage("creduce");
    tap->tap("creduce.sum", reduced.sum(), G::kAdderWidth);
    tap->tap("creduce.carry", reduced.carries(), G::kAdderWidth);
  }

  // ---- Zero Detector + 6:1 block multiplexer (Sec. III-D/F) ----
  const int k = count_skippable_blocks(reduced.as_cs(), G::kBlock, 5, events);
  last_zd_skip_ = k;
  const int mant_lo = (5 - k) * G::kBlock;
  PcsNum mant = reduced.extract_digits(mant_lo, G::kMantDigits);
  PcsNum tail = PcsNum::zero(G::kTailDigits, G::kGroup);
  if (mant_lo >= G::kBlock) {
    tail = reduced.extract_digits(mant_lo - G::kBlock, G::kTailDigits);
  }
  if (activity_ != nullptr) {
    activity_->probe("mux.sum", "mux").observe(mant.sum());
    activity_->probe("mux.carry", "mux").observe(mant.carries());
  }
  if (tap != nullptr) {
    tap->begin_stage("mux");
    tap->tap_u64("mux.zd_skip", (std::uint64_t)k, 4);
    tap->tap("mux.sum", mant.sum(), G::kMantDigits);
    tap->tap("mux.carry", mant.carries(), G::kMantDigits);
  }

  if (mant.to_binary().is_zero() && tail.to_binary().is_zero()) {
    return PcsOperand::make_zero(false);
  }

  // ---- exponent update ----
  const int e_r = e_p + mant_lo - G::kFracBits;
  if (e_r > G::kExpMax) {
    return PcsOperand::make_inf(mant.as_cs().is_value_negative());
  }
  if (e_r < G::kExpMin) {
    if (events != nullptr) events->raise(EventKind::SubnormalFlush, e_r);
    return PcsOperand::make_zero(mant.as_cs().is_value_negative());
  }
  return PcsOperand(mant, tail, e_r, FpClass::Normal, false);
}

PFloat PcsFma::fma_ieee(const PFloat& a, const PFloat& b, const PFloat& c,
                        Round rm) {
  PcsOperand r = fma(ieee_to_pcs(a), b, ieee_to_pcs(c));
  return pcs_to_ieee(r, kBinary64, rm);
}

}  // namespace csfma
