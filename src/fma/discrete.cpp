#include "fma/discrete.hpp"

#include "introspect/signal_tap.hpp"

namespace csfma {

void DiscreteMulAdd::probe(const char* name, const char* stage,
                           const PFloat& v) {
  if (activity_ != nullptr) activity_->probe(name, stage).observe(v.to_bits());
  if (hooks_ != nullptr && hooks_->tap != nullptr) {
    SignalTap* tap = hooks_->tap;
    tap->begin_stage(stage);
    tap->tap(name, v.to_bits(), 64);
  }
}

PFloat DiscreteMulAdd::mul(const PFloat& a, const PFloat& b) {
  PFloat r = PFloat::mul(a, b, kBinary64, Round::NearestEven);
  probe("mul.out", "mul", r);
  return r;
}

PFloat DiscreteMulAdd::add(const PFloat& a, const PFloat& b) {
  PFloat r = PFloat::add(a, b, kBinary64, Round::NearestEven);
  probe("add.out", "add", r);
  return r;
}

PFloat DiscreteMulAdd::mul_add(const PFloat& a, const PFloat& b,
                               const PFloat& c) {
  return add(a, mul(b, c));
}

}  // namespace csfma
