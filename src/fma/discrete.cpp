#include "fma/discrete.hpp"

namespace csfma {

void DiscreteMulAdd::probe(const char* name, const PFloat& v) {
  if (activity_ != nullptr) activity_->probe(name).observe(v.to_bits());
}

PFloat DiscreteMulAdd::mul(const PFloat& a, const PFloat& b) {
  PFloat r = PFloat::mul(a, b, kBinary64, Round::NearestEven);
  probe("mul.out", r);
  return r;
}

PFloat DiscreteMulAdd::add(const PFloat& a, const PFloat& b) {
  PFloat r = PFloat::add(a, b, kBinary64, Round::NearestEven);
  probe("add.out", r);
  return r;
}

PFloat DiscreteMulAdd::mul_add(const PFloat& a, const PFloat& b,
                               const PFloat& c) {
  return add(a, mul(b, c));
}

}  // namespace csfma
