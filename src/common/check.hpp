// Lightweight precondition / invariant checking.
//
// CSFMA_CHECK is always on (the library simulates hardware bit-exactly, and a
// silently violated invariant produces wrong numbers, not crashes — we prefer
// to fail loudly). The cost is negligible next to the wide-integer work.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace csfma {

/// Thrown when an internal invariant or a caller-visible precondition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_fail(const char* expr, const char* file, int line,
                                    const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace csfma

#define CSFMA_CHECK(expr)                                                \
  do {                                                                   \
    if (!(expr)) ::csfma::detail::check_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define CSFMA_CHECK_MSG(expr, msg)                                       \
  do {                                                                   \
    if (!(expr)) {                                                       \
      std::ostringstream os_;                                            \
      os_ << msg;                                                        \
      ::csfma::detail::check_fail(#expr, __FILE__, __LINE__, os_.str()); \
    }                                                                    \
  } while (0)
