// Fixed-width multi-word unsigned integers.
//
// The carry-save FMA datapaths of the paper manipulate very wide words:
// 163b products, 385b (PCS) and 377c (FCS) aligned sums.  WideUint<W> is a
// W*64-bit unsigned integer with wrap-around (mod 2^(64W)) semantics, plus
// the helpers the bit-accurate simulators need: single-bit access, field
// extraction, shifts, full-width multiplication and two's-complement views.
//
// The type is a plain value type (trivially copyable, constexpr-friendly
// where practical) so simulators can treat wires as values.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <compare>
#include <cstring>
#include <string>
#include <utility>

#include "common/check.hpp"

namespace csfma {

template <int W>
class WideUint {
  static_assert(W >= 1);

 public:
  static constexpr int kWords = W;
  static constexpr int kBits = 64 * W;

  constexpr WideUint() : w_{} {}
  constexpr WideUint(std::uint64_t lo) : w_{} { w_[0] = lo; }  // NOLINT(runtime/explicit)

  /// Widening / narrowing conversion between word counts. Narrowing keeps the
  /// low words (mod 2^(64W)), mirroring hardware truncation.
  template <int W2>
  constexpr explicit WideUint(const WideUint<W2>& o) : w_{} {
    for (int i = 0; i < (W < W2 ? W : W2); ++i) w_[i] = o.word(i);
  }

  static constexpr WideUint zero() { return WideUint(); }
  static constexpr WideUint one() { return WideUint(1); }

  /// All-ones in the low `bits` positions.
  static constexpr WideUint mask(int bits) {
    CSFMA_CHECK(bits >= 0 && bits <= kBits);
    WideUint r;
    int full = bits / 64, rem = bits % 64;
    for (int i = 0; i < full; ++i) r.w_[i] = ~std::uint64_t{0};
    if (rem != 0) r.w_[full] = (~std::uint64_t{0}) >> (64 - rem);
    return r;
  }

  /// 1 << pos.
  static constexpr WideUint bit_at(int pos) {
    CSFMA_CHECK(pos >= 0 && pos < kBits);
    WideUint r;
    r.w_[pos / 64] = std::uint64_t{1} << (pos % 64);
    return r;
  }

  constexpr std::uint64_t word(int i) const {
    CSFMA_CHECK(i >= 0 && i < W);
    return w_[i];
  }
  constexpr void set_word(int i, std::uint64_t v) {
    CSFMA_CHECK(i >= 0 && i < W);
    w_[i] = v;
  }
  constexpr std::uint64_t lo64() const { return w_[0]; }

  /// Raw little-endian word storage, for the bit-sliced transpose layer and
  /// the word-walking kernels (engine/slice.hpp, cs/pcs.cpp): the layout is
  /// part of the type's contract (word i holds bits [64i, 64i+64)).
  constexpr const std::uint64_t* data() const { return w_.data(); }
  constexpr std::uint64_t* data() { return w_.data(); }

  constexpr bool bit(int pos) const {
    CSFMA_CHECK(pos >= 0 && pos < kBits);
    return (w_[pos / 64] >> (pos % 64)) & 1u;
  }
  constexpr void set_bit(int pos, bool v) {
    CSFMA_CHECK(pos >= 0 && pos < kBits);
    std::uint64_t m = std::uint64_t{1} << (pos % 64);
    if (v)
      w_[pos / 64] |= m;
    else
      w_[pos / 64] &= ~m;
  }

  constexpr bool is_zero() const {
    for (auto x : w_)
      if (x != 0) return false;
    return true;
  }

  // ---- arithmetic (mod 2^(64W)) ----

  friend constexpr WideUint operator+(const WideUint& a, const WideUint& b) {
    WideUint r;
    unsigned __int128 carry = 0;
    for (int i = 0; i < W; ++i) {
      unsigned __int128 s = (unsigned __int128)a.w_[i] + b.w_[i] + carry;
      r.w_[i] = (std::uint64_t)s;
      carry = s >> 64;
    }
    return r;
  }
  friend constexpr WideUint operator-(const WideUint& a, const WideUint& b) {
    WideUint r;
    unsigned __int128 borrow = 0;
    for (int i = 0; i < W; ++i) {
      unsigned __int128 d = (unsigned __int128)a.w_[i] - b.w_[i] - borrow;
      r.w_[i] = (std::uint64_t)d;
      borrow = (d >> 64) & 1;
    }
    return r;
  }
  constexpr WideUint operator-() const { return WideUint() - *this; }

  WideUint& operator+=(const WideUint& o) { return *this = *this + o; }
  WideUint& operator-=(const WideUint& o) { return *this = *this - o; }

  // ---- bitwise ----

  friend constexpr WideUint operator&(const WideUint& a, const WideUint& b) {
    WideUint r;
    for (int i = 0; i < W; ++i) r.w_[i] = a.w_[i] & b.w_[i];
    return r;
  }
  friend constexpr WideUint operator|(const WideUint& a, const WideUint& b) {
    WideUint r;
    for (int i = 0; i < W; ++i) r.w_[i] = a.w_[i] | b.w_[i];
    return r;
  }
  friend constexpr WideUint operator^(const WideUint& a, const WideUint& b) {
    WideUint r;
    for (int i = 0; i < W; ++i) r.w_[i] = a.w_[i] ^ b.w_[i];
    return r;
  }
  constexpr WideUint operator~() const {
    WideUint r;
    for (int i = 0; i < W; ++i) r.w_[i] = ~w_[i];
    return r;
  }
  WideUint& operator&=(const WideUint& o) { return *this = *this & o; }
  WideUint& operator|=(const WideUint& o) { return *this = *this | o; }
  WideUint& operator^=(const WideUint& o) { return *this = *this ^ o; }

  // ---- shifts (shift count may be any value in [0, kBits]; larger counts
  //      yield zero, as a hardware shifter of that width would) ----

  friend constexpr WideUint operator<<(const WideUint& a, int n) {
    CSFMA_CHECK(n >= 0);
    if (n >= kBits) return WideUint();
    WideUint r;
    int wsh = n / 64, bsh = n % 64;
    for (int i = W - 1; i >= 0; --i) {
      std::uint64_t v = 0;
      if (i - wsh >= 0) v = a.w_[i - wsh] << bsh;
      if (bsh != 0 && i - wsh - 1 >= 0) v |= a.w_[i - wsh - 1] >> (64 - bsh);
      r.w_[i] = v;
    }
    return r;
  }
  friend constexpr WideUint operator>>(const WideUint& a, int n) {
    CSFMA_CHECK(n >= 0);
    if (n >= kBits) return WideUint();
    WideUint r;
    int wsh = n / 64, bsh = n % 64;
    for (int i = 0; i < W; ++i) {
      std::uint64_t v = 0;
      if (i + wsh < W) v = a.w_[i + wsh] >> bsh;
      if (bsh != 0 && i + wsh + 1 < W) v |= a.w_[i + wsh + 1] << (64 - bsh);
      r.w_[i] = v;
    }
    return r;
  }
  WideUint& operator<<=(int n) { return *this = *this << n; }
  WideUint& operator>>=(int n) { return *this = *this >> n; }

  // ---- comparison (unsigned) ----

  friend constexpr bool operator==(const WideUint& a, const WideUint& b) {
    return a.w_ == b.w_;
  }
  friend constexpr std::strong_ordering operator<=>(const WideUint& a,
                                                    const WideUint& b) {
    for (int i = W - 1; i >= 0; --i) {
      if (a.w_[i] != b.w_[i])
        return a.w_[i] < b.w_[i] ? std::strong_ordering::less
                                 : std::strong_ordering::greater;
    }
    return std::strong_ordering::equal;
  }

  // ---- multiplication ----

  /// Full-width schoolbook product (no truncation).
  template <int W2>
  constexpr WideUint<W + W2> mul_full(const WideUint<W2>& b) const {
    WideUint<W + W2> r;
    for (int i = 0; i < W; ++i) {
      std::uint64_t carry = 0;
      for (int j = 0; j < W2; ++j) {
        unsigned __int128 cur = (unsigned __int128)w_[i] * b.word(j) +
                                r.word(i + j) + carry;
        r.set_word(i + j, (std::uint64_t)cur);
        carry = (std::uint64_t)(cur >> 64);
      }
      // Propagate the final carry upward.
      int k = i + W2;
      while (carry != 0 && k < W + W2) {
        unsigned __int128 cur = (unsigned __int128)r.word(k) + carry;
        r.set_word(k, (std::uint64_t)cur);
        carry = (std::uint64_t)(cur >> 64);
        ++k;
      }
    }
    return r;
  }

  /// Truncating product (mod 2^(64W)).
  friend constexpr WideUint operator*(const WideUint& a, const WideUint& b) {
    return WideUint(a.template mul_full<W>(b));
  }

  // ---- bit scans ----

  /// Number of leading zero bits (kBits when zero).
  constexpr int countl_zero() const {
    for (int i = W - 1; i >= 0; --i)
      if (w_[i] != 0) return (W - 1 - i) * 64 + std::countl_zero(w_[i]);
    return kBits;
  }
  /// Number of trailing zero bits (kBits when zero).
  constexpr int countr_zero() const {
    for (int i = 0; i < W; ++i)
      if (w_[i] != 0) return i * 64 + std::countr_zero(w_[i]);
    return kBits;
  }
  constexpr int popcount() const {
    int n = 0;
    for (auto x : w_) n += std::popcount(x);
    return n;
  }
  /// Position of the most significant set bit + 1 (0 when zero).
  constexpr int bit_width() const { return kBits - countl_zero(); }

  // ---- field helpers ----

  /// Extract bits [lo, lo+len) as the low bits of the result.
  constexpr WideUint extract(int lo, int len) const {
    CSFMA_CHECK(lo >= 0 && len >= 0 && lo + len <= kBits);
    return (*this >> lo) & mask(len);
  }
  /// Extract a field of at most 64 bits.
  constexpr std::uint64_t extract64(int lo, int len) const {
    CSFMA_CHECK(len <= 64);
    return extract(lo, len).lo64();
  }
  /// Deposit the low `len` bits of `v` at position `lo`.
  constexpr WideUint deposit(int lo, int len, const WideUint& v) const {
    CSFMA_CHECK(lo >= 0 && len >= 0 && lo + len <= kBits);
    WideUint field = (v & mask(len)) << lo;
    return (*this & ~(mask(len) << lo)) | field;
  }

  /// Keep only the low `bits` positions.
  constexpr WideUint truncated(int bits) const { return *this & mask(bits); }

  // ---- two's-complement views over a `width`-bit window ----

  /// Sign bit of the value interpreted as two's complement in `width` bits.
  constexpr bool sign_bit(int width) const {
    CSFMA_CHECK(width >= 1 && width <= kBits);
    return bit(width - 1);
  }
  /// Sign-extend the `width`-bit window to the full kBits.
  constexpr WideUint sext(int width) const {
    CSFMA_CHECK(width >= 1 && width <= kBits);
    WideUint t = truncated(width);
    if (t.bit(width - 1)) t |= ~mask(width);
    return t;
  }
  /// Magnitude of the two's-complement value in the `width`-bit window.
  constexpr WideUint abs_signed(int width) const {
    WideUint s = sext(width);
    return s.bit(kBits - 1) ? -s : s;
  }

  /// Approximate conversion for diagnostics / error metrics.
  double to_double() const {
    double r = 0.0;
    for (int i = W - 1; i >= 0; --i) r = r * 18446744073709551616.0 + (double)w_[i];
    return r;
  }

  std::string to_hex() const {
    static const char* digits = "0123456789abcdef";
    std::string s = "0x";
    bool started = false;
    for (int i = W - 1; i >= 0; --i) {
      for (int nib = 15; nib >= 0; --nib) {
        unsigned d = (w_[i] >> (4 * nib)) & 0xF;
        if (d != 0) started = true;
        if (started) s.push_back(digits[d]);
      }
    }
    if (!started) s.push_back('0');
    return s;
  }

 private:
  std::array<std::uint64_t, W> w_;
};

// ---- raw word-array field helpers ----
//
// The hot-path kernels (cs/pcs.cpp carry reduction, cs/csa_tree.cpp row
// placement, engine/slice.hpp transposes) walk WideUint storage through
// data() and need sub-word field access without building full-width masks.
// Fields of up to 64 bits span at most two adjacent words.

/// Read bits [lo, lo+len) of a little-endian word array; 1 <= len <= 64.
/// The caller guarantees the array covers bit lo+len-1.
constexpr std::uint64_t wide_read_bits(const std::uint64_t* w, int lo,
                                       int len) {
  const int wi = lo >> 6, sh = lo & 63;
  std::uint64_t v = w[wi] >> sh;
  if (sh != 0 && sh + len > 64) v |= w[wi + 1] << (64 - sh);
  return len == 64 ? v : v & ((std::uint64_t{1} << len) - 1);
}

/// OR the low `len` bits of `v` into a word array at bit position `lo`;
/// 1 <= len <= 64.  The destination bits must be zero (deposit-into-fresh
/// semantics — exactly how the kernels build their outputs).
constexpr void wide_or_bits(std::uint64_t* w, int lo, int len,
                            std::uint64_t v) {
  if (len != 64) v &= (std::uint64_t{1} << len) - 1;
  const int wi = lo >> 6, sh = lo & 63;
  w[wi] |= v << sh;
  if (sh != 0 && sh + len > 64) w[wi + 1] |= v >> (64 - sh);
}

/// Schoolbook restoring division: returns {quotient, remainder}.
/// O(kBits) wide-word steps — ample for simulation workloads.
template <int W>
constexpr std::pair<WideUint<W>, WideUint<W>> divmod(const WideUint<W>& n,
                                                     const WideUint<W>& d) {
  CSFMA_CHECK_MSG(!d.is_zero(), "division by zero");
  WideUint<W> q, rem;
  for (int i = n.bit_width() - 1; i >= 0; --i) {
    rem = (rem << 1) | (n.bit(i) ? WideUint<W>::one() : WideUint<W>::zero());
    if (rem >= d) {
      rem -= d;
      q.set_bit(i, true);
    }
  }
  return {q, rem};
}

// The widths the FMA datapaths use most.
using U64 = WideUint<1>;
using U128 = WideUint<2>;
using U192 = WideUint<3>;
using U256 = WideUint<4>;
using U448 = WideUint<7>;
using U512 = WideUint<8>;

}  // namespace csfma
