// Deterministic random number generation for tests and benchmarks.
//
// All experiments in the repo are seeded so that every table/figure is
// exactly reproducible run-to-run.  xoshiro256** is small, fast and has no
// global state.
#pragma once

#include <cstdint>

#include "common/check.hpp"
#include "common/wide_uint.hpp"

namespace csfma {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& si : s_) {
      // splitmix64 step
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      si = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n).
  std::uint64_t next_below(std::uint64_t n) {
    CSFMA_CHECK(n > 0);
    // Rejection sampling to avoid modulo bias.
    std::uint64_t threshold = (-n) % n;
    for (;;) {
      std::uint64_t r = next_u64();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    CSFMA_CHECK(lo <= hi);
    return lo + (std::int64_t)next_below((std::uint64_t)(hi - lo) + 1);
  }

  bool next_bool() { return next_u64() & 1; }

  /// Uniform double in [0, 1) with 53 random bits.
  double next_unit() { return (double)(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) { return lo + (hi - lo) * next_unit(); }

  /// A double with uniformly random sign, exponent in [emin, emax] and a
  /// uniformly random 52-bit fraction — for exercising wide dynamic ranges.
  double next_fp_in_exp_range(int emin, int emax) {
    std::uint64_t frac = next_u64() & ((1ULL << 52) - 1);
    std::uint64_t exp = (std::uint64_t)next_int(emin + 1023, emax + 1023);
    std::uint64_t sign = next_bool() ? 1ULL : 0ULL;
    std::uint64_t bits = (sign << 63) | (exp << 52) | frac;
    double d;
    static_assert(sizeof(d) == sizeof(bits));
    __builtin_memcpy(&d, &bits, sizeof(d));
    return d;
  }

  /// Random wide integer with all bits uniform.
  template <int W>
  WideUint<W> next_wide() {
    WideUint<W> r;
    for (int i = 0; i < W; ++i) r.set_word(i, next_u64());
    return r;
  }

  /// Random wide integer restricted to the low `bits` positions.
  template <int W>
  WideUint<W> next_wide_bits(int bits) {
    return next_wide<W>().truncated(bits);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace csfma
