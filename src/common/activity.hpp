// Switching-activity probes.
//
// The paper's energy numbers (Table II) come from recording the actual
// switching activity of the post-layout netlist (VCD/SAIF via ISim) and
// feeding it to XPower.  The simulator equivalent: every major component
// output is an ActivityProbe that accumulates the Hamming distance between
// the values it carries on successive evaluations — per-net toggle counts.
// The energy model (src/energy) weights these by per-primitive-class
// coefficients.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/wide_uint.hpp"

namespace csfma {

class ActivityProbe {
 public:
  /// Record the next value of the probed bus; accumulates toggled bits.
  template <int W>
  void observe(const WideUint<W>& v) {
    WideUint<8> cur(v);
    if (has_prev_) toggles_ += (std::uint64_t)(cur ^ prev_).popcount();
    prev_ = cur;
    has_prev_ = true;
    ++observations_;
  }

  std::uint64_t toggles() const { return toggles_; }
  std::uint64_t observations() const { return observations_; }

  void reset() {
    toggles_ = 0;
    observations_ = 0;
    has_prev_ = false;
    prev_ = WideUint<8>();
  }

 private:
  WideUint<8> prev_;
  bool has_prev_ = false;
  std::uint64_t toggles_ = 0;
  std::uint64_t observations_ = 0;
};

/// A named collection of probes, one per component output of a unit.
class ActivityRecorder {
 public:
  ActivityProbe& probe(const std::string& name) { return probes_[name]; }
  const std::map<std::string, ActivityProbe>& probes() const { return probes_; }
  void reset() {
    for (auto& [name, p] : probes_) p.reset();
  }

 private:
  std::map<std::string, ActivityProbe> probes_;
};

}  // namespace csfma
