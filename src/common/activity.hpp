// Switching-activity probes.
//
// The paper's energy numbers (Table II) come from recording the actual
// switching activity of the post-layout netlist (VCD/SAIF via ISim) and
// feeding it to XPower.  The simulator equivalent: every major component
// output is an ActivityProbe that accumulates the Hamming distance between
// the values it carries on successive evaluations — per-net toggle counts.
// The energy model (src/energy) weights these by per-primitive-class
// coefficients.
#pragma once

#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/wide_uint.hpp"

namespace csfma {

class ActivityProbe {
 public:
  /// Record the next value of the probed bus; accumulates toggled bits.
  /// Width-faithful for any bus width; successive observations of different
  /// widths are compared zero-extended to the wider of the two.
  template <int W>
  void observe(const WideUint<W>& v) {
    if (has_prev_) {
      const std::size_t n = prev_.size() > (std::size_t)W ? prev_.size()
                                                          : (std::size_t)W;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t p = i < prev_.size() ? prev_[i] : 0;
        const std::uint64_t c = i < (std::size_t)W ? v.word((int)i) : 0;
        toggles_ += (std::uint64_t)std::popcount(p ^ c);
      }
    }
    prev_.resize((std::size_t)W);
    for (int i = 0; i < W; ++i) prev_[(std::size_t)i] = v.word(i);
    has_prev_ = true;
    ++observations_;
  }

  /// Bulk observation of `n` successive values in bit-plane (SoA) form:
  /// planes[b] bit L holds bit b of the (L+1)-th value of the batch
  /// (engine/slice.hpp layout).  Exactly equivalent to n successive
  /// observe() calls of width `width_bits` — the seam toggle against the
  /// stored baseline uses the same zero-extended comparison, lane-to-lane
  /// toggles are popcounts of each plane XOR its one-lane shift, and the
  /// batch's last value becomes the new baseline.
  void observe_planes(const std::uint64_t* planes, int width_bits, int n) {
    if (n <= 0) return;
    const std::size_t words = ((std::size_t)width_bits + 63) / 64;
    if (has_prev_) {
      const std::size_t nw = prev_.size() > words ? prev_.size() : words;
      for (std::size_t wi = 0; wi < nw; ++wi) {
        std::uint64_t first = 0;
        if (wi < words) {
          const int b0 = (int)wi * 64;
          const int nb = width_bits - b0 < 64 ? width_bits - b0 : 64;
          for (int b = 0; b < nb; ++b)
            first |= (planes[b0 + b] & 1u) << b;
        }
        const std::uint64_t p = wi < prev_.size() ? prev_[wi] : 0;
        toggles_ += (std::uint64_t)std::popcount(p ^ first);
      }
    }
    // Lane L vs lane L-1 for L in [1, n): shift each plane up by one lane
    // and XOR, masking off lane 0 (covered by the seam above) and lanes
    // beyond the batch.
    const std::uint64_t lane_mask =
        (n >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1) &
        ~std::uint64_t{1};
    std::uint64_t t = 0;
    for (int b = 0; b < width_bits; ++b)
      t += (std::uint64_t)std::popcount((planes[b] ^ (planes[b] << 1)) &
                                        lane_mask);
    toggles_ += t;
    prev_.assign(words, 0);
    const int last = n - 1;
    for (int b = 0; b < width_bits; ++b)
      prev_[(std::size_t)b / 64] |= ((planes[b] >> last) & 1u)
                                    << ((unsigned)b % 64);
    has_prev_ = true;
    observations_ += (std::uint64_t)n;
  }

  std::uint64_t toggles() const { return toggles_; }
  std::uint64_t observations() const { return observations_; }

  /// Pipeline-stage label ("mul", "add", ...) for per-stage attribution;
  /// empty = unattributed.  Labels classify a probe, they do not affect
  /// counting, so merge adopts a label rather than summing it.
  const std::string& stage() const { return stage_; }
  void set_stage(const std::string& stage) { stage_ = stage; }

  /// Fold another probe's accumulated counts into this one.  Totals add;
  /// the last-value baseline is NOT transferred, so no cross-probe toggle
  /// is invented at the seam (each shard of a partitioned run sets its own
  /// baseline, exactly as independent hardware captures would).
  void merge_from(const ActivityProbe& o) {
    toggles_ += o.toggles_;
    observations_ += o.observations_;
    if (stage_.empty()) stage_ = o.stage_;
  }

  void reset() {
    toggles_ = 0;
    observations_ = 0;
    has_prev_ = false;
    prev_.clear();
  }

 private:
  std::vector<std::uint64_t> prev_;
  bool has_prev_ = false;
  std::uint64_t toggles_ = 0;
  std::uint64_t observations_ = 0;
  std::string stage_;
};

/// A named collection of probes, one per component output of a unit.
class ActivityRecorder {
 public:
  ActivityProbe& probe(const std::string& name) { return probes_[name]; }
  /// Probe lookup that also (idempotently) labels the probe's pipeline
  /// stage — the instrumentation sites' entry point for stage attribution.
  ActivityProbe& probe(const std::string& name, const std::string& stage) {
    ActivityProbe& p = probes_[name];
    if (p.stage().empty()) p.set_stage(stage);
    return p;
  }
  const std::map<std::string, ActivityProbe>& probes() const { return probes_; }

  /// Sum of toggle counts over all probes.
  std::uint64_t total_toggles() const {
    std::uint64_t t = 0;
    for (const auto& [name, p] : probes_) t += p.toggles();
    return t;
  }

  /// Per-stage rollup of the probe counts.  Unlabelled probes land under
  /// the empty-string stage, so the values always sum to total_toggles().
  struct StageTotals {
    std::uint64_t toggles = 0;
    std::uint64_t observations = 0;
  };
  std::map<std::string, StageTotals> stage_totals() const {
    std::map<std::string, StageTotals> out;
    for (const auto& [name, p] : probes_) {
      StageTotals& st = out[p.stage()];
      st.toggles += p.toggles();
      st.observations += p.observations();
    }
    return out;
  }

  /// Fold another recorder's counts into this one, probe by probe (probes
  /// absent here are created).  Used to combine per-shard recorders of a
  /// partitioned run into one deterministic aggregate.
  void merge_from(const ActivityRecorder& o) {
    for (const auto& [name, p] : o.probes_) probes_[name].merge_from(p);
  }

  /// Snapshot as a JSON object — the per-probe and per-stage view of the
  /// Table II toggle data, embeddable in experiment reports.  Probe and
  /// stage order is sorted (map order) and all values are integers (stage
  /// labels escape like probe names), so equal recorders render to
  /// byte-identical JSON whatever the capture's thread count.
  std::string to_json() const {
    auto quoted = [](const std::string& s) {
      std::string q = "\"";
      for (char c : s) {  // names are identifiers; escape minimally
        if (c == '"' || c == '\\') q += '\\';
        q += c;
      }
      q += '"';
      return q;
    };
    std::string out = "{\"total_toggles\":" + std::to_string(total_toggles()) +
                      ",\"stages\":{";
    bool first = true;
    for (const auto& [stage, st] : stage_totals()) {
      if (!first) out += ',';
      first = false;
      out += quoted(stage) + ":{\"toggles\":" + std::to_string(st.toggles) +
             ",\"observations\":" + std::to_string(st.observations) + "}";
    }
    out += "},\"probes\":{";
    first = true;
    for (const auto& [name, p] : probes_) {
      if (!first) out += ',';
      first = false;
      out += quoted(name) + ":{\"stage\":" + quoted(p.stage()) +
             ",\"toggles\":" + std::to_string(p.toggles()) +
             ",\"observations\":" + std::to_string(p.observations()) + "}";
    }
    out += "}}";
    return out;
  }

  void reset() {
    for (auto& [name, p] : probes_) p.reset();
  }

 private:
  std::map<std::string, ActivityProbe> probes_;
};

}  // namespace csfma
