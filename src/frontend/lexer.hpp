// Lexer for the kernel language the CVXGEN-like generator emits and the
// Nymble-like flow consumes — straight-line double-precision assignments:
//
//   kernel ldlsolve {
//     input  double b[12];
//     input  double gamma;          // scalars allowed
//     var    double t[20];
//     output double x[12];
//     t[0] = b[0] - 1.5 * t[3];     // '#' and '//' comments
//     x[0] = t[0] / b[1];
//   }
#pragma once

#include <string>
#include <vector>

namespace csfma {

enum class Tok {
  KwKernel, KwInput, KwOutput, KwVar, KwDouble,
  Ident, Number,
  LBrace, RBrace, LBracket, RBracket, LParen, RParen,
  Assign, Plus, Minus, Star, Slash, Semicolon,
  End,
};

struct Token {
  Tok kind;
  std::string text;
  double number = 0.0;
  int line = 0;
};

/// Tokenize; throws CheckError with a line number on bad input.
std::vector<Token> lex_kernel(const std::string& src);

const char* to_string(Tok t);

}  // namespace csfma
