#include "frontend/lexer.hpp"

#include <cctype>
#include <cstdlib>

#include "common/check.hpp"

namespace csfma {

const char* to_string(Tok t) {
  switch (t) {
    case Tok::KwKernel: return "'kernel'";
    case Tok::KwInput: return "'input'";
    case Tok::KwOutput: return "'output'";
    case Tok::KwVar: return "'var'";
    case Tok::KwDouble: return "'double'";
    case Tok::Ident: return "identifier";
    case Tok::Number: return "number";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::Assign: return "'='";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Slash: return "'/'";
    case Tok::Semicolon: return "';'";
    case Tok::End: return "end of input";
  }
  return "?";
}

std::vector<Token> lex_kernel(const std::string& src) {
  std::vector<Token> out;
  int line = 1;
  size_t i = 0;
  auto push = [&](Tok k, std::string text) {
    out.push_back({k, std::move(text), 0.0, line});
  };
  while (i < src.size()) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace((unsigned char)c)) {
      ++i;
      continue;
    }
    if (c == '#' || (c == '/' && i + 1 < src.size() && src[i + 1] == '/')) {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha((unsigned char)c) || c == '_') {
      size_t j = i;
      while (j < src.size() &&
             (std::isalnum((unsigned char)src[j]) || src[j] == '_'))
        ++j;
      std::string word = src.substr(i, j - i);
      i = j;
      if (word == "kernel") push(Tok::KwKernel, word);
      else if (word == "input") push(Tok::KwInput, word);
      else if (word == "output") push(Tok::KwOutput, word);
      else if (word == "var") push(Tok::KwVar, word);
      else if (word == "double") push(Tok::KwDouble, word);
      else push(Tok::Ident, word);
      continue;
    }
    if (std::isdigit((unsigned char)c) ||
        (c == '.' && i + 1 < src.size() && std::isdigit((unsigned char)src[i + 1]))) {
      char* end = nullptr;
      double v = std::strtod(src.c_str() + i, &end);
      CSFMA_CHECK_MSG(end != src.c_str() + i, "bad number at line " << line);
      Token t{Tok::Number, src.substr(i, (size_t)(end - (src.c_str() + i))), v,
              line};
      out.push_back(t);
      i = (size_t)(end - src.c_str());
      continue;
    }
    Tok k;
    switch (c) {
      case '{': k = Tok::LBrace; break;
      case '}': k = Tok::RBrace; break;
      case '[': k = Tok::LBracket; break;
      case ']': k = Tok::RBracket; break;
      case '(': k = Tok::LParen; break;
      case ')': k = Tok::RParen; break;
      case '=': k = Tok::Assign; break;
      case '+': k = Tok::Plus; break;
      case '-': k = Tok::Minus; break;
      case '*': k = Tok::Star; break;
      case '/': k = Tok::Slash; break;
      case ';': k = Tok::Semicolon; break;
      default:
        CSFMA_CHECK_MSG(false, "unexpected character '" << c << "' at line "
                                                        << line);
        return out;
    }
    push(k, std::string(1, c));
    ++i;
  }
  push(Tok::End, "");
  return out;
}

}  // namespace csfma
