#include "frontend/parser.hpp"

#include <map>
#include <sstream>
#include <vector>

#include "frontend/lexer.hpp"

namespace csfma {

std::string element_name(const std::string& array, int index, bool is_array) {
  if (!is_array) return array;
  std::ostringstream os;
  os << array << '[' << index << ']';
  return os.str();
}

namespace {

enum class SymKind { Input, Output, Var };

struct Symbol {
  SymKind kind;
  bool is_array = false;
  int size = 1;
  std::vector<int> def;  // node id per element, -1 if unassigned
};

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  KernelInfo parse() {
    expect(Tok::KwKernel);
    info_.name = expect(Tok::Ident).text;
    expect(Tok::LBrace);
    while (at(Tok::KwInput) || at(Tok::KwOutput) || at(Tok::KwVar)) {
      parse_decl();
    }
    while (!at(Tok::RBrace)) parse_assignment();
    expect(Tok::RBrace);
    expect(Tok::End);
    finalize_outputs();
    info_.graph.validate();
    return std::move(info_);
  }

 private:
  const Token& cur() const { return toks_[pos_]; }
  bool at(Tok k) const { return cur().kind == k; }
  Token expect(Tok k) {
    CSFMA_CHECK_MSG(at(k), "line " << cur().line << ": expected "
                                   << to_string(k) << ", found "
                                   << to_string(cur().kind));
    return toks_[pos_++];
  }
  bool accept(Tok k) {
    if (!at(k)) return false;
    ++pos_;
    return true;
  }

  void parse_decl() {
    SymKind kind = SymKind::Var;
    if (accept(Tok::KwInput)) kind = SymKind::Input;
    else if (accept(Tok::KwOutput)) kind = SymKind::Output;
    else expect(Tok::KwVar);
    expect(Tok::KwDouble);
    Token name = expect(Tok::Ident);
    CSFMA_CHECK_MSG(syms_.count(name.text) == 0,
                    "line " << name.line << ": redeclaration of " << name.text);
    Symbol s;
    s.kind = kind;
    if (accept(Tok::LBracket)) {
      Token n = expect(Tok::Number);
      CSFMA_CHECK_MSG(n.number >= 1 && n.number == (int)n.number,
                      "line " << n.line << ": bad array size");
      s.is_array = true;
      s.size = (int)n.number;
      expect(Tok::RBracket);
    }
    s.def.assign((size_t)s.size, -1);
    expect(Tok::Semicolon);
    syms_.emplace(name.text, std::move(s));
  }

  /// Resolve name[index] to {symbol, element}.
  std::pair<Symbol*, int> parse_lvalue_ref() {
    Token name = expect(Tok::Ident);
    auto it = syms_.find(name.text);
    CSFMA_CHECK_MSG(it != syms_.end(),
                    "line " << name.line << ": undeclared " << name.text);
    Symbol& s = it->second;
    int index = 0;
    if (s.is_array) {
      expect(Tok::LBracket);
      Token n = expect(Tok::Number);
      index = (int)n.number;
      CSFMA_CHECK_MSG(n.number == index && index >= 0 && index < s.size,
                      "line " << n.line << ": index out of range for "
                              << name.text);
      expect(Tok::RBracket);
    }
    last_ref_name_ = name.text;
    return {&s, index};
  }

  int read_element(Symbol& s, const std::string& name, int index, int line) {
    if (s.def[(size_t)index] >= 0) return s.def[(size_t)index];
    CSFMA_CHECK_MSG(s.kind == SymKind::Input,
                    "line " << line << ": " << name << "[" << index
                            << "] read before assignment");
    int id = info_.graph.add_input(element_name(name, index, s.is_array));
    s.def[(size_t)index] = id;
    return id;
  }

  void parse_assignment() {
    int line = cur().line;
    auto [sym, index] = parse_lvalue_ref();
    std::string name = last_ref_name_;
    CSFMA_CHECK_MSG(sym->kind != SymKind::Input,
                    "line " << line << ": cannot assign to input " << name);
    CSFMA_CHECK_MSG(sym->def[(size_t)index] < 0,
                    "line " << line << ": element assigned twice: " << name
                            << "[" << index << "]");
    expect(Tok::Assign);
    int value = parse_expr();
    expect(Tok::Semicolon);
    sym->def[(size_t)index] = value;
    ++info_.statements;
  }

  int parse_expr() {  // + -
    int lhs = parse_term();
    for (;;) {
      if (accept(Tok::Plus)) {
        lhs = info_.graph.add_op(OpKind::Add, {lhs, parse_term()});
      } else if (accept(Tok::Minus)) {
        lhs = info_.graph.add_op(OpKind::Sub, {lhs, parse_term()});
      } else {
        return lhs;
      }
    }
  }

  int parse_term() {  // * /
    int lhs = parse_unary();
    for (;;) {
      if (accept(Tok::Star)) {
        lhs = info_.graph.add_op(OpKind::Mul, {lhs, parse_unary()});
      } else if (accept(Tok::Slash)) {
        lhs = info_.graph.add_op(OpKind::Div, {lhs, parse_unary()});
      } else {
        return lhs;
      }
    }
  }

  int parse_unary() {
    if (accept(Tok::Minus)) {
      return info_.graph.add_op(OpKind::Neg, {parse_unary()});
    }
    return parse_primary();
  }

  int parse_primary() {
    if (at(Tok::Number)) {
      return info_.graph.add_const(expect(Tok::Number).number);
    }
    if (accept(Tok::LParen)) {
      int e = parse_expr();
      expect(Tok::RParen);
      return e;
    }
    int line = cur().line;
    auto [sym, index] = parse_lvalue_ref();
    return read_element(*sym, last_ref_name_, index, line);
  }

  void finalize_outputs() {
    for (auto& [name, s] : syms_) {
      if (s.kind != SymKind::Output) continue;
      for (int i = 0; i < s.size; ++i) {
        CSFMA_CHECK_MSG(s.def[(size_t)i] >= 0,
                        "output " << name << "[" << i << "] never assigned");
        info_.graph.add_output(element_name(name, i, s.is_array),
                               s.def[(size_t)i]);
      }
    }
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
  KernelInfo info_;
  std::map<std::string, Symbol> syms_;
  std::string last_ref_name_;
};

}  // namespace

KernelInfo parse_kernel(const std::string& source, TraceSession* trace) {
  std::vector<Token> toks;
  {
    TraceSpan lex_span(trace, "lex", "hls");
    lex_span.arg("bytes", (std::uint64_t)source.size());
    toks = lex_kernel(source);
  }
  TraceSpan parse_span(trace, "parse", "hls");
  parse_span.arg("tokens", (std::uint64_t)toks.size());
  return Parser(std::move(toks)).parse();
}

}  // namespace csfma
