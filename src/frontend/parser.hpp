// Recursive-descent parser + CDFG lowering for the kernel language.
//
// Semantics:
//   * every array element (or scalar) is a single-assignment value,
//   * reading an `input` element creates a named Input node ("b[3]"),
//   * reading a `var`/`output` element before its assignment is an error,
//   * every assigned `output` element becomes a named Output node,
//   * expressions lower to Add/Sub/Mul/Div/Neg over binary64.
#pragma once

#include <string>

#include "hls/ir.hpp"
#include "telemetry/trace.hpp"

namespace csfma {

struct KernelInfo {
  std::string name;
  Cdfg graph;
  int statements = 0;
};

/// Parse and lower a kernel; throws CheckError with line info on errors.
/// `trace` (optional) receives "lex" and "parse" phase spans.
KernelInfo parse_kernel(const std::string& source,
                        TraceSession* trace = nullptr);

/// Canonical element name used for Input/Output nodes: "x[i]" or "x".
std::string element_name(const std::string& array, int index, bool is_array);

}  // namespace csfma
