// Incremental multi-objective Pareto frontier (delay, LUTs, DSPs,
// energy — all minimized).
//
// Membership is a pure function of the point SET: a point is on the
// frontier iff no other point dominates it, and among points with exactly
// equal objective vectors only the lexicographically smallest key
// survives (the deterministic tie-break).  Insertion order therefore
// never changes the final membership — only the eviction log's order,
// which is why the explorer keeps a live frontier for observability but
// rebuilds the reported one by replaying points in canonical index order
// (docs/dse.md, "Determinism contract").
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace csfma::dse {

/// The four exploration objectives, all minimized.  LUTs/DSPs are carried
/// as doubles so the dominance test is one uniform comparison; values are
/// exact small integers, so no precision is lost.
struct Objectives {
  double delay_ns = 0.0;
  double luts = 0.0;
  double dsps = 0.0;
  double energy_nj = 0.0;
};

/// a dominates b: no worse in every objective, strictly better in one.
bool dominates(const Objectives& a, const Objectives& b);
bool same_objectives(const Objectives& a, const Objectives& b);

struct FrontierPoint {
  std::string key;  // canonical identity (the point's cache key)
  Objectives obj;
};

/// One dominated-point eviction: `evicted` left the frontier because of
/// `by` (reason "dominated"), or lost an exact-objective tie to it
/// (reason "tie").
struct Eviction {
  std::string evicted;
  std::string by;
  std::string reason;
};

class ParetoFrontier {
 public:
  /// Offer a point.  Returns true when the point joins the frontier
  /// (possibly evicting dominated or tie-losing incumbents, appended to
  /// the eviction log); false when an incumbent dominates it or wins the
  /// tie-break.
  bool insert(const FrontierPoint& p);

  std::size_t size() const { return points_.size(); }
  /// Members sorted by key — the canonical report order.
  std::vector<FrontierPoint> sorted() const;
  const std::vector<Eviction>& evictions() const { return evictions_; }
  /// Points offered but rejected (dominated on arrival or tie-lost).
  std::uint64_t rejected() const { return rejected_; }

 private:
  std::vector<FrontierPoint> points_;
  std::vector<Eviction> evictions_;
  std::uint64_t rejected_ = 0;
};

}  // namespace csfma::dse
