#include "dse/config.hpp"

namespace csfma::dse {

const char* to_string(BlockSelect s) {
  return s == BlockSelect::Zd ? "zd" : "lza";
}

bool parse_block_select(std::string_view s, BlockSelect& out) {
  if (s == "lza") {
    out = BlockSelect::Lza;
    return true;
  }
  if (s == "zd") {
    out = BlockSelect::Zd;
    return true;
  }
  return false;
}

std::string DseConfig::validate() const {
  // The block range mirrors PcsConfig::validate (8..62 keeps the adder
  // inside one CsWord); the FCS model shares it for uniformity.
  if (block < 8 || block > 62) return "field \"block\" must be in 8..62";
  if (group < 2 || group > 63) return "field \"group\" must be in 2..63";
  if (unit == UnitKind::Pcs && block % group != 0)
    return "field \"group\" must divide \"block\" for unit pcs";
  if (round_width < 0 || round_width > 256)
    return "field \"rwidth\" must be in 0..256 (0 = one block)";
  if (depth < 1 || depth > 64) return "field \"depth\" must be in 1..64";
  if (ops < 1 || ops > 65536) return "field \"ops\" must be in 1..65536";
  return "";
}

}  // namespace csfma::dse
