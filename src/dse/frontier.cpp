#include "dse/frontier.hpp"

#include <algorithm>

namespace csfma::dse {

bool dominates(const Objectives& a, const Objectives& b) {
  if (a.delay_ns > b.delay_ns || a.luts > b.luts || a.dsps > b.dsps ||
      a.energy_nj > b.energy_nj) {
    return false;
  }
  return a.delay_ns < b.delay_ns || a.luts < b.luts || a.dsps < b.dsps ||
         a.energy_nj < b.energy_nj;
}

bool same_objectives(const Objectives& a, const Objectives& b) {
  return a.delay_ns == b.delay_ns && a.luts == b.luts && a.dsps == b.dsps &&
         a.energy_nj == b.energy_nj;
}

bool ParetoFrontier::insert(const FrontierPoint& p) {
  // Pass 1: is the newcomer beaten?  An incumbent that dominates it, or
  // holds the same objectives with a smaller-or-equal key, keeps it out.
  for (const auto& q : points_) {
    if (dominates(q.obj, p.obj)) {
      ++rejected_;
      return false;
    }
    if (same_objectives(q.obj, p.obj) && q.key <= p.key) {
      ++rejected_;
      return false;
    }
  }
  // Pass 2: evict incumbents the newcomer beats.  (An exact-tie loser and
  // a dominated incumbent cannot coexist with pass 1 having passed.)
  for (std::size_t i = 0; i < points_.size();) {
    const bool dominated = dominates(p.obj, points_[i].obj);
    const bool tie_lost = same_objectives(p.obj, points_[i].obj);
    if (dominated || tie_lost) {
      evictions_.push_back(
          {points_[i].key, p.key, dominated ? "dominated" : "tie"});
      points_.erase(points_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  points_.push_back(p);
  return true;
}

std::vector<FrontierPoint> ParetoFrontier::sorted() const {
  std::vector<FrontierPoint> out = points_;
  std::sort(out.begin(), out.end(),
            [](const FrontierPoint& a, const FrontierPoint& b) {
              return a.key < b.key;
            });
  return out;
}

}  // namespace csfma::dse
