#include "dse/eval.hpp"

#include <cmath>
#include <cstddef>

#include "common/activity.hpp"
#include "cs/csa_tree.hpp"
#include "energy/energy_model.hpp"
#include "energy/workload.hpp"
#include "fma/fcs_fma.hpp"
#include "fma/pcs_config.hpp"
#include "fpga/architectures.hpp"

namespace csfma::dse {

namespace {

// Mirrors the file-local helpers in fpga/architectures.cpp: adder logic
// delay excluding the per-stage register cost, and one LUT6 level.
double add_logic(const Device& d, int n) {
  return d.adder_delay_ns(n) - d.reg_clk_to_q_ns - d.reg_setup_ns;
}

double lut_level(const Device& d) { return d.lut6_logic_ns + d.lut_route_ns; }

/// Scale a baseline LUT count by a width ratio.  Ratio 1 returns the
/// baseline exactly, so default-geometry chains match the fixed builders.
int scl(int base, double ratio) {
  return static_cast<int>(std::lround(base * ratio));
}

/// Swap the IEEE units' final rounding stage for one examining `rwidth`
/// bits — the Sec. III-C knob applied to the discrete/classic chains,
/// whose natural examination width is the 55-bit baseline.
void retune_round(std::vector<Component>& chain, const Device& dev,
                  int rwidth, double ratio) {
  for (auto& c : chain) {
    if (c.name == "round") {
      c = Component::atomic("round", add_logic(dev, rwidth),
                            {scl(c.area.luts, ratio), 0});
    }
  }
}

std::vector<Component> build_discrete(const DseConfig& cfg, const Device& dev) {
  // The CoreGen pair, concatenated: latencies add (synthesize_coregen_pair
  // sums cycles and takes min fmax; one chain under one pipeliner models
  // the same composition while keeping the depth knob meaningful).
  std::vector<Component> c = build_coregen_mul(dev);
  std::vector<Component> add = build_coregen_add(dev);
  c.insert(c.end(), add.begin(), add.end());
  retune_round(c, dev, cfg.resolved_round_width(),
               cfg.resolved_round_width() / static_cast<double>(cfg.block));
  return c;
}

std::vector<Component> build_classic(const DseConfig& cfg, const Device& dev) {
  std::vector<Component> c = build_flopoco_fused(dev);
  retune_round(c, dev, cfg.resolved_round_width(),
               cfg.resolved_round_width() / static_cast<double>(cfg.block));
  return c;
}

std::vector<Component> build_pcs(const DseConfig& cfg, const Device& dev) {
  // build_pcs_fma generalized over PcsConfig geometry and the rounding
  // width.  Every area is the Fig 9 baseline scaled by the width ratio of
  // the structure it implements; at (55, 11, rwidth 55) all ratios are 1.
  const PcsConfig pc{cfg.block, cfg.group};
  const PcsConfig base{55, 11};
  const int tiles = ((pc.mant_digits() + 16) / 17) * 3;  // DSP48 17x24 grid
  const int tree_levels = csa_levels_for_rows(tiles + 1);
  const int base_levels = csa_levels_for_rows(21 + 1);
  const double w_adder = pc.adder_width() / static_cast<double>(base.adder_width());
  const double w_rw = cfg.resolved_round_width() / static_cast<double>(cfg.block);
  const int mux_inputs = pc.adder_blocks() - 1;
  const int mux_levels = mux_inputs <= 6 ? 2 : 3;

  std::vector<Component> c;
  c.push_back(Component::atomic(
      "in-route", 0.9,
      {scl(80, pc.operand_bits() / static_cast<double>(base.operand_bits())),
       0}));
  c.push_back(Component::atomic("mult/dsp-tiles", dev.dsp_mult_ns,
                                {scl(260, tiles / 21.0), tiles}));
  c.push_back(Component::layered(
      "mult/csa-tree", tree_levels, lut_level(dev),
      {scl(1700, (pc.product_width() * tree_levels) /
                     static_cast<double>(base.product_width() * base_levels)),
       0}));
  c.push_back(Component::parallel("a-round+preshift",
                                  {scl(980, 0.5 * w_adder + 0.5 * w_rw), 0}));
  c.push_back(Component::parallel("c-round", {scl(310, w_rw), 0}));
  c.push_back(
      Component::atomic("add/3:2", lut_level(dev), {scl(770, w_adder), 0}));
  c.push_back(Component::atomic("carry-reduce",
                                add_logic(dev, cfg.group) + 0.60,
                                {scl(700, w_adder), 0}));
  c.push_back(Component::atomic("zd", 3 * lut_level(dev) + 1.2,
                                {scl(340, w_adder), 0}));
  c.push_back(Component::layered(
      "mux" + std::to_string(mux_inputs) + ":1", mux_levels, lut_level(dev),
      {scl(500, (mux_inputs * pc.mant_digits()) / (6.0 * 110.0)), 0}));
  c.push_back(Component::atomic("exp/flags", add_logic(dev, 13), {110, 0}));
  c.push_back(Component::layered(
      "result-route/pack", 2, lut_level(dev),
      {scl(52, pc.mant_digits() / 110.0), 0}));
  return c;
}

std::vector<Component> build_fcs(const DseConfig& cfg, const Device& dev) {
  // build_fcs_fma / build_fcs_fma_zd generalized over the block size (the
  // FCS result is three blocks, baseline 29 digits) and the rounding
  // width; the select knob picks the parallel early LZA (Fig 11) or the
  // exact on-path zero detector (the Sec. III-F alternative).
  const int b = cfg.block;
  const int mant_digits = 3 * b;
  const int tiles = ((mant_digits + 22) / 23) * 4;  // ceil(3b/23)*ceil(53/17)
  const int tree_levels = csa_levels_for_rows(tiles + 1);
  const int base_levels = csa_levels_for_rows(16 + 1);
  const double wb = b / 29.0;
  const double w_rw = cfg.resolved_round_width() / static_cast<double>(b);

  std::vector<Component> c;
  c.push_back(Component::atomic("in-route", 0.6, {scl(80, wb), 0}));
  c.push_back(
      Component::atomic("mult/pre-add", dev.dsp_preadd_ns, {scl(120, wb), 0}));
  c.push_back(Component::atomic("mult/dsp-tiles", dev.dsp_mult_ns,
                                {scl(200, tiles / 16.0),
                                 scl(12, tiles / 16.0)}));
  c.push_back(Component::layered(
      "mult/csa-tree", tree_levels, lut_level(dev),
      {scl(1300, (mant_digits * tree_levels) /
                     static_cast<double>(87 * base_levels)),
       0}));
  if (cfg.select == BlockSelect::Lza) {
    c.push_back(Component::parallel("early-lza", {scl(430, wb), 0}));
  }
  c.push_back(Component::parallel("a-round+preshift",
                                  {scl(830, 0.5 * wb + 0.5 * w_rw), 0}));
  c.push_back(Component::parallel("c-round", {scl(250, w_rw), 0}));
  c.push_back(
      Component::atomic("add/3:2", lut_level(dev), {scl(754, wb), 0}));
  if (cfg.select == BlockSelect::Zd) {
    c.push_back(Component::atomic("zd", 3 * lut_level(dev) + 1.4,
                                  {scl(500, wb), 0}));
  }
  c.push_back(Component::layered("mux11:1", 3, lut_level(dev),
                                 {scl(600, wb), 0}));
  c.push_back(Component::atomic("exp/flags", add_logic(dev, 13), {100, 0}));
  c.push_back(Component::atomic("result-route/pack", 1.0, {scl(101, wb), 0}));
  return c;
}

/// Toggles per multiply-add of the configured unit on the Sec. IV-B
/// recurrence stream (cfg.ops operations, IEEE boundaries).  Pure in
/// (unit, geometry, select, rm, seed, ops).
double measure_model_toggles(const DseConfig& cfg) {
  const int runs =
      static_cast<int>((cfg.ops + 31) / 32);  // 32 triples per depth-18 run
  RecurrenceSource src(cfg.seed, runs, 18);
  std::vector<OperandTriple> ops(cfg.ops);
  src.fill(0, ops.data(), ops.size());

  ActivityRecorder rec;
  switch (cfg.unit) {
    case UnitKind::Pcs: {
      GenPcsFma unit(PcsConfig{cfg.block, cfg.group}, &rec);
      for (const auto& t : ops) unit.fma_ieee(t.a, t.b, t.c, cfg.rm);
      break;
    }
    case UnitKind::Fcs: {
      FcsFma unit(&rec, cfg.select == BlockSelect::Zd ? FcsSelect::ZeroDetect
                                                      : FcsSelect::EarlyLza);
      for (const auto& t : ops) unit.fma_ieee(t.a, t.b, t.c, cfg.rm);
      break;
    }
    default: {
      std::unique_ptr<FmaUnit> unit = make_fma_unit(cfg.unit, &rec);
      for (const auto& t : ops) unit->fma_ieee(t.a, t.b, t.c, cfg.rm);
      break;
    }
  }
  return static_cast<double>(rec.total_toggles()) /
         static_cast<double>(cfg.ops);
}

/// (alpha, beta) calibrated once against the Table II anchors — the
/// discrete CoreGen pair at 0.54 nJ and the paper-geometry PCS-FMA at
/// 2.67 nJ — with toggles and LUTs taken from THIS model at its default
/// workload, so every point's energy is consistent with the anchors.
const EnergyCoefficients& model_coefficients() {
  static const EnergyCoefficients k = [] {
    const Device dev = virtex6();
    DseConfig a;
    a.unit = UnitKind::Discrete;
    DseConfig b;
    b.unit = UnitKind::Pcs;
    return calibrate(measure_model_toggles(a),
                     total_area(build_model_chain(a, dev)).luts, 0.54,
                     measure_model_toggles(b),
                     total_area(build_model_chain(b, dev)).luts, 2.67);
  }();
  return k;
}

}  // namespace

std::vector<Component> build_model_chain(const DseConfig& cfg,
                                         const Device& dev) {
  switch (cfg.unit) {
    case UnitKind::Discrete:
      return build_discrete(cfg, dev);
    case UnitKind::Classic:
      return build_classic(cfg, dev);
    case UnitKind::Pcs:
      return build_pcs(cfg, dev);
    case UnitKind::Fcs:
      return build_fcs(cfg, dev);
  }
  return {};
}

DseMetrics eval_design(const DseConfig& cfg) {
  const Device dev = virtex6();
  const std::vector<Component> chain = build_model_chain(cfg, dev);

  // The depth knob sets the target period to an even 1/depth split of the
  // combinational critical path; the greedy pipeliner then packs stages,
  // so an indivisible atom (a DSP stage, the wide adder) still bounds
  // fmax exactly as in the fixed Table I flow.
  double total = 0.0;
  for (const auto& c : chain) {
    if (!c.off_critical_path) total += c.total_delay();
  }
  const double reg = dev.reg_clk_to_q_ns + dev.reg_setup_ns;
  const double period = total / cfg.depth + reg;
  const PipelineResult p = pipeline_chain(chain, period, reg);
  const Area area = total_area(chain);

  DseMetrics m;
  m.cycles = p.cycles;
  m.fmax_mhz = p.fmax_mhz;
  m.delay_ns = p.cycles * 1000.0 / p.fmax_mhz;
  m.luts = area.luts;
  m.dsps = area.dsps;
  m.toggles_per_op = measure_model_toggles(cfg);
  m.energy_nj =
      energy_per_op_nj(model_coefficients(), m.toggles_per_op, m.luts);
  return m;
}

}  // namespace csfma::dse
