// Per-knob sensitivity: the median absolute metric delta when ONE axis
// varies and every other axis is held fixed.
//
// For each axis the points are grouped by the values of all OTHER axes
// (the "context"); within a group the points are ordered along the
// varying axis (numerically when the values parse as integers) and each
// adjacent pair contributes |Δmetric| per objective.  The reported
// statistic is the median over all such deltas — a robust answer to "how
// much does turning this knob one notch move each metric?", computed
// deterministically from the point set alone.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dse/frontier.hpp"

namespace csfma::dse {

struct SensPoint {
  std::map<std::string, std::string> axes;  // axis name -> value
  Objectives obj;
};

struct SensitivityStat {
  std::uint64_t pairs = 0;  // adjacent same-context pairs observed
  double delay_ns = 0.0;    // median |Δ| per objective
  double luts = 0.0;
  double dsps = 0.0;
  double energy_nj = 0.0;
};

/// Sensitivity per axis name, deterministically ordered.  Axes with no
/// same-context pair (fewer than two values anywhere) report zero pairs.
std::map<std::string, SensitivityStat> axis_sensitivity(
    const std::vector<SensPoint>& points);

}  // namespace csfma::dse
