// Design-space exploration configuration (the Fig 13 knob set).
//
// A DseConfig names one point of the exploration the paper sweeps by hand
// across Table I / Fig 13: the unit kind, the carry-save geometry (block
// size and explicit-carry spacing, Sec. III-D/F), the deferred-rounding
// examination width (Sec. III-C), the block-selection strategy (early LZA
// vs exact zero detection, Sec. III-F/G), and the pipeline depth the
// design is cut to.  The service's "model" simulation mode evaluates one
// DseConfig through the structural timing/area model (src/fpga) and the
// switching-activity energy model (src/energy) — see dse/eval.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "fma/fma_unit.hpp"
#include "fp/rounding.hpp"

namespace csfma::dse {

/// Result-block selection strategy knob (protocol-level mirror of
/// FcsSelect; the PCS unit always uses its exact zero detector, so the
/// knob only differentiates FCS designs).
enum class BlockSelect { Lza, Zd };

const char* to_string(BlockSelect s);
bool parse_block_select(std::string_view s, BlockSelect& out);

/// One design point.  Field defaults reproduce the paper's shipping
/// PCS geometry at a mid-depth pipeline cut.
struct DseConfig {
  UnitKind unit = UnitKind::Pcs;
  Round rm = Round::NearestEven;
  std::uint64_t seed = 1;  // energy-workload seed (Sec. IV-B recurrence)
  int block = 55;          // result block digits (PCS/FCS geometry)
  int group = 11;          // explicit-carry spacing; must divide block (PCS)
  int round_width = 0;     // rounding examination width in bits; 0 = block
  BlockSelect select = BlockSelect::Lza;  // FCS block selection
  int depth = 8;           // target pipeline depth (stages)
  std::uint64_t ops = 32;  // energy-workload multiply-adds measured

  /// The rounding width actually used by the model (0 resolves to the
  /// unit's natural tail size, one block).
  int resolved_round_width() const {
    return round_width > 0 ? round_width : block;
  }

  /// Empty string when valid; otherwise a human-readable reason usable
  /// verbatim in a protocol error message.
  std::string validate() const;
};

}  // namespace csfma::dse
