#include "dse/sensitivity.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <set>
#include <utility>

namespace csfma::dse {

namespace {

bool parse_int(const std::string& s, long long& v) {
  if (s.empty()) return false;
  char* end = nullptr;
  v = std::strtoll(s.c_str(), &end, 10);
  return end == s.c_str() + s.size();
}

/// Numeric order when both values are integers, lexicographic otherwise —
/// so "8" < "11" < "55" on the block axis but "lza" < "zd" on select.
bool value_less(const std::string& a, const std::string& b) {
  long long va = 0, vb = 0;
  if (parse_int(a, va) && parse_int(b, vb)) {
    return va != vb ? va < vb : a < b;
  }
  return a < b;
}

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t mid = v.size() / 2;
  return v.size() % 2 ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
}

}  // namespace

std::map<std::string, SensitivityStat> axis_sensitivity(
    const std::vector<SensPoint>& points) {
  std::set<std::string> names;
  for (const auto& p : points) {
    for (const auto& [k, v] : p.axes) names.insert(k);
  }

  std::map<std::string, SensitivityStat> out;
  for (const std::string& axis : names) {
    // Group by the fixed context (every other axis value) — std::map
    // keys keep the group iteration deterministic.
    std::map<std::string, std::vector<std::pair<std::string, Objectives>>>
        groups;
    for (const auto& p : points) {
      auto it = p.axes.find(axis);
      if (it == p.axes.end()) continue;
      std::string ctx;
      for (const auto& [k, v] : p.axes) {
        if (k == axis) continue;
        ctx += k;
        ctx += '=';
        ctx += v;
        ctx += '&';
      }
      groups[ctx].emplace_back(it->second, p.obj);
    }

    std::vector<double> d_delay, d_luts, d_dsps, d_energy;
    for (auto& [ctx, g] : groups) {
      std::sort(g.begin(), g.end(), [](const auto& a, const auto& b) {
        return value_less(a.first, b.first);
      });
      for (std::size_t i = 1; i < g.size(); ++i) {
        if (g[i - 1].first == g[i].first) continue;  // duplicate config
        const Objectives& a = g[i - 1].second;
        const Objectives& b = g[i].second;
        d_delay.push_back(std::fabs(b.delay_ns - a.delay_ns));
        d_luts.push_back(std::fabs(b.luts - a.luts));
        d_dsps.push_back(std::fabs(b.dsps - a.dsps));
        d_energy.push_back(std::fabs(b.energy_nj - a.energy_nj));
      }
    }

    SensitivityStat st;
    st.pairs = d_delay.size();
    st.delay_ns = median(d_delay);
    st.luts = median(d_luts);
    st.dsps = median(d_dsps);
    st.energy_nj = median(d_energy);
    out[axis] = st;
  }
  return out;
}

}  // namespace csfma::dse
