// Exploration coverage accounting: per-axis-region point counts plus an
// ETA derived from observed point latency.
//
// The counts (expected/done/cached/failed per axis value) are
// Deterministic — pure functions of the config space and the point
// results — and appear in the csfma-frontier-v1 report.  The latency
// observations and the ETA are Timing-class and only ever surface in the
// live explore_progress stream, mirroring the metrics registry's
// stability split.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace csfma::dse {

struct AxisCount {
  std::uint64_t expected = 0;
  std::uint64_t done = 0;  // fresh + cached + failed
  std::uint64_t cached = 0;
  std::uint64_t failed = 0;
};

class CoverageTracker {
 public:
  /// Declare the space: per-axis value populations and the total point
  /// count (axes multiply, so totals are declared separately).
  void add_expected(const std::string& axis, const std::string& value,
                    std::uint64_t n);
  void set_total(std::uint64_t n) { total_ = n; }

  /// Record one completed point under all of its axis values.
  void record(
      const std::vector<std::pair<std::string, std::string>>& axis_values,
      bool cached, bool failed);

  /// Timing-class: one fresh (non-cached) point took `seconds`.
  void observe_latency(double seconds);

  std::uint64_t total() const { return total_; }
  std::uint64_t done() const { return done_; }
  std::uint64_t cached() const { return cached_; }
  std::uint64_t failed() const { return failed_; }
  /// Remaining points times the mean observed fresh-point latency
  /// (0 until the first fresh point lands).
  double eta_seconds() const;

  /// axis -> value -> counts, deterministically ordered.
  const std::map<std::string, std::map<std::string, AxisCount>>& axes() const {
    return axes_;
  }

 private:
  std::map<std::string, std::map<std::string, AxisCount>> axes_;
  std::uint64_t total_ = 0, done_ = 0, cached_ = 0, failed_ = 0;
  double latency_sum_s_ = 0.0;
  std::uint64_t latency_samples_ = 0;
};

}  // namespace csfma::dse
