// Design-point evaluation: one DseConfig through the structural
// timing/area model and the switching-activity energy model.
//
// The fixed Table I chains in fpga/architectures.cpp pin every width to
// the paper's shipping geometry; eval_design() generalizes them over the
// DseConfig knobs.  At the paper's defaults the parameterized chains
// reproduce the fixed builders component for component (tested in
// tests/dse/eval_test.cpp), so the exploration's origin point is exactly
// the Table I model.  Every output is a pure function of the DseConfig
// alone — same determinism contract as the engine: no wall clock, no
// global state, safe to evaluate concurrently and to cache by canonical
// key.
#pragma once

#include <vector>

#include "dse/config.hpp"
#include "fpga/device.hpp"
#include "fpga/pipeline.hpp"

namespace csfma::dse {

/// The four exploration objectives (all minimized) plus the synthesis
/// intermediates worth reporting.
struct DseMetrics {
  double delay_ns = 0.0;  // multiply-add latency: cycles / fmax
  int cycles = 0;
  double fmax_mhz = 0.0;
  int luts = 0;
  int dsps = 0;
  double toggles_per_op = 0.0;  // measured on the Sec. IV-B recurrence
  double energy_nj = 0.0;       // alpha*toggles + beta*LUTs (Table II model)
};

/// The parameterized component chain for one design point on `dev`.
/// At the paper's default geometry this reproduces the corresponding
/// fixed builder in fpga/architectures.cpp exactly.
std::vector<Component> build_model_chain(const DseConfig& cfg,
                                         const Device& dev);

/// Evaluate one design point.  `cfg` must already be valid
/// (DseConfig::validate() returned empty).
DseMetrics eval_design(const DseConfig& cfg);

}  // namespace csfma::dse
