#include "dse/coverage.hpp"

namespace csfma::dse {

void CoverageTracker::add_expected(const std::string& axis,
                                   const std::string& value, std::uint64_t n) {
  axes_[axis][value].expected += n;
}

void CoverageTracker::record(
    const std::vector<std::pair<std::string, std::string>>& axis_values,
    bool cached, bool failed) {
  for (const auto& [axis, value] : axis_values) {
    AxisCount& c = axes_[axis][value];
    ++c.done;
    if (cached) ++c.cached;
    if (failed) ++c.failed;
  }
  ++done_;
  if (cached) ++cached_;
  if (failed) ++failed_;
}

void CoverageTracker::observe_latency(double seconds) {
  latency_sum_s_ += seconds;
  ++latency_samples_;
}

double CoverageTracker::eta_seconds() const {
  if (latency_samples_ == 0 || done_ >= total_) return 0.0;
  const double mean = latency_sum_s_ / static_cast<double>(latency_samples_);
  return mean * static_cast<double>(total_ - done_);
}

}  // namespace csfma::dse
