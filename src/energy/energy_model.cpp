#include "energy/energy_model.hpp"

#include "common/check.hpp"

namespace csfma {

double toggles_per_op(const ActivityRecorder& rec, std::uint64_t ops) {
  CSFMA_CHECK(ops > 0);
  std::uint64_t total = 0;
  for (const auto& [name, probe] : rec.probes()) total += probe.toggles();
  return (double)total / (double)ops;
}

EnergyCoefficients calibrate(double toggles_a, int luts_a, double energy_a_nj,
                             double toggles_b, int luts_b, double energy_b_nj) {
  // Solve the 2x2 system
  //   alpha*t_a + beta*l_a = e_a
  //   alpha*t_b + beta*l_b = e_b
  const double det = toggles_a * luts_b - toggles_b * luts_a;
  CSFMA_CHECK_MSG(det != 0.0, "degenerate calibration anchors");
  EnergyCoefficients k;
  k.alpha_nj_per_toggle = (energy_a_nj * luts_b - energy_b_nj * luts_a) / det;
  k.beta_nj_per_lut = (toggles_a * energy_b_nj - toggles_b * energy_a_nj) / det;
  return k;
}

double energy_per_op_nj(const EnergyCoefficients& k, double toggles_per_op,
                        int luts) {
  return k.alpha_nj_per_toggle * toggles_per_op + k.beta_nj_per_lut * luts;
}

}  // namespace csfma
