// The Sec. IV-B benchmark workload, instrumented for switching activity:
//   x[n] = B1*x[n-1] + B2*x[n-2] + x[n-3],  1 < |B1| < 32,  0 < |B2| < 1,
// run in steady state through each architecture with ActivityRecorder
// probes attached, mirroring the paper's ISim VCD/SAIF capture.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/activity.hpp"
#include "engine/sim_engine.hpp"

namespace csfma {

struct ActivityMeasurement {
  double toggles_per_op = 0.0;  // summed over all probes, per multiply-add
  std::uint64_t ops = 0;
  // Per-component breakdown (probe name -> toggles per op) — the XPower
  // "analysis details" view the paper cites in Sec. IV-C.
  std::map<std::string, double> by_component;
};

/// CoreGen-style discrete multiply + add pipeline.
ActivityMeasurement measure_discrete(std::uint64_t seed, int runs, int depth);
/// FloPoCo-style fused pipeline (classic FMA datapath).
ActivityMeasurement measure_classic(std::uint64_t seed, int runs, int depth);
/// PCS-FMA chain (operands stay in PCS between the two units).
ActivityMeasurement measure_pcs(std::uint64_t seed, int runs, int depth);
/// FCS-FMA chain.
ActivityMeasurement measure_fcs(std::uint64_t seed, int runs, int depth);

/// The recurrence workload unrolled into an IEEE-boundary operand stream
/// for SimEngine.  Run r (of `runs`, each `depth` steps) contributes its
/// 2*(depth-2) multiply-add triples in issue order; operand values are the
/// ones the discrete (two-rounding) pipeline would carry between steps.
/// fill() replays only the runs covering the requested range and seeds
/// each run independently, so triples depend on (seed, index) alone — safe
/// for concurrent shard fills.
class RecurrenceSource final : public OperandSource {
 public:
  RecurrenceSource(std::uint64_t seed, int runs, int depth);
  std::uint64_t size() const override;
  void fill(std::uint64_t start, OperandTriple* out,
            std::size_t n) const override;

  /// Triples one run contributes (two multiply-adds per recurrence step).
  std::uint64_t ops_per_run() const { return 2ull * (std::uint64_t)(depth_ - 2); }

 private:
  std::uint64_t seed_;
  int runs_, depth_;
};

/// Engine-based activity measurement: streams the recurrence workload
/// through `kind` on `threads` workers and reduces the merged recorder.
/// The deterministic shard merge makes the result independent of the
/// thread count.
ActivityMeasurement measure_stream(UnitKind kind, std::uint64_t seed, int runs,
                                   int depth, int threads = 1);

}  // namespace csfma
