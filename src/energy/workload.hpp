// The Sec. IV-B benchmark workload, instrumented for switching activity:
//   x[n] = B1*x[n-1] + B2*x[n-2] + x[n-3],  1 < |B1| < 32,  0 < |B2| < 1,
// run in steady state through each architecture with ActivityRecorder
// probes attached, mirroring the paper's ISim VCD/SAIF capture.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/activity.hpp"
#include "engine/sim_engine.hpp"

namespace csfma {

struct ActivityMeasurement {
  double toggles_per_op = 0.0;  // summed over all probes, per multiply-add
  std::uint64_t ops = 0;
  // Per-component breakdown (probe name -> toggles per op) — the XPower
  // "analysis details" view the paper cites in Sec. IV-C.
  std::map<std::string, double> by_component;
  // Per-pipeline-stage breakdown (stage label -> toggles per op).  Stages
  // partition the probes, so the stage values sum to toggles_per_op.
  std::map<std::string, double> by_stage;
  // Raw per-stage toggle totals (before the per-op division), for reports.
  std::map<std::string, std::uint64_t> stage_toggles;
};

/// CoreGen-style discrete multiply + add pipeline.
ActivityMeasurement measure_discrete(std::uint64_t seed, int runs, int depth);
/// FloPoCo-style fused pipeline (classic FMA datapath).
ActivityMeasurement measure_classic(std::uint64_t seed, int runs, int depth);
/// PCS-FMA chain (operands stay in PCS between the two units).
ActivityMeasurement measure_pcs(std::uint64_t seed, int runs, int depth);
/// FCS-FMA chain.
ActivityMeasurement measure_fcs(std::uint64_t seed, int runs, int depth);

/// The recurrence workload unrolled into an IEEE-boundary operand stream
/// for SimEngine.  Run r (of `runs`, each `depth` steps) contributes its
/// 2*(depth-2) multiply-add triples in issue order; operand values are the
/// ones the discrete (two-rounding) pipeline would carry between steps.
/// fill() replays only the runs covering the requested range and seeds
/// each run independently, so triples depend on (seed, index) alone — safe
/// for concurrent shard fills.
class RecurrenceSource final : public OperandSource {
 public:
  RecurrenceSource(std::uint64_t seed, int runs, int depth);
  std::uint64_t size() const override;
  void fill(std::uint64_t start, OperandTriple* out,
            std::size_t n) const override;

  /// Triples one run contributes (two multiply-adds per recurrence step).
  std::uint64_t ops_per_run() const { return 2ull * (std::uint64_t)(depth_ - 2); }

 private:
  std::uint64_t seed_;
  int runs_, depth_;
};

/// Engine-based activity measurement: streams the recurrence workload
/// through `kind` on `threads` workers and reduces the merged recorder.
/// The deterministic shard merge makes the result independent of the
/// thread count.
ActivityMeasurement measure_stream(UnitKind kind, std::uint64_t seed, int runs,
                                   int depth, int threads = 1);

/// One run's coefficients and seed values for the recurrence.
struct RecurrenceInputs {
  PFloat b1, b2;
  std::array<PFloat, 3> x;
};

/// The `runs` input sets the measure_* functions draw, in their original
/// sequential-Rng order (one Rng(seed) stream across all runs).
std::vector<RecurrenceInputs> recurrence_inputs(std::uint64_t seed, int runs);

/// The recurrence workload as a CHAINED operand stream: one chain per run,
/// two multiply-adds per step, with A and C wired to earlier chain results
/// via ChainedOp refs — so SimEngine::run_chained keeps CS operands (with
/// their deferred-rounding tails) between operations, exactly like the
/// paper's Sec. IV-B chains and the original hand-rolled per-unit loops.
class RecurrenceChainSource final : public ChainSource {
 public:
  RecurrenceChainSource(std::vector<RecurrenceInputs> inputs, int depth);
  std::uint64_t chains() const override { return inputs_.size(); }
  std::uint64_t ops_per_chain() const override {
    return 2ull * (std::uint64_t)(depth_ - 2);
  }
  void fill_chain(std::uint64_t chain, ChainedOp* out) const override;

 private:
  std::vector<RecurrenceInputs> inputs_;
  int depth_;
};

/// Chained engine measurement of any unit kind: drives the recurrence
/// through SimEngine::run_chained on one shared code path (no per-unit
/// loops).  For workloads that fit one engine shard this reproduces the
/// original measure_* toggle counts bit-exactly; the measure_* functions
/// are now wrappers over this.  Also fills the per-stage breakdown.
ActivityMeasurement measure_chained(UnitKind kind, std::uint64_t seed,
                                    int runs, int depth, int threads = 1);

}  // namespace csfma
