// The Sec. IV-B benchmark workload, instrumented for switching activity:
//   x[n] = B1*x[n-1] + B2*x[n-2] + x[n-3],  1 < |B1| < 32,  0 < |B2| < 1,
// run in steady state through each architecture with ActivityRecorder
// probes attached, mirroring the paper's ISim VCD/SAIF capture.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/activity.hpp"

namespace csfma {

struct ActivityMeasurement {
  double toggles_per_op = 0.0;  // summed over all probes, per multiply-add
  std::uint64_t ops = 0;
  // Per-component breakdown (probe name -> toggles per op) — the XPower
  // "analysis details" view the paper cites in Sec. IV-C.
  std::map<std::string, double> by_component;
};

/// CoreGen-style discrete multiply + add pipeline.
ActivityMeasurement measure_discrete(std::uint64_t seed, int runs, int depth);
/// FloPoCo-style fused pipeline (classic FMA datapath).
ActivityMeasurement measure_classic(std::uint64_t seed, int runs, int depth);
/// PCS-FMA chain (operands stay in PCS between the two units).
ActivityMeasurement measure_pcs(std::uint64_t seed, int runs, int depth);
/// FCS-FMA chain.
ActivityMeasurement measure_fcs(std::uint64_t seed, int runs, int depth);

}  // namespace csfma
