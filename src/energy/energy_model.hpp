// Switching-activity energy model (Table II).
//
// The paper records post-layout switching activity (ISim VCD/SAIF) of each
// unit running the Sec. IV-B recurrence in pipeline steady state and feeds
// it to XPower.  The simulator equivalent: ActivityRecorder probes on every
// major component output count per-net toggles; energy per operation is
//
//   E = alpha * (toggles per op) + beta * (design LUTs)
//
// where the alpha term models the dynamic fabric/routing energy (scales
// with actual bit activity — the CS planes of the P/FCS units toggle far
// more than re-normalized IEEE buses, which is the paper's explanation of
// the 4-5x increase: "most of the energy was drawn in the large CSA trees")
// and the beta term models the clock tree / register load, which scales
// with design size.  alpha and beta are calibrated ONCE against the two
// anchor values of Table II (Xilinx 0.54 nJ, PCS-FMA 2.67 nJ); FloPoCo and
// FCS-FMA are then predictions of the model, compared against the paper in
// bench/table2_energy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/activity.hpp"

namespace csfma {

struct EnergyCoefficients {
  double alpha_nj_per_toggle;
  double beta_nj_per_lut;
};

/// Sum of all probe toggles divided by operation count.
double toggles_per_op(const ActivityRecorder& rec, std::uint64_t ops);

/// Calibrate (alpha, beta) from two anchor designs.
EnergyCoefficients calibrate(double toggles_a, int luts_a, double energy_a_nj,
                             double toggles_b, int luts_b, double energy_b_nj);

/// Energy per multiply-add of a design under the model.
double energy_per_op_nj(const EnergyCoefficients& k, double toggles_per_op,
                        int luts);

struct EnergyReport {
  std::string arch;
  double toggles_per_op;
  int luts;
  double energy_nj;
};

}  // namespace csfma
