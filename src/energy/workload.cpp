#include "energy/workload.hpp"

#include <array>

#include "common/rng.hpp"
#include "energy/energy_model.hpp"
#include "fma/classic_fma.hpp"
#include "fma/discrete.hpp"
#include "fma/fcs_fma.hpp"
#include "fma/pcs_fma.hpp"

namespace csfma {

namespace {

struct Inputs {
  PFloat b1, b2;
  std::array<PFloat, 3> x;
};

Inputs random_inputs(Rng& rng) {
  Inputs in;
  double b1 = rng.next_double(1.0, 32.0) * (rng.next_bool() ? 1 : -1);
  double b2 = rng.next_double(0.001, 1.0) * (rng.next_bool() ? 1 : -1);
  in.b1 = PFloat::from_double(kBinary64, b1);
  in.b2 = PFloat::from_double(kBinary64, b2);
  for (auto& x : in.x)
    x = PFloat::from_double(kBinary64, rng.next_double(-1.0, 1.0));
  return in;
}

template <typename Step>
ActivityMeasurement run_recurrence(const ActivityRecorder& rec,
                                   std::uint64_t seed, int runs, int depth,
                                   Step step) {
  Rng rng(seed);
  std::uint64_t ops = 0;
  for (int r = 0; r < runs; ++r) {
    Inputs in = random_inputs(rng);
    step(in, depth);
    ops += 2ull * (std::uint64_t)(depth - 2);  // two multiply-adds per x[n]
  }
  ActivityMeasurement m;
  m.ops = ops;
  m.toggles_per_op = toggles_per_op(rec, ops);
  for (const auto& [name, probe] : rec.probes()) {
    m.by_component[name] = (double)probe.toggles() / (double)ops;
  }
  return m;
}

}  // namespace

ActivityMeasurement measure_discrete(std::uint64_t seed, int runs, int depth) {
  ActivityRecorder rec;
  DiscreteMulAdd unit(&rec);
  return run_recurrence(rec, seed, runs, depth, [&](const Inputs& in, int n) {
    PFloat x3 = in.x[0], x2 = in.x[1], x1 = in.x[2];
    for (int i = 3; i <= n; ++i) {
      PFloat t = unit.mul_add(x3, in.b2, x2);
      PFloat x = unit.mul_add(t, in.b1, x1);
      x3 = x2;
      x2 = x1;
      x1 = x;
    }
  });
}

ActivityMeasurement measure_classic(std::uint64_t seed, int runs, int depth) {
  ActivityRecorder rec;
  ClassicFma unit(&rec);
  return run_recurrence(rec, seed, runs, depth, [&](const Inputs& in, int n) {
    PFloat x3 = in.x[0], x2 = in.x[1], x1 = in.x[2];
    for (int i = 3; i <= n; ++i) {
      PFloat t = unit.fma(x3, in.b2, x2);
      PFloat x = unit.fma(t, in.b1, x1);
      x3 = x2;
      x2 = x1;
      x1 = x;
    }
  });
}

ActivityMeasurement measure_pcs(std::uint64_t seed, int runs, int depth) {
  ActivityRecorder rec;
  PcsFma unit(&rec);
  return run_recurrence(rec, seed, runs, depth, [&](const Inputs& in, int n) {
    PcsOperand x3 = ieee_to_pcs(in.x[0]);
    PcsOperand x2 = ieee_to_pcs(in.x[1]);
    PcsOperand x1 = ieee_to_pcs(in.x[2]);
    for (int i = 3; i <= n; ++i) {
      PcsOperand t = unit.fma(x3, in.b2, x2);
      PcsOperand x = unit.fma(t, in.b1, x1);
      x3 = x2;
      x2 = x1;
      x1 = x;
    }
  });
}

RecurrenceSource::RecurrenceSource(std::uint64_t seed, int runs, int depth)
    : seed_(seed), runs_(runs), depth_(depth) {
  CSFMA_CHECK(runs >= 0 && depth >= 3);
}

std::uint64_t RecurrenceSource::size() const {
  return (std::uint64_t)runs_ * ops_per_run();
}

void RecurrenceSource::fill(std::uint64_t start, OperandTriple* out,
                            std::size_t n) const {
  CSFMA_CHECK(start + n <= size());
  const std::uint64_t per_run = ops_per_run();
  std::uint64_t idx = start;
  std::size_t filled = 0;
  while (filled < n) {
    const std::uint64_t run = idx / per_run;
    // Replay run `run` from its start, emitting the triples that fall into
    // [start, start+n).  Each run is seeded independently of the others.
    Rng rng(seed_ ^ ((run + 1) * 0x9e3779b97f4a7c15ULL));
    Inputs in = random_inputs(rng);
    PFloat x3 = in.x[0], x2 = in.x[1], x1 = in.x[2];
    std::uint64_t op = run * per_run;  // stream index of the run's next op
    for (int i = 3; i <= depth_ && filled < n; ++i) {
      // Step i issues two multiply-adds; operand values follow the
      // discrete pipeline (each mul and add fully rounded).
      const PFloat t = PFloat::add(
          PFloat::mul(in.b2, x2, kBinary64, Round::NearestEven), x3, kBinary64,
          Round::NearestEven);
      if (op >= start && filled < n) out[filled++] = {x3, in.b2, x2};
      ++op;
      const PFloat x = PFloat::add(
          PFloat::mul(in.b1, x1, kBinary64, Round::NearestEven), t, kBinary64,
          Round::NearestEven);
      if (op >= start && filled < n) out[filled++] = {t, in.b1, x1};
      ++op;
      x3 = x2;
      x2 = x1;
      x1 = x;
    }
    idx = (run + 1) * per_run;
  }
}

ActivityMeasurement measure_stream(UnitKind kind, std::uint64_t seed, int runs,
                                   int depth, int threads) {
  RecurrenceSource src(seed, runs, depth);
  EngineConfig cfg;
  cfg.unit = kind;
  cfg.threads = threads;
  cfg.rm = Round::NearestEven;
  SimEngine engine(cfg);
  StreamResult r = engine.run_stream(src);
  ActivityMeasurement m;
  m.ops = r.stats.ops;
  if (m.ops == 0) return m;
  m.toggles_per_op = toggles_per_op(r.activity, m.ops);
  for (const auto& [name, probe] : r.activity.probes())
    m.by_component[name] = (double)probe.toggles() / (double)m.ops;
  return m;
}

ActivityMeasurement measure_fcs(std::uint64_t seed, int runs, int depth) {
  ActivityRecorder rec;
  FcsFma unit(&rec);
  return run_recurrence(rec, seed, runs, depth, [&](const Inputs& in, int n) {
    FcsOperand x3 = ieee_to_fcs(in.x[0]);
    FcsOperand x2 = ieee_to_fcs(in.x[1]);
    FcsOperand x1 = ieee_to_fcs(in.x[2]);
    for (int i = 3; i <= n; ++i) {
      FcsOperand t = unit.fma(x3, in.b2, x2);
      FcsOperand x = unit.fma(t, in.b1, x1);
      x3 = x2;
      x2 = x1;
      x1 = x;
    }
  });
}

}  // namespace csfma
