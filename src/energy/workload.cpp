#include "energy/workload.hpp"

#include "common/check.hpp"
#include "common/rng.hpp"
#include "energy/energy_model.hpp"

namespace csfma {

namespace {

RecurrenceInputs random_inputs(Rng& rng) {
  RecurrenceInputs in;
  double b1 = rng.next_double(1.0, 32.0) * (rng.next_bool() ? 1 : -1);
  double b2 = rng.next_double(0.001, 1.0) * (rng.next_bool() ? 1 : -1);
  in.b1 = PFloat::from_double(kBinary64, b1);
  in.b2 = PFloat::from_double(kBinary64, b2);
  for (auto& x : in.x)
    x = PFloat::from_double(kBinary64, rng.next_double(-1.0, 1.0));
  return in;
}

ActivityMeasurement reduce(const ActivityRecorder& rec, std::uint64_t ops) {
  ActivityMeasurement m;
  m.ops = ops;
  if (ops == 0) return m;
  m.toggles_per_op = toggles_per_op(rec, ops);
  for (const auto& [name, probe] : rec.probes())
    m.by_component[name] = (double)probe.toggles() / (double)ops;
  for (const auto& [stage, totals] : rec.stage_totals()) {
    m.stage_toggles[stage] = totals.toggles;
    m.by_stage[stage] = (double)totals.toggles / (double)ops;
  }
  return m;
}

}  // namespace

std::vector<RecurrenceInputs> recurrence_inputs(std::uint64_t seed, int runs) {
  CSFMA_CHECK(runs >= 0);
  Rng rng(seed);
  std::vector<RecurrenceInputs> inputs;
  inputs.reserve((std::size_t)runs);
  for (int r = 0; r < runs; ++r) inputs.push_back(random_inputs(rng));
  return inputs;
}

RecurrenceChainSource::RecurrenceChainSource(
    std::vector<RecurrenceInputs> inputs, int depth)
    : inputs_(std::move(inputs)), depth_(depth) {
  CSFMA_CHECK(depth >= 3);
}

void RecurrenceChainSource::fill_chain(std::uint64_t chain,
                                       ChainedOp* out) const {
  CSFMA_CHECK(chain < inputs_.size());
  const RecurrenceInputs& in = inputs_[(std::size_t)chain];
  const int steps = depth_ - 2;
  // Step j (0-based) issues ops 2j and 2j+1 of the chain:
  //   t = x3 + b2*x2   and   x = t + b1*x1,
  // where after each step (x3, x2, x1) <- (x2, x1, x).  Unwinding the
  // shifts: x1_j is op 2(j-1)+1's result, x2_j is op 2(j-2)+1's, x3_j is
  // op 2(j-3)+1's; before enough steps exist they are the seeds x[0..2].
  for (int j = 0; j < steps; ++j) {
    ChainedOp& t = out[2 * j];
    t.b = in.b2;
    t.a_ref = j >= 3 ? 2 * (j - 3) + 1 : -1;
    if (t.a_ref < 0) t.a = in.x[(std::size_t)j];  // x3_j = x[j] for j < 3
    t.c_ref = j >= 2 ? 2 * (j - 2) + 1 : -1;
    if (t.c_ref < 0) t.c = in.x[(std::size_t)(j + 1)];  // x2_j = x[j+1]
    ChainedOp& x = out[2 * j + 1];
    x.b = in.b1;
    x.a_ref = 2 * j;
    x.c_ref = j >= 1 ? 2 * (j - 1) + 1 : -1;
    if (x.c_ref < 0) x.c = in.x[2];  // x1_0 = x[2]
  }
}

ActivityMeasurement measure_chained(UnitKind kind, std::uint64_t seed,
                                    int runs, int depth, int threads) {
  RecurrenceChainSource src(recurrence_inputs(seed, runs), depth);
  EngineConfig cfg;
  cfg.unit = kind;
  cfg.threads = threads;
  cfg.rm = Round::NearestEven;
  SimEngine engine(cfg);
  BatchResult r = engine.run_chained(src);
  return reduce(r.activity, r.stats.ops);
}

ActivityMeasurement measure_discrete(std::uint64_t seed, int runs, int depth) {
  return measure_chained(UnitKind::Discrete, seed, runs, depth);
}

ActivityMeasurement measure_classic(std::uint64_t seed, int runs, int depth) {
  return measure_chained(UnitKind::Classic, seed, runs, depth);
}

ActivityMeasurement measure_pcs(std::uint64_t seed, int runs, int depth) {
  return measure_chained(UnitKind::Pcs, seed, runs, depth);
}

ActivityMeasurement measure_fcs(std::uint64_t seed, int runs, int depth) {
  return measure_chained(UnitKind::Fcs, seed, runs, depth);
}

RecurrenceSource::RecurrenceSource(std::uint64_t seed, int runs, int depth)
    : seed_(seed), runs_(runs), depth_(depth) {
  CSFMA_CHECK(runs >= 0 && depth >= 3);
}

std::uint64_t RecurrenceSource::size() const {
  return (std::uint64_t)runs_ * ops_per_run();
}

void RecurrenceSource::fill(std::uint64_t start, OperandTriple* out,
                            std::size_t n) const {
  CSFMA_CHECK(start + n <= size());
  const std::uint64_t per_run = ops_per_run();
  std::uint64_t idx = start;
  std::size_t filled = 0;
  while (filled < n) {
    const std::uint64_t run = idx / per_run;
    // Replay run `run` from its start, emitting the triples that fall into
    // [start, start+n).  Each run is seeded independently of the others.
    Rng rng(seed_ ^ ((run + 1) * 0x9e3779b97f4a7c15ULL));
    RecurrenceInputs in = random_inputs(rng);
    PFloat x3 = in.x[0], x2 = in.x[1], x1 = in.x[2];
    std::uint64_t op = run * per_run;  // stream index of the run's next op
    for (int i = 3; i <= depth_ && filled < n; ++i) {
      // Step i issues two multiply-adds; operand values follow the
      // discrete pipeline (each mul and add fully rounded).
      const PFloat t = PFloat::add(
          PFloat::mul(in.b2, x2, kBinary64, Round::NearestEven), x3, kBinary64,
          Round::NearestEven);
      if (op >= start && filled < n) out[filled++] = {x3, in.b2, x2};
      ++op;
      const PFloat x = PFloat::add(
          PFloat::mul(in.b1, x1, kBinary64, Round::NearestEven), t, kBinary64,
          Round::NearestEven);
      if (op >= start && filled < n) out[filled++] = {t, in.b1, x1};
      ++op;
      x3 = x2;
      x2 = x1;
      x1 = x;
    }
    idx = (run + 1) * per_run;
  }
}

ActivityMeasurement measure_stream(UnitKind kind, std::uint64_t seed, int runs,
                                   int depth, int threads) {
  RecurrenceSource src(seed, runs, depth);
  EngineConfig cfg;
  cfg.unit = kind;
  cfg.threads = threads;
  cfg.rm = Round::NearestEven;
  SimEngine engine(cfg);
  StreamResult r = engine.run_stream(src);
  return reduce(r.activity, r.stats.ops);
}

}  // namespace csfma
