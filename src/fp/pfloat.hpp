// Parametric-width binary floating point ("softfloat").
//
// The paper compares its carry-save FMA units against Xilinx CoreGen
// operators instantiated at 64b (IEEE double), 68b and 75b total width
// (Sec. IV-B, Fig 14).  PFloat implements a bit-accurate binary floating
// point value with a configurable exponent/fraction split:
//
//   * subnormals are NOT supported — they are flushed to zero, following
//     the FPGA libraries the paper builds on (FloPoCo, CoreGen; Sec. II);
//   * NaN/Inf/Zero are carried as an explicit class tag, mirroring the
//     two-side-wire exception encoding the paper adopts from FloPoCo
//     (Sec. III-B) instead of in-band bit patterns;
//   * all five rounding modes of fp/rounding.hpp are supported;
//   * add/mul/fma are correctly rounded (single rounding from the exact
//     result), making PFloat usable both as a CoreGen model and as the
//     golden reference for the carry-save units.
//
// Fraction widths up to 100 bits are supported (enough for the 63-bit
// fraction of the 75b reference format plus ablation headroom).
#pragma once

#include <cstdint>
#include <string>

#include "common/wide_uint.hpp"
#include "fp/rounding.hpp"

namespace csfma {

enum class FpClass : std::uint8_t { Zero, Normal, Inf, NaN };

/// A binary interchange-style format: 1 sign bit, exp_bits exponent bits
/// (biased), frac_bits fraction bits with an implied leading 1.
struct FloatFormat {
  int exp_bits;
  int frac_bits;

  constexpr int bias() const { return (1 << (exp_bits - 1)) - 1; }
  constexpr int emin() const { return 1 - bias(); }  // smallest normal exponent
  constexpr int emax() const { return bias(); }      // largest normal exponent
  constexpr int precision() const { return frac_bits + 1; }
  constexpr int total_bits() const { return 1 + exp_bits + frac_bits; }

  friend constexpr bool operator==(const FloatFormat&, const FloatFormat&) = default;
};

/// IEEE 754 binary64 (the B operand format and the 64b reference).
inline constexpr FloatFormat kBinary64{11, 52};
/// The 68b CoreGen reference format of Sec. IV-B (wider fraction, same exp).
inline constexpr FloatFormat kBinary68{11, 56};
/// The 75b CoreGen golden-reference format of Sec. IV-B.
inline constexpr FloatFormat kBinary75{11, 63};
/// A very wide readout format for exact-value introspection and golden
/// references (exact to 101 bits).
inline constexpr FloatFormat kWideExact{15, 100};

class PFloat {
 public:
  /// Default: +0 in binary64.
  PFloat() : PFloat(zero(kBinary64, false)) {}

  static PFloat zero(const FloatFormat& fmt, bool negative);
  static PFloat inf(const FloatFormat& fmt, bool negative);
  static PFloat nan(const FloatFormat& fmt);

  /// A normal value (-1)^sign * sig * 2^(exp - frac_bits) where
  /// sig ∈ [2^frac_bits, 2^(frac_bits+1)).  Checked.
  static PFloat make_normal(const FloatFormat& fmt, bool sign, int exp, U128 sig);

  /// Convert from a host double.  Exact when fmt.frac_bits >= 52 and the
  /// exponent fits; subnormal inputs flush to zero; otherwise rounds.
  static PFloat from_double(const FloatFormat& fmt, double d,
                            Round rm = Round::NearestEven);

  /// Round to host double (exact if it fits).  Subnormal-range results
  /// flush to zero, overflow saturates per the rounding mode.
  double to_double(Round rm = Round::NearestEven) const;

  /// Normalize-and-round entry point used by all operations (and by the
  /// IEEE<->carry-save converters in src/fma):
  /// value magnitude = (mag + sticky_epsilon) * 2^exp2, sticky_epsilon∈[0,1).
  /// `mag` may be zero (yields signed zero) but if sticky is set `mag` must
  /// carry at least fmt.precision() significant bits.
  static PFloat normalize_round(const FloatFormat& fmt, bool sign,
                                WideUint<8> mag, int exp2, bool sticky,
                                Round rm);

  const FloatFormat& format() const { return fmt_; }
  FpClass cls() const { return cls_; }
  bool is_zero() const { return cls_ == FpClass::Zero; }
  bool is_normal() const { return cls_ == FpClass::Normal; }
  bool is_inf() const { return cls_ == FpClass::Inf; }
  bool is_nan() const { return cls_ == FpClass::NaN; }
  bool sign() const { return sign_; }

  /// Unbiased exponent; only meaningful for normal values.
  int exp() const;
  /// Significand in [2^frac_bits, 2^(frac_bits+1)); only for normal values.
  U128 sig() const;

  PFloat negated() const;
  PFloat abs() const;

  /// Packed bit pattern: sign | biased exp | fraction.  Zero packs as the
  /// all-zero exponent, Inf/NaN as the all-ones exponent (fraction 0 / !=0),
  /// matching IEEE layout so binary64 round-trips against host doubles.
  U128 to_bits() const;
  static PFloat from_bits(const FloatFormat& fmt, U128 bits);

  // Correctly rounded arithmetic. Mixed formats are allowed; the result is
  // produced in `out_fmt` with a single rounding from the exact result.
  static PFloat add(const PFloat& a, const PFloat& b, const FloatFormat& out_fmt,
                    Round rm);
  static PFloat sub(const PFloat& a, const PFloat& b, const FloatFormat& out_fmt,
                    Round rm);
  static PFloat mul(const PFloat& a, const PFloat& b, const FloatFormat& out_fmt,
                    Round rm);
  static PFloat div(const PFloat& a, const PFloat& b, const FloatFormat& out_fmt,
                    Round rm);
  /// Fused a*b + c with a single rounding — the golden FMA reference.
  static PFloat fma(const PFloat& a, const PFloat& b, const PFloat& c,
                    const FloatFormat& out_fmt, Round rm);

  /// Re-round this value to another format.
  PFloat round_to(const FloatFormat& out_fmt, Round rm) const;

  /// Exact equality of represented values (Zero compares equal regardless of
  /// sign; NaN never equal).
  static bool same_value(const PFloat& a, const PFloat& b);

  /// |a - b| measured in units of 2^(exp_b - ulp_frac_bits), i.e. in ulps of
  /// b at a chosen precision.  Infinite/NaN operands return +inf.  This is
  /// the "mantissa error" metric of Fig 14 (ulp_frac_bits = 52).
  static double ulp_error(const PFloat& a, const PFloat& b, int ulp_frac_bits);

  std::string to_string() const;

 private:
  PFloat(const FloatFormat& fmt, FpClass cls, bool sign, int exp, U128 sig)
      : fmt_(fmt), cls_(cls), sign_(sign), exp_(exp), sig_(sig) {}

  FloatFormat fmt_;
  FpClass cls_;
  bool sign_;
  int exp_;   // unbiased
  U128 sig_;  // includes the (explicit here) leading 1
};

}  // namespace csfma
