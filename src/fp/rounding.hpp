// Rounding modes and the single rounding primitive shared by every unit.
//
// The paper's FMA operators transfer *unrounded* values between chained units
// and use "round half away from zero" for the final (or deferred) rounding
// step (Sec. III-C); IEEE comparisons use round-to-nearest-even.  All modes
// are implemented so the ablation benches can sweep them.
#pragma once

#include <cstdint>

#include "common/check.hpp"

namespace csfma {

enum class Round {
  NearestEven,       // IEEE 754 roundTiesToEven (default host mode)
  HalfAwayFromZero,  // the paper's FMA transfer rounding (Sec. III-C)
  TowardZero,        // truncation
  TowardPositive,
  TowardNegative,
};

const char* to_string(Round r);

/// Decide whether a truncated magnitude must be incremented by one ulp.
///
/// `lsb`     — least significant *kept* bit (for ties-to-even);
/// `guard`   — first discarded bit;
/// `sticky`  — OR of all remaining discarded bits;
/// `negative`— sign of the value being rounded (directed modes care).
inline bool round_increments(Round mode, bool lsb, bool guard, bool sticky,
                             bool negative) {
  switch (mode) {
    case Round::NearestEven:
      return guard && (sticky || lsb);
    case Round::HalfAwayFromZero:
      return guard;  // ties go away from zero, sign-independent on magnitude
    case Round::TowardZero:
      return false;
    case Round::TowardPositive:
      return !negative && (guard || sticky);
    case Round::TowardNegative:
      return negative && (guard || sticky);
  }
  CSFMA_CHECK(false);
  return false;
}

/// True when `mode` and IEEE nearest-even disagree on the SAME truncated
/// magnitude — the per-operation "misround vs IEEE" predicate of the
/// numerical event log.  For the paper's deferred half-away-from-zero
/// rounding (Sec. III-C) this fires exactly on ties whose kept lsb is even,
/// the documented misrounding case.
inline bool round_disagrees_with_ieee(Round mode, bool lsb, bool guard,
                                      bool sticky, bool negative) {
  return round_increments(mode, lsb, guard, sticky, negative) !=
         round_increments(Round::NearestEven, lsb, guard, sticky, negative);
}

}  // namespace csfma
