#include "fp/rounding.hpp"

namespace csfma {

const char* to_string(Round r) {
  switch (r) {
    case Round::NearestEven: return "nearest-even";
    case Round::HalfAwayFromZero: return "half-away-from-zero";
    case Round::TowardZero: return "toward-zero";
    case Round::TowardPositive: return "toward-positive";
    case Round::TowardNegative: return "toward-negative";
  }
  return "?";
}

}  // namespace csfma
