#include "fp/pfloat.hpp"

#include <cmath>
#include <cstring>
#include <sstream>

namespace csfma {

namespace {

constexpr int kMaxFrac = 100;

void check_format(const FloatFormat& fmt) {
  CSFMA_CHECK_MSG(fmt.exp_bits >= 3 && fmt.exp_bits <= 18, "exponent width");
  CSFMA_CHECK_MSG(fmt.frac_bits >= 2 && fmt.frac_bits <= kMaxFrac,
                  "fraction width");
}

std::uint64_t double_to_bits(double d) {
  std::uint64_t b;
  std::memcpy(&b, &d, sizeof(b));
  return b;
}

double bits_to_double(std::uint64_t b) {
  double d;
  std::memcpy(&d, &b, sizeof(d));
  return d;
}

/// Largest finite value of a format (used on directed-mode overflow).
PFloat max_finite(const FloatFormat& fmt, bool sign) {
  U128 sig = U128::mask(fmt.precision());
  return PFloat::make_normal(fmt, sign, fmt.emax(), sig);
}

}  // namespace

PFloat PFloat::zero(const FloatFormat& fmt, bool negative) {
  check_format(fmt);
  return PFloat(fmt, FpClass::Zero, negative, 0, U128());
}

PFloat PFloat::inf(const FloatFormat& fmt, bool negative) {
  check_format(fmt);
  return PFloat(fmt, FpClass::Inf, negative, 0, U128());
}

PFloat PFloat::nan(const FloatFormat& fmt) {
  check_format(fmt);
  return PFloat(fmt, FpClass::NaN, false, 0, U128());
}

PFloat PFloat::make_normal(const FloatFormat& fmt, bool sign, int exp, U128 sig) {
  check_format(fmt);
  CSFMA_CHECK_MSG(exp >= fmt.emin() && exp <= fmt.emax(), "exponent range");
  CSFMA_CHECK_MSG(sig.bit_width() == fmt.precision(), "significand not normalized");
  return PFloat(fmt, FpClass::Normal, sign, exp, sig);
}

int PFloat::exp() const {
  CSFMA_CHECK(cls_ == FpClass::Normal);
  return exp_;
}

U128 PFloat::sig() const {
  CSFMA_CHECK(cls_ == FpClass::Normal);
  return sig_;
}

PFloat PFloat::negated() const {
  PFloat r = *this;
  if (cls_ != FpClass::NaN) r.sign_ = !r.sign_;
  return r;
}

PFloat PFloat::abs() const {
  PFloat r = *this;
  if (cls_ != FpClass::NaN) r.sign_ = false;
  return r;
}

PFloat PFloat::normalize_round(const FloatFormat& fmt, bool sign,
                               WideUint<8> mag, int exp2, bool sticky,
                               Round rm) {
  check_format(fmt);
  const int p = fmt.precision();
  if (mag.is_zero()) {
    // Any sticky residue alone is below the smallest normal: flush.
    return zero(fmt, sign);
  }
  const int bw = mag.bit_width();
  CSFMA_CHECK_MSG(!sticky || bw >= p,
                  "sticky with an under-precise magnitude is ambiguous");

  U128 kept;
  bool guard = false;
  int e = exp2 + bw - 1;  // unbiased exponent of the leading bit
  if (bw > p) {
    const int shift = bw - p;
    kept = U128(mag >> shift);
    guard = mag.bit(shift - 1);
    if (shift > 1) sticky = sticky || !mag.truncated(shift - 1).is_zero();
  } else {
    kept = U128(mag) << (p - bw);
  }

  if (round_increments(rm, kept.bit(0), guard, sticky, sign)) {
    kept += U128::one();
    if (kept.bit(p)) {  // rounding overflow: 0b1000...0 of p+1 bits
      kept >>= 1;
      ++e;
    }
  }

  if (e > fmt.emax()) {
    switch (rm) {
      case Round::NearestEven:
      case Round::HalfAwayFromZero:
        return inf(fmt, sign);
      case Round::TowardZero:
        return max_finite(fmt, sign);
      case Round::TowardPositive:
        return sign ? max_finite(fmt, true) : inf(fmt, false);
      case Round::TowardNegative:
        return sign ? inf(fmt, true) : max_finite(fmt, false);
    }
  }
  if (e < fmt.emin()) {
    // No subnormals (Sec. II): flush to zero.
    return zero(fmt, sign);
  }
  return make_normal(fmt, sign, e, kept);
}

PFloat PFloat::from_double(const FloatFormat& fmt, double d, Round rm) {
  check_format(fmt);
  const std::uint64_t bits = double_to_bits(d);
  const bool sign = bits >> 63;
  const int biased = (int)((bits >> 52) & 0x7FF);
  const std::uint64_t frac = bits & ((1ULL << 52) - 1);
  if (biased == 0x7FF) {
    return frac == 0 ? inf(fmt, sign) : nan(fmt);
  }
  if (biased == 0) return zero(fmt, sign);  // zero and subnormals flush
  const std::uint64_t sig = frac | (1ULL << 52);
  return normalize_round(fmt, sign, WideUint<8>(sig), biased - 1023 - 52, false,
                         rm);
}

double PFloat::to_double(Round rm) const {
  const PFloat r = round_to(kBinary64, rm);
  switch (r.cls_) {
    case FpClass::Zero:
      return r.sign_ ? -0.0 : 0.0;
    case FpClass::Inf:
      return r.sign_ ? -HUGE_VAL : HUGE_VAL;
    case FpClass::NaN:
      return std::nan("");
    case FpClass::Normal: {
      std::uint64_t frac = r.sig_.lo64() & ((1ULL << 52) - 1);
      std::uint64_t biased = (std::uint64_t)(r.exp_ + 1023);
      std::uint64_t bits = ((std::uint64_t)r.sign_ << 63) | (biased << 52) | frac;
      return bits_to_double(bits);
    }
  }
  CSFMA_CHECK(false);
  return 0.0;
}

PFloat PFloat::round_to(const FloatFormat& out_fmt, Round rm) const {
  switch (cls_) {
    case FpClass::Zero:
      return zero(out_fmt, sign_);
    case FpClass::Inf:
      return inf(out_fmt, sign_);
    case FpClass::NaN:
      return nan(out_fmt);
    case FpClass::Normal:
      return normalize_round(out_fmt, sign_, WideUint<8>(sig_),
                             exp_ - fmt_.frac_bits, false, rm);
  }
  CSFMA_CHECK(false);
  return nan(out_fmt);
}

U128 PFloat::to_bits() const {
  const int eb = fmt_.exp_bits, fb = fmt_.frac_bits;
  U128 bits;
  switch (cls_) {
    case FpClass::Zero:
      break;  // biased exp 0, fraction 0
    case FpClass::Inf:
      bits = bits.deposit(fb, eb, U128::mask(eb));
      break;
    case FpClass::NaN:
      bits = bits.deposit(fb, eb, U128::mask(eb));
      bits = bits.deposit(fb - 1, 1, U128::one());  // quiet-NaN style payload
      break;
    case FpClass::Normal: {
      U128 frac = sig_ & U128::mask(fb);
      U128 biased((std::uint64_t)(exp_ + fmt_.bias()));
      bits = frac | (biased << fb);
      break;
    }
  }
  if (sign_ && cls_ != FpClass::NaN) bits = bits.deposit(eb + fb, 1, U128::one());
  return bits;
}

PFloat PFloat::from_bits(const FloatFormat& fmt, U128 bits) {
  check_format(fmt);
  const int eb = fmt.exp_bits, fb = fmt.frac_bits;
  const bool sign = bits.bit(eb + fb);
  const std::uint64_t biased = bits.extract64(fb, eb);
  const U128 frac = bits.extract(0, fb);
  const std::uint64_t emax_biased = (1ULL << eb) - 1;
  if (biased == emax_biased) {
    return frac.is_zero() ? inf(fmt, sign) : nan(fmt);
  }
  if (biased == 0) return zero(fmt, sign);  // subnormal patterns flush
  U128 sig = frac | U128::bit_at(fb);
  return make_normal(fmt, sign, (int)biased - fmt.bias(), sig);
}

namespace {

/// Signed fixed-point accumulator entry: value = (-1)^sign * mag * 2^lsb_exp.
struct Scaled {
  bool sign;
  WideUint<8> mag;
  int lsb_exp;
};

/// Exact signed sum of two scaled magnitudes whose alignment distance has
/// been verified to fit the workspace.  Returns sign + magnitude + lsb_exp.
Scaled exact_sum(const Scaled& x, const Scaled& y) {
  const int l = std::min(x.lsb_exp, y.lsb_exp);
  const WideUint<8> mx = x.mag << (x.lsb_exp - l);
  const WideUint<8> my = y.mag << (y.lsb_exp - l);
  // Guard against silent overflow of the workspace: the shifted operands
  // must not have lost their top bits.
  CSFMA_CHECK((mx >> (x.lsb_exp - l)) == x.mag);
  CSFMA_CHECK((my >> (y.lsb_exp - l)) == y.mag);
  Scaled r;
  r.lsb_exp = l;
  if (x.sign == y.sign) {
    r.sign = x.sign;
    r.mag = mx + my;
    CSFMA_CHECK(r.mag >= mx);  // no wraparound
  } else if (mx >= my) {
    r.sign = x.sign;
    r.mag = mx - my;
  } else {
    r.sign = y.sign;
    r.mag = my - mx;
  }
  return r;
}

/// Guard shift used when a dominated operand is folded into sticky.  It must
/// exceed the widest supported precision so that the guard bit position of
/// any output format still lies inside the explicit magnitude.
constexpr int kDominateGuard = 100;

/// Exact alignment is used up to this lsb-exponent gap; beyond it the small
/// operand lies entirely below the dominating one's guard range
/// (gap > product width 202 + kDominateGuard) and folds into sticky.
/// 305 + 202 = 507 bits keeps the workspace within WideUint<8>.
constexpr int kAlignCap = 305;

/// When |x| utterly dominates |y| (alignment gap > kAlignCap), fold y into a
/// guard/sticky tail of x.  Preconditions: both magnitudes non-zero,
/// x.lsb_exp - y.lsb_exp > kAlignCap.
Scaled dominate_with_sticky(const Scaled& x, const Scaled& y, bool* sticky) {
  Scaled r;
  r.sign = x.sign;
  if (x.sign == y.sign) {
    r.mag = x.mag << kDominateGuard;
  } else {
    // Borrow: x - epsilon.  Represent as (x<<G) - 1 with sticky set, which
    // keeps the guard/round bits of the true result ("11...1" tail).
    r.mag = (x.mag << kDominateGuard) - WideUint<8>::one();
  }
  r.lsb_exp = x.lsb_exp - kDominateGuard;
  *sticky = true;
  CSFMA_CHECK((x.mag << kDominateGuard) >> kDominateGuard == x.mag);
  return r;
}

PFloat add_signed_zero(const FloatFormat& out_fmt, bool sa, bool sb, Round rm) {
  // IEEE 754 sum-of-zeros sign rules.
  if (sa == sb) return PFloat::zero(out_fmt, sa);
  return PFloat::zero(out_fmt, rm == Round::TowardNegative);
}

}  // namespace

PFloat PFloat::add(const PFloat& a, const PFloat& b, const FloatFormat& out_fmt,
                   Round rm) {
  if (a.is_nan() || b.is_nan()) return nan(out_fmt);
  if (a.is_inf() || b.is_inf()) {
    if (a.is_inf() && b.is_inf() && a.sign() != b.sign()) return nan(out_fmt);
    return inf(out_fmt, a.is_inf() ? a.sign() : b.sign());
  }
  if (a.is_zero() && b.is_zero()) return add_signed_zero(out_fmt, a.sign(), b.sign(), rm);
  if (a.is_zero()) return b.round_to(out_fmt, rm);
  if (b.is_zero()) return a.round_to(out_fmt, rm);

  Scaled x{a.sign(), WideUint<8>(a.sig()), a.exp() - a.format().frac_bits};
  Scaled y{b.sign(), WideUint<8>(b.sig()), b.exp() - b.format().frac_bits};
  bool sticky = false;
  Scaled s;
  if (std::abs(x.lsb_exp - y.lsb_exp) <= kAlignCap) {
    s = exact_sum(x, y);
  } else if (x.lsb_exp > y.lsb_exp) {
    s = dominate_with_sticky(x, y, &sticky);
  } else {
    s = dominate_with_sticky(y, x, &sticky);
  }
  if (s.mag.is_zero() && !sticky) {
    // Exact cancellation: IEEE says +0 except in toward-negative mode.
    return zero(out_fmt, rm == Round::TowardNegative);
  }
  return normalize_round(out_fmt, s.sign, s.mag, s.lsb_exp, sticky, rm);
}

PFloat PFloat::sub(const PFloat& a, const PFloat& b, const FloatFormat& out_fmt,
                   Round rm) {
  return add(a, b.negated(), out_fmt, rm);
}

PFloat PFloat::mul(const PFloat& a, const PFloat& b, const FloatFormat& out_fmt,
                   Round rm) {
  if (a.is_nan() || b.is_nan()) return nan(out_fmt);
  const bool sign = a.sign() != b.sign();
  if (a.is_inf() || b.is_inf()) {
    if (a.is_zero() || b.is_zero()) return nan(out_fmt);
    return inf(out_fmt, sign);
  }
  if (a.is_zero() || b.is_zero()) return zero(out_fmt, sign);

  WideUint<4> prod = a.sig().mul_full<2>(b.sig());
  const int lsb_exp = (a.exp() - a.format().frac_bits) +
                      (b.exp() - b.format().frac_bits);
  return normalize_round(out_fmt, sign, WideUint<8>(prod), lsb_exp, false, rm);
}

PFloat PFloat::div(const PFloat& a, const PFloat& b, const FloatFormat& out_fmt,
                   Round rm) {
  if (a.is_nan() || b.is_nan()) return nan(out_fmt);
  const bool sign = a.sign() != b.sign();
  if (a.is_inf()) return b.is_inf() ? nan(out_fmt) : inf(out_fmt, sign);
  if (b.is_inf()) return zero(out_fmt, sign);
  if (b.is_zero()) return a.is_zero() ? nan(out_fmt) : inf(out_fmt, sign);
  if (a.is_zero()) return zero(out_fmt, sign);

  // Long division with enough quotient bits for a single correct rounding:
  // shift the dividend so the quotient has at least precision+2 bits.
  const int qbits = out_fmt.precision() + 2;
  const int shift = qbits + b.format().precision();
  WideUint<8> num = WideUint<8>(a.sig()) << shift;
  auto [q, r] = divmod(num, WideUint<8>(b.sig()));
  const bool sticky = !r.is_zero();
  const int lsb_exp = (a.exp() - a.format().frac_bits) -
                      (b.exp() - b.format().frac_bits) - shift;
  return normalize_round(out_fmt, sign, q, lsb_exp, sticky, rm);
}

PFloat PFloat::fma(const PFloat& a, const PFloat& b, const PFloat& c,
                   const FloatFormat& out_fmt, Round rm) {
  if (a.is_nan() || b.is_nan() || c.is_nan()) return nan(out_fmt);
  const bool psign = a.sign() != b.sign();
  const bool p_inf = a.is_inf() || b.is_inf();
  if (p_inf && (a.is_zero() || b.is_zero())) return nan(out_fmt);
  if (p_inf) {
    if (c.is_inf() && c.sign() != psign) return nan(out_fmt);
    return inf(out_fmt, psign);
  }
  if (c.is_inf()) return inf(out_fmt, c.sign());
  if (a.is_zero() || b.is_zero()) {
    if (c.is_zero()) return add_signed_zero(out_fmt, psign, c.sign(), rm);
    return c.round_to(out_fmt, rm);
  }
  if (c.is_zero()) return mul(a, b, out_fmt, rm);

  // Exact product.
  WideUint<4> prod = a.sig().mul_full<2>(b.sig());
  Scaled x{psign, WideUint<8>(prod),
           (a.exp() - a.format().frac_bits) + (b.exp() - b.format().frac_bits)};
  Scaled y{c.sign(), WideUint<8>(c.sig()), c.exp() - c.format().frac_bits};

  bool sticky = false;
  Scaled s;
  if (std::abs(x.lsb_exp - y.lsb_exp) <= kAlignCap) {
    s = exact_sum(x, y);
  } else if (x.lsb_exp > y.lsb_exp) {
    s = dominate_with_sticky(x, y, &sticky);
  } else {
    s = dominate_with_sticky(y, x, &sticky);
  }
  if (s.mag.is_zero() && !sticky) {
    return zero(out_fmt, rm == Round::TowardNegative);
  }
  return normalize_round(out_fmt, s.sign, s.mag, s.lsb_exp, sticky, rm);
}

bool PFloat::same_value(const PFloat& a, const PFloat& b) {
  if (a.cls() == FpClass::NaN || b.cls() == FpClass::NaN) return false;
  if (a.cls() != b.cls()) return false;
  switch (a.cls()) {
    case FpClass::Zero:
      return true;  // +0 == -0
    case FpClass::Inf:
      return a.sign() == b.sign();
    case FpClass::Normal:
      return a.sign() == b.sign() && a.exp_ == b.exp_ && a.sig_ == b.sig_;
    case FpClass::NaN:
      break;
  }
  return false;
}

double PFloat::ulp_error(const PFloat& a, const PFloat& b, int ulp_frac_bits) {
  if (a.is_nan() || b.is_nan()) return HUGE_VAL;
  if (a.is_inf() || b.is_inf()) {
    // Two infinities of the same sign agree exactly.
    return (a.is_inf() && b.is_inf() && a.sign() == b.sign()) ? 0.0 : HUGE_VAL;
  }
  if (b.is_zero()) {
    if (a.is_zero()) return 0.0;
    return HUGE_VAL;  // no ulp scale available
  }
  Scaled x{a.sign(), a.is_zero() ? WideUint<8>() : WideUint<8>(a.sig()),
           a.is_zero() ? b.exp() : a.exp() - a.format().frac_bits};
  Scaled y{!b.sign(), WideUint<8>(b.sig()), b.exp() - b.format().frac_bits};
  const int l = std::min(x.lsb_exp, y.lsb_exp);
  // For an error *metric* a saturating wide subtraction is fine; the check
  // in exact_sum would reject huge misalignments, so do it manually.
  const int sx = x.lsb_exp - l, sy = y.lsb_exp - l;
  if (sx > 300 || sy > 300) return HUGE_VAL;
  WideUint<8> mx = x.mag << sx, my = y.mag << sy;
  WideUint<8> diff = (mx >= my) ? mx - my : my - mx;
  if (x.sign == y.sign) diff = mx + my;  // same "signed" sign means a-b adds
  // ulp scale: 2^(exp_b - ulp_frac_bits); diff is scaled by 2^l.
  return std::ldexp(diff.to_double(), l - (b.exp() - ulp_frac_bits));
}

std::string PFloat::to_string() const {
  std::ostringstream os;
  switch (cls_) {
    case FpClass::Zero:
      os << (sign_ ? "-0" : "+0");
      break;
    case FpClass::Inf:
      os << (sign_ ? "-inf" : "+inf");
      break;
    case FpClass::NaN:
      os << "nan";
      break;
    case FpClass::Normal:
      os << (sign_ ? '-' : '+') << sig_.to_hex() << "p" << (exp_ - fmt_.frac_bits);
      break;
  }
  os << " [e" << fmt_.exp_bits << "f" << fmt_.frac_bits << "]";
  return os.str();
}

}  // namespace csfma
